#include "concurrent/elastic_tree.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dcnt::concurrent {

namespace {

/// k^(k+1): the leaf count of a fan-out-k tree (TreeLayout's rigid
/// geometry).
std::int64_t leaves_for(int k) {
  std::int64_t r = 1;
  for (int i = 0; i <= k; ++i) r *= k;
  return r;
}

/// Context wrapper handed to an epoch's inner TreeCounter: prepends the
/// epoch word to every outgoing message (network and local) so the
/// dispatcher can route replies back to the right tree, and translates
/// completions into the global value space by adding the epoch's base.
class EpochCtx final : public Context {
 public:
  EpochCtx(Context& base, std::uint32_t epoch, Value base_value,
           RelaxedCounter& completed)
      : base_(base),
        epoch_(static_cast<std::int64_t>(epoch)),
        base_value_(base_value),
        completed_(completed) {}

  void send(Message msg) override {
    msg.args.insert(msg.args.begin(), epoch_);
    base_.send(std::move(msg));
  }

  void send_local(ProcessorId p, std::int32_t tag,
                  std::vector<std::int64_t> args, SimTime delay) override {
    args.insert(args.begin(), epoch_);
    base_.send_local(p, tag, std::move(args), delay);
  }

  void complete(OpId op, Value value) override {
    ++completed_;
    base_.complete(op, base_value_ + value);
  }

  SimTime now() const override { return base_.now(); }
  Rng& rng() override { return base_.rng(); }

 private:
  Context& base_;
  std::int64_t epoch_;
  Value base_value_;
  RelaxedCounter& completed_;
};

}  // namespace

ElasticTreeCounter::ElasticTreeCounter(ElasticTreeParams params)
    : params_(std::move(params)), epochs_(kMaxEpochs) {
  DCNT_CHECK_MSG(params_.min_k >= 2, "min_k must be at least 2");
  DCNT_CHECK_MSG(params_.max_k >= params_.min_k, "max_k below min_k");
  DCNT_CHECK_MSG(params_.max_k <= 5, "max_k > 5 means > 15k processors");
  DCNT_CHECK_MSG(params_.initial_k >= params_.min_k &&
                     params_.initial_k <= params_.max_k,
                 "initial_k outside [min_k, max_k]");
  n_ = leaves_for(params_.max_k);
  procs_.resize(static_cast<std::size_t>(n_));
  publish_epoch(0, params_.initial_k, params_.initial_age_threshold, 0);
}

ElasticTreeCounter::ElasticTreeCounter(const ElasticTreeCounter& other)
    : params_(other.params_),
      n_(other.n_),
      procs_(other.procs_),
      coord_(other.coord_),
      epochs_(kMaxEpochs),
      started_(other.started_),
      completed_(other.completed_),
      shard_workers_(other.shard_workers_) {
  for (std::uint32_t e = 0; e < kMaxEpochs; ++e) {
    const Epoch& src = other.epochs_[e];
    const TreeCounter* tree = src.live.load(std::memory_order_acquire);
    if (tree == nullptr) continue;
    Epoch& dst = epochs_[e];
    dst.base.store(src.base.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    dst.k.store(src.k.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    dst.leaves.store(src.leaves.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    dst.age_threshold.store(src.age_threshold.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    dst.owner = std::make_unique<TreeCounter>(*tree);
    dst.live.store(dst.owner.get(), std::memory_order_release);
  }
}

std::size_t ElasticTreeCounter::num_processors() const {
  return static_cast<std::size_t>(n_);
}

const ElasticTreeCounter::Epoch& ElasticTreeCounter::slot(
    std::uint32_t epoch) const {
  DCNT_CHECK_MSG(epoch < kMaxEpochs, "epoch out of range");
  return epochs_[epoch];
}

ElasticTreeCounter::Epoch& ElasticTreeCounter::slot(std::uint32_t epoch) {
  DCNT_CHECK_MSG(epoch < kMaxEpochs, "epoch out of range");
  return epochs_[epoch];
}

void ElasticTreeCounter::publish_epoch(std::uint32_t epoch, int k,
                                       std::int64_t age_threshold,
                                       Value base) {
  Epoch& s = slot(epoch);
  if (s.live.load(std::memory_order_acquire) != nullptr) return;
  TreeServiceParams tp;
  tp.k = k;
  tp.age_threshold = age_threshold;
  auto tree = std::make_unique<TreeCounter>(tp);
  if (shard_workers_ > 0) tree->on_shard_start(shard_workers_);
  // Metadata first (relaxed), publication CAS last: a reader acquiring
  // a non-null `live` sees consistent parameters. Racing publishers
  // (several shards processing Open frames for the same epoch) store
  // identical values — the epoch's parameters are a pure function of
  // the Open frame — and exactly one wins ownership.
  s.base.store(base, std::memory_order_relaxed);
  s.k.store(k, std::memory_order_relaxed);
  s.leaves.store(static_cast<std::int64_t>(tree->num_processors()),
                 std::memory_order_relaxed);
  s.age_threshold.store(tree->age_threshold(), std::memory_order_relaxed);
  TreeCounter* expected = nullptr;
  if (s.live.compare_exchange_strong(expected, tree.get(),
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
    s.owner = std::move(tree);
  }
}

void ElasticTreeCounter::start_inc(Context& ctx, ProcessorId origin,
                                   OpId op) {
  DCNT_CHECK(origin >= 0 && origin < n_);
  ++started_;
  issue_op(ctx, origin, op);
}

void ElasticTreeCounter::issue_op(Context& ctx, ProcessorId p, OpId op) {
  ProcState& ps = procs_[static_cast<std::size_t>(p)];
  if (ps.closed) {
    ps.op_stash.push_back(op);
    return;
  }
  const std::uint32_t e = ps.epoch;
  Epoch& s = slot(e);
  TreeCounter* tree = s.live.load(std::memory_order_acquire);
  DCNT_CHECK_MSG(tree != nullptr, "issuing into an unopened epoch");
  // Counted before the op enters the tree: issued_p reserves the value
  // range B_e..B_e+I_e-1, which is what lets in-flight ops finish after
  // the epoch closes without colliding with the successor epoch.
  ++ps.issued;
  const std::int64_t leaves = s.leaves.load(std::memory_order_relaxed);
  if (p < leaves) {
    EpochCtx ectx(ctx, e, s.base.load(std::memory_order_relaxed),
                  completed_);
    tree->start_inc(ectx, p, op);
  } else {
    // This epoch's tree is smaller than the processor set: one honest
    // relay hop to the proxy leaf, which initiates (and completes) the
    // op on the origin's behalf.
    Message m;
    m.src = p;
    m.dst = static_cast<ProcessorId>(p % leaves);
    m.tag = kTagRelay;
    m.op = op;
    m.args = {static_cast<std::int64_t>(e)};
    ctx.send(std::move(m));
  }
  maybe_request_resize(ctx, p);
}

void ElasticTreeCounter::maybe_request_resize(Context& ctx, ProcessorId p) {
  if (params_.resize_period <= 0) return;
  ProcState& ps = procs_[static_cast<std::size_t>(p)];
  if (ps.resize_requested || ps.issued < params_.resize_period) return;
  ps.resize_requested = true;
  if (p == 0) {
    evaluate_resize(ctx, ps.epoch);
    return;
  }
  Message m;
  m.src = p;
  m.dst = 0;
  m.tag = kTagResizeReq;
  m.args = {static_cast<std::int64_t>(ps.epoch),
            started_.load() - completed_.load()};
  ctx.send(std::move(m));
}

void ElasticTreeCounter::evaluate_resize(Context& ctx, std::uint32_t e) {
  if (coord_.migrating) return;
  if (static_cast<std::int64_t>(e) <= coord_.last_evaluated) return;
  if (e + 1 >= kMaxEpochs) return;  // slots exhausted: stay put
  coord_.last_evaluated = static_cast<std::int64_t>(e);
  const Epoch& s = slot(e);
  const int cur_k = static_cast<int>(s.k.load(std::memory_order_relaxed));
  const std::int64_t cur_t =
      s.age_threshold.load(std::memory_order_relaxed);
  int next_k = cur_k;
  std::int64_t next_t = 0;
  if (!params_.plan.empty()) {
    const ElasticStep& step = params_.plan[std::min(
        coord_.resizes_done, params_.plan.size() - 1)];
    next_k = std::clamp(step.k, params_.min_k, params_.max_k);
    next_t = step.age_threshold;
  } else {
    // Load policy: the global backlog per leaf says whether the tree is
    // drowning (grow the fan-out: more leaves, shallower funnel) or
    // idling (shrink: fewer retirements churning processors). The
    // counters are relaxed tallies — a heuristic reads, it does not
    // synchronize.
    const std::int64_t backlog = started_.load() - completed_.load();
    const std::int64_t per_leaf =
        backlog / std::max<std::int64_t>(s.leaves.load(std::memory_order_relaxed), 1);
    if (per_leaf >= params_.grow_backlog_per_leaf) {
      next_k = std::min(cur_k + 1, params_.max_k);
    } else if (per_leaf <= params_.shrink_backlog_per_leaf) {
      next_k = std::max(cur_k - 1, params_.min_k);
    }
  }
  if (next_t == 0) next_t = 4 * next_k;  // TreeService's own default
  if (next_k == cur_k && next_t == cur_t) return;  // nothing to change
  coord_.migrating = true;
  coord_.closing_epoch = e;
  coord_.acks_pending = static_cast<std::size_t>(n_);
  coord_.issued_sum = 0;
  coord_.next_k = next_k;
  coord_.next_age_threshold = next_t;
  for (ProcessorId q = 1; q < n_; ++q) {
    Message m;
    m.src = 0;
    m.dst = q;
    m.tag = kTagClose;
    m.args = {static_cast<std::int64_t>(e)};
    ctx.send(std::move(m));
  }
  // The coordinator handles its own Close inline (no self-sends).
  close_at(ctx, 0, e);
  ack_close(ctx, procs_[0].issued);
}

void ElasticTreeCounter::close_at(Context& ctx, ProcessorId p,
                                  std::uint32_t e) {
  (void)ctx;
  ProcState& ps = procs_[static_cast<std::size_t>(p)];
  DCNT_CHECK_MSG(ps.epoch == e && !ps.closed, "close for the wrong epoch");
  ps.closed = true;
}

void ElasticTreeCounter::ack_close(Context& ctx, std::int64_t issued) {
  DCNT_CHECK(coord_.migrating && coord_.acks_pending > 0);
  coord_.issued_sum += issued;
  if (--coord_.acks_pending == 0) finish_migration(ctx);
}

void ElasticTreeCounter::finish_migration(Context& ctx) {
  const std::uint32_t e = coord_.closing_epoch;
  const std::uint32_t en = e + 1;
  const Value nbase =
      slot(e).base.load(std::memory_order_relaxed) + coord_.issued_sum;
  publish_epoch(en, coord_.next_k, coord_.next_age_threshold, nbase);
  for (ProcessorId q = 1; q < n_; ++q) {
    Message m;
    m.src = 0;
    m.dst = q;
    m.tag = kTagOpen;
    m.args = {static_cast<std::int64_t>(en),
              static_cast<std::int64_t>(coord_.next_k),
              coord_.next_age_threshold, nbase};
    ctx.send(std::move(m));
  }
  coord_.migrating = false;
  ++coord_.resizes_done;
  open_at(ctx, 0, en);
}

void ElasticTreeCounter::open_at(Context& ctx, ProcessorId p,
                                 std::uint32_t e) {
  ProcState& ps = procs_[static_cast<std::size_t>(p)];
  DCNT_CHECK_MSG(ps.epoch + 1 == e && ps.closed, "open out of order");
  ps.epoch = e;
  ps.closed = false;
  ps.issued = 0;
  ps.resize_requested = false;
  // Ops that arrived while closed go into the new epoch now (their
  // values come from the new range — correct, since they had not been
  // counted into the old epoch's issued_p). They are re-injected as
  // self-sends carrying an explicit op, NOT replayed inline: this
  // handler runs under the *Open message's* op attribution, and any
  // tree-internal message the replay spawned here would inherit that
  // stale op id from the runtime (`msg.op == kNoOp` sends inherit the
  // op being handled) — completing some other processor's live op a
  // second time. The self-send makes the runtime re-establish the
  // replayed op as the current op before the tree sees it.
  std::vector<OpId> replay;
  replay.swap(ps.op_stash);
  for (const OpId op : replay) {
    Message m;
    m.src = p;
    m.dst = p;
    m.tag = kTagReplay;
    m.op = op;
    m.args = {static_cast<std::int64_t>(e)};
    ctx.send(std::move(m));
  }
  // Messages that outran this Open (non-FIFO delivery): everything
  // keyed to the now-current epoch is re-sent to self — same reasoning
  // as the op replay; each stashed message already carries its true op,
  // and redelivery restores it as the handler context. Anything keyed
  // further ahead waits for its own Open.
  std::vector<Message> stashed;
  stashed.swap(ps.msg_stash);
  for (Message& m : stashed) {
    if (static_cast<std::uint32_t>(m.args.at(0)) == e) {
      ctx.send(std::move(m));
    } else {
      ps.msg_stash.push_back(std::move(m));
    }
  }
}

void ElasticTreeCounter::on_message(Context& ctx, const Message& msg) {
  switch (msg.tag) {
    case kTagClose:
      handle_close(ctx, msg);
      return;
    case kTagCloseAck:
      handle_close_ack(ctx, msg);
      return;
    case kTagOpen:
      handle_open(ctx, msg);
      return;
    case kTagResizeReq:
      handle_resize_req(ctx, msg);
      return;
    case kTagRelay:
      handle_relay(ctx, msg);
      return;
    case kTagReplay:
      // A stashed op re-injected by open_at; the runtime has set msg.op
      // as the current op, so the tree's sends attribute correctly.
      issue_op(ctx, msg.dst, msg.op);
      return;
    default:
      route_inner(ctx, msg);
      return;
  }
}

void ElasticTreeCounter::handle_close(Context& ctx, const Message& msg) {
  const auto e = static_cast<std::uint32_t>(msg.args.at(0));
  ProcState& ps = procs_[static_cast<std::size_t>(msg.dst)];
  if (ps.epoch < e) {
    // The Close outran the Open that precedes it; park it.
    ps.msg_stash.push_back(msg);
    return;
  }
  close_at(ctx, msg.dst, e);
  Message ack;
  ack.src = msg.dst;
  ack.dst = 0;
  ack.tag = kTagCloseAck;
  ack.args = {msg.args.at(0), ps.issued};
  ctx.send(std::move(ack));
}

void ElasticTreeCounter::handle_close_ack(Context& ctx, const Message& msg) {
  DCNT_CHECK(msg.dst == 0);
  const auto e = static_cast<std::uint32_t>(msg.args.at(0));
  DCNT_CHECK_MSG(coord_.migrating && e == coord_.closing_epoch,
                 "stray close-ack");
  ack_close(ctx, msg.args.at(1));
}

void ElasticTreeCounter::handle_open(Context& ctx, const Message& msg) {
  DCNT_CHECK(msg.args.size() == 4);
  const auto e = static_cast<std::uint32_t>(msg.args[0]);
  publish_epoch(e, static_cast<int>(msg.args[1]), msg.args[2], msg.args[3]);
  open_at(ctx, msg.dst, e);
}

void ElasticTreeCounter::handle_resize_req(Context& ctx,
                                           const Message& msg) {
  DCNT_CHECK(msg.dst == 0);
  evaluate_resize(ctx, static_cast<std::uint32_t>(msg.args.at(0)));
}

void ElasticTreeCounter::handle_relay(Context& ctx, const Message& msg) {
  const auto e = static_cast<std::uint32_t>(msg.args.at(0));
  Epoch& s = slot(e);
  TreeCounter* tree = s.live.load(std::memory_order_acquire);
  if (tree == nullptr) {
    procs_[static_cast<std::size_t>(msg.dst)].msg_stash.push_back(msg);
    return;
  }
  EpochCtx ectx(ctx, e, s.base.load(std::memory_order_relaxed), completed_);
  tree->start_inc(ectx, msg.dst, msg.op);
}

void ElasticTreeCounter::route_inner(Context& ctx, const Message& msg) {
  DCNT_CHECK_MSG(!msg.args.empty(), "epochless inner message");
  const auto e = static_cast<std::uint32_t>(msg.args.front());
  Epoch& s = slot(e);
  TreeCounter* tree = s.live.load(std::memory_order_acquire);
  if (tree == nullptr) {
    // An inner message for an epoch this node has not opened yet (its
    // sender opened first); wait for the Open.
    procs_[static_cast<std::size_t>(msg.dst)].msg_stash.push_back(msg);
    return;
  }
  Message inner = msg;
  inner.args.erase(inner.args.begin());
  EpochCtx ectx(ctx, e, s.base.load(std::memory_order_relaxed), completed_);
  tree->on_message(ectx, inner);
}

std::unique_ptr<CounterProtocol> ElasticTreeCounter::clone_counter() const {
  return std::make_unique<ElasticTreeCounter>(*this);
}

std::string ElasticTreeCounter::name() const {
  return "elastic(k=" + std::to_string(params_.initial_k) + ".." +
         std::to_string(params_.max_k) + ")";
}

void ElasticTreeCounter::on_shard_start(std::size_t workers) {
  shard_workers_ = workers;
  for (Epoch& s : epochs_) {
    if (TreeCounter* tree = s.live.load(std::memory_order_acquire)) {
      tree->on_shard_start(workers);
    }
  }
}

void ElasticTreeCounter::check_quiescent(std::size_t ops_completed) const {
  // Single-process invariant (simulator / threaded runtime): a cluster
  // node's replica only sees its own processors' states, so the socket
  // path never calls this (node.cpp relies on message-count stability).
  DCNT_CHECK_MSG(!coord_.migrating, "quiescent mid-migration");
  const std::uint32_t cur = procs_[0].epoch;
  std::int64_t issued_cur = 0;
  for (const ProcState& ps : procs_) {
    DCNT_CHECK_MSG(ps.epoch == cur, "processors in different epochs");
    DCNT_CHECK_MSG(!ps.closed, "processor still closed at quiescence");
    DCNT_CHECK_MSG(ps.op_stash.empty(), "stashed op never replayed");
    DCNT_CHECK_MSG(ps.msg_stash.empty(), "stashed message never drained");
    issued_cur += ps.issued;
  }
  for (std::uint32_t e = 0; e < cur; ++e) {
    const TreeCounter* tree = slot(e).live.load(std::memory_order_acquire);
    DCNT_CHECK(tree != nullptr);
    const std::int64_t i_e =
        slot(e + 1).base.load(std::memory_order_relaxed) -
        slot(e).base.load(std::memory_order_relaxed);
    tree->check_quiescent(static_cast<std::size_t>(i_e));
  }
  const TreeCounter* tree = slot(cur).live.load(std::memory_order_acquire);
  DCNT_CHECK(tree != nullptr);
  tree->check_quiescent(static_cast<std::size_t>(issued_cur));
  DCNT_CHECK_MSG(slot(cur).base.load(std::memory_order_relaxed) +
                         issued_cur ==
                     static_cast<std::int64_t>(ops_completed),
                 "epoch bases do not sum to the op count");
  DCNT_CHECK(completed_.load() == static_cast<std::int64_t>(ops_completed));
}

Value ElasticTreeCounter::value() const {
  const std::uint32_t cur = procs_[0].epoch;
  const TreeCounter* tree = slot(cur).live.load(std::memory_order_acquire);
  DCNT_CHECK(tree != nullptr);
  return slot(cur).base.load(std::memory_order_relaxed) + tree->value();
}

std::uint32_t ElasticTreeCounter::epochs_used() const {
  return procs_[0].epoch + 1;
}

std::size_t ElasticTreeCounter::resizes() const {
  return coord_.resizes_done;
}

int ElasticTreeCounter::current_k() const {
  return static_cast<int>(
      slot(procs_[0].epoch).k.load(std::memory_order_relaxed));
}

std::int64_t ElasticTreeCounter::current_age_threshold() const {
  return slot(procs_[0].epoch).age_threshold.load(std::memory_order_relaxed);
}

}  // namespace dcnt::concurrent
