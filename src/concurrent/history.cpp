#include "concurrent/history.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dcnt {

LinearizabilityReport check_linearizable(
    std::vector<CounterOpRecord> history) {
  LinearizabilityReport report;
  if (history.empty()) return report;

  // A counter hands out distinct values; two ops returning the same
  // value cannot both be legal in any sequential witness, so duplicates
  // are violations in their own right (and would confuse the sweep's
  // max-value bookkeeping below, so they are rejected up front).
  {
    std::vector<CounterOpRecord> by_value = history;
    std::sort(by_value.begin(), by_value.end(),
              [](const CounterOpRecord& a, const CounterOpRecord& b) {
                return a.value < b.value;
              });
    for (std::size_t i = 1; i < by_value.size(); ++i) {
      if (by_value[i].value == by_value[i - 1].value) {
        ++report.duplicate_values;
        ++report.violations;
        if (report.linearizable) {
          report.linearizable = false;
          report.first_a = by_value[i - 1].op;
          report.first_b = by_value[i].op;
        }
      }
    }
    if (!report.linearizable) return report;
  }

  // Sweep invocations in time order; maintain the maximum value among
  // operations that had already responded strictly earlier. A violation
  // is an invocation whose (eventual) value undercuts that maximum.
  std::vector<CounterOpRecord> by_inv = history;
  std::sort(by_inv.begin(), by_inv.end(),
            [](const CounterOpRecord& a, const CounterOpRecord& b) {
              return a.invoked < b.invoked;
            });
  std::vector<CounterOpRecord> by_resp = history;
  std::sort(by_resp.begin(), by_resp.end(),
            [](const CounterOpRecord& a, const CounterOpRecord& b) {
              return a.responded < b.responded;
            });

  std::size_t resp_idx = 0;
  Value max_completed_value = -1;
  OpId max_completed_op = kNoOp;
  for (const CounterOpRecord& b : by_inv) {
    while (resp_idx < by_resp.size() &&
           by_resp[resp_idx].responded < b.invoked) {
      if (by_resp[resp_idx].value > max_completed_value) {
        max_completed_value = by_resp[resp_idx].value;
        max_completed_op = by_resp[resp_idx].op;
      }
      ++resp_idx;
    }
    if (max_completed_value > b.value) {
      ++report.violations;
      if (report.linearizable) {
        report.linearizable = false;
        report.first_a = max_completed_op;
        report.first_b = b.op;
      }
    }
  }
  return report;
}

namespace concurrent {

std::vector<CounterOpRecord> HistoryBuffer::snapshot(
    std::size_t first_op) const {
  std::vector<CounterOpRecord> out;
  out.reserve(slots_.size() > first_op ? slots_.size() - first_op : 0);
  for (std::size_t i = first_op; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    const std::int64_t resp = s.responded.load(std::memory_order_acquire);
    if (resp == 0) continue;  // never completed (or never issued)
    const std::int64_t inv = s.invoked.load(std::memory_order_acquire);
    DCNT_CHECK_MSG(inv != 0, "history slot completed but never invoked");
    CounterOpRecord rec;
    rec.op = static_cast<OpId>(i);
    rec.invoked = inv;
    rec.responded = resp;
    rec.value = s.value.load(std::memory_order_relaxed);
    out.push_back(rec);
  }
  return out;
}

}  // namespace concurrent
}  // namespace dcnt
