#include "concurrent/history.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dcnt {

LinearizabilityReport check_linearizable(
    std::vector<CounterOpRecord> history) {
  LinearizabilityReport report;
  if (history.empty()) return report;

  // A counter hands out distinct values; two ops returning the same
  // value cannot both be legal in any sequential witness, so duplicates
  // are violations in their own right (and would confuse the sweep's
  // max-value bookkeeping below, so they are rejected up front).
  {
    std::vector<CounterOpRecord> by_value = history;
    std::sort(by_value.begin(), by_value.end(),
              [](const CounterOpRecord& a, const CounterOpRecord& b) {
                return a.value < b.value;
              });
    for (std::size_t i = 1; i < by_value.size(); ++i) {
      if (by_value[i].value == by_value[i - 1].value) {
        ++report.duplicate_values;
        ++report.violations;
        if (report.linearizable) {
          report.linearizable = false;
          report.first_a = by_value[i - 1].op;
          report.first_b = by_value[i].op;
        }
      }
    }
    if (!report.linearizable) return report;
  }

  // Sweep invocations in time order; maintain the maximum value among
  // operations that had already responded strictly earlier. A violation
  // is an invocation whose (eventual) value undercuts that maximum.
  std::vector<CounterOpRecord> by_inv = history;
  std::sort(by_inv.begin(), by_inv.end(),
            [](const CounterOpRecord& a, const CounterOpRecord& b) {
              return a.invoked < b.invoked;
            });
  std::vector<CounterOpRecord> by_resp = history;
  std::sort(by_resp.begin(), by_resp.end(),
            [](const CounterOpRecord& a, const CounterOpRecord& b) {
              return a.responded < b.responded;
            });

  std::size_t resp_idx = 0;
  Value max_completed_value = -1;
  OpId max_completed_op = kNoOp;
  for (const CounterOpRecord& b : by_inv) {
    while (resp_idx < by_resp.size() &&
           by_resp[resp_idx].responded < b.invoked) {
      if (by_resp[resp_idx].value > max_completed_value) {
        max_completed_value = by_resp[resp_idx].value;
        max_completed_op = by_resp[resp_idx].op;
      }
      ++resp_idx;
    }
    if (max_completed_value > b.value) {
      ++report.violations;
      if (report.linearizable) {
        report.linearizable = false;
        report.first_a = max_completed_op;
        report.first_b = b.op;
      }
    }
  }
  return report;
}

LinearizabilityReport check_inc_read_linearizable(
    const std::vector<CounterOpRecord>& incs,
    const std::vector<CounterOpRecord>& reads) {
  LinearizabilityReport report;
  if (reads.empty()) return report;

  // Sorted event times of the incs: lower bound for a read is how many
  // inc responses precede its invocation, upper bound how many inc
  // invocations precede its response. Binary searches over these give
  // both in O(log m) per read.
  std::vector<SimTime> inc_inv(incs.size());
  std::vector<SimTime> inc_resp(incs.size());
  for (std::size_t i = 0; i < incs.size(); ++i) {
    inc_inv[i] = incs[i].invoked;
    inc_resp[i] = incs[i].responded;
  }
  std::sort(inc_inv.begin(), inc_inv.end());
  std::sort(inc_resp.begin(), inc_resp.end());

  for (const CounterOpRecord& r : reads) {
    const auto lower = static_cast<Value>(
        std::lower_bound(inc_resp.begin(), inc_resp.end(), r.invoked) -
        inc_resp.begin());
    const auto upper = static_cast<Value>(
        std::lower_bound(inc_inv.begin(), inc_inv.end(), r.responded) -
        inc_inv.begin());
    if (r.value < lower || r.value > upper) {
      ++report.violations;
      if (report.linearizable) {
        report.linearizable = false;
        report.first_a = r.op;
        report.first_b = r.op;
      }
    }
  }

  // Read monotonicity: sweep reads by invocation time, carrying the
  // maximum value among reads that responded strictly earlier — the
  // same sweep check_linearizable runs, with <= instead of < (two
  // reads may legally observe the same count).
  std::vector<CounterOpRecord> by_inv = reads;
  std::sort(by_inv.begin(), by_inv.end(),
            [](const CounterOpRecord& a, const CounterOpRecord& b) {
              return a.invoked < b.invoked;
            });
  std::vector<CounterOpRecord> by_resp = reads;
  std::sort(by_resp.begin(), by_resp.end(),
            [](const CounterOpRecord& a, const CounterOpRecord& b) {
              return a.responded < b.responded;
            });
  std::size_t resp_idx = 0;
  Value max_read = -1;
  OpId max_read_op = kNoOp;
  for (const CounterOpRecord& b : by_inv) {
    while (resp_idx < by_resp.size() &&
           by_resp[resp_idx].responded < b.invoked) {
      if (by_resp[resp_idx].value > max_read) {
        max_read = by_resp[resp_idx].value;
        max_read_op = by_resp[resp_idx].op;
      }
      ++resp_idx;
    }
    if (max_read > b.value) {
      ++report.violations;
      if (report.linearizable) {
        report.linearizable = false;
        report.first_a = max_read_op;
        report.first_b = b.op;
      }
    }
  }
  return report;
}

namespace concurrent {

std::vector<CounterOpRecord> HistoryBuffer::snapshot(
    std::size_t first_op) const {
  std::vector<CounterOpRecord> out;
  out.reserve(slots_.size() > first_op ? slots_.size() - first_op : 0);
  for (std::size_t i = first_op; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    const std::int64_t resp = s.responded.load(std::memory_order_acquire);
    if (resp == 0) continue;  // never completed (or never issued)
    const std::int64_t inv = s.invoked.load(std::memory_order_acquire);
    DCNT_CHECK_MSG(inv != 0, "history slot completed but never invoked");
    CounterOpRecord rec;
    rec.op = static_cast<OpId>(i);
    rec.invoked = inv;
    rec.responded = resp;
    rec.value = s.value.load(std::memory_order_relaxed);
    out.push_back(rec);
  }
  return out;
}

}  // namespace concurrent
}  // namespace dcnt
