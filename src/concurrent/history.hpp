// Concurrent counting histories: the record type, the lock-free
// capture buffer, and the linearizability check (DESIGN.md §15).
//
// This is the canonical home of the checker, moved here from
// src/analysis/ so the harnesses below the analysis layer (the threaded
// workload driver and the socket-cluster controller) can run it over
// the histories they just produced. analysis/linearizability.hpp
// re-exports everything and keeps the simulator extraction helper.
//
// The theory, after Herlihy, Shavit & Waarts [HSW96] (cited by the
// paper): counting networks are correct *quiescently* but hand out
// values that can invert real-time order, while serializing structures
// (a central counter, a combining tree, the paper's tree) are
// linearizable. For a counter handing out distinct values 0..m-1, a
// history is linearizable iff no operation A that *responded* before
// operation B was *invoked* received a larger value:
//
//     resp(A) < inv(B)  =>  val(A) < val(B).
//
// (Sufficiency: order ops by value; the condition makes that total
// order consistent with real time, and by construction each op returns
// its predecessor count — a legal sequential counter execution.)
//
// HistoryBuffer is the capture side: one pre-sized slot per op, each a
// triple of atomics, so issuing and completing threads record invoke /
// response wall timestamps and the returned value without locks or
// allocation on the hot path. Timestamp conservatism: the invoke stamp
// is taken just *before* begin_* and the response stamp inside the
// completion callback (so slightly *after* the true response), which
// can only widen intervals and weaken resp(A) < inv(B) constraints —
// the check may miss a borderline violation, never fabricate one.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace dcnt {

struct CounterOpRecord {
  OpId op{kNoOp};
  SimTime invoked{0};
  SimTime responded{0};
  Value value{0};
};

struct LinearizabilityReport {
  bool linearizable{true};
  std::int64_t violations{0};
  /// First violating pair: a responded before b invoked, yet
  /// val(a) > val(b).
  OpId first_a{kNoOp};
  OpId first_b{kNoOp};
  /// Duplicate returned values found (a counter must hand out distinct
  /// values, so any duplicate is itself a violation; the pairs are
  /// counted into `violations` too).
  std::int64_t duplicate_values{0};
};

/// Checks a history of counter operations. Duplicate values are
/// rejected (reported in duplicate_values and violations); with
/// distinct values the real-time condition above is swept in
/// O(m log m).
LinearizabilityReport check_linearizable(std::vector<CounterOpRecord> history);

/// Linearizability for an inc/read counter — the contract of counters
/// whose increments return no ticket (the shm sharded counter: a
/// fetch_add into a per-core cell plus an exact read-side reduction).
/// This is the paper's distinction made executable: fetch-and-inc
/// forces a total order on every increment (check_linearizable above),
/// while inc/read only constrains what READS may observe. A history of
/// incs (values ignored) and reads (value = observed count) is
/// linearizable iff every read r satisfies the interval bound
///
///     #{incs responded before inv(r)}  <=  val(r)
///                                      <=  #{incs invoked before resp(r)}
///
/// (an inc that finished before r started must be counted; an inc that
/// started after r finished must not be) and reads are monotone in
/// real time: resp(r1) < inv(r2) => val(r1) <= val(r2). Sufficiency:
/// place each read at a point where exactly val(r) incs precede it —
/// the bounds guarantee such a point exists inside r's interval, and
/// monotonicity lets all reads take such points in a consistent order.
/// Violations land in the same report shape (first_a/first_b name the
/// offending read and, for bound violations, the read itself).
LinearizabilityReport check_inc_read_linearizable(
    const std::vector<CounterOpRecord>& incs,
    const std::vector<CounterOpRecord>& reads);

namespace concurrent {

/// Lock-free per-op capture of a concurrent run's counting history.
///
/// The issuing thread stamps on_invoke right after begin_* returns the
/// OpId (the stamp itself is taken just before the call); a completion
/// callback — possibly on another thread, possibly racing the invoke
/// store — records the response time and value. Slots are independent
/// atomics, so any number of initiator slots and completion workers
/// write concurrently. snapshot() is for after quiescence: every op
/// that completed has both stamps by then.
class HistoryBuffer {
 public:
  explicit HistoryBuffer(std::size_t max_ops) : slots_(max_ops) {}

  std::size_t capacity() const { return slots_.size(); }

  /// `t_ns` must be nonzero (0 is the "never invoked" sentinel; a
  /// steady_clock reading is never 0 in practice).
  void on_invoke(OpId op, std::int64_t t_ns) {
    Slot& s = slot(op);
    s.invoked.store(t_ns, std::memory_order_release);
  }

  void on_response(OpId op, std::int64_t t_ns, Value value) {
    Slot& s = slot(op);
    s.value.store(value, std::memory_order_relaxed);
    s.responded.store(t_ns, std::memory_order_release);
  }

  /// Records of every completed op with id >= first_op. Call after the
  /// run has quiesced (the caller's join/quiesce provides the ordering
  /// that makes the relaxed value stores visible).
  std::vector<CounterOpRecord> snapshot(std::size_t first_op = 0) const;

 private:
  struct Slot {
    std::atomic<std::int64_t> invoked{0};
    std::atomic<std::int64_t> responded{0};
    std::atomic<Value> value{0};
  };

  Slot& slot(OpId op) {
    return slots_.at(static_cast<std::size_t>(op));
  }

  std::vector<Slot> slots_;
};

}  // namespace concurrent
}  // namespace dcnt
