// ElasticTreeCounter: the paper's §4 tree with *online* reconfiguration
// of its two tuning knobs — fan-out k and retirement age T — driven by
// measured load (DESIGN.md §15).
//
// The rigid geometry of TreeLayout (n = k^(k+1) leaves, disjoint
// replacement pools) is what the Bottleneck Theorem's O(k) accounting
// rests on, so the tree itself is never mutated in place. Instead the
// counter runs a sequence of *epochs*: epoch e is an unmodified
// TreeCounter with parameters (k_e, T_e) over leaves_e = k_e^(k_e+1)
// processors, plus a base value B_e. An operation issued in epoch e
// completes with B_e + (its value within epoch e's tree); since
// B_{e+1} = B_e + I_e with I_e the number of ops issued into epoch e,
// the epochs hand out disjoint value ranges and the union is exactly
// 0..m-1 — the counter contract survives any number of resizes.
//
// Migration protocol (coordinator = processor 0):
//   1. A processor that has issued `resize_period` ops into the current
//      epoch sends ResizeReq to the coordinator (once per epoch). The
//      coordinator picks (k', T') — from a scripted plan, or from the
//      measured global backlog per leaf — and, if they differ from the
//      current epoch's, broadcasts Close(e).
//   2. Close at p: mark the epoch closed locally and reply
//      CloseAck(e, issued_p). Ops starting at a closed processor are
//      stashed. In-flight epoch-e ops are NOT drained — their values
//      B_e..B_e+I_e-1 are already reserved (issued_p counts them), so
//      they may complete arbitrarily late without colliding with the
//      next epoch.
//   3. When all n acks are in, the coordinator computes
//      B_{e+1} = B_e + sum(issued_p) and broadcasts
//      Open(e+1, k', T', B_{e+1}). Open at p: adopt the new epoch,
//      replay the op stash into it, and re-dispatch any control or
//      epoch-routed messages that arrived ahead of the Open (delivery
//      is not FIFO).
//
// Linearizability is preserved across the switch: for A issued in epoch
// e+1 and B issued in epoch e, inv(B) precedes B's CloseAck, which
// precedes the Open, which precedes inv(A) — so resp(A) < inv(B) is
// impossible and val(A) > val(B) can never invert real-time order.
//
// The processor set is sized for the largest allowed fan-out
// (n = max_k^(max_k+1)); epochs with fewer leaves serve processors
// p >= leaves_e through a one-hop relay to leaf p mod leaves_e (the
// extra message is counted — elasticity's honest price).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tree_counter.hpp"
#include "sim/protocol.hpp"
#include "support/relaxed.hpp"

namespace dcnt::concurrent {

/// One scripted resize: the parameters the next migration switches to.
struct ElasticStep {
  int k{2};
  /// 0 selects the default 4k.
  std::int64_t age_threshold{0};
};

struct ElasticTreeParams {
  /// Epoch-0 tree parameters.
  int initial_k{2};
  std::int64_t initial_age_threshold{0};  ///< 0 = 4 * initial_k
  /// Fan-out bounds for reconfiguration. The processor set is sized for
  /// max_k (n = max_k^(max_k+1)) and never changes.
  int min_k{2};
  int max_k{3};
  /// A processor requests a resize evaluation after issuing this many
  /// ops into the current epoch (once per epoch). 0 disables
  /// reconfiguration entirely (the counter degenerates to epoch 0's
  /// plain tree).
  std::int64_t resize_period{512};
  /// Scripted resizes, applied in order (the last step repeats).
  /// Empty = the load policy below decides.
  std::vector<ElasticStep> plan;
  /// Load policy (plan empty): grow k when the global backlog
  /// (started - completed) per leaf reaches `grow_backlog_per_leaf`,
  /// shrink when it is at or under `shrink_backlog_per_leaf`.
  std::int64_t grow_backlog_per_leaf{4};
  std::int64_t shrink_backlog_per_leaf{0};
};

class ElasticTreeCounter final : public CounterProtocol {
 public:
  /// Epochs are slots in a fixed array so concurrent readers never see
  /// a reallocation; 32 resizes is far beyond any bench's appetite (the
  /// coordinator simply stops evaluating when they are exhausted).
  static constexpr std::uint32_t kMaxEpochs = 32;

  // Control tags (>= 100; tags below that are epoch-routed inner tree
  // messages whose args[0] is the epoch).
  static constexpr std::int32_t kTagClose = 100;      ///< [epoch]
  static constexpr std::int32_t kTagCloseAck = 101;   ///< [epoch, issued_p]
  static constexpr std::int32_t kTagOpen = 102;       ///< [epoch, k, T, base]
  static constexpr std::int32_t kTagResizeReq = 103;  ///< [epoch, backlog]
  static constexpr std::int32_t kTagRelay = 104;      ///< [epoch]; msg.op = op
  /// Self-send used by open_at to re-inject a stashed op with its own
  /// op id as the handler context (an inline replay would run under the
  /// Open message's op attribution and mislabel the tree's sends).
  static constexpr std::int32_t kTagReplay = 105;     ///< [epoch]; msg.op = op

  explicit ElasticTreeCounter(ElasticTreeParams params);
  ElasticTreeCounter(const ElasticTreeCounter& other);
  ElasticTreeCounter& operator=(const ElasticTreeCounter&) = delete;

  // CounterProtocol:
  std::size_t num_processors() const override;
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override;
  void on_message(Context& ctx, const Message& msg) override;
  std::unique_ptr<CounterProtocol> clone_counter() const override;
  std::string name() const override;
  /// Per-epoch ProcStates, the coordinator block and the epoch slots
  /// are all single-writer (their owning processor's handlers); epoch
  /// publication is an acquire/release CAS; global tallies are
  /// RelaxedCounters; the inner TreeCounter is itself shard-safe.
  bool shard_safe() const override { return true; }
  void on_shard_start(std::size_t workers) override;
  void check_quiescent(std::size_t ops_completed) const override;

  // Introspection (quiescence required, like TreeCounter::value()).
  Value value() const;
  /// Epochs opened so far (>= 1; epoch 0 opens at construction).
  std::uint32_t epochs_used() const;
  /// Completed migrations.
  std::size_t resizes() const;
  int current_k() const;
  std::int64_t current_age_threshold() const;
  const ElasticTreeParams& params() const { return params_; }

 private:
  /// One epoch slot. `live` is the publication point: the winner of the
  /// creation race stores the metadata (relaxed) *before* the release
  /// CAS of `live`, so any reader that acquires a non-null tree pointer
  /// reads consistent parameters. Losing candidates are discarded;
  /// `owner` (the winner's) holds lifetime.
  struct Epoch {
    std::atomic<TreeCounter*> live{nullptr};
    std::unique_ptr<TreeCounter> owner;
    std::atomic<Value> base{0};
    std::atomic<std::int64_t> k{0};
    std::atomic<std::int64_t> leaves{0};
    std::atomic<std::int64_t> age_threshold{0};
  };

  /// Per-processor migration state; written only by handlers running at
  /// that processor.
  struct ProcState {
    std::uint32_t epoch{0};
    bool closed{false};
    /// Ops this processor issued into its current epoch.
    std::int64_t issued{0};
    bool resize_requested{false};
    /// Ops that arrived while closed; replayed into the next epoch.
    std::vector<OpId> op_stash;
    /// Messages that outran the Open they depend on (non-FIFO
    /// delivery); re-dispatched when their epoch opens here.
    std::vector<Message> msg_stash;
  };

  /// Coordinator bookkeeping; written only by processor-0 handlers.
  struct Coordinator {
    bool migrating{false};
    std::uint32_t closing_epoch{0};
    std::size_t acks_pending{0};
    std::int64_t issued_sum{0};
    /// Highest epoch already evaluated (one evaluation per epoch).
    std::int64_t last_evaluated{-1};
    int next_k{0};
    std::int64_t next_age_threshold{0};
    std::size_t resizes_done{0};
  };

  const Epoch& slot(std::uint32_t epoch) const;
  Epoch& slot(std::uint32_t epoch);
  /// Idempotent epoch creation (first caller wins the CAS).
  void publish_epoch(std::uint32_t epoch, int k, std::int64_t age_threshold,
                     Value base);
  /// Issue `op` at `p`: stash if closed, else count it into the current
  /// epoch and start it (directly, or via relay when p >= leaves).
  void issue_op(Context& ctx, ProcessorId p, OpId op);
  void maybe_request_resize(Context& ctx, ProcessorId p);
  /// Coordinator: decide (k', T') for epoch `e` and start the migration
  /// if they differ from the current parameters.
  void evaluate_resize(Context& ctx, std::uint32_t e);
  void ack_close(Context& ctx, std::int64_t issued);
  void finish_migration(Context& ctx);
  /// Close the current epoch at p (ack to the coordinator is the
  /// caller's job for processor 0, a message for everyone else).
  void close_at(Context& ctx, ProcessorId p, std::uint32_t e);
  /// Adopt epoch `e` at p, replay the op stash, re-dispatch stashed
  /// messages that were waiting for this epoch.
  void open_at(Context& ctx, ProcessorId p, std::uint32_t e);
  void handle_close(Context& ctx, const Message& msg);
  void handle_close_ack(Context& ctx, const Message& msg);
  void handle_open(Context& ctx, const Message& msg);
  void handle_resize_req(Context& ctx, const Message& msg);
  void handle_relay(Context& ctx, const Message& msg);
  void route_inner(Context& ctx, const Message& msg);

  ElasticTreeParams params_;
  std::int64_t n_;  ///< max_k^(max_k+1), fixed for the protocol's life
  std::vector<ProcState> procs_;
  Coordinator coord_;
  std::vector<Epoch> epochs_;  ///< kMaxEpochs slots, fixed size
  RelaxedCounter started_{0};
  RelaxedCounter completed_{0};
  std::size_t shard_workers_{0};
};

}  // namespace dcnt::concurrent
