// Causal message tracing.
//
// The paper visualizes an inc operation as a DAG of messages (Figure 1)
// and linearizes it into a communication list (Figure 2). The trace
// records, for every network message, which delivery caused its send —
// exactly the arcs of that DAG — so the analysis layer can reconstruct
// the DAG, the list, and the participant sets I_p.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace dcnt {

/// Index into Trace::records(). -1 = the send was an operation initiation
/// (the source node of the paper's DAG).
using RecordId = std::int64_t;
inline constexpr RecordId kNoRecord = -1;

struct MessageRecord {
  RecordId id{kNoRecord};
  RecordId parent{kNoRecord};  ///< delivery that caused this send
  ProcessorId src{kNoProcessor};
  ProcessorId dst{kNoProcessor};
  std::int32_t tag{0};
  OpId op{kNoOp};
  SimTime send_time{0};
  SimTime deliver_time{0};
  std::size_t words{0};
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(bool enabled) : enabled_(enabled) {}

  bool enabled() const { return enabled_; }

  /// Records a send; returns its RecordId (kNoRecord when disabled).
  RecordId on_send(RecordId parent, const struct Message& msg, OpId op,
                   SimTime send_time);
  void on_deliver(RecordId id, SimTime deliver_time);

  const std::vector<MessageRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

 private:
  bool enabled_{false};
  std::vector<MessageRecord> records_;
};

}  // namespace dcnt
