#include "sim/delay.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dcnt {

SimTime DelayModel::sample(Rng& rng) const {
  switch (kind) {
    case DelayKind::kFixed:
      return fixed;
    case DelayKind::kUniform:
      return rng.next_in(min, max);
    case DelayKind::kHeavyTail: {
      // Pareto-ish: most messages take `min`, a few take up to `max`.
      const double u = std::max(rng.next_double(), 1e-9);
      const double d = static_cast<double>(min) / std::sqrt(u);
      return std::min<SimTime>(max, static_cast<SimTime>(d));
    }
  }
  return 1;
}

DelayModel DelayModel::fixed_delay(SimTime d) {
  DCNT_CHECK_MSG(d >= 1, "fixed delay must be a positive tick count");
  DelayModel m;
  m.kind = DelayKind::kFixed;
  m.fixed = d;
  return m;
}

DelayModel DelayModel::uniform(SimTime lo, SimTime hi) {
  DCNT_CHECK_MSG(lo >= 1, "uniform delay lower bound must be >= 1");
  DCNT_CHECK_MSG(hi >= lo, "uniform delay needs max >= min");
  DelayModel m;
  m.kind = DelayKind::kUniform;
  m.min = lo;
  m.max = hi;
  return m;
}

DelayModel DelayModel::heavy_tail(SimTime lo, SimTime cap) {
  DCNT_CHECK_MSG(lo >= 1, "heavy-tail delay lower bound must be >= 1");
  DCNT_CHECK_MSG(cap >= lo, "heavy-tail delay needs cap >= min");
  DelayModel m;
  m.kind = DelayKind::kHeavyTail;
  m.min = lo;
  m.max = cap;
  return m;
}

SimTime DelayModel::sample_for(Rng& rng, ProcessorId src,
                               ProcessorId dst) const {
  const SimTime base = sample(rng);
  if (slow_pid != kNoProcessor && (src == slow_pid || dst == slow_pid)) {
    return base * slow_factor;
  }
  return base;
}

DelayModel DelayModel::with_slow_processor(DelayModel base,
                                           ProcessorId slow_pid,
                                           SimTime factor) {
  DCNT_CHECK_MSG(factor >= 1, "slow_factor must be >= 1 (1 = no skew)");
  base.slow_pid = slow_pid;
  base.slow_factor = factor;
  return base;
}

}  // namespace dcnt
