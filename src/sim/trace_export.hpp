// Chrome trace-event export of a causal message trace.
//
// Serializes Trace records into the Chrome trace-event JSON format
// (the `traceEvents` object form), loadable by chrome://tracing and
// Perfetto's legacy importer. Each processor becomes one named thread
// track; every message contributes a 1-tick "send" slice on its source
// track, a 1-tick "recv" slice on its destination track, and a flow
// arrow binding the two, so the paper's inc DAG (Figure 1) renders as
// arrows hopping between processor tracks over simulated time.
//
// Simulated ticks are written as microseconds 1:1 — the format wants
// integers in `ts` and the absolute unit is irrelevant for inspection.
#pragma once

#include <string>

#include "sim/trace.hpp"

namespace dcnt {

/// Whole-trace export. Records that were sent but never delivered
/// (dropped by fault injection) emit only their send slice, with
/// `"dropped": true` in args and no flow arrow.
std::string to_chrome_trace(const Trace& trace);

}  // namespace dcnt
