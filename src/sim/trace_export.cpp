#include "sim/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

namespace dcnt {

namespace {

void append(std::string& out, const char* fmt, long long a) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, a);
  out += buf;
}

/// Common tail of every event: the record's identity and causal parent,
/// so a slice clicked in the viewer names its DAG arc.
void append_args(std::string& out, const MessageRecord& rec, bool dropped) {
  out += "\"args\":{";
  append(out, "\"record\":%lld", rec.id);
  append(out, ",\"parent\":%lld", rec.parent);
  append(out, ",\"op\":%lld", rec.op);
  append(out, ",\"tag\":%lld", static_cast<long long>(rec.tag));
  append(out, ",\"src\":%lld", static_cast<long long>(rec.src));
  append(out, ",\"dst\":%lld", static_cast<long long>(rec.dst));
  append(out, ",\"words\":%lld", static_cast<long long>(rec.words));
  if (dropped) out += ",\"dropped\":true";
  out += "}";
}

}  // namespace

std::string to_chrome_trace(const Trace& trace) {
  const std::vector<MessageRecord>& records = trace.records();

  std::string out;
  out.reserve(256 + records.size() * 384);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";

  // Name the process and one thread per participating processor, so
  // tracks read "processor 3" instead of a bare tid.
  std::set<ProcessorId> procs;
  for (const MessageRecord& rec : records) {
    procs.insert(rec.src);
    procs.insert(rec.dst);
  }
  out +=
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"dcnt\"}}";
  for (const ProcessorId p : procs) {
    out += ",\n{\"ph\":\"M\",\"pid\":0,";
    append(out, "\"tid\":%lld,", static_cast<long long>(p));
    out += "\"name\":\"thread_name\",\"args\":{\"name\":\"processor ";
    append(out, "%lld", static_cast<long long>(p));
    out += "\"}}";
  }

  for (const MessageRecord& rec : records) {
    // Delivery times are strictly after send times (delays are >= 1),
    // so a record still at its zero-initialized deliver_time was
    // dropped in flight.
    const bool dropped = rec.deliver_time <= rec.send_time;

    out += ",\n{\"ph\":\"X\",\"pid\":0,";
    append(out, "\"tid\":%lld,", static_cast<long long>(rec.src));
    append(out, "\"ts\":%lld,", static_cast<long long>(rec.send_time));
    out += "\"dur\":1,\"cat\":\"send\",\"name\":\"send tag ";
    append(out, "%lld", static_cast<long long>(rec.tag));
    out += "\",";
    append_args(out, rec, dropped);
    out += "}";
    if (dropped) continue;

    out += ",\n{\"ph\":\"X\",\"pid\":0,";
    append(out, "\"tid\":%lld,", static_cast<long long>(rec.dst));
    append(out, "\"ts\":%lld,", static_cast<long long>(rec.deliver_time));
    out += "\"dur\":1,\"cat\":\"recv\",\"name\":\"recv tag ";
    append(out, "%lld", static_cast<long long>(rec.tag));
    out += "\",";
    append_args(out, rec, dropped);
    out += "}";

    // Flow arrow from the send slice to the recv slice. The start event
    // binds to the enclosing slice at the same (tid, ts); bp="e" makes
    // the finish bind to the recv slice rather than the next one.
    out += ",\n{\"ph\":\"s\",\"pid\":0,";
    append(out, "\"tid\":%lld,", static_cast<long long>(rec.src));
    append(out, "\"ts\":%lld,", static_cast<long long>(rec.send_time));
    append(out, "\"id\":%lld,", rec.id);
    out += "\"cat\":\"msg\",\"name\":\"msg\"}";
    out += ",\n{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,";
    append(out, "\"tid\":%lld,", static_cast<long long>(rec.dst));
    append(out, "\"ts\":%lld,", static_cast<long long>(rec.deliver_time));
    append(out, "\"id\":%lld,", rec.id);
    out += "\"cat\":\"msg\",\"name\":\"msg\"}";
  }

  out += "\n]}\n";
  return out;
}

}  // namespace dcnt
