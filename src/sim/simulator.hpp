// Discrete-event simulator for the paper's asynchronous message-passing
// model (§2): n processors, any-to-any channels, unbounded-but-finite
// delays, and — by default — no failures. Faults (message drop,
// duplication, processor crash) are opt-in via SimConfig::faults and
// injected deterministically by a FaultPlane (faults/fault_plane.hpp);
// an empty schedule leaves every run bit-identical to the fault-free
// model.
//
// Determinism & reproducibility: delivery order is a pure function of
// (protocol, config.seed). Cloning a Simulator (copy construction)
// deep-copies the protocol state, event queue, random stream, metrics
// and trace, which is what the lower-bound adversary uses to dry-run
// candidate operations.
//
// Message accounting: every cross-processor send increments the
// sender's and (on delivery) the receiver's load — the m_p of §3.
// Self-addressed sends (src == dst) are delivered through the queue for
// uniformity but are NOT counted: a processor talking to itself is a
// local operation, not network traffic, and the paper counts messages
// between processors. Local wake-ups (send_local) are likewise uncounted.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "faults/fault_plane.hpp"
#include "sim/delay.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"
#include "support/rng.hpp"

namespace dcnt {

struct SimConfig {
  std::uint64_t seed{1};
  DelayModel delay{};
  /// Enforce per-(src,dst) FIFO delivery. The paper's model does not
  /// require it; the tree counter must work either way (tested).
  bool fifo_channels{false};
  /// Record the causal message trace (needed for DAG/list analysis;
  /// costs memory on big runs).
  bool enable_trace{false};
  /// Optional sparse network: logical messages are relayed hop by hop
  /// along the topology's route, every hop counted as one message at
  /// both endpoints (routers bear load). Null = the paper's complete
  /// network (direct delivery). Must cover >= the protocol's processor
  /// count. Shared (immutable) between simulator clones.
  std::shared_ptr<const Topology> topology{};
  /// Optional fault injection (drop / duplicate / crash). The plane is
  /// seeded from `seed` with its own stream, so an empty schedule (the
  /// default) changes nothing — not even the delay-randomness draws.
  FaultSchedule faults{};
};

class Simulator final : private Context {
 public:
  Simulator(std::unique_ptr<CounterProtocol> protocol, SimConfig config);

  /// Deep snapshot (protocol cloned; queue, rng, metrics, trace copied).
  Simulator(const Simulator& other);
  /// Same as restore(other); kept assignment-shaped for value semantics.
  Simulator& operator=(const Simulator& other);
  Simulator(Simulator&&) noexcept = default;
  Simulator& operator=(Simulator&&) noexcept = default;
  ~Simulator() override = default;

  /// Initiate an inc at `origin`; returns the operation's id (0,1,2,...).
  OpId begin_inc(ProcessorId origin);

  /// Initiate a generic operation with arguments (for protocols beyond
  /// plain counters, e.g. the tree priority queue). Counters treat it
  /// as an inc.
  OpId begin_op(ProcessorId origin, const std::vector<std::int64_t>& args);

  /// Invocation / response times of an operation (response only after
  /// completion) — the history the linearizability checker consumes.
  SimTime op_invoked_at(OpId op) const;
  SimTime op_responded_at(OpId op) const;

  /// Deliver the next pending message. Returns false when idle.
  bool step();

  /// Deliver the `index`-th pending message (0 <= index <
  /// pending_messages(), ordered by send sequence) regardless of its
  /// scheduled time — the asynchronous model permits any order, and the
  /// schedule explorer (analysis/explore.hpp) uses this to enumerate
  /// them exhaustively. Not meaningful with fifo_channels (enforced:
  /// DCNT_CHECK).
  void step_specific(std::size_t index);

  /// Deliver messages until none remain. Aborts (DCNT_CHECK) after
  /// `max_steps` deliveries — a protocol that never quiesces is a bug.
  void run_until_quiescent(std::int64_t max_steps = 100'000'000);

  /// Replaces the delivery-randomness stream AND forgets accumulated
  /// per-channel FIFO state. The paper's adversary quantifies over all
  /// nondeterministic processes; reseeding clones lets the analysis
  /// layer sample several realizable schedules per candidate operation,
  /// and each sample must be a function of (state, seed) alone — stale
  /// channel_last_ entries would couple samples through delivery floors
  /// inherited from a previous schedule draw.
  void reseed(std::uint64_t seed) {
    rng_ = Rng(seed);
    faults_.reseed(seed);
    channel_last_.clear();
  }

  /// Deep copy, named for symmetry with restore().
  Simulator snapshot() const { return Simulator(*this); }

  /// Re-applies `snapshot`'s state into this simulator in place,
  /// reusing already-allocated buffers (event vector, metrics, trace,
  /// result slots, and — when the protocol types match — the protocol's
  /// own storage). Semantically identical to `*this = snapshot` but
  /// cheap: this is how the adversary and explorer recycle one scratch
  /// simulator per worker instead of deep-allocating a clone per
  /// dry-run.
  void restore(const Simulator& snapshot);

  bool quiescent() const { return queue_.empty(); }
  std::size_t pending_messages() const { return queue_.size(); }
  /// Channels with recorded FIFO delivery state (empty unless
  /// fifo_channels; cleared by reseed() — tests pin that contract).
  std::size_t tracked_fifo_channels() const { return channel_last_.size(); }

  std::optional<Value> result(OpId op) const;
  std::size_t ops_started() const { return results_.size(); }
  std::size_t ops_completed() const { return completed_; }

  /// The fault-injection plane (inactive for an empty schedule).
  const FaultPlane& fault_plane() const { return faults_; }

  const Metrics& metrics() const { return metrics_; }
  Metrics& mutable_metrics() { return metrics_; }
  const Trace& trace() const { return trace_; }
  Trace& mutable_trace() { return trace_; }
  const CounterProtocol& counter() const { return *protocol_; }
  CounterProtocol& mutable_counter() { return *protocol_; }
  std::size_t num_processors() const { return protocol_->num_processors(); }
  const SimConfig& config() const { return config_; }
  std::int64_t deliveries() const { return deliveries_; }

  // Context interface (used by protocol handlers).
  void send(Message msg) override;
  void send_local(ProcessorId p, std::int32_t tag,
                  std::vector<std::int64_t> args, SimTime delay) override;
  void complete(OpId op, Value value) override;
  SimTime now() const override { return now_; }
  Rng& rng() override { return rng_; }

 private:
  struct Event {
    SimTime deliver_time{0};
    std::int64_t seq{0};
    RecordId record{kNoRecord};  ///< trace record of this hop (if traced)
    RecordId cause{kNoRecord};   ///< causal parent for sends it triggers
    ProcessorId at{kNoProcessor};  ///< hop destination (== msg.dst if direct)
    std::int64_t ttl{0};           ///< relay budget (routing-loop guard)
    Message msg;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.deliver_time != b.deliver_time)
        return a.deliver_time > b.deliver_time;
      return a.seq > b.seq;
    }
  };

  void enqueue_hop(Message msg, ProcessorId hop_src, ProcessorId hop_dst,
                   RecordId record, RecordId cause, std::int64_t ttl);
  /// Event-queue mechanics of enqueue_hop, bypassing the fault plane
  /// (used for the second copy of a duplicated hop).
  void raw_enqueue(Message msg, ProcessorId hop_src, ProcessorId hop_dst,
                   RecordId record, RecordId cause, std::int64_t ttl);
  void deliver(Event ev);
  static std::uint64_t channel_key(ProcessorId src, ProcessorId dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(dst);
  }

  std::unique_ptr<CounterProtocol> protocol_;
  SimConfig config_;
  Rng rng_;
  FaultPlane faults_;
  /// Pending events as a binary min-heap (std::push_heap/pop_heap with
  /// EventLater). A plain vector instead of std::priority_queue so the
  /// storage can be reserve()d, copy-assigned without reallocating
  /// (the restore() fast path), and inspected in place by
  /// step_specific() without draining.
  std::vector<Event> queue_;
  std::unordered_map<std::uint64_t, SimTime> channel_last_;
  Metrics metrics_;
  Trace trace_;
  std::vector<std::optional<Value>> results_;
  std::vector<SimTime> invoked_at_;
  std::vector<SimTime> responded_at_;  // -1 while outstanding
  std::size_t completed_{0};
  SimTime now_{0};
  std::int64_t seq_{0};
  std::int64_t deliveries_{0};

  // Transient handler context.
  RecordId current_parent_{kNoRecord};
  OpId current_op_{kNoOp};
  bool in_handler_{false};
};

}  // namespace dcnt
