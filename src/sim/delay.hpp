// Message delay models.
//
// The paper's network is asynchronous: "a message arrives at its
// destination an unbounded but finite amount of time after it has been
// sent". Protocol correctness must therefore not depend on delivery
// order; experiments exercise several delay regimes to check that, while
// message *counts* (the quantity the paper bounds) remain comparable.
#pragma once

#include <cstdint>

#include "sim/types.hpp"
#include "support/rng.hpp"

namespace dcnt {

enum class DelayKind : std::uint8_t {
  kFixed,      ///< every message takes `fixed` ticks (synchronous-like)
  kUniform,    ///< uniform integer in [min, max]
  kHeavyTail,  ///< min + floor(min / U^0.5) capped at max; rare stragglers
};

/// Value-semantic delay sampler. Copying a Simulator copies its model.
///
/// The optional slow-processor skew models adversarially asymmetric
/// asynchrony: every message to or from `slow_pid` takes `slow_factor`
/// times longer. The paper's model allows arbitrary finite delays, so
/// no protocol result may depend on this; tests point the skew at the
/// busiest processors and require identical outcomes.
struct DelayModel {
  DelayKind kind{DelayKind::kFixed};
  SimTime fixed{1};
  SimTime min{1};
  SimTime max{1};
  ProcessorId slow_pid{kNoProcessor};
  SimTime slow_factor{1};

  /// Endpoint-independent sample (slow-processor skew not applied).
  SimTime sample(Rng& rng) const;
  /// Sample for a concrete channel; applies the slow-processor skew.
  SimTime sample_for(Rng& rng, ProcessorId src, ProcessorId dst) const;

  static DelayModel fixed_delay(SimTime d);
  static DelayModel uniform(SimTime lo, SimTime hi);
  static DelayModel heavy_tail(SimTime lo, SimTime cap);
  /// `base` with all traffic touching `slow_pid` stretched by `factor`.
  static DelayModel with_slow_processor(DelayModel base, ProcessorId slow_pid,
                                        SimTime factor);
};

}  // namespace dcnt
