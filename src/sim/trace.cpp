#include "sim/trace.hpp"

#include "sim/message.hpp"
#include "support/check.hpp"

namespace dcnt {

RecordId Trace::on_send(RecordId parent, const Message& msg, OpId op,
                        SimTime send_time) {
  if (!enabled_) return kNoRecord;
  MessageRecord rec;
  rec.id = static_cast<RecordId>(records_.size());
  rec.parent = parent;
  rec.src = msg.src;
  rec.dst = msg.dst;
  rec.tag = msg.tag;
  rec.op = op;
  rec.send_time = send_time;
  rec.deliver_time = -1;
  rec.words = msg.size_words();
  records_.push_back(rec);
  return rec.id;
}

void Trace::on_deliver(RecordId id, SimTime deliver_time) {
  if (!enabled_ || id == kNoRecord) return;
  DCNT_CHECK(id >= 0 && static_cast<std::size_t>(id) < records_.size());
  records_[static_cast<std::size_t>(id)].deliver_time = deliver_time;
}

}  // namespace dcnt
