// Fundamental identifier types shared across the simulator and all
// protocols.
//
// Paper model (§2): processors are identified 1..n; we use 0..n-1
// internally and translate only in human-facing output.
#pragma once

#include <cstdint>

namespace dcnt {

/// Processor index in [0, n). -1 means "none" (e.g. the root's parent).
using ProcessorId = std::int32_t;

/// Identifier of one counting operation (assigned by the simulator in
/// initiation order). kNoOp marks protocol-internal traffic that is not
/// attributable to a single operation (none in the paper's protocols,
/// but supported).
using OpId = std::int64_t;

/// Simulated time. Message delays are positive integers; the absolute
/// scale is meaningless — only ordering matters to the protocols.
using SimTime = std::int64_t;

/// Counter values.
using Value = std::int64_t;

/// Identifier of one named counter in the multi-key service fabric
/// (src/service/). kNoKey marks single-counter traffic — everything
/// predating the fabric — which keeps the classic paths byte-identical.
using KeyId = std::int64_t;

inline constexpr ProcessorId kNoProcessor = -1;
inline constexpr OpId kNoOp = -1;
inline constexpr KeyId kNoKey = -1;

}  // namespace dcnt
