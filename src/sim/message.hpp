// Messages exchanged between processors.
//
// A message is a protocol-defined integer tag plus a small vector of
// integer words. The paper cares that messages stay short (O(log n)
// bits); we record the word count so experiments can assert that no
// protocol smuggles large state inside single messages.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace dcnt {

struct Message {
  ProcessorId src{kNoProcessor};
  ProcessorId dst{kNoProcessor};
  std::int32_t tag{0};
  OpId op{kNoOp};
  /// Counter key this message belongs to (multi-key service fabric);
  /// kNoKey for classic single-counter traffic. Carried on the wire in
  /// a keyed envelope (kKeyedMsg) so per-key load accounting survives
  /// the cluster path.
  KeyId key{kNoKey};
  std::vector<std::int64_t> args;

  /// True for self-addressed scheduling aids (timeouts). Local messages
  /// are delivered by the event loop but are *not* network traffic: they
  /// are excluded from all load metrics and traces.
  bool local{false};

  std::size_t size_words() const { return args.size() + 1; }
};

}  // namespace dcnt
