#include "sim/topology.hpp"

#include <cmath>

#include "support/check.hpp"

namespace dcnt {

std::int64_t Topology::distance(ProcessorId from, ProcessorId to) const {
  DCNT_CHECK(from >= 0 && from < num_nodes());
  DCNT_CHECK(to >= 0 && to < num_nodes());
  if (from == to) return 0;
  std::int64_t hops = 0;
  ProcessorId at = from;
  while (at != to) {
    at = next_hop(at, to);
    ++hops;
    DCNT_CHECK_MSG(hops <= num_nodes(), "routing loop");
  }
  return hops;
}

CompleteTopology::CompleteTopology(std::int64_t n) : n_(n) {
  DCNT_CHECK(n >= 1);
}

ProcessorId CompleteTopology::next_hop(ProcessorId from, ProcessorId to) const {
  DCNT_CHECK(from != to);
  return to;
}

RingTopology::RingTopology(std::int64_t n) : n_(n) { DCNT_CHECK(n >= 2); }

ProcessorId RingTopology::next_hop(ProcessorId from, ProcessorId to) const {
  DCNT_CHECK(from != to);
  const std::int64_t forward = (to - from + n_) % n_;
  if (forward <= n_ - forward) {
    return static_cast<ProcessorId>((from + 1) % n_);
  }
  return static_cast<ProcessorId>((from - 1 + n_) % n_);
}

TorusTopology::TorusTopology(std::int64_t n, std::int64_t cols) : n_(n) {
  DCNT_CHECK(n >= 2);
  if (cols <= 0) {
    cols = static_cast<std::int64_t>(std::round(std::sqrt(static_cast<double>(n))));
    while (cols > 1 && n % cols != 0) --cols;
  }
  cols_ = cols;
  DCNT_CHECK_MSG(n % cols_ == 0, "torus needs n == rows*cols");
  rows_ = n / cols_;
}

ProcessorId TorusTopology::next_hop(ProcessorId from, ProcessorId to) const {
  DCNT_CHECK(from != to);
  const std::int64_t fr = from / cols_;
  const std::int64_t fc = from % cols_;
  const std::int64_t tr = to / cols_;
  const std::int64_t tc = to % cols_;
  // Dimension-order: fix the column first, then the row; wrap the
  // shorter way around.
  if (fc != tc) {
    const std::int64_t forward = (tc - fc + cols_) % cols_;
    const std::int64_t nc =
        forward <= cols_ - forward ? (fc + 1) % cols_ : (fc - 1 + cols_) % cols_;
    return static_cast<ProcessorId>(fr * cols_ + nc);
  }
  const std::int64_t forward = (tr - fr + rows_) % rows_;
  const std::int64_t nr =
      forward <= rows_ - forward ? (fr + 1) % rows_ : (fr - 1 + rows_) % rows_;
  return static_cast<ProcessorId>(nr * cols_ + fc);
}

HypercubeTopology::HypercubeTopology(std::int64_t n) : n_(n) {
  DCNT_CHECK(n >= 2);
  DCNT_CHECK_MSG((n & (n - 1)) == 0, "hypercube needs n == 2^d");
  dims_ = 0;
  while ((1LL << dims_) < n) ++dims_;
}

ProcessorId HypercubeTopology::next_hop(ProcessorId from, ProcessorId to) const {
  DCNT_CHECK(from != to);
  const std::uint32_t diff =
      static_cast<std::uint32_t>(from) ^ static_cast<std::uint32_t>(to);
  const std::uint32_t lowest = diff & (~diff + 1);  // lowest set bit
  return static_cast<ProcessorId>(static_cast<std::uint32_t>(from) ^ lowest);
}

}  // namespace dcnt
