#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"

namespace dcnt {

Simulator::Simulator(std::unique_ptr<CounterProtocol> protocol,
                     SimConfig config)
    : protocol_(std::move(protocol)),
      config_(config),
      rng_(config.seed),
      faults_(config.faults, config.seed),
      metrics_(protocol_->num_processors()),
      trace_(config.enable_trace) {
  DCNT_CHECK(protocol_ != nullptr);
  DCNT_CHECK(protocol_->num_processors() > 0);
  if (config_.topology != nullptr) {
    DCNT_CHECK_MSG(static_cast<std::size_t>(config_.topology->num_nodes()) >=
                       protocol_->num_processors(),
                   "topology smaller than the processor set");
  }
  // Pre-size the hot storage: dry-run clones live for exactly one op,
  // so growth-by-doubling would otherwise dominate their allocation
  // profile.
  queue_.reserve(64);
  const std::size_t n = protocol_->num_processors();
  results_.reserve(n);
  invoked_at_.reserve(n);
  responded_at_.reserve(n);
}

Simulator::Simulator(const Simulator& other)
    : protocol_(other.protocol_->clone_counter()),
      config_(other.config_),
      rng_(other.rng_),
      faults_(other.faults_),
      queue_(other.queue_),
      channel_last_(other.channel_last_),
      metrics_(other.metrics_),
      trace_(other.trace_),
      results_(other.results_),
      invoked_at_(other.invoked_at_),
      responded_at_(other.responded_at_),
      completed_(other.completed_),
      now_(other.now_),
      seq_(other.seq_),
      deliveries_(other.deliveries_) {
  DCNT_CHECK_MSG(!other.in_handler_, "cannot clone mid-delivery");
}

Simulator& Simulator::operator=(const Simulator& other) {
  restore(other);
  return *this;
}

void Simulator::restore(const Simulator& other) {
  if (this == &other) return;
  DCNT_CHECK_MSG(!other.in_handler_, "cannot snapshot mid-delivery");
  DCNT_CHECK_MSG(!in_handler_, "cannot restore mid-delivery");
  // Copy-assignment everywhere on purpose: vectors (queue, metrics,
  // trace, results) overwrite their existing elements and keep their
  // capacity, so a scratch simulator that has been restored once stops
  // allocating on subsequent restores. The protocol joins in when its
  // concrete type matches (try_assign_from); otherwise fall back to a
  // fresh clone.
  if (protocol_ == nullptr || !protocol_->try_assign_from(*other.protocol_)) {
    protocol_ = other.protocol_->clone_counter();
  }
  config_ = other.config_;  // topology is a shared immutable pointer
  rng_ = other.rng_;
  faults_ = other.faults_;
  queue_ = other.queue_;
  channel_last_ = other.channel_last_;
  metrics_ = other.metrics_;
  trace_ = other.trace_;
  results_ = other.results_;
  invoked_at_ = other.invoked_at_;
  responded_at_ = other.responded_at_;
  completed_ = other.completed_;
  now_ = other.now_;
  seq_ = other.seq_;
  deliveries_ = other.deliveries_;
  current_parent_ = kNoRecord;
  current_op_ = kNoOp;
  in_handler_ = false;
}

OpId Simulator::begin_inc(ProcessorId origin) {
  return begin_op(origin, {});
}

OpId Simulator::begin_op(ProcessorId origin,
                         const std::vector<std::int64_t>& args) {
  DCNT_CHECK(origin >= 0 &&
             static_cast<std::size_t>(origin) < num_processors());
  const OpId op = static_cast<OpId>(results_.size());
  results_.emplace_back(std::nullopt);
  invoked_at_.push_back(now_);
  responded_at_.push_back(-1);
  DCNT_CHECK(!in_handler_);
  in_handler_ = true;
  current_parent_ = kNoRecord;
  current_op_ = op;
  if (args.empty()) {
    protocol_->start_inc(*this, origin, op);
  } else {
    protocol_->start_op(*this, origin, op, args);
  }
  in_handler_ = false;
  current_op_ = kNoOp;
  return op;
}

SimTime Simulator::op_invoked_at(OpId op) const {
  DCNT_CHECK(op >= 0 && static_cast<std::size_t>(op) < invoked_at_.size());
  return invoked_at_[static_cast<std::size_t>(op)];
}

SimTime Simulator::op_responded_at(OpId op) const {
  DCNT_CHECK(op >= 0 && static_cast<std::size_t>(op) < responded_at_.size());
  const SimTime t = responded_at_[static_cast<std::size_t>(op)];
  DCNT_CHECK_MSG(t >= 0, "operation has not completed");
  return t;
}

void Simulator::send(Message msg) {
  DCNT_CHECK_MSG(in_handler_, "send() outside a handler");
  DCNT_CHECK(msg.src >= 0 &&
             static_cast<std::size_t>(msg.src) < num_processors());
  DCNT_CHECK(msg.dst >= 0 &&
             static_cast<std::size_t>(msg.dst) < num_processors());
  DCNT_CHECK(!msg.local);
  if (msg.op == kNoOp) msg.op = current_op_;  // inherit from context
  const bool counted = msg.src != msg.dst;
  // On a sparse network the message physically travels to the route's
  // first hop; self-sends stay local either way.
  const ProcessorId first_hop =
      counted && config_.topology != nullptr
          ? config_.topology->next_hop(msg.src, msg.dst)
          : msg.dst;
  RecordId rec = kNoRecord;
  if (counted) {
    metrics_.on_send(msg.src, msg.op, msg.size_words(), msg.key);
    Message hop_view = msg;
    hop_view.dst = first_hop;  // trace records physical hops
    rec = trace_.on_send(current_parent_, hop_view, msg.op, now_);
  }
  const RecordId cause = rec != kNoRecord ? rec : current_parent_;
  const ProcessorId hop_src = msg.src;
  const std::int64_t ttl = 4 * static_cast<std::int64_t>(num_processors()) + 8;
  enqueue_hop(std::move(msg), hop_src, first_hop, rec, cause, ttl);
}

void Simulator::send_local(ProcessorId p, std::int32_t tag,
                           std::vector<std::int64_t> args, SimTime delay) {
  DCNT_CHECK_MSG(in_handler_, "send_local() outside a handler");
  DCNT_CHECK(p >= 0 && static_cast<std::size_t>(p) < num_processors());
  DCNT_CHECK(delay >= 1);
  Message msg;
  msg.src = p;
  msg.dst = p;
  msg.tag = tag;
  msg.op = current_op_;
  msg.args = std::move(args);
  msg.local = true;
  Event ev;
  ev.deliver_time = now_ + delay;
  ev.seq = seq_++;
  ev.record = kNoRecord;
  ev.cause = current_parent_;
  ev.at = p;
  ev.msg = std::move(msg);
  queue_.push_back(std::move(ev));
  std::push_heap(queue_.begin(), queue_.end(), EventLater{});
}

void Simulator::enqueue_hop(Message msg, ProcessorId hop_src,
                            ProcessorId hop_dst, RecordId record,
                            RecordId cause, std::int64_t ttl) {
  if (faults_.active() && !msg.local && hop_src != hop_dst) {
    switch (faults_.on_send(hop_src, hop_dst)) {
      case FaultPlane::SendFault::kDrop:
        // The sender's load and the trace send record stand (it really
        // transmitted); the hop just never reaches the queue.
        return;
      case FaultPlane::SendFault::kDuplicate:
        // A second copy with its own delay draw. Untraced (record-less)
        // so the causal trace keeps one delivery per send record.
        raw_enqueue(msg, hop_src, hop_dst, kNoRecord, cause, ttl);
        break;
      case FaultPlane::SendFault::kDeliver:
        break;
    }
  }
  raw_enqueue(std::move(msg), hop_src, hop_dst, record, cause, ttl);
}

void Simulator::raw_enqueue(Message msg, ProcessorId hop_src,
                            ProcessorId hop_dst, RecordId record,
                            RecordId cause, std::int64_t ttl) {
  Event ev;
  const SimTime delay = config_.delay.sample_for(rng_, hop_src, hop_dst);
  ev.deliver_time = now_ + delay;
  if (config_.fifo_channels && !msg.local && hop_src != hop_dst) {
    auto& last = channel_last_[channel_key(hop_src, hop_dst)];
    if (ev.deliver_time < last) ev.deliver_time = last;
    last = ev.deliver_time;
  }
  ev.seq = seq_++;
  ev.record = record;
  ev.cause = cause;
  ev.at = hop_dst;
  ev.ttl = ttl;
  ev.msg = std::move(msg);
  queue_.push_back(std::move(ev));
  std::push_heap(queue_.begin(), queue_.end(), EventLater{});
}

void Simulator::complete(OpId op, Value value) {
  DCNT_CHECK(op >= 0 && static_cast<std::size_t>(op) < results_.size());
  auto& slot = results_[static_cast<std::size_t>(op)];
  DCNT_CHECK_MSG(!slot.has_value(), "operation completed twice");
  slot = value;
  responded_at_[static_cast<std::size_t>(op)] = now_;
  ++completed_;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  std::pop_heap(queue_.begin(), queue_.end(), EventLater{});
  Event ev = std::move(queue_.back());
  queue_.pop_back();
  DCNT_CHECK(ev.deliver_time >= now_);
  deliver(std::move(ev));
  return true;
}

void Simulator::step_specific(std::size_t index) {
  DCNT_CHECK(index < queue_.size());
  // FIFO channels constrain realizable orders via delivery-time floors;
  // delivering by send index ignores those floors, so the combination
  // would explore schedules the configuration forbids.
  DCNT_CHECK_MSG(!config_.fifo_channels,
                 "step_specific is not meaningful with fifo_channels");
  // Find the `index`-th pending event by send order without draining
  // the heap: rank positions by seq, splice the chosen one out, and
  // re-heapify. O(queue log queue) — exploration runs on tiny systems.
  std::vector<std::size_t> order(queue_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return queue_[a].seq < queue_[b].seq;
  });
  const std::size_t pos = order[index];
  Event chosen = std::move(queue_[pos]);
  if (pos + 1 != queue_.size()) queue_[pos] = std::move(queue_.back());
  queue_.pop_back();
  std::make_heap(queue_.begin(), queue_.end(), EventLater{});
  // Arbitrary-order delivery: pretend the chosen message was the fast
  // one (its nominal time may lie ahead of the clock).
  if (chosen.deliver_time < now_) chosen.deliver_time = now_;
  deliver(std::move(chosen));
}

void Simulator::deliver(Event ev) {
  if (faults_.active()) {
    const SimTime at = std::max(now_, ev.deliver_time);
    if (faults_.crashed_at(ev.at, at)) {
      now_ = at;
      if (ev.msg.local) {
        const SimTime recovery = faults_.recovery_time(ev.at, at);
        if (recovery >= 0) {
          // Crash-recover: the timer survives the reboot and fires at
          // the recovery instant.
          faults_.note_deferred_timer();
          ev.deliver_time = recovery;
          queue_.push_back(std::move(ev));
          std::push_heap(queue_.begin(), queue_.end(), EventLater{});
          return;
        }
      }
      // Crashed destination: the message is lost. No receive is
      // counted — a dead processor bears no load.
      faults_.note_crash_drop();
      return;
    }
  }
  now_ = std::max(now_, ev.deliver_time);
  ++deliveries_;
  const bool counted = !ev.msg.local && ev.msg.src != ev.msg.dst;
  if (counted) {
    metrics_.on_receive(ev.at, ev.msg.size_words(), ev.msg.key);
    trace_.on_deliver(ev.record, now_);
  }
  if (ev.at != ev.msg.dst) {
    // Intermediate router: forward along the topology's route. The
    // router's receive above and this send both count — that is the
    // point of modelling sparse networks.
    DCNT_CHECK(config_.topology != nullptr);
    DCNT_CHECK_MSG(ev.ttl > 0, "routing loop (ttl exhausted)");
    const ProcessorId next =
        config_.topology->next_hop(ev.at, ev.msg.dst);
    metrics_.on_send(ev.at, ev.msg.op, ev.msg.size_words(), ev.msg.key);
    RecordId rec = kNoRecord;
    if (trace_.enabled()) {
      Message hop_view = ev.msg;
      hop_view.src = ev.at;
      hop_view.dst = next;
      rec = trace_.on_send(ev.record != kNoRecord ? ev.record : ev.cause,
                           hop_view, ev.msg.op, now_);
    }
    const RecordId cause = rec != kNoRecord ? rec : ev.cause;
    const ProcessorId hop_src = ev.at;
    enqueue_hop(std::move(ev.msg), hop_src, next, rec, cause, ev.ttl - 1);
    return;
  }
  DCNT_CHECK(!in_handler_);
  in_handler_ = true;
  current_parent_ = ev.cause;
  current_op_ = ev.msg.op;
  protocol_->on_message(*this, ev.msg);
  in_handler_ = false;
  current_parent_ = kNoRecord;
  current_op_ = kNoOp;
}

void Simulator::run_until_quiescent(std::int64_t max_steps) {
  std::int64_t steps = 0;
  while (step()) {
    ++steps;
    DCNT_CHECK_MSG(steps <= max_steps,
                   "protocol failed to quiesce within max_steps");
  }
}

std::optional<Value> Simulator::result(OpId op) const {
  DCNT_CHECK(op >= 0 && static_cast<std::size_t>(op) < results_.size());
  return results_[static_cast<std::size_t>(op)];
}

}  // namespace dcnt
