// Network topologies with deterministic routing.
//
// The paper's model (§2) assumes a complete network: "Any processor can
// exchange messages directly with any other processor." That assumption
// is load-bearing for the upper bound — on a sparse network, messages
// are relayed hop by hop and the *routers* send and receive too, so
// their load counts toward the bottleneck. Plugging a topology into
// SimConfig makes the simulator deliver every logical message along the
// topology's route, counting each hop as one message at both endpoints
// (bench_topology quantifies what that does to the Theta(k) result).
//
// Topologies are immutable and shared between simulator clones.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/types.hpp"

namespace dcnt {

class Topology {
 public:
  virtual ~Topology() = default;

  virtual std::int64_t num_nodes() const = 0;
  virtual std::string name() const = 0;

  /// The neighbour to forward to on the (deterministic, loop-free)
  /// route from `from` toward `to`; requires from != to.
  virtual ProcessorId next_hop(ProcessorId from, ProcessorId to) const = 0;

  /// Route length in hops (walks next_hop; aborts if the route does not
  /// make progress within num_nodes steps).
  std::int64_t distance(ProcessorId from, ProcessorId to) const;
};

/// The paper's model: everyone adjacent to everyone; next_hop == to.
class CompleteTopology final : public Topology {
 public:
  explicit CompleteTopology(std::int64_t n);
  std::int64_t num_nodes() const override { return n_; }
  std::string name() const override { return "complete"; }
  ProcessorId next_hop(ProcessorId from, ProcessorId to) const override;

 private:
  std::int64_t n_;
};

/// Bidirectional ring; routes take the shorter direction (ties go up).
class RingTopology final : public Topology {
 public:
  explicit RingTopology(std::int64_t n);
  std::int64_t num_nodes() const override { return n_; }
  std::string name() const override { return "ring"; }
  ProcessorId next_hop(ProcessorId from, ProcessorId to) const override;

 private:
  std::int64_t n_;
};

/// 2D torus (rows x cols = n), dimension-order (row first) routing with
/// wrap-around shortcuts. cols == 0 picks ~sqrt(n); n must equal
/// rows*cols.
class TorusTopology final : public Topology {
 public:
  TorusTopology(std::int64_t n, std::int64_t cols = 0);
  std::int64_t num_nodes() const override { return n_; }
  std::string name() const override { return "torus"; }
  ProcessorId next_hop(ProcessorId from, ProcessorId to) const override;
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

 private:
  std::int64_t n_;
  std::int64_t cols_;
  std::int64_t rows_;
};

/// Hypercube on n = 2^d nodes; routing fixes the lowest differing bit.
class HypercubeTopology final : public Topology {
 public:
  explicit HypercubeTopology(std::int64_t n);
  std::int64_t num_nodes() const override { return n_; }
  std::string name() const override { return "hypercube"; }
  ProcessorId next_hop(ProcessorId from, ProcessorId to) const override;
  int dimensions() const { return dims_; }

 private:
  std::int64_t n_;
  int dims_;
};

}  // namespace dcnt
