// Protocol interface.
//
// A Protocol object holds the *entire* distributed state of an algorithm
// (every processor's local memory) as one value. This is a simulation
// convenience, not shared memory: the only channel through which
// knowledge may move between processors is Context::send(). Protocols
// must be written so that a handler for processor p reads and writes
// only p's slice of the state; the tests enforce the observable
// consequence (delivery-order invariance of all results and loads).
//
// Value semantics (clone()) are load-bearing: the lower-bound adversary
// (§3 of the paper) snapshots the whole system to dry-run candidate
// operations before committing to the one with the longest
// communication list.
#pragma once

#include <memory>
#include <type_traits>
#include <typeinfo>

#include "sim/message.hpp"
#include "sim/types.hpp"

namespace dcnt {

/// Interface handed to protocol handlers for interacting with the world.
class Context {
 public:
  virtual ~Context() = default;

  /// Send a network message from msg.src to msg.dst. Must have
  /// 0 <= src,dst < num_processors. Counted in all load metrics.
  virtual void send(Message msg) = 0;

  /// Schedule a local wake-up for processor p after `delay` ticks,
  /// delivered as a Message with local=true (not counted as traffic).
  virtual void send_local(ProcessorId p, std::int32_t tag,
                          std::vector<std::int64_t> args, SimTime delay) = 0;

  /// Report that operation `op` completed with `value` at its initiator.
  virtual void complete(OpId op, Value value) = 0;

  /// Current simulated time.
  virtual SimTime now() const = 0;

  /// Per-simulation random stream (cloned with the simulator).
  virtual class Rng& rng() = 0;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  virtual std::size_t num_processors() const = 0;

  /// Deliver one message to its destination processor.
  virtual void on_message(Context& ctx, const Message& msg) = 0;

  /// Deep-copy the entire distributed state.
  virtual std::unique_ptr<Protocol> clone() const = 0;

  /// In-place state copy from a same-type protocol, reusing this
  /// object's already-allocated buffers — the cheap half of the
  /// simulator's snapshot/restore fast path. Returns false when
  /// `other`'s dynamic type is not this one's (the caller then falls
  /// back to clone()). Implement via dcnt::protocol_assign; the default
  /// declines so value-semantic correctness never depends on it.
  virtual bool try_assign_from(const Protocol& other) {
    (void)other;
    return false;
  }

  /// Failure-detector hook: a transport layer (faults/retry.hpp) calls
  /// this at processor `self` after exhausting retransmissions toward
  /// `peer`. `self` may react by sending messages (it is inside a
  /// handler). Suspicion is only as good as the timeout behind it —
  /// in a truly asynchronous system a slow peer is indistinguishable
  /// from a dead one — so implementations must make re-suspicion and
  /// duplicate reactions idempotent. Default: ignore.
  virtual void on_peer_unreachable(Context& ctx, ProcessorId self,
                                   ProcessorId peer) {
    (void)ctx;
    (void)self;
    (void)peer;
  }

  /// Shard-execution contract. The threaded runtime (src/runtime/) may
  /// run handlers for *different* processors of this one object
  /// concurrently, one thread per shard of the processor set. That is
  /// safe exactly when the protocol upholds the state-slicing invariant
  /// above in the strong, memory-level sense:
  ///   - a handler running at processor p writes only state owned by p,
  ///     and ownership moves between processors only via messages, so
  ///     any two conflicting accesses are ordered by a message chain
  ///     (the runtime turns every delivery into a happens-before edge);
  ///   - topology/wiring tables fixed at construction may be read from
  ///     anywhere;
  ///   - protocol-global counters (stats, live-work gauges) use
  ///     RelaxedCounter (support/relaxed.hpp), never plain integers;
  ///   - all randomness comes from ctx.rng(), which the runtime hands
  ///     out per worker.
  /// Protocols keeping other cross-processor mutable aids (global logs,
  /// lazily built caches) must shard them, switch them off in
  /// on_shard_start(), or decline here. Default: decline — single-shard
  /// execution is always allowed.
  virtual bool shard_safe() const { return false; }

  /// Called once by the threaded runtime, after construction and before
  /// any handler runs, when the protocol is about to execute across
  /// `workers` shards. Protocols use it to disable optional
  /// cross-processor debug structures (e.g. the tree's retirement
  /// log). Never called for simulator execution.
  virtual void on_shard_start(std::size_t workers) { (void)workers; }

  /// Human-readable short name ("tree(k=3)", "central", ...).
  virtual std::string name() const = 0;

  /// Hook for protocol-internal sanity checks at quiescence; the harness
  /// calls this between operations. Default: nothing to check.
  virtual void check_quiescent(std::size_t /*ops_completed*/) const {}

  /// Service-fabric hooks (src/service/multi_counter.hpp). A protocol is
  /// *evictable* when, at any quiescent-per-key moment, its entire
  /// durable state collapses to one Value — so the fabric's LRU tier may
  /// destroy the instance and later rebuild it from service_value() via
  /// service_rehydrate(). That requires all non-value state to be
  /// strictly per-op scratch (nothing parked between ops at any
  /// processor). Central qualifies; the tree's shape and the combining
  /// funnel's residue do not. Default: not evictable — the fabric then
  /// keeps every touched instance resident.
  virtual bool service_evictable() const { return false; }
  /// Durable value for eviction. Only meaningful if service_evictable().
  virtual Value service_value() const { return 0; }
  /// Seed a freshly constructed instance with a previously evicted
  /// value. Only meaningful if service_evictable().
  virtual void service_rehydrate(Value value) { (void)value; }
};

/// A distributed counter: the abstract data type of the paper (§2).
class CounterProtocol : public Protocol {
 public:
  /// Begin an inc initiated at processor `origin`. The implementation
  /// sends whatever messages the protocol requires and eventually calls
  /// ctx.complete(op, value) at the initiator. A counter whose value
  /// happens to live at the initiator may complete immediately with no
  /// messages (the paper's degenerate centralized case).
  virtual void start_inc(Context& ctx, ProcessorId origin, OpId op) = 0;

  /// Generic operation entry point for services richer than a counter
  /// (e.g. the tree priority queue takes {kind, key} arguments). The
  /// default ignores the arguments and treats the operation as an inc.
  virtual void start_op(Context& ctx, ProcessorId origin, OpId op,
                        const std::vector<std::int64_t>& args) {
    (void)args;
    start_inc(ctx, origin, op);
  }

  virtual std::unique_ptr<CounterProtocol> clone_counter() const = 0;
  std::unique_ptr<Protocol> clone() const final { return clone_counter(); }
};

/// Canonical try_assign_from body: copy-assign when the dynamic types
/// match exactly (copy assignment of vectors-of-state reuses capacity,
/// which is the whole point). Derived must be a final class — an exact
/// typeid match on a non-final type would slice a further-derived
/// object's state.
template <class Derived>
bool protocol_assign(Derived& self, const Protocol& other) {
  static_assert(std::is_final_v<Derived>,
                "protocol_assign requires a final protocol type");
  if (typeid(other) != typeid(Derived)) return false;
  if (&other != &self) self = static_cast<const Derived&>(other);
  return true;
}

}  // namespace dcnt
