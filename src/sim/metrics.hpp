// Per-processor message-load accounting.
//
// This is the quantity the paper's theorems are about: m_p, the number
// of messages processor p sends or receives over an operation sequence
// (§3, "Definitions"). The simulator updates these counters on every
// non-local message; protocols cannot forget to count.
//
// Cache-line audit (DESIGN.md §16): the counters here are plain int64
// vectors, not atomics, on purpose — every Metrics instance has exactly
// one writer (the simulator's single thread, or the one runtime shard
// that owns it; see ThreadedRuntime::Shard), and cross-shard totals are
// produced by merge_from AFTER quiescence. No two threads ever touch
// one instance concurrently, so there is no hot atomic pair to pad;
// adding alignas here would spend memory on a hazard the ownership
// model already rules out. Counters that genuinely cross shard
// boundaries inside protocols use support/relaxed.hpp instead.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hpp"
#include "support/stats.hpp"

namespace dcnt {

/// Per-key slice of a processor's load: messages sent/received by one
/// processor on behalf of one counter key.
struct KeyLoad {
  std::int64_t sent{0};
  std::int64_t received{0};
  std::int64_t total() const { return sent + received; }
};

class Metrics {
 public:
  /// key -> (processor -> load slice). Sparse: only (key, processor)
  /// pairs that actually moved messages appear.
  using KeyLoadMap =
      std::unordered_map<KeyId, std::unordered_map<ProcessorId, KeyLoad>>;

  Metrics() = default;
  explicit Metrics(std::size_t num_processors);

  /// `key` attributes the message to one counter of the multi-key
  /// fabric; kNoKey (the default, and what all pre-fabric callers pass)
  /// keeps the global counters only.
  void on_send(ProcessorId p, OpId op, std::size_t words, KeyId key = kNoKey);
  void on_receive(ProcessorId p, std::size_t words, KeyId key = kNoKey);

  std::size_t num_processors() const { return sent_.size(); }

  std::int64_t sent(ProcessorId p) const { return sent_.at(to_idx(p)); }
  std::int64_t received(ProcessorId p) const { return received_.at(to_idx(p)); }

  /// m_p: messages sent plus received by p (the paper's message load).
  std::int64_t load(ProcessorId p) const {
    return sent_.at(to_idx(p)) + received_.at(to_idx(p));
  }

  /// Word load of p: payload words sent plus received. The paper keeps
  /// messages at O(log n) bits, so for its protocols the word load is a
  /// constant multiple of m_p; services with fat root state (the tree
  /// priority queue) diverge — this is how that shows up per processor.
  std::int64_t word_load(ProcessorId p) const {
    return words_.at(to_idx(p));
  }
  /// max_p word_load(p) — the bottleneck in words rather than messages.
  std::int64_t max_word_load() const;
  /// Largest single message payload seen (words).
  std::int64_t max_message_words() const { return max_message_words_; }

  /// Total messages sent system-wide.
  std::int64_t total_messages() const { return total_messages_; }
  /// Total payload words sent (message-size accounting).
  std::int64_t total_words() const { return total_words_; }

  /// max_p m_p and its arg — the bottleneck processor b of §3.
  std::int64_t max_load() const;
  ProcessorId bottleneck() const;

  /// All loads as a Summary (for percentiles / histograms).
  Summary load_summary() const;

  /// Messages attributed to each operation, by OpId (grown on demand).
  const std::vector<std::int64_t>& per_op_messages() const {
    return per_op_messages_;
  }

  /// Per-key per-processor loads (empty unless keyed traffic ran).
  const KeyLoadMap& key_loads() const { return key_loads_; }
  /// max_p m_p^k — the paper's bottleneck restricted to key k's traffic.
  /// Returns 0 for keys that never moved a message.
  std::int64_t key_max_load(KeyId key) const;
  /// Total messages attributed to key k.
  std::int64_t key_total_messages(KeyId key) const;

  /// Element-wise accumulation of another Metrics over the same
  /// processor set: the threaded runtime counts loads per worker shard
  /// and merges them here at quiescence, so reports read one Metrics
  /// whichever backend produced it.
  void merge_from(const Metrics& other);

  void reset();

 private:
  static std::size_t to_idx(ProcessorId p) { return static_cast<std::size_t>(p); }

  std::vector<std::int64_t> sent_;
  std::vector<std::int64_t> received_;
  std::vector<std::int64_t> words_;
  std::vector<std::int64_t> per_op_messages_;
  KeyLoadMap key_loads_;
  std::int64_t total_messages_{0};
  std::int64_t total_words_{0};
  std::int64_t max_message_words_{0};
};

}  // namespace dcnt
