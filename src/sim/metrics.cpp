#include "sim/metrics.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dcnt {

Metrics::Metrics(std::size_t num_processors)
    : sent_(num_processors, 0),
      received_(num_processors, 0),
      words_(num_processors, 0) {}

void Metrics::on_send(ProcessorId p, OpId op, std::size_t words, KeyId key) {
  ++sent_.at(to_idx(p));
  ++total_messages_;
  total_words_ += static_cast<std::int64_t>(words);
  words_.at(to_idx(p)) += static_cast<std::int64_t>(words);
  max_message_words_ =
      std::max(max_message_words_, static_cast<std::int64_t>(words));
  if (op >= 0) {
    const auto idx = static_cast<std::size_t>(op);
    if (idx >= per_op_messages_.size()) per_op_messages_.resize(idx + 1, 0);
    ++per_op_messages_[idx];
  }
  if (key != kNoKey) ++key_loads_[key][p].sent;
}

void Metrics::on_receive(ProcessorId p, std::size_t words, KeyId key) {
  ++received_.at(to_idx(p));
  words_.at(to_idx(p)) += static_cast<std::int64_t>(words);
  if (key != kNoKey) ++key_loads_[key][p].received;
}

std::int64_t Metrics::key_max_load(KeyId key) const {
  const auto it = key_loads_.find(key);
  if (it == key_loads_.end()) return 0;
  std::int64_t best = 0;
  for (const auto& [p, kl] : it->second) best = std::max(best, kl.total());
  return best;
}

std::int64_t Metrics::key_total_messages(KeyId key) const {
  const auto it = key_loads_.find(key);
  if (it == key_loads_.end()) return 0;
  std::int64_t total = 0;
  for (const auto& [p, kl] : it->second) total += kl.sent;
  return total;
}

std::int64_t Metrics::max_word_load() const {
  std::int64_t best = 0;
  for (const auto w : words_) best = std::max(best, w);
  return best;
}

std::int64_t Metrics::max_load() const {
  std::int64_t best = 0;
  for (std::size_t i = 0; i < sent_.size(); ++i) {
    best = std::max(best, sent_[i] + received_[i]);
  }
  return best;
}

ProcessorId Metrics::bottleneck() const {
  DCNT_CHECK(!sent_.empty());
  std::size_t arg = 0;
  std::int64_t best = -1;
  for (std::size_t i = 0; i < sent_.size(); ++i) {
    const std::int64_t l = sent_[i] + received_[i];
    if (l > best) {
      best = l;
      arg = i;
    }
  }
  return static_cast<ProcessorId>(arg);
}

Summary Metrics::load_summary() const {
  std::vector<std::int64_t> loads(sent_.size());
  for (std::size_t i = 0; i < sent_.size(); ++i) {
    loads[i] = sent_[i] + received_[i];
  }
  return Summary(std::move(loads));
}

void Metrics::merge_from(const Metrics& other) {
  DCNT_CHECK(other.sent_.size() == sent_.size());
  for (std::size_t i = 0; i < sent_.size(); ++i) {
    sent_[i] += other.sent_[i];
    received_[i] += other.received_[i];
    words_[i] += other.words_[i];
  }
  if (other.per_op_messages_.size() > per_op_messages_.size()) {
    per_op_messages_.resize(other.per_op_messages_.size(), 0);
  }
  for (std::size_t i = 0; i < other.per_op_messages_.size(); ++i) {
    per_op_messages_[i] += other.per_op_messages_[i];
  }
  total_messages_ += other.total_messages_;
  total_words_ += other.total_words_;
  max_message_words_ = std::max(max_message_words_, other.max_message_words_);
  for (const auto& [key, per_proc] : other.key_loads_) {
    auto& mine = key_loads_[key];
    for (const auto& [p, kl] : per_proc) {
      auto& slot = mine[p];
      slot.sent += kl.sent;
      slot.received += kl.received;
    }
  }
}

void Metrics::reset() {
  std::fill(sent_.begin(), sent_.end(), 0);
  std::fill(received_.begin(), received_.end(), 0);
  std::fill(words_.begin(), words_.end(), 0);
  max_message_words_ = 0;
  per_op_messages_.clear();
  key_loads_.clear();
  total_messages_ = 0;
  total_words_ = 0;
}

}  // namespace dcnt
