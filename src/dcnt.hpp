// Umbrella header for the distributed-counting-bottleneck library.
//
// Reproduction of: Wattenhofer & Widmayer, "An Inherent Bottleneck in
// Distributed Counting", PODC 1997. See DESIGN.md for the system map
// and EXPERIMENTS.md for the measured results.
#pragma once

// Support.
#include "support/check.hpp"
#include "support/flags.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

// Simulation substrate (the paper's §2 model).
#include "sim/delay.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"
#include "sim/trace_export.hpp"
#include "sim/types.hpp"

// The paper's contribution (§4) and bound arithmetic (§3), plus the
// §2 sibling data structures riding the same machinery.
#include "core/bound.hpp"
#include "core/tree_bit.hpp"
#include "core/tree_counter.hpp"
#include "core/tree_layout.hpp"
#include "core/tree_pq.hpp"
#include "core/tree_service.hpp"

// Baseline counters (paper, Related Work).
#include "baselines/central.hpp"
#include "baselines/combining_tree.hpp"
#include "baselines/counting_network.hpp"
#include "baselines/diffracting_tree.hpp"

// Quorum systems (paper, Related Work) and the quorum counter.
#include "quorum/crumbling_wall.hpp"
#include "quorum/grid.hpp"
#include "quorum/hierarchical.hpp"
#include "quorum/majority.hpp"
#include "quorum/probe.hpp"
#include "quorum/projective_plane.hpp"
#include "quorum/quorum_analysis.hpp"
#include "quorum/quorum_counter.hpp"
#include "quorum/quorum_system.hpp"
#include "quorum/weighted.hpp"
#include "quorum/tree_quorum.hpp"

// Experiment harness and analysis.
#include "analysis/adversary.hpp"
#include "analysis/audit.hpp"
#include "analysis/concentration.hpp"
#include "analysis/dag.hpp"
#include "analysis/explore.hpp"
#include "analysis/hotspot.hpp"
#include "analysis/latency.hpp"
#include "analysis/linearizability.hpp"
#include "analysis/report.hpp"
#include "analysis/tree_profile.hpp"
#include "analysis/weights.hpp"
#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
