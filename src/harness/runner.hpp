// Drives operation schedules through a Simulator and verifies counter
// semantics.
//
// Sequential mode is the paper's model: "enough time elapses in between
// any two inc requests to make sure that the preceding inc operation is
// finished before the next one starts" — the runner waits for
// quiescence between initiations and asserts that the i-th operation
// returned exactly i-1... i.e. value i for 0-based op i means returned
// values are 0,1,2,... in initiation order.
//
// Concurrent mode (batches of simultaneous initiations) is an
// out-of-model extension used to show what combining and diffracting
// trees buy under contention; there the verifier only requires the
// returned values to be a permutation of 0..m-1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace dcnt {

struct RunResult {
  std::vector<Value> values;       ///< by operation id
  std::int64_t max_load{0};
  ProcessorId bottleneck{kNoProcessor};
  std::int64_t total_messages{0};
  double mean_load{0.0};
  bool values_ok{false};
};

struct RunOptions {
  /// Call protocol->check_quiescent() after every operation (sequential
  /// mode only). Cheap; on by default.
  bool check_each_op{true};
  /// Abort the simulation if one op needs more than this many deliveries.
  std::int64_t max_steps_per_op{10'000'000};
};

/// Sequential driver (the paper's model). Aborts on any semantic
/// violation (values must come back 0,1,2,... in initiation order).
RunResult run_sequential(Simulator& sim, const std::vector<ProcessorId>& order,
                         const RunOptions& options = {});

/// Concurrent driver: initiates each batch at once, then runs to
/// quiescence. Values must form a permutation of 0..m-1 overall.
RunResult run_concurrent(Simulator& sim,
                         const std::vector<std::vector<ProcessorId>>& batches,
                         const RunOptions& options = {});

/// Splits `order` into batches of size `width` (last one may be short).
std::vector<std::vector<ProcessorId>> make_batches(
    const std::vector<ProcessorId>& order, std::size_t width);

}  // namespace dcnt
