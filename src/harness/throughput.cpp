#include "harness/throughput.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "concurrent/elastic_tree.hpp"
#include "concurrent/history.hpp"
#include "harness/schedule.hpp"
#include "runtime/threaded_runtime.hpp"
#include "runtime/workload.hpp"
#include "service/multi_counter.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt {

namespace {

bool is_permutation_of_iota(std::vector<Value> values) {
  std::sort(values.begin(), values.end());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] != static_cast<Value>(i)) return false;
  }
  return true;
}

WorkloadOptions make_workload_options(const ThroughputOptions& options) {
  WorkloadOptions wl;
  wl.concurrency = options.concurrency;
  wl.inflight = options.inflight;
  if (options.open_rate > 0.0) {
    wl.shape = traffic::make_shape(options.shape, options.open_rate,
                                   options.period_s, options.amplitude,
                                   options.duty);
  }
  wl.duration_s = options.duration_s;
  wl.slo_ns = static_cast<std::int64_t>(options.slo_us * 1e3);
  wl.exact_cap = options.exact_cap;
  wl.warmup = options.warmup;
  return wl;
}

void fill_latency(ThroughputResult& out, const WorkloadResult& run) {
  out.ops = run.ops;
  out.wall_seconds = run.wall_seconds;
  out.ops_per_sec = run.ops_per_sec;
  const traffic::TrafficStats& t = run.traffic;
  out.mean_us = t.mean_us;
  out.p50_us = t.p50_us;
  out.p95_us = t.p95_us;
  out.p99_us = t.p99_us;
  out.p999_us = t.p999_us;
  out.p9999_us = t.p9999_us;
  out.max_us = t.max_us;
  out.slo_us = static_cast<double>(t.slo_ns) / 1e3;
  out.slo_den = t.count;
  out.slo_ok = t.slo_ok;
  out.slo_attainment = t.slo_attainment;
  out.hdr_recorder = !t.exact;
  out.hdr_overflow = t.hdr_overflow;
  out.record_threads = t.record_threads;
  out.slo_phases = t.phases;
  out.slo_high_den = t.high_count;
  out.slo_high_ok = t.high_slo_ok;
  out.slo_high_attainment = t.high_attainment;
  out.slo_low_den = t.low_count;
  out.slo_low_ok = t.low_slo_ok;
  out.slo_low_attainment = t.low_attainment;
}

}  // namespace

ThroughputResult run_throughput(std::unique_ptr<CounterProtocol> protocol,
                                const ThroughputOptions& options) {
  DCNT_CHECK(protocol != nullptr);
  const auto n = static_cast<std::int64_t>(protocol->num_processors());
  const std::size_t ops =
      options.ops != 0 ? options.ops : static_cast<std::size_t>(8 * n);

  ThroughputResult out;
  out.counter = protocol->name();
  out.n = static_cast<std::size_t>(n);
  out.ops = ops;
  out.warmup = options.warmup;

  RuntimeConfig config;
  config.workers = options.workers;
  config.seed = options.seed;
  config.max_ops = options.warmup + ops;
  config.active_shards = options.active_shards;
  config.flush_batch = options.flush_batch;
  config.placement = options.placement;
  ThreadedRuntime rt(std::move(protocol), config);
  out.workers = rt.workers();
  out.placement = to_string(options.placement);

  const auto initiators =
      make_initiators(options.initiators, options.zipf_s, n,
                      static_cast<std::int64_t>(ops), options.seed);
  WorkloadOptions wl = make_workload_options(options);
  std::unique_ptr<concurrent::HistoryBuffer> history;
  if (options.lin_check) {
    history =
        std::make_unique<concurrent::HistoryBuffer>(options.warmup + ops);
    wl.history = history.get();
  }
  const WorkloadResult run = run_workload(rt, initiators, wl);

  // Warmup ops take part in the permutation too (they consumed counter
  // values before the measured phase), so verify over the full range of
  // issued ops — a duration-cut run completes a prefix of the schedule,
  // and any completed prefix must still be an exact permutation.
  const std::size_t total = options.warmup + run.ops;
  std::vector<Value> values(total);
  for (std::size_t i = 0; i < total; ++i) {
    const auto v = rt.result(static_cast<OpId>(i));
    DCNT_CHECK_MSG(v.has_value(), "operation never completed");
    values[i] = *v;
  }
  out.values_ok = is_permutation_of_iota(values);
  DCNT_CHECK_MSG(out.values_ok, "values are not a permutation of 0..m-1");
  rt.protocol().check_quiescent(total);
  if (const auto* elastic = dynamic_cast<const concurrent::ElasticTreeCounter*>(
          &rt.protocol())) {
    out.elastic_resizes = elastic->resizes();
    out.elastic_epochs = elastic->epochs_used();
    out.elastic_final_k = elastic->current_k();
  }

  fill_latency(out, run);

  if (history) {
    // Measured ops only: warmup slots never completed in the buffer and
    // are skipped by the snapshot.
    const auto report =
        check_linearizable(history->snapshot(options.warmup));
    out.lin_checked = true;
    out.linearizable = report.linearizable;
    out.lin_violations = report.violations;
  }

  const Metrics metrics = rt.merged_metrics();
  out.total_messages = metrics.total_messages();
  out.max_load = metrics.max_load();
  out.bottleneck = metrics.bottleneck();
  out.mean_load = 2.0 * static_cast<double>(metrics.total_messages()) /
                  static_cast<double>(n);
  out.pinned_workers = rt.pinned_workers();
  out.placement_supported = rt.placement_supported();
  return out;
}

KeyedThroughputResult run_keyed_throughput(
    std::unique_ptr<CounterProtocol> prototype,
    const ThroughputOptions& options, const KeyedOptions& keyed) {
  DCNT_CHECK(prototype != nullptr);
  DCNT_CHECK(keyed.keys > 0);
  const auto n = static_cast<std::int64_t>(prototype->num_processors());
  const std::size_t ops =
      options.ops != 0 ? options.ops : static_cast<std::size_t>(8 * n);

  service::MultiCounterOptions mc;
  mc.seed = options.seed;
  mc.capacity = keyed.key_capacity;
  auto fabric =
      std::make_unique<service::MultiCounter>(std::move(prototype), mc);
  const service::MultiCounter* fabric_view = fabric.get();

  KeyedThroughputResult out;
  out.keys = keyed.keys;
  out.base.counter = fabric->name();
  out.base.n = static_cast<std::size_t>(n);
  out.base.ops = ops;
  out.base.warmup = options.warmup;

  RuntimeConfig config;
  config.workers = options.workers;
  config.seed = options.seed;
  config.max_ops = options.warmup + ops;
  config.active_shards = options.active_shards;
  config.flush_batch = options.flush_batch;
  ThreadedRuntime rt(std::move(fabric), config);
  out.base.workers = rt.workers();

  const auto initiators =
      make_initiators(options.initiators, options.zipf_s, n,
                      static_cast<std::int64_t>(ops), options.seed);
  WorkloadOptions wl = make_workload_options(options);
  wl.keys = make_keys(keyed.key_dist, keyed.key_skew,
                      static_cast<std::int64_t>(keyed.keys),
                      static_cast<std::int64_t>(ops), options.seed);
  const WorkloadResult run = run_workload(rt, initiators, wl);

  // Per-key contract: within each key (warmup ops included — they
  // consumed that key's low values) the returned values are an exact
  // permutation of 0..ops_k-1. Holds for any completed schedule prefix,
  // so a duration-cut run verifies over the ops actually issued.
  const std::size_t total = options.warmup + run.ops;
  std::unordered_map<KeyId, std::vector<Value>> by_key;
  std::unordered_map<KeyId, std::int64_t> ops_by_key;
  for (std::size_t i = 0; i < total; ++i) {
    const auto v = rt.result(static_cast<OpId>(i));
    DCNT_CHECK_MSG(v.has_value(), "operation never completed");
    by_key[run.key_of_op.at(i)].push_back(*v);
    ++ops_by_key[run.key_of_op.at(i)];
  }
  out.base.values_ok = true;
  for (auto& [key, values] : by_key) {
    if (!is_permutation_of_iota(values)) out.base.values_ok = false;
  }
  DCNT_CHECK_MSG(out.base.values_ok,
                 "some key's values are not a permutation of 0..ops_k-1");
  rt.protocol().check_quiescent(total);

  fill_latency(out.base, run);

  const Metrics metrics = rt.merged_metrics();
  out.base.total_messages = metrics.total_messages();
  out.base.max_load = metrics.max_load();
  out.base.bottleneck = metrics.bottleneck();
  out.base.mean_load = 2.0 * static_cast<double>(metrics.total_messages()) /
                       static_cast<double>(n);
  out.keys_touched = metrics.key_loads().size();
  for (const auto& [key, count] : ops_by_key) {
    if (count > out.hot_key_ops ||
        (count == out.hot_key_ops && key < out.hot_key)) {
      out.hot_key = key;
      out.hot_key_ops = count;
    }
  }
  if (out.hot_key != kNoKey) {
    out.hot_key_max_load = metrics.key_max_load(out.hot_key);
    out.hot_key_messages = metrics.key_total_messages(out.hot_key);
  }
  const auto lru = fabric_view->lru_stats();
  out.lru_hits = lru.hits;
  out.lru_misses = lru.misses;
  out.lru_evicts = lru.evicts;
  out.lru_rehydrates = lru.rehydrates;
  out.live_instances = fabric_view->directory().live_instances();
  return out;
}

RuntimeSequentialResult run_runtime_sequential(
    std::unique_ptr<CounterProtocol> protocol, std::size_t workers,
    const std::vector<ProcessorId>& order, std::uint64_t seed,
    std::size_t flush_batch) {
  DCNT_CHECK(protocol != nullptr);
  RuntimeConfig config;
  config.workers = workers;
  config.seed = seed;
  config.max_ops = std::max<std::size_t>(order.size(), 1);
  // Equivalence runs must not collapse to fewer shards on small hosts:
  // the whole point is to drive the cross-shard machinery.
  config.active_shards = workers;
  config.flush_batch = flush_batch;
  ThreadedRuntime rt(std::move(protocol), config);

  RuntimeSequentialResult out;
  out.values.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const OpId op = rt.begin_inc(order[i]);
    rt.wait_quiescent();
    const auto v = rt.result(op);
    DCNT_CHECK_MSG(v.has_value(), "operation never completed");
    DCNT_CHECK_MSG(*v == static_cast<Value>(i),
                   "sequential semantics violated (value != op index)");
    out.values.push_back(*v);
    rt.protocol().check_quiescent(i + 1);
  }
  out.metrics = rt.merged_metrics();
  return out;
}

}  // namespace dcnt
