#include "harness/throughput.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "harness/schedule.hpp"
#include "runtime/threaded_runtime.hpp"
#include "runtime/workload.hpp"
#include "service/multi_counter.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt {

namespace {

bool is_permutation_of_iota(std::vector<Value> values) {
  std::sort(values.begin(), values.end());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] != static_cast<Value>(i)) return false;
  }
  return true;
}

}  // namespace

ThroughputResult run_throughput(std::unique_ptr<CounterProtocol> protocol,
                                const ThroughputOptions& options) {
  DCNT_CHECK(protocol != nullptr);
  const auto n = static_cast<std::int64_t>(protocol->num_processors());
  const std::size_t ops =
      options.ops != 0 ? options.ops : static_cast<std::size_t>(8 * n);

  ThroughputResult out;
  out.counter = protocol->name();
  out.n = static_cast<std::size_t>(n);
  out.ops = ops;
  out.warmup = options.warmup;

  RuntimeConfig config;
  config.workers = options.workers;
  config.seed = options.seed;
  config.max_ops = options.warmup + ops;
  config.active_shards = options.active_shards;
  config.flush_batch = options.flush_batch;
  ThreadedRuntime rt(std::move(protocol), config);
  out.workers = rt.workers();

  const auto initiators =
      make_initiators(options.initiators, options.zipf_s, n,
                      static_cast<std::int64_t>(ops), options.seed);
  WorkloadOptions wl;
  wl.concurrency = options.concurrency;
  wl.open_rate = options.open_rate;
  wl.warmup = options.warmup;
  const WorkloadResult run = run_workload(rt, initiators, wl);

  // Warmup ops take part in the permutation too (they consumed counter
  // values before the measured phase), so verify over the full range.
  const std::size_t total = options.warmup + ops;
  std::vector<Value> values(total);
  for (std::size_t i = 0; i < total; ++i) {
    const auto v = rt.result(static_cast<OpId>(i));
    DCNT_CHECK_MSG(v.has_value(), "operation never completed");
    values[i] = *v;
  }
  out.values_ok = is_permutation_of_iota(values);
  DCNT_CHECK_MSG(out.values_ok, "values are not a permutation of 0..m-1");
  rt.protocol().check_quiescent(total);

  out.wall_seconds = run.wall_seconds;
  out.ops_per_sec = run.ops_per_sec;
  const Summary& lat = run.latency_ns;
  if (lat.count() > 0) {
    out.mean_us = lat.mean() / 1e3;
    out.p50_us = static_cast<double>(lat.percentile(50)) / 1e3;
    out.p95_us = static_cast<double>(lat.percentile(95)) / 1e3;
    out.p99_us = static_cast<double>(lat.percentile(99)) / 1e3;
  }

  const Metrics metrics = rt.merged_metrics();
  out.total_messages = metrics.total_messages();
  out.max_load = metrics.max_load();
  out.bottleneck = metrics.bottleneck();
  out.mean_load = 2.0 * static_cast<double>(metrics.total_messages()) /
                  static_cast<double>(n);
  return out;
}

KeyedThroughputResult run_keyed_throughput(
    std::unique_ptr<CounterProtocol> prototype,
    const ThroughputOptions& options, const KeyedOptions& keyed) {
  DCNT_CHECK(prototype != nullptr);
  DCNT_CHECK(keyed.keys > 0);
  const auto n = static_cast<std::int64_t>(prototype->num_processors());
  const std::size_t ops =
      options.ops != 0 ? options.ops : static_cast<std::size_t>(8 * n);

  service::MultiCounterOptions mc;
  mc.seed = options.seed;
  mc.capacity = keyed.key_capacity;
  auto fabric =
      std::make_unique<service::MultiCounter>(std::move(prototype), mc);
  const service::MultiCounter* fabric_view = fabric.get();

  KeyedThroughputResult out;
  out.keys = keyed.keys;
  out.base.counter = fabric->name();
  out.base.n = static_cast<std::size_t>(n);
  out.base.ops = ops;
  out.base.warmup = options.warmup;

  RuntimeConfig config;
  config.workers = options.workers;
  config.seed = options.seed;
  config.max_ops = options.warmup + ops;
  config.active_shards = options.active_shards;
  config.flush_batch = options.flush_batch;
  ThreadedRuntime rt(std::move(fabric), config);
  out.base.workers = rt.workers();

  const auto initiators =
      make_initiators(options.initiators, options.zipf_s, n,
                      static_cast<std::int64_t>(ops), options.seed);
  WorkloadOptions wl;
  wl.concurrency = options.concurrency;
  wl.open_rate = options.open_rate;
  wl.warmup = options.warmup;
  wl.keys = make_keys(keyed.key_dist, keyed.key_skew,
                      static_cast<std::int64_t>(keyed.keys),
                      static_cast<std::int64_t>(ops), options.seed);
  const WorkloadResult run = run_workload(rt, initiators, wl);

  // Per-key contract: within each key (warmup ops included — they
  // consumed that key's low values) the returned values are an exact
  // permutation of 0..ops_k-1.
  const std::size_t total = options.warmup + ops;
  std::unordered_map<KeyId, std::vector<Value>> by_key;
  std::unordered_map<KeyId, std::int64_t> ops_by_key;
  for (std::size_t i = 0; i < total; ++i) {
    const auto v = rt.result(static_cast<OpId>(i));
    DCNT_CHECK_MSG(v.has_value(), "operation never completed");
    by_key[run.key_of_op.at(i)].push_back(*v);
    ++ops_by_key[run.key_of_op.at(i)];
  }
  out.base.values_ok = true;
  for (auto& [key, values] : by_key) {
    if (!is_permutation_of_iota(values)) out.base.values_ok = false;
  }
  DCNT_CHECK_MSG(out.base.values_ok,
                 "some key's values are not a permutation of 0..ops_k-1");
  rt.protocol().check_quiescent(total);

  out.base.wall_seconds = run.wall_seconds;
  out.base.ops_per_sec = run.ops_per_sec;
  const Summary& lat = run.latency_ns;
  if (lat.count() > 0) {
    out.base.mean_us = lat.mean() / 1e3;
    out.base.p50_us = static_cast<double>(lat.percentile(50)) / 1e3;
    out.base.p95_us = static_cast<double>(lat.percentile(95)) / 1e3;
    out.base.p99_us = static_cast<double>(lat.percentile(99)) / 1e3;
  }

  const Metrics metrics = rt.merged_metrics();
  out.base.total_messages = metrics.total_messages();
  out.base.max_load = metrics.max_load();
  out.base.bottleneck = metrics.bottleneck();
  out.base.mean_load = 2.0 * static_cast<double>(metrics.total_messages()) /
                       static_cast<double>(n);
  out.keys_touched = metrics.key_loads().size();
  for (const auto& [key, count] : ops_by_key) {
    if (count > out.hot_key_ops ||
        (count == out.hot_key_ops && key < out.hot_key)) {
      out.hot_key = key;
      out.hot_key_ops = count;
    }
  }
  if (out.hot_key != kNoKey) {
    out.hot_key_max_load = metrics.key_max_load(out.hot_key);
    out.hot_key_messages = metrics.key_total_messages(out.hot_key);
  }
  const auto lru = fabric_view->lru_stats();
  out.lru_hits = lru.hits;
  out.lru_misses = lru.misses;
  out.lru_evicts = lru.evicts;
  out.lru_rehydrates = lru.rehydrates;
  out.live_instances = fabric_view->directory().live_instances();
  return out;
}

RuntimeSequentialResult run_runtime_sequential(
    std::unique_ptr<CounterProtocol> protocol, std::size_t workers,
    const std::vector<ProcessorId>& order, std::uint64_t seed,
    std::size_t flush_batch) {
  DCNT_CHECK(protocol != nullptr);
  RuntimeConfig config;
  config.workers = workers;
  config.seed = seed;
  config.max_ops = std::max<std::size_t>(order.size(), 1);
  // Equivalence runs must not collapse to fewer shards on small hosts:
  // the whole point is to drive the cross-shard machinery.
  config.active_shards = workers;
  config.flush_batch = flush_batch;
  ThreadedRuntime rt(std::move(protocol), config);

  RuntimeSequentialResult out;
  out.values.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const OpId op = rt.begin_inc(order[i]);
    rt.wait_quiescent();
    const auto v = rt.result(op);
    DCNT_CHECK_MSG(v.has_value(), "operation never completed");
    DCNT_CHECK_MSG(*v == static_cast<Value>(i),
                   "sequential semantics violated (value != op index)");
    out.values.push_back(*v);
    rt.protocol().check_quiescent(i + 1);
  }
  out.metrics = rt.merged_metrics();
  return out;
}

}  // namespace dcnt
