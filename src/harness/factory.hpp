// One-stop construction of every counter implementation, so tests,
// examples and benches can sweep over them uniformly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.hpp"

namespace dcnt {

enum class CounterKind {
  kTree,             ///< the paper's §4 counter (O(k) bottleneck)
  kStaticTree,       ///< ablation: same tree, no retirement
  kCentral,          ///< single-holder strawman
  kCombining,        ///< combining tree [YTL86, GVW89]
  kCountingNetwork,  ///< bitonic counting network [AHS91]
  kPeriodicNetwork,  ///< periodic counting network [AHS91, after DPRS]
  kDiffracting,      ///< diffracting tree [SZ94]
  kQuorumMajority,   ///< quorum counter over rotating majorities
  kQuorumGrid,       ///< quorum counter over a Maekawa-style grid
  kElastic,          ///< epoch-migrating tree with online k/T resizes
};

/// All kinds, in presentation order. Deliberately excludes kElastic:
/// the all-kinds sweeps (and their pinned message counts) predate it,
/// and its load-driven resizes would make those tables nondeterministic
/// across hosts. Ask for "elastic" by name.
std::vector<CounterKind> all_counter_kinds();

/// Short identifier ("tree", "central", ...), also accepted by
/// counter_kind_from_string.
std::string to_string(CounterKind kind);
CounterKind counter_kind_from_string(const std::string& text);

/// Does this implementation hand out correct values under *concurrent*
/// operations? (The quorum counter is sequential-model only; see
/// quorum_counter.hpp.)
bool supports_concurrency(CounterKind kind);

/// Is this implementation expected to produce *linearizable* histories
/// under concurrent operations? Serializing structures — the central
/// counter, the trees, the quorum counters — are; the balancer-based
/// ones (counting networks, diffracting tree) are only quiescently
/// consistent [HSW96]: values can invert real-time order even though
/// every quiescent state is exact. check_linearizable must report zero
/// violations whenever this returns true (concurrent/history.hpp).
bool expected_linearizable(CounterKind kind);

/// Builds a counter for >= `min_processors` processors. Tree counters
/// round n up to the next k^(k+1) (the paper does the same: "simply
/// increase n to the next higher value of the form k*k^k"); the others
/// use min_processors exactly. The actual size is
/// result->num_processors().
std::unique_ptr<CounterProtocol> make_counter(CounterKind kind,
                                              std::int64_t min_processors);

}  // namespace dcnt
