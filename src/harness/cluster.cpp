#include "harness/cluster.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "concurrent/history.hpp"
#include "harness/factory.hpp"
#include "harness/schedule.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "support/check.hpp"
#include "traffic/recorder.hpp"
#include "traffic/shape.hpp"

namespace dcnt::net {

namespace {

using WallClock = std::chrono::steady_clock;
using traffic::TailRecorder;

std::string find_node_binary(const std::string& override_path) {
  if (!override_path.empty()) return override_path;
  if (const char* env = std::getenv("DCNT_NODE_BIN")) return env;
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (len > 0) {
    buf[len] = '\0';
    std::string dir(buf);
    const std::size_t slash = dir.find_last_of('/');
    if (slash != std::string::npos) dir.resize(slash);
    const std::string candidates[] = {
        dir + "/dcnt_node",          // alongside the caller
        dir + "/../src/dcnt_node",   // build/{tests,bench,examples} -> build/src
        dir + "/src/dcnt_node",      // build root
    };
    for (const std::string& cand : candidates) {
      if (::access(cand.c_str(), X_OK) == 0) return cand;
    }
  }
  DCNT_CHECK_MSG(false,
                 "cannot locate the dcnt_node binary (set DCNT_NODE_BIN or "
                 "ClusterOptions::node_binary)");
  return "";
}

pid_t spawn(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  DCNT_CHECK(pid >= 0);
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    _exit(127);  // exec failed; the controller sees the early exit
  }
  return pid;
}

/// Best-effort cleanup on error paths that unwind normally. (DCNT_CHECK
/// aborts without unwinding; orphaned nodes then exit on their own when
/// the controller's sockets close under them.)
struct ChildReaper {
  std::vector<pid_t> pids;
  ~ChildReaper() {
    for (pid_t pid : pids) {
      if (pid <= 0) continue;
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

class Controller {
 public:
  explicit Controller(const ClusterOptions& opt)
      : opt_(opt), loop_(backend_from_string(opt.backend)) {}
  ClusterResult run();

 private:
  enum class Phase { kHello, kReady, kRun, kQuiesce, kKeyedStats, kShutdown };

  /// Ops kept outstanding per closed-loop slot; quiesce_between_ops
  /// already forces a window of 1 at the call sites. `inflight` is the
  /// concurrency-plane alias and supersedes `pipeline` when set.
  std::size_t pipeline_depth() const {
    if (opt_.inflight > 0) return opt_.inflight;
    return opt_.pipeline > 0 ? opt_.pipeline : 1;
  }

  bool keyed() const { return opt_.keys > 0; }
  /// Schedule entries per issuance unit. Batching is a closed-loop
  /// multi-key construct: quiesce_between_ops needs one op in flight and
  /// the open-loop clock paces individual ops, so both force 1.
  std::size_t batch_size() const {
    if (!keyed() || opt_.quiesce_between_ops || opt_.open_rate > 0.0) return 1;
    return std::max<std::size_t>(1, opt_.batch);
  }

  void on_frame(int conn, const FrameView& frame);
  void issue_next(std::int64_t sched_ns = -1);
  void on_complete(OpId op, Value value);
  void maybe_issue_after_completion();
  void maybe_finish_run();
  void begin_keyed_stats();
  void on_keyed_stats(const KeyedStatsFrame& ks);
  void begin_measured_phase();
  void begin_stats_round();
  void on_stats_round_complete();
  bool rounds_stable() const;
  void check_deadline() const;
  int poll_timeout_ms() const;

  ClusterOptions opt_;
  EventLoop loop_;
  ChildReaper reaper_;
  std::int64_t n_{0};
  std::size_t ops_{0};      ///< measured ops
  std::size_t warmup_{0};   ///< unmeasured ops issued first
  std::size_t total_{0};    ///< warmup_ + ops_
  /// True from launch until the post-warmup metrics reset completes;
  /// while set, issuance stops at warmup_ so no measured op can slip in
  /// before the reset barrier.
  bool warming_up_{false};
  /// Reset acks still owed after a kMetricsReset broadcast; the
  /// measured phase starts when this drains to zero, so no measured
  /// frame can race a node's own reset (see node.cpp).
  std::size_t reset_acks_pending_{0};
  std::vector<ProcessorId> initiators_;
  /// Multi-key mode: which key each op (by id) addresses.
  std::vector<KeyId> keys_;
  /// Completions since the last batch issuance; a fresh batch goes out
  /// once a full batch's worth of slots has freed (see issue_next).
  std::size_t issue_credits_{0};
  /// Reused per-node kStartBatch staging (batched issuance).
  std::vector<StartBatchFrame> batch_scratch_;
  /// Keyed-stats collection (multi-key mode, after the final barrier):
  /// nodes whose last chunk is still outstanding, the hot key chosen
  /// from the measured schedule, and the merged per-key accounting.
  std::size_t keyed_stats_pending_{0};
  KeyId hot_key_{kNoKey};
  std::int64_t hot_key_ops_{0};
  std::vector<std::int64_t> hot_key_load_;  ///< per processor, hot key only
  std::int64_t hot_key_sent_{0};
  std::unordered_set<KeyId> keys_touched_;
  std::int64_t lru_hits_{0};
  std::int64_t lru_misses_{0};
  std::int64_t lru_evicts_{0};
  std::int64_t lru_rehydrates_{0};

  Phase phase_{Phase::kHello};
  WallClock::time_point deadline_;
  std::vector<int> conn_of_node_;
  std::vector<std::optional<HelloFrame>> hellos_;
  std::size_t hello_count_{0};
  std::size_t ready_count_{0};
  bool child_died_{false};

  std::size_t issued_{0};
  std::size_t completed_{0};
  std::vector<Value> values_;
  std::vector<bool> value_seen_;
  std::unique_ptr<TailRecorder> recorder_;
  /// Measured-op counting history for the post-run linearizability
  /// check (options.lin_check, single-key mode only). Warmup slots stay
  /// empty; snapshot(warmup_) skips them.
  std::unique_ptr<concurrent::HistoryBuffer> history_;
  /// Open-loop burst runs: the measured phase's shape, kept so each
  /// op's scheduled arrival can be classified high/low for the
  /// phase-split SLO (null otherwise).
  std::unique_ptr<traffic::RateShape> measured_shape_;
  std::int64_t t_first_issue_ns_{0};
  std::int64_t t_last_complete_ns_{0};
  std::int64_t open_t0_ns_{0};
  /// Open loop: the measured phase's deterministic arrival timeline and
  /// the next scheduled offset it handed out (not yet issued).
  std::unique_ptr<traffic::ArrivalTimeline> timeline_;
  std::int64_t next_arrival_off_{0};
  /// Measured-phase budget in ns (duration_s; INT64_MAX when unset) and
  /// the wall deadline the closed loop stops reissuing at.
  std::int64_t budget_ns_{0};
  std::int64_t run_deadline_ns_{0};
  /// Latched once nothing more will be issued (schedule exhausted or
  /// the duration budget hit); the run ends when completed_ == issued_.
  bool no_more_{false};

  int quiesce_rounds_{0};
  bool round_in_flight_{false};
  WallClock::time_point next_round_at_;
  std::vector<std::optional<StatsFrame>> round_;
  std::vector<std::optional<StatsFrame>> prev_round_;
  std::size_t stats_outstanding_{0};
};

void Controller::check_deadline() const {
  if (WallClock::now() < deadline_) return;
  // Say where the run was stuck; a budget abort is always a hang
  // diagnosis session and the phase/progress triple is the first
  // question.
  std::fprintf(stderr,
               "cluster budget exceeded: phase=%d issued=%zu completed=%zu "
               "warmup=%zu total=%zu round_in_flight=%d outstanding=%zu\n",
               static_cast<int>(phase_), issued_, completed_, warmup_, total_,
               round_in_flight_ ? 1 : 0, stats_outstanding_);
  DCNT_CHECK_MSG(false, "cluster run exceeded its wall-clock budget");
}

/// Issues one unit of work: a single op, or — multi-key batched mode —
/// up to batch_size() consecutive schedule entries partitioned by owning
/// node into one kStartBatch frame each. Latency is stamped at batch
/// send, so a deep batch's later entries include their queueing time.
/// `sched_ns` >= 0 (open loop) stamps that scheduled arrival time
/// instead of the send time, so backlog the controller accumulated
/// counts against the op — the coordinated-omission-free measurement.
void Controller::issue_next(std::int64_t sched_ns) {
  const std::size_t limit = warming_up_ ? warmup_ : total_;  // measured ops wait
  if (issued_ >= limit) {
    if (!warming_up_) no_more_ = true;
    return;
  }
  const std::int64_t t = TailRecorder::now_ns();
  // Closed-loop duration budget: past the deadline, decline instead of
  // reissuing (the open loop bounds itself by scheduled offsets).
  if (!warming_up_ && sched_ns < 0 && t >= run_deadline_ns_) {
    no_more_ = true;
    return;
  }
  const std::size_t count = std::min(batch_size(), limit - issued_);
  const auto stamp = [&](OpId op) {
    if (static_cast<std::size_t>(op) >= warmup_) {
      if (t_first_issue_ns_ == 0) t_first_issue_ns_ = t;
      const std::int64_t sched = sched_ns >= 0 ? sched_ns : t;
      if (measured_shape_) {
        recorder_->on_issue(
            op, sched,
            measured_shape_->high_at(
                static_cast<double>(sched - open_t0_ns_) / 1e9));
      } else {
        recorder_->on_issue(op, sched);
      }
      // The history's invoke stamp is the *actual* send time even in
      // the open loop: a backdated scheduled stamp would tighten
      // resp < inv intervals and could fabricate a violation.
      if (history_) history_->on_invoke(op, t);
    }
  };
  if (count == 1) {
    const OpId op = static_cast<OpId>(issued_++);
    const auto idx = static_cast<std::size_t>(op);
    const ProcessorId origin = initiators_[idx];
    const std::uint32_t node = static_cast<std::uint32_t>(origin) % opt_.nodes;
    stamp(op);
    // Keyed single-op issuance rides the plain Start frame with the key
    // as the op's one argument word.
    std::vector<std::int64_t> args;
    if (keyed()) args.push_back(keys_[idx]);
    loop_.send(conn_of_node_.at(node),
               encode_start(StartFrame{op, origin, std::move(args)}));
    return;
  }
  batch_scratch_.resize(opt_.nodes);
  for (StartBatchFrame& f : batch_scratch_) f.ops.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const OpId op = static_cast<OpId>(issued_++);
    const auto idx = static_cast<std::size_t>(op);
    const ProcessorId origin = initiators_[idx];
    const std::uint32_t node = static_cast<std::uint32_t>(origin) % opt_.nodes;
    stamp(op);
    batch_scratch_[node].ops.push_back(StartBatchEntry{op, origin, keys_[idx]});
  }
  for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
    if (batch_scratch_[id].ops.empty()) continue;
    loop_.send(conn_of_node_.at(id), encode_start_batch(batch_scratch_[id]));
  }
}

/// Closed-loop reissue at batch granularity: one completion frees one
/// slot; a new batch goes out once a whole batch's worth has freed (or
/// immediately when nothing is left in flight, so a short tail can
/// never strand credits below the threshold).
void Controller::maybe_issue_after_completion() {
  ++issue_credits_;
  if (issue_credits_ >= batch_size() || issued_ == completed_) {
    issue_credits_ = 0;
    issue_next();
  }
}

void Controller::begin_measured_phase() {
  DCNT_CHECK(phase_ == Phase::kRun);
  issue_credits_ = 0;
  const std::int64_t now = TailRecorder::now_ns();
  run_deadline_ns_ = budget_ns_ == std::numeric_limits<std::int64_t>::max()
                         ? budget_ns_
                         : now + budget_ns_;
  if (opt_.open_rate > 0.0) {
    open_t0_ns_ = now;
    const traffic::RateShape shape = traffic::make_shape(
        opt_.shape, opt_.open_rate, opt_.period_s, opt_.amplitude, opt_.duty);
    if (shape.kind == traffic::RateShape::Kind::kBurst) {
      // Burst runs split SLO attainment per load phase; no measured op
      // has been stamped yet (warmup never touches the recorder).
      recorder_->enable_phases();
      measured_shape_ = std::make_unique<traffic::RateShape>(shape);
    }
    timeline_ = std::make_unique<traffic::ArrivalTimeline>(shape);
    next_arrival_off_ = timeline_->next_ns();
    return;
  }
  const std::size_t window =
      opt_.quiesce_between_ops
          ? 1
          : std::max<std::size_t>(
                1, std::min(opt_.concurrency * pipeline_depth(), ops_));
  for (std::size_t i = 0; i < window; ++i) issue_next();
  // A zero-length budget can decline the whole window; certify the
  // (empty) run through the barrier rather than hanging.
  maybe_finish_run();
}

/// End of the measured phase: nothing more will be issued and every
/// issued op completed — hand off to the quiescence barrier. Reissues
/// happen before this check in on_complete, so completed_ == issued_
/// means no measured work is in flight anywhere.
void Controller::maybe_finish_run() {
  if (phase_ != Phase::kRun || warming_up_) return;
  if (issued_ >= total_) no_more_ = true;
  if (no_more_ && completed_ == issued_) {
    phase_ = Phase::kQuiesce;
    begin_stats_round();
  }
}

void Controller::begin_stats_round() {
  round_.assign(opt_.nodes, std::nullopt);
  stats_outstanding_ = opt_.nodes;
  round_in_flight_ = true;
  ++quiesce_rounds_;
  const std::vector<std::uint8_t> frame = encode_stats_request();
  for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
    loop_.send(conn_of_node_[id], frame);
  }
}

bool Controller::rounds_stable() const {
  if (prev_round_.empty()) return false;
  std::int64_t sent = 0;
  std::int64_t received = 0;
  for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
    const StatsFrame& cur = *round_[id];
    const StatsFrame& prev = *prev_round_[id];
    if (cur.events_processed != prev.events_processed) return false;
    // An unacked envelope means a retransmission is coming.
    if (cur.unacked != 0) return false;
    sent += cur.wire_msgs_sent;
    received += cur.wire_msgs_received;
  }
  // On the reliable TCP plane every wire message eventually arrives, so
  // a sent/received mismatch means frames are still in flight. On lossy
  // UDP the counts legitimately differ (kernel drops are invisible to
  // both sides); stability plus zero pending work is the whole test.
  if (!opt_.udp && sent != received) return false;
  return true;
}

void Controller::on_stats_round_complete() {
  round_in_flight_ = false;
  if (rounds_stable()) {
    std::int64_t timers = 0;
    for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
      timers += round_[id]->timers_armed;
    }
    if (timers > 0) {
      // Idle except for armed timers — the distributed version of the
      // simulator's clock jump: tell the nodes to fire them now rather
      // than waiting out wall deadlines (a stale inc-retry or
      // retransmission timer can be tens of milliseconds away).
      const std::vector<std::uint8_t> jump = encode_time_jump();
      for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
        loop_.send(conn_of_node_[id], jump);
      }
      prev_round_ = round_;
      next_round_at_ = WallClock::now() + std::chrono::milliseconds(1);
      return;
    }
    if (warming_up_ && completed_ == warmup_) {
      // The warmup traffic has fully settled; tell every node to zero
      // its metrics and re-baseline its wire counters. Measured Starts
      // wait for every node's ack (begin_measured_phase): the reset is
      // ordered before the Starts on each control connection, but a
      // fast peer's first measured data frame is not ordered against a
      // slow node's reset, and a receive absorbed into a baseline
      // would skew the global sent/received balance for good.
      const std::vector<std::uint8_t> reset = encode_metrics_reset();
      for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
        loop_.send(conn_of_node_[id], reset);
      }
      reset_acks_pending_ = opt_.nodes;
      prev_round_.clear();
      phase_ = Phase::kRun;
      return;
    }
    if (opt_.quiesce_between_ops && completed_ < total_ && !no_more_) {
      // Mid-run barrier: the previous op's activity has fully settled;
      // resume the workload with the next one.
      prev_round_.clear();
      phase_ = Phase::kRun;
      issue_next();
      if (issued_ > completed_) return;
      // The reissue declined (duration budget hit): the settled barrier
      // we just ran doubles as the end-of-run barrier; fall through.
      phase_ = Phase::kQuiesce;
    }
    if (keyed()) {
      // One end-of-run collection pass: per-key loads and LRU counters
      // are a report, not part of the barrier, so they are fetched once
      // after the cluster is certified idle and before Shutdown.
      begin_keyed_stats();
      return;
    }
    phase_ = Phase::kShutdown;
    return;
  }
  prev_round_ = round_;
  // Give in-flight frames and stale timers a moment before re-asking;
  // the barrier converges on stability, not on asking faster.
  next_round_at_ = WallClock::now() + std::chrono::milliseconds(2);
}

void Controller::on_frame(int conn, const FrameView& frame) {
  switch (frame.type()) {
    case FrameType::kHello: {
      const HelloFrame hello = decode_hello(frame);
      DCNT_CHECK(hello.node_id < opt_.nodes);
      DCNT_CHECK_MSG(!hellos_[hello.node_id].has_value(),
                     "duplicate Hello from a node");
      hellos_[hello.node_id] = hello;
      conn_of_node_[hello.node_id] = conn;
      ++hello_count_;
      if (hello_count_ == opt_.nodes) {
        PeersFrame peers;
        peers.peers.reserve(opt_.nodes);
        for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
          const HelloFrame& h = *hellos_[id];
          peers.peers.push_back(PeerAddr{id, h.tcp_port, h.udp_port});
        }
        const std::vector<std::uint8_t> encoded = encode_peers(peers);
        for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
          loop_.send(conn_of_node_[id], encoded);
        }
        phase_ = Phase::kReady;
      }
      return;
    }
    case FrameType::kReady: {
      if (reset_acks_pending_ > 0) {
        // Reset ack (see kMetricsReset in node.cpp): this node has
        // re-baselined; once all have, measured traffic may flow.
        if (--reset_acks_pending_ == 0) {
          warming_up_ = false;
          begin_measured_phase();
        }
        return;
      }
      DCNT_CHECK(phase_ == Phase::kReady);
      ++ready_count_;
      if (ready_count_ == opt_.nodes) {
        phase_ = Phase::kRun;
        if (warming_up_) {
          // Warmup always runs closed-loop, even ahead of an open-loop
          // measured phase; the open-loop clock starts after the reset.
          const std::size_t window =
              opt_.quiesce_between_ops
                  ? 1
                  : std::max<std::size_t>(
                        1,
                        std::min(opt_.concurrency * pipeline_depth(), total_));
          for (std::size_t i = 0; i < window; ++i) issue_next();
        } else {
          begin_measured_phase();
        }
      }
      return;
    }
    case FrameType::kComplete: {
      const CompleteFrame done = decode_complete(frame);
      on_complete(done.op, done.value);
      return;
    }
    case FrameType::kCompleteBatch: {
      // Keyed nodes coalesce every completion of a drain round into one
      // frame. The control channel is our own node binary, so a
      // malformed batch is a bug, not corruption to survive.
      CompleteBatchFrame batch;
      DCNT_CHECK_MSG(decode_complete_batch(frame, &batch),
                     "malformed CompleteBatch at the controller");
      for (const CompleteBatchEntry& e : batch.completions) {
        on_complete(e.op, e.value);
      }
      return;
    }
    case FrameType::kKeyedStats: {
      KeyedStatsFrame ks;
      DCNT_CHECK_MSG(decode_keyed_stats(frame, &ks),
                     "malformed KeyedStats at the controller");
      on_keyed_stats(ks);
      return;
    }
    case FrameType::kStats: {
      const StatsFrame stats = decode_stats(frame);
      DCNT_CHECK(stats.node_id < opt_.nodes);
      DCNT_CHECK(round_in_flight_ && !round_[stats.node_id].has_value());
      round_[stats.node_id] = stats;
      if (--stats_outstanding_ == 0) on_stats_round_complete();
      return;
    }
    default:
      DCNT_CHECK_MSG(false, "unexpected frame type at the controller");
  }
}

void Controller::on_complete(OpId op, Value value) {
  DCNT_CHECK(phase_ == Phase::kRun);
  const auto idx = static_cast<std::size_t>(op);
  DCNT_CHECK(op >= 0 && idx < total_);
  DCNT_CHECK_MSG(!value_seen_[idx], "operation completed twice");
  value_seen_[idx] = true;
  values_[idx] = value;
  if (idx >= warmup_) {
    const std::int64_t t = TailRecorder::now_ns();
    recorder_->on_complete(op, t);
    if (history_) history_->on_response(op, t, value);
    t_last_complete_ns_ = t;
  }
  ++completed_;
  if (opt_.quiesce_between_ops) {
    phase_ = Phase::kQuiesce;
    begin_stats_round();
    return;
  }
  if (warming_up_) {
    // Keep the warmup window full; the last warmup completion
    // triggers the reset barrier instead of a new op.
    if (completed_ == warmup_) {
      phase_ = Phase::kQuiesce;
      begin_stats_round();
    } else {
      maybe_issue_after_completion();
    }
    return;
  }
  if (opt_.open_rate <= 0.0) maybe_issue_after_completion();
  maybe_finish_run();
}

void Controller::begin_keyed_stats() {
  phase_ = Phase::kKeyedStats;
  keyed_stats_pending_ = opt_.nodes;
  hot_key_load_.assign(static_cast<std::size_t>(n_), 0);
  // The hot key is a property of the measured schedule (ties to the
  // smallest id); the nodes' reports then fill in its message loads.
  std::unordered_map<KeyId, std::int64_t> ops_by_key;
  for (std::size_t i = warmup_; i < issued_; ++i) ++ops_by_key[keys_[i]];
  for (const auto& [key, count] : ops_by_key) {
    if (count > hot_key_ops_ || (count == hot_key_ops_ && key < hot_key_)) {
      hot_key_ = key;
      hot_key_ops_ = count;
    }
  }
  const std::vector<std::uint8_t> frame = encode_keyed_stats_request();
  for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
    loop_.send(conn_of_node_[id], frame);
  }
}

void Controller::on_keyed_stats(const KeyedStatsFrame& ks) {
  DCNT_CHECK(phase_ == Phase::kKeyedStats);
  DCNT_CHECK(ks.node_id < opt_.nodes);
  DCNT_CHECK(keyed_stats_pending_ > 0);
  for (const KeyProcLoad& load : ks.loads) {
    // Each (key, processor) slice is reported by exactly one node — the
    // processor's owner — so accumulation is an exact merge.
    DCNT_CHECK(load.pid >= 0 && load.pid < n_);
    DCNT_CHECK(static_cast<std::uint32_t>(load.pid) % opt_.nodes ==
               ks.node_id);
    keys_touched_.insert(load.key);
    if (load.key == hot_key_) {
      hot_key_load_[static_cast<std::size_t>(load.pid)] +=
          load.sent + load.received;
      hot_key_sent_ += load.sent;
    }
  }
  if (ks.last) {
    // LRU counters ride in every chunk of a node's report; count them
    // once, from the last.
    lru_hits_ += ks.lru_hits;
    lru_misses_ += ks.lru_misses;
    lru_evicts_ += ks.lru_evicts;
    lru_rehydrates_ += ks.lru_rehydrates;
    if (--keyed_stats_pending_ == 0) phase_ = Phase::kShutdown;
  }
}

int Controller::poll_timeout_ms() const {
  if (phase_ == Phase::kRun && opt_.open_rate > 0.0) return 1;
  if (phase_ == Phase::kQuiesce && !round_in_flight_) return 1;
  return 50;
}

ClusterResult Controller::run() {
  DCNT_CHECK(opt_.nodes >= 1);
  deadline_ = WallClock::now() +
              std::chrono::microseconds(
                  static_cast<std::int64_t>(opt_.timeout_seconds * 1e6));

  // Probe the protocol locally for its true size and shard contract —
  // friendlier to fail here than inside four child processes.
  {
    auto probe = make_counter(counter_kind_from_string(opt_.counter),
                              opt_.min_processors);
    n_ = static_cast<std::int64_t>(probe->num_processors());
    if (opt_.nodes > 1) {
      DCNT_CHECK_MSG(probe->shard_safe(),
                     "multi-node cluster requires a shard-safe protocol");
    }
    if (opt_.keys > 0 && opt_.key_capacity > 0) {
      DCNT_CHECK_MSG(probe->service_evictable(),
                     "key_capacity requires a service-evictable counter");
    }
  }
  ops_ = opt_.ops != 0 ? opt_.ops : static_cast<std::size_t>(8 * n_);
  DCNT_CHECK(ops_ > 0);
  warmup_ = opt_.warmup;
  total_ = warmup_ + ops_;
  warming_up_ = warmup_ > 0;
  initiators_ = make_initiators(opt_.initiators, opt_.zipf_s, n_,
                                static_cast<std::int64_t>(total_), opt_.seed);
  if (keyed()) {
    keys_ = make_keys(opt_.key_dist, opt_.key_skew,
                      static_cast<std::int64_t>(opt_.keys),
                      static_cast<std::int64_t>(total_), opt_.seed);
  }
  values_.assign(total_, -1);
  value_seen_.assign(total_, false);
  budget_ns_ = opt_.duration_s > 0.0
                   ? static_cast<std::int64_t>(opt_.duration_s * 1e9)
                   : std::numeric_limits<std::int64_t>::max();
  run_deadline_ns_ = std::numeric_limits<std::int64_t>::max();
  // Sized by op id; the warmup slots simply stay empty.
  recorder_ = std::make_unique<TailRecorder>(
      total_, static_cast<std::int64_t>(opt_.slo_us * 1e3), opt_.exact_cap);
  if (opt_.lin_check && !keyed()) {
    history_ = std::make_unique<concurrent::HistoryBuffer>(total_);
  }
  conn_of_node_.assign(opt_.nodes, -1);
  hellos_.assign(opt_.nodes, std::nullopt);

  std::uint16_t ctrl_port = 0;
  Socket listener = tcp_listen(&ctrl_port);
  loop_.add_listener(std::move(listener), [this](Socket accepted) {
    loop_.add_connection(
        std::move(accepted),
        [this](int conn, const FrameView& f) { on_frame(conn, f); },
        [this](int) {
          if (phase_ != Phase::kShutdown) child_died_ = true;
        });
  });

  const std::string binary = find_node_binary(opt_.node_binary);
  for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
    std::vector<std::string> args = {
        binary,
        "--ctrl_port=" + std::to_string(ctrl_port),
        "--node=" + std::to_string(id),
        "--nodes=" + std::to_string(opt_.nodes),
        "--counter=" + opt_.counter,
        "--n=" + std::to_string(opt_.min_processors),
        "--seed=" + std::to_string(opt_.seed),
        "--transport=" + std::string(opt_.udp ? "udp" : "tcp"),
        "--drop=" + std::to_string(opt_.drop_probability),
        "--tick_us=" + std::to_string(opt_.tick_us),
        "--ack_timeout=" + std::to_string(opt_.retry.ack_timeout),
        "--max_timeout=" + std::to_string(opt_.retry.max_timeout),
        "--max_attempts=" + std::to_string(opt_.retry.max_attempts),
        "--loops=" + std::to_string(opt_.loops > 0 ? opt_.loops : 1),
        // 0 passes through: the node reads it as inline drive.
        "--shards=" + std::to_string(opt_.shards_per_node),
        "--backend=" + opt_.backend,
        // Exact op-table capacity: the controller knows the op count.
        "--max_ops=" + std::to_string(total_),
    };
    if (keyed()) {
      args.push_back("--keys=" + std::to_string(opt_.keys));
      args.push_back("--key_capacity=" + std::to_string(opt_.key_capacity));
    }
    reaper_.pids.push_back(spawn(args));
  }

  while (phase_ != Phase::kShutdown) {
    check_deadline();
    DCNT_CHECK_MSG(!child_died_, "a node process died mid-run");
    if (phase_ == Phase::kRun && !warming_up_ && opt_.open_rate > 0.0 &&
        !no_more_) {
      // Walk the arrival timeline: issue every arrival that is due (all
      // at once if the controller fell behind — never skipped; the
      // scheduled-time stamp charges the lateness to the op), stop at
      // the first one scheduled past the duration budget.
      const std::int64_t now = TailRecorder::now_ns();
      while (issued_ < total_) {
        if (next_arrival_off_ >= budget_ns_) {
          no_more_ = true;
          break;
        }
        if (now - open_t0_ns_ < next_arrival_off_) break;
        issue_next(open_t0_ns_ + next_arrival_off_);
        next_arrival_off_ = timeline_->next_ns();
      }
      maybe_finish_run();
    }
    if (phase_ == Phase::kQuiesce && !round_in_flight_ &&
        WallClock::now() >= next_round_at_) {
      begin_stats_round();
    }
    loop_.run_once(poll_timeout_ms());
  }

  // Orderly teardown: every node flushes and exits 0; the controller
  // insists on it so a crash shadowed by a successful run still fails.
  const std::vector<std::uint8_t> bye = encode_shutdown();
  for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
    loop_.send(conn_of_node_[id], bye);
  }
  while (loop_.open_connections() > 0) {
    check_deadline();
    loop_.run_once(20);
  }
  for (pid_t& pid : reaper_.pids) {
    int status = 0;
    DCNT_CHECK(::waitpid(pid, &status, 0) == pid);
    DCNT_CHECK_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                   "a node exited abnormally");
    pid = 0;  // reaped; the ChildReaper must not touch it
  }

  // Merge and verify. Ops are issued in id order, so a duration-cut run
  // completed exactly ids 0..issued_-1; everything below verifies and
  // reports over that prefix.
  values_.resize(issued_);
  ClusterResult out;
  out.counter = opt_.counter;
  out.n = static_cast<std::size_t>(n_);
  out.nodes = opt_.nodes;
  out.ops = issued_ - warmup_;
  out.warmup = warmup_;
  out.quiesce_rounds = quiesce_rounds_;
  out.load.assign(static_cast<std::size_t>(n_), 0);
  for (std::uint32_t id = 0; id < opt_.nodes; ++id) {
    const StatsFrame& s = *round_[id];
    out.wire_msgs_sent += s.wire_msgs_sent;
    out.wire_msgs_received += s.wire_msgs_received;
    out.wire_bytes_sent += s.wire_bytes_sent;
    out.wire_bytes_received += s.wire_bytes_received;
    out.injected_drops += s.injected_drops;
    out.retransmissions += s.retransmissions;
    out.duplicates_suppressed += s.duplicates_suppressed;
    out.messages_abandoned += s.messages_abandoned;
    out.wire_write_syscalls += s.wire_write_syscalls;
    for (const ProcLoad& load : s.loads) {
      DCNT_CHECK(load.pid >= 0 && load.pid < n_);
      DCNT_CHECK(static_cast<std::uint32_t>(load.pid) % opt_.nodes == id);
      out.load[static_cast<std::size_t>(load.pid)] =
          load.sent + load.received;
      out.total_messages += load.sent;
    }
  }
  for (ProcessorId p = 0; p < n_; ++p) {
    if (out.load[static_cast<std::size_t>(p)] > out.max_load) {
      out.max_load = out.load[static_cast<std::size_t>(p)];
      out.bottleneck = p;
    }
  }

  if (keyed()) {
    // Per-key contract (warmup ops included — they consumed that key's
    // low values): within each key, the returned values are an exact
    // permutation of 0..ops_k-1. The global permutation check does not
    // apply across independent counters.
    std::unordered_map<KeyId, std::vector<Value>> by_key;
    for (std::size_t i = 0; i < issued_; ++i) by_key[keys_[i]].push_back(values_[i]);
    out.values_ok = true;
    for (auto& [key, vals] : by_key) {
      std::sort(vals.begin(), vals.end());
      for (std::size_t i = 0; i < vals.size(); ++i) {
        if (vals[i] != static_cast<Value>(i)) out.values_ok = false;
      }
    }
    DCNT_CHECK_MSG(out.values_ok,
                   "some key's values are not a permutation of 0..ops_k-1");
  } else {
    std::vector<Value> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    out.values_ok = true;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i] != static_cast<Value>(i)) {
        out.values_ok = false;
        break;
      }
    }
    DCNT_CHECK_MSG(out.values_ok,
                   "cluster values are not a permutation of 0..ops-1");
  }
  out.values = std::move(values_);
  if (keyed()) {
    out.keys = opt_.keys;
    keys_.resize(issued_);
    out.key_of_op = std::move(keys_);
    out.hot_key = hot_key_;
    out.hot_key_ops = hot_key_ops_;
    for (const std::int64_t load : hot_key_load_) {
      out.hot_key_max_load = std::max(out.hot_key_max_load, load);
    }
    out.hot_key_messages = hot_key_sent_;
    out.keys_touched = keys_touched_.size();
    out.lru_hits = lru_hits_;
    out.lru_misses = lru_misses_;
    out.lru_evicts = lru_evicts_;
    out.lru_rehydrates = lru_rehydrates_;
  }

  out.wall_seconds =
      static_cast<double>(t_last_complete_ns_ - t_first_issue_ns_) / 1e9;
  if (out.wall_seconds > 0.0) {
    out.ops_per_sec = static_cast<double>(out.ops) / out.wall_seconds;
  }
  const traffic::TrafficStats lat = recorder_->stats();
  out.mean_us = lat.mean_us;
  out.p50_us = lat.p50_us;
  out.p95_us = lat.p95_us;
  out.p99_us = lat.p99_us;
  out.p999_us = lat.p999_us;
  out.p9999_us = lat.p9999_us;
  out.max_us = lat.max_us;
  out.slo_us = static_cast<double>(lat.slo_ns) / 1e3;
  out.slo_den = lat.count;
  out.slo_ok = lat.slo_ok;
  out.slo_attainment = lat.slo_attainment;
  out.hdr_recorder = !lat.exact;
  out.hdr_overflow = lat.hdr_overflow;
  if (lat.phases) {
    out.slo_phases = true;
    out.slo_high_den = lat.high_count;
    out.slo_high_ok = lat.high_slo_ok;
    out.slo_high_attainment = lat.high_attainment;
    out.slo_low_den = lat.low_count;
    out.slo_low_ok = lat.low_slo_ok;
    out.slo_low_attainment = lat.low_attainment;
  }
  if (history_) {
    const LinearizabilityReport report =
        check_linearizable(history_->snapshot(warmup_));
    out.lin_checked = true;
    out.linearizable = report.linearizable;
    out.lin_violations = report.violations;
  }
  return out;
}

}  // namespace

ClusterResult run_cluster(const ClusterOptions& options) {
  Controller controller(options);
  return controller.run();
}

}  // namespace dcnt::net
