// Multi-process cluster harness: the controller side of the socket
// runtime (src/net/).
//
// run_cluster spawns `nodes` dcnt_node processes on localhost, waits
// for the Hello/Peers/Ready mesh handshake, then plays the same
// closed-/open-loop workload shapes as runtime/workload.hpp against the
// cluster: Start frames out, Complete frames back, latency stamped at
// the controller with the same steady_clock machinery. Afterwards it
// runs the distributed-quiescence barrier (repeated StatsRequest/Stats
// rounds; quiescent when two consecutive rounds show identical per-node
// progress, no unacked envelopes or armed timers anywhere, and — on the
// reliable TCP plane — wire sends equal to wire receives), merges the
// per-processor loads (exact: each processor is owned by one node), and
// verifies the counter's observable contract: the returned values are a
// permutation of 0..ops-1.
//
// The node binary is found via ClusterOptions::node_binary, then the
// DCNT_NODE_BIN environment variable, then next to /proc/self/exe
// (covers running from build/tests, build/bench and build/examples).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/retry.hpp"
#include "sim/types.hpp"
#include "support/stats.hpp"

namespace dcnt::net {

struct ClusterOptions {
  /// Counter kind accepted by harness/factory.hpp; a multi-node cluster
  /// requires it to be shard_safe().
  std::string counter{"tree"};
  std::int64_t min_processors{16};
  std::uint32_t nodes{4};
  /// 0 = 8 * actual processor count (the throughput harness default).
  std::size_t ops{0};
  /// Unmeasured ops issued closed-loop before the measured run. After
  /// they complete and the cluster passes a full quiescence barrier,
  /// the controller broadcasts kMetricsReset (nodes zero their
  /// message-load metrics and re-baseline their wire counters) and only
  /// then starts the measured ops — connection setup, allocator
  /// cold-start and first-touch page faults land outside the numbers.
  std::size_t warmup{0};
  /// "roundrobin" | "uniform" | "zipf" (harness/schedule.hpp).
  std::string initiators{"roundrobin"};
  double zipf_s{0.99};
  std::uint64_t seed{1};
  /// Closed-loop in-flight window; used when open_rate == 0.
  std::size_t concurrency{8};
  /// Pipeline depth: each closed-loop slot keeps this many operations
  /// outstanding, so the effective in-flight window is
  /// concurrency * pipeline (capped at ops). 1 reproduces the classic
  /// one-op-per-slot closed loop. Depth > 1 departs from the paper's
  /// one-op-at-a-time client model — values are still verified as a
  /// permutation and the quiescence barrier still runs at phase
  /// boundaries, but per-op latency now includes queueing behind the
  /// same slot's earlier ops. quiesce_between_ops forces depth 1.
  std::size_t pipeline{1};
  /// Run the quiescence barrier after every completion before issuing
  /// the next op (forces an effective concurrency of 1). This is the
  /// sequential schedule in the simulator's sense: an op's *entire*
  /// message activity — including trailing maintenance traffic the
  /// protocol emits after completing (e.g. tree retirement) — settles
  /// before the next op starts. For protocols whose per-op traffic is a
  /// single causal chain (central, static-tree) this makes runs
  /// deterministic in (seed, schedule) down to per-processor loads;
  /// protocols that fork concurrent branches within an op (the dynamic
  /// tree's handover handshake racing the inc's reply) stay
  /// deterministic in *values* but may shift a constant number of
  /// forwarding messages between runs, exactly as in the asynchronous
  /// simulator under non-fixed delay models. Completion alone is not
  /// enough even for chains: the next Start would race leftover
  /// maintenance messages across nodes.
  bool quiesce_between_ops{false};
  /// Concurrency-plane alias for `pipeline`: when > 0 it supersedes it
  /// (window = concurrency * inflight), so the TCP benches sweep the
  /// same --inflight knob as the in-process ones. 0 defers to
  /// `pipeline`.
  std::size_t inflight{0};
  /// If > 0: open-loop issuance at this mean rate (ops/second) on a
  /// deterministic arrival timeline; latency is measured from each op's
  /// scheduled arrival (coordinated-omission-free, DESIGN.md §14).
  double open_rate{0.0};
  /// Open-loop rate shape: "constant", "burst" or "diurnal"
  /// (traffic/shape.hpp); period/amplitude/duty parameterize it.
  std::string shape{"constant"};
  double period_s{1.0};
  double amplitude{0.5};
  double duty{0.5};
  /// > 0: measured-phase wall-clock budget in seconds. Open loop stops
  /// issuing arrivals scheduled past the budget; closed loop stops
  /// reissuing once the deadline passes. Either way every issued op
  /// completes and the quiescence barrier still runs. `ops` becomes a
  /// cap rather than a target.
  double duration_s{0.0};
  /// > 0: latency SLO threshold in microseconds; the result reports the
  /// fraction of measured ops at or under it.
  double slo_us{0.0};
  /// Runs with more ops than this record latency into the O(buckets)
  /// HDR histogram instead of exact per-op slots.
  std::size_t exact_cap{1 << 16};
  /// Data plane: false = TCP mesh, true = lossy UDP behind the reliable
  /// transport.
  bool udp{false};
  /// Seeded sender-side datagram loss (UDP mode).
  double drop_probability{0.0};
  /// Wall microseconds per logical tick in the nodes (timer delays).
  std::int64_t tick_us{200};
  RetryParams retry{};
  /// Whole-run wall-clock budget; exceeding it aborts the harness (and
  /// the orphaned nodes exit on losing their controller connection).
  double timeout_seconds{120.0};
  /// Override the dcnt_node binary path (tests, cross-directory runs).
  std::string node_binary;
  /// Event-loop threads per node (peer links sharded by id % loops).
  std::uint32_t loops{1};
  /// Protocol worker shards per node's ThreadedRuntime. 0 = inline
  /// drive: the node spawns no worker threads and its event loop runs
  /// the single shard itself (requires loops == 1; see NodeConfig).
  std::uint32_t shards_per_node{1};
  /// Reactor backend for the nodes AND the controller: "" = platform
  /// default, "epoll" or "poll" (the parity tests pin both).
  std::string backend;
  /// > 0: multi-key mode — every node wraps its counter in a
  /// service/MultiCounter fabric and each op addresses one of this many
  /// keys (StartFrame args = {key}); the per-key contract (each key's
  /// values form a permutation of 0..ops_k-1) replaces the global one.
  std::size_t keys{0};
  /// Key distribution: "roundrobin" | "uniform" | "zipf" (key 0
  /// hottest), salted independently of the initiator stream.
  std::string key_dist{"zipf"};
  double key_skew{0.99};
  /// LRU cap on live per-key instances per node (0 = unbounded;
  /// requires a service-evictable counter).
  std::size_t key_capacity{0};
  /// Multi-key batched RPC: issue this many consecutive schedule
  /// entries as one kStartBatch frame per touched node, with the
  /// closed-loop window counted in batches (concurrency * pipeline of
  /// them). Nodes coalesce the replies into kCompleteBatch frames per
  /// drain round regardless. 1 = unbatched keyed Starts; forced to 1
  /// under quiesce_between_ops and open-loop issuance.
  std::size_t batch{1};
  /// Capture every measured op's (invoke, response, value) at the
  /// controller and run check_linearizable over the real TCP/UDP
  /// history after the run (ClusterResult::linearizable). Skipped in
  /// multi-key mode, where per-key value spaces make a global counter
  /// history meaningless.
  bool lin_check{true};
};

struct ClusterResult {
  std::string counter;
  std::size_t n{0};
  std::uint32_t nodes{0};
  /// Measured ops issued and completed (< the requested count when
  /// duration_s cut the schedule short).
  std::size_t ops{0};
  std::size_t warmup{0};
  /// Values (warmup + measured together) form a permutation of
  /// 0..warmup+ops-1 (also DCNT_CHECKed).
  bool values_ok{false};

  double wall_seconds{0.0};
  double ops_per_sec{0.0};
  double mean_us{0.0};
  double p50_us{0.0};
  double p95_us{0.0};
  double p99_us{0.0};
  double p999_us{0.0};
  double p9999_us{0.0};
  double max_us{0.0};
  /// SLO attainment (slo_us > 0 in the options): slo_ok completions at
  /// or under the threshold out of slo_den measured ops.
  double slo_us{0.0};
  std::int64_t slo_den{0};
  std::int64_t slo_ok{0};
  double slo_attainment{0.0};
  /// True when latency came from the O(buckets) HDR histogram;
  /// hdr_overflow counts samples that saturated its top bucket.
  bool hdr_recorder{false};
  std::int64_t hdr_overflow{0};
  /// Linearizability over the measured history (options.lin_check; see
  /// concurrent/history.hpp). lin_checked says the check ran.
  bool lin_checked{false};
  bool linearizable{false};
  std::int64_t lin_violations{0};
  /// Phase-split SLO attainment (open-loop burst runs only).
  bool slo_phases{false};
  std::int64_t slo_high_den{0};
  std::int64_t slo_high_ok{0};
  double slo_high_attainment{0.0};
  std::int64_t slo_low_den{0};
  std::int64_t slo_low_ok{0};
  double slo_low_attainment{0.0};

  /// Protocol-level message accounting, merged across nodes — the same
  /// m_p the simulator and threaded runtime report.
  std::int64_t total_messages{0};
  std::int64_t max_load{0};
  ProcessorId bottleneck{kNoProcessor};
  std::vector<std::int64_t> load;  ///< m_p per processor

  /// Wire-level accounting, summed across nodes.
  std::int64_t wire_msgs_sent{0};
  std::int64_t wire_msgs_received{0};
  std::int64_t wire_bytes_sent{0};
  std::int64_t wire_bytes_received{0};
  std::int64_t injected_drops{0};
  std::int64_t retransmissions{0};
  std::int64_t duplicates_suppressed{0};
  std::int64_t messages_abandoned{0};
  /// Kernel write syscalls the data planes issued (TCP send() calls
  /// that moved bytes; one sendto per datagram in UDP mode).
  /// wire_bytes_sent / wire_write_syscalls = bytes per write, the
  /// direct observable for send coalescing.
  std::int64_t wire_write_syscalls{0};

  /// StatsRequest rounds the quiescence barrier took.
  int quiesce_rounds{0};
  /// Per-op returned values, warmup ops first (size warmup + ops).
  std::vector<Value> values;

  // Multi-key mode (ClusterOptions::keys > 0; zero otherwise):
  std::size_t keys{0};
  /// Which key each op addressed (size warmup + ops) — pairs with
  /// `values` for per-key verification.
  std::vector<KeyId> key_of_op;
  /// Key with the most *measured* ops (ties to the smallest id), and
  /// its per-key message accounting merged from the nodes' kKeyedStats
  /// reports: max_p m_p restricted to that key's traffic — the paper's
  /// bottleneck measured per key inside the fabric.
  KeyId hot_key{kNoKey};
  std::int64_t hot_key_ops{0};
  std::int64_t hot_key_max_load{0};
  std::int64_t hot_key_messages{0};
  /// Keys that moved at least one measured message, cluster-wide.
  std::size_t keys_touched{0};
  /// LRU tier counters summed across the nodes' directories.
  std::int64_t lru_hits{0};
  std::int64_t lru_misses{0};
  std::int64_t lru_evicts{0};
  std::int64_t lru_rehydrates{0};
};

ClusterResult run_cluster(const ClusterOptions& options);

}  // namespace dcnt::net
