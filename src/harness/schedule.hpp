// Operation schedules: who initiates which inc, in what order.
//
// The paper's lower bound is proved for the strictest workload — every
// processor initiates exactly one inc ("to be even more strict ... each
// processor initiates exactly one inc operation") — and remarks that
// skewed workloads inherently limit distribution. The schedule
// generators cover both regimes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "support/rng.hpp"

namespace dcnt {

/// 0, 1, ..., n-1: each processor incs once, in id order.
std::vector<ProcessorId> schedule_sequential(std::int64_t n);

/// n-1, ..., 1, 0.
std::vector<ProcessorId> schedule_reverse(std::int64_t n);

/// A uniformly random permutation of [0, n) — one inc per processor.
std::vector<ProcessorId> schedule_permutation(std::int64_t n, Rng& rng);

/// `ops` initiators drawn uniformly at random with repetition.
std::vector<ProcessorId> schedule_uniform(std::int64_t n, std::int64_t ops,
                                          Rng& rng);

/// `ops` initiators from a Zipf(s) distribution over processors
/// (processor 0 hottest). s = 0 is uniform; s ~ 1 is heavily skewed.
std::vector<ProcessorId> schedule_zipf(std::int64_t n, std::int64_t ops,
                                       double s, Rng& rng);

/// All `ops` operations from one processor — the paper's "many
/// operations initiated by a single processor" degenerate case.
std::vector<ProcessorId> schedule_single_origin(ProcessorId origin,
                                                std::int64_t ops);

/// Named-distribution front end shared by the throughput harness and the
/// socket cluster: "roundrobin" (i % n, the strict one-inc-per-processor
/// regime when ops == n), "uniform", or "zipf" with skew `zipf_s`.
/// Seeding is by value, so in-process and cluster runs at the same seed
/// drive the identical initiator sequence — which is what makes their
/// message-load numbers comparable.
std::vector<ProcessorId> make_initiators(const std::string& distribution,
                                         double zipf_s, std::int64_t n,
                                         std::int64_t ops, std::uint64_t seed);

/// Key schedule for the multi-key service fabric: which counter each
/// operation addresses. Same named distributions as make_initiators —
/// "roundrobin" (i % keys), "uniform", or "zipf" with skew `zipf_s`
/// (key 0 hottest) — but salted differently, so a Zipf keyspace crossed
/// with Zipf initiators at one seed does not correlate hot keys with
/// hot initiators. Seeded by value for the same reason as
/// make_initiators: inproc and cluster runs at one seed must drive the
/// identical (initiator, key) sequence.
std::vector<KeyId> make_keys(const std::string& distribution, double zipf_s,
                             std::int64_t keys, std::int64_t ops,
                             std::uint64_t seed);

}  // namespace dcnt
