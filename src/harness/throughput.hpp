// Wall-clock throughput harness: the threaded-runtime sibling of
// runner.hpp.
//
// run_throughput drives a counter protocol on real threads with a
// closed- or open-loop workload and verifies the concurrent-mode
// contract — returned values form a permutation of 0..m-1 (same check
// as run_concurrent; sequential 0,1,2,... ordering is meaningless once
// operations genuinely overlap). Aborts on violation, so a bench
// completing is itself a correctness check.
//
// run_runtime_sequential is the paper's model on the runtime: one
// operation at a time, quiescing in between. Used by the
// runtime/simulator equivalence tests: for sequential schedules the
// message complexity of the tree and central counters is
// schedule-independent, so total_messages (and per-processor loads)
// must match the simulator exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/placement.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "sim/types.hpp"

namespace dcnt {

struct ThroughputOptions {
  /// Worker threads; 0 = the process-wide --threads/DCNT_THREADS knob.
  std::size_t workers{0};
  /// Operations; 0 = 8 * num_processors.
  std::size_t ops{0};
  /// Closed-loop clients (ignored when open_rate > 0).
  std::size_t concurrency{16};
  /// Ops each closed-loop client keeps outstanding (window =
  /// concurrency * inflight); 1 = the classic closed loop. See
  /// WorkloadOptions::inflight.
  std::size_t inflight{1};
  /// > 0: open-loop issuance at this mean rate (ops/sec), latency
  /// measured from scheduled arrival time (coordinated-omission-free).
  double open_rate{0.0};
  /// Open-loop rate shape: "constant", "burst" or "diurnal"
  /// (traffic/shape.hpp); period/amplitude/duty parameterize it.
  std::string shape{"constant"};
  double period_s{1.0};
  double amplitude{0.5};
  double duty{0.5};
  /// > 0: wall-clock budget in seconds — the run issues only the
  /// schedule prefix that fits, then drains (ops becomes a cap).
  double duration_s{0.0};
  /// > 0: SLO threshold in microseconds; results report attainment.
  double slo_us{0.0};
  /// Runs larger than this switch from exact per-op latency storage to
  /// the O(buckets) HDR histogram.
  std::size_t exact_cap{1 << 16};
  /// Initiator choice: "roundrobin", "uniform", or "zipf".
  std::string initiators{"roundrobin"};
  /// Zipf skew (initiators == "zipf"); processor 0 hottest.
  double zipf_s{0.9};
  std::uint64_t seed{1};
  /// Unrecorded warmup operations run to quiescence (metrics reset
  /// after) before the measured ops — see WorkloadOptions::warmup.
  std::size_t warmup{0};
  /// Passed through to RuntimeConfig: 0 = adaptive (min(workers,
  /// cores)); tests pin it to `workers` to force real cross-shard
  /// delivery on any host.
  std::size_t active_shards{0};
  /// Passed through to RuntimeConfig::flush_batch.
  std::size_t flush_batch{64};
  /// Capture every measured op's (invoke, response, value) interval in
  /// a concurrent::HistoryBuffer and run check_linearizable on the real
  /// history after the run. Costs three stores per op; results land in
  /// ThroughputResult::linearizable / lin_violations. Keyed runs ignore
  /// it (per-key value spaces make a global counter history
  /// meaningless).
  bool lin_check{true};
  /// Core placement for the runtime workers (runtime/placement.hpp);
  /// kNone leaves scheduling to the kernel. Results report what
  /// actually applied (pinned_workers / placement_supported) — an
  /// unsupported host runs unpinned and says so rather than failing.
  Placement placement{Placement::kNone};
};

struct ThroughputResult {
  std::string counter;
  std::size_t n{0};
  std::size_t workers{0};
  /// Measured ops issued and completed (< the requested count when
  /// duration_s cut the schedule short).
  std::size_t ops{0};
  std::size_t warmup{0};
  double wall_seconds{0.0};
  double ops_per_sec{0.0};
  double mean_us{0.0};
  double p50_us{0.0};
  double p95_us{0.0};
  double p99_us{0.0};
  double p999_us{0.0};
  double p9999_us{0.0};
  double max_us{0.0};
  /// SLO attainment (slo_us > 0 in the options): fraction of completed
  /// ops at or under the threshold, denominator slo_den.
  double slo_us{0.0};
  std::int64_t slo_den{0};
  std::int64_t slo_ok{0};
  double slo_attainment{0.0};
  /// True when latency came from the O(buckets) HDR histogram rather
  /// than exact per-op storage; hdr_overflow counts saturated samples.
  bool hdr_recorder{false};
  std::int64_t hdr_overflow{0};
  /// Distinct threads that completed measured ops.
  std::size_t record_threads{0};
  /// Linearizability over the measured history (options.lin_check):
  /// lin_checked says the check ran; linearizable is the verdict;
  /// lin_violations counts offending pairs (a serializing counter must
  /// report 0 at any inflight depth; a quiescently-consistent one —
  /// diffracting tree, counting network — may not).
  bool lin_checked{false};
  bool linearizable{false};
  std::int64_t lin_violations{0};
  /// Phase-split SLO attainment (open-loop burst runs only;
  /// slo_phases says the split was recorded).
  bool slo_phases{false};
  std::int64_t slo_high_den{0};
  std::int64_t slo_high_ok{0};
  double slo_high_attainment{0.0};
  std::int64_t slo_low_den{0};
  std::int64_t slo_low_ok{0};
  double slo_low_attainment{0.0};
  /// Elastic tree only (concurrent::ElasticTreeCounter; zeros for every
  /// other protocol): completed online migrations, epochs opened, and
  /// the final epoch's fan-out — the bench row's resize evidence.
  std::size_t elastic_resizes{0};
  std::uint32_t elastic_epochs{0};
  int elastic_final_k{0};
  std::int64_t total_messages{0};
  std::int64_t max_load{0};
  ProcessorId bottleneck{kNoProcessor};
  double mean_load{0.0};
  bool values_ok{false};
  /// Placement outcome: the policy asked for, how many workers actually
  /// pinned, and whether pinning was possible at all on this host (the
  /// "--pin applies or cleanly reports unsupported" contract).
  std::string placement{"none"};
  std::size_t pinned_workers{0};
  bool placement_supported{true};
};

/// Runs the workload, verifies the value permutation (aborts on
/// violation) and check_quiescent, and reports wall-clock rates plus
/// the merged message-load metrics.
ThroughputResult run_throughput(std::unique_ptr<CounterProtocol> protocol,
                                const ThroughputOptions& options = {});

/// Keyspace shape for run_keyed_throughput: the fabric multiplexes
/// `keys` counters over the protocol's processor set, ops drawn from
/// `key_dist` over keys crossed with ThroughputOptions::initiators over
/// processors.
struct KeyedOptions {
  std::size_t keys{1};
  /// "roundrobin", "uniform" or "zipf" (key 0 hottest).
  std::string key_dist{"zipf"};
  double key_skew{0.99};
  /// LRU capacity for live per-key instances; 0 = unbounded.
  std::size_t key_capacity{0};
};

struct KeyedThroughputResult {
  /// Aggregate rates / loads / latencies over all keys. values_ok here
  /// reports the *per-key* contract: each key's returned values form an
  /// exact permutation of 0..ops_k-1 (also DCNT_CHECKed).
  ThroughputResult base;
  std::size_t keys{0};
  /// Key with the most operations (ties to the smallest key id).
  KeyId hot_key{kNoKey};
  std::int64_t hot_key_ops{0};
  /// max_p m_p restricted to the hot key's traffic — the paper's
  /// bottleneck measured per key inside the fabric.
  std::int64_t hot_key_max_load{0};
  std::int64_t hot_key_messages{0};
  /// Keys that moved at least one message.
  std::size_t keys_touched{0};
  /// LRU tier counters (service/KeyDirectory).
  std::int64_t lru_hits{0};
  std::int64_t lru_misses{0};
  std::int64_t lru_evicts{0};
  std::int64_t lru_rehydrates{0};
  std::size_t live_instances{0};
};

/// Multi-key sibling of run_throughput: wraps `prototype` in a
/// service/MultiCounter (routing seed = options.seed), drives the keyed
/// workload, verifies every key's values are a permutation of
/// 0..ops_k-1 plus the fabric's check_quiescent, and reports aggregate
/// rates, the hot key's per-key bottleneck load, and LRU counters.
KeyedThroughputResult run_keyed_throughput(
    std::unique_ptr<CounterProtocol> prototype,
    const ThroughputOptions& options, const KeyedOptions& keyed);

struct RuntimeSequentialResult {
  std::vector<Value> values;
  Metrics metrics;
};

/// Sequential driver on the threaded runtime: begin one inc per entry
/// of `order`, wait for quiescence after each, assert the value is the
/// initiation index (the paper's sequential contract) and run
/// check_quiescent. `workers` as in RuntimeConfig (0 = auto). Always
/// pins active_shards = workers — this is the equivalence harness, and
/// it must exercise genuine cross-shard delivery on any host.
/// `flush_batch` as in RuntimeConfig: the equivalence tests sweep it to
/// prove outbox coalescing is delivery-transparent.
RuntimeSequentialResult run_runtime_sequential(
    std::unique_ptr<CounterProtocol> protocol, std::size_t workers,
    const std::vector<ProcessorId>& order, std::uint64_t seed = 1,
    std::size_t flush_batch = 64);

}  // namespace dcnt
