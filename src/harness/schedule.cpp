#include "harness/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace dcnt {

std::vector<ProcessorId> schedule_sequential(std::int64_t n) {
  DCNT_CHECK(n > 0);
  std::vector<ProcessorId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  return order;
}

std::vector<ProcessorId> schedule_reverse(std::int64_t n) {
  auto order = schedule_sequential(n);
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<ProcessorId> schedule_permutation(std::int64_t n, Rng& rng) {
  auto order = schedule_sequential(n);
  std::shuffle(order.begin(), order.end(), rng);
  return order;
}

std::vector<ProcessorId> schedule_uniform(std::int64_t n, std::int64_t ops,
                                          Rng& rng) {
  DCNT_CHECK(n > 0 && ops >= 0);
  std::vector<ProcessorId> order;
  order.reserve(static_cast<std::size_t>(ops));
  for (std::int64_t i = 0; i < ops; ++i) {
    order.push_back(
        static_cast<ProcessorId>(rng.next_below(static_cast<std::uint64_t>(n))));
  }
  return order;
}

std::vector<ProcessorId> schedule_zipf(std::int64_t n, std::int64_t ops,
                                       double s, Rng& rng) {
  DCNT_CHECK(n > 0 && ops >= 0 && s >= 0.0);
  // Build the CDF once; n is at most a few hundred thousand here.
  std::vector<double> cdf(static_cast<std::size_t>(n));
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[static_cast<std::size_t>(i)] = acc;
  }
  std::vector<ProcessorId> order;
  order.reserve(static_cast<std::size_t>(ops));
  for (std::int64_t i = 0; i < ops; ++i) {
    const double u = rng.next_double() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    order.push_back(static_cast<ProcessorId>(it - cdf.begin()));
  }
  return order;
}

std::vector<ProcessorId> schedule_single_origin(ProcessorId origin,
                                                std::int64_t ops) {
  DCNT_CHECK(origin >= 0 && ops >= 0);
  return std::vector<ProcessorId>(static_cast<std::size_t>(ops), origin);
}

std::vector<ProcessorId> make_initiators(const std::string& distribution,
                                         double zipf_s, std::int64_t n,
                                         std::int64_t ops, std::uint64_t seed) {
  // The salt is historical (this code moved here from the throughput
  // harness); it must not change, or thru-vs-net comparisons at one seed
  // stop driving identical initiator sequences.
  Rng rng(mix64(seed ^ 0x7b9d1e5u));
  if (distribution == "roundrobin") {
    std::vector<ProcessorId> order(static_cast<std::size_t>(ops));
    for (std::int64_t i = 0; i < ops; ++i) {
      order[static_cast<std::size_t>(i)] = static_cast<ProcessorId>(i % n);
    }
    return order;
  }
  if (distribution == "uniform") return schedule_uniform(n, ops, rng);
  if (distribution == "zipf") return schedule_zipf(n, ops, zipf_s, rng);
  DCNT_CHECK_MSG(false, "unknown initiator distribution");
  return {};
}

std::vector<KeyId> make_keys(const std::string& distribution, double zipf_s,
                             std::int64_t keys, std::int64_t ops,
                             std::uint64_t seed) {
  DCNT_CHECK(keys > 0 && ops >= 0);
  // Distinct salt from make_initiators: the key stream must be
  // independent of the initiator stream at the same seed.
  Rng rng(mix64(seed ^ 0x2c6f51e9u));
  if (distribution == "roundrobin") {
    std::vector<KeyId> order(static_cast<std::size_t>(ops));
    for (std::int64_t i = 0; i < ops; ++i) {
      order[static_cast<std::size_t>(i)] = static_cast<KeyId>(i % keys);
    }
    return order;
  }
  std::vector<ProcessorId> drawn;
  if (distribution == "uniform") {
    drawn = schedule_uniform(keys, ops, rng);
  } else if (distribution == "zipf") {
    drawn = schedule_zipf(keys, ops, zipf_s, rng);
  } else {
    DCNT_CHECK_MSG(false, "unknown key distribution");
  }
  std::vector<KeyId> order(drawn.size());
  for (std::size_t i = 0; i < drawn.size(); ++i) {
    order[i] = static_cast<KeyId>(drawn[i]);
  }
  return order;
}

}  // namespace dcnt
