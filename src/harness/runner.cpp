#include "harness/runner.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dcnt {

namespace {

RunResult finish(Simulator& sim, std::vector<Value> values, bool ok) {
  RunResult res;
  res.values = std::move(values);
  res.max_load = sim.metrics().max_load();
  res.bottleneck = sim.metrics().bottleneck();
  res.total_messages = sim.metrics().total_messages();
  // Every message is sent once and received once.
  res.mean_load = sim.num_processors() == 0
                      ? 0.0
                      : 2.0 * static_cast<double>(res.total_messages) /
                            static_cast<double>(sim.num_processors());
  res.values_ok = ok;
  return res;
}

}  // namespace

RunResult run_sequential(Simulator& sim, const std::vector<ProcessorId>& order,
                         const RunOptions& options) {
  std::vector<Value> values;
  values.reserve(order.size());
  const auto base = static_cast<Value>(sim.ops_started());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const OpId op = sim.begin_inc(order[i]);
    sim.run_until_quiescent(options.max_steps_per_op);
    const auto result = sim.result(op);
    DCNT_CHECK_MSG(result.has_value(), "inc did not complete at quiescence");
    DCNT_CHECK_MSG(*result == base + static_cast<Value>(i),
                   "sequential inc returned a wrong value");
    values.push_back(*result);
    if (options.check_each_op) {
      sim.counter().check_quiescent(sim.ops_completed());
    }
  }
  return finish(sim, std::move(values), true);
}

RunResult run_concurrent(Simulator& sim,
                         const std::vector<std::vector<ProcessorId>>& batches,
                         const RunOptions& options) {
  std::vector<OpId> ops;
  for (const auto& batch : batches) {
    for (const ProcessorId p : batch) ops.push_back(sim.begin_inc(p));
    sim.run_until_quiescent(options.max_steps_per_op *
                            static_cast<std::int64_t>(batch.size() + 1));
  }
  std::vector<Value> values;
  values.reserve(ops.size());
  for (const OpId op : ops) {
    const auto result = sim.result(op);
    DCNT_CHECK_MSG(result.has_value(), "inc did not complete at quiescence");
    values.push_back(*result);
  }
  // The values handed out must be exactly 0..m-1 (each exactly once).
  std::vector<Value> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  bool ok = true;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] != static_cast<Value>(i)) {
      ok = false;
      break;
    }
  }
  DCNT_CHECK_MSG(ok, "concurrent incs did not hand out distinct 0..m-1");
  return finish(sim, std::move(values), ok);
}

std::vector<std::vector<ProcessorId>> make_batches(
    const std::vector<ProcessorId>& order, std::size_t width) {
  DCNT_CHECK(width > 0);
  std::vector<std::vector<ProcessorId>> batches;
  for (std::size_t i = 0; i < order.size(); i += width) {
    batches.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(i),
                         order.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(i + width, order.size())));
  }
  return batches;
}

}  // namespace dcnt
