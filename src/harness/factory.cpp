#include "harness/factory.hpp"

#include <algorithm>

#include "baselines/central.hpp"
#include "baselines/combining_tree.hpp"
#include "baselines/counting_network.hpp"
#include "baselines/diffracting_tree.hpp"
#include "concurrent/elastic_tree.hpp"
#include "core/bound.hpp"
#include "core/tree_counter.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/quorum_counter.hpp"
#include "support/check.hpp"

namespace dcnt {

std::vector<CounterKind> all_counter_kinds() {
  return {CounterKind::kTree,            CounterKind::kStaticTree,
          CounterKind::kCentral,         CounterKind::kCombining,
          CounterKind::kCountingNetwork, CounterKind::kPeriodicNetwork,
          CounterKind::kDiffracting,     CounterKind::kQuorumMajority,
          CounterKind::kQuorumGrid};
}

std::string to_string(CounterKind kind) {
  switch (kind) {
    case CounterKind::kTree:
      return "tree";
    case CounterKind::kStaticTree:
      return "static-tree";
    case CounterKind::kCentral:
      return "central";
    case CounterKind::kCombining:
      return "combining";
    case CounterKind::kCountingNetwork:
      return "counting-net";
    case CounterKind::kPeriodicNetwork:
      return "periodic-net";
    case CounterKind::kDiffracting:
      return "diffracting";
    case CounterKind::kQuorumMajority:
      return "quorum-majority";
    case CounterKind::kQuorumGrid:
      return "quorum-grid";
    case CounterKind::kElastic:
      return "elastic";
  }
  return "?";
}

CounterKind counter_kind_from_string(const std::string& text) {
  // Not part of all_counter_kinds() (see factory.hpp), so match it
  // before the sweep.
  if (text == "elastic") return CounterKind::kElastic;
  for (const CounterKind kind : all_counter_kinds()) {
    if (to_string(kind) == text) return kind;
  }
  DCNT_CHECK_MSG(false, "unknown counter kind");
  return CounterKind::kTree;
}

bool supports_concurrency(CounterKind kind) {
  switch (kind) {
    case CounterKind::kQuorumMajority:
    case CounterKind::kQuorumGrid:
      return false;
    default:
      return true;
  }
}

bool expected_linearizable(CounterKind kind) {
  switch (kind) {
    case CounterKind::kCountingNetwork:
    case CounterKind::kPeriodicNetwork:
    case CounterKind::kDiffracting:
      return false;
    default:
      return true;
  }
}

namespace {

int width_for(std::int64_t n) {
  // Network width: largest power of two <= min(n, 64) — wide enough to
  // spread load, small enough that depth stays sane.
  int w = 2;
  while (2 * w <= n && 2 * w <= 64) w *= 2;
  return w;
}

}  // namespace

std::unique_ptr<CounterProtocol> make_counter(CounterKind kind,
                                              std::int64_t min_processors) {
  DCNT_CHECK(min_processors >= 2);
  switch (kind) {
    case CounterKind::kTree: {
      TreeCounterParams params;
      params.k = ceil_k_for(min_processors);
      return std::make_unique<TreeCounter>(params);
    }
    case CounterKind::kStaticTree:
      return make_static_tree_counter(ceil_k_for(min_processors));
    case CounterKind::kCentral:
      return std::make_unique<CentralCounter>(min_processors);
    case CounterKind::kCombining: {
      CombiningTreeParams params;
      params.n = min_processors;
      params.fanout = 2;
      return std::make_unique<CombiningTreeCounter>(params);
    }
    case CounterKind::kCountingNetwork: {
      CountingNetworkParams params;
      params.n = min_processors;
      params.width = width_for(min_processors);
      return std::make_unique<CountingNetworkCounter>(params);
    }
    case CounterKind::kPeriodicNetwork: {
      CountingNetworkParams params;
      params.n = min_processors;
      params.width = width_for(min_processors);
      params.kind = NetworkKind::kPeriodic;
      return std::make_unique<CountingNetworkCounter>(params);
    }
    case CounterKind::kDiffracting: {
      DiffractingTreeParams params;
      params.n = min_processors;
      params.width = width_for(min_processors);
      return std::make_unique<DiffractingTreeCounter>(params);
    }
    case CounterKind::kQuorumMajority:
      return std::make_unique<QuorumCounter>(
          std::make_shared<MajorityQuorum>(min_processors));
    case CounterKind::kQuorumGrid:
      return std::make_unique<QuorumCounter>(
          std::make_shared<GridQuorum>(min_processors));
    case CounterKind::kElastic: {
      concurrent::ElasticTreeParams params;
      params.initial_k = 2;
      params.min_k = 2;
      params.max_k = std::max(3, ceil_k_for(min_processors));
      return std::make_unique<concurrent::ElasticTreeCounter>(params);
    }
  }
  DCNT_CHECK_MSG(false, "unreachable");
  return nullptr;
}

}  // namespace dcnt
