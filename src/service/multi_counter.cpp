#include "service/multi_counter.hpp"

#include "support/check.hpp"

namespace dcnt::service {

namespace {

/// Context wrapper handed to inner-protocol handlers: rotates processor
/// ids back into fabric space, stamps msg.key on network sends, carries
/// the key as a leading argument word on local wake-ups (local messages
/// never cross the wire, so they have no keyed envelope), and counts
/// completions against the key's directory entry.
class KeyCtx final : public Context {
 public:
  KeyCtx(Context& base, KeyId key, ProcessorId offset, std::int64_t n,
         std::atomic<std::int64_t>& completed)
      : base_(base), key_(key), offset_(offset), n_(n), completed_(completed) {}

  void send(Message msg) override {
    msg.src = rotate(msg.src);
    msg.dst = rotate(msg.dst);
    msg.key = key_;
    base_.send(std::move(msg));
  }

  void send_local(ProcessorId p, std::int32_t tag,
                  std::vector<std::int64_t> args, SimTime delay) override {
    args.insert(args.begin(), static_cast<std::int64_t>(key_));
    base_.send_local(rotate(p), tag, std::move(args), delay);
  }

  void complete(OpId op, Value value) override {
    completed_.fetch_add(1, std::memory_order_relaxed);
    base_.complete(op, value);
  }

  SimTime now() const override { return base_.now(); }
  Rng& rng() override { return base_.rng(); }

 private:
  ProcessorId rotate(ProcessorId inner) const {
    return static_cast<ProcessorId>((inner + offset_) % n_);
  }

  Context& base_;
  KeyId key_;
  ProcessorId offset_;
  std::int64_t n_;
  std::atomic<std::int64_t>& completed_;
};

}  // namespace

MultiCounter::MultiCounter(std::unique_ptr<CounterProtocol> prototype,
                           MultiCounterOptions options)
    : prototype_(std::move(prototype)),
      n_(static_cast<std::int64_t>(prototype_->num_processors())),
      options_(options),
      directory_([this] { return prototype_->clone_counter(); }, n_,
                 prototype_->service_evictable(),
                 KeyDirectoryOptions{options.seed, options.capacity}) {
  DCNT_CHECK(n_ > 0);
}

std::size_t MultiCounter::num_processors() const {
  return static_cast<std::size_t>(n_);
}

void MultiCounter::start_inc(Context& ctx, ProcessorId origin, OpId op) {
  start_keyed(ctx, origin, op, 0);
}

void MultiCounter::start_op(Context& ctx, ProcessorId origin, OpId op,
                            const std::vector<std::int64_t>& args) {
  if (args.empty()) {
    start_keyed(ctx, origin, op, 0);
    return;
  }
  const KeyId key = static_cast<KeyId>(args.front());
  DCNT_CHECK_MSG(key >= 0, "counter keys are non-negative");
  start_keyed(ctx, origin, op, key);
}

void MultiCounter::start_keyed(Context& ctx, ProcessorId origin, OpId op,
                               KeyId key) {
  directory_.with_entry(key, [&](KeyDirectory::Entry& entry) {
    KeyCtx kctx(ctx, key, entry.offset, n_, entry.completed);
    entry.inner->start_inc(kctx, to_inner(origin, entry.offset), op);
  });
}

void MultiCounter::on_message(Context& ctx, const Message& msg) {
  KeyId key = kNoKey;
  Message inner = msg;
  if (msg.local) {
    // Local wake-ups carry the key as their first argument word.
    DCNT_CHECK_MSG(!msg.args.empty(), "keyless local message in the fabric");
    key = static_cast<KeyId>(msg.args.front());
    inner.args.erase(inner.args.begin());
  } else {
    DCNT_CHECK_MSG(msg.key != kNoKey, "keyless network message in the fabric");
    key = msg.key;
  }
  inner.key = kNoKey;
  directory_.with_entry(key, [&](KeyDirectory::Entry& entry) {
    inner.src = to_inner(msg.src, entry.offset);
    inner.dst = to_inner(msg.dst, entry.offset);
    KeyCtx kctx(ctx, key, entry.offset, n_, entry.completed);
    entry.inner->on_message(kctx, inner);
  });
}

std::unique_ptr<CounterProtocol> MultiCounter::clone_counter() const {
  auto copy = std::make_unique<MultiCounter>(prototype_->clone_counter(),
                                             options_);
  copy->directory_.copy_state_from(directory_);
  return copy;
}

std::string MultiCounter::name() const {
  return "keys(" + prototype_->name() + ")";
}

bool MultiCounter::shard_safe() const { return prototype_->shard_safe(); }

void MultiCounter::on_shard_start(std::size_t workers) {
  directory_.on_shard_start(workers);
}

void MultiCounter::check_quiescent(std::size_t ops_completed) const {
  DCNT_CHECK(directory_.total_completed() ==
             static_cast<std::int64_t>(ops_completed));
  directory_.for_each_live([](KeyId, const KeyDirectory::Entry& entry) {
    entry.inner->check_quiescent(static_cast<std::size_t>(
        entry.completed.load(std::memory_order_relaxed)));
  });
}

}  // namespace dcnt::service
