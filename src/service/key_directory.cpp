#include "service/key_directory.hpp"

#include <algorithm>
#include <limits>
#include <mutex>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt::service {

KeyDirectory::KeyDirectory(Factory factory, std::int64_t n, bool evictable,
                           KeyDirectoryOptions options)
    : factory_(std::move(factory)),
      n_(n),
      evictable_(evictable),
      options_(options) {
  DCNT_CHECK(n_ > 0);
  DCNT_CHECK_MSG(options_.capacity == 0 || evictable_,
                 "a bounded key directory requires a service_evictable() "
                 "protocol (its state must collapse to one durable value)");
}

ProcessorId KeyDirectory::offset_of(KeyId key) const {
  return static_cast<ProcessorId>(
      mix64(options_.seed ^ static_cast<std::uint64_t>(key)) %
      static_cast<std::uint64_t>(n_));
}

void KeyDirectory::ensure(KeyId key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (entries_.find(key) != entries_.end()) return;
  if (options_.capacity > 0) {
    while (entries_.size() >= options_.capacity) {
      // Retire the least-recently-touched instance. Safe at any moment
      // for evictable protocols: their cross-op state is exactly the
      // durable value, so in-flight messages for the evicted key simply
      // rehydrate it on delivery and proceed.
      auto victim = entries_.end();
      std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        const auto stamp = it->second->last_use.load(std::memory_order_relaxed);
        if (stamp < oldest || (stamp == oldest && (victim == entries_.end() ||
                                                   it->first < victim->first))) {
          oldest = stamp;
          victim = it;
        }
      }
      DCNT_CHECK(victim != entries_.end());
      durable_[victim->first] =
          Durable{victim->second->inner->service_value(),
                  victim->second->completed.load(std::memory_order_relaxed)};
      log_.push_back({LogRecord::Kind::kEvict, victim->first});
      ++evicts_;
      entries_.erase(victim);
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->inner = factory_();
  DCNT_CHECK(entry->inner != nullptr);
  if (workers_ > 0) entry->inner->on_shard_start(workers_);
  entry->offset = offset_of(key);
  ++misses_;
  const auto parked = durable_.find(key);
  if (parked != durable_.end()) {
    entry->inner->service_rehydrate(parked->second.value);
    entry->completed.store(parked->second.completed,
                           std::memory_order_relaxed);
    durable_.erase(parked);
    log_.push_back({LogRecord::Kind::kRehydrate, key});
    ++rehydrates_;
  }
  touch(*entry);
  entries_.emplace(key, std::move(entry));
}

void KeyDirectory::on_shard_start(std::size_t workers) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  workers_ = workers;
  for (auto& [key, entry] : entries_) entry->inner->on_shard_start(workers);
}

KeyDirectoryStats KeyDirectory::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  KeyDirectoryStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_;
  s.evicts = evicts_;
  s.rehydrates = rehydrates_;
  return s;
}

std::vector<KeyDirectory::LogRecord> KeyDirectory::log() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return log_;
}

std::size_t KeyDirectory::live_instances() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

std::int64_t KeyDirectory::total_completed() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::int64_t total = 0;
  for (const auto& [key, entry] : entries_) {
    total += entry->completed.load(std::memory_order_relaxed);
  }
  for (const auto& [key, parked] : durable_) total += parked.completed;
  return total;
}

void KeyDirectory::for_each_live(
    const std::function<void(KeyId, const Entry&)>& fn) const {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) fn(key, *entry);
}

std::vector<std::pair<KeyId, Value>> KeyDirectory::key_values() const {
  DCNT_CHECK_MSG(evictable_,
                 "key_values() reads service_value(); the configured "
                 "protocol does not expose a durable value");
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::vector<std::pair<KeyId, Value>> out;
  out.reserve(entries_.size() + durable_.size());
  for (const auto& [key, entry] : entries_) {
    out.emplace_back(key, entry->inner->service_value());
  }
  for (const auto& [key, parked] : durable_) {
    out.emplace_back(key, parked.value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void KeyDirectory::copy_state_from(const KeyDirectory& other) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::shared_lock<std::shared_mutex> other_lock(other.mu_);
  entries_.clear();
  for (const auto& [key, entry] : other.entries_) {
    auto copy = std::make_unique<Entry>();
    copy->inner = entry->inner->clone_counter();
    copy->offset = entry->offset;
    copy->completed.store(entry->completed.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
    copy->last_use.store(entry->last_use.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    entries_.emplace(key, std::move(copy));
  }
  durable_ = other.durable_;
  log_ = other.log_;
  workers_ = other.workers_;
  tick_.store(other.tick_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  hits_.store(other.hits_.load(std::memory_order_relaxed),
              std::memory_order_relaxed);
  misses_ = other.misses_;
  evicts_ = other.evicts_;
  rehydrates_ = other.rehydrates_;
}

}  // namespace dcnt::service
