// MultiCounter: the counter-as-a-service fabric.
//
// One MultiCounter multiplexes a large keyspace of independent counters
// over a single processor set [0, n). Every key owns a lazily created
// instance of the configured inner protocol (any CounterProtocol; the
// cluster additionally requires shard_safe()), rotated per key so
// structurally identical instances pin their hot processor on different
// fabric processors: fabric processor p plays inner processor
// (p - offset(key)) mod n, with offset(key) = mix64(seed ^ key) mod n.
//
// The paper's theorem survives intact *per key*: each instance is the
// unmodified protocol over n processors, so a hot key's bottleneck
// processor carries the same m_p it would as the only counter in the
// system (test_perf_smoke pins this exactly for central). What the
// fabric buys is aggregate scale — distinct keys' bottlenecks land on
// distinct processors, so total inc/s grows with shards while every
// individual key still pays the inherent Ω(k) price. That is ROADMAP
// item 3's claim made executable.
//
// Translation happens only at the boundaries: start_op / on_message map
// fabric ids to inner ids before invoking the instance, and the wrapped
// Context maps sends back and stamps msg.key, so the inner protocol
// never learns it is rotated. Inner argument words are opaque — they
// round-trip within the same instance (same offset), including across
// nodes, because offset(key) is a pure function of (seed, key).
//
// Ops address a key by their first argument word:
//   runtime.begin_op(origin, {key})  /  StartFrame.args = {key}.
// A bare begin_inc (no args) counts on key 0.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "service/key_directory.hpp"
#include "sim/protocol.hpp"
#include "sim/types.hpp"

namespace dcnt::service {

struct MultiCounterOptions {
  /// Routing seed — must match across all nodes of a cluster.
  std::uint64_t seed{1};
  /// LRU capacity for live instances; 0 = unbounded. Nonzero requires
  /// the inner protocol to be service_evictable().
  std::size_t capacity{0};
};

class MultiCounter final : public CounterProtocol {
 public:
  /// `prototype` is a pristine instance of the inner protocol; per-key
  /// instances are cloned from it on first touch.
  MultiCounter(std::unique_ptr<CounterProtocol> prototype,
               MultiCounterOptions options);

  std::size_t num_processors() const override;
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override;
  void start_op(Context& ctx, ProcessorId origin, OpId op,
                const std::vector<std::int64_t>& args) override;
  void on_message(Context& ctx, const Message& msg) override;
  std::unique_ptr<CounterProtocol> clone_counter() const override;
  std::string name() const override;
  /// The directory is internally synchronized (shared_mutex); sharding
  /// is safe exactly when the inner protocol's is.
  bool shard_safe() const override;
  void on_shard_start(std::size_t workers) override;
  /// Checks every live instance's own invariant against its completed
  /// count and that completions sum to ops_completed across live +
  /// evicted keys.
  void check_quiescent(std::size_t ops_completed) const override;

  const KeyDirectory& directory() const { return directory_; }
  KeyDirectoryStats lru_stats() const { return directory_.stats(); }
  std::vector<KeyDirectory::LogRecord> lru_log() const {
    return directory_.log();
  }
  /// Final per-key values (evictable inner only), sorted by key.
  std::vector<std::pair<KeyId, Value>> key_values() const {
    return directory_.key_values();
  }
  ProcessorId offset_of(KeyId key) const { return directory_.offset_of(key); }

  void start_keyed(Context& ctx, ProcessorId origin, OpId op, KeyId key);

 private:
  ProcessorId to_fabric(ProcessorId inner, ProcessorId offset) const {
    return static_cast<ProcessorId>((inner + offset) % n_);
  }
  ProcessorId to_inner(ProcessorId fabric, ProcessorId offset) const {
    return static_cast<ProcessorId>((fabric - offset + n_) % n_);
  }

  std::unique_ptr<CounterProtocol> prototype_;
  std::int64_t n_;
  MultiCounterOptions options_;
  KeyDirectory directory_;
};

}  // namespace dcnt::service
