// Directory of per-key counter instances for the multi-key service
// fabric (src/service/multi_counter.hpp).
//
// Each named counter key owns one lazily created instance of the
// configured protocol. Routing is deterministic in (seed, key): a key's
// instance is the *same* protocol over the same n processors, rotated
// by offset(key) = mix64(seed ^ key) mod n, so structurally identical
// counters land their hot processor (the central holder, the tree root)
// on different fabric processors — the per-key bottleneck stays
// (the paper's bound is per instance) while the aggregate spreads.
//
// The LRU cold tier: when `capacity` is set and the protocol is
// service_evictable() (its durable state collapses to one Value), the
// least-recently-touched instance is retired at creation pressure — its
// value parks in a durable map — and is rebuilt from that value on the
// next touch. Evictions and rehydrations are appended to an ordered log
// so tests can pin the exact sequence under deterministic schedules.
//
// Concurrency: one std::shared_mutex. Dispatch into a live instance
// holds the lock shared for the duration of the inner handler (the
// inner protocol's own shard-safety covers concurrent handlers at
// different processors); creation, eviction and rehydration hold it
// unique, so no handler can be inside an instance while it is being
// destroyed. The runtime never re-enters the protocol from completion
// callbacks, so holding the lock across a handler cannot recurse.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/protocol.hpp"
#include "sim/types.hpp"

namespace dcnt::service {

struct KeyDirectoryOptions {
  /// Routing seed: offset(key) = mix64(seed ^ key) mod n. Must be
  /// identical on every node of a cluster or keys route inconsistently.
  std::uint64_t seed{1};
  /// Max live instances; 0 = unbounded (no eviction). Requires the
  /// prototype to be service_evictable() when nonzero.
  std::size_t capacity{0};
};

/// LRU tier counters. hits/misses/evicts/rehydrates; a rehydrate is
/// also counted as a miss (the instance was not live).
struct KeyDirectoryStats {
  std::int64_t hits{0};
  std::int64_t misses{0};
  std::int64_t evicts{0};
  std::int64_t rehydrates{0};
};

class KeyDirectory {
 public:
  struct Entry {
    std::unique_ptr<CounterProtocol> inner;
    /// Rotation of this key's instance: inner processor q lives at
    /// fabric processor (q + offset) mod n.
    ProcessorId offset{0};
    /// Operations completed through this instance (survives eviction).
    std::atomic<std::int64_t> completed{0};
    /// LRU recency stamp.
    std::atomic<std::uint64_t> last_use{0};
  };

  struct LogRecord {
    enum class Kind : std::uint8_t { kEvict, kRehydrate };
    Kind kind;
    KeyId key;
    bool operator==(const LogRecord&) const = default;
  };

  using Factory = std::function<std::unique_ptr<CounterProtocol>()>;

  /// `factory` builds a pristine instance; `n` is its processor count;
  /// `evictable` mirrors the prototype's service_evictable().
  KeyDirectory(Factory factory, std::int64_t n, bool evictable,
               KeyDirectoryOptions options);

  ProcessorId offset_of(KeyId key) const;

  /// Run `fn(entry)` with the key's live instance under the shared
  /// lock, creating (and possibly evicting another key) first if it is
  /// cold. `touch` stamps LRU recency and counts a hit on the fast
  /// path.
  template <typename Fn>
  void with_entry(KeyId key, Fn&& fn) {
    for (;;) {
      {
        std::shared_lock<std::shared_mutex> lock(mu_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
          touch(*it->second);
          hits_.fetch_add(1, std::memory_order_relaxed);
          fn(*it->second);
          return;
        }
      }
      ensure(key);
      // Retry: another creation may have evicted the key between our
      // unique and shared acquisitions.
    }
  }

  /// Called by the fabric's on_shard_start: remembers the worker count
  /// so future instances get their own on_shard_start, and forwards to
  /// instances already live.
  void on_shard_start(std::size_t workers);

  KeyDirectoryStats stats() const;
  std::vector<LogRecord> log() const;
  std::size_t live_instances() const;
  /// Sum of completed ops across live entries and the durable tier.
  std::int64_t total_completed() const;
  /// Run `fn(key, entry)` for every live entry (unique lock held).
  void for_each_live(
      const std::function<void(KeyId, const Entry&)>& fn) const;
  /// Final per-key durable values, live entries included (evictable
  /// prototypes only), sorted by key.
  std::vector<std::pair<KeyId, Value>> key_values() const;

  /// Deep-copies the other directory's state (instances cloned).
  void copy_state_from(const KeyDirectory& other);

 private:
  /// Durable residue of an evicted instance.
  struct Durable {
    Value value{0};
    std::int64_t completed{0};
  };

  void ensure(KeyId key);
  void touch(Entry& e) {
    e.last_use.store(tick_.fetch_add(1, std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  }

  Factory factory_;
  std::int64_t n_;
  bool evictable_;
  KeyDirectoryOptions options_;
  std::size_t workers_{0};

  mutable std::shared_mutex mu_;
  std::unordered_map<KeyId, std::unique_ptr<Entry>> entries_;
  std::unordered_map<KeyId, Durable> durable_;
  std::vector<LogRecord> log_;
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::int64_t> hits_{0};
  std::int64_t misses_{0};
  std::int64_t evicts_{0};
  std::int64_t rehydrates_{0};
};

}  // namespace dcnt::service
