// Core-aware shard placement: pin runtime workers (and shm harness
// threads) to CPUs chosen by a topology-aware policy (DESIGN.md §16).
//
// The paper prices protocols in messages; silicon prices them in
// cache-line transfers, and WHERE two communicating shards run decides
// how much each transfer costs (shared L2 vs cross-socket). The
// placement layer makes that a knob instead of scheduler luck:
//
//   --placement none     leave scheduling to the kernel (default)
//   --placement compact  fill SMT siblings / cores in topology order —
//                        communicating shards share cache levels
//   --placement scatter  stride across physical cores (then packages)
//                        first — each shard gets private cache, at the
//                        price of longer coherence paths between them
//   --placement tree     one shard per physical core in core-id order,
//                        so shard i and shard i+1 land on adjacent
//                        cores. ThreadedRuntime::shard_of folds the
//                        TreeCounter's BFS processor layout round-robin
//                        onto shards, so tree-adjacent processors live
//                        on consecutive shards — this policy turns that
//                        adjacency into cache adjacency (parent/child
//                        hand-offs stay within neighbouring cores).
//   --pin                shorthand for compact
//
// Topology comes from sysfs (core_id / physical_package_id per online
// CPU); where sysfs or pthread_setaffinity_np is unavailable the plan
// reports supported=false and every pin is a graceful no-op — the run
// proceeds unpinned and says so, it never fails. Workers beyond the CPU
// count wrap around (oversubscribed hosts still get a deterministic
// layout).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dcnt {

enum class Placement {
  kNone,
  kCompact,
  kScatter,
  kTree,
};

std::string to_string(Placement p);
/// "none" / "compact" / "scatter" / "tree"; anything else aborts with
/// the accepted vocabulary.
Placement placement_from_string(const std::string& name);

/// One logical CPU as sysfs describes it. core_id/package_id fall back
/// to the cpu index when the topology files are unreadable (a layout
/// policy still produces a deterministic order, just an uninformed one).
struct CpuInfo {
  int cpu{0};
  int core_id{0};
  int package_id{0};
};

struct CpuTopology {
  std::vector<CpuInfo> cpus;  ///< online CPUs, ascending cpu id
  /// True when the online-CPU list came from sysfs (vs. the
  /// hardware_concurrency fallback).
  bool from_sysfs{false};

  /// Reads /sys/devices/system/cpu once per process. Never fails: an
  /// unreadable sysfs degrades to 0..hardware_concurrency-1 with
  /// identity core ids.
  static const CpuTopology& detect();
};

/// The resolved CPU assignment for `workers` threads under a policy.
struct PlacementPlan {
  Placement policy{Placement::kNone};
  /// cpus[i] is worker i's target CPU; empty when policy == kNone.
  /// Workers beyond the host's CPU count wrap around.
  std::vector<int> cpus;
  /// False when pinning cannot work here (no pthread affinity support);
  /// pin_thread_to_cpu then no-ops and callers report "unsupported"
  /// instead of a bogus pinned count.
  bool supported{false};

  /// Worker -> CPU, or -1 when the plan does not pin (kNone or
  /// unsupported).
  int cpu_for(std::size_t worker) const {
    if (!supported || cpus.empty()) return -1;
    return cpus[worker % cpus.size()];
  }
};

/// Orders the host's CPUs per the policy and returns the per-worker
/// assignment. Pure function of (topology, policy, workers) — tests pin
/// its output on synthetic topologies.
PlacementPlan plan_placement(Placement policy, std::size_t workers);

/// plan_placement over an explicit topology (testable on synthetic
/// multi-socket layouts regardless of the host).
PlacementPlan plan_placement(const CpuTopology& topo, Placement policy,
                             std::size_t workers);

/// Pins the calling thread to `cpu` via pthread_setaffinity_np. Returns
/// whether the affinity call succeeded; false (never an abort) on
/// non-Linux hosts, cpu < 0, or a kernel refusal — the graceful-no-op
/// contract.
bool pin_thread_to_cpu(int cpu);

}  // namespace dcnt
