// MPSC mailbox: the only channel into a runtime worker.
//
// Each worker of the threaded runtime (threaded_runtime.hpp) owns one
// Mailbox. Any thread — another worker's handler doing a cross-shard
// Context::send, or a driver thread starting an operation — may push;
// only the owning worker drains. The mutex hand-off is what turns
// message delivery into a happens-before edge: everything the sender
// wrote before push()/push_all() is visible to the receiver after
// drain(), which is the memory-level backing of the protocol
// state-slicing invariant (see Protocol::shard_safe).
//
// Deliberately a mutex + vector, not a lock-free queue: the runtime
// delivers in batches at both ends — senders accumulate a whole drain
// cycle's worth of events per destination and hand them over with one
// push_all() (one lock, at most one wake), and the owner swaps out the
// entire backlog with one drain(). The lock is therefore taken O(1)
// times per batch of deliveries and never held across a handler.
//
// Idle policy (the other half of the hot path): a worker that runs dry
// does NOT park on the condvar immediately. Parking is a futex syscall
// and — worse — forces the next sender to pay a second syscall to wake
// it, which under cross-shard ping-pong turns every message hand-off
// into two context switches. Instead wait() spins on an atomic
// pending-count: a short pause-loop first (useful only when another
// core can be making progress concurrently, so it is skipped on
// single-core hosts), then a bounded stretch of sched_yields (the right
// primitive when workers outnumber cores: it donates the core to
// whichever runnable worker has the mail), and only then the condvar.
// Senders consult owner_waiting_ under the mutex and notify only a
// parked owner, so the notify-per-push storm is gone entirely.
//
// The queue is a template (MailboxT<T>) because the socket node reuses
// the same batched MPSC hand-off in the other direction: runtime shards
// stage outbound wire messages and completions into per-event-loop
// queues, flushed with one push_all per batch. `Mailbox` remains the
// RuntimeEvent instantiation the runtime workers own.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "sim/types.hpp"

namespace dcnt {

/// One unit of work for a worker: a delivered message, an operation
/// start, or a timer registration.
struct RuntimeEvent {
  enum class Kind : std::uint8_t {
    kMessage,  ///< deliver msg to msg.dst (network or self-addressed)
    kStart,    ///< run start_inc/start_op at msg.dst for msg.op
    kTimer,    ///< register a local timer at msg.dst, `delay` ticks out
    /// Fire every armed timer on the receiving shard immediately (the
    /// distributed time jump: only the cluster controller can certify
    /// global idleness, so the node injects this on its command).
    kFireTimers,
  };
  Kind kind{Kind::kMessage};
  Message msg;
  /// kTimer only: delay relative to the owning worker's logical clock at
  /// registration (the sender cannot know the receiver's clock).
  SimTime delay{0};
};

/// Bounded spin budget for Mailbox::wait, resolved once per process.
/// Pause-spinning can only observe progress another core makes, so the
/// pause phase collapses to zero on single-core hosts; the yield phase
/// stays, because donating the core to a runnable producer is exactly
/// how an oversubscribed box makes progress.
struct MailboxIdlePolicy {
  int pause_iters;
  int yield_iters;
  static const MailboxIdlePolicy& instance();
};

template <typename T>
class MailboxT {
 public:
  /// Multi-producer enqueue of a single item. Prefer push_all for
  /// anything that can batch — this is one lock per item.
  void push(T ev) {
    bool wake_owner;
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(ev));
      pending_.store(items_.size(), std::memory_order_release);
      wake_owner = owner_waiting_;
    }
    if (wake_owner) cv_.notify_one();
  }

  /// Multi-producer batched enqueue: moves every item out of `evs`
  /// under one lock acquisition and with at most one wake, then clears
  /// `evs` retaining its capacity so callers can reuse the buffer
  /// allocation-free across cycles. No-op on an empty batch.
  void push_all(std::vector<T>& evs) {
    if (evs.empty()) return;
    bool wake_owner;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) {
        // The common hand-off: the owner drained everything last cycle,
        // so the whole batch can be swapped in wholesale. The sender
        // inherits the drained vector's capacity for its next batch.
        std::swap(items_, evs);
      } else {
        items_.insert(items_.end(), std::make_move_iterator(evs.begin()),
                      std::make_move_iterator(evs.end()));
      }
      pending_.store(items_.size(), std::memory_order_release);
      wake_owner = owner_waiting_;
    }
    evs.clear();
    if (wake_owner) cv_.notify_one();
  }

  /// Single-consumer batch drain: swaps the backlog into `out` (cleared
  /// first). Returns false if there was nothing.
  bool drain(std::vector<T>& out) {
    out.clear();
    if (pending_.load(std::memory_order_acquire) == 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    std::swap(items_, out);
    pending_.store(0, std::memory_order_relaxed);
    return true;
  }

  /// Queued items, readable from any thread. A zero is trustworthy the
  /// way the quiescence machinery needs it to be: producers store the
  /// new size release-ordered after enqueueing, so a reader that
  /// observes 0 after the producer's other effects sees a genuinely
  /// drained queue.
  std::size_t pending() const {
    return pending_.load(std::memory_order_acquire);
  }

  /// Blocks until mail is present or `stop` becomes true, spinning per
  /// MailboxIdlePolicy before parking on the condvar. Returns true if
  /// mail is present (stop may also be set; the caller checks).
  bool wait(const std::atomic<bool>& stop) {
    const MailboxIdlePolicy& idle = MailboxIdlePolicy::instance();
    for (int i = 0; i < idle.pause_iters + idle.yield_iters; ++i) {
      if (pending_.load(std::memory_order_acquire) > 0) return true;
      if (stop.load(std::memory_order_acquire)) return false;
      if (i < idle.pause_iters) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      } else {
        std::this_thread::yield();
      }
    }
    std::unique_lock<std::mutex> lock(mu_);
    owner_waiting_ = true;
    cv_.wait(lock, [&] {
      return !items_.empty() || stop.load(std::memory_order_acquire);
    });
    owner_waiting_ = false;
    return !items_.empty();
  }

  /// Deadline flavor for workers holding armed wall-clock timers: parks
  /// immediately (no spin — the caller knows the next deadline is a real
  /// duration away) until mail, stop, or the deadline. Returns true if
  /// mail is present.
  bool wait_until(const std::atomic<bool>& stop,
                  std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> lock(mu_);
    owner_waiting_ = true;
    cv_.wait_until(lock, deadline, [&] {
      return !items_.empty() || stop.load(std::memory_order_acquire);
    });
    owner_waiting_ = false;
    return !items_.empty();
  }

  /// Wakes a wait()-blocked owner so it can observe a stop flag. Takes
  /// the mutex so the wake cannot slip between the owner's predicate
  /// check and its sleep.
  void wake() {
    { std::lock_guard<std::mutex> lock(mu_); }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> items_;
  /// items_.size(), maintained under mu_ but readable lock-free by the
  /// owner's spin loop and fast-path drain check.
  ///
  /// alignas: the owner's wait() pause-loop reads pending_ back to back
  /// while producers are mutating mu_/items_ right next to it — on a
  /// shared line every producer lock/push would invalidate the owner's
  /// spin read (the mailbox-head false sharing this isolates). Padded
  /// onto its own line with owner_waiting_, whose producer-side reads
  /// happen under mu_ anyway.
  alignas(64) std::atomic<std::size_t> pending_{0};
  /// True only while the owner is parked (or committing to park) inside
  /// wait(); guarded by mu_. Senders notify only when it is set.
  bool owner_waiting_{false};
};

/// The runtime workers' instantiation — the name the rest of the
/// codebase has always used.
using Mailbox = MailboxT<RuntimeEvent>;

inline const MailboxIdlePolicy& MailboxIdlePolicy::instance() {
  static const MailboxIdlePolicy policy = [] {
    const unsigned cores = std::thread::hardware_concurrency();
    MailboxIdlePolicy p;
    // ~a microsecond of pause-spin, but only where a second core can be
    // filling the mailbox meanwhile; a few yields catch work that is
    // one scheduler hand-off away. Both budgets are deliberately small:
    // an oversubscribed box (workers > cores) wants idle workers OFF
    // the run queue — a dry worker that keeps yielding is rescheduled
    // over and over and steals timeslices from the one worker that has
    // the mail. Parking is cheap here precisely because senders batch:
    // with push_all the wake is paid once per flushed batch, not per
    // message, and only when the owner is actually parked.
    p.pause_iters = cores > 1 ? 256 : 0;
    p.yield_iters = 64;
    return p;
  }();
  return policy;
}

}  // namespace dcnt
