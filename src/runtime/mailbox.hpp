// MPSC mailbox: the only channel into a runtime worker.
//
// Each worker of the threaded runtime (threaded_runtime.hpp) owns one
// Mailbox. Any thread — another worker's handler doing a cross-shard
// Context::send, or a driver thread starting an operation — may push;
// only the owning worker drains. The mutex hand-off is what turns
// message delivery into a happens-before edge: everything the sender
// wrote before push() is visible to the receiver after drain(), which
// is the memory-level backing of the protocol state-slicing invariant
// (see Protocol::shard_safe).
//
// Deliberately a mutex + vector, not a lock-free queue: the runtime
// drains in batches (one lock per batch, swap out the whole backlog),
// so the lock is taken O(1) times per batch of deliveries and never
// held across a handler. Profile before reaching for anything fancier.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/message.hpp"
#include "sim/types.hpp"

namespace dcnt {

/// One unit of work for a worker: a delivered message, an operation
/// start, or a timer registration.
struct RuntimeEvent {
  enum class Kind : std::uint8_t {
    kMessage,  ///< deliver msg to msg.dst (network or self-addressed)
    kStart,    ///< run start_inc/start_op at msg.dst for msg.op
    kTimer,    ///< register a local timer at msg.dst, `delay` ticks out
  };
  Kind kind{Kind::kMessage};
  Message msg;
  /// kTimer only: delay relative to the owning worker's logical clock at
  /// registration (the sender cannot know the receiver's clock).
  SimTime delay{0};
};

class Mailbox {
 public:
  /// Multi-producer enqueue.
  void push(RuntimeEvent ev) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(ev));
    }
    cv_.notify_one();
  }

  /// Single-consumer batch drain: swaps the backlog into `out` (cleared
  /// first). Returns false if there was nothing.
  bool drain(std::vector<RuntimeEvent>& out) {
    out.clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    std::swap(items_, out);
    return true;
  }

  /// Blocks until mail is present or `stop` becomes true. Returns true
  /// if mail is present (stop may also be set; the caller checks).
  bool wait(const std::atomic<bool>& stop) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] {
      return !items_.empty() || stop.load(std::memory_order_acquire);
    });
    return !items_.empty();
  }

  /// Wakes a wait()-blocked owner so it can observe a stop flag.
  void wake() { cv_.notify_all(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<RuntimeEvent> items_;
};

}  // namespace dcnt
