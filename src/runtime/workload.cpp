#include "runtime/workload.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

#include "support/check.hpp"

namespace dcnt {

using traffic::TailRecorder;

WorkloadResult run_workload(ThreadedRuntime& rt,
                            const std::vector<ProcessorId>& initiators,
                            const WorkloadOptions& options) {
  const std::size_t ops = initiators.size();
  DCNT_CHECK(ops > 0);
  DCNT_CHECK_MSG(rt.ops_started() == 0, "run_workload needs a fresh runtime");
  const bool keyed = !options.keys.empty();
  DCNT_CHECK_MSG(!keyed || options.keys.size() == ops,
                 "keys must pair 1:1 with initiators");
  std::vector<KeyId> key_of_op;
  if (keyed) key_of_op.assign(options.warmup + ops, kNoKey);
  // Issues schedule entry i in [0, ops) — plain inc or keyed op — and
  // returns its OpId, recording the op -> key mapping for keyed runs.
  const auto begin_entry = [&](std::size_t i) {
    if (!keyed) return rt.begin_inc(initiators[i]);
    const KeyId key = options.keys[i];
    const OpId op = rt.begin_op(initiators[i], {key});
    key_of_op[static_cast<std::size_t>(op)] = key;
    return op;
  };

  if (options.warmup > 0) {
    // Unrecorded closed-loop phase cycling through the initiators:
    // wakes the workers, grows every reusable buffer to steady-state
    // size, and faults in the op table. Quiesce, then zero the message
    // metrics so the measured phase starts from a clean ledger on a hot
    // runtime.
    const std::size_t warmup = options.warmup;
    std::atomic<std::size_t> wcursor{0};
    std::atomic<std::size_t> wdone{0};
    std::mutex wmu;
    std::condition_variable wcv;
    const auto wissue = [&] {
      const std::size_t i = wcursor.fetch_add(1, std::memory_order_acq_rel);
      if (i >= warmup) return;
      begin_entry(i % ops);
    };
    rt.set_completion([&](OpId /*op*/, Value /*value*/) {
      wissue();
      if (wdone.fetch_add(1, std::memory_order_acq_rel) + 1 == warmup) {
        std::lock_guard<std::mutex> lock(wmu);
        wcv.notify_all();
      }
    });
    // Warmup uses the measured phase's full window so steady-state
    // buffer sizes match what the run will actually need.
    const std::size_t wwindow =
        (options.concurrency == 0 ? std::size_t{1} : options.concurrency) *
        (options.inflight == 0 ? std::size_t{1} : options.inflight);
    const std::size_t clients = std::min(warmup, wwindow);
    for (std::size_t c = 0; c < clients; ++c) wissue();
    {
      std::unique_lock<std::mutex> lock(wmu);
      wcv.wait(lock, [&] {
        return wdone.load(std::memory_order_acquire) == warmup;
      });
    }
    rt.wait_quiescent();
    rt.set_completion(nullptr);
    rt.reset_metrics();
  }

  // The open-loop shape: an explicit shape wins, the legacy open_rate
  // knob means "constant at that rate".
  traffic::RateShape shape = options.shape;
  if (shape.rate <= 0.0 && options.open_rate > 0.0) {
    shape.kind = traffic::RateShape::Kind::kConstant;
    shape.rate = options.open_rate;
  }
  const bool open_loop = shape.rate > 0.0;
  const std::int64_t budget_ns =
      options.duration_s > 0.0
          ? static_cast<std::int64_t>(options.duration_s * 1e9)
          : std::numeric_limits<std::int64_t>::max();
  concurrent::HistoryBuffer* const history = options.history;
  DCNT_CHECK_MSG(history == nullptr ||
                     history->capacity() >= options.warmup + ops,
                 "history buffer smaller than the op-id space");

  // Measured ops occupy ids warmup..warmup+issued-1; recorder slots for
  // the warmup range simply stay empty.
  TailRecorder recorder(options.warmup + ops, options.slo_ns,
                        options.exact_cap);
  // Burst runs report SLO attainment split by the scheduled arrival's
  // duty phase.
  const bool split_phases =
      open_loop && shape.kind == traffic::RateShape::Kind::kBurst;
  if (split_phases) recorder.enable_phases();
  // Coordination atomics deliberately use the default (seq_cst) order:
  // the finish condition below leans on the single total order across
  // `no_more`, `issued` and `done`.
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> issued{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> no_more{open_loop};  // closed loop: set by decliners
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::int64_t> last_completion_ns{0};

  const auto epoch = std::chrono::steady_clock::now();
  const std::int64_t epoch_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          epoch.time_since_epoch())
          .count();
  const std::int64_t deadline_ns = budget_ns == std::numeric_limits<std::int64_t>::max()
                                       ? budget_ns
                                       : epoch_ns + budget_ns;

  // Closed loop: issues the next initiator, from the driver thread or
  // from inside a completion callback; declines (and latches no_more)
  // once the sequence is exhausted or the deadline passed. The stamp is
  // the send time, which for a closed-loop client IS its scheduled time
  // (it cannot want an op before the previous one completed).
  const auto issue_next = [&] {
    if (TailRecorder::now_ns() >= deadline_ns) {
      no_more.store(true);
      return;
    }
    const std::size_t i = cursor.fetch_add(1);
    if (i >= ops) {
      no_more.store(true);
      return;
    }
    issued.fetch_add(1);
    const std::int64_t t0 = TailRecorder::now_ns();
    const OpId op = begin_entry(i);
    recorder.on_issue(op, t0);
    if (history) history->on_invoke(op, t0);
  };

  // Finish when nothing more will be issued and every issued op is
  // done. Reissues happen before done++ in the callback, so done ==
  // issued implies no reissue is mid-flight: any callback that has not
  // yet bumped `done` has its op still counted in issued - done.
  rt.set_completion([&](OpId op, Value value) {
    const std::int64_t t = TailRecorder::now_ns();
    recorder.on_complete(op, t);
    if (history) history->on_response(op, t, value);
    // Closed loop: this client immediately issues its next operation.
    if (!open_loop) issue_next();
    const std::size_t d = done.fetch_add(1) + 1;
    if (no_more.load() && d == issued.load()) {
      last_completion_ns.store(t);
      std::lock_guard<std::mutex> lock(mu);
      cv.notify_all();
    }
  });

  if (open_loop) {
    // Single driver walking the deterministic arrival timeline. Every
    // arrival inside the budget is issued — late if the driver fell
    // behind (sleep_until returns immediately for past deadlines), with
    // the lateness charged to the op via its scheduled-time stamp.
    traffic::ArrivalTimeline timeline(shape);
    for (std::size_t n = 0; n < ops; ++n) {
      const std::int64_t offset = timeline.next_ns();
      if (offset >= budget_ns) break;
      std::this_thread::sleep_until(epoch + std::chrono::nanoseconds(offset));
      issued.fetch_add(1);
      // The latency stamp is the scheduled arrival (coordinated-
      // omission-free); the history stamp is the actual send time —
      // linearizability needs the real interval, and a backdated invoke
      // would tighten it unsoundly.
      const std::int64_t t0 = TailRecorder::now_ns();
      const OpId op = begin_entry(n);
      if (split_phases) {
        recorder.on_issue(op, epoch_ns + offset,
                          shape.high_at(static_cast<double>(offset) / 1e9));
      } else {
        recorder.on_issue(op, epoch_ns + offset);
      }
      if (history) history->on_invoke(op, t0);
    }
  } else {
    // The closed-loop window: concurrency clients, each holding
    // `inflight` ops in the air. Seeding window-many ops and reissuing
    // exactly one per completion keeps the window at its seed size for
    // the whole run (until the schedule tail drains it).
    const std::size_t per_client =
        options.inflight == 0 ? std::size_t{1} : options.inflight;
    const std::size_t window =
        (options.concurrency == 0 ? std::size_t{1} : options.concurrency) *
        per_client;
    const std::size_t clients = std::min(ops, window);
    for (std::size_t c = 0; c < clients; ++c) issue_next();
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return no_more.load() && done.load() == issued.load(); });
  }
  // Let stragglers (stale combining-window timers and the like) drain
  // so the caller can read metrics and protocol state.
  rt.wait_quiescent();
  rt.set_completion(nullptr);

  WorkloadResult result;
  result.ops = issued.load();
  const std::int64_t t_end = last_completion_ns.load();
  if (t_end > 0) {
    result.wall_seconds = static_cast<double>(t_end - epoch_ns) / 1e9;
  }
  if (result.wall_seconds > 0.0) {
    result.ops_per_sec =
        static_cast<double>(result.ops) / result.wall_seconds;
  }
  result.traffic = recorder.stats();
  result.key_of_op = std::move(key_of_op);
  return result;
}

}  // namespace dcnt
