#include "runtime/workload.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "support/check.hpp"

namespace dcnt {

LatencyRecorder::LatencyRecorder(std::size_t max_ops)
    : issue_ns_(max_ops), latency_ns_(max_ops, -1) {}

std::int64_t LatencyRecorder::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void LatencyRecorder::on_issue(OpId op, std::int64_t t_ns) {
  DCNT_CHECK(op >= 0 && static_cast<std::size_t>(op) < issue_ns_.size());
  DCNT_CHECK(t_ns != 0);  // 0 is the "not yet stored" sentinel
  issue_ns_[static_cast<std::size_t>(op)].store(t_ns,
                                                std::memory_order_release);
}

void LatencyRecorder::on_complete(OpId op, std::int64_t t_ns) {
  DCNT_CHECK(op >= 0 && static_cast<std::size_t>(op) < issue_ns_.size());
  // The issuer stamps before begin_inc and stores right after it
  // returns; if the op completed in between, spin out the tiny window.
  std::int64_t issued;
  while ((issued = issue_ns_[static_cast<std::size_t>(op)].load(
              std::memory_order_acquire)) == 0) {
    std::this_thread::yield();
  }
  latency_ns_[static_cast<std::size_t>(op)] = t_ns - issued;
}

Summary LatencyRecorder::summary_ns() const {
  Summary s;
  for (const auto l : latency_ns_) {
    if (l >= 0) s.add(l);
  }
  return s;
}

WorkloadResult run_workload(ThreadedRuntime& rt,
                            const std::vector<ProcessorId>& initiators,
                            const WorkloadOptions& options) {
  const std::size_t ops = initiators.size();
  DCNT_CHECK(ops > 0);
  DCNT_CHECK_MSG(rt.ops_started() == 0, "run_workload needs a fresh runtime");
  const bool keyed = !options.keys.empty();
  DCNT_CHECK_MSG(!keyed || options.keys.size() == ops,
                 "keys must pair 1:1 with initiators");
  std::vector<KeyId> key_of_op;
  if (keyed) key_of_op.assign(options.warmup + ops, kNoKey);
  // Issues schedule entry i in [0, ops) — plain inc or keyed op — and
  // returns its OpId, recording the op -> key mapping for keyed runs.
  const auto begin_entry = [&](std::size_t i) {
    if (!keyed) return rt.begin_inc(initiators[i]);
    const KeyId key = options.keys[i];
    const OpId op = rt.begin_op(initiators[i], {key});
    key_of_op[static_cast<std::size_t>(op)] = key;
    return op;
  };

  if (options.warmup > 0) {
    // Unrecorded closed-loop phase cycling through the initiators:
    // wakes the workers, grows every reusable buffer to steady-state
    // size, and faults in the op table. Quiesce, then zero the message
    // metrics so the measured phase starts from a clean ledger on a hot
    // runtime.
    const std::size_t warmup = options.warmup;
    std::atomic<std::size_t> wcursor{0};
    std::atomic<std::size_t> wdone{0};
    std::mutex wmu;
    std::condition_variable wcv;
    const auto wissue = [&] {
      const std::size_t i = wcursor.fetch_add(1, std::memory_order_acq_rel);
      if (i >= warmup) return;
      begin_entry(i % ops);
    };
    rt.set_completion([&](OpId /*op*/, Value /*value*/) {
      wissue();
      if (wdone.fetch_add(1, std::memory_order_acq_rel) + 1 == warmup) {
        std::lock_guard<std::mutex> lock(wmu);
        wcv.notify_all();
      }
    });
    const std::size_t clients = std::min(
        warmup,
        options.concurrency == 0 ? std::size_t{1} : options.concurrency);
    for (std::size_t c = 0; c < clients; ++c) wissue();
    {
      std::unique_lock<std::mutex> lock(wmu);
      wcv.wait(lock, [&] {
        return wdone.load(std::memory_order_acquire) == warmup;
      });
    }
    rt.wait_quiescent();
    rt.set_completion(nullptr);
    rt.reset_metrics();
  }

  // Measured ops occupy ids warmup..warmup+ops-1; recorder slots for
  // the warmup range simply stay empty.
  LatencyRecorder recorder(options.warmup + ops);
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> done{0};
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::int64_t> last_completion_ns{0};

  // Issues the next initiator, from the driver thread or from inside a
  // completion callback; no-op once the sequence is exhausted.
  const auto issue_next = [&] {
    const std::size_t i = cursor.fetch_add(1, std::memory_order_acq_rel);
    if (i >= ops) return;
    const std::int64_t t0 = LatencyRecorder::now_ns();
    const OpId op = begin_entry(i);
    recorder.on_issue(op, t0);
  };

  const bool open_loop = options.open_rate > 0.0;
  rt.set_completion([&](OpId op, Value /*value*/) {
    const std::int64_t t = LatencyRecorder::now_ns();
    recorder.on_complete(op, t);
    // Closed loop: this client immediately issues its next operation.
    if (!open_loop) issue_next();
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == ops) {
      last_completion_ns.store(t, std::memory_order_release);
      std::lock_guard<std::mutex> lock(mu);
      cv.notify_all();
    }
  });

  const std::int64_t t_start = LatencyRecorder::now_ns();
  if (open_loop) {
    const double period_ns = 1e9 / options.open_rate;
    const auto epoch = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
      std::this_thread::sleep_until(
          epoch + std::chrono::nanoseconds(static_cast<std::int64_t>(
                      period_ns * static_cast<double>(i))));
      issue_next();
    }
  } else {
    const std::size_t clients = std::min(
        ops, options.concurrency == 0 ? std::size_t{1} : options.concurrency);
    for (std::size_t c = 0; c < clients; ++c) issue_next();
  }

  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] {
      return done.load(std::memory_order_acquire) == ops;
    });
  }
  // Let stragglers (stale combining-window timers and the like) drain
  // so the caller can read metrics and protocol state.
  rt.wait_quiescent();
  rt.set_completion(nullptr);

  WorkloadResult result;
  result.ops = ops;
  const std::int64_t t_end = last_completion_ns.load(std::memory_order_acquire);
  result.wall_seconds = static_cast<double>(t_end - t_start) / 1e9;
  if (result.wall_seconds > 0.0) {
    result.ops_per_sec =
        static_cast<double>(ops) / result.wall_seconds;
  }
  result.latency_ns = recorder.summary_ns();
  result.key_of_op = std::move(key_of_op);
  return result;
}

}  // namespace dcnt
