// Sharded multi-threaded execution of unmodified Protocol objects.
//
// The simulator measures the paper's quantity (per-processor message
// load) but cannot measure the production consequence — a bottleneck
// processor caps wall-clock inc/s. This runtime executes the *same*
// Protocol implementations on real threads: the n processors are
// sharded round-robin across W workers, each worker owns an MPSC
// mailbox (mailbox.hpp) and delivers events only to its own
// processors, and a cross-shard Context::send enqueues into the
// destination's mailbox. Handlers for processors of different shards
// run concurrently on one protocol object; Protocol::shard_safe()
// documents why that is sound (state slicing + message-causality +
// mailbox mutexes = happens-before for every conflicting access).
//
// What carries over from the simulator, exactly:
//   - message accounting: a non-local message with src != dst counts
//     one send at src and one receive at dst; self-sends and local
//     timers are free. Per-worker Metrics are merged at quiescence, so
//     total_messages/max_load agree with the simulator whenever the
//     protocol's message count is schedule-independent (asserted by
//     tests/test_runtime_equivalence.cpp for sequential schedules).
//   - semantics hooks: start_inc/start_op runs at the origin's worker;
//     complete() fires at whichever worker runs the completing handler.
// What deliberately does not:
//   - time. now() is the worker's logical clock (one tick per event it
//     processes); send_local timers fire when that clock reaches their
//     deadline, or immediately once the worker runs dry (mirroring the
//     simulator's idle time-jump). Wall-clock latency is measured by
//     the workload driver (workload.hpp), not by now().
//   - topology routing, fault injection and FIFO-channel floors: the
//     runtime is the fault-free fully-connected model on real cores.
//   - global determinism. One worker processes its own mailbox in FIFO
//     order, so W=1 with a single-threaded driver is deterministic;
//     W>1 interleaves shards nondeterministically — results are then
//     verified as a permutation, the concurrent-mode contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/mailbox.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "sim/types.hpp"

namespace dcnt {

struct RuntimeConfig {
  /// Worker threads. 0 = auto: the process-wide --threads/DCNT_THREADS
  /// knob via resolve_thread_count(). May exceed the processor count;
  /// surplus workers own empty shards and sleep.
  std::size_t workers{0};
  /// Seeds the per-worker rng() streams (fork(worker) of one base Rng).
  std::uint64_t seed{1};
  /// Capacity of the operation table (results and completion flags are
  /// pre-sized so completion never allocates or locks). Drivers that
  /// know their op count pass it exactly.
  std::size_t max_ops{1 << 16};
};

class ThreadedRuntime {
 public:
  /// Called at the completing worker, after the op's value is recorded
  /// and before the runtime considers the event finished — so a
  /// closed-loop driver may start the next operation from inside it.
  using CompletionFn = std::function<void(OpId op, Value value)>;

  /// Spawns the workers immediately; they sleep until events arrive.
  /// Requires protocol->shard_safe() when resolving to more than one
  /// worker. Calls protocol->on_shard_start(W) before any handler.
  explicit ThreadedRuntime(std::unique_ptr<CounterProtocol> protocol,
                           RuntimeConfig config = {});
  ~ThreadedRuntime();

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  std::size_t workers() const { return shards_.size(); }
  std::size_t num_processors() const { return num_processors_; }
  const CounterProtocol& protocol() const { return *protocol_; }

  /// Not thread-safe against in-flight operations: install before the
  /// first begin_*.
  void set_completion(CompletionFn fn) { completion_ = std::move(fn); }

  /// Starts an operation at `origin`'s worker. Callable from any thread,
  /// including from inside a completion callback — the start always runs
  /// on the owning worker, never inline on the caller.
  OpId begin_inc(ProcessorId origin) { return begin_op(origin, {}); }
  OpId begin_op(ProcessorId origin, std::vector<std::int64_t> args);

  /// Blocks until no event is queued, timed, or being handled. Only
  /// meaningful once the caller has stopped issuing operations from
  /// outside (completion-driven issuance is fine: the in-flight count
  /// cannot touch zero while a completion callback is still running).
  void wait_quiescent();

  std::size_t ops_started() const {
    return next_op_.load(std::memory_order_acquire);
  }
  std::size_t ops_completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  /// The op's value, or nullopt while it is still running.
  std::optional<Value> result(OpId op) const;

  /// Per-worker load counters merged into one simulator-compatible
  /// Metrics. Requires quiescence.
  Metrics merged_metrics() const;

  /// Stops and joins the workers; abandons whatever is still queued.
  /// Idempotent; the destructor calls it.
  void stop();

 private:
  /// One worker's world. Everything here except the mailbox is touched
  /// only by the owning thread.
  struct Shard;
  /// The Context handed to handlers: one per worker, carrying the
  /// worker's shard (clock, rng, metrics, timer heap) and current op.
  class WorkerCtx;
  friend class WorkerCtx;

  std::size_t shard_of(ProcessorId p) const {
    return static_cast<std::size_t>(p) % shards_.size();
  }
  void worker_main(std::size_t worker);
  void process_event(Shard& shard, WorkerCtx& ctx, RuntimeEvent& ev);
  /// Decrements the in-flight count; the release/acquire chain through
  /// this one atomic is what makes quiescence a full memory barrier
  /// (merged_metrics and protocol state reads after wait_quiescent()
  /// see every handler's writes).
  void finish_event();

  std::unique_ptr<CounterProtocol> protocol_;
  RuntimeConfig config_;
  std::size_t num_processors_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  CompletionFn completion_;

  /// Events queued + timers pending + handlers running. Every mutation
  /// is acq_rel so the RMW chain transfers visibility (see
  /// finish_event).
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<bool> stop_{false};

  std::atomic<std::size_t> next_op_{0};
  std::atomic<std::size_t> completed_{0};
  /// Slot per op, pre-sized to max_ops: distinct ops never contend.
  std::vector<Value> results_;
  std::vector<std::atomic<std::uint8_t>> done_;

  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
};

}  // namespace dcnt
