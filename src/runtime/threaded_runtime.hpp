// Sharded multi-threaded execution of unmodified Protocol objects.
//
// The simulator measures the paper's quantity (per-processor message
// load) but cannot measure the production consequence — a bottleneck
// processor caps wall-clock inc/s. This runtime executes the *same*
// Protocol implementations on real threads: the n processors are
// sharded round-robin across the *active* shards — min(W, cores) by
// default, because extra shards beyond the core count add context
// switches without adding parallelism (RuntimeConfig::active_shards
// pins the count for tests) — each worker owns an MPSC mailbox
// (mailbox.hpp) and delivers events only to its own processors, and a
// cross-shard Context::send enqueues into the destination's mailbox. Handlers for processors of different shards
// run concurrently on one protocol object; Protocol::shard_safe()
// documents why that is sound (state slicing + message-causality +
// mailbox mutexes = happens-before for every conflicting access).
//
// Delivery is batched end to end (the combining-tree idea applied to
// the substrate itself): cross-shard events accumulate in per-worker
// outboxes — one vector per destination shard — and are flushed with a
// single Mailbox::push_all per destination once per drain cycle (or
// every flush_batch events, whichever comes first), so the mailbox
// lock and any wake are paid per batch, not per message. The in-flight
// counter is batched the same way: sends and finished events tally in
// plain per-worker integers and hit the shared atomic once per cycle,
// adds strictly before subtracts so the count never dips below truth.
// All hot-path buffers (drain target, ready queue, outboxes) are
// reused across cycles; after warm-up a drain cycle allocates nothing
// beyond what the protocol's own messages carry.
//
// What carries over from the simulator, exactly:
//   - message accounting: a non-local message with src != dst counts
//     one send at src and one receive at dst; self-sends and local
//     timers are free. Per-worker Metrics are merged at quiescence, so
//     total_messages/max_load agree with the simulator whenever the
//     protocol's message count is schedule-independent (asserted by
//     tests/test_runtime_equivalence.cpp for sequential schedules).
//     Batching changes none of this: it coalesces how events travel,
//     never what is delivered (also pinned by those tests across
//     flush_batch settings).
//   - semantics hooks: start_inc/start_op runs at the origin's worker;
//     complete() fires at whichever worker runs the completing handler.
// What deliberately does not:
//   - time. now() is the worker's logical clock (one tick per event it
//     processes); send_local timers fire when that clock reaches their
//     deadline, or immediately once the worker runs dry (mirroring the
//     simulator's idle time-jump). Wall-clock latency is measured by
//     the workload driver (workload.hpp), not by now().
//   - topology routing, fault injection and FIFO-channel floors: the
//     runtime is the fault-free fully-connected model on real cores.
//   - global determinism. One worker processes its own mailbox in FIFO
//     order, so W=1 with a single-threaded driver is deterministic;
//     W>1 interleaves shards nondeterministically — results are then
//     verified as a permutation, the concurrent-mode contract.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/mailbox.hpp"
#include "runtime/placement.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "sim/types.hpp"

namespace dcnt {

struct RuntimeConfig {
  /// Worker threads. 0 = auto: the process-wide --threads/DCNT_THREADS
  /// knob via resolve_thread_count(). May exceed the processor count;
  /// surplus workers own empty shards and sleep.
  std::size_t workers{0};
  /// Seeds the per-worker rng() streams (fork(worker) of one base Rng).
  std::uint64_t seed{1};
  /// Capacity of the operation table (results and completion flags are
  /// pre-sized so completion never allocates or locks). Drivers that
  /// know their op count pass it exactly.
  std::size_t max_ops{1 << 16};
  /// Outbox flush bound: cross-shard events are handed off when the
  /// worker runs dry or after this many processed events, whichever is
  /// first. 1 degenerates to per-event delivery (useful to prove the
  /// coalescing is delivery-transparent — see
  /// test_runtime_equivalence.cpp); larger values amortize the mailbox
  /// lock harder at a bounded cost in cross-shard latency.
  std::size_t flush_batch{64};
  /// Shards that actually own processors. 0 = adaptive: min(workers,
  /// hardware cores) — a host cannot execute more shards than cores in
  /// parallel, so spreading processors across extra shards buys no
  /// concurrency and pays a context switch per cross-shard hop (on a
  /// single-core box an 8-worker run degenerates to scheduler thrash).
  /// Workers beyond the active count own empty shards and park.
  /// Explicit values are clamped to [1, workers]; tests that must
  /// exercise true cross-shard delivery regardless of host size pin
  /// this to `workers`.
  std::size_t active_shards{0};

  // --- cluster hosting (socket runtime, src/net/node.cpp) ---
  /// Number of node processes sharing the processor space. 1 = the
  /// whole protocol runs in this process (the historical behavior;
  /// nothing below applies). N>1: this runtime owns only processors
  /// with p % cluster_nodes == cluster_node_id; a handler's send() to a
  /// non-owned processor is diverted to the remote sink instead of a
  /// local mailbox.
  std::size_t cluster_nodes{1};
  std::size_t cluster_node_id{0};
  /// Timers keyed to the wall clock instead of the per-shard logical
  /// clock. In-process, a dry worker can safely jump its clock to the
  /// next deadline — all work lives in its mailbox. A cluster node
  /// cannot: a locally-dry shard may still be owed wire messages, so
  /// firing a retransmit timer early would forge loss. With wall_timers
  /// a send_local delay becomes delay*tick_us of real time, armed
  /// timers do NOT hold the in-flight count (reported separately so the
  /// controller can distinguish "working" from "armed"), and the
  /// distributed idle-jump arrives as an injected kFireTimers event
  /// when the controller has certified global idleness.
  bool wall_timers{false};
  /// Wall microseconds per logical delay tick (wall_timers only).
  std::int64_t tick_us{200};
  /// Host the single shard on the CALLER's thread instead of spawning a
  /// worker: no threads are created, and the owner drives the shard by
  /// calling drive() whenever events may be pending. All other
  /// machinery — mailbox injection, remote sink, completion callbacks,
  /// the in-flight ledger, wall timers, kFireTimers markers — behaves
  /// identically, so the cluster node can flip between topologies
  /// without touching protocol or barrier code. Requires workers == 1.
  /// This is the degenerate topology for hosts where an extra thread
  /// per node buys no parallelism, only scheduler latency on every
  /// loop<->worker hand-off (a single-core box most of all).
  bool inline_drive{false};
  /// Core placement for the worker threads (runtime/placement.hpp):
  /// kNone leaves scheduling to the kernel; the other policies pin each
  /// worker to a topology-chosen CPU at thread start, with kTree
  /// co-locating consecutive shards (which shard_of makes tree-adjacent
  /// for the BFS-laid-out TreeCounter) on neighbouring physical cores.
  /// Gracefully a no-op where affinity is unsupported — see
  /// pinned_workers()/placement_supported() for what actually applied.
  Placement placement{Placement::kNone};
};

class ThreadedRuntime {
 public:
  /// Called at the completing worker, after the op's value is recorded
  /// and before the runtime considers the event finished — so a
  /// closed-loop driver may start the next operation from inside it.
  using CompletionFn = std::function<void(OpId op, Value value)>;
  /// Receives a batch of messages addressed to processors this node
  /// does not own (cluster mode). Called on the worker thread at flush
  /// points, strictly before the worker's in-flight subtraction — so a
  /// quiescence observer that later sees in_flight()==0 is guaranteed
  /// the sink has already been handed every message the handlers
  /// produced. The sink must move the messages out (the vector is
  /// reused); it typically stages them into per-event-loop queues.
  using RemoteSinkFn =
      std::function<void(std::size_t worker, std::vector<Message>& out)>;

  /// Spawns the workers immediately; they sleep until events arrive.
  /// Requires protocol->shard_safe() when resolving to more than one
  /// worker. Calls protocol->on_shard_start(W) before any handler.
  explicit ThreadedRuntime(std::unique_ptr<CounterProtocol> protocol,
                           RuntimeConfig config = {});
  ~ThreadedRuntime();

  ThreadedRuntime(const ThreadedRuntime&) = delete;
  ThreadedRuntime& operator=(const ThreadedRuntime&) = delete;

  std::size_t workers() const { return shards_.size(); }
  /// Shards that own processors (<= workers); see
  /// RuntimeConfig::active_shards.
  std::size_t active_shards() const { return active_shards_; }
  std::size_t num_processors() const { return num_processors_; }
  const CounterProtocol& protocol() const { return *protocol_; }

  /// Not thread-safe against in-flight operations: install before the
  /// first begin_*, or between phases with the runtime quiescent.
  void set_completion(CompletionFn fn) { completion_ = std::move(fn); }
  /// Cluster mode only; same installation rule as set_completion.
  void set_remote_sink(RemoteSinkFn fn) { remote_sink_ = std::move(fn); }

  /// Does this runtime host processor p? Always true when
  /// cluster_nodes == 1.
  bool owns(ProcessorId p) const {
    return static_cast<std::size_t>(p) % config_.cluster_nodes ==
           config_.cluster_node_id;
  }

  /// Cluster-mode event injection: hands a batch of externally-produced
  /// events (wire arrivals, controller-assigned op starts, kFireTimers
  /// markers) to one shard's mailbox. The in-flight add happens before
  /// the push, so a quiescence observer can never see zero while the
  /// batch is invisible. Clears `evs` retaining capacity. Callable from
  /// any non-worker thread.
  void inject(std::size_t shard, std::vector<RuntimeEvent>& evs);

  /// Cluster mode: the controller assigns global OpIds, so ops hosted
  /// here arrive with their id already chosen. Raises the internal
  /// next-op watermark so complete()'s bounds check accepts them.
  void register_external_op(OpId op);

  /// Monotone progress counter: every handled event (message delivery,
  /// op start, timer firing) across all shards. kFireTimers markers
  /// are bookkeeping, not progress, and do not count. Exact once the
  /// reader has observed in_flight() == 0 (the acq_rel chain through
  /// the in-flight counter orders every worker's bump before that
  /// observation); merely advisory while work is moving.
  std::int64_t events_processed() const;
  /// Armed wall-clock timers across all shards (wall_timers mode).
  /// These do NOT hold the in-flight count.
  std::int64_t timers_armed() const;
  std::int64_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }

  /// Workers whose affinity call succeeded (== workers() when a
  /// supported placement applied cleanly; 0 under kNone or where
  /// pinning is unsupported). Exact once the workers have started;
  /// tests read it after the first quiescence.
  std::size_t pinned_workers() const {
    return pinned_workers_.load(std::memory_order_acquire);
  }
  /// Whether the configured placement could pin at all on this host
  /// (true for kNone vacuously — nothing was requested).
  bool placement_supported() const { return placement_supported_; }

  /// Starts an operation at `origin`'s worker. Callable from any thread,
  /// including from inside a completion callback — the start always runs
  /// on the owning worker, never inline on the caller (worker threads
  /// route it through their own outbox, so completion-driven issuance
  /// batches like any other cross-shard traffic).
  OpId begin_inc(ProcessorId origin) { return begin_op(origin, {}); }
  OpId begin_op(ProcessorId origin, std::vector<std::int64_t> args);

  /// Blocks until no event is queued, timed, or being handled. Only
  /// meaningful once the caller has stopped issuing operations from
  /// outside (completion-driven issuance is fine: the in-flight count
  /// cannot touch zero while a completion callback is still running).
  void wait_quiescent();

  std::size_t ops_started() const {
    return next_op_.load(std::memory_order_acquire);
  }
  std::size_t ops_completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  /// The op's value, or nullopt while it is still running.
  std::optional<Value> result(OpId op) const;

  /// Per-worker load counters merged into one simulator-compatible
  /// Metrics. Requires quiescence.
  Metrics merged_metrics() const;

  /// merged_metrics without the quiescence assertion, for the cluster
  /// node's validated-snapshot barrier: the caller reads while it
  /// BELIEVES the runtime is idle, then re-verifies (in_flight()==0 and
  /// events_processed() unchanged) and discards the read on failure. A
  /// read that survives the recheck provably overlapped no handler, so
  /// it equals what merged_metrics would have returned.
  Metrics merged_metrics_unchecked() const;

  /// Zeroes every shard's load counters. Requires quiescence (which is
  /// a full memory barrier in both directions: the workers' prior
  /// writes are visible here, and this write reaches each worker
  /// through the mailbox hand-off of its next event). Used by warmup
  /// drivers so cold-start traffic never pollutes measured metrics.
  void reset_metrics();

  /// Stops and joins the workers; abandons whatever is still queued.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Inline-drive mode only: runs the shard until dry on the calling
  /// thread — drains the mailbox, processes ready events and due
  /// timers, flushes cross-shard/remote/in-flight accounting. The owner
  /// thread must call this whenever in_flight() > 0 (and at wall-timer
  /// deadlines; see inline_timer_wait_us). Returns whether any event
  /// was processed.
  bool drive();
  /// Inline-drive mode only, owner thread only: microseconds until the
  /// earliest armed wall timer would fire, 0 if already due, -1 if no
  /// timer is armed. The driving loop clamps its kernel wait to this —
  /// the inline analogue of the threaded worker's mailbox.wait_until.
  std::int64_t inline_timer_wait_us() const;

  /// Which shard owns processor p. In cluster mode the owned processor
  /// ids form the arithmetic sequence {node_id, node_id+N, ...}; the
  /// division folds that sequence onto 0,1,2,... before the round-robin
  /// split, so owned processors spread evenly across shards (a plain
  /// p % active_shards would alias the node stride with the shard
  /// stride and can pile every owned processor onto shard 0). Public
  /// because the cluster node's event-loop threads stage wire-arrived
  /// events per destination shard before inject().
  std::size_t shard_of(ProcessorId p) const {
    return (static_cast<std::size_t>(p) / config_.cluster_nodes) %
           active_shards_;
  }

 private:
  /// One worker's world. Everything here except the mailbox is touched
  /// only by the owning thread.
  struct Shard;
  /// The Context handed to handlers: one per worker, carrying the
  /// worker's shard (clock, rng, metrics, timer heap) and current op.
  class WorkerCtx;
  friend class WorkerCtx;
  std::int64_t wall_now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }
  void worker_main(std::size_t worker);
  /// One non-blocking pass over a shard: drain the mailbox, run ready
  /// events and due timers until dry, flush. The shared body of the
  /// threaded worker loop and the inline drive() entry point. Returns
  /// whether any event was processed.
  bool run_shard_pass(Shard& shard, WorkerCtx& ctx);
  void process_event(Shard& shard, WorkerCtx& ctx, RuntimeEvent& ev);
  /// Pops and runs the earliest armed timer. Wall mode: bumps in-flight
  /// BEFORE decrementing the armed gauge (fire-visibility ordering the
  /// cluster stats barrier relies on).
  void fire_timer(Shard& shard, WorkerCtx& ctx);
  /// Applies a shard's deferred in-flight accounting: pending sends are
  /// added *before* outboxes flush (so counted events are never
  /// invisible) and finished events are subtracted last (so the count
  /// can only touch zero when everything really is done). The acq_rel
  /// RMW chain through this one atomic is what makes quiescence a full
  /// memory barrier (merged_metrics and protocol state reads after
  /// wait_quiescent() see every handler's writes).
  void flush_shard(Shard& shard);

  std::unique_ptr<CounterProtocol> protocol_;
  RuntimeConfig config_;
  std::size_t num_processors_;
  std::size_t active_shards_{1};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  /// Persistent handler context for inline drive (threaded workers keep
  /// theirs on their own stacks).
  std::unique_ptr<WorkerCtx> inline_ctx_;
  CompletionFn completion_;
  RemoteSinkFn remote_sink_;
  /// Wall-timer epoch: timer deadlines are microseconds since this.
  std::chrono::steady_clock::time_point t0_;
  /// Worker -> CPU assignment (config_.placement); workers pin
  /// themselves on startup and count successes into pinned_workers_.
  PlacementPlan placement_plan_;
  bool placement_supported_{true};
  std::atomic<std::size_t> pinned_workers_{0};

  /// Events queued + timers pending + handlers running. Updated in
  /// batches per drain cycle (see flush_shard); single-event updates
  /// only happen for pushes from non-worker threads.
  ///
  /// alignas: in_flight_ is RMWed by every worker once per flush while
  /// stop_ is polled by every worker once per loop pass — sharing a
  /// line would make the ledger's write traffic invalidate every
  /// worker's stop poll. next_op_ (issuing threads) and completed_
  /// (completing workers) have disjoint writer sets, so they get their
  /// own lines too rather than bouncing each other.
  alignas(64) std::atomic<std::int64_t> in_flight_{0};
  alignas(64) std::atomic<bool> stop_{false};

  alignas(64) std::atomic<std::size_t> next_op_{0};
  alignas(64) std::atomic<std::size_t> completed_{0};
  /// Slot per op, pre-sized to max_ops: distinct ops never contend.
  std::vector<Value> results_;
  std::vector<std::atomic<std::uint8_t>> done_;

  std::mutex quiesce_mu_;
  std::condition_variable quiesce_cv_;
};

}  // namespace dcnt
