#include "runtime/threaded_runtime.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace dcnt {

namespace {

/// Timer heap entry: min-heap by absolute deadline on the owner's
/// logical clock, FIFO among equal deadlines (matches the simulator's
/// (deliver_time, seq) ordering).
struct TimerEntry {
  SimTime due{0};
  std::uint64_t seq{0};
  Message msg;
};

struct TimerLater {
  bool operator()(const TimerEntry& a, const TimerEntry& b) const {
    if (a.due != b.due) return a.due > b.due;
    return a.seq > b.seq;
  }
};

/// Which runtime worker (if any) is running on this thread. Lets
/// begin_op distinguish a driver thread (immediate mailbox push) from a
/// completion callback on a worker (batch through the worker's outbox).
thread_local ThreadedRuntime* tl_worker_runtime = nullptr;
thread_local std::size_t tl_worker_index = 0;

}  // namespace

struct ThreadedRuntime::Shard {
  Shard(std::size_t n, std::size_t num_shards, Rng shard_rng)
      : outbox(num_shards), rng(shard_rng), metrics(n) {}

  Mailbox mailbox;

  // Owner-thread-only state below.
  std::vector<RuntimeEvent> batch;  ///< drain target, reused
  std::vector<RuntimeEvent> ready;  ///< runnable events, appended mid-run
  std::size_t ready_head{0};
  /// Cross-shard events staged per destination, flushed by flush_shard
  /// with one push_all per dirty destination. The vectors are reused
  /// (push_all clears without releasing capacity), so steady-state
  /// cross-shard traffic allocates nothing here.
  std::vector<std::vector<RuntimeEvent>> outbox;
  std::vector<std::size_t> outbox_dirty;  ///< dsts with staged events
  /// Deferred in_flight_ deltas: events created (sends, timers, starts
  /// issued from this worker) and events finished since the last flush.
  /// flush_shard applies adds before subtracts.
  std::int64_t pending_sends{0};
  std::int64_t finished{0};
  std::size_t events_since_flush{0};
  std::vector<TimerEntry> timers;  ///< min-heap (TimerLater)
  std::uint64_t timer_seq{0};
  /// Logical clock: advances by one per processed event, and jumps to
  /// the earliest timer deadline when the worker runs dry (the
  /// simulator's idle time-jump, per worker).
  SimTime clock{0};
  Rng rng;
  Metrics metrics;

  void stage(std::size_t dst, RuntimeEvent ev) {
    auto& out = outbox[dst];
    if (out.empty()) outbox_dirty.push_back(dst);
    out.push_back(std::move(ev));
  }
};

/// Per-worker Context. Mirrors the Simulator's handler guard rails:
/// send/send_local/complete only inside a handler, bounds checks, op
/// inheritance from the event being handled.
class ThreadedRuntime::WorkerCtx final : public Context {
 public:
  WorkerCtx(ThreadedRuntime* rt, Shard* shard) : rt_(rt), shard_(shard) {}

  void send(Message msg) override {
    DCNT_CHECK_MSG(in_handler_, "send() outside a handler");
    DCNT_CHECK(msg.src >= 0 &&
               static_cast<std::size_t>(msg.src) < rt_->num_processors());
    DCNT_CHECK(msg.dst >= 0 &&
               static_cast<std::size_t>(msg.dst) < rt_->num_processors());
    DCNT_CHECK(!msg.local);
    if (msg.op == kNoOp) msg.op = current_op_;
    if (msg.src != msg.dst) {
      shard_->metrics.on_send(msg.src, msg.op, msg.size_words());
    }
    RuntimeEvent ev;
    ev.kind = RuntimeEvent::Kind::kMessage;
    const std::size_t dst_shard = rt_->shard_of(msg.dst);
    ev.msg = std::move(msg);
    ++shard_->pending_sends;
    if (&*rt_->shards_[dst_shard] == shard_) {
      // Same shard: skip the mailbox, the owner is this thread.
      shard_->ready.push_back(std::move(ev));
    } else {
      shard_->stage(dst_shard, std::move(ev));
    }
  }

  void send_local(ProcessorId p, std::int32_t tag,
                  std::vector<std::int64_t> args, SimTime delay) override {
    DCNT_CHECK_MSG(in_handler_, "send_local() outside a handler");
    DCNT_CHECK(p >= 0 && static_cast<std::size_t>(p) < rt_->num_processors());
    DCNT_CHECK(delay >= 1);
    Message msg;
    msg.src = p;
    msg.dst = p;
    msg.tag = tag;
    msg.op = current_op_;
    msg.args = std::move(args);
    msg.local = true;
    ++shard_->pending_sends;
    const std::size_t dst_shard = rt_->shard_of(p);
    if (&*rt_->shards_[dst_shard] == shard_) {
      TimerEntry t;
      t.due = shard_->clock + delay;
      t.seq = shard_->timer_seq++;
      t.msg = std::move(msg);
      shard_->timers.push_back(std::move(t));
      std::push_heap(shard_->timers.begin(), shard_->timers.end(),
                     TimerLater{});
    } else {
      // Protocols only arm timers at the handling processor today, but
      // the Context contract allows any p: ship the relative delay and
      // let the owner anchor it to its own clock.
      RuntimeEvent ev;
      ev.kind = RuntimeEvent::Kind::kTimer;
      ev.msg = std::move(msg);
      ev.delay = delay;
      shard_->stage(dst_shard, std::move(ev));
    }
  }

  void complete(OpId op, Value value) override {
    DCNT_CHECK_MSG(in_handler_, "complete() outside a handler");
    DCNT_CHECK(op >= 0 &&
               static_cast<std::size_t>(op) <
                   rt_->next_op_.load(std::memory_order_acquire));
    auto& done = rt_->done_[static_cast<std::size_t>(op)];
    DCNT_CHECK_MSG(done.load(std::memory_order_relaxed) == 0,
                   "operation completed twice");
    rt_->results_[static_cast<std::size_t>(op)] = value;
    done.store(1, std::memory_order_release);
    rt_->completed_.fetch_add(1, std::memory_order_acq_rel);
    if (rt_->completion_) rt_->completion_(op, value);
  }

  SimTime now() const override { return shard_->clock; }
  Rng& rng() override { return shard_->rng; }

  void run(const RuntimeEvent& ev) {
    in_handler_ = true;
    current_op_ = ev.msg.op;
    if (ev.kind == RuntimeEvent::Kind::kStart) {
      if (ev.msg.args.empty()) {
        rt_->protocol_->start_inc(*this, ev.msg.dst, ev.msg.op);
      } else {
        rt_->protocol_->start_op(*this, ev.msg.dst, ev.msg.op, ev.msg.args);
      }
    } else {
      rt_->protocol_->on_message(*this, ev.msg);
    }
    in_handler_ = false;
    current_op_ = kNoOp;
  }

 private:
  ThreadedRuntime* rt_;
  Shard* shard_;
  OpId current_op_{kNoOp};
  bool in_handler_{false};
};

ThreadedRuntime::ThreadedRuntime(std::unique_ptr<CounterProtocol> protocol,
                                 RuntimeConfig config)
    : protocol_(std::move(protocol)),
      config_(config),
      num_processors_(0),
      results_(config.max_ops, 0),
      done_(config.max_ops) {
  DCNT_CHECK(protocol_ != nullptr);
  num_processors_ = protocol_->num_processors();
  DCNT_CHECK(num_processors_ > 0);
  DCNT_CHECK(config_.flush_batch >= 1);
  const std::size_t w = resolve_thread_count(config_.workers);
  DCNT_CHECK_MSG(w == 1 || protocol_->shard_safe(),
                 "protocol declines sharded execution (shard_safe)");
  if (config_.active_shards != 0) {
    active_shards_ = std::min(config_.active_shards, w);
  } else {
    const std::size_t cores = std::thread::hardware_concurrency();
    active_shards_ = std::min(w, cores == 0 ? w : cores);
  }
  if (active_shards_ == 0) active_shards_ = 1;
  protocol_->on_shard_start(w);
  Rng base(config_.seed);
  shards_.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(num_processors_, w, base.fork(i + 1)));
  }
  threads_.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadedRuntime::~ThreadedRuntime() { stop(); }

OpId ThreadedRuntime::begin_op(ProcessorId origin,
                               std::vector<std::int64_t> args) {
  DCNT_CHECK(origin >= 0 &&
             static_cast<std::size_t>(origin) < num_processors_);
  DCNT_CHECK(!stop_.load(std::memory_order_acquire));
  const std::size_t op = next_op_.fetch_add(1, std::memory_order_acq_rel);
  DCNT_CHECK_MSG(op < config_.max_ops,
                 "operation table full (raise RuntimeConfig::max_ops)");
  RuntimeEvent ev;
  ev.kind = RuntimeEvent::Kind::kStart;
  ev.msg.src = origin;
  ev.msg.dst = origin;
  ev.msg.op = static_cast<OpId>(op);
  ev.msg.args = std::move(args);
  const std::size_t dst_shard = shard_of(origin);
  if (tl_worker_runtime == this) {
    // On a worker thread (completion-driven issuance): defer the
    // in-flight add and batch the start like any cross-shard event. The
    // deferral is safe because this worker's current event has not been
    // subtracted yet, so in_flight_ stays positive until flush_shard
    // applies adds-then-subtracts.
    Shard& me = *shards_[tl_worker_index];
    ++me.pending_sends;
    if (dst_shard == tl_worker_index) {
      me.ready.push_back(std::move(ev));
    } else {
      me.stage(dst_shard, std::move(ev));
    }
  } else {
    // The increment precedes the push (sequenced-before), so in_flight_
    // can never read zero while this event is invisible.
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    shards_[dst_shard]->mailbox.push(std::move(ev));
  }
  return static_cast<OpId>(op);
}

void ThreadedRuntime::wait_quiescent() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

std::optional<Value> ThreadedRuntime::result(OpId op) const {
  DCNT_CHECK(op >= 0 && static_cast<std::size_t>(op) <
                            next_op_.load(std::memory_order_acquire));
  if (done_[static_cast<std::size_t>(op)].load(std::memory_order_acquire) ==
      0) {
    return std::nullopt;
  }
  return results_[static_cast<std::size_t>(op)];
}

Metrics ThreadedRuntime::merged_metrics() const {
  DCNT_CHECK_MSG(in_flight_.load(std::memory_order_acquire) == 0,
                 "merged_metrics requires quiescence");
  Metrics out(num_processors_);
  for (const auto& shard : shards_) out.merge_from(shard->metrics);
  return out;
}

void ThreadedRuntime::reset_metrics() {
  DCNT_CHECK_MSG(in_flight_.load(std::memory_order_acquire) == 0,
                 "reset_metrics requires quiescence");
  for (auto& shard : shards_) shard->metrics.reset();
}

void ThreadedRuntime::stop() {
  if (!stop_.exchange(true, std::memory_order_acq_rel)) {
    for (auto& shard : shards_) shard->mailbox.wake();
    for (auto& t : threads_) t.join();
    threads_.clear();
  }
}

void ThreadedRuntime::flush_shard(Shard& shard) {
  if (shard.pending_sends != 0) {
    in_flight_.fetch_add(shard.pending_sends, std::memory_order_acq_rel);
    shard.pending_sends = 0;
  }
  for (std::size_t dst : shard.outbox_dirty) {
    shards_[dst]->mailbox.push_all(shard.outbox[dst]);
  }
  shard.outbox_dirty.clear();
  shard.events_since_flush = 0;
  if (shard.finished != 0) {
    const std::int64_t n = shard.finished;
    shard.finished = 0;
    if (in_flight_.fetch_sub(n, std::memory_order_acq_rel) == n) {
      // Notify under the mutex so a waiter cannot check the predicate
      // and sleep between our decrement and our notify.
      std::lock_guard<std::mutex> lock(quiesce_mu_);
      quiesce_cv_.notify_all();
    }
  }
}

void ThreadedRuntime::process_event(Shard& shard, WorkerCtx& ctx,
                                    RuntimeEvent& ev) {
  if (ev.kind == RuntimeEvent::Kind::kMessage && !ev.msg.local &&
      ev.msg.src != ev.msg.dst) {
    shard.metrics.on_receive(ev.msg.dst, ev.msg.size_words());
  }
  ctx.run(ev);
  ++shard.clock;
  ++shard.finished;
  ++shard.events_since_flush;
}

void ThreadedRuntime::worker_main(std::size_t worker) {
  tl_worker_runtime = this;
  tl_worker_index = worker;
  Shard& shard = *shards_[worker];
  WorkerCtx ctx(this, &shard);
  while (!stop_.load(std::memory_order_acquire)) {
    // 1. Pull whatever has accumulated in the mailbox. Timer
    //    registrations are anchored to this clock now; the rest joins
    //    the ready queue in arrival order.
    if (shard.mailbox.drain(shard.batch)) {
      for (auto& ev : shard.batch) {
        if (ev.kind == RuntimeEvent::Kind::kTimer) {
          TimerEntry t;
          t.due = shard.clock + ev.delay;
          t.seq = shard.timer_seq++;
          t.msg = std::move(ev.msg);
          shard.timers.push_back(std::move(t));
          std::push_heap(shard.timers.begin(), shard.timers.end(),
                         TimerLater{});
        } else {
          shard.ready.push_back(std::move(ev));
        }
      }
    }
    // 2. Run until dry: ready events first (handlers may append more),
    //    then any timer whose deadline the advancing clock has passed.
    //    Cross-shard output is flushed every flush_batch events so
    //    peers are fed even while this worker stays busy.
    bool ran = false;
    for (;;) {
      if (shard.ready_head < shard.ready.size()) {
        // Move out: the handler may push_back and reallocate `ready`.
        RuntimeEvent ev = std::move(shard.ready[shard.ready_head++]);
        process_event(shard, ctx, ev);
        ran = true;
        if (shard.events_since_flush >= config_.flush_batch) {
          flush_shard(shard);
        }
        continue;
      }
      shard.ready.clear();
      shard.ready_head = 0;
      if (!shard.timers.empty() && shard.timers.front().due <= shard.clock) {
        std::pop_heap(shard.timers.begin(), shard.timers.end(), TimerLater{});
        RuntimeEvent ev;
        ev.kind = RuntimeEvent::Kind::kMessage;
        ev.msg = std::move(shard.timers.back().msg);
        shard.timers.pop_back();
        process_event(shard, ctx, ev);
        ran = true;
        if (shard.events_since_flush >= config_.flush_batch) {
          flush_shard(shard);
        }
        continue;
      }
      break;
    }
    // Dry point: hand off staged cross-shard events and settle the
    // in-flight ledger before idling (a dirty outbox here would starve
    // peers and could deadlock the quiescence wait).
    flush_shard(shard);
    if (ran) continue;  // recheck the mailbox before considering idle
    // 3. Idle with armed timers: jump the clock (the simulator does the
    //    same across its global queue) so windows/timeouts fire rather
    //    than deadlock a drained system.
    if (!shard.timers.empty()) {
      shard.clock = shard.timers.front().due;
      continue;
    }
    // 4. Nothing to do: sleep until mail or stop.
    shard.mailbox.wait(stop_);
  }
  tl_worker_runtime = nullptr;
}

}  // namespace dcnt
