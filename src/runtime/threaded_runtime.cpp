#include "runtime/threaded_runtime.hpp"

#include <algorithm>
#include <utility>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace dcnt {

namespace {

/// Timer heap entry: min-heap by absolute deadline on the owner's
/// logical clock, FIFO among equal deadlines (matches the simulator's
/// (deliver_time, seq) ordering).
struct TimerEntry {
  SimTime due{0};
  std::uint64_t seq{0};
  Message msg;
};

struct TimerLater {
  bool operator()(const TimerEntry& a, const TimerEntry& b) const {
    if (a.due != b.due) return a.due > b.due;
    return a.seq > b.seq;
  }
};

/// Which runtime worker (if any) is running on this thread. Lets
/// begin_op distinguish a driver thread (immediate mailbox push) from a
/// completion callback on a worker (batch through the worker's outbox).
thread_local ThreadedRuntime* tl_worker_runtime = nullptr;
thread_local std::size_t tl_worker_index = 0;

}  // namespace

struct ThreadedRuntime::Shard {
  Shard(std::size_t idx, std::size_t n, std::size_t num_shards, Rng shard_rng)
      : index(idx), outbox(num_shards), rng(shard_rng), metrics(n) {}

  const std::size_t index;
  Mailbox mailbox;

  /// Monotone count of events this shard has handled. Relaxed bumps by
  /// the owner; exact for readers ordered after it through the
  /// in-flight acq_rel chain (see ThreadedRuntime::events_processed).
  ///
  /// alignas: bumped by the owner once per event, so it must not share
  /// a line with the tail of `mailbox` (whose pending_/owner_waiting_
  /// producers hammer from other threads) — one line for the pair
  /// owner-written gauges, separate from producer-written mailbox
  /// state. timers_armed rides along deliberately: same writer (the
  /// owner), so sharing ITS line costs nothing.
  alignas(64) std::atomic<std::int64_t> events_processed{0};
  /// Armed wall-clock timers on this shard (wall_timers mode). The fire
  /// path bumps in_flight_ BEFORE decrementing this, so an observer
  /// that reads it between two in_flight()==0 observations cannot miss
  /// a concurrent fire.
  std::atomic<std::int64_t> timers_armed{0};

  // Owner-thread-only state below. alignas: `batch` starts a fresh
  // line so the owner's hottest private state (drain target, ready
  // queue) never shares a line with the observer-read gauges above.
  alignas(64) std::vector<RuntimeEvent> batch;  ///< drain target, reused
  std::vector<RuntimeEvent> ready;  ///< runnable events, appended mid-run
  std::size_t ready_head{0};
  /// Cross-shard events staged per destination, flushed by flush_shard
  /// with one push_all per dirty destination. The vectors are reused
  /// (push_all clears without releasing capacity), so steady-state
  /// cross-shard traffic allocates nothing here.
  std::vector<std::vector<RuntimeEvent>> outbox;
  std::vector<std::size_t> outbox_dirty;  ///< dsts with staged events
  /// Messages addressed to processors another node owns (cluster mode),
  /// staged until flush_shard hands them to the remote sink. These hold
  /// no in-flight count: local accounting ends at the sink boundary and
  /// the wire send/receive conservation check takes over.
  std::vector<Message> remote_out;
  /// Deferred in_flight_ deltas: events created (sends, timers, starts
  /// issued from this worker) and events finished since the last flush.
  /// flush_shard applies adds before subtracts.
  std::int64_t pending_sends{0};
  std::int64_t finished{0};
  std::size_t events_since_flush{0};
  std::vector<TimerEntry> timers;  ///< min-heap (TimerLater)
  std::uint64_t timer_seq{0};
  /// Logical clock: advances by one per processed event, and jumps to
  /// the earliest timer deadline when the worker runs dry (the
  /// simulator's idle time-jump, per worker).
  SimTime clock{0};
  Rng rng;
  Metrics metrics;

  void stage(std::size_t dst, RuntimeEvent ev) {
    auto& out = outbox[dst];
    if (out.empty()) outbox_dirty.push_back(dst);
    out.push_back(std::move(ev));
  }
};

/// Per-worker Context. Mirrors the Simulator's handler guard rails:
/// send/send_local/complete only inside a handler, bounds checks, op
/// inheritance from the event being handled.
class ThreadedRuntime::WorkerCtx final : public Context {
 public:
  WorkerCtx(ThreadedRuntime* rt, Shard* shard) : rt_(rt), shard_(shard) {}

  void send(Message msg) override {
    DCNT_CHECK_MSG(in_handler_, "send() outside a handler");
    DCNT_CHECK(msg.src >= 0 &&
               static_cast<std::size_t>(msg.src) < rt_->num_processors());
    DCNT_CHECK(msg.dst >= 0 &&
               static_cast<std::size_t>(msg.dst) < rt_->num_processors());
    DCNT_CHECK(!msg.local);
    if (msg.op == kNoOp) msg.op = current_op_;
    if (msg.src != msg.dst) {
      shard_->metrics.on_send(msg.src, msg.op, msg.size_words(), msg.key);
    }
    if (!rt_->owns(msg.dst)) {
      // Another node's processor: stage for the remote sink. The send
      // was counted above (a remote dst is never the local src); the
      // receive is counted by the destination node on delivery, so the
      // cluster-wide ledger matches the simulator's.
      shard_->remote_out.push_back(std::move(msg));
      return;
    }
    RuntimeEvent ev;
    ev.kind = RuntimeEvent::Kind::kMessage;
    const std::size_t dst_shard = rt_->shard_of(msg.dst);
    ev.msg = std::move(msg);
    ++shard_->pending_sends;
    if (&*rt_->shards_[dst_shard] == shard_) {
      // Same shard: skip the mailbox, the owner is this thread.
      shard_->ready.push_back(std::move(ev));
    } else {
      shard_->stage(dst_shard, std::move(ev));
    }
  }

  void send_local(ProcessorId p, std::int32_t tag,
                  std::vector<std::int64_t> args, SimTime delay) override {
    DCNT_CHECK_MSG(in_handler_, "send_local() outside a handler");
    DCNT_CHECK(p >= 0 && static_cast<std::size_t>(p) < rt_->num_processors());
    DCNT_CHECK(delay >= 1);
    Message msg;
    msg.src = p;
    msg.dst = p;
    msg.tag = tag;
    msg.op = current_op_;
    msg.args = std::move(args);
    msg.local = true;
    DCNT_CHECK_MSG(rt_->owns(p), "send_local at a processor another node owns");
    const bool wall = rt_->config_.wall_timers;
    const std::size_t dst_shard = rt_->shard_of(p);
    if (&*rt_->shards_[dst_shard] == shard_) {
      TimerEntry t;
      t.due = wall ? rt_->wall_now_us() + delay * rt_->config_.tick_us
                   : shard_->clock + delay;
      t.seq = shard_->timer_seq++;
      t.msg = std::move(msg);
      shard_->timers.push_back(std::move(t));
      std::push_heap(shard_->timers.begin(), shard_->timers.end(),
                     TimerLater{});
      if (wall) {
        // Armed wall timers do NOT hold the in-flight count: the
        // controller must be able to see "idle except for armed
        // timers" to trigger the distributed time jump, and a timer
        // pinning in_flight above zero would deadlock that very
        // observation. The armed count is published separately.
        shard_->timers_armed.fetch_add(1, std::memory_order_relaxed);
      } else {
        ++shard_->pending_sends;
      }
    } else {
      // Protocols only arm timers at the handling processor today, but
      // the Context contract allows any p: ship the relative delay and
      // let the owner anchor it to its own clock. The event holds
      // in-flight during mailbox transit only; in wall mode the owner
      // converts that hold into an armed-count on arrival.
      ++shard_->pending_sends;
      RuntimeEvent ev;
      ev.kind = RuntimeEvent::Kind::kTimer;
      ev.msg = std::move(msg);
      ev.delay = delay;
      shard_->stage(dst_shard, std::move(ev));
    }
  }

  void complete(OpId op, Value value) override {
    DCNT_CHECK_MSG(in_handler_, "complete() outside a handler");
    DCNT_CHECK(op >= 0 &&
               static_cast<std::size_t>(op) <
                   rt_->next_op_.load(std::memory_order_acquire));
    auto& done = rt_->done_[static_cast<std::size_t>(op)];
    DCNT_CHECK_MSG(done.load(std::memory_order_relaxed) == 0,
                   "operation completed twice");
    rt_->results_[static_cast<std::size_t>(op)] = value;
    done.store(1, std::memory_order_release);
    rt_->completed_.fetch_add(1, std::memory_order_acq_rel);
    if (rt_->completion_) rt_->completion_(op, value);
  }

  SimTime now() const override { return shard_->clock; }
  Rng& rng() override { return shard_->rng; }

  void run(const RuntimeEvent& ev) {
    in_handler_ = true;
    current_op_ = ev.msg.op;
    if (ev.kind == RuntimeEvent::Kind::kStart) {
      if (ev.msg.args.empty()) {
        rt_->protocol_->start_inc(*this, ev.msg.dst, ev.msg.op);
      } else {
        rt_->protocol_->start_op(*this, ev.msg.dst, ev.msg.op, ev.msg.args);
      }
    } else {
      rt_->protocol_->on_message(*this, ev.msg);
    }
    in_handler_ = false;
    current_op_ = kNoOp;
  }

 private:
  ThreadedRuntime* rt_;
  Shard* shard_;
  OpId current_op_{kNoOp};
  bool in_handler_{false};
};

ThreadedRuntime::ThreadedRuntime(std::unique_ptr<CounterProtocol> protocol,
                                 RuntimeConfig config)
    : protocol_(std::move(protocol)),
      config_(config),
      num_processors_(0),
      results_(config.max_ops, 0),
      done_(config.max_ops) {
  DCNT_CHECK(protocol_ != nullptr);
  num_processors_ = protocol_->num_processors();
  DCNT_CHECK(num_processors_ > 0);
  DCNT_CHECK(config_.flush_batch >= 1);
  DCNT_CHECK(config_.cluster_nodes >= 1);
  DCNT_CHECK(config_.cluster_node_id < config_.cluster_nodes);
  DCNT_CHECK(config_.tick_us >= 1);
  t0_ = std::chrono::steady_clock::now();
  const std::size_t w = resolve_thread_count(config_.workers);
  DCNT_CHECK_MSG(w == 1 || protocol_->shard_safe(),
                 "protocol declines sharded execution (shard_safe)");
  if (config_.active_shards != 0) {
    active_shards_ = std::min(config_.active_shards, w);
  } else {
    const std::size_t cores = std::thread::hardware_concurrency();
    active_shards_ = std::min(w, cores == 0 ? w : cores);
  }
  if (active_shards_ == 0) active_shards_ = 1;
  protocol_->on_shard_start(w);
  Rng base(config_.seed);
  shards_.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(i, num_processors_, w, base.fork(i + 1)));
  }
  placement_plan_ = plan_placement(config_.placement, w);
  placement_supported_ =
      config_.placement == Placement::kNone || placement_plan_.supported;
  if (config_.inline_drive) {
    DCNT_CHECK_MSG(w == 1, "inline_drive hosts exactly one shard");
    inline_ctx_ = std::make_unique<WorkerCtx>(this, shards_[0].get());
    // The embedding thread IS the shard; pin it here if asked, since
    // there is no worker_main to do it.
    if (pin_thread_to_cpu(placement_plan_.cpu_for(0))) {
      pinned_workers_.fetch_add(1, std::memory_order_acq_rel);
    }
    return;  // no threads: the embedding thread calls drive()
  }
  threads_.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadedRuntime::~ThreadedRuntime() { stop(); }

OpId ThreadedRuntime::begin_op(ProcessorId origin,
                               std::vector<std::int64_t> args) {
  DCNT_CHECK(origin >= 0 &&
             static_cast<std::size_t>(origin) < num_processors_);
  DCNT_CHECK(!stop_.load(std::memory_order_acquire));
  const std::size_t op = next_op_.fetch_add(1, std::memory_order_acq_rel);
  DCNT_CHECK_MSG(op < config_.max_ops,
                 "operation table full (raise RuntimeConfig::max_ops)");
  RuntimeEvent ev;
  ev.kind = RuntimeEvent::Kind::kStart;
  ev.msg.src = origin;
  ev.msg.dst = origin;
  ev.msg.op = static_cast<OpId>(op);
  ev.msg.args = std::move(args);
  const std::size_t dst_shard = shard_of(origin);
  if (tl_worker_runtime == this) {
    // On a worker thread (completion-driven issuance): defer the
    // in-flight add and batch the start like any cross-shard event. The
    // deferral is safe because this worker's current event has not been
    // subtracted yet, so in_flight_ stays positive until flush_shard
    // applies adds-then-subtracts.
    Shard& me = *shards_[tl_worker_index];
    ++me.pending_sends;
    if (dst_shard == tl_worker_index) {
      me.ready.push_back(std::move(ev));
    } else {
      me.stage(dst_shard, std::move(ev));
    }
  } else {
    // The increment precedes the push (sequenced-before), so in_flight_
    // can never read zero while this event is invisible.
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    shards_[dst_shard]->mailbox.push(std::move(ev));
  }
  return static_cast<OpId>(op);
}

void ThreadedRuntime::wait_quiescent() {
  std::unique_lock<std::mutex> lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [&] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

std::optional<Value> ThreadedRuntime::result(OpId op) const {
  DCNT_CHECK(op >= 0 && static_cast<std::size_t>(op) <
                            next_op_.load(std::memory_order_acquire));
  if (done_[static_cast<std::size_t>(op)].load(std::memory_order_acquire) ==
      0) {
    return std::nullopt;
  }
  return results_[static_cast<std::size_t>(op)];
}

Metrics ThreadedRuntime::merged_metrics() const {
  DCNT_CHECK_MSG(in_flight_.load(std::memory_order_acquire) == 0,
                 "merged_metrics requires quiescence");
  Metrics out(num_processors_);
  for (const auto& shard : shards_) out.merge_from(shard->metrics);
  return out;
}

Metrics ThreadedRuntime::merged_metrics_unchecked() const {
  Metrics out(num_processors_);
  for (const auto& shard : shards_) out.merge_from(shard->metrics);
  return out;
}

void ThreadedRuntime::reset_metrics() {
  DCNT_CHECK_MSG(in_flight_.load(std::memory_order_acquire) == 0,
                 "reset_metrics requires quiescence");
  for (auto& shard : shards_) shard->metrics.reset();
}

void ThreadedRuntime::stop() {
  if (!stop_.exchange(true, std::memory_order_acq_rel)) {
    for (auto& shard : shards_) shard->mailbox.wake();
    for (auto& t : threads_) t.join();
    threads_.clear();
  }
}

void ThreadedRuntime::flush_shard(Shard& shard) {
  if (shard.pending_sends != 0) {
    in_flight_.fetch_add(shard.pending_sends, std::memory_order_acq_rel);
    shard.pending_sends = 0;
  }
  for (std::size_t dst : shard.outbox_dirty) {
    shards_[dst]->mailbox.push_all(shard.outbox[dst]);
  }
  // Remote messages leave strictly before the finished-subtraction
  // below: an observer that sees in_flight hit zero is then guaranteed
  // the sink already holds everything the handlers produced — the
  // cluster node's quiescence report depends on exactly this ordering.
  if (!shard.remote_out.empty()) {
    remote_sink_(shard.index, shard.remote_out);
    shard.remote_out.clear();
  }
  shard.outbox_dirty.clear();
  shard.events_since_flush = 0;
  if (shard.finished != 0) {
    const std::int64_t n = shard.finished;
    shard.finished = 0;
    if (in_flight_.fetch_sub(n, std::memory_order_acq_rel) == n) {
      // Notify under the mutex so a waiter cannot check the predicate
      // and sleep between our decrement and our notify.
      std::lock_guard<std::mutex> lock(quiesce_mu_);
      quiesce_cv_.notify_all();
    }
  }
}

void ThreadedRuntime::process_event(Shard& shard, WorkerCtx& ctx,
                                    RuntimeEvent& ev) {
  if (ev.kind == RuntimeEvent::Kind::kMessage && !ev.msg.local &&
      ev.msg.src != ev.msg.dst) {
    shard.metrics.on_receive(ev.msg.dst, ev.msg.size_words(), ev.msg.key);
  }
  ctx.run(ev);
  ++shard.clock;
  ++shard.finished;
  ++shard.events_since_flush;
  shard.events_processed.fetch_add(1, std::memory_order_relaxed);
}

void ThreadedRuntime::fire_timer(Shard& shard, WorkerCtx& ctx) {
  // Order is load-bearing for the cluster stats barrier: the in-flight
  // add precedes the armed-count decrement, so a reader that sees the
  // armed count drop is guaranteed in_flight was already positive — a
  // fire can never hide between "timers_armed stable" and "in_flight
  // zero" observations. (Logical mode: armed timers already hold
  // in-flight via pending_sends; the add would double-count.)
  if (config_.wall_timers) {
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    shard.timers_armed.fetch_sub(1, std::memory_order_relaxed);
  }
  std::pop_heap(shard.timers.begin(), shard.timers.end(), TimerLater{});
  RuntimeEvent ev;
  ev.kind = RuntimeEvent::Kind::kMessage;
  ev.msg = std::move(shard.timers.back().msg);
  shard.timers.pop_back();
  process_event(shard, ctx, ev);
}

bool ThreadedRuntime::run_shard_pass(Shard& shard, WorkerCtx& ctx) {
  const bool wall = config_.wall_timers;
  bool ran = false;
  // 1. Pull whatever has accumulated in the mailbox. Timer
  //    registrations are anchored to this clock now; the rest joins
  //    the ready queue in arrival order.
  if (shard.mailbox.drain(shard.batch)) {
    for (auto& ev : shard.batch) {
      if (ev.kind == RuntimeEvent::Kind::kTimer) {
        TimerEntry t;
        t.seq = shard.timer_seq++;
        t.msg = std::move(ev.msg);
        if (wall) {
          t.due = wall_now_us() + ev.delay * config_.tick_us;
          // Convert the mailbox-transit in-flight hold into an
          // armed-count: arm first, then release the hold, so the
          // timer is never invisible to both gauges at once.
          shard.timers_armed.fetch_add(1, std::memory_order_relaxed);
          ++shard.finished;
        } else {
          t.due = shard.clock + ev.delay;
        }
        shard.timers.push_back(std::move(t));
        std::push_heap(shard.timers.begin(), shard.timers.end(),
                       TimerLater{});
      } else {
        shard.ready.push_back(std::move(ev));
      }
    }
  }
  // 2. Run until dry: ready events first (handlers may append more),
  //    then any timer whose deadline the advancing clock has passed.
  //    Cross-shard output is flushed every flush_batch events so
  //    peers are fed even while this worker stays busy.
  for (;;) {
    if (shard.ready_head < shard.ready.size()) {
      // Move out: the handler may push_back and reallocate `ready`.
      RuntimeEvent ev = std::move(shard.ready[shard.ready_head++]);
      if (ev.kind == RuntimeEvent::Kind::kFireTimers) {
        // The distributed time jump: the controller certified global
        // idleness, so every armed deadline is unreachable any other
        // way. Budget = the count at the marker, not "until empty":
        // a fired retransmit handler re-arms its next attempt, and
        // firing that too would melt the backoff schedule. The
        // marker itself is bookkeeping, not progress — finished++
        // (balancing its injection hold) without events_processed.
        std::size_t budget = shard.timers.size();
        while (budget-- > 0) {
          fire_timer(shard, ctx);
          if (shard.events_since_flush >= config_.flush_batch) {
            flush_shard(shard);
          }
        }
        ++shard.finished;
      } else {
        process_event(shard, ctx, ev);
      }
      ran = true;
      if (shard.events_since_flush >= config_.flush_batch) {
        flush_shard(shard);
      }
      continue;
    }
    shard.ready.clear();
    shard.ready_head = 0;
    if (!shard.timers.empty() &&
        shard.timers.front().due <= (wall ? wall_now_us() : shard.clock)) {
      fire_timer(shard, ctx);
      ran = true;
      if (shard.events_since_flush >= config_.flush_batch) {
        flush_shard(shard);
      }
      continue;
    }
    break;
  }
  // Dry point: hand off staged cross-shard events and settle the
  // in-flight ledger before idling (a dirty outbox here would starve
  // peers and could deadlock the quiescence wait).
  flush_shard(shard);
  return ran;
}

void ThreadedRuntime::worker_main(std::size_t worker) {
  tl_worker_runtime = this;
  tl_worker_index = worker;
  // Placement applies before the first event: a handler's very first
  // cache misses should already land on the planned core.
  if (pin_thread_to_cpu(placement_plan_.cpu_for(worker))) {
    pinned_workers_.fetch_add(1, std::memory_order_acq_rel);
  }
  Shard& shard = *shards_[worker];
  WorkerCtx ctx(this, &shard);
  const bool wall = config_.wall_timers;
  while (!stop_.load(std::memory_order_acquire)) {
    // Recheck the mailbox after any productive pass before idling.
    if (run_shard_pass(shard, ctx)) continue;
    if (!shard.timers.empty()) {
      if (wall) {
        // 3a. Wall timers: a dry shard may still be owed wire traffic,
        //     so the clock must not jump — park until the earliest real
        //     deadline (or mail, or stop).
        shard.mailbox.wait_until(
            stop_, t0_ + std::chrono::microseconds(shard.timers.front().due));
        continue;
      }
      // 3b. Logical timers: jump the clock (the simulator does the same
      //     across its global queue) so windows/timeouts fire rather
      //     than deadlock a drained system.
      shard.clock = shard.timers.front().due;
      continue;
    }
    // 4. Nothing to do: sleep until mail or stop.
    shard.mailbox.wait(stop_);
  }
  tl_worker_runtime = nullptr;
}

bool ThreadedRuntime::drive() {
  DCNT_CHECK_MSG(config_.inline_drive,
                 "drive() is only for inline_drive runtimes");
  Shard& shard = *shards_[0];
  // The caller's thread IS the worker for the duration of the pass, so
  // handler re-entry (begin_op from a completion callback) takes the
  // deferred-batch path exactly as it would on a spawned worker.
  tl_worker_runtime = this;
  tl_worker_index = 0;
  bool any = run_shard_pass(shard, *inline_ctx_);
  // Logical-clock mode has no kernel deadline to park on: a dry shard
  // jumps to the next timer due and keeps going, as the threaded
  // worker's step 3b does. (The cluster node runs wall timers; its due
  // timers fire inside the pass because the driving loop clamps its
  // kernel wait to inline_timer_wait_us.)
  while (!config_.wall_timers && !shard.timers.empty()) {
    shard.clock = shard.timers.front().due;
    if (!run_shard_pass(shard, *inline_ctx_)) break;
    any = true;
  }
  tl_worker_runtime = nullptr;
  return any;
}

std::int64_t ThreadedRuntime::inline_timer_wait_us() const {
  DCNT_CHECK_MSG(config_.inline_drive,
                 "inline_timer_wait_us() is only for inline_drive runtimes");
  const Shard& shard = *shards_[0];
  if (shard.timers.empty()) return -1;
  const std::int64_t wait = shard.timers.front().due - wall_now_us();
  return wait > 0 ? wait : 0;
}

void ThreadedRuntime::inject(std::size_t shard, std::vector<RuntimeEvent>& evs) {
  if (evs.empty()) return;
  DCNT_CHECK(shard < active_shards_);
  // Add-before-push: in_flight_ can never read zero while the batch is
  // invisible to the worker.
  in_flight_.fetch_add(static_cast<std::int64_t>(evs.size()),
                       std::memory_order_acq_rel);
  shards_[shard]->mailbox.push_all(evs);
}

void ThreadedRuntime::register_external_op(OpId op) {
  DCNT_CHECK(op >= 0);
  const std::size_t want = static_cast<std::size_t>(op) + 1;
  DCNT_CHECK_MSG(want <= config_.max_ops,
                 "operation table full (raise RuntimeConfig::max_ops)");
  std::size_t cur = next_op_.load(std::memory_order_acquire);
  while (cur < want && !next_op_.compare_exchange_weak(
                           cur, want, std::memory_order_acq_rel,
                           std::memory_order_acquire)) {
  }
}

std::int64_t ThreadedRuntime::events_processed() const {
  std::int64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->events_processed.load(std::memory_order_relaxed);
  }
  return sum;
}

std::int64_t ThreadedRuntime::timers_armed() const {
  std::int64_t sum = 0;
  for (const auto& shard : shards_) {
    sum += shard->timers_armed.load(std::memory_order_relaxed);
  }
  return sum;
}

}  // namespace dcnt
