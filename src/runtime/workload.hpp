// Wall-clock workload generation against a ThreadedRuntime.
//
// Two standard load shapes:
//   - closed loop: `concurrency` clients, each issuing its next
//     operation the moment its previous one completes (issuance rides
//     the completion callback, so the offered load self-regulates to
//     the service rate — the classic saturation benchmark);
//   - open loop: a driver thread issues at a fixed target rate
//     regardless of completions (exposes queueing delay; the honest
//     latency-under-load shape).
// Who initiates is the caller's choice: pass any initiator sequence
// (harness/schedule.hpp generates round-robin, uniform and Zipf ones).
//
// LatencyRecorder stamps issue/completion with steady_clock and feeds
// support/Summary, so p50/p95/p99 come out of the same machinery the
// simulator's load reports use.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/threaded_runtime.hpp"
#include "sim/types.hpp"
#include "support/stats.hpp"

namespace dcnt {

class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t max_ops);

  /// steady_clock, in nanoseconds since an arbitrary epoch.
  static std::int64_t now_ns();

  /// Called by the issuer, immediately after begin_inc returned `op`
  /// with `t_ns` stamped immediately before. The slot is atomic because
  /// the completion can race this call (the op may finish on a worker
  /// before the issuer stores the stamp).
  void on_issue(OpId op, std::int64_t t_ns);

  /// Called from the completion callback. Waits (nanoseconds, in
  /// practice) for the racing on_issue store if needed.
  void on_complete(OpId op, std::int64_t t_ns);

  /// Latencies of completed ops, in ns.
  Summary summary_ns() const;

 private:
  std::vector<std::atomic<std::int64_t>> issue_ns_;  ///< 0 = not issued
  std::vector<std::int64_t> latency_ns_;             ///< -1 = not completed
};

struct WorkloadOptions {
  /// Closed-loop clients; used when open_rate == 0.
  std::size_t concurrency{8};
  /// If > 0: open-loop issuance at this many ops/second.
  double open_rate{0.0};
  /// Warmup operations issued (closed-loop, same concurrency, cycling
  /// through the initiator sequence) and run to quiescence before the
  /// measured phase. Excluded from the recorder and the rates, and the
  /// runtime's metrics are reset afterwards — so cold-start costs
  /// (thread wakeups, buffer growth, page faults) never pollute the
  /// measured latencies, and message counts stay comparable to a
  /// no-warmup run.
  std::size_t warmup{0};
  /// Multi-key fabric workload: when non-empty (size must equal the
  /// initiator count), op i runs begin_op(initiators[i], {keys[i]})
  /// instead of a plain inc — the keyed entry point of
  /// service/MultiCounter. Warmup cycles through the keys exactly as it
  /// cycles through the initiators.
  std::vector<KeyId> keys;
};

struct WorkloadResult {
  std::size_t ops{0};
  double wall_seconds{0.0};
  double ops_per_sec{0.0};
  /// Completion latency per op, nanoseconds.
  Summary latency_ns;
  /// Keyed runs only: key_of_op[op] is the key OpId `op` counted on
  /// (size warmup + ops — concurrent issuance means OpId order need not
  /// match the schedule index, so the mapping is recorded at issue
  /// time). Empty for plain runs.
  std::vector<KeyId> key_of_op;
};

/// Issues one operation per entry of `initiators` into `rt` (which must
/// be fresh: no operations started yet), waits for all completions,
/// then runs the runtime to quiescence so the caller can read
/// merged_metrics() and protocol state. Wall time covers first issue to
/// last completion (not the trailing quiesce). With options.warmup > 0,
/// that many unrecorded operations run (and quiesce) first; measured
/// operations then occupy OpIds warmup..warmup+initiators.size()-1.
WorkloadResult run_workload(ThreadedRuntime& rt,
                            const std::vector<ProcessorId>& initiators,
                            const WorkloadOptions& options = {});

}  // namespace dcnt
