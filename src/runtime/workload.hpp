// Wall-clock workload generation against a ThreadedRuntime.
//
// Two standard load shapes:
//   - closed loop: `concurrency` clients, each issuing its next
//     operation the moment its previous one completes (issuance rides
//     the completion callback, so the offered load self-regulates to
//     the service rate — the classic saturation benchmark);
//   - open loop: a driver thread issues on a deterministic arrival
//     timeline (traffic/shape.hpp: constant, burst or diurnal rate)
//     regardless of completions. Latency is measured from each op's
//     *scheduled* arrival time, not from when the driver got around to
//     sending it, so a backlogged system is charged for the queueing
//     delay it caused — the coordinated-omission-free measurement
//     (DESIGN.md §14). The driver never skips an arrival: if it falls
//     behind it issues late, and the lateness lands in the latency.
// Who initiates is the caller's choice: pass any initiator sequence
// (harness/schedule.hpp generates round-robin, uniform and Zipf ones).
//
// Runs stop on whichever bound hits first: the initiator sequence
// running out (op-count budget) or `duration_s` of wall clock
// (open loop: arrivals scheduled past the budget are not issued;
// closed loop: clients stop reissuing once the deadline passes).
// Either way every issued op runs to completion before returning.
//
// Latency lands in a traffic::TailRecorder: exact per-op storage for
// small runs, an HDR-style O(buckets) histogram for large ones, with
// p50..p99.99, max and SLO attainment in the result either way.
#pragma once

#include <cstdint>
#include <vector>

#include "concurrent/history.hpp"
#include "runtime/threaded_runtime.hpp"
#include "sim/types.hpp"
#include "traffic/recorder.hpp"
#include "traffic/shape.hpp"

namespace dcnt {

struct WorkloadOptions {
  /// Closed-loop clients; used when no open-loop rate is set.
  std::size_t concurrency{8};
  /// Operations each closed-loop client keeps outstanding: the issue
  /// window is concurrency * inflight ops wide (each completion still
  /// triggers exactly one reissue, so the window never grows past its
  /// seed). 1 reproduces the classic one-op-per-client closed loop
  /// byte-for-byte. Ignored in open loop, where the backlog is whatever
  /// the arrival timeline has scheduled past the system's service rate.
  std::size_t inflight{1};
  /// Legacy shorthand: if > 0 (and shape.rate == 0), open-loop issuance
  /// at this constant rate (ops/second).
  double open_rate{0.0};
  /// Open-loop arrival shape; shape.rate > 0 selects open loop and
  /// takes precedence over open_rate.
  traffic::RateShape shape{};
  /// If > 0: wall-clock budget in seconds. The run issues only the
  /// schedule prefix that fits (open loop: arrivals scheduled before
  /// the budget; closed loop: no reissues after the deadline), then
  /// drains. 0 = run the whole initiator sequence.
  double duration_s{0.0};
  /// If > 0: latency SLO threshold in nanoseconds; the result's traffic
  /// stats report the fraction of completed ops at or under it.
  std::int64_t slo_ns{0};
  /// Runs with more potential ops than this record into the HDR
  /// histogram instead of exact per-op latency slots.
  std::size_t exact_cap{traffic::TailRecorder::kDefaultExactCap};
  /// Warmup operations issued (closed-loop, same concurrency, cycling
  /// through the initiator sequence) and run to quiescence before the
  /// measured phase. Excluded from the recorder and the rates, and the
  /// runtime's metrics are reset afterwards — so cold-start costs
  /// (thread wakeups, buffer growth, page faults) never pollute the
  /// measured latencies, and message counts stay comparable to a
  /// no-warmup run.
  std::size_t warmup{0};
  /// Multi-key fabric workload: when non-empty (size must equal the
  /// initiator count), op i runs begin_op(initiators[i], {keys[i]})
  /// instead of a plain inc — the keyed entry point of
  /// service/MultiCounter. Warmup cycles through the keys exactly as it
  /// cycles through the initiators.
  std::vector<KeyId> keys;
  /// When set, every measured op's invoke time, response time and
  /// returned value land in this buffer (capacity must cover
  /// warmup + initiator count), ready for check_linearizable after the
  /// run. Invoke is stamped just before begin_* and response inside the
  /// completion callback — both conservative widenings of the true
  /// interval, so the checker can miss a borderline violation but never
  /// fabricate one. Warmup ops are not recorded.
  concurrent::HistoryBuffer* history{nullptr};
};

struct WorkloadResult {
  /// Measured operations issued and completed (every issued op runs to
  /// completion). Equals the initiator count unless duration_s cut the
  /// schedule short.
  std::size_t ops{0};
  double wall_seconds{0.0};
  double ops_per_sec{0.0};
  /// Tail latency, SLO attainment and recorder accounting. Open-loop
  /// latencies are measured from scheduled arrival time.
  traffic::TrafficStats traffic;
  /// Keyed runs only: key_of_op[op] is the key OpId `op` counted on
  /// (size warmup + initiator count — concurrent issuance means OpId
  /// order need not match the schedule index, so the mapping is
  /// recorded at issue time). Empty for plain runs.
  std::vector<KeyId> key_of_op;
};

/// Issues up to one operation per entry of `initiators` into `rt`
/// (which must be fresh: no operations started yet), waits for all
/// issued completions, then runs the runtime to quiescence so the
/// caller can read merged_metrics() and protocol state. Wall time
/// covers first issue to last completion (not the trailing quiesce).
/// With options.warmup > 0, that many unrecorded operations run (and
/// quiesce) first; measured operations then occupy OpIds
/// warmup..warmup+result.ops-1.
WorkloadResult run_workload(ThreadedRuntime& rt,
                            const std::vector<ProcessorId>& initiators,
                            const WorkloadOptions& options = {});

}  // namespace dcnt
