#include "runtime/placement.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "support/check.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace dcnt {

namespace {

/// Reads a small integer file ("3" or "0-3" style first token) from
/// sysfs; returns fallback on any failure.
int read_sysfs_int(const std::string& path, int fallback) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return fallback;
  int value = fallback;
  if (std::fscanf(f, "%d", &value) != 1) value = fallback;
  std::fclose(f);
  return value;
}

/// Parses the sysfs online-CPU list ("0-3,8-11" style). Empty on
/// failure, which triggers the hardware_concurrency fallback.
std::vector<int> read_online_cpus() {
  std::vector<int> cpus;
  std::FILE* f = std::fopen("/sys/devices/system/cpu/online", "r");
  if (f == nullptr) return cpus;
  char buf[4096];
  if (std::fgets(buf, sizeof(buf), f) == nullptr) {
    std::fclose(f);
    return cpus;
  }
  std::fclose(f);
  int lo = -1;
  int cur = 0;
  bool have_digit = false;
  for (const char* p = buf;; ++p) {
    const char c = *p;
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + (c - '0');
      have_digit = true;
    } else if (c == '-') {
      lo = cur;
      cur = 0;
      have_digit = false;
    } else if (c == ',' || c == '\n' || c == '\0') {
      if (have_digit) {
        const int first = lo >= 0 ? lo : cur;
        for (int i = first; i <= cur; ++i) cpus.push_back(i);
      }
      lo = -1;
      cur = 0;
      have_digit = false;
      if (c == '\0' || c == '\n') break;
    } else {
      break;  // unexpected character: trust what we have
    }
  }
  return cpus;
}

bool affinity_supported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

}  // namespace

std::string to_string(Placement p) {
  switch (p) {
    case Placement::kNone:
      return "none";
    case Placement::kCompact:
      return "compact";
    case Placement::kScatter:
      return "scatter";
    case Placement::kTree:
      return "tree";
  }
  return "none";
}

Placement placement_from_string(const std::string& name) {
  if (name.empty() || name == "none") return Placement::kNone;
  if (name == "compact" || name == "pin") return Placement::kCompact;
  if (name == "scatter") return Placement::kScatter;
  if (name == "tree") return Placement::kTree;
  DCNT_CHECK_MSG(false,
                 "unknown placement (expected none, compact, scatter or tree)");
  return Placement::kNone;
}

const CpuTopology& CpuTopology::detect() {
  static const CpuTopology topo = [] {
    CpuTopology t;
    std::vector<int> online = read_online_cpus();
    if (!online.empty()) {
      t.from_sysfs = true;
    } else {
      const unsigned hw = std::thread::hardware_concurrency();
      for (unsigned i = 0; i < std::max(hw, 1u); ++i) {
        online.push_back(static_cast<int>(i));
      }
    }
    t.cpus.reserve(online.size());
    for (const int cpu : online) {
      const std::string base =
          "/sys/devices/system/cpu/cpu" + std::to_string(cpu) + "/topology/";
      CpuInfo info;
      info.cpu = cpu;
      info.core_id = read_sysfs_int(base + "core_id", cpu);
      info.package_id = read_sysfs_int(base + "physical_package_id", 0);
      t.cpus.push_back(info);
    }
    return t;
  }();
  return topo;
}

PlacementPlan plan_placement(const CpuTopology& topo, Placement policy,
                             std::size_t workers) {
  PlacementPlan plan;
  plan.policy = policy;
  if (policy == Placement::kNone || workers == 0 || topo.cpus.empty()) {
    return plan;
  }
  plan.supported = affinity_supported();
  if (!plan.supported) return plan;

  // Topology order: SMT siblings adjacent within a core, cores adjacent
  // within a package. Every policy is a traversal of this order.
  std::vector<CpuInfo> sorted = topo.cpus;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const CpuInfo& a, const CpuInfo& b) {
                     if (a.package_id != b.package_id)
                       return a.package_id < b.package_id;
                     if (a.core_id != b.core_id) return a.core_id < b.core_id;
                     return a.cpu < b.cpu;
                   });

  std::vector<int> order;
  order.reserve(sorted.size());
  switch (policy) {
    case Placement::kCompact:
      // Fill siblings, then the next core: communicating workers share
      // the deepest possible cache level.
      for (const CpuInfo& c : sorted) order.push_back(c.cpu);
      break;
    case Placement::kScatter: {
      // One CPU per distinct physical core first (round-robin across
      // the sibling index), so the first `cores` workers get private
      // L1/L2 before any core is doubled up.
      std::vector<std::vector<int>> by_core;
      int last_pkg = -1, last_core = -1;
      for (const CpuInfo& c : sorted) {
        if (by_core.empty() || c.package_id != last_pkg ||
            c.core_id != last_core) {
          by_core.emplace_back();
          last_pkg = c.package_id;
          last_core = c.core_id;
        }
        by_core.back().push_back(c.cpu);
      }
      for (std::size_t sibling = 0; !by_core.empty(); ++sibling) {
        bool any = false;
        for (const auto& core : by_core) {
          if (sibling < core.size()) {
            order.push_back(core[sibling]);
            any = true;
          }
        }
        if (!any) break;
      }
      break;
    }
    case Placement::kTree: {
      // One CPU per physical core, in core-id order: shard_of folds the
      // TreeCounter's BFS processor ids round-robin onto shards, so
      // consecutive shards hold tree-adjacent subtrees — putting them
      // on adjacent cores keeps parent/child grant traffic within
      // neighbouring caches instead of wherever the scheduler felt like.
      int last_pkg = -1, last_core = -1;
      for (const CpuInfo& c : sorted) {
        if (c.package_id != last_pkg || c.core_id != last_core) {
          order.push_back(c.cpu);
          last_pkg = c.package_id;
          last_core = c.core_id;
        }
      }
      // Oversubscribed: wrap through the remaining siblings after every
      // physical core is taken once.
      for (const CpuInfo& c : sorted) {
        if (order.size() >= workers) break;
        if (std::find(order.begin(), order.end(), c.cpu) == order.end()) {
          order.push_back(c.cpu);
        }
      }
      break;
    }
    case Placement::kNone:
      break;
  }
  DCNT_CHECK(!order.empty());
  plan.cpus.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    plan.cpus.push_back(order[w % order.size()]);
  }
  return plan;
}

PlacementPlan plan_placement(Placement policy, std::size_t workers) {
  return plan_placement(CpuTopology::detect(), policy, workers);
}

bool pin_thread_to_cpu(int cpu) {
  if (cpu < 0) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;  // graceful no-op: caller reports "unsupported"
#endif
}

}  // namespace dcnt
