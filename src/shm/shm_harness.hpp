// Throughput harness for the shared-memory counters: the shm sibling
// of harness/run_throughput, producing the SAME ThroughputResult so
// bench_throughput's SHM table ranks silicon and message-passing rows
// on one axis.
//
// Closed loop: T real threads each keep one batch of F increments in
// flight — a thread claims op ids [i, i+F) from a shared cursor, stamps
// all F invokes, submits ONE inc_batch(t, F), and stamps all F
// responses with tickets base..base+F-1. The batch linearizes at the
// inc_batch's own linearization point, which sits inside every one of
// the F (invoke, response) windows, so the recorded history is honest
// and check_linearizable vets it exactly as it does the message-passing
// protocols at the same --inflight F. F amortizes coherence transfers
// the way message combining amortizes RTTs — that symmetry is the
// point of the sweep.
//
// Open loop: arrivals follow the deterministic timeline of
// traffic/shape.hpp; threads claim the next scheduled arrival, sleep
// until its offset, then run a single inc. Latency is measured from the
// scheduled arrival (coordinated-omission-free), invoke stamps from the
// actual call time (the history must reflect real overlap, not the
// schedule).
//
// Verification per run (all DCNT_CHECKed, so a bench row completing is
// a correctness run):
//   - ticket counters: returned values are exactly {warmup, ...,
//     warmup+ops-1} and check_linearizable passes over the live
//     history;
//   - the sharded counter: a sampler thread interleaves read()s with
//     the increments and check_inc_read_linearizable vets the combined
//     history (reads inside the inc-interval bounds, monotone);
//   - all counters: read() == warmup + ops at quiescence (exact final
//     value).
#pragma once

#include <cstdint>
#include <string>

#include "harness/throughput.hpp"
#include "runtime/placement.hpp"
#include "shm/shm_counter.hpp"
#include "traffic/recorder.hpp"

namespace dcnt::shm {

struct ShmOptions {
  /// Real threads driving the counter (the shm analogue of workers).
  std::size_t threads{4};
  /// Measured increments (split across threads by the shared cursor).
  std::size_t ops{1 << 14};
  /// Per-thread batch size — the shm meaning of --inflight F.
  std::size_t inflight{1};
  /// Unrecorded increments before the measured phase (threads
  /// barrier-sync between phases).
  std::size_t warmup{0};
  /// > 0: open-loop issuance at this mean rate; closed loop otherwise.
  double open_rate{0.0};
  std::string shape{"constant"};
  double period_s{1.0};
  double amplitude{0.5};
  double duty{0.5};
  /// > 0: SLO threshold in microseconds.
  double slo_us{0.0};
  std::size_t exact_cap{traffic::TailRecorder::kDefaultExactCap};
  /// Core placement for the harness threads (same policies as the
  /// runtime workers).
  Placement placement{Placement::kNone};
  std::uint64_t seed{1};
  /// Capture the live history and check it (ticket criterion, or
  /// inc/read for non-ticket counters).
  bool lin_check{true};
  /// Non-ticket counters: concurrent read() samples taken by the
  /// sampler thread for the inc/read check (0 disables the sampler).
  std::size_t read_samples{128};
};

/// Drives make_shm_counter(kind) and returns a bench-table-ready
/// result. Aborts (DCNT_CHECK) on any exactness violation; the
/// linearizability verdict is reported, not asserted — callers that
/// require lin=y assert on the result, mirroring run_throughput.
ThroughputResult run_shm_throughput(ShmKind kind, const ShmOptions& options);

}  // namespace dcnt::shm
