// shm-flat: a flat-combining counter (Hendler, Incze, Shavit, Tzafrir
// style) — one combiner drains a publication list.
//
// Each thread owns a cache-padded publication slot. To increment, a
// thread publishes its request (the batch size) into its slot, then
// loops: try to become the combiner (one try-lock, never a blocking
// acquire); on success, walk EVERY slot and serve all pending requests
// from the sequential counter — thread-local reads of remote slots,
// zero contention on the counter word itself — then release; otherwise
// spin on the own slot until some combiner has served it.
//
// Why this beats the atomic under contention: T threads hammering one
// fetch_add line pay ~T coherence transfers for T incs; here one
// combiner pays ~T slot-line reads for the same T incs while everyone
// else spins on a line they own in their local cache. It is the
// combining tree's economics — one processor fronts the batch — with
// the tree flattened to depth 1.
//
// The combiner-handoff edge case (the one the tests force): a combiner
// can release the lock while the publication list is NON-empty — a
// request published after the combiner's scan already passed that slot
// is missed, not served. The requester's loop handles it: spinning on
// its slot, it keeps retrying the try-lock, so once the old combiner
// leaves, the abandoned requester elects itself and self-serves.
// Liveness never depends on any particular combiner seeing any
// particular slot.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "shm/shm_counter.hpp"

namespace dcnt::shm {

class FlatCombiningCounter final : public ShmCounter {
 public:
  std::string name() const override { return "shm-flat"; }

  void on_threads(std::size_t threads) override {
    num_slots_ = threads > 0 ? threads : 1;
    slots_ = std::make_unique<Slot[]>(num_slots_);
  }

  std::uint64_t inc_batch(std::size_t thread, std::uint64_t count) override {
    Slot& s = slots_[thread % num_slots_];
    // Publish: nonzero req = pending. The base slot is written by the
    // combiner before it clears req (release), so the req==0 acquire
    // below is the only synchronization the requester needs.
    s.req.store(count, std::memory_order_release);
    int spins = 0;
    for (;;) {
      if (!lock_.exchange(true, std::memory_order_acquire)) {
        combine();
        lock_.store(false, std::memory_order_release);
      }
      if (s.req.load(std::memory_order_acquire) == 0) {
        return s.base.load(std::memory_order_relaxed);
      }
      // Still pending: a combiner is either about to reach our slot or
      // exited without seeing it — the next loop iteration retries the
      // lock, so we can always self-serve. Back off politely first
      // (matters on hosts with fewer cores than threads).
      if (++spins > 64) std::this_thread::yield();
    }
  }

  std::uint64_t read() const override {
    return counter_.load(std::memory_order_acquire);
  }

  /// Test hooks for the combiner-handoff edge case: hold the combiner
  /// lock WITHOUT draining the publication list, so a concurrent
  /// inc_batch is provably abandoned mid-publication, then release and
  /// assert the requester self-serves. Not part of the counter API.
  bool try_lock_combiner_for_test() {
    return !lock_.exchange(true, std::memory_order_acquire);
  }
  void unlock_combiner_for_test() {
    lock_.store(false, std::memory_order_release);
  }
  /// Pending publication records (test introspection; exact only while
  /// the caller holds the combiner lock).
  std::size_t pending_publications_for_test() const {
    std::size_t n = 0;
    for (std::size_t i = 0; i < num_slots_; ++i) {
      if (slots_[i].req.load(std::memory_order_acquire) != 0) ++n;
    }
    return n;
  }

 private:
  /// One pass over the publication list, serving every pending request
  /// from the sequential counter. Caller holds lock_.
  void combine() {
    std::uint64_t value = counter_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < num_slots_; ++i) {
      Slot& s = slots_[i];
      const std::uint64_t want = s.req.load(std::memory_order_acquire);
      if (want == 0) continue;
      s.base.store(value, std::memory_order_relaxed);
      value += want;
      // release: publishes base (and the counter state behind it) to
      // the requester's req==0 acquire.
      s.req.store(0, std::memory_order_release);
    }
    // release: the NEXT combiner acquires the lock (acquire RMW) and
    // must see this count; concurrent read() callers get a monotone
    // committed value.
    counter_.store(value, std::memory_order_release);
  }

  /// alignas: one publication slot per line — a slot is spun on by its
  /// owner while the combiner writes it; two requesters sharing a line
  /// would invalidate each other's spins on every combiner pass.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> req{0};   ///< pending batch size, 0 = none
    std::atomic<std::uint64_t> base{0};  ///< first ticket, valid at req==0
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t num_slots_{0};
  /// alignas: the combiner lock is try-locked by every waiting thread;
  /// keeping it off the counter's line means those failed exchanges
  /// never steal the line the combiner is accumulating into.
  alignas(64) std::atomic<bool> lock_{false};
  /// Only the lock holder writes; atomic so concurrent read() is a
  /// legal monotone load rather than a data race.
  alignas(64) std::atomic<std::uint64_t> counter_{0};
};

}  // namespace dcnt::shm
