// shm-funnel: an MCS-style combining funnel — a queue lock whose
// holder serves its successors' requests.
//
// Arrivals enqueue a padded per-thread node with one tail exchange,
// link behind their predecessor, and spin LOCALLY on their own node
// (the MCS idea: no global spin line). The thread at the head holds
// the lock and becomes the combiner: it serves its own request from
// the sequential counter, then walks the queue serving each waiting
// successor in place — the waiters' requests funnel into the head,
// which pays the coherence cost for the whole line of them. After a
// bounded combining budget the head hands the lock to the next unserved
// node (which wakes as the new combiner), so no thread fronts the queue
// forever.
//
// Versus shm-flat: flat combining scans a static publication array
// (O(T) per pass, great when most slots are busy); the funnel walks
// exactly the threads that are actually queued and inherits MCS's FIFO
// fairness — a request is served after at most the requests ahead of
// it plus one budget hand-off, where flat combining can overtake
// arbitrarily. Both pay one line transfer per served request; the
// re-ranking between them is the array-scan vs pointer-chase trade the
// SHM table measures.
//
// Node lifecycle safety (the classic MCS argument, restated for the
// combiner): a node is marked kServed only AFTER its successor pointer
// has been consumed — either the link was read, or the tail CAS proved
// no successor can ever link — so a requester that returns (and may
// immediately reuse its node for the next batch) can never be written
// to by a stale combiner, and an enqueuer's prev->next store always
// lands in a node the combiner is still holding.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "shm/shm_counter.hpp"

namespace dcnt::shm {

class FunnelCounter final : public ShmCounter {
 public:
  /// Requests the lock holder serves beyond its own before handing the
  /// lock on. Tests pin it to 1 to force the hand-off path; the default
  /// amortizes one lock migration over a cache-friendly run of serves.
  explicit FunnelCounter(int combine_budget = 64)
      : combine_budget_(combine_budget > 0 ? combine_budget : 1) {}

  std::string name() const override { return "shm-funnel"; }

  void on_threads(std::size_t threads) override {
    num_nodes_ = threads > 0 ? threads : 1;
    nodes_ = std::make_unique<Node[]>(num_nodes_);
  }

  std::uint64_t inc_batch(std::size_t thread, std::uint64_t count) override {
    Node* me = &nodes_[thread % num_nodes_];
    me->next.store(nullptr, std::memory_order_relaxed);
    me->count = count;
    me->status.store(kWaiting, std::memory_order_relaxed);
    Node* prev = tail_.exchange(me, std::memory_order_acq_rel);
    if (prev != nullptr) {
      prev->next.store(me, std::memory_order_release);
      int spins = 0;
      std::uint32_t st;
      while ((st = me->status.load(std::memory_order_acquire)) == kWaiting) {
        if (++spins > 64) std::this_thread::yield();
      }
      if (st == kServed) return me->base;
      // st == kOwner: the previous combiner exhausted its budget and
      // handed us the lock unserved — fall through and combine.
    }

    // Lock holder: serve self, then funnel in the successors.
    std::uint64_t value = counter_.load(std::memory_order_relaxed);
    const std::uint64_t my_base = value;
    me->base = value;
    value += me->count;
    Node* cur = me;
    int budget = combine_budget_;
    for (;;) {
      Node* nxt = cur->next.load(std::memory_order_acquire);
      if (nxt == nullptr) {
        // Commit the count before trying to release: whoever acquires
        // next (via the tail exchange) must see it.
        counter_.store(value, std::memory_order_release);
        Node* expected = cur;
        if (tail_.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
          if (cur != me) cur->status.store(kServed, std::memory_order_release);
          return my_base;
        }
        // An enqueuer already swapped the tail past cur and is about to
        // link; its store is one instruction away.
        int spins = 0;
        while ((nxt = cur->next.load(std::memory_order_acquire)) == nullptr) {
          if (++spins > 64) std::this_thread::yield();
        }
      }
      // cur's successor pointer is consumed, so cur is retireable now
      // (and only now — see the lifecycle note above).
      if (cur != me) cur->status.store(kServed, std::memory_order_release);
      if (budget-- > 0) {
        nxt->base = value;
        value += nxt->count;
        cur = nxt;
      } else {
        // Budget spent: commit and hand the lock (not a served result)
        // to the next waiter, which wakes as the new combiner.
        counter_.store(value, std::memory_order_release);
        nxt->status.store(kOwner, std::memory_order_release);
        return my_base;
      }
    }
  }

  std::uint64_t read() const override {
    // May lag the in-progress combiner's local tally by up to the
    // combining budget; exact at quiescence (every serving run ends by
    // committing before release or hand-off).
    return counter_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::uint32_t kWaiting = 0;
  static constexpr std::uint32_t kServed = 1;
  static constexpr std::uint32_t kOwner = 2;

  /// alignas: one queue node per line — its owner spins on `status`
  /// while the combiner writes `base`/`status` (that pair is true
  /// sharing, the algorithm's one paid transfer per serve); two
  /// threads' nodes sharing a line would add false sharing between
  /// unrelated waiters on top.
  struct alignas(64) Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uint32_t> status{kWaiting};
    std::uint64_t count{0};
    std::uint64_t base{0};
  };

  std::unique_ptr<Node[]> nodes_;
  std::size_t num_nodes_{0};
  const int combine_budget_;
  /// alignas: the tail is exchanged by every arriving thread; the
  /// counter word is owned by the current combiner — separate lines so
  /// arrivals never steal the combiner's accumulator line.
  alignas(64) std::atomic<Node*> tail_{nullptr};
  /// Only the lock holder writes; atomic so concurrent read() is a
  /// legal monotone load rather than a data race.
  alignas(64) std::atomic<std::uint64_t> counter_{0};
};

}  // namespace dcnt::shm
