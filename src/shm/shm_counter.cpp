#include "shm/shm_counter.hpp"

#include "shm/atomic_counter.hpp"
#include "shm/flat_combining.hpp"
#include "shm/funnel.hpp"
#include "shm/sharded_counter.hpp"
#include "support/check.hpp"

namespace dcnt::shm {

std::string to_string(ShmKind kind) {
  switch (kind) {
    case ShmKind::kAtomic:
      return "shm-atomic";
    case ShmKind::kFlat:
      return "shm-flat";
    case ShmKind::kFunnel:
      return "shm-funnel";
    case ShmKind::kSharded:
      return "shm-sharded";
  }
  return "shm-atomic";
}

ShmKind shm_kind_from_string(const std::string& name) {
  if (name == "shm-atomic" || name == "atomic") return ShmKind::kAtomic;
  if (name == "shm-flat" || name == "flat") return ShmKind::kFlat;
  if (name == "shm-funnel" || name == "funnel") return ShmKind::kFunnel;
  if (name == "shm-sharded" || name == "sharded") return ShmKind::kSharded;
  DCNT_CHECK_MSG(false,
                 "unknown shm counter (expected shm-atomic, shm-flat, "
                 "shm-funnel or shm-sharded)");
  return ShmKind::kAtomic;
}

bool is_shm_counter_name(const std::string& name) {
  return name.rfind("shm-", 0) == 0;
}

std::vector<ShmKind> all_shm_kinds() {
  return {ShmKind::kAtomic, ShmKind::kFlat, ShmKind::kFunnel,
          ShmKind::kSharded};
}

std::unique_ptr<ShmCounter> make_shm_counter(ShmKind kind) {
  switch (kind) {
    case ShmKind::kAtomic:
      return std::make_unique<AtomicCounter>();
    case ShmKind::kFlat:
      return std::make_unique<FlatCombiningCounter>();
    case ShmKind::kFunnel:
      return std::make_unique<FunnelCounter>();
    case ShmKind::kSharded:
      return std::make_unique<ShardedCounter>();
  }
  return nullptr;
}

}  // namespace dcnt::shm
