// Shared-memory counter baselines (DESIGN.md §16).
//
// The paper prices counting in messages; silicon prices it in cache
// coherence, and a contended fetch_add IS a message protocol — the
// coherence fabric runs it: every RMW on a contended line is a
// request/response pair with whichever core owns the line, so the one
// hot line is the central counter's bottleneck processor in hardware
// form. These baselines make that correspondence measurable on the
// same host as the message-passing protocols:
//
//   shm-atomic   one contended std::atomic<uint64_t>::fetch_add — the
//                hardware central counter (every inc crosses to the
//                line owner; the coherence analogue of m_p = Θ(total)).
//   shm-flat     flat combining: threads publish requests into padded
//                per-thread slots; whoever wins a try-lock becomes the
//                combiner and serves the whole publication list with
//                thread-local accesses — the combining tree's "one
//                processor pays for the batch" idea, depth 1.
//   shm-funnel   an MCS-style combining funnel: arrivals enqueue on a
//                lock queue; the head serves its successors' requests
//                while they spin locally on their own nodes — combining
//                along the queue instead of a tree, with a bounded
//                budget before the lock is handed on.
//   shm-sharded  cache-padded per-thread cells, inc = a fetch_add on
//                your OWN line, read = an exact reduction over all
//                cells. Scales because it answers a weaker question:
//                incs return no ticket. That is the paper's theorem in
//                shared memory — a linearizable fetch-and-inc cannot
//                shed its bottleneck, an inc/read counter can — and the
//                harness checks it against the inc/read criterion
//                (check_inc_read_linearizable), not the ticket one.
//
// The --inflight F knob maps to a per-thread batch: inc_batch(t, F)
// reserves F tickets in one shot (atomic: fetch_add(F); flat/funnel:
// one publication record carrying F; sharded: one cell bump by F). All
// F ops are invoked before the batch is submitted and respond after it
// returns, so the batch linearizes at a single point and the history
// stays honest — and F amortizes coherence transfers exactly as
// message-side combining amortizes RTTs, which is the re-ranking the
// EXPERIMENTS.md SHM table measures.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dcnt::shm {

/// A shared-memory counter driven synchronously by harness threads —
/// the silicon-side counterpart of CounterProtocol. Lifecycle:
/// on_threads(T) once before any thread runs, then threads 0..T-1 call
/// inc_batch concurrently; read() is always safe concurrently and is
/// exact at quiescence.
class ShmCounter {
 public:
  virtual ~ShmCounter() = default;

  /// Table/JSON name ("shm-atomic", ...).
  virtual std::string name() const = 0;

  /// Sizes per-thread state (publication slots, queue nodes, cells).
  /// Called exactly once, before any inc_batch.
  virtual void on_threads(std::size_t threads) = 0;

  /// Reserves `count` consecutive tickets and returns the first:
  /// the calling thread's ops take values base..base+count-1. Counters
  /// with returns_value() == false just add `count` (return value
  /// meaningless, by contract 0). `thread` < the on_threads count;
  /// each thread has at most one call in flight.
  virtual std::uint64_t inc_batch(std::size_t thread,
                                  std::uint64_t count) = 0;

  /// Whether inc_batch hands out globally-ordered tickets. The sharded
  /// counter says no — its increments are fire-and-forget and its
  /// correctness contract is the inc/read criterion over read().
  virtual bool returns_value() const { return true; }

  /// The current count. Safe to call concurrently with incs (the
  /// sharded counter's exact read-side reduction; a plain load for the
  /// rest); exact — equal to the number of incs — once all incs have
  /// returned.
  virtual std::uint64_t read() const = 0;
};

enum class ShmKind {
  kAtomic,
  kFlat,
  kFunnel,
  kSharded,
};

std::string to_string(ShmKind kind);
/// "shm-atomic" / "shm-flat" / "shm-funnel" / "shm-sharded" (the bare
/// suffixes are accepted too); anything else aborts with the
/// vocabulary.
ShmKind shm_kind_from_string(const std::string& name);
/// True when `name` names an shm counter — lets the bench route mixed
/// counter lists between the shm and message-passing harnesses.
bool is_shm_counter_name(const std::string& name);
std::vector<ShmKind> all_shm_kinds();

std::unique_ptr<ShmCounter> make_shm_counter(ShmKind kind);

}  // namespace dcnt::shm
