// shm-sharded: cache-padded per-thread cells with an exact read-side
// reduction — the counter that scales by answering a weaker question.
//
// inc_batch is a fetch_add on the calling thread's OWN cell: after the
// first transfer the line stays in that core's cache, so increments
// cost no coherence traffic at all. The price is the interface: an inc
// returns no ticket (returns_value() == false), because handing out
// globally-ordered tickets from distributed cells would require exactly
// the serialization the sharding removed — the paper's bottleneck
// theorem, restated in shared memory. (Any scheme that pre-leases
// ticket blocks to cells breaks linearizability: a slow thread holding
// low tickets while fast threads hand out high ones yields real-time
// inversions.)
//
// read() sums the cells with acquire loads. The sum is NOT a snapshot —
// cells move while the reader walks them — but it is linearizable for
// the inc/read contract: every inc that responded before the read began
// is release-visible in its cell (counted), every inc invoked after the
// read ended cannot have been (not counted), so the returned value lies
// in the interval check_inc_read_linearizable demands; and because each
// cell is monotone and a later read's loads physically follow an
// earlier read's, reads never go backwards. The harness verifies all of
// this against the live history rather than taking the argument's word.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "shm/shm_counter.hpp"

namespace dcnt::shm {

class ShardedCounter final : public ShmCounter {
 public:
  std::string name() const override { return "shm-sharded"; }

  bool returns_value() const override { return false; }

  void on_threads(std::size_t threads) override {
    num_cells_ = threads > 0 ? threads : 1;
    cells_ = std::make_unique<Cell[]>(num_cells_);
  }

  std::uint64_t inc_batch(std::size_t thread, std::uint64_t count) override {
    // release: pairs with read()'s acquire loads, so an inc that
    // returned before a read began is provably in that read's sum.
    cells_[thread % num_cells_].v.fetch_add(count,
                                            std::memory_order_release);
    return 0;
  }

  std::uint64_t read() const override {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < num_cells_; ++i) {
      sum += cells_[i].v.load(std::memory_order_acquire);
    }
    return sum;
  }

 private:
  /// alignas: one cell per line is the whole design — two threads'
  /// cells sharing a line would reintroduce precisely the coherence
  /// ping-pong the sharding exists to remove (this is false sharing as
  /// a correctness-of-the-experiment concern, not just a perf one).
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t num_cells_{0};
};

}  // namespace dcnt::shm
