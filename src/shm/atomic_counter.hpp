// shm-atomic: one contended fetch_add — the hardware central counter.
//
// Every inc_batch is a single RMW on the one hot line. Under T threads
// the coherence fabric serializes those RMWs by bouncing line ownership
// between cores: each inc costs a request/response pair with the
// current owner, which is exactly the central counter's m_p = Θ(total)
// bottleneck priced in coherence transfers instead of messages. This is
// the baseline the paper's protocols must beat on silicon — and the
// --inflight F batch (fetch_add(F)) is the one mitigation the atomic
// itself offers, amortizing one transfer over F tickets.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "shm/shm_counter.hpp"

namespace dcnt::shm {

class AtomicCounter final : public ShmCounter {
 public:
  std::string name() const override { return "shm-atomic"; }

  void on_threads(std::size_t /*threads*/) override {}

  std::uint64_t inc_batch(std::size_t /*thread*/,
                          std::uint64_t count) override {
    // acq_rel: a thread that observes a later ticket also observes
    // everything the earlier ticket holders published before their
    // fetch_add — the same hand-off a mailbox push provides.
    return value_.fetch_add(count, std::memory_order_acq_rel);
  }

  std::uint64_t read() const override {
    return value_.load(std::memory_order_acquire);
  }

 private:
  /// alignas: the entire point of this counter is that this ONE line is
  /// contended; the padding just keeps neighbouring allocations (or the
  /// vtable pointer's line) from being dragged into the fight.
  alignas(64) std::atomic<std::uint64_t> value_{0};
};

}  // namespace dcnt::shm
