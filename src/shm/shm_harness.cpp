#include "shm/shm_harness.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "concurrent/history.hpp"
#include "support/check.hpp"
#include "traffic/shape.hpp"

namespace dcnt::shm {

namespace {

/// Sense-reversing spin barrier separating the warmup and measured
/// phases. One crossing per run: main + workers (+ sampler) all arrive,
/// the last arrival flips the phase, and the acq_rel fetch_add chain
/// makes every warmup increment happen-before every measured-phase
/// access (so the sampler's first read() already covers all of warmup).
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) : parties_(parties) {}

  void wait() {
    const std::uint64_t phase = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.fetch_add(1, std::memory_order_release);
    } else {
      while (phase_.load(std::memory_order_acquire) == phase) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> arrived_{0};
  std::atomic<std::uint64_t> phase_{0};
};

void fill_latency(ThroughputResult& out, const traffic::TrafficStats& t) {
  out.mean_us = t.mean_us;
  out.p50_us = t.p50_us;
  out.p95_us = t.p95_us;
  out.p99_us = t.p99_us;
  out.p999_us = t.p999_us;
  out.p9999_us = t.p9999_us;
  out.max_us = t.max_us;
  out.slo_us = static_cast<double>(t.slo_ns) / 1e3;
  out.slo_den = t.count;
  out.slo_ok = t.slo_ok;
  out.slo_attainment = t.slo_attainment;
  out.hdr_recorder = !t.exact;
  out.hdr_overflow = t.hdr_overflow;
  out.record_threads = t.record_threads;
  out.slo_phases = t.phases;
  out.slo_high_den = t.high_count;
  out.slo_high_ok = t.high_slo_ok;
  out.slo_high_attainment = t.high_attainment;
  out.slo_low_den = t.low_count;
  out.slo_low_ok = t.low_slo_ok;
  out.slo_low_attainment = t.low_attainment;
}

}  // namespace

ThroughputResult run_shm_throughput(ShmKind kind, const ShmOptions& options) {
  auto counter = make_shm_counter(kind);
  DCNT_CHECK(counter != nullptr);

  const std::size_t threads = options.threads > 0 ? options.threads : 1;
  const std::size_t ops = options.ops > 0 ? options.ops : 1;
  const std::size_t inflight = options.inflight > 0 ? options.inflight : 1;
  const std::size_t warmup = options.warmup;
  const bool tickets = counter->returns_value();
  const bool open_loop = options.open_rate > 0.0;
  // The sampler only makes sense for counters whose read() is itself
  // linearizable mid-run (the sharded reduction). Ticket counters prove
  // their ordering through the values; flat/funnel read() is only exact
  // at quiescence (it may lag a combiner's local tally), so sampling it
  // live would "detect" a violation the contract never promised away.
  const bool sample_reads = !tickets && options.read_samples > 0;

  counter->on_threads(threads);

  ThroughputResult out;
  out.counter = counter->name();
  out.n = threads;
  out.workers = threads;
  out.ops = ops;
  out.warmup = warmup;

  const PlacementPlan plan = plan_placement(options.placement, threads);
  out.placement = to_string(options.placement);
  out.placement_supported =
      options.placement == Placement::kNone || plan.supported;

  traffic::TailRecorder recorder(
      ops, static_cast<std::int64_t>(options.slo_us * 1e3),
      options.exact_cap);
  const traffic::RateShape rate_shape =
      open_loop ? traffic::make_shape(options.shape, options.open_rate,
                                      options.period_s, options.amplitude,
                                      options.duty)
                : traffic::RateShape{};
  const bool phases =
      open_loop && rate_shape.kind == traffic::RateShape::Kind::kBurst;
  if (phases) recorder.enable_phases();

  // Open loop: the deterministic schedule, computed up front so workers
  // only claim-and-sleep on the hot path.
  std::vector<std::int64_t> offsets;
  if (open_loop) {
    traffic::ArrivalTimeline timeline(rate_shape);
    offsets.resize(ops);
    for (std::size_t i = 0; i < ops; ++i) offsets[i] = timeline.next_ns();
  }

  std::unique_ptr<concurrent::HistoryBuffer> history;
  if (options.lin_check) {
    history = std::make_unique<concurrent::HistoryBuffer>(ops);
  }

  // One slot per measured op, written exactly once by the claiming
  // thread; the join orders main's reads.
  std::vector<std::uint64_t> values(tickets ? ops : 0);

  std::atomic<std::size_t> warmup_cursor{0};
  std::atomic<std::size_t> cursor{0};
  std::atomic<std::int64_t> start_ns{0};
  std::atomic<std::size_t> pinned{0};
  std::atomic<bool> sampler_done{false};
  SpinBarrier barrier(threads + 1 + (sample_reads ? 1 : 0));

  auto worker = [&](std::size_t t) {
    if (pin_thread_to_cpu(plan.cpu_for(t))) {
      pinned.fetch_add(1, std::memory_order_acq_rel);
    }
    // Warmup: same batched loop, nothing recorded.
    for (;;) {
      const std::size_t start =
          warmup_cursor.fetch_add(inflight, std::memory_order_relaxed);
      if (start >= warmup) break;
      counter->inc_batch(t, std::min(inflight, warmup - start));
    }
    barrier.wait();
    std::int64_t expected = 0;
    start_ns.compare_exchange_strong(expected, traffic::TailRecorder::now_ns(),
                                     std::memory_order_acq_rel);
    const std::int64_t epoch = start_ns.load(std::memory_order_acquire);

    if (!open_loop) {
      // Closed loop, F ops per batch: invoke all F, submit once,
      // respond all F — the batch linearizes inside every one of the F
      // windows, so the captured history is honest at any F.
      for (;;) {
        const std::size_t start =
            cursor.fetch_add(inflight, std::memory_order_relaxed);
        if (start >= ops) break;
        const std::size_t count = std::min(inflight, ops - start);
        const std::int64_t inv = traffic::TailRecorder::now_ns();
        for (std::size_t j = 0; j < count; ++j) {
          const auto op = static_cast<OpId>(start + j);
          recorder.on_issue(op, inv);
          if (history) history->on_invoke(op, inv);
        }
        const std::uint64_t base = counter->inc_batch(t, count);
        const std::int64_t resp = traffic::TailRecorder::now_ns();
        for (std::size_t j = 0; j < count; ++j) {
          const auto op = static_cast<OpId>(start + j);
          recorder.on_complete(op, resp);
          if (history) {
            history->on_response(
                op, resp,
                tickets ? static_cast<Value>(base + j) : Value{0});
          }
          if (tickets) values[start + j] = base + j;
        }
      }
    } else {
      // Open loop: claim the next scheduled arrival, sleep to its
      // offset, issue one inc. Latency is charged from the scheduled
      // time; the history gets the actual call time.
      for (;;) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= ops) break;
        const std::int64_t scheduled = epoch + offsets[i];
        const auto deadline = std::chrono::steady_clock::time_point(
            std::chrono::nanoseconds(scheduled));
        std::this_thread::sleep_until(deadline);
        const auto op = static_cast<OpId>(i);
        if (phases) {
          recorder.on_issue(
              op, scheduled,
              rate_shape.high_at(static_cast<double>(offsets[i]) / 1e9));
        } else {
          recorder.on_issue(op, scheduled);
        }
        if (history) {
          history->on_invoke(op, traffic::TailRecorder::now_ns());
        }
        const std::uint64_t base = counter->inc_batch(t, 1);
        const std::int64_t resp = traffic::TailRecorder::now_ns();
        recorder.on_complete(op, resp);
        if (history) {
          history->on_response(op, resp,
                               tickets ? static_cast<Value>(base) : Value{0});
        }
        if (tickets) values[i] = base;
      }
    }
  };

  // Sampler (sharded counter only): interleaves exact read()s with the
  // measured increments; its records feed check_inc_read_linearizable.
  std::vector<CounterOpRecord> reads;
  std::thread sampler;
  if (sample_reads) {
    sampler = std::thread([&] {
      barrier.wait();
      while (!sampler_done.load(std::memory_order_acquire)) {
        if (reads.size() < options.read_samples) {
          CounterOpRecord r;
          r.op = static_cast<OpId>(ops + reads.size());
          r.invoked = traffic::TailRecorder::now_ns();
          // The barrier ordered every warmup inc before this read, so
          // the sum covers warmup; subtract it to land in the measured
          // ops' value space the checker expects.
          r.value = static_cast<Value>(counter->read() - warmup);
          r.responded = traffic::TailRecorder::now_ns();
          reads.push_back(r);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    });
  }

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  barrier.wait();
  std::int64_t expected = 0;
  start_ns.compare_exchange_strong(expected, traffic::TailRecorder::now_ns(),
                                   std::memory_order_acq_rel);
  for (auto& th : pool) th.join();
  // Join overhead lands in the wall clock (microseconds against
  // millisecond-scale runs) — acceptable for a rate denominator.
  const std::int64_t end_ns = traffic::TailRecorder::now_ns();
  if (sampler.joinable()) {
    sampler_done.store(true, std::memory_order_release);
    sampler.join();
  }

  out.wall_seconds =
      static_cast<double>(end_ns - start_ns.load(std::memory_order_acquire)) /
      1e9;
  out.ops_per_sec = out.wall_seconds > 0.0
                        ? static_cast<double>(ops) / out.wall_seconds
                        : 0.0;
  fill_latency(out, recorder.stats());
  out.pinned_workers = pinned.load(std::memory_order_acquire);

  // Exactness: every counter lands on precisely warmup + ops.
  const std::uint64_t final_value = counter->read();
  DCNT_CHECK_MSG(final_value == warmup + ops,
                 "shm counter final value != warmup + ops");

  if (tickets) {
    std::vector<std::uint64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    out.values_ok = true;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i] != warmup + i) out.values_ok = false;
    }
    DCNT_CHECK_MSG(out.values_ok,
                   "shm tickets are not a permutation of warmup..warmup+ops-1");
  } else {
    out.values_ok = true;  // the exact-final-value check above IS the claim
  }

  if (history) {
    out.lin_checked = true;
    if (tickets) {
      const auto report = check_linearizable(history->snapshot());
      out.linearizable = report.linearizable;
      out.lin_violations = report.violations;
    } else {
      const auto report =
          check_inc_read_linearizable(history->snapshot(), reads);
      out.linearizable = report.linearizable;
      out.lin_violations = report.violations;
    }
  }
  return out;
}

}  // namespace dcnt::shm
