#include "quorum/weighted.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dcnt {

WeightedMajorityQuorum::WeightedMajorityQuorum(std::vector<std::int64_t> votes)
    : votes_(std::move(votes)) {
  DCNT_CHECK(!votes_.empty());
  for (const auto v : votes_) {
    DCNT_CHECK(v >= 0);
    total_ += v;
  }
  DCNT_CHECK_MSG(total_ >= 1, "at least one vote required");
}

std::unique_ptr<WeightedMajorityQuorum> WeightedMajorityQuorum::uniform(
    std::int64_t n) {
  return std::make_unique<WeightedMajorityQuorum>(
      std::vector<std::int64_t>(static_cast<std::size_t>(n), 1));
}

std::unique_ptr<WeightedMajorityQuorum>
WeightedMajorityQuorum::weighted_leader(std::int64_t n, double fraction) {
  DCNT_CHECK(n >= 2);
  DCNT_CHECK(fraction > 0.0 && fraction < 1.0);
  // Everyone gets 1 vote; the leader's stake is raised to `fraction` of
  // the final total: leader = f/(1-f) * (n-1), rounded up.
  std::vector<std::int64_t> votes(static_cast<std::size_t>(n), 1);
  votes[0] = static_cast<std::int64_t>(
      std::ceil(fraction / (1.0 - fraction) * static_cast<double>(n - 1)));
  return std::make_unique<WeightedMajorityQuorum>(std::move(votes));
}

std::vector<ProcessorId> WeightedMajorityQuorum::quorum(
    std::size_t index) const {
  DCNT_CHECK(index < num_quorums());
  const std::int64_t needed = total_ / 2 + 1;
  const auto n = static_cast<std::int64_t>(votes_.size());
  // Greedy: walk from the rotation offset, preferring heavier voters in
  // a sliding lookahead window so quorums stay small.
  std::vector<ProcessorId> q;
  std::int64_t gathered = 0;
  std::vector<bool> taken(votes_.size(), false);
  std::int64_t cursor = static_cast<std::int64_t>(index);
  while (gathered < needed) {
    // Lookahead window of up to 8 untaken processors; pick the heaviest.
    ProcessorId best = kNoProcessor;
    std::int64_t best_votes = -1;
    std::int64_t scanned = 0;
    for (std::int64_t off = 0; off < n && scanned < 8; ++off) {
      const auto p = static_cast<ProcessorId>((cursor + off) % n);
      if (taken[static_cast<std::size_t>(p)]) continue;
      ++scanned;
      if (votes_[static_cast<std::size_t>(p)] > best_votes) {
        best_votes = votes_[static_cast<std::size_t>(p)];
        best = p;
      }
    }
    DCNT_CHECK_MSG(best != kNoProcessor, "ran out of voters before majority");
    taken[static_cast<std::size_t>(best)] = true;
    if (best_votes > 0) {
      q.push_back(best);
      gathered += best_votes;
    }
    cursor = (best + 1) % n;
  }
  std::sort(q.begin(), q.end());
  return q;
}

std::unique_ptr<QuorumSystem> WeightedMajorityQuorum::clone() const {
  return std::make_unique<WeightedMajorityQuorum>(*this);
}

}  // namespace dcnt
