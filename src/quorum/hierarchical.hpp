// Hierarchical quorum consensus, after Kumar & Malik [KM96] (cited by
// the paper: "Optimizing the costs of hierarchical quorum consensus").
//
// Processors sit at the leaves of a uniform tree of logical groups with
// branching factor b per level. A quorum is formed recursively: at each
// group, pick any ceil((b+1)/2) of its b subgroups and recurse. Two
// quorums intersect: at every level both pick majorities of subgroups,
// so they share a subgroup, and induction pushes the shared choice down
// to a common leaf. With b = 3 the quorum size is n^(log_3 2) ~ n^0.63
// — between majority (n/2) and grid (sqrt n).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quorum/quorum_system.hpp"

namespace dcnt {

class HierarchicalQuorum final : public QuorumSystem {
 public:
  /// n must be branching^levels for some integer levels >= 1.
  HierarchicalQuorum(std::int64_t n, int branching = 3);

  std::int64_t universe_size() const override { return n_; }
  std::size_t num_quorums() const override {
    return static_cast<std::size_t>(n_);
  }
  std::vector<ProcessorId> quorum(std::size_t index) const override;
  std::string name() const override;
  std::unique_ptr<QuorumSystem> clone() const override;

  int branching() const { return branching_; }
  int levels() const { return levels_; }
  /// Quorum size: majority^levels.
  std::int64_t quorum_size() const;

 private:
  void build(std::uint64_t seed, int level, std::int64_t first_leaf,
             std::vector<ProcessorId>* out) const;

  std::int64_t n_;
  int branching_;
  int levels_{0};
};

}  // namespace dcnt
