// Grid quorums in the style of Maekawa's sqrt(N) algorithm [Mae85],
// which the paper cites as the source of the intersection argument
// behind its Hot Spot Lemma.
//
// Processors are arranged in an r x c grid (row-major; a ragged last
// row is allowed). The quorum of element e is e's full row plus one
// element from every row (its column, wrapping within short rows) —
// any two such quorums intersect: the one with the lower (or equal) row
// contributes a full row that the other one's column-crossing hits.
// Quorum size is Theta(sqrt n).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quorum/quorum_system.hpp"

namespace dcnt {

class GridQuorum final : public QuorumSystem {
 public:
  /// cols == 0 picks ceil(sqrt(n)).
  explicit GridQuorum(std::int64_t n, std::int64_t cols = 0);

  std::int64_t universe_size() const override { return n_; }
  std::size_t num_quorums() const override {
    return static_cast<std::size_t>(n_);
  }
  std::vector<ProcessorId> quorum(std::size_t index) const override;
  std::string name() const override { return "grid"; }
  std::unique_ptr<QuorumSystem> clone() const override;

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }

 private:
  std::int64_t row_size(std::int64_t row) const;

  std::int64_t n_;
  std::int64_t cols_;
  std::int64_t rows_;
};

}  // namespace dcnt
