// Majority quorums [GB85]: any floor(n/2)+1 processors. Two majorities
// always intersect by counting. The indexed family rotates a contiguous
// (mod n) window, which balances load perfectly: every processor is in
// the same number of quorums.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quorum/quorum_system.hpp"

namespace dcnt {

class MajorityQuorum final : public QuorumSystem {
 public:
  explicit MajorityQuorum(std::int64_t n);

  std::int64_t universe_size() const override { return n_; }
  std::size_t num_quorums() const override {
    return static_cast<std::size_t>(n_);
  }
  std::vector<ProcessorId> quorum(std::size_t index) const override;
  std::string name() const override { return "majority"; }
  std::unique_ptr<QuorumSystem> clone() const override;

  std::int64_t quorum_size() const { return n_ / 2 + 1; }

 private:
  std::int64_t n_;
};

}  // namespace dcnt
