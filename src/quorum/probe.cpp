#include "quorum/probe.hpp"

#include <optional>

#include "support/check.hpp"

namespace dcnt {

ProbeRun greedy_probe(const QuorumSystem& system,
                      const std::vector<bool>& dead) {
  DCNT_CHECK(static_cast<std::int64_t>(dead.size()) ==
             system.universe_size());
  ProbeRun run;
  // 0 = unknown, 1 = alive, 2 = dead — probes only charge for unknowns.
  std::vector<std::uint8_t> known(dead.size(), 0);
  auto probe = [&](ProcessorId p) {
    auto& cell = known[static_cast<std::size_t>(p)];
    if (cell == 0) {
      ++run.probes;
      cell = dead[static_cast<std::size_t>(p)] ? 2 : 1;
    }
    return cell == 1;
  };

  for (std::size_t i = 0; i < system.num_quorums(); ++i) {
    const auto q = system.quorum(i);
    bool killed = false;
    // Skip candidates already known dead without probing.
    for (const ProcessorId p : q) {
      if (known[static_cast<std::size_t>(p)] == 2) {
        killed = true;
        break;
      }
    }
    if (killed) continue;
    bool alive = true;
    for (const ProcessorId p : q) {
      if (!probe(p)) {
        alive = false;
        break;
      }
    }
    if (alive) {
      run.found_quorum = true;
      return run;
    }
  }
  run.found_quorum = false;
  return run;
}

ProbeComplexityReport probe_complexity(const QuorumSystem& system,
                                       double death_probability,
                                       std::int64_t trials, Rng& rng) {
  DCNT_CHECK(death_probability >= 0.0 && death_probability <= 1.0);
  DCNT_CHECK(trials >= 1);
  ProbeComplexityReport report;
  const auto n = static_cast<std::size_t>(system.universe_size());
  report.all_alive = greedy_probe(system, std::vector<bool>(n, false)).probes;
  report.all_dead = greedy_probe(system, std::vector<bool>(n, true)).probes;
  std::int64_t found = 0;
  for (std::int64_t t = 0; t < trials; ++t) {
    std::vector<bool> dead(n);
    for (std::size_t p = 0; p < n; ++p) {
      dead[p] = rng.next_double() < death_probability;
    }
    const ProbeRun run = greedy_probe(system, dead);
    report.random_probes.add(run.probes);
    if (run.found_quorum) ++found;
  }
  report.find_rate =
      static_cast<double>(found) / static_cast<double>(trials);
  return report;
}

}  // namespace dcnt
