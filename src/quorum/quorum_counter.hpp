// A distributed counter built on read/write quorums — the paper's
// remark that its construction "might be called a Dynamic Quorum
// System" invites the comparison with *static* quorum systems, which
// this counter makes concrete.
//
// Every processor keeps a (version, value) replica. An inc:
//   1. picks the next quorum in rotation,
//   2. READs all members, takes the (version, value) with the highest
//      version — by the intersection property this is the latest write,
//   3. returns that value and WRITEs (version+1, value+1) back to the
//      same quorum, completing after all acks.
//
// This is correct in the paper's sequential model (§2: operations do
// not overlap). It is *not* a linearizable counter under concurrency —
// two overlapping incs could read the same version — which is itself an
// instructive contrast with the tree counter; the harness only drives
// it sequentially.
//
// Load: 4 messages per member per inc (read/reply/write/ack), so the
// bottleneck is governed by the quorum system's load — Theta(1) for
// singleton (central counter in disguise), Theta(sqrt n / n)·ops for
// grids, etc. Whatever the quorum system, the Lower Bound Theorem's
// Omega(k) still applies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quorum/quorum_system.hpp"
#include "sim/protocol.hpp"

namespace dcnt {

class QuorumCounter final : public CounterProtocol {
 public:
  explicit QuorumCounter(std::shared_ptr<const QuorumSystem> system);

  static constexpr std::int32_t kTagRead = 1;       ///< []
  static constexpr std::int32_t kTagReadReply = 2;  ///< [version, value]
  static constexpr std::int32_t kTagWrite = 3;      ///< [version, value]
  static constexpr std::int32_t kTagAck = 4;        ///< []

  std::size_t num_processors() const override;
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override;
  void on_message(Context& ctx, const Message& msg) override;
  std::unique_ptr<CounterProtocol> clone_counter() const override;
  bool try_assign_from(const Protocol& other) override {
    return protocol_assign(*this, other);
  }
  std::string name() const override;
  void check_quiescent(std::size_t ops_completed) const override;

  const QuorumSystem& system() const { return *system_; }

 private:
  struct Replica {
    std::int64_t version{0};
    Value value{0};
  };
  struct Pending {
    OpId op{kNoOp};
    ProcessorId origin{kNoProcessor};
    std::vector<ProcessorId> quorum;
    int awaiting{0};
    std::int64_t best_version{-1};
    Value best_value{0};
    bool writing{false};
  };

  Pending* find_pending(OpId op);
  void absorb_read(Context& ctx, Pending& pending, std::int64_t version,
                   Value value);
  void begin_write(Context& ctx, Pending& pending);
  void absorb_ack(Context& ctx, Pending& pending);

  /// Shared immutable quorum structure (cheap to clone the counter).
  std::shared_ptr<const QuorumSystem> system_;
  std::vector<Replica> replicas_;
  std::vector<Pending> pending_;
  std::size_t rotation_{0};
};

}  // namespace dcnt
