// Probe complexity of quorum systems, after Peleg & Wool [PW96] (cited
// by the paper: "How to be an efficient snoop, or the probe complexity
// of quorum systems").
//
// Setting: an external observer probes elements one at a time, each
// probe revealing whether that element is alive, and must either
// exhibit a fully-alive quorum or certify that none exists (i.e. the
// dead set hits every quorum). The probe complexity is the number of
// probes a strategy needs in the worst case; [PW96] shows crumbling
// walls achieve O(sqrt n) while some systems force Omega(n).
//
// We implement the natural greedy strategy — chase one candidate quorum
// at a time, discarding every candidate a discovered-dead element kills
// — and measure probes over random failure sets, plus the
// deterministic all-alive / all-dead extremes.
#pragma once

#include <cstdint>
#include <vector>

#include "quorum/quorum_system.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace dcnt {

struct ProbeRun {
  bool found_quorum{false};
  std::int64_t probes{0};
};

/// Greedy probing of `system` against a fixed dead set (dead[p] = true
/// means p does not answer). Enumerates the indexed family; aborts only
/// when every indexed quorum is killed.
ProbeRun greedy_probe(const QuorumSystem& system,
                      const std::vector<bool>& dead);

struct ProbeComplexityReport {
  /// Probes with everyone alive (= size of the first quorum chased).
  std::int64_t all_alive{0};
  /// Probes to certify failure with everyone dead.
  std::int64_t all_dead{0};
  /// Distribution over random dead sets with death probability p.
  Summary random_probes;
  double find_rate{0.0};  ///< fraction of random runs that found a quorum
};

ProbeComplexityReport probe_complexity(const QuorumSystem& system,
                                       double death_probability,
                                       std::int64_t trials, Rng& rng);

}  // namespace dcnt
