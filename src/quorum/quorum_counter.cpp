#include "quorum/quorum_counter.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace dcnt {

QuorumCounter::QuorumCounter(std::shared_ptr<const QuorumSystem> system)
    : system_(std::move(system)) {
  DCNT_CHECK(system_ != nullptr);
  DCNT_CHECK(system_->universe_size() >= 1);
  replicas_.resize(static_cast<std::size_t>(system_->universe_size()));
}

std::size_t QuorumCounter::num_processors() const {
  return static_cast<std::size_t>(system_->universe_size());
}

QuorumCounter::Pending* QuorumCounter::find_pending(OpId op) {
  for (auto& p : pending_) {
    if (p.op == op) return &p;
  }
  return nullptr;
}

void QuorumCounter::start_inc(Context& ctx, ProcessorId origin, OpId op) {
  Pending pending;
  pending.op = op;
  pending.origin = origin;
  pending.quorum = system_->quorum(rotation_ % system_->num_quorums());
  ++rotation_;
  pending_.push_back(std::move(pending));
  Pending& p = pending_.back();

  // Round 1: read every member. The origin's own replica (if it is a
  // member) is read locally, without a message.
  std::int64_t local_version = -1;
  Value local_value = 0;
  bool origin_is_member = false;
  int remote = 0;
  for (const ProcessorId member : p.quorum) {
    if (member == origin) {
      origin_is_member = true;
      const Replica& r = replicas_[static_cast<std::size_t>(member)];
      local_version = r.version;
      local_value = r.value;
      continue;
    }
    ++remote;
    Message m;
    m.src = origin;
    m.dst = member;
    m.tag = kTagRead;
    ctx.send(std::move(m));
  }
  p.awaiting = remote;
  if (origin_is_member) absorb_read(ctx, p, local_version, local_value);
  if (remote == 0 && !p.writing) begin_write(ctx, p);
}

void QuorumCounter::on_message(Context& ctx, const Message& msg) {
  switch (msg.tag) {
    case kTagRead: {
      const Replica& r = replicas_[static_cast<std::size_t>(msg.dst)];
      Message reply;
      reply.src = msg.dst;
      reply.dst = msg.src;
      reply.tag = kTagReadReply;
      reply.args = {r.version, r.value};
      ctx.send(std::move(reply));
      return;
    }
    case kTagReadReply: {
      Pending* p = find_pending(msg.op);
      DCNT_CHECK(p != nullptr && !p->writing);
      --p->awaiting;
      absorb_read(ctx, *p, msg.args.at(0), msg.args.at(1));
      if (p->awaiting == 0) begin_write(ctx, *p);
      return;
    }
    case kTagWrite: {
      Replica& r = replicas_[static_cast<std::size_t>(msg.dst)];
      if (msg.args.at(0) > r.version) {
        r.version = msg.args.at(0);
        r.value = msg.args.at(1);
      }
      Message ack;
      ack.src = msg.dst;
      ack.dst = msg.src;
      ack.tag = kTagAck;
      ctx.send(std::move(ack));
      return;
    }
    case kTagAck: {
      Pending* p = find_pending(msg.op);
      DCNT_CHECK(p != nullptr && p->writing);
      --p->awaiting;
      absorb_ack(ctx, *p);
      return;
    }
    default:
      DCNT_CHECK_MSG(false, "unknown message tag");
  }
}

void QuorumCounter::absorb_read(Context& ctx, Pending& pending,
                                std::int64_t version, Value value) {
  if (version > pending.best_version) {
    pending.best_version = version;
    pending.best_value = value;
  }
  (void)ctx;
}

void QuorumCounter::begin_write(Context& ctx, Pending& pending) {
  DCNT_CHECK(pending.awaiting == 0);
  pending.writing = true;
  const std::int64_t new_version = pending.best_version + 1;
  const Value new_value = pending.best_value + 1;
  int remote = 0;
  for (const ProcessorId member : pending.quorum) {
    if (member == pending.origin) {
      Replica& r = replicas_[static_cast<std::size_t>(member)];
      if (new_version > r.version) {
        r.version = new_version;
        r.value = new_value;
      }
      continue;
    }
    ++remote;
    Message m;
    m.src = pending.origin;
    m.dst = member;
    m.tag = kTagWrite;
    m.args = {new_version, new_value};
    ctx.send(std::move(m));
  }
  pending.awaiting = remote;
  absorb_ack(ctx, pending);  // completes immediately if no remote member
}

void QuorumCounter::absorb_ack(Context& ctx, Pending& pending) {
  if (pending.awaiting > 0) return;
  const OpId op = pending.op;
  const Value result = pending.best_value;
  pending_.erase(
      std::find_if(pending_.begin(), pending_.end(),
                   [op](const Pending& p) { return p.op == op; }));
  ctx.complete(op, result);
}

std::unique_ptr<CounterProtocol> QuorumCounter::clone_counter() const {
  return std::make_unique<QuorumCounter>(*this);
}

std::string QuorumCounter::name() const {
  std::ostringstream os;
  os << "quorum(" << system_->name() << ")";
  return os.str();
}

void QuorumCounter::check_quiescent(std::size_t ops_completed) const {
  DCNT_CHECK(pending_.empty());
  std::int64_t best_version = 0;
  Value best_value = 0;
  for (const auto& r : replicas_) {
    if (r.version > best_version) {
      best_version = r.version;
      best_value = r.value;
    }
  }
  DCNT_CHECK(best_version == static_cast<std::int64_t>(ops_completed));
  DCNT_CHECK(best_value == static_cast<Value>(ops_completed));
}

}  // namespace dcnt
