#include "quorum/quorum_system.hpp"

#include "support/check.hpp"

namespace dcnt {

SingletonQuorum::SingletonQuorum(std::int64_t n, ProcessorId holder)
    : n_(n), holder_(holder) {
  DCNT_CHECK(n > 0);
  DCNT_CHECK(holder >= 0 && holder < n);
}

std::vector<ProcessorId> SingletonQuorum::quorum(std::size_t index) const {
  DCNT_CHECK(index < num_quorums());
  return {holder_};
}

std::unique_ptr<QuorumSystem> SingletonQuorum::clone() const {
  return std::make_unique<SingletonQuorum>(*this);
}

}  // namespace dcnt
