#include "quorum/tree_quorum.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt {

TreeQuorum::TreeQuorum(std::int64_t n) : n_(n) { DCNT_CHECK(n >= 1); }

void TreeQuorum::build(std::uint64_t seed, std::int64_t node,
                       std::vector<ProcessorId>* out) const {
  const std::int64_t left = 2 * node + 1;
  const std::int64_t right = 2 * node + 2;
  const bool has_left = left < n_;
  const bool has_right = right < n_;
  if (!has_left && !has_right) {
    out->push_back(static_cast<ProcessorId>(node));
    return;
  }
  const std::uint64_t coin = mix64(seed ^ (0x9E37ULL * static_cast<std::uint64_t>(node) + 1));
  if (!has_right) {
    // Single-child node: keeping v preserves intersection regardless of
    // whether we also descend.
    out->push_back(static_cast<ProcessorId>(node));
    if (coin % 2 == 0) build(seed, left, out);
    return;
  }
  switch (coin % 3) {
    case 0:
      out->push_back(static_cast<ProcessorId>(node));
      build(seed, left, out);
      break;
    case 1:
      out->push_back(static_cast<ProcessorId>(node));
      build(seed, right, out);
      break;
    default:
      build(seed, left, out);
      build(seed, right, out);
      break;
  }
}

std::vector<ProcessorId> TreeQuorum::quorum(std::size_t index) const {
  DCNT_CHECK(index < num_quorums());
  std::vector<ProcessorId> q;
  build(mix64(static_cast<std::uint64_t>(index) + 0xABCDULL), 0, &q);
  std::sort(q.begin(), q.end());
  q.erase(std::unique(q.begin(), q.end()), q.end());
  return q;
}

std::unique_ptr<QuorumSystem> TreeQuorum::clone() const {
  return std::make_unique<TreeQuorum>(*this);
}

}  // namespace dcnt
