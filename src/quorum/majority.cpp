#include "quorum/majority.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dcnt {

MajorityQuorum::MajorityQuorum(std::int64_t n) : n_(n) { DCNT_CHECK(n >= 1); }

std::vector<ProcessorId> MajorityQuorum::quorum(std::size_t index) const {
  DCNT_CHECK(index < num_quorums());
  std::vector<ProcessorId> q;
  const std::int64_t size = quorum_size();
  q.reserve(static_cast<std::size_t>(size));
  for (std::int64_t i = 0; i < size; ++i) {
    q.push_back(static_cast<ProcessorId>(
        (static_cast<std::int64_t>(index) + i) % n_));
  }
  std::sort(q.begin(), q.end());
  return q;
}

std::unique_ptr<QuorumSystem> MajorityQuorum::clone() const {
  return std::make_unique<MajorityQuorum>(*this);
}

}  // namespace dcnt
