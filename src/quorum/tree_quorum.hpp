// Tree quorums (Agrawal & El Abbadi style majority-of-tree), one of the
// classic constructions in the lineage the paper surveys ([KM96]'s
// hierarchical quorum consensus descends from it).
//
// Processors form a binary tree in heap order. A quorum is built
// recursively at each node v:
//   * take v and a quorum of one child subtree, or
//   * skip v and take quorums of *both* child subtrees.
// Any two quorums built this way intersect (induction over the tree:
// if both keep the root they share it; if one skips it, it covers both
// subtrees and meets the other's subtree quorum).
//
// The indexed family derives its choices pseudo-randomly from the index,
// so rotation spreads load over the tree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quorum/quorum_system.hpp"

namespace dcnt {

class TreeQuorum final : public QuorumSystem {
 public:
  explicit TreeQuorum(std::int64_t n);

  std::int64_t universe_size() const override { return n_; }
  std::size_t num_quorums() const override {
    return static_cast<std::size_t>(n_);
  }
  std::vector<ProcessorId> quorum(std::size_t index) const override;
  std::string name() const override { return "tree-quorum"; }
  std::unique_ptr<QuorumSystem> clone() const override;

 private:
  void build(std::uint64_t seed, std::int64_t node,
             std::vector<ProcessorId>* out) const;

  std::int64_t n_;
};

}  // namespace dcnt
