#include "quorum/projective_plane.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

#include "support/check.hpp"

namespace dcnt {

namespace {

bool is_prime(int q) {
  if (q < 2) return false;
  for (int d = 2; d * d <= q; ++d) {
    if (q % d == 0) return false;
  }
  return true;
}

using Triple = std::array<int, 3>;

/// All projective triples over GF(q), normalized so the first nonzero
/// coordinate is 1. Exactly q^2 + q + 1 of them.
std::vector<Triple> normalized_triples(int q) {
  std::vector<Triple> out;
  // (1, y, z), (0, 1, z), (0, 0, 1)
  for (int y = 0; y < q; ++y) {
    for (int z = 0; z < q; ++z) {
      out.push_back({1, y, z});
    }
  }
  for (int z = 0; z < q; ++z) {
    out.push_back({0, 1, z});
  }
  out.push_back({0, 0, 1});
  return out;
}

}  // namespace

ProjectivePlaneQuorum::ProjectivePlaneQuorum(int q) : q_(q) {
  DCNT_CHECK_MSG(is_prime(q), "projective-plane order must be prime here");
  const auto points = normalized_triples(q);
  const auto line_coords = normalized_triples(q);
  n_ = static_cast<std::int64_t>(points.size());
  DCNT_CHECK(n_ == static_cast<std::int64_t>(q) * q + q + 1);

  lines_.reserve(line_coords.size());
  for (const Triple& line : line_coords) {
    std::vector<ProcessorId> members;
    for (std::size_t p = 0; p < points.size(); ++p) {
      const int dot = (line[0] * points[p][0] + line[1] * points[p][1] +
                       line[2] * points[p][2]) %
                      q;
      if (dot == 0) members.push_back(static_cast<ProcessorId>(p));
    }
    DCNT_CHECK_MSG(static_cast<int>(members.size()) == q + 1,
                   "every line of PG(2,q) has q+1 points");
    std::sort(members.begin(), members.end());
    lines_.push_back(std::move(members));
  }
}

std::vector<std::int64_t> ProjectivePlaneQuorum::supported_sizes(
    std::int64_t max_n) {
  std::vector<std::int64_t> sizes;
  for (int q = 2;; ++q) {
    if (!is_prime(q)) continue;
    const std::int64_t n = static_cast<std::int64_t>(q) * q + q + 1;
    if (n > max_n) break;
    sizes.push_back(n);
  }
  return sizes;
}

int ProjectivePlaneQuorum::order_for(std::int64_t n) {
  int best = 0;
  for (int q = 2; static_cast<std::int64_t>(q) * q + q + 1 <= n; ++q) {
    if (is_prime(q)) best = q;
  }
  return best;
}

std::vector<ProcessorId> ProjectivePlaneQuorum::quorum(
    std::size_t index) const {
  DCNT_CHECK(index < lines_.size());
  return lines_[index];
}

std::string ProjectivePlaneQuorum::name() const {
  std::ostringstream os;
  os << "projective-plane(q=" << q_ << ")";
  return os.str();
}

std::unique_ptr<QuorumSystem> ProjectivePlaneQuorum::clone() const {
  return std::make_unique<ProjectivePlaneQuorum>(*this);
}

}  // namespace dcnt
