// Finite-projective-plane quorums — the classical optimum in the
// lineage the paper surveys (Maekawa [Mae85] proposed FPP quorums for
// sqrt(N) mutual exclusion; Erdős–Lovász [EL75] and Lovász [Lov73]
// underpin the covering bounds).
//
// For a prime q, the projective plane PG(2,q) has n = q^2 + q + 1
// points and equally many lines; every line holds q+1 ~ sqrt(n) points
// and **any two lines meet in exactly one point** — the tightest
// possible intersection, which minimizes both quorum size and load
// simultaneously (load 1/sqrt(n) under uniform rotation).
//
// Construction: points and lines are the normalized nonzero triples
// over GF(q) (first nonzero coordinate = 1); point P lies on line L iff
// <P, L> = 0 (mod q).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quorum/quorum_system.hpp"

namespace dcnt {

class ProjectivePlaneQuorum final : public QuorumSystem {
 public:
  /// q must be prime (the GF(q) construction; prime powers would need
  /// field arithmetic). Universe size is q^2 + q + 1.
  explicit ProjectivePlaneQuorum(int q);

  /// Universe sizes realizable by prime orders up to `max_n`:
  /// 7, 13, 31, 57, 133, 183, ...
  static std::vector<std::int64_t> supported_sizes(std::int64_t max_n);
  /// Largest prime q with q^2+q+1 <= n (0 if none).
  static int order_for(std::int64_t n);

  std::int64_t universe_size() const override { return n_; }
  std::size_t num_quorums() const override { return lines_.size(); }
  std::vector<ProcessorId> quorum(std::size_t index) const override;
  std::string name() const override;
  std::unique_ptr<QuorumSystem> clone() const override;

  int order() const { return q_; }

 private:
  int q_;
  std::int64_t n_;
  std::vector<std::vector<ProcessorId>> lines_;
};

}  // namespace dcnt
