#include "quorum/hierarchical.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt {

HierarchicalQuorum::HierarchicalQuorum(std::int64_t n, int branching)
    : n_(n), branching_(branching) {
  DCNT_CHECK(branching >= 2);
  std::int64_t size = 1;
  while (size < n_) {
    size *= branching_;
    ++levels_;
  }
  DCNT_CHECK_MSG(size == n_, "hierarchical quorum needs n == branching^levels");
}

std::int64_t HierarchicalQuorum::quorum_size() const {
  const std::int64_t majority = branching_ / 2 + 1;
  std::int64_t size = 1;
  for (int l = 0; l < levels_; ++l) size *= majority;
  return size;
}

void HierarchicalQuorum::build(std::uint64_t seed, int level,
                               std::int64_t first_leaf,
                               std::vector<ProcessorId>* out) const {
  if (level == levels_) {
    out->push_back(static_cast<ProcessorId>(first_leaf));
    return;
  }
  // Subtree width at this level.
  std::int64_t width = 1;
  for (int l = level + 1; l < levels_; ++l) width *= branching_;
  // Pick a majority of subgroups, pseudo-randomly from the seed.
  const int majority = branching_ / 2 + 1;
  std::vector<int> order(static_cast<std::size_t>(branching_));
  for (int b = 0; b < branching_; ++b) order[static_cast<std::size_t>(b)] = b;
  // Deterministic shuffle driven by (seed, level, first_leaf).
  std::uint64_t h = seed ^ (static_cast<std::uint64_t>(level) << 48) ^
                    static_cast<std::uint64_t>(first_leaf) * 0x9E3779B97F4A7C15ULL;
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(mix64(h + i) % i);
    std::swap(order[i - 1], order[j]);
  }
  for (int pick = 0; pick < majority; ++pick) {
    const int b = order[static_cast<std::size_t>(pick)];
    build(seed, level + 1, first_leaf + b * width, out);
  }
}

std::vector<ProcessorId> HierarchicalQuorum::quorum(std::size_t index) const {
  DCNT_CHECK(index < num_quorums());
  std::vector<ProcessorId> q;
  q.reserve(static_cast<std::size_t>(quorum_size()));
  build(mix64(static_cast<std::uint64_t>(index) + 0xFEEDULL), 0, 0, &q);
  std::sort(q.begin(), q.end());
  DCNT_CHECK(static_cast<std::int64_t>(q.size()) == quorum_size());
  return q;
}

std::string HierarchicalQuorum::name() const {
  std::ostringstream os;
  os << "hierarchical(b=" << branching_ << ")";
  return os.str();
}

std::unique_ptr<QuorumSystem> HierarchicalQuorum::clone() const {
  return std::make_unique<HierarchicalQuorum>(*this);
}

}  // namespace dcnt
