// Structural analysis of quorum systems: the pairwise intersection
// property (the precondition of the paper's Hot Spot Lemma) and the
// load a rotation strategy induces — the quorum-world analogue of the
// paper's bottleneck measure.
#pragma once

#include <cstdint>
#include <vector>

#include "quorum/quorum_system.hpp"
#include "support/rng.hpp"

namespace dcnt {

struct IntersectionReport {
  bool all_intersect{true};
  std::int64_t pairs_checked{0};
  /// First offending pair if any.
  std::size_t bad_a{0};
  std::size_t bad_b{0};
};

/// Verifies quorum(i) ∩ quorum(j) != ∅. Exhaustive when the family has
/// at most `exhaustive_limit` quorums; otherwise checks `samples` random
/// pairs.
IntersectionReport check_pairwise_intersection(const QuorumSystem& system,
                                               std::size_t exhaustive_limit,
                                               std::int64_t samples, Rng& rng);

struct LoadReportQ {
  /// max_p (hits_p / picks): the fraction of operations touching the
  /// busiest element — Naor-Wool load of the rotation strategy.
  double max_load{0.0};
  double mean_quorum_size{0.0};
  std::int64_t max_quorum_size{0};
  std::vector<std::int64_t> hits;  ///< per element
};

/// Simulates `picks` rotation picks (indices 0,1,2,... mod family size)
/// and tallies element usage.
LoadReportQ rotation_load(const QuorumSystem& system, std::int64_t picks);

}  // namespace dcnt
