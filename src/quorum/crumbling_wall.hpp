// Crumbling walls, after Peleg & Wool [PW95] (cited by the paper):
// "a class of practical and efficient quorum systems".
//
// The universe is laid out in rows of (possibly different) widths. A
// quorum is one *full* row plus one representative from every row below
// it. Two quorums intersect: if they use the same full row they share
// it; otherwise the higher full row is hit by the lower quorum's
// representative in that row... precisely, the quorum whose full row is
// higher (smaller index) owns a representative in the other's full row.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quorum/quorum_system.hpp"

namespace dcnt {

class CrumblingWall final : public QuorumSystem {
 public:
  /// Explicit row widths (must sum to n, each >= 1).
  CrumblingWall(std::int64_t n, std::vector<std::int64_t> widths);

  /// The "CW(triangle)" instance: widths 1, 2, 3, ... (last row ragged).
  static std::unique_ptr<CrumblingWall> triangle(std::int64_t n);
  /// Uniform width rows.
  static std::unique_ptr<CrumblingWall> uniform(std::int64_t n,
                                                std::int64_t width);

  std::int64_t universe_size() const override { return n_; }
  std::size_t num_quorums() const override;
  std::vector<ProcessorId> quorum(std::size_t index) const override;
  std::string name() const override { return "crumbling-wall"; }
  std::unique_ptr<QuorumSystem> clone() const override;

  std::size_t num_rows() const { return widths_.size(); }

 private:
  std::int64_t n_;
  std::vector<std::int64_t> widths_;
  std::vector<std::int64_t> row_start_;
};

}  // namespace dcnt
