#include "quorum/quorum_analysis.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dcnt {

namespace {
bool sorted_sets_intersect(const std::vector<ProcessorId>& a,
                           const std::vector<ProcessorId>& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}
}  // namespace

IntersectionReport check_pairwise_intersection(const QuorumSystem& system,
                                               std::size_t exhaustive_limit,
                                               std::int64_t samples,
                                               Rng& rng) {
  IntersectionReport report;
  const std::size_t m = system.num_quorums();
  if (m <= exhaustive_limit) {
    std::vector<std::vector<ProcessorId>> quorums(m);
    for (std::size_t i = 0; i < m; ++i) quorums[i] = system.quorum(i);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i; j < m; ++j) {
        ++report.pairs_checked;
        if (!sorted_sets_intersect(quorums[i], quorums[j])) {
          report.all_intersect = false;
          report.bad_a = i;
          report.bad_b = j;
          return report;
        }
      }
    }
    return report;
  }
  for (std::int64_t s = 0; s < samples; ++s) {
    const auto i = static_cast<std::size_t>(rng.next_below(m));
    const auto j = static_cast<std::size_t>(rng.next_below(m));
    ++report.pairs_checked;
    if (!sorted_sets_intersect(system.quorum(i), system.quorum(j))) {
      report.all_intersect = false;
      report.bad_a = i;
      report.bad_b = j;
      return report;
    }
  }
  return report;
}

LoadReportQ rotation_load(const QuorumSystem& system, std::int64_t picks) {
  DCNT_CHECK(picks > 0);
  LoadReportQ report;
  report.hits.assign(static_cast<std::size_t>(system.universe_size()), 0);
  std::int64_t total_size = 0;
  for (std::int64_t pick = 0; pick < picks; ++pick) {
    const auto q = system.quorum(static_cast<std::size_t>(pick) %
                                 system.num_quorums());
    total_size += static_cast<std::int64_t>(q.size());
    report.max_quorum_size =
        std::max(report.max_quorum_size, static_cast<std::int64_t>(q.size()));
    for (const ProcessorId p : q) {
      ++report.hits[static_cast<std::size_t>(p)];
    }
  }
  const std::int64_t busiest =
      *std::max_element(report.hits.begin(), report.hits.end());
  report.max_load =
      static_cast<double>(busiest) / static_cast<double>(picks);
  report.mean_quorum_size =
      static_cast<double>(total_size) / static_cast<double>(picks);
  return report;
}

}  // namespace dcnt
