#include "quorum/crumbling_wall.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt {

CrumblingWall::CrumblingWall(std::int64_t n, std::vector<std::int64_t> widths)
    : n_(n), widths_(std::move(widths)) {
  DCNT_CHECK(n >= 1);
  DCNT_CHECK(!widths_.empty());
  std::int64_t total = 0;
  row_start_.reserve(widths_.size());
  for (const auto w : widths_) {
    DCNT_CHECK(w >= 1);
    row_start_.push_back(total);
    total += w;
  }
  DCNT_CHECK_MSG(total == n, "row widths must sum to n");
}

std::unique_ptr<CrumblingWall> CrumblingWall::triangle(std::int64_t n) {
  std::vector<std::int64_t> widths;
  std::int64_t remaining = n;
  std::int64_t w = 1;
  while (remaining > 0) {
    const std::int64_t take = std::min(w, remaining);
    widths.push_back(take);
    remaining -= take;
    ++w;
  }
  return std::make_unique<CrumblingWall>(n, std::move(widths));
}

std::unique_ptr<CrumblingWall> CrumblingWall::uniform(std::int64_t n,
                                                      std::int64_t width) {
  DCNT_CHECK(width >= 1);
  std::vector<std::int64_t> widths;
  std::int64_t remaining = n;
  while (remaining > 0) {
    const std::int64_t take = std::min(width, remaining);
    widths.push_back(take);
    remaining -= take;
  }
  return std::make_unique<CrumblingWall>(n, std::move(widths));
}

std::size_t CrumblingWall::num_quorums() const {
  return static_cast<std::size_t>(n_);
}

std::vector<ProcessorId> CrumblingWall::quorum(std::size_t index) const {
  DCNT_CHECK(index < num_quorums());
  const auto d = static_cast<std::int64_t>(widths_.size());
  const std::int64_t row = static_cast<std::int64_t>(index) % d;
  std::vector<ProcessorId> q;
  for (std::int64_t c = 0; c < widths_[static_cast<std::size_t>(row)]; ++c) {
    q.push_back(static_cast<ProcessorId>(
        row_start_[static_cast<std::size_t>(row)] + c));
  }
  for (std::int64_t r = row + 1; r < d; ++r) {
    const std::int64_t c =
        static_cast<std::int64_t>(
            mix64(static_cast<std::uint64_t>(index) * 0x5851ULL +
                  static_cast<std::uint64_t>(r)) %
            static_cast<std::uint64_t>(widths_[static_cast<std::size_t>(r)]));
    q.push_back(static_cast<ProcessorId>(
        row_start_[static_cast<std::size_t>(r)] + c));
  }
  std::sort(q.begin(), q.end());
  return q;
}

std::unique_ptr<QuorumSystem> CrumblingWall::clone() const {
  return std::make_unique<CrumblingWall>(*this);
}

}  // namespace dcnt
