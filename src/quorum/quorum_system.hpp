// Quorum systems (paper, Related Work): "a collection of sets of
// elements where every two sets in the collection intersect".
//
// The paper's Hot Spot Lemma is exactly the quorum intersection
// argument (it cites Maekawa [Mae85]), and the authors describe their
// construction as something that "might be called a Dynamic Quorum
// System". This subsystem provides the classic static constructions the
// paper situates itself against, a pairwise-intersection checker, the
// load metric of Naor-Wool style analyses, and a counter built on
// read/write quorums (quorum_counter.hpp) whose bottleneck behaviour the
// benches compare with the paper's tree.
//
// A QuorumSystem exposes an indexed family of quorums; pickers rotate
// through indices to spread load. Every implementation guarantees that
// quorum(i) and quorum(j) intersect for all i, j.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace dcnt {

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  /// Number of elements (processors) in the universe.
  virtual std::int64_t universe_size() const = 0;

  /// Size of the indexed quorum family (pickers rotate modulo this).
  virtual std::size_t num_quorums() const = 0;

  /// The index-th quorum: a sorted, duplicate-free set of processors.
  virtual std::vector<ProcessorId> quorum(std::size_t index) const = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<QuorumSystem> clone() const = 0;
};

/// Degenerate single-element system: every quorum is {holder}. Models
/// the centralized counter inside the quorum framework.
class SingletonQuorum final : public QuorumSystem {
 public:
  SingletonQuorum(std::int64_t n, ProcessorId holder);

  std::int64_t universe_size() const override { return n_; }
  std::size_t num_quorums() const override { return 1; }
  std::vector<ProcessorId> quorum(std::size_t index) const override;
  std::string name() const override { return "singleton"; }
  std::unique_ptr<QuorumSystem> clone() const override;

 private:
  std::int64_t n_;
  ProcessorId holder_;
};

}  // namespace dcnt
