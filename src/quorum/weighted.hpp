// Weighted voting, after Garcia-Molina & Barbara [GB85] (cited by the
// paper: "How to assign votes in a distributed system").
//
// Every processor holds a number of votes; a quorum is any set whose
// votes exceed half the total — two such sets must share a voter by
// counting. Vote assignments interpolate between majority (all equal)
// and a dictatorship (one processor holds a majority by itself, the
// centralized hot spot in quorum clothing).
//
// The indexed family greedily collects votes starting from a rotating
// offset, taking heavier voters first within the window — small quorums,
// deterministic, and biased exactly the way vote weight is.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "quorum/quorum_system.hpp"

namespace dcnt {

class WeightedMajorityQuorum final : public QuorumSystem {
 public:
  /// votes[p] >= 0; total must be >= 1.
  explicit WeightedMajorityQuorum(std::vector<std::int64_t> votes);

  /// Equal votes — plain majority.
  static std::unique_ptr<WeightedMajorityQuorum> uniform(std::int64_t n);
  /// One heavy voter with `fraction` of all votes (0 < fraction < 1).
  static std::unique_ptr<WeightedMajorityQuorum> weighted_leader(
      std::int64_t n, double fraction);

  std::int64_t universe_size() const override {
    return static_cast<std::int64_t>(votes_.size());
  }
  std::size_t num_quorums() const override { return votes_.size(); }
  std::vector<ProcessorId> quorum(std::size_t index) const override;
  std::string name() const override { return "weighted-majority"; }
  std::unique_ptr<QuorumSystem> clone() const override;

  std::int64_t total_votes() const { return total_; }
  std::int64_t votes_of(ProcessorId p) const {
    return votes_[static_cast<std::size_t>(p)];
  }

 private:
  std::vector<std::int64_t> votes_;
  std::int64_t total_{0};
};

}  // namespace dcnt
