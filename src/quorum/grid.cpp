#include "quorum/grid.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dcnt {

GridQuorum::GridQuorum(std::int64_t n, std::int64_t cols) : n_(n) {
  DCNT_CHECK(n >= 1);
  cols_ = cols > 0 ? cols
                   : static_cast<std::int64_t>(
                         std::ceil(std::sqrt(static_cast<double>(n))));
  DCNT_CHECK(cols_ >= 1);
  rows_ = (n_ + cols_ - 1) / cols_;
}

std::int64_t GridQuorum::row_size(std::int64_t row) const {
  const std::int64_t start = row * cols_;
  return std::min(cols_, n_ - start);
}

std::vector<ProcessorId> GridQuorum::quorum(std::size_t index) const {
  DCNT_CHECK(index < num_quorums());
  const auto e = static_cast<std::int64_t>(index);
  const std::int64_t my_row = e / cols_;
  const std::int64_t my_col = e % cols_;
  std::vector<ProcessorId> q;
  // Full own row...
  for (std::int64_t c = 0; c < row_size(my_row); ++c) {
    q.push_back(static_cast<ProcessorId>(my_row * cols_ + c));
  }
  // ...plus a representative in every other row (own column, wrapped
  // into short rows).
  for (std::int64_t r = 0; r < rows_; ++r) {
    if (r == my_row) continue;
    const std::int64_t c = my_col % row_size(r);
    q.push_back(static_cast<ProcessorId>(r * cols_ + c));
  }
  std::sort(q.begin(), q.end());
  q.erase(std::unique(q.begin(), q.end()), q.end());
  return q;
}

std::unique_ptr<QuorumSystem> GridQuorum::clone() const {
  return std::make_unique<GridQuorum>(*this);
}

}  // namespace dcnt
