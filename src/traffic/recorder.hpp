// TailRecorder: the latency recorder of the traffic engine
// (DESIGN.md §14), shared by the threaded-runtime workload driver and
// the socket cluster controller.
//
// Two storage modes, chosen once at construction from the run size:
//   - exact (small runs): one latency slot per op; stats() computes
//     nearest-rank percentiles over the raw samples, byte-for-byte what
//     the old LatencyRecorder reported. The reference the HDR mode is
//     tested against.
//   - hdr (large runs): a LogHistogram — O(buckets) storage however
//     many ops run, ~1% relative error on every percentile, mergeable
//     across workers and nodes. 10^6–10^7-op open-loop runs use this.
//
// Timestamps: on_issue stores the op's *scheduled* time (open loop: the
// arrival timeline's epoch + offset; closed loop: the send time, which
// IS the scheduled time — a closed-loop client cannot want an op before
// its previous one completed). on_complete measures against that stamp,
// so an open-loop run charges a backlogged system for every nanosecond
// between when the op should have arrived and when it finished —
// coordinated omission, by construction, cannot hide.
//
// SLO attainment: the threshold comparison happens on the raw latency
// before any bucketing, so slo_ok / count is exact in both modes. The
// denominator is every completed op (scheduled arrivals that never
// completed would be caught by the harness' permutation check aborting,
// not silently dropped from the fraction).
//
// Per-thread counters: completions are tallied per recording thread
// (cache-line-padded slots, thread-registered on first use), so a run
// reports how many threads actually completed ops — the NVSL-harness
// style per-worker op counter, without threading worker ids through
// every completion callback.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/types.hpp"
#include "support/stats.hpp"
#include "traffic/histogram.hpp"

namespace dcnt::traffic {

/// Everything a bench row reports about a run's latency tail. All
/// latencies in microseconds (the tables' unit).
struct TrafficStats {
  std::int64_t count{0};
  double mean_us{0.0};
  double p50_us{0.0};
  double p95_us{0.0};
  double p99_us{0.0};
  double p999_us{0.0};
  double p9999_us{0.0};
  double max_us{0.0};
  /// SLO threshold in ns (0 = no SLO configured: slo_ok == count and
  /// attainment == 1 vacuously).
  std::int64_t slo_ns{0};
  std::int64_t slo_ok{0};
  /// slo_ok / count; 0 when count == 0.
  double slo_attainment{0.0};
  /// HDR mode: recordings that saturated the top bucket (0 in exact
  /// mode; max_us stays exact either way).
  std::int64_t hdr_overflow{0};
  /// Distinct threads that recorded completions.
  std::size_t record_threads{0};
  /// True when the run used exact per-op storage.
  bool exact{true};
  /// Phase-split SLO accounting — populated only when the recorder ran
  /// with enable_phases() (open-loop burst runs). Each completed op is
  /// charged to the phase of its *scheduled* arrival (RateShape::
  /// high_at), so a backlog spilling out of the high window still
  /// counts against the burst that caused it.
  bool phases{false};
  std::int64_t high_count{0};
  std::int64_t high_slo_ok{0};
  double high_attainment{0.0};
  std::int64_t low_count{0};
  std::int64_t low_slo_ok{0};
  double low_attainment{0.0};
};

class TailRecorder {
 public:
  /// Runs at or below this many op slots record exactly; larger runs
  /// switch to the HDR histogram. 2^16 slots of exact storage is ~1 MB
  /// transient at percentile time — past that, tails come from buckets.
  static constexpr std::size_t kDefaultExactCap = std::size_t{1} << 16;
  static constexpr std::size_t kThreadSlots = 64;

  explicit TailRecorder(std::size_t max_ops, std::int64_t slo_ns = 0,
                        std::size_t exact_cap = kDefaultExactCap);

  /// steady_clock, nanoseconds since an arbitrary epoch.
  static std::int64_t now_ns();

  bool exact_mode() const { return hist_ == nullptr; }
  std::int64_t slo_ns() const { return slo_ns_; }

  /// Opt into per-phase SLO accounting: allocates one phase byte per op
  /// slot (nothing is spent otherwise) and makes stats() report the
  /// high/low split. Call before the first on_issue, then use the
  /// 3-argument on_issue overload.
  void enable_phases();
  bool phases_enabled() const { return !phase_.empty(); }

  /// Called by the issuer with the op's scheduled time, immediately
  /// after begin_* returned `op`. The slot is atomic because the
  /// completion can race this store (the op may finish on a worker
  /// before the issuer gets back from begin_*).
  void on_issue(OpId op, std::int64_t scheduled_ns);

  /// Phase-aware variant: also tags the op with the load phase of its
  /// scheduled arrival (true = high). The phase byte is written before
  /// the release-store of the schedule stamp, so on_complete's acquire
  /// spin on the stamp orders the read.
  void on_issue(OpId op, std::int64_t scheduled_ns, bool high_phase);

  /// Called from the completion callback; spins out the tiny
  /// issue-store race if needed, then records t_ns - scheduled.
  void on_complete(OpId op, std::int64_t t_ns);

  /// Direct recording of a known latency — the merge path (per-worker
  /// histograms folding into one) and the tests. Instances use either
  /// the on_issue/on_complete op API or record(), never both: in exact
  /// mode record() appends at a cursor that would collide with op
  /// slots.
  void record(std::int64_t latency_ns);

  /// Percentiles, SLO attainment and per-thread accounting over
  /// everything recorded. Call after the run (or between phases).
  TrafficStats stats() const;

  /// HDR mode only: the underlying histogram (merge target / test
  /// introspection). Aborts in exact mode.
  const LogHistogram& histogram() const;

 private:
  void tally(std::int64_t latency_ns);

  std::vector<std::atomic<std::int64_t>> issue_ns_;  ///< 0 = not issued
  /// enable_phases() only: scheduled-arrival phase per op (1 = high).
  /// Written before the issue stamp's release-store, read after its
  /// acquire-load, so plain bytes suffice.
  std::vector<std::uint8_t> phase_;
  /// Exact mode: latency slot per op, -1 = not completed. Empty in HDR
  /// mode.
  std::vector<std::int64_t> latency_ns_;
  std::atomic<std::size_t> cursor_{0};  ///< exact-mode record() appends
  std::unique_ptr<LogHistogram> hist_;  ///< HDR mode only
  std::int64_t slo_ns_;
  /// alignas: slo_ok_/recorded_ (and the phase tallies) are bumped by
  /// every completing thread, while the vector headers above —
  /// issue_ns_'s data pointer most of all — are READ on every
  /// on_issue/on_complete to reach the slot array. On one line each
  /// completion's tally write would invalidate the header line every
  /// issuer dereferences; the tallies start their own line instead.
  /// They stay together with the phase arrays deliberately: one
  /// completion writes several of them back to back (same writer set),
  /// so splitting those would only multiply bounced lines.
  alignas(64) std::atomic<std::int64_t> slo_ok_{0};
  std::atomic<std::int64_t> recorded_{0};
  /// Phase accounting, indexed [low=0, high=1].
  std::array<std::atomic<std::int64_t>, 2> phase_count_{};
  std::array<std::atomic<std::int64_t>, 2> phase_ok_{};

  struct alignas(64) PaddedCount {
    std::atomic<std::int64_t> v{0};
  };
  std::array<PaddedCount, kThreadSlots> per_thread_{};
};

}  // namespace dcnt::traffic
