#include "traffic/shape.hpp"

#include <cmath>

#include "support/check.hpp"

namespace dcnt::traffic {

namespace {

/// A modulated phase may dip to zero offered load (amplitude = 1); the
/// timeline still needs finite inter-arrival gaps, so the instantaneous
/// rate never drops below this fraction of the mean.
constexpr double kRateFloorFraction = 1e-3;

}  // namespace

double RateShape::rate_at(double t_s) const {
  DCNT_CHECK(rate > 0.0);
  double r = rate;
  switch (kind) {
    case Kind::kConstant:
      break;
    case Kind::kBurst: {
      // Square wave preserving the mean: duty*high + (1-duty)*low =
      // rate with low = rate*(1-amplitude).
      const double phase = t_s / period_s - std::floor(t_s / period_s);
      const double low = rate * (1.0 - amplitude);
      const double high = rate * (1.0 + amplitude * (1.0 - duty) / duty);
      r = phase < duty ? high : low;
      break;
    }
    case Kind::kDiurnal:
      r = rate * (1.0 + amplitude * std::sin(2.0 * M_PI * t_s / period_s));
      break;
  }
  return std::max(r, rate * kRateFloorFraction);
}

bool RateShape::high_at(double t_s) const {
  switch (kind) {
    case Kind::kConstant:
      return true;
    case Kind::kBurst: {
      const double phase = t_s / period_s - std::floor(t_s / period_s);
      return phase < duty;
    }
    case Kind::kDiurnal:
      return std::sin(2.0 * M_PI * t_s / period_s) >= 0.0;
  }
  return true;
}

std::string RateShape::describe() const {
  char buf[128];
  switch (kind) {
    case Kind::kConstant:
      std::snprintf(buf, sizeof(buf), "constant");
      break;
    case Kind::kBurst:
      std::snprintf(buf, sizeof(buf), "burst(T=%g,a=%g,d=%g)", period_s,
                    amplitude, duty);
      break;
    case Kind::kDiurnal:
      std::snprintf(buf, sizeof(buf), "diurnal(T=%g,a=%g)", period_s,
                    amplitude);
      break;
  }
  return buf;
}

RateShape make_shape(const std::string& kind, double rate, double period_s,
                     double amplitude, double duty) {
  RateShape shape;
  if (kind == "constant" || kind.empty()) {
    shape.kind = RateShape::Kind::kConstant;
  } else if (kind == "burst") {
    shape.kind = RateShape::Kind::kBurst;
  } else if (kind == "diurnal") {
    shape.kind = RateShape::Kind::kDiurnal;
  } else {
    DCNT_CHECK_MSG(false, "unknown rate shape (constant|burst|diurnal)");
  }
  shape.rate = rate;
  DCNT_CHECK_MSG(period_s > 0.0, "shape period must be positive");
  shape.period_s = period_s;
  DCNT_CHECK_MSG(amplitude >= 0.0 && amplitude <= 1.0,
                 "shape amplitude must be in [0, 1]");
  shape.amplitude = amplitude;
  DCNT_CHECK_MSG(duty > 0.0 && duty < 1.0, "burst duty must be in (0, 1)");
  shape.duty = duty;
  return shape;
}

ArrivalTimeline::ArrivalTimeline(const RateShape& shape) : shape_(shape) {
  DCNT_CHECK_MSG(shape.rate > 0.0, "an arrival timeline needs a rate");
}

std::int64_t ArrivalTimeline::next_ns() {
  if (shape_.kind == RateShape::Kind::kConstant) {
    // Closed form: no drift however many arrivals are drawn.
    const double period_ns = 1e9 / shape_.rate;
    return static_cast<std::int64_t>(period_ns *
                                     static_cast<double>(index_++));
  }
  if (index_++ == 0) return 0;
  t_ns_ += 1e9 / shape_.rate_at(t_ns_ / 1e9);
  return static_cast<std::int64_t>(t_ns_);
}

std::size_t count_arrivals(const RateShape& shape, double duration_s,
                           std::size_t cap) {
  DCNT_CHECK(duration_s > 0.0);
  const auto budget_ns = static_cast<std::int64_t>(duration_s * 1e9);
  ArrivalTimeline timeline(shape);
  std::size_t n = 0;
  while (n < cap && timeline.next_ns() < budget_ns) ++n;
  return n;
}

}  // namespace dcnt::traffic
