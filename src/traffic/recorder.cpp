#include "traffic/recorder.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "support/check.hpp"

namespace dcnt::traffic {

namespace {

/// Process-wide thread registry: each thread gets a stable small id on
/// first recording, folded onto the per-recorder slot array. Collisions
/// (more than kThreadSlots distinct threads) only blur the per-thread
/// split, never the totals.
std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id % TailRecorder::kThreadSlots;
}

}  // namespace

TailRecorder::TailRecorder(std::size_t max_ops, std::int64_t slo_ns,
                           std::size_t exact_cap)
    : issue_ns_(max_ops), slo_ns_(slo_ns) {
  if (max_ops > exact_cap) {
    hist_ = std::make_unique<LogHistogram>();
  } else {
    latency_ns_.assign(max_ops, -1);
  }
}

std::int64_t TailRecorder::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TailRecorder::enable_phases() {
  DCNT_CHECK_MSG(recorded_.load(std::memory_order_relaxed) == 0,
                 "enable_phases must precede recording");
  phase_.assign(issue_ns_.size(), 0);
}

void TailRecorder::on_issue(OpId op, std::int64_t scheduled_ns) {
  DCNT_CHECK(op >= 0 && static_cast<std::size_t>(op) < issue_ns_.size());
  DCNT_CHECK(scheduled_ns != 0);  // 0 is the "not yet stored" sentinel
  issue_ns_[static_cast<std::size_t>(op)].store(scheduled_ns,
                                                std::memory_order_release);
}

void TailRecorder::on_issue(OpId op, std::int64_t scheduled_ns,
                            bool high_phase) {
  DCNT_CHECK(op >= 0 && static_cast<std::size_t>(op) < issue_ns_.size());
  DCNT_CHECK(!phase_.empty());
  // The phase byte must be visible to whoever observes the issue stamp:
  // plain store here, then the release-store below publishes it.
  phase_[static_cast<std::size_t>(op)] = high_phase ? 1 : 0;
  on_issue(op, scheduled_ns);
}

void TailRecorder::on_complete(OpId op, std::int64_t t_ns) {
  DCNT_CHECK(op >= 0 && static_cast<std::size_t>(op) < issue_ns_.size());
  // The issuer stamps the scheduled time and stores right after begin_*
  // returns; if the op completed in between, spin out the tiny window.
  std::int64_t scheduled;
  while ((scheduled = issue_ns_[static_cast<std::size_t>(op)].load(
              std::memory_order_acquire)) == 0) {
    std::this_thread::yield();
  }
  const std::int64_t latency = std::max<std::int64_t>(t_ns - scheduled, 0);
  if (exact_mode()) {
    latency_ns_[static_cast<std::size_t>(op)] = latency;
  } else {
    hist_->record(latency);
  }
  if (!phase_.empty()) {
    const std::size_t ph = phase_[static_cast<std::size_t>(op)] ? 1 : 0;
    phase_count_[ph].fetch_add(1, std::memory_order_relaxed);
    if (slo_ns_ <= 0 || latency <= slo_ns_) {
      phase_ok_[ph].fetch_add(1, std::memory_order_relaxed);
    }
  }
  tally(latency);
}

void TailRecorder::record(std::int64_t latency_ns) {
  if (exact_mode()) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    DCNT_CHECK_MSG(i < latency_ns_.size(), "exact recorder overflow");
    latency_ns_[i] = std::max<std::int64_t>(latency_ns, 0);
  } else {
    hist_->record(std::max<std::int64_t>(latency_ns, 0));
  }
  tally(latency_ns);
}

void TailRecorder::tally(std::int64_t latency_ns) {
  recorded_.fetch_add(1, std::memory_order_relaxed);
  if (slo_ns_ <= 0 || latency_ns <= slo_ns_) {
    slo_ok_.fetch_add(1, std::memory_order_relaxed);
  }
  per_thread_[thread_slot()].v.fetch_add(1, std::memory_order_relaxed);
}

const LogHistogram& TailRecorder::histogram() const {
  DCNT_CHECK_MSG(hist_ != nullptr, "histogram() is HDR-mode only");
  return *hist_;
}

TrafficStats TailRecorder::stats() const {
  TrafficStats out;
  out.slo_ns = slo_ns_;
  out.exact = exact_mode();
  out.count = recorded_.load(std::memory_order_acquire);
  out.slo_ok = slo_ok_.load(std::memory_order_relaxed);
  for (const PaddedCount& c : per_thread_) {
    if (c.v.load(std::memory_order_relaxed) > 0) ++out.record_threads;
  }
  if (!phase_.empty()) {
    out.phases = true;
    out.low_count = phase_count_[0].load(std::memory_order_relaxed);
    out.low_slo_ok = phase_ok_[0].load(std::memory_order_relaxed);
    out.high_count = phase_count_[1].load(std::memory_order_relaxed);
    out.high_slo_ok = phase_ok_[1].load(std::memory_order_relaxed);
    if (out.low_count > 0) {
      out.low_attainment = static_cast<double>(out.low_slo_ok) /
                           static_cast<double>(out.low_count);
    }
    if (out.high_count > 0) {
      out.high_attainment = static_cast<double>(out.high_slo_ok) /
                            static_cast<double>(out.high_count);
    }
  }
  if (out.count == 0) return out;
  out.slo_attainment =
      static_cast<double>(out.slo_ok) / static_cast<double>(out.count);
  if (exact_mode()) {
    // Every writer clamps to >= 0, so -1 is unambiguously "never
    // completed" and skipping it cannot drop a real sample.
    Summary s;
    for (const std::int64_t l : latency_ns_) {
      if (l >= 0) s.add(l);
    }
    out.mean_us = s.mean() / 1e3;
    out.p50_us = static_cast<double>(s.percentile(50)) / 1e3;
    out.p95_us = static_cast<double>(s.percentile(95)) / 1e3;
    out.p99_us = static_cast<double>(s.percentile(99)) / 1e3;
    out.p999_us = static_cast<double>(s.percentile(99.9)) / 1e3;
    out.p9999_us = static_cast<double>(s.percentile(99.99)) / 1e3;
    out.max_us = static_cast<double>(s.max()) / 1e3;
  } else {
    out.mean_us = hist_->mean() / 1e3;
    out.p50_us = static_cast<double>(hist_->percentile(50)) / 1e3;
    out.p95_us = static_cast<double>(hist_->percentile(95)) / 1e3;
    out.p99_us = static_cast<double>(hist_->percentile(99)) / 1e3;
    out.p999_us = static_cast<double>(hist_->percentile(99.9)) / 1e3;
    out.p9999_us = static_cast<double>(hist_->percentile(99.99)) / 1e3;
    out.max_us = static_cast<double>(hist_->max()) / 1e3;
    out.hdr_overflow = hist_->overflow();
  }
  return out;
}

}  // namespace dcnt::traffic
