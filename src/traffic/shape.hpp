// Offered-load shapes and the deterministic arrival timeline behind
// open-loop generation (DESIGN.md §14).
//
// An open-loop run is defined by WHEN each operation should arrive, not
// by when the system got around to sending it. RateShape describes the
// target rate as a function of time — constant, burst (square wave) or
// diurnal (sinusoid), all preserving the requested mean rate — and
// ArrivalTimeline integrates it into a strictly increasing sequence of
// scheduled arrival offsets. The timeline is a pure function of the
// shape parameters: the same shape yields the identical schedule on
// every run and on every host, which is what makes scheduled-op counts
// pinnable in tests and lets a completion handler treat the scheduled
// time as ground truth.
//
// Coordinated omission: latency measured from the scheduled arrival
// (not from the moment the generator finally sent the op) charges a
// stalled system for the backlog it caused. The generator never skips
// an arrival — if it falls behind it issues late, and the lateness is
// part of the op's measured latency, exactly as a real client's request
// would have queued.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace dcnt::traffic {

struct RateShape {
  enum class Kind { kConstant, kBurst, kDiurnal };

  Kind kind{Kind::kConstant};
  /// Mean offered rate, ops/second. > 0 selects open-loop generation.
  double rate{0.0};
  /// Cycle length for burst and diurnal shapes.
  double period_s{1.0};
  /// Modulation depth in [0, 1]. Burst: the low phase runs at
  /// rate*(1-amplitude) and the high phase at whatever preserves the
  /// mean given `duty`. Diurnal: rate*(1 + amplitude*sin(2*pi*t/T)).
  double amplitude{0.5};
  /// Burst only: fraction of each period spent in the high phase.
  double duty{0.5};

  /// Instantaneous target rate at time t (seconds since the run epoch).
  /// Never returns 0 — a zero-rate phase would schedule the next
  /// arrival at infinity — so the floor is a small fraction of `rate`.
  double rate_at(double t_s) const;

  /// True when time t falls in the shape's high-load phase: the burst
  /// square wave's high window (the first duty*period of each cycle —
  /// the same classification rate_at uses), the diurnal sinusoid's
  /// above-mean half. Constant shapes are all high phase. Drives the
  /// per-phase SLO split in TailRecorder.
  bool high_at(double t_s) const;

  /// "constant" / "burst" / "diurnal" with the parameters, for tables
  /// and BENCH JSONs.
  std::string describe() const;
};

/// Builds a shape from the bench-flag vocabulary: kind is "constant",
/// "burst" or "diurnal" (anything else aborts), the rest pass through.
RateShape make_shape(const std::string& kind, double rate, double period_s,
                     double amplitude, double duty);

/// The deterministic arrival sequence: offsets in nanoseconds from the
/// run epoch, first arrival at 0, strictly increasing afterwards.
/// Constant shapes compute offsets in closed form (no accumulated
/// drift); modulated shapes integrate dt = 1/rate_at(t) step by step.
class ArrivalTimeline {
 public:
  explicit ArrivalTimeline(const RateShape& shape);

  /// Scheduled offset of the next arrival, consuming it.
  std::int64_t next_ns();

 private:
  RateShape shape_;
  std::size_t index_{0};  ///< arrivals handed out so far
  double t_ns_{0.0};      ///< modulated shapes: current offset
};

/// Arrivals the timeline schedules strictly before `duration_s`, capped
/// at `cap` (duration runs size their op tables with this). A pure
/// function of (shape, duration), pinned exactly in test_perf_smoke.
std::size_t count_arrivals(const RateShape& shape, double duration_s,
                           std::size_t cap);

}  // namespace dcnt::traffic
