// HDR-style log-bucketed latency histogram (the traffic engine's
// recorder storage; DESIGN.md §14).
//
// The exact Summary recorder keeps every sample (two O(ops) vectors by
// percentile time) — fine for the simulator's per-processor load
// reports, hopeless for 10^6–10^7-op open-loop runs where p99.9/p99.99
// are the whole point. LogHistogram is the standard fix: values bucket
// by the leading bit (one octave per power of two) with kSubCount
// linear sub-buckets per octave, so relative bucket width is at most
// 1/kSubCount = 1/128 < 1% everywhere, values below kSubCount are
// recorded exactly, and the whole structure is a fixed ~7 KB-per-octave
// array regardless of how many samples land in it.
//
// Concurrency: record() is a relaxed fetch_add on one bucket counter
// (plus CAS loops for the exact min/max), so any number of workers may
// record into one histogram, and per-worker histograms merge
// associatively and commutatively by bucket-wise addition — both modes
// are exercised under TSan (tests/test_traffic.cpp). Reads (percentile,
// count, mean) are intended for after the run or between phases; a read
// racing a record sees some valid prefix of the recordings, never torn
// state.
//
// Saturation: values above max_value() land in the top bucket and bump
// overflow() instead of growing the array — a stalled run reports "p99
// at least the top bucket" rather than reallocating under pressure.
// min()/max() track the true extremes exactly (they are single words),
// so saturation is visible: max() > max_value() iff overflow() > 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace dcnt::traffic {

class LogHistogram {
 public:
  /// Sub-buckets per octave: 2^7 = 128, so bucket width / bucket value
  /// <= 1/128 < 1% and percentile midpoints are within ~0.4%.
  static constexpr int kSubBits = 7;
  static constexpr std::int64_t kSubCount = std::int64_t{1} << kSubBits;
  /// Default trackable range for nanosecond latencies: 2^42 ns ~ 73
  /// minutes, 4608 buckets, ~36 KB of counters.
  static constexpr std::int64_t kDefaultMaxValue = std::int64_t{1} << 42;

  explicit LogHistogram(std::int64_t max_value = kDefaultMaxValue);
  LogHistogram(const LogHistogram& other);
  LogHistogram& operator=(const LogHistogram& other);

  /// Thread-safe (relaxed atomics). Negative values clamp to 0; values
  /// above max_value() saturate into the top bucket and count as
  /// overflow. min/max/mean stay exact (they track the raw value).
  void record(std::int64_t value) { record(value, 1); }
  void record(std::int64_t value, std::int64_t count);

  /// Bucket-wise addition; requires an identical bucket layout (same
  /// max_value). Associative and commutative, so per-worker/per-node
  /// histograms can be combined in any order.
  void merge(const LogHistogram& other);

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// Recordings that exceeded max_value() and saturated the top bucket.
  std::int64_t overflow() const {
    return overflow_.load(std::memory_order_relaxed);
  }
  /// Exact extremes over everything recorded (0 / -1 when empty).
  std::int64_t min() const;
  std::int64_t max() const;
  /// Exact mean (the raw sum is tracked alongside the buckets).
  double mean() const;

  /// Nearest-rank percentile over the buckets, q in [0, 100]: the
  /// midpoint of the bucket holding the rank-ceil(q/100 * count) sample
  /// (exact for values < kSubCount, within half a bucket otherwise).
  /// 0 when empty.
  std::int64_t percentile(double q) const;

  std::int64_t max_value() const { return max_value_; }
  std::size_t num_buckets() const { return buckets_.size(); }
  std::int64_t bucket_count_at(std::size_t index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  // Static bucket geometry (value -> index -> [low, high] and the
  // midpoint reported by percentile); exposed for the boundary tests.
  static std::size_t bucket_index(std::int64_t value);
  static std::int64_t bucket_low(std::size_t index);
  static std::int64_t bucket_high(std::size_t index);
  static std::int64_t bucket_mid(std::size_t index);

 private:
  std::int64_t max_value_;
  std::size_t top_index_;  ///< bucket_index(max_value_); saturation target
  std::vector<std::atomic<std::int64_t>> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> overflow_{0};
  std::atomic<std::int64_t> min_{INT64_MAX};
  std::atomic<std::int64_t> max_{-1};
};

}  // namespace dcnt::traffic
