#include "traffic/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace dcnt::traffic {

namespace {

int bit_width_i64(std::int64_t v) {
  // v > 0 guaranteed by the callers.
  return 64 - __builtin_clzll(static_cast<unsigned long long>(v));
}

void atomic_store_min(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_store_max(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t LogHistogram::bucket_index(std::int64_t value) {
  if (value < kSubCount) return static_cast<std::size_t>(value);
  // value in [2^(p-1), 2^p): keep the leading kSubBits+1 bits, so each
  // octave splits into kSubCount buckets of width 2^(p-1-kSubBits).
  const int p = bit_width_i64(value);
  const int shift = p - (kSubBits + 1);
  const std::int64_t top = value >> shift;  // in [kSubCount, 2*kSubCount)
  return static_cast<std::size_t>(kSubCount * (p - kSubBits) +
                                  (top - kSubCount));
}

std::int64_t LogHistogram::bucket_low(std::size_t index) {
  if (index < static_cast<std::size_t>(kSubCount)) {
    return static_cast<std::int64_t>(index);
  }
  const std::int64_t g = static_cast<std::int64_t>(index) >> kSubBits;  // >= 1
  const std::int64_t r = static_cast<std::int64_t>(index) & (kSubCount - 1);
  return (kSubCount + r) << (g - 1);
}

std::int64_t LogHistogram::bucket_high(std::size_t index) {
  if (index < static_cast<std::size_t>(kSubCount)) {
    return static_cast<std::int64_t>(index);
  }
  const std::int64_t g = static_cast<std::int64_t>(index) >> kSubBits;
  return bucket_low(index) + ((std::int64_t{1} << (g - 1)) - 1);
}

std::int64_t LogHistogram::bucket_mid(std::size_t index) {
  if (index < static_cast<std::size_t>(kSubCount)) {
    return static_cast<std::int64_t>(index);
  }
  const std::int64_t g = static_cast<std::int64_t>(index) >> kSubBits;
  const std::int64_t half = (std::int64_t{1} << (g - 1)) / 2;
  return bucket_low(index) + half;
}

LogHistogram::LogHistogram(std::int64_t max_value)
    : max_value_(max_value),
      top_index_(bucket_index(max_value)),
      buckets_(top_index_ + 1) {
  DCNT_CHECK_MSG(max_value >= kSubCount, "LogHistogram range is too small");
}

LogHistogram::LogHistogram(const LogHistogram& other)
    : max_value_(other.max_value_),
      top_index_(other.top_index_),
      buckets_(other.buckets_.size()) {
  *this = other;
}

LogHistogram& LogHistogram::operator=(const LogHistogram& other) {
  if (this == &other) return *this;
  DCNT_CHECK(max_value_ == other.max_value_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  }
  count_.store(other.count_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  sum_.store(other.sum_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  overflow_.store(other.overflow_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  min_.store(other.min_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  max_.store(other.max_.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  return *this;
}

void LogHistogram::record(std::int64_t value, std::int64_t count) {
  DCNT_CHECK(count > 0);
  const std::int64_t v = std::max<std::int64_t>(value, 0);
  std::size_t idx;
  if (v > max_value_) {
    idx = top_index_;
    overflow_.fetch_add(count, std::memory_order_relaxed);
  } else {
    idx = bucket_index(v);
  }
  buckets_[idx].fetch_add(count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(v * count, std::memory_order_relaxed);
  atomic_store_min(min_, v);
  atomic_store_max(max_, v);
}

void LogHistogram::merge(const LogHistogram& other) {
  DCNT_CHECK_MSG(max_value_ == other.max_value_,
                 "merging LogHistograms with different ranges");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::int64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  overflow_.fetch_add(other.overflow_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
  atomic_store_min(min_, other.min_.load(std::memory_order_relaxed));
  atomic_store_max(max_, other.max_.load(std::memory_order_relaxed));
}

std::int64_t LogHistogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::int64_t LogHistogram::max() const {
  return count() == 0 ? -1 : max_.load(std::memory_order_relaxed);
}

double LogHistogram::mean() const {
  const std::int64_t c = count();
  if (c == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(c);
}

std::int64_t LogHistogram::percentile(double q) const {
  const std::int64_t total = count();
  if (total == 0) return 0;
  const double clamped = std::min(std::max(q, 0.0), 100.0);
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::ceil(clamped / 100.0 *
                                             static_cast<double>(total))));
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= rank) return bucket_mid(i);
  }
  return bucket_mid(top_index_);
}

}  // namespace dcnt::traffic
