// The lower-bound adversary of §3, made executable.
//
// The proof constructs a sequence of n incs, one per processor: "For
// each operation in the sequence we choose a processor (among those
// that have not been chosen yet) and a process such that the
// processor's communication list is longest." We realize it by cloning
// the whole simulation (Simulator's copy constructor), dry-running
// every remaining candidate's inc, committing the one that generates
// the most messages, and repeating. This is a *restriction* of the
// proof's adversary (it optimizes over the scheduler's realizable
// process rather than all nondeterministic ones), so the loads it
// produces are legitimate witnesses for the Omega(k) claim — and the
// benches show every implementation paying at least k(n) at its
// bottleneck.
//
// Cost: O(n_candidates) dry-runs per step. The dry-runs are read-only
// with respect to the committed state, so they fan out over a
// ThreadPool — each worker keeps ONE scratch simulator and restore()s
// the step's base state into it per candidate (no deep clone per
// dry-run). The reduction is a fixed deterministic rule (most
// messages, ties to the lowest ProcessorId; within a candidate, the
// earliest schedule sample), so the result is bit-for-bit identical
// for every thread count. Use `sample_candidates` for larger n.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace dcnt {

struct AdversaryOptions {
  /// Dry-run at most this many randomly chosen remaining candidates per
  /// step (0 = all remaining — the full greedy adversary).
  std::size_t sample_candidates{0};
  /// Delivery schedules sampled per candidate (>= 1). The proof's
  /// adversary picks both a processor AND "a process such that the
  /// communication list is longest"; sampling several reseeded clones
  /// explores that nondeterminism (the chosen schedule is replayed).
  std::size_t schedule_samples{1};
  std::uint64_t seed{0xADU};
  /// Worker threads for the candidate dry-runs (0 = auto: DCNT_THREADS
  /// env var, else hardware concurrency). The AdversaryResult is
  /// identical for every value — parallelism only changes wall-clock.
  std::size_t threads{0};
  /// Also record the proof's potential w_i along the run: after the
  /// main pass identifies the last processor q, a second pass replays
  /// the sequence and, before each op, dry-runs q's inc to obtain its
  /// communication list and weight. Requires tracing enabled in the
  /// base simulator. Quadratic-ish; keep n small.
  bool record_weights{false};
};

struct AdversaryStep {
  ProcessorId chosen{kNoProcessor};
  std::int64_t messages{0};  ///< messages of the chosen (longest) process
  // Filled when record_weights is set:
  std::int64_t last_list_len{0};  ///< l_i: q's list length before op i
  double last_weight{0.0};        ///< w_i
};

struct AdversaryResult {
  std::vector<AdversaryStep> steps;
  std::int64_t max_load{0};
  ProcessorId bottleneck{kNoProcessor};
  std::int64_t total_messages{0};
  ProcessorId last_processor{kNoProcessor};  ///< the proof's q
  std::int64_t last_processor_load{0};       ///< m_q — the proof's witness
  double paper_k{0.0};  ///< k with k^(k+1) = n, the predicted lower bound
};

/// Runs the adversarial one-inc-per-processor sequence on a copy of
/// `base` (which must be freshly constructed: no operations yet).
AdversaryResult run_adversarial_sequence(const Simulator& base,
                                         const AdversaryOptions& options = {});

/// Without-replacement candidate sampling used per adversary step
/// (exposed for tests): min(sample, pool.size()) DISTINCT entries of
/// `pool`, via partial Fisher-Yates; sample == 0 means "all". A
/// candidate must never be dry-run twice in one step — duplicates would
/// waste dry-runs and skew tie-breaking.
std::vector<ProcessorId> sample_without_replacement(
    const std::vector<ProcessorId>& pool, std::size_t sample, Rng& rng);

}  // namespace dcnt
