#include "analysis/tree_profile.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "core/bound.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace dcnt {

std::vector<LevelProfile> tree_level_profile(const Simulator& sim) {
  const auto* service = dynamic_cast<const TreeService*>(&sim.counter());
  DCNT_CHECK_MSG(service != nullptr, "tree_level_profile needs a TreeService");
  const TreeLayout& layout = service->layout();
  const int k = layout.k();

  std::vector<LevelProfile> profile(static_cast<std::size_t>(k) + 1);
  std::vector<std::set<ProcessorId>> incumbents(
      static_cast<std::size_t>(k) + 1);
  std::map<NodeId, std::int64_t> per_node;

  for (NodeId node = 0; node < layout.num_inner(); ++node) {
    const int level = layout.level_of(node);
    auto& row = profile[static_cast<std::size_t>(level)];
    ++row.nodes;
    incumbents[static_cast<std::size_t>(level)].insert(
        layout.initial_pid(node));
  }
  for (const auto& ev : service->retirement_log()) {
    auto& row = profile[static_cast<std::size_t>(ev.level)];
    ++row.retirements;
    row.max_retirements_per_node =
        std::max(row.max_retirements_per_node, ++per_node[ev.node]);
    incumbents[static_cast<std::size_t>(ev.level)].insert(ev.new_pid);
  }
  for (int level = 0; level <= k; ++level) {
    auto& row = profile[static_cast<std::size_t>(level)];
    row.level = level;
    row.pool_budget_per_node =
        (level == 0 ? layout.n() : ipow(k, k - level)) - 1;
    const auto& pids = incumbents[static_cast<std::size_t>(level)];
    row.distinct_incumbents = static_cast<std::int64_t>(pids.size());
    std::int64_t total = 0;
    for (const ProcessorId p : pids) {
      const std::int64_t load = sim.metrics().load(p);
      total += load;
      row.max_incumbent_load = std::max(row.max_incumbent_load, load);
    }
    row.mean_incumbent_load =
        pids.empty() ? 0.0
                     : static_cast<double>(total) /
                           static_cast<double>(pids.size());
  }
  return profile;
}

std::string to_string(const std::vector<LevelProfile>& profile) {
  Table table({"level", "nodes", "retirements", "max/node", "pool budget",
               "distinct incumbents", "mean load", "max load"});
  for (const LevelProfile& row : profile) {
    table.row()
        .add(row.level)
        .add(row.nodes)
        .add(row.retirements)
        .add(row.max_retirements_per_node)
        .add(row.pool_budget_per_node)
        .add(row.distinct_incumbents)
        .add(row.mean_incumbent_load, 2)
        .add(row.max_incumbent_load);
  }
  return table.to_text();
}

}  // namespace dcnt
