#include "analysis/concentration.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace dcnt {

ConcentrationReport concentration(const std::vector<std::int64_t>& loads) {
  DCNT_CHECK(!loads.empty());
  ConcentrationReport report;
  const auto n = static_cast<double>(loads.size());
  const std::int64_t total =
      std::accumulate(loads.begin(), loads.end(), static_cast<std::int64_t>(0));
  if (total == 0) return report;  // nothing moved; all zeros
  const double mean = static_cast<double>(total) / n;
  std::vector<std::int64_t> sorted = loads;
  std::sort(sorted.begin(), sorted.end());
  report.max_over_mean = static_cast<double>(sorted.back()) / mean;

  // Gini via the sorted-rank formula:
  //   G = (2 * sum_i i*x_(i) ) / (n * sum x) - (n + 1) / n,  i = 1..n.
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(sorted[i]);
  }
  report.gini =
      2.0 * weighted / (n * static_cast<double>(total)) - (n + 1.0) / n;

  auto top_share = [&](double fraction) {
    const auto count = std::max<std::size_t>(
        1, static_cast<std::size_t>(fraction * n + 0.5));
    std::int64_t top = 0;
    for (std::size_t i = 0; i < count; ++i) {
      top += sorted[sorted.size() - 1 - i];
    }
    return static_cast<double>(top) / static_cast<double>(total);
  };
  report.top1_share = top_share(0.01);
  report.top10_share = top_share(0.10);
  return report;
}

ConcentrationReport concentration(const Metrics& metrics) {
  std::vector<std::int64_t> loads(metrics.num_processors());
  for (std::size_t p = 0; p < loads.size(); ++p) {
    loads[p] = metrics.load(static_cast<ProcessorId>(p));
  }
  return concentration(loads);
}

}  // namespace dcnt
