// Exhaustive delivery-schedule exploration — lightweight model checking
// for the paper's asynchrony.
//
// The model (§2) promises only that messages arrive "an unbounded but
// finite amount of time after" being sent: correctness must hold for
// EVERY delivery order, not just the sampled ones. The explorer takes a
// scenario (a prepared simulator plus operations to initiate), then
// walks the tree of all delivery interleavings depth-first — cloning
// the whole simulator at each branch (value semantics again) — and
// checks, on every completed path, that
//
//   * every operation completed,
//   * the values are exactly 0..m-1 (counter semantics), and
//   * the protocol's own check_quiescent invariants hold,
//
// plus any custom predicate. State explosion keeps this to small
// instances (a handful of concurrent operations on n <= ~10); the path
// cap makes runaway scenarios fail loudly instead of hanging.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace dcnt {

struct ExploreOptions {
  /// Stop after this many complete paths (0 is invalid). If the cap is
  /// hit, `truncated` is set in the result — assertions about full
  /// coverage should check it.
  std::int64_t max_paths{100000};
  /// Require returned values to be a permutation 0..m-1 and call
  /// check_quiescent at every path end. Disable for non-counter
  /// services driven via op args.
  bool check_counter_semantics{true};
  /// Extra invariant evaluated at every path end (may be empty).
  /// Setting it forces the serial explorer (the callback observes path
  /// ends in depth-first order, which parallel branches cannot promise).
  std::function<void(const Simulator&)> on_path_end{};
  /// Worker threads fanning out the top-level delivery branches
  /// (0 = auto: DCNT_THREADS env var, else hardware concurrency). The
  /// ExploreResult is identical for every value: branch path-lists are
  /// merged serially in branch order, reproducing the serial DFS's path
  /// order exactly — including where a max_paths truncation lands.
  std::size_t threads{0};
};

struct ExploreResult {
  std::int64_t paths{0};
  bool truncated{false};
  /// Deepest interleaving (messages delivered on one path).
  std::int64_t max_depth{0};
  /// Distinct value-assignments observed across paths (informational:
  /// >1 means the schedule genuinely influences who gets which value).
  std::int64_t distinct_outcomes{0};
};

/// Explores all delivery schedules of `ops` initiated on (a copy of)
/// `base`. Operations are initiated up front (they overlap); the
/// explorer then branches over every pending message at every step.
/// `base` must not use fifo_channels (order is the explored dimension).
ExploreResult explore_schedules(const Simulator& base,
                                const std::vector<ProcessorId>& ops,
                                const ExploreOptions& options = {});

/// As above but with explicit op arguments (services like the tree
/// priority queue).
ExploreResult explore_schedules_args(
    const Simulator& base,
    const std::vector<std::pair<ProcessorId, std::vector<std::int64_t>>>& ops,
    const ExploreOptions& options = {});

}  // namespace dcnt
