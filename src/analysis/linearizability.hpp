// Linearizability of concurrent counting histories — analysis-side
// entry point.
//
// The record type, the checker itself and the lock-free capture buffer
// live in src/concurrent/history.hpp (the concurrency plane, below the
// harness layer, so real runtime and cluster histories can be checked
// where they are produced); this header re-exports them and adds the
// simulator extraction helper.
#pragma once

#include <vector>

#include "concurrent/history.hpp"
#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace dcnt {

/// Extracts the history of all completed ops from a simulator.
std::vector<CounterOpRecord> counter_history(const Simulator& sim);

}  // namespace dcnt
