// Linearizability of concurrent counting histories, after the
// distinction drawn in Herlihy, Shavit & Waarts, "Linearizable counting
// networks" [HSW96] (cited by the paper): counting networks are
// correct *quiescently* but hand out values that can invert real-time
// order, while serializing structures (a central counter, a combining
// tree, the paper's tree) are linearizable.
//
// For a counter handing out distinct values 0..m-1, a history is
// linearizable iff no operation A that *responded* before operation B
// was *invoked* received a larger value:
//
//     resp(A) < inv(B)  =>  val(A) < val(B).
//
// (Sufficiency: order ops by value; the condition makes that total
// order consistent with real time, and by construction each op returns
// its predecessor count — a legal sequential counter execution.)
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace dcnt {

struct CounterOpRecord {
  OpId op{kNoOp};
  SimTime invoked{0};
  SimTime responded{0};
  Value value{0};
};

struct LinearizabilityReport {
  bool linearizable{true};
  std::int64_t violations{0};
  /// First violating pair: a responded before b invoked, yet
  /// val(a) > val(b).
  OpId first_a{kNoOp};
  OpId first_b{kNoOp};
};

/// Checks a history of counter operations (values must be distinct).
/// O(m log m).
LinearizabilityReport check_linearizable(std::vector<CounterOpRecord> history);

/// Extracts the history of all completed ops from a simulator.
std::vector<CounterOpRecord> counter_history(const Simulator& sim);

}  // namespace dcnt
