#include "analysis/latency.hpp"

#include "support/check.hpp"

namespace dcnt {

Summary latency_summary(const Simulator& sim) {
  Summary summary;
  for (OpId op = 0; op < static_cast<OpId>(sim.ops_started()); ++op) {
    summary.add(sim.op_responded_at(op) - sim.op_invoked_at(op));
  }
  return summary;
}

LatencyReport latency_report(const Simulator& sim) {
  LatencyReport report;
  const Summary summary = latency_summary(sim);
  report.ops = static_cast<std::int64_t>(summary.count());
  if (report.ops == 0) return report;
  report.mean = summary.mean();
  report.p50 = summary.percentile(50);
  report.p99 = summary.percentile(99);
  report.max = summary.max();
  return report;
}

}  // namespace dcnt
