// Load reports: the per-processor message-load distribution of a run,
// condensed to what the paper's theorems talk about (the bottleneck)
// plus distributional context for the benches.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.hpp"
#include "support/stats.hpp"

namespace dcnt {

struct LoadReport {
  std::int64_t n{0};
  std::int64_t ops{0};
  std::int64_t max_load{0};
  ProcessorId bottleneck{kNoProcessor};
  double mean_load{0.0};
  std::int64_t p50{0};
  std::int64_t p99{0};
  std::int64_t total_messages{0};
  std::int64_t total_words{0};
  /// k with k^(k+1) = n — the paper's predicted bottleneck order.
  double paper_k{0.0};
  /// max_load / paper_k: constant-factor distance from the bound.
  double load_per_k{0.0};
};

LoadReport make_load_report(const Simulator& sim);

/// Multi-line human-readable rendering.
std::string to_string(const LoadReport& report);

}  // namespace dcnt
