#include "analysis/explore.hpp"

#include <algorithm>
#include <set>

#include "support/check.hpp"

namespace dcnt {

namespace {

struct ExploreState {
  const ExploreOptions* options;
  std::int64_t ops_expected;
  std::int64_t base_deliveries{0};
  ExploreResult result;
  std::set<std::vector<Value>> outcomes;
};

void check_path_end(const Simulator& sim, ExploreState& state) {
  ++state.result.paths;
  state.result.max_depth = std::max(
      state.result.max_depth, sim.deliveries() - state.base_deliveries);
  std::vector<Value> values;
  for (OpId op = 0; op < static_cast<OpId>(sim.ops_started()); ++op) {
    const auto result = sim.result(op);
    DCNT_CHECK_MSG(result.has_value(),
                   "schedule explorer: op incomplete at quiescence");
    values.push_back(*result);
  }
  if (state.options->check_counter_semantics) {
    std::vector<Value> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      DCNT_CHECK_MSG(sorted[i] == static_cast<Value>(i),
                     "schedule explorer: values are not 0..m-1");
    }
    sim.counter().check_quiescent(sim.ops_completed());
  }
  if (state.options->on_path_end) state.options->on_path_end(sim);
  state.outcomes.insert(std::move(values));
}

void dfs(const Simulator& sim, ExploreState& state) {
  if (state.result.truncated) return;
  if (sim.quiescent()) {
    check_path_end(sim, state);
    if (state.result.paths >= state.options->max_paths) {
      state.result.truncated = true;
    }
    return;
  }
  const std::size_t pending = sim.pending_messages();
  for (std::size_t i = 0; i < pending && !state.result.truncated; ++i) {
    Simulator branch(sim);
    branch.step_specific(i);
    dfs(branch, state);
  }
}

ExploreResult run(Simulator sim, ExploreState state) {
  dfs(sim, state);
  state.result.distinct_outcomes =
      static_cast<std::int64_t>(state.outcomes.size());
  return state.result;
}

}  // namespace

ExploreResult explore_schedules(const Simulator& base,
                                const std::vector<ProcessorId>& ops,
                                const ExploreOptions& options) {
  DCNT_CHECK_MSG(!base.config().fifo_channels,
                 "exploration enumerates orders; disable fifo_channels");
  DCNT_CHECK(options.max_paths > 0);
  Simulator sim(base);
  for (const ProcessorId origin : ops) sim.begin_inc(origin);
  ExploreState state;
  state.options = &options;
  state.ops_expected = static_cast<std::int64_t>(ops.size());
  state.base_deliveries = base.deliveries();
  return run(std::move(sim), std::move(state));
}

ExploreResult explore_schedules_args(
    const Simulator& base,
    const std::vector<std::pair<ProcessorId, std::vector<std::int64_t>>>& ops,
    const ExploreOptions& options) {
  DCNT_CHECK_MSG(!base.config().fifo_channels,
                 "exploration enumerates orders; disable fifo_channels");
  DCNT_CHECK(options.max_paths > 0);
  Simulator sim(base);
  for (const auto& [origin, args] : ops) sim.begin_op(origin, args);
  ExploreState state;
  state.options = &options;
  state.ops_expected = static_cast<std::int64_t>(ops.size());
  state.base_deliveries = base.deliveries();
  return run(std::move(sim), std::move(state));
}

}  // namespace dcnt
