#include "analysis/explore.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace dcnt {

namespace {

/// Validates one quiescent path and returns its op values in OpId order
/// (shared by the serial and parallel explorers).
std::vector<Value> collect_path_values(const Simulator& sim,
                                       bool check_counter_semantics) {
  std::vector<Value> values;
  for (OpId op = 0; op < static_cast<OpId>(sim.ops_started()); ++op) {
    const auto result = sim.result(op);
    DCNT_CHECK_MSG(result.has_value(),
                   "schedule explorer: op incomplete at quiescence");
    values.push_back(*result);
  }
  if (check_counter_semantics) {
    std::vector<Value> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      DCNT_CHECK_MSG(sorted[i] == static_cast<Value>(i),
                     "schedule explorer: values are not 0..m-1");
    }
    sim.counter().check_quiescent(sim.ops_completed());
  }
  return values;
}

struct ExploreState {
  const ExploreOptions* options;
  std::int64_t base_deliveries{0};
  ExploreResult result;
  std::set<std::vector<Value>> outcomes;
};

void check_path_end(const Simulator& sim, ExploreState& state) {
  ++state.result.paths;
  state.result.max_depth = std::max(
      state.result.max_depth, sim.deliveries() - state.base_deliveries);
  std::vector<Value> values =
      collect_path_values(sim, state.options->check_counter_semantics);
  if (state.options->on_path_end) state.options->on_path_end(sim);
  state.outcomes.insert(std::move(values));
}

void dfs(const Simulator& sim, ExploreState& state) {
  if (state.result.truncated) return;
  if (sim.quiescent()) {
    check_path_end(sim, state);
    if (state.result.paths >= state.options->max_paths) {
      state.result.truncated = true;
    }
    return;
  }
  const std::size_t pending = sim.pending_messages();
  for (std::size_t i = 0; i < pending && !state.result.truncated; ++i) {
    Simulator branch(sim);
    branch.step_specific(i);
    dfs(branch, state);
  }
}

// ---- Parallel exploration -------------------------------------------
//
// Each top-level pending message becomes one branch task; a branch runs
// the same depth-first walk and records its paths *in DFS order*. The
// concatenation of the branch lists in branch order is therefore
// exactly the serial explorer's path order, so the serial merge below
// reproduces paths / max_depth / distinct_outcomes — and the precise
// point where a max_paths truncation lands — bit for bit.

struct PathRecord {
  std::vector<Value> values;
  std::int64_t depth{0};
};

struct BranchCollector {
  const ExploreOptions* options;
  std::int64_t base_deliveries{0};
  std::vector<PathRecord> paths;
  bool truncated{false};
};

void dfs_collect(const Simulator& sim, BranchCollector& out) {
  if (out.truncated) return;
  if (sim.quiescent()) {
    PathRecord rec;
    rec.depth = sim.deliveries() - out.base_deliveries;
    rec.values =
        collect_path_values(sim, out.options->check_counter_semantics);
    out.paths.push_back(std::move(rec));
    // A single branch can never contribute more than the global cap.
    if (static_cast<std::int64_t>(out.paths.size()) >=
        out.options->max_paths) {
      out.truncated = true;
    }
    return;
  }
  const std::size_t pending = sim.pending_messages();
  for (std::size_t i = 0; i < pending && !out.truncated; ++i) {
    Simulator branch(sim);
    branch.step_specific(i);
    dfs_collect(branch, out);
  }
}

ExploreResult run(Simulator sim, ExploreState state) {
  const std::size_t pending = sim.pending_messages();
  const std::size_t threads = resolve_thread_count(state.options->threads);
  if (threads <= 1 || pending < 2 || state.options->on_path_end) {
    dfs(sim, state);
  } else {
    ThreadPool tp(threads);
    const std::vector<BranchCollector> branches =
        tp.parallel_map<BranchCollector>(
            pending, [&](std::size_t, std::size_t i) {
              BranchCollector out;
              out.options = state.options;
              out.base_deliveries = state.base_deliveries;
              Simulator branch(sim);
              branch.step_specific(i);
              dfs_collect(branch, out);
              return out;
            });
    for (const BranchCollector& branch : branches) {
      for (const PathRecord& rec : branch.paths) {
        ++state.result.paths;
        state.result.max_depth = std::max(state.result.max_depth, rec.depth);
        state.outcomes.insert(rec.values);
        if (state.result.paths >= state.options->max_paths) {
          state.result.truncated = true;
          break;
        }
      }
      if (state.result.truncated) break;
    }
  }
  state.result.distinct_outcomes =
      static_cast<std::int64_t>(state.outcomes.size());
  return state.result;
}

}  // namespace

ExploreResult explore_schedules(const Simulator& base,
                                const std::vector<ProcessorId>& ops,
                                const ExploreOptions& options) {
  DCNT_CHECK_MSG(!base.config().fifo_channels,
                 "exploration enumerates orders; disable fifo_channels");
  DCNT_CHECK(options.max_paths > 0);
  Simulator sim(base);
  for (const ProcessorId origin : ops) sim.begin_inc(origin);
  ExploreState state;
  state.options = &options;
  state.base_deliveries = base.deliveries();
  return run(std::move(sim), std::move(state));
}

ExploreResult explore_schedules_args(
    const Simulator& base,
    const std::vector<std::pair<ProcessorId, std::vector<std::int64_t>>>& ops,
    const ExploreOptions& options) {
  DCNT_CHECK_MSG(!base.config().fifo_channels,
                 "exploration enumerates orders; disable fifo_channels");
  DCNT_CHECK(options.max_paths > 0);
  Simulator sim(base);
  for (const auto& [origin, args] : ops) sim.begin_op(origin, args);
  ExploreState state;
  state.options = &options;
  state.base_deliveries = base.deliveries();
  return run(std::move(sim), std::move(state));
}

}  // namespace dcnt
