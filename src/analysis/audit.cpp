#include "analysis/audit.hpp"

#include <algorithm>
#include <map>

#include "core/bound.hpp"
#include "support/check.hpp"

namespace dcnt {

TreeAuditReport audit_tree_run(const Simulator& sim) {
  const auto* counter = dynamic_cast<const TreeService*>(&sim.counter());
  DCNT_CHECK_MSG(counter != nullptr, "audit_tree_run needs a TreeService");
  const TreeLayout& layout = counter->layout();
  const int k = layout.k();

  TreeAuditReport report;

  // --- Retirement Lemma: group the log by (op, node). ---
  {
    std::map<std::pair<OpId, NodeId>, std::int64_t> per_op_node;
    for (const auto& ev : counter->retirement_log()) {
      ++per_op_node[{ev.op, ev.node}];
    }
    for (const auto& [key, count] : per_op_node) {
      report.max_retirements_per_node_per_op =
          std::max(report.max_retirements_per_node_per_op, count);
    }
    report.retirement_lemma_ok = report.max_retirements_per_node_per_op <= 1;
  }

  // --- Number of Retirements Lemma. ---
  {
    report.max_retirements_by_level.assign(static_cast<std::size_t>(k) + 1, 0);
    report.pool_budget_by_level.resize(static_cast<std::size_t>(k) + 1);
    for (int level = 0; level <= k; ++level) {
      report.pool_budget_by_level[static_cast<std::size_t>(level)] =
          (level == 0 ? layout.n() : ipow(k, k - level)) - 1;
    }
    std::map<NodeId, std::int64_t> per_node;
    for (const auto& ev : counter->retirement_log()) {
      const std::int64_t count = ++per_node[ev.node];
      auto& level_max =
          report.max_retirements_by_level[static_cast<std::size_t>(ev.level)];
      level_max = std::max(level_max, count);
      report.max_retirements_per_node =
          std::max(report.max_retirements_per_node, count);
    }
    // Pools are exactly the budget: a wrap means the lemma's budget was
    // exceeded somewhere.
    report.pools_ok = counter->stats().pool_wraps == 0 &&
                      counter->stats().self_handovers == 0;
    for (int level = 0; level <= k; ++level) {
      if (report.max_retirements_by_level[static_cast<std::size_t>(level)] >
          report.pool_budget_by_level[static_cast<std::size_t>(level)]) {
        report.pools_ok = false;
      }
    }
  }

  // --- Per-operation message budget. ---
  {
    std::map<OpId, std::int64_t> retirements_per_op;
    for (const auto& ev : counter->retirement_log()) {
      ++retirements_per_op[ev.op];
    }
    const auto& per_op = sim.metrics().per_op_messages();
    std::int64_t worst = 0;
    std::int64_t worst_budget = 0;
    bool ok = true;
    for (std::size_t op = 0; op < per_op.size(); ++op) {
      const std::int64_t retirements =
          retirements_per_op.count(static_cast<OpId>(op)) != 0
              ? retirements_per_op[static_cast<OpId>(op)]
              : 0;
      // Path: k+1 up, 1 down. Each retirement: k+1 handover, k+1
      // notifications, plus a forwarded message or two.
      const std::int64_t budget = (k + 2) + retirements * (2 * k + 4);
      if (per_op[op] > worst) worst = per_op[op];
      if (per_op[op] > budget) ok = false;
      worst_budget = std::max(worst_budget, budget);
    }
    report.max_op_messages = worst;
    report.op_message_budget = worst_budget;
    report.op_messages_ok = ok;
  }

  // --- Bottleneck Theorem. ---
  report.max_load = sim.metrics().max_load();
  report.load_per_k = static_cast<double>(report.max_load) /
                      static_cast<double>(std::max(1, k));
  return report;
}

}  // namespace dcnt
