#include "analysis/weights.hpp"

#include "support/check.hpp"

namespace dcnt {

double list_weight(const std::vector<ProcessorId>& list,
                   const std::vector<std::int64_t>& loads) {
  double weight = 0.0;
  double scale = 1.0;
  for (const ProcessorId p : list) {
    DCNT_CHECK(p >= 0 && static_cast<std::size_t>(p) < loads.size());
    weight +=
        (static_cast<double>(loads[static_cast<std::size_t>(p)]) + 1.0) *
        scale;
    scale *= 0.5;
  }
  return weight;
}

double list_weight(const std::vector<ProcessorId>& list,
                   const Metrics& metrics) {
  std::vector<std::int64_t> loads(metrics.num_processors());
  for (std::size_t p = 0; p < loads.size(); ++p) {
    loads[p] = metrics.load(static_cast<ProcessorId>(p));
  }
  return list_weight(list, loads);
}

}  // namespace dcnt
