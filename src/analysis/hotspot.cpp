#include "analysis/hotspot.hpp"

#include <algorithm>
#include <limits>

#include "analysis/dag.hpp"
#include "support/check.hpp"

namespace dcnt {

namespace {
std::int64_t intersection_size(const std::vector<ProcessorId>& a,
                               const std::vector<ProcessorId>& b) {
  std::int64_t count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}
}  // namespace

HotSpotReport check_hot_spot(const Trace& trace,
                             const std::vector<ProcessorId>& origins) {
  DCNT_CHECK(trace.enabled());
  HotSpotReport report;
  report.min_intersection = std::numeric_limits<std::int64_t>::max();
  if (origins.size() < 2) {
    report.min_intersection = 0;
    return report;
  }
  std::vector<ProcessorId> prev =
      participants(trace, 0, origins[0]);
  for (std::size_t i = 1; i < origins.size(); ++i) {
    const std::vector<ProcessorId> cur =
        participants(trace, static_cast<OpId>(i), origins[i]);
    const std::int64_t common = intersection_size(prev, cur);
    ++report.pairs_checked;
    report.min_intersection = std::min(report.min_intersection, common);
    if (common == 0 && report.all_intersect) {
      report.all_intersect = false;
      report.first_violation = i - 1;
    }
    prev = cur;
  }
  return report;
}

}  // namespace dcnt
