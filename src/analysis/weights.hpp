// The lower-bound proof's potential function (§3).
//
// For the i-th operation the proof looks at the communication list
// u_0, u_1, ..., u_L of the *last* processor's (hypothetical) inc and
// assigns it the weight
//
//     w_i = sum_j (m(u_j) + 1) / 2^j
//
// where m(p) is p's message load before operation i. The proof shows
// the weight can only grow, by at least 2^-l_i per step, which pumps up
// the last processor's load to Omega(k). These helpers compute the
// weight of concrete lists so the adversary can expose the potential's
// trajectory on real runs (bench_lower_bound / Figure 3).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/types.hpp"

namespace dcnt {

/// Weight of a communication list under the given per-processor loads.
/// list[0] is the initiator (exponent 0).
double list_weight(const std::vector<ProcessorId>& list,
                   const Metrics& metrics);

/// Same, with loads supplied directly (for unit tests).
double list_weight(const std::vector<ProcessorId>& list,
                   const std::vector<std::int64_t>& loads);

}  // namespace dcnt
