// Reconstruction of the paper's §2 artifacts from a simulation trace:
//
//   * the *process DAG* of one inc operation (Figure 1): nodes are
//     "processor q performing some communication", arcs are messages;
//   * its *communication list* (Figure 2): the DAG's nodes in a
//     topologically sorted line — the object the lower-bound proof
//     manipulates (list length = number of messages);
//   * the participant set I_p: "the set of all processors that send or
//     receive a message during the observed inc process".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace dcnt {

struct IncDag {
  OpId op{kNoOp};
  /// One node per processor *occurrence*. Node 0 is the initiator (the
  /// DAG's source).
  struct Node {
    ProcessorId processor{kNoProcessor};
    RecordId via{kNoRecord};  ///< message that created this occurrence
  };
  struct Arc {
    int from{0};
    int to{0};
    RecordId record{kNoRecord};
  };
  std::vector<Node> nodes;
  std::vector<Arc> arcs;
};

/// Builds the DAG of operation `op` from a trace. `origin` is the
/// initiating processor (the source node even when it sent no message).
IncDag build_inc_dag(const Trace& trace, OpId op, ProcessorId origin);

/// The paper's communication list: DAG node labels in topological order
/// (send order is one such order). The list's "length" in the paper is
/// its number of arcs = messages = size() - 1.
std::vector<ProcessorId> communication_list(const IncDag& dag);

/// I_p for operation `op`: all processors sending or receiving during
/// the process, including the initiator.
std::vector<ProcessorId> participants(const Trace& trace, OpId op,
                                      ProcessorId origin);

/// Number of (network) messages attributed to `op` in the trace.
std::int64_t op_message_count(const Trace& trace, OpId op);

/// Graphviz rendering of the DAG, with processors as node labels —
/// reproduces Figure 1 for any traced run.
std::string to_dot(const IncDag& dag);

}  // namespace dcnt
