// Per-level profile of a tree-service run: where the §4 machinery's
// work actually lands. For each tree level it reports how many distinct
// processors served a node there (initial incumbents + replacements),
// the retirement traffic, and the pool budget headroom — the concrete
// numbers behind the Number-of-Retirements Lemma and the Bottleneck
// Theorem's "each processor works for at most one non-root inner node"
// accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tree_service.hpp"
#include "sim/simulator.hpp"

namespace dcnt {

struct LevelProfile {
  int level{0};
  std::int64_t nodes{0};
  std::int64_t retirements{0};
  std::int64_t max_retirements_per_node{0};
  std::int64_t pool_budget_per_node{0};  ///< k^(k-i) - 1 (root: n - 1)
  /// Distinct processors that ever served a node on this level
  /// (initial incumbents + every successor).
  std::int64_t distinct_incumbents{0};
  /// Mean message load of those processors.
  double mean_incumbent_load{0.0};
  /// Max message load among them.
  std::int64_t max_incumbent_load{0};
};

/// Profiles a finished tree-service simulation (aborts on other
/// protocols).
std::vector<LevelProfile> tree_level_profile(const Simulator& sim);

/// Aligned text rendering (one row per level).
std::string to_string(const std::vector<LevelProfile>& profile);

}  // namespace dcnt
