#include "analysis/adversary.hpp"

#include <algorithm>
#include <memory>
#include <optional>

#include "analysis/dag.hpp"
#include "analysis/weights.hpp"
#include "core/bound.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace dcnt {

namespace {

/// One dry-run: a candidate's inc under one delivery schedule.
/// (nullopt reseed = the committed simulator's current stream.)
struct DryRunTask {
  ProcessorId candidate{kNoProcessor};
  std::optional<std::uint64_t> reseed;
};

/// A pool of per-worker scratch simulators. The first dry-run on a
/// worker deep-clones the base state; every later one restore()s into
/// the same object, reusing its buffers.
class ScratchPool {
 public:
  explicit ScratchPool(std::size_t workers) : scratch_(workers) {}

  Simulator& prepared(std::size_t worker, const Simulator& base) {
    auto& slot = scratch_[worker];
    if (slot == nullptr) {
      slot = std::make_unique<Simulator>(base);
    } else {
      slot->restore(base);
    }
    return *slot;
  }

 private:
  std::vector<std::unique_ptr<Simulator>> scratch_;
};

/// Dry-run one task against `base` on a worker's scratch simulator and
/// return the number of messages the candidate's inc generated.
std::int64_t dry_run(ScratchPool& scratch, std::size_t worker,
                     const Simulator& base, const DryRunTask& task) {
  Simulator& sim = scratch.prepared(worker, base);
  if (task.reseed.has_value()) sim.reseed(*task.reseed);
  const std::int64_t before = sim.metrics().total_messages();
  const OpId op = sim.begin_inc(task.candidate);
  sim.run_until_quiescent();
  DCNT_CHECK(sim.result(op).has_value());
  return sim.metrics().total_messages() - before;
}

}  // namespace

std::vector<ProcessorId> sample_without_replacement(
    const std::vector<ProcessorId>& pool, std::size_t sample, Rng& rng) {
  if (sample == 0 || sample >= pool.size()) return pool;
  std::vector<ProcessorId> out = pool;
  // Partial Fisher-Yates: the first `sample` entries become the sample;
  // each swap draws from the untouched suffix, so entries are distinct
  // by construction.
  for (std::size_t i = 0; i < sample; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(out.size() - i));
    std::swap(out[i], out[j]);
  }
  out.resize(sample);
  return out;
}

AdversaryResult run_adversarial_sequence(const Simulator& base,
                                         const AdversaryOptions& options) {
  DCNT_CHECK_MSG(base.ops_started() == 0,
                 "adversary requires a fresh simulator");
  AdversaryResult result;
  const auto n = static_cast<std::int64_t>(base.num_processors());
  result.paper_k = bottleneck_k(static_cast<double>(n));
  Rng rng(options.seed);

  ThreadPool pool(resolve_thread_count(options.threads));
  ScratchPool scratch(pool.size());

  Simulator sim(base);
  std::vector<ProcessorId> remaining;
  remaining.reserve(static_cast<std::size_t>(n));
  for (ProcessorId p = 0; p < n; ++p) remaining.push_back(p);

  const std::size_t samples = std::max<std::size_t>(1, options.schedule_samples);
  std::vector<ProcessorId> chosen_sequence;
  std::vector<DryRunTask> tasks;
  while (!remaining.empty()) {
    const auto candidates =
        sample_without_replacement(remaining, options.sample_candidates, rng);
    // All schedule reseeds are drawn serially up front (candidate-major,
    // matching the historical serial draw order) so the rng stream —
    // and with it every downstream result — is independent of how the
    // dry-runs are scheduled over workers.
    tasks.clear();
    for (const ProcessorId c : candidates) {
      for (std::size_t s = 0; s < samples; ++s) {
        DryRunTask task;
        task.candidate = c;
        if (s > 0) task.reseed = rng.next();
        tasks.push_back(task);
      }
    }
    const std::vector<std::int64_t> messages =
        pool.parallel_map<std::int64_t>(
            tasks.size(), [&](std::size_t worker, std::size_t i) {
              return dry_run(scratch, worker, sim, tasks[i]);
            });
    // Deterministic reduction, independent of candidate order: most
    // messages wins; across candidates ties go to the lowest
    // ProcessorId; within a candidate, to the earliest sample.
    ProcessorId best = kNoProcessor;
    std::int64_t best_messages = -1;
    std::optional<std::uint64_t> best_reseed;
    for (std::size_t t = 0; t < tasks.size();) {
      const ProcessorId c = tasks[t].candidate;
      std::int64_t cand_messages = -1;
      std::optional<std::uint64_t> cand_reseed;
      for (; t < tasks.size() && tasks[t].candidate == c; ++t) {
        if (messages[t] > cand_messages) {
          cand_messages = messages[t];
          cand_reseed = tasks[t].reseed;
        }
      }
      if (cand_messages > best_messages ||
          (cand_messages == best_messages && c < best)) {
        best_messages = cand_messages;
        best = c;
        best_reseed = cand_reseed;
      }
    }
    // Replay the winning process: same candidate, same schedule stream.
    if (best_reseed.has_value()) sim.reseed(*best_reseed);
    const OpId op = sim.begin_inc(best);
    sim.run_until_quiescent();
    DCNT_CHECK(sim.result(op).has_value());
    AdversaryStep step;
    step.chosen = best;
    step.messages = best_messages;
    result.steps.push_back(step);
    chosen_sequence.push_back(best);
    remaining.erase(std::find(remaining.begin(), remaining.end(), best));
  }

  result.max_load = sim.metrics().max_load();
  result.bottleneck = sim.metrics().bottleneck();
  result.total_messages = sim.metrics().total_messages();
  result.last_processor = chosen_sequence.back();
  result.last_processor_load = sim.metrics().load(result.last_processor);

  if (options.record_weights) {
    DCNT_CHECK_MSG(base.config().enable_trace,
                   "record_weights needs tracing in the base simulator");
    const ProcessorId q = result.last_processor;
    Simulator replay(base);
    Simulator probe(base);  // reused across steps via restore()
    for (std::size_t i = 0; i < chosen_sequence.size(); ++i) {
      // Before op i: dry-run q's inc to obtain its list l_i and w_i.
      {
        probe.restore(replay);
        const OpId probe_op = probe.begin_inc(q);
        probe.run_until_quiescent();
        const IncDag dag = build_inc_dag(probe.trace(), probe_op, q);
        const auto list = communication_list(dag);
        result.steps[i].last_list_len =
            static_cast<std::int64_t>(list.size()) - 1;
        // Weights use the loads *before* op i — replay's metrics.
        result.steps[i].last_weight = list_weight(list, replay.metrics());
      }
      const OpId op = replay.begin_inc(chosen_sequence[i]);
      replay.run_until_quiescent();
      DCNT_CHECK(replay.result(op).has_value());
    }
  }
  return result;
}

}  // namespace dcnt
