#include "analysis/adversary.hpp"

#include <algorithm>
#include <optional>

#include "analysis/dag.hpp"
#include "analysis/weights.hpp"
#include "core/bound.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt {

namespace {

struct ProbeResult {
  std::int64_t messages{-1};
  /// Schedule reseed that realized it (nullopt = the current stream).
  std::optional<std::uint64_t> reseed;
};

/// Dry-run one inc of `candidate` over `samples` delivery schedules;
/// returns the longest process found and how to reproduce it.
ProbeResult probe_candidate(const Simulator& sim, ProcessorId candidate,
                            std::size_t samples, Rng& rng) {
  ProbeResult best;
  for (std::size_t s = 0; s < std::max<std::size_t>(1, samples); ++s) {
    Simulator clone(sim);
    std::optional<std::uint64_t> reseed;
    if (s > 0) {
      reseed = rng.next();
      clone.reseed(*reseed);
    }
    const std::int64_t before = clone.metrics().total_messages();
    const OpId op = clone.begin_inc(candidate);
    clone.run_until_quiescent();
    DCNT_CHECK(clone.result(op).has_value());
    const std::int64_t messages = clone.metrics().total_messages() - before;
    if (messages > best.messages) {
      best.messages = messages;
      best.reseed = reseed;
    }
  }
  return best;
}

std::vector<ProcessorId> pick_candidates(
    const std::vector<ProcessorId>& remaining, std::size_t sample, Rng& rng) {
  if (sample == 0 || sample >= remaining.size()) return remaining;
  std::vector<ProcessorId> pool = remaining;
  // Partial Fisher-Yates: the first `sample` entries become the sample.
  for (std::size_t i = 0; i < sample; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.next_below(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(sample);
  return pool;
}

}  // namespace

AdversaryResult run_adversarial_sequence(const Simulator& base,
                                         const AdversaryOptions& options) {
  DCNT_CHECK_MSG(base.ops_started() == 0,
                 "adversary requires a fresh simulator");
  AdversaryResult result;
  const auto n = static_cast<std::int64_t>(base.num_processors());
  result.paper_k = bottleneck_k(static_cast<double>(n));
  Rng rng(options.seed);

  Simulator sim(base);
  std::vector<ProcessorId> remaining;
  remaining.reserve(static_cast<std::size_t>(n));
  for (ProcessorId p = 0; p < n; ++p) remaining.push_back(p);

  std::vector<ProcessorId> chosen_sequence;
  while (!remaining.empty()) {
    const auto candidates =
        pick_candidates(remaining, options.sample_candidates, rng);
    ProcessorId best = candidates.front();
    std::int64_t best_messages = -1;
    std::optional<std::uint64_t> best_reseed;
    for (const ProcessorId c : candidates) {
      const ProbeResult probe =
          probe_candidate(sim, c, options.schedule_samples, rng);
      if (probe.messages > best_messages) {
        best_messages = probe.messages;
        best = c;
        best_reseed = probe.reseed;
      }
    }
    // Replay the winning process: same candidate, same schedule stream.
    if (best_reseed.has_value()) sim.reseed(*best_reseed);
    const OpId op = sim.begin_inc(best);
    sim.run_until_quiescent();
    DCNT_CHECK(sim.result(op).has_value());
    AdversaryStep step;
    step.chosen = best;
    step.messages = best_messages;
    result.steps.push_back(step);
    chosen_sequence.push_back(best);
    remaining.erase(std::find(remaining.begin(), remaining.end(), best));
  }

  result.max_load = sim.metrics().max_load();
  result.bottleneck = sim.metrics().bottleneck();
  result.total_messages = sim.metrics().total_messages();
  result.last_processor = chosen_sequence.back();
  result.last_processor_load = sim.metrics().load(result.last_processor);

  if (options.record_weights) {
    DCNT_CHECK_MSG(base.config().enable_trace,
                   "record_weights needs tracing in the base simulator");
    const ProcessorId q = result.last_processor;
    Simulator replay(base);
    for (std::size_t i = 0; i < chosen_sequence.size(); ++i) {
      // Before op i: dry-run q's inc to obtain its list l_i and w_i.
      {
        Simulator probe(replay);
        const OpId probe_op = probe.begin_inc(q);
        probe.run_until_quiescent();
        const IncDag dag = build_inc_dag(probe.trace(), probe_op, q);
        const auto list = communication_list(dag);
        result.steps[i].last_list_len =
            static_cast<std::int64_t>(list.size()) - 1;
        // Weights use the loads *before* op i — replay's metrics.
        result.steps[i].last_weight = list_weight(list, replay.metrics());
      }
      const OpId op = replay.begin_inc(chosen_sequence[i]);
      replay.run_until_quiescent();
      DCNT_CHECK(replay.result(op).has_value());
    }
  }
  return result;
}

}  // namespace dcnt
