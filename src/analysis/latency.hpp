// Operation latency (simulated response - invocation time).
//
// The paper deliberately bounds *messages per processor*, not time; its
// introduction notes time complexity as the established measure these
// bounds complement. Latency reports add that texture to the benches:
// the tree counter pays Theta(k) hops per inc where the central counter
// pays one round trip — the price of spreading load.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "support/stats.hpp"

namespace dcnt {

struct LatencyReport {
  std::int64_t ops{0};
  double mean{0.0};
  std::int64_t p50{0};
  std::int64_t p99{0};
  std::int64_t max{0};
};

/// Latencies of all completed ops in `sim` (aborts if any op is still
/// outstanding).
LatencyReport latency_report(const Simulator& sim);

/// Raw latency samples, for custom statistics.
Summary latency_summary(const Simulator& sim);

}  // namespace dcnt
