#include "analysis/report.hpp"

#include <sstream>

#include "core/bound.hpp"

namespace dcnt {

LoadReport make_load_report(const Simulator& sim) {
  LoadReport report;
  report.n = static_cast<std::int64_t>(sim.num_processors());
  report.ops = static_cast<std::int64_t>(sim.ops_completed());
  const Metrics& metrics = sim.metrics();
  report.max_load = metrics.max_load();
  report.bottleneck = metrics.bottleneck();
  report.total_messages = metrics.total_messages();
  report.total_words = metrics.total_words();
  const Summary loads = metrics.load_summary();
  report.mean_load = loads.mean();
  report.p50 = loads.percentile(50);
  report.p99 = loads.percentile(99);
  report.paper_k = bottleneck_k(static_cast<double>(report.n));
  report.load_per_k = report.paper_k > 0
                          ? static_cast<double>(report.max_load) / report.paper_k
                          : 0.0;
  return report;
}

std::string to_string(const LoadReport& report) {
  std::ostringstream os;
  os << "n=" << report.n << " ops=" << report.ops
     << " max_load=" << report.max_load << " (processor "
     << report.bottleneck << ")"
     << " mean=" << report.mean_load << " p50=" << report.p50
     << " p99=" << report.p99 << " total_msgs=" << report.total_messages
     << " k(n)=" << report.paper_k << " max/k=" << report.load_per_k;
  return os.str();
}

}  // namespace dcnt
