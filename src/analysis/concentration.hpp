// Load-concentration metrics, in the spirit of Dwork, Herlihy & Waarts'
// contention analysis [DHW93] (cited by the paper): the bottleneck
// (max load) says who suffers most; these metrics say how unequally the
// *whole* message volume is spread.
//
//   * max/mean ratio — 1.0 for perfectly balanced load, Theta(n) for a
//     single hot spot handling everything;
//   * Gini coefficient — 0 for equal loads, -> 1 for total
//     concentration;
//   * top-share(q) — fraction of all message handling performed by the
//     busiest q-fraction of processors.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/metrics.hpp"

namespace dcnt {

struct ConcentrationReport {
  double max_over_mean{0.0};
  double gini{0.0};
  /// Share of total load carried by the busiest 1% / 10% of processors.
  double top1_share{0.0};
  double top10_share{0.0};
};

ConcentrationReport concentration(const std::vector<std::int64_t>& loads);
ConcentrationReport concentration(const Metrics& metrics);

}  // namespace dcnt
