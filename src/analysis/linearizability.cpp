#include "analysis/linearizability.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dcnt {

LinearizabilityReport check_linearizable(
    std::vector<CounterOpRecord> history) {
  LinearizabilityReport report;
  if (history.empty()) return report;

  // Sweep invocations in time order; maintain the maximum value among
  // operations that had already responded strictly earlier. A violation
  // is an invocation whose (eventual) value undercuts that maximum.
  std::vector<CounterOpRecord> by_inv = history;
  std::sort(by_inv.begin(), by_inv.end(),
            [](const CounterOpRecord& a, const CounterOpRecord& b) {
              return a.invoked < b.invoked;
            });
  std::vector<CounterOpRecord> by_resp = history;
  std::sort(by_resp.begin(), by_resp.end(),
            [](const CounterOpRecord& a, const CounterOpRecord& b) {
              return a.responded < b.responded;
            });

  std::size_t resp_idx = 0;
  Value max_completed_value = -1;
  OpId max_completed_op = kNoOp;
  for (const CounterOpRecord& b : by_inv) {
    while (resp_idx < by_resp.size() &&
           by_resp[resp_idx].responded < b.invoked) {
      if (by_resp[resp_idx].value > max_completed_value) {
        max_completed_value = by_resp[resp_idx].value;
        max_completed_op = by_resp[resp_idx].op;
      }
      ++resp_idx;
    }
    if (max_completed_value > b.value) {
      ++report.violations;
      if (report.linearizable) {
        report.linearizable = false;
        report.first_a = max_completed_op;
        report.first_b = b.op;
      }
    }
  }
  return report;
}

std::vector<CounterOpRecord> counter_history(const Simulator& sim) {
  std::vector<CounterOpRecord> history;
  history.reserve(sim.ops_started());
  for (OpId op = 0; op < static_cast<OpId>(sim.ops_started()); ++op) {
    const auto result = sim.result(op);
    DCNT_CHECK_MSG(result.has_value(), "history has an incomplete op");
    CounterOpRecord rec;
    rec.op = op;
    rec.invoked = sim.op_invoked_at(op);
    rec.responded = sim.op_responded_at(op);
    rec.value = *result;
    history.push_back(rec);
  }
  return history;
}

}  // namespace dcnt
