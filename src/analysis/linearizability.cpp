#include "analysis/linearizability.hpp"

#include "support/check.hpp"

namespace dcnt {

std::vector<CounterOpRecord> counter_history(const Simulator& sim) {
  std::vector<CounterOpRecord> history;
  history.reserve(sim.ops_started());
  for (OpId op = 0; op < static_cast<OpId>(sim.ops_started()); ++op) {
    const auto result = sim.result(op);
    DCNT_CHECK_MSG(result.has_value(), "history has an incomplete op");
    CounterOpRecord rec;
    rec.op = op;
    rec.invoked = sim.op_invoked_at(op);
    rec.responded = sim.op_responded_at(op);
    rec.value = *result;
    history.push_back(rec);
  }
  return history;
}

}  // namespace dcnt
