#include "analysis/dag.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "support/check.hpp"

namespace dcnt {

IncDag build_inc_dag(const Trace& trace, OpId op, ProcessorId origin) {
  DCNT_CHECK_MSG(trace.enabled(), "tracing was not enabled for this run");
  IncDag dag;
  dag.op = op;
  dag.nodes.push_back({origin, kNoRecord});
  // The occurrence a record's children hang off: the node created by
  // that record's delivery.
  std::unordered_map<RecordId, int> occurrence_of_record;
  for (const auto& rec : trace.records()) {
    if (rec.op != op) continue;
    int from = 0;  // default: initiated by the source
    if (rec.parent != kNoRecord) {
      const auto it = occurrence_of_record.find(rec.parent);
      // The parent may belong to an earlier op (a handover message that
      // a later op's message causally follows cannot happen within one
      // sequential op, but be defensive): treat unknown parents as
      // initiations.
      if (it != occurrence_of_record.end()) from = it->second;
    }
    const int to = static_cast<int>(dag.nodes.size());
    dag.nodes.push_back({rec.dst, rec.id});
    occurrence_of_record.emplace(rec.id, to);
    dag.arcs.push_back({from, to, rec.id});
  }
  return dag;
}

std::vector<ProcessorId> communication_list(const IncDag& dag) {
  // Records were appended in send order, which topologically sorts the
  // DAG (a message is always sent after the message that caused it was
  // delivered... sent); nodes are already in that order.
  std::vector<ProcessorId> list;
  list.reserve(dag.nodes.size());
  for (const auto& node : dag.nodes) list.push_back(node.processor);
  return list;
}

std::vector<ProcessorId> participants(const Trace& trace, OpId op,
                                      ProcessorId origin) {
  std::vector<ProcessorId> set = {origin};
  for (const auto& rec : trace.records()) {
    if (rec.op != op) continue;
    set.push_back(rec.src);
    set.push_back(rec.dst);
  }
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  return set;
}

std::int64_t op_message_count(const Trace& trace, OpId op) {
  std::int64_t count = 0;
  for (const auto& rec : trace.records()) {
    if (rec.op == op) ++count;
  }
  return count;
}

std::string to_dot(const IncDag& dag) {
  std::ostringstream os;
  os << "digraph inc_" << dag.op << " {\n";
  os << "  rankdir=LR;\n  node [shape=circle];\n";
  for (std::size_t i = 0; i < dag.nodes.size(); ++i) {
    os << "  n" << i << " [label=\"" << dag.nodes[i].processor << "\"";
    if (i == 0) os << " style=bold";
    os << "];\n";
  }
  for (const auto& arc : dag.arcs) {
    os << "  n" << arc.from << " -> n" << arc.to << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dcnt
