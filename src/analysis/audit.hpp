// Executable audits of the paper's §4 lemmas, applied to a completed
// tree-counter run:
//
//   * Retirement Lemma      — "No node retires more than once during
//                              any single inc operation."
//   * Number of Retirements — "each node on level i retires at most
//     Lemma                    k^(k-i) - 1 times" (equivalently: no
//                              replacement pool is ever exhausted).
//   * Grow Old Lemma        — non-retiring inner nodes handle O(1)
//                              messages per inc; audited at the
//                              per-operation message-count level.
//   * Bottleneck Theorem    — every processor's total load is O(k).
//
// The audits consume the retirement log and the metrics; the
// trace-level Grow Old audit additionally needs tracing enabled.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tree_service.hpp"
#include "sim/simulator.hpp"

namespace dcnt {

struct TreeAuditReport {
  // Retirement Lemma.
  bool retirement_lemma_ok{true};
  std::int64_t max_retirements_per_node_per_op{0};

  // Number of Retirements Lemma.
  bool pools_ok{true};  ///< no pool wrap = within the paper's budget
  std::int64_t max_retirements_per_node{0};
  std::vector<std::int64_t> max_retirements_by_level;
  std::vector<std::int64_t> pool_budget_by_level;  ///< k^(k-i) - 1

  // Per-operation message bound (Grow Old + Retirement consequences):
  // an op's messages are at most the path cost k+2 plus O(k) per
  // retirement it triggers.
  std::int64_t max_op_messages{0};
  std::int64_t op_message_budget{0};
  bool op_messages_ok{true};

  // Bottleneck Theorem.
  std::int64_t max_load{0};
  double load_per_k{0.0};
};

/// Audits a finished sequential run of any TreeService simulation
/// (counter, flip bit, priority queue); aborts on other protocols.
TreeAuditReport audit_tree_run(const Simulator& sim);

}  // namespace dcnt
