// The Hot Spot Lemma, checked on real executions: "Let p and q be two
// processors that increment the counter in direct succession. Then
// I_p ∩ I_q != ∅ must hold." (Paper, §2.)
//
// Any correct counter must satisfy this — it is the paper's necessary
// condition for information about the new value to flow between
// consecutive operations — so it doubles as a cross-implementation
// sanity property in the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace dcnt {

struct HotSpotReport {
  bool all_intersect{true};
  /// Index i of the first violating consecutive pair (ops i, i+1).
  std::size_t first_violation{0};
  std::int64_t pairs_checked{0};
  /// Size of the smallest pairwise intersection seen (the "tightness"
  /// of the information channel between consecutive operations).
  std::int64_t min_intersection{0};
};

/// `origins[i]` must be the initiator of operation i (OpIds 0..m-1 in
/// the trace). Requires tracing to have been enabled.
HotSpotReport check_hot_spot(const Trace& trace,
                             const std::vector<ProcessorId>& origins);

}  // namespace dcnt
