// Bitonic counting network, after Aspnes, Herlihy & Shavit [AHS91]
// (paper, Related Work), in the message-passing model.
//
// A width-w bitonic network is a layered wiring of 2-input/2-output
// *balancers*; each balancer forwards arriving tokens alternately to its
// top and bottom output wire. Tokens leave the network on output wires
// satisfying the step property, so appending a local counter to output
// wire y (handing out y, y+w, y+2w, ...) yields a correct concurrent
// counter. Depth is (log2 w)(log2 w + 1)/2 and each balancer is placed
// on a processor, spreading traffic: per-token work is Theta(log^2 w)
// messages but no single processor sees more than an O(1/w) share of
// the stream — a contention/throughput trade-off, which is orthogonal
// to the paper's per-processor *total load* bound (the network still
// cannot beat Omega(k) on the bottleneck).
//
// Construction (classic recursive bitonic merger):
//   Bitonic[1]  = wire
//   Bitonic[2t] = two Bitonic[t] halves followed by Merger[2t]
//   Merger[2t]  = Merger[t] on (even upper, odd lower), Merger[t] on
//                 (odd upper, even lower), then a final layer of t
//                 balancers joining the i-th outputs of the two mergers.
// Because tokens never change physical wire except inside a balancer,
// the recursion is carried out on wire-index lists, and the network's
// designated output order is the list the recursion returns.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.hpp"

namespace dcnt {

enum class NetworkKind : std::uint8_t {
  kBitonic,   ///< Bitonic[w], depth (log w)(log w + 1)/2
  kPeriodic,  ///< Periodic[w] = log w butterfly blocks, depth (log w)^2
};

struct CountingNetworkParams {
  std::int64_t n{2};  ///< processors
  int width{2};       ///< network width; power of two, <= n
  NetworkKind kind{NetworkKind::kBitonic};
};

class CountingNetworkCounter final : public CounterProtocol {
 public:
  explicit CountingNetworkCounter(CountingNetworkParams params);

  /// [balancer] — token traversal
  static constexpr std::int32_t kTagToken = 1;
  /// [wire] — token reached an output cell
  static constexpr std::int32_t kTagCell = 2;
  /// [value] — back to the origin
  static constexpr std::int32_t kTagValue = 3;

  std::size_t num_processors() const override;
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override;
  void on_message(Context& ctx, const Message& msg) override;
  std::unique_ptr<CounterProtocol> clone_counter() const override;
  bool try_assign_from(const Protocol& other) override {
    return protocol_assign(*this, other);
  }
  std::string name() const override;
  void check_quiescent(std::size_t ops_completed) const override;

  int width() const { return width_; }
  std::size_t num_balancers() const { return balancers_.size(); }
  int depth() const { return depth_; }
  /// The network's designated output order: output index y sits on
  /// physical wire output_order()[y].
  const std::vector<int>& output_order() const { return output_order_; }
  /// Tokens that crossed balancer b so far (for step-property tests).
  std::int64_t balancer_visits(std::size_t b) const {
    return balancers_[b].visits;
  }
  ProcessorId balancer_pid(std::size_t b) const { return balancers_[b].pid; }
  std::int64_t cell_count(int wire) const {
    return cells_[static_cast<std::size_t>(wire)].count;
  }

 private:
  struct Balancer {
    int wire[2] = {0, 0};      ///< top, bottom physical wire
    int pos_in_wire[2] = {0, 0};  ///< index within each wire's sequence
    ProcessorId pid{kNoProcessor};
    bool toggle{false};  ///< false = next token exits on top
    std::int64_t visits{0};
  };
  struct Cell {
    int out_index{0};  ///< position of this wire in the output order
    ProcessorId pid{kNoProcessor};
    std::int64_t count{0};
  };

  // Recursive constructors; return their output wire order.
  std::vector<int> build_bitonic(const std::vector<int>& wires);
  std::vector<int> build_merger(const std::vector<int>& upper,
                                const std::vector<int>& lower);
  /// AHS91's second construction: log w identical butterfly blocks
  /// (after Dowd-Perl-Rudolph-Saks); outputs in natural wire order.
  std::vector<int> build_periodic();
  int add_balancer(int top_wire, int bottom_wire);
  void route_token(Context& ctx, ProcessorId via, ProcessorId origin,
                   int wire, int pos_hint);

  std::int64_t n_;
  int width_;
  NetworkKind kind_;
  int depth_{0};
  std::vector<Balancer> balancers_;
  std::vector<std::vector<int>> wire_seq_;  ///< balancers along each wire
  std::vector<int> output_order_;
  std::vector<Cell> cells_;  ///< indexed by physical wire
};

}  // namespace dcnt
