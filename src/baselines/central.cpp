#include "baselines/central.hpp"

#include "support/check.hpp"

namespace dcnt {

CentralCounter::CentralCounter(std::int64_t n, ProcessorId holder)
    : n_(n), holder_(holder) {
  DCNT_CHECK(n > 0);
  DCNT_CHECK(holder >= 0 && holder < n);
}

std::size_t CentralCounter::num_processors() const {
  return static_cast<std::size_t>(n_);
}

void CentralCounter::start_inc(Context& ctx, ProcessorId origin, OpId op) {
  if (origin == holder_) {
    // The holder increments locally; no network traffic (the paper's
    // model allows an inc process to involve no messages at all only in
    // this degenerate case).
    ctx.complete(op, value_++);
    return;
  }
  Message m;
  m.src = origin;
  m.dst = holder_;
  m.tag = kTagReq;
  m.args = {origin};
  ctx.send(std::move(m));
}

void CentralCounter::on_message(Context& ctx, const Message& msg) {
  switch (msg.tag) {
    case kTagReq: {
      Message reply;
      reply.src = holder_;
      reply.dst = static_cast<ProcessorId>(msg.args.at(0));
      reply.tag = kTagValue;
      reply.args = {value_++};
      ctx.send(std::move(reply));
      return;
    }
    case kTagValue:
      ctx.complete(msg.op, msg.args.at(0));
      return;
    default:
      DCNT_CHECK_MSG(false, "unknown message tag");
  }
}

std::unique_ptr<CounterProtocol> CentralCounter::clone_counter() const {
  return std::make_unique<CentralCounter>(*this);
}

void CentralCounter::check_quiescent(std::size_t ops_completed) const {
  DCNT_CHECK(value_ == static_cast<Value>(ops_completed));
}

}  // namespace dcnt
