#include "baselines/diffracting_tree.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt {

namespace {
bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }

int bit_reverse(int x, int bits) {
  int out = 0;
  for (int i = 0; i < bits; ++i) {
    out = (out << 1) | ((x >> i) & 1);
  }
  return out;
}
}  // namespace

DiffractingTreeCounter::DiffractingTreeCounter(DiffractingTreeParams params)
    : n_(params.n),
      width_(params.width),
      patience_(params.patience) {
  DCNT_CHECK(n_ >= 2);
  DCNT_CHECK_MSG(is_power_of_two(width_), "width must be a power of two");
  DCNT_CHECK(width_ >= 2);
  DCNT_CHECK(params.prism_slots >= 1);
  DCNT_CHECK(patience_ >= 1);
  while ((1 << depth_) < width_) ++depth_;

  const int num_internal = width_ - 1;
  nodes_.resize(static_cast<std::size_t>(num_internal));
  for (int i = 0; i < num_internal; ++i) {
    TreeNode& node = nodes_[static_cast<std::size_t>(i)];
    node.toggle_pid = static_cast<ProcessorId>(
        mix64(0x70661EULL ^ static_cast<std::uint64_t>(i)) %
        static_cast<std::uint64_t>(n_));
    node.slots.resize(static_cast<std::size_t>(params.prism_slots));
    for (int s = 0; s < params.prism_slots; ++s) {
      node.slots[static_cast<std::size_t>(s)].pid = static_cast<ProcessorId>(
          mix64(0x5107ULL ^ static_cast<std::uint64_t>(i * 1024 + s)) %
          static_cast<std::uint64_t>(n_));
    }
  }
  cells_.resize(static_cast<std::size_t>(width_));
  for (int c = 0; c < width_; ++c) {
    Cell& cell = cells_[static_cast<std::size_t>(c)];
    cell.pid = static_cast<ProcessorId>(
        mix64(0xD1FFULL ^ static_cast<std::uint64_t>(c)) %
        static_cast<std::uint64_t>(n_));
    cell.out_index = bit_reverse(c, depth_);
  }
}

std::size_t DiffractingTreeCounter::num_processors() const {
  return static_cast<std::size_t>(n_);
}

bool DiffractingTreeCounter::is_leaf_edge(std::size_t node, int bit,
                                          int* leaf_index) const {
  const std::size_t child = 2 * node + 1 + static_cast<std::size_t>(bit);
  if (child >= nodes_.size()) {
    *leaf_index = static_cast<int>(child - nodes_.size());
    return true;
  }
  *leaf_index = static_cast<int>(child);
  return false;
}

void DiffractingTreeCounter::dispatch_child(Context& ctx, ProcessorId via,
                                            std::size_t node, int bit,
                                            ProcessorId origin, OpId uid) {
  int next = 0;
  if (is_leaf_edge(node, bit, &next)) {
    Message m;
    m.src = via;
    m.dst = cells_[static_cast<std::size_t>(next)].pid;
    m.tag = kTagCell;
    m.op = uid;
    m.args = {next, origin};
    ctx.send(std::move(m));
    return;
  }
  const TreeNode& child = nodes_[static_cast<std::size_t>(next)];
  const auto slot =
      static_cast<std::int64_t>(ctx.rng().next_below(child.slots.size()));
  Message m;
  m.src = via;
  m.dst = child.slots[static_cast<std::size_t>(slot)].pid;
  m.tag = kTagPrism;
  m.op = uid;
  m.args = {next, slot, origin};
  ctx.send(std::move(m));
}

void DiffractingTreeCounter::start_inc(Context& ctx, ProcessorId origin,
                                       OpId op) {
  const TreeNode& root = nodes_[0];
  const auto slot =
      static_cast<std::int64_t>(ctx.rng().next_below(root.slots.size()));
  Message m;
  m.src = origin;
  m.dst = root.slots[static_cast<std::size_t>(slot)].pid;
  m.tag = kTagPrism;
  m.op = op;
  m.args = {0, slot, origin};
  ctx.send(std::move(m));
}

void DiffractingTreeCounter::on_message(Context& ctx, const Message& msg) {
  switch (msg.tag) {
    case kTagPrism: {
      const auto node_idx = static_cast<std::size_t>(msg.args.at(0));
      const auto slot_idx = static_cast<std::size_t>(msg.args.at(1));
      const auto origin = static_cast<ProcessorId>(msg.args.at(2));
      Slot& slot = nodes_[node_idx].slots[slot_idx];
      if (slot.occupied) {
        // Diffraction: the pair leaves on opposite outputs without
        // touching the toggle — equivalent to two toggle crossings.
        slot.occupied = false;
        ++diffracted_pairs_;
        dispatch_child(ctx, slot.pid, node_idx, 0, slot.waiting_origin,
                       slot.waiting_uid);
        dispatch_child(ctx, slot.pid, node_idx, 1, origin, msg.op);
        return;
      }
      slot.occupied = true;
      slot.waiting_uid = msg.op;
      slot.waiting_origin = origin;
      ctx.send_local(slot.pid, kTagTimeout,
                     {msg.args.at(0), msg.args.at(1), msg.op}, patience_);
      return;
    }
    case kTagTimeout: {
      const auto node_idx = static_cast<std::size_t>(msg.args.at(0));
      const auto slot_idx = static_cast<std::size_t>(msg.args.at(1));
      const OpId uid = msg.args.at(2);
      Slot& slot = nodes_[node_idx].slots[slot_idx];
      if (!slot.occupied || slot.waiting_uid != uid) {
        return;  // token already diffracted away
      }
      slot.occupied = false;
      Message m;
      m.src = slot.pid;
      m.dst = nodes_[node_idx].toggle_pid;
      m.tag = kTagToggle;
      m.op = uid;
      m.args = {msg.args.at(0), slot.waiting_origin};
      ctx.send(std::move(m));
      return;
    }
    case kTagToggle: {
      const auto node_idx = static_cast<std::size_t>(msg.args.at(0));
      const auto origin = static_cast<ProcessorId>(msg.args.at(1));
      TreeNode& node = nodes_[node_idx];
      const int bit = node.toggle ? 1 : 0;
      node.toggle = !node.toggle;
      ++toggle_passes_;
      dispatch_child(ctx, node.toggle_pid, node_idx, bit, origin, msg.op);
      return;
    }
    case kTagCell: {
      Cell& cell = cells_[static_cast<std::size_t>(msg.args.at(0))];
      const auto origin = static_cast<ProcessorId>(msg.args.at(1));
      const Value value =
          cell.out_index + static_cast<Value>(width_) * cell.count;
      ++cell.count;
      Message m;
      m.src = cell.pid;
      m.dst = origin;
      m.tag = kTagValue;
      m.op = msg.op;
      m.args = {value};
      ctx.send(std::move(m));
      return;
    }
    case kTagValue:
      ctx.complete(msg.op, msg.args.at(0));
      return;
    default:
      DCNT_CHECK_MSG(false, "unknown message tag");
  }
}

std::unique_ptr<CounterProtocol> DiffractingTreeCounter::clone_counter()
    const {
  return std::make_unique<DiffractingTreeCounter>(*this);
}

std::string DiffractingTreeCounter::name() const {
  std::ostringstream os;
  os << "diffracting(w=" << width_ << ")";
  return os.str();
}

void DiffractingTreeCounter::check_quiescent(std::size_t ops_completed) const {
  std::int64_t total = 0;
  for (const auto& cell : cells_) total += cell.count;
  DCNT_CHECK(total == static_cast<std::int64_t>(ops_completed));
  for (const auto& node : nodes_) {
    for (const auto& slot : node.slots) {
      DCNT_CHECK_MSG(!slot.occupied, "token stuck in a prism at quiescence");
    }
  }
  // Step property at quiescence (diffraction preserves balancer
  // semantics: a pair is two consecutive crossings).
  const auto m = static_cast<std::int64_t>(ops_completed);
  for (const auto& cell : cells_) {
    const std::int64_t expected =
        m > cell.out_index ? (m - cell.out_index - 1) / width_ + 1 : 0;
    DCNT_CHECK_MSG(cell.count == expected,
                   "diffracting tree violates the step property");
  }
}

}  // namespace dcnt
