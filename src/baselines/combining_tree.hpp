// Software combining tree, after Yew/Tzeng/Lawrie [YTL86] and
// Goodman/Vernon/Woest [GVW89] — the first counters that "explicitly
// aim at avoiding a bottleneck" (paper, Related Work) — adapted from
// shared memory to the paper's message-passing model.
//
// Structure: a complete fan-out-f tree whose leaves are the n
// processors; inner nodes are mapped onto processors. A leaf's inc
// climbs the tree as a request; an inner node that already has a
// request in flight *combines* later arrivals and forwards their sum in
// one message once the outstanding response returns. The root hands out
// the interval [value, value + count) which is split on the way down.
//
// Under the paper's sequential workload combining never fires (there is
// never more than one outstanding request), so the root is a Theta(n)
// bottleneck — exactly the observation that makes the paper's lower
// bound interesting: combining attacks *contention in time*, not the
// paper's *aggregate load per processor*. Under concurrent batches
// (run_concurrent) combining does fire and the root handles O(1)
// messages per batch.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.hpp"
#include "support/relaxed.hpp"

namespace dcnt {

struct CombiningTreeParams {
  std::int64_t n{2};
  int fanout{2};
  /// Combining window: on the first request, an idle node waits this
  /// many ticks (a local timer, not a message) for siblings to show up
  /// before forwarding the merged request. 0 = forward immediately
  /// (requests then only merge behind an in-flight request, which with
  /// a one-shot workload and small fan-in almost never happens).
  SimTime window{8};
};

class CombiningTreeCounter final : public CounterProtocol {
 public:
  explicit CombiningTreeCounter(CombiningTreeParams params);

  /// [target_node, from_is_leaf, from_id, count]
  static constexpr std::int32_t kTagReq = 1;
  /// [target_node, base] — response for the node's in-flight request
  static constexpr std::int32_t kTagGrant = 2;
  /// [base] — value for one of the leaf's pending incs; the grant's
  /// msg.op names which one. Matching by op (not queue order) matters:
  /// over a lossy transport retransmission reorders delivery, and two
  /// grants racing to the same leaf would otherwise swap values between
  /// ops — invisible to a quiescent observer (the permutation survives)
  /// but a real-time linearizability violation.
  static constexpr std::int32_t kTagLeafGrant = 3;
  /// local timer: [target_node, epoch] — combining window expired
  static constexpr std::int32_t kTagWindow = 4;

  std::size_t num_processors() const override;
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override;
  void on_message(Context& ctx, const Message& msg) override;
  std::unique_ptr<CounterProtocol> clone_counter() const override;
  bool try_assign_from(const Protocol& other) override {
    return protocol_assign(*this, other);
  }
  std::string name() const override;
  void check_quiescent(std::size_t ops_completed) const override;
  /// Every inner node (window, epoch, buffers) lives at node.pid and is
  /// only touched by handlers running there; value_ is root-only; leaf
  /// queues are per-origin. The one global, combined_requests_, is a
  /// RelaxedCounter.
  bool shard_safe() const override { return true; }

  Value value() const { return value_; }
  int depth() const { return depth_; }
  std::size_t num_inner_nodes() const { return nodes_.size(); }
  /// Requests that piggybacked on another request (merged into a
  /// collecting window or an in-flight flush) — i.e. upward messages
  /// actually saved. Zero in the sequential model, positive under
  /// concurrency.
  std::int64_t combined_requests() const { return combined_requests_; }
  /// Processor an inner node is mapped to (for load attribution tests).
  ProcessorId node_pid(std::size_t node) const { return nodes_[node].pid; }
  std::size_t root_node() const { return nodes_.size() - 1; }

 private:
  /// One upstream request component: who asked (leaf or child node) and
  /// for how many values.
  struct Share {
    bool from_leaf{false};
    std::int64_t from_id{0};
    std::int64_t count{0};
    OpId op{kNoOp};  ///< the inc a leaf share stands for; kNoOp for nodes
  };
  struct Node {
    ProcessorId pid{kNoProcessor};
    std::int64_t parent{-1};  ///< inner node index; -1 = root
    bool in_flight{false};
    bool collecting{false};      ///< combining window open
    std::int64_t epoch{0};       ///< invalidates stale window timers
    std::vector<Share> current;  ///< breakdown of the in-flight request
    std::vector<Share> queued;   ///< combining buffer
  };
  struct Leaf {
    std::deque<OpId> pending;
  };

  void forward_or_serve(Context& ctx, std::size_t node);
  void distribute(Context& ctx, std::size_t node, Value base);

  std::int64_t n_;
  int fanout_;
  SimTime window_;
  int depth_{0};
  std::vector<Node> nodes_;  ///< bottom-up; root last
  std::vector<std::int64_t> leaf_parent_;  ///< leaf -> inner node index
  std::vector<Leaf> leaves_;
  Value value_{0};
  /// Bumped from handlers at whichever processor combines; relaxed
  /// atomic so sharded execution stays race-free.
  RelaxedCounter combined_requests_{0};
};

}  // namespace dcnt
