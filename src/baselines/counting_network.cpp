#include "baselines/counting_network.hpp"

#include <sstream>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt {

namespace {
bool is_power_of_two(int x) { return x > 0 && (x & (x - 1)) == 0; }
}  // namespace

CountingNetworkCounter::CountingNetworkCounter(CountingNetworkParams params)
    : n_(params.n), width_(params.width), kind_(params.kind) {
  DCNT_CHECK(n_ >= 2);
  DCNT_CHECK_MSG(is_power_of_two(width_), "width must be a power of two");
  DCNT_CHECK(width_ >= 2);
  wire_seq_.resize(static_cast<std::size_t>(width_));
  if (kind_ == NetworkKind::kBitonic) {
    std::vector<int> wires(static_cast<std::size_t>(width_));
    for (int i = 0; i < width_; ++i) wires[static_cast<std::size_t>(i)] = i;
    output_order_ = build_bitonic(wires);
  } else {
    output_order_ = build_periodic();
  }
  DCNT_CHECK(static_cast<int>(output_order_.size()) == width_);
  depth_ = static_cast<int>(wire_seq_[0].size());
  for (const auto& seq : wire_seq_) {
    DCNT_CHECK_MSG(static_cast<int>(seq.size()) == depth_,
                   "bitonic network must be uniform-depth");
  }
  cells_.resize(static_cast<std::size_t>(width_));
  for (int y = 0; y < width_; ++y) {
    const int wire = output_order_[static_cast<std::size_t>(y)];
    Cell& cell = cells_[static_cast<std::size_t>(wire)];
    cell.out_index = y;
    cell.pid = static_cast<ProcessorId>(
        mix64(0xCE11ULL ^ static_cast<std::uint64_t>(wire)) %
        static_cast<std::uint64_t>(n_));
  }
}

std::vector<int> CountingNetworkCounter::build_bitonic(
    const std::vector<int>& wires) {
  if (wires.size() == 1) return wires;
  const std::size_t half = wires.size() / 2;
  const std::vector<int> upper(wires.begin(),
                               wires.begin() + static_cast<std::ptrdiff_t>(half));
  const std::vector<int> lower(wires.begin() + static_cast<std::ptrdiff_t>(half),
                               wires.end());
  const std::vector<int> upper_out = build_bitonic(upper);
  const std::vector<int> lower_out = build_bitonic(lower);
  return build_merger(upper_out, lower_out);
}

std::vector<int> CountingNetworkCounter::build_merger(
    const std::vector<int>& upper, const std::vector<int>& lower) {
  DCNT_CHECK(upper.size() == lower.size());
  const std::size_t t = upper.size();
  if (t == 1) {
    add_balancer(upper[0], lower[0]);
    return {upper[0], lower[0]};
  }
  std::vector<int> even_u, odd_u, even_l, odd_l;
  for (std::size_t i = 0; i < t; ++i) {
    ((i % 2 == 0) ? even_u : odd_u).push_back(upper[i]);
    ((i % 2 == 0) ? even_l : odd_l).push_back(lower[i]);
  }
  const std::vector<int> m1 = build_merger(even_u, odd_l);
  const std::vector<int> m2 = build_merger(odd_u, even_l);
  std::vector<int> out;
  out.reserve(2 * t);
  for (std::size_t i = 0; i < t; ++i) {
    add_balancer(m1[i], m2[i]);
    out.push_back(m1[i]);
    out.push_back(m2[i]);
  }
  return out;
}

std::vector<int> CountingNetworkCounter::build_periodic() {
  int log_w = 0;
  while ((1 << log_w) < width_) ++log_w;
  // log w identical Dowd-Perl-Rudolph-Saks blocks. Block layer t splits
  // the wires into groups of width w/2^t and pairs each group by
  // *reflection* (first with last, second with second-to-last, ...).
  // Note a plain butterfly does NOT count: it balances sequential
  // streams but violates the step property under concurrent tokens —
  // the offline checker in the tests demonstrates the difference.
  for (int block = 0; block < log_w; ++block) {
    for (int t = 0; t < log_w; ++t) {
      const int group = width_ >> t;
      for (int start = 0; start < width_; start += group) {
        for (int j = 0; j < group / 2; ++j) {
          add_balancer(start + j, start + group - 1 - j);
        }
      }
    }
  }
  // The periodic network counts on the natural wire order.
  std::vector<int> order(static_cast<std::size_t>(width_));
  for (int i = 0; i < width_; ++i) order[static_cast<std::size_t>(i)] = i;
  return order;
}

int CountingNetworkCounter::add_balancer(int top_wire, int bottom_wire) {
  const int idx = static_cast<int>(balancers_.size());
  Balancer b;
  b.wire[0] = top_wire;
  b.wire[1] = bottom_wire;
  b.pos_in_wire[0] =
      static_cast<int>(wire_seq_[static_cast<std::size_t>(top_wire)].size());
  b.pos_in_wire[1] =
      static_cast<int>(wire_seq_[static_cast<std::size_t>(bottom_wire)].size());
  b.pid = static_cast<ProcessorId>(
      mix64(0xBA1AULL ^ static_cast<std::uint64_t>(idx)) %
      static_cast<std::uint64_t>(n_));
  wire_seq_[static_cast<std::size_t>(top_wire)].push_back(idx);
  wire_seq_[static_cast<std::size_t>(bottom_wire)].push_back(idx);
  balancers_.push_back(b);
  return idx;
}

std::size_t CountingNetworkCounter::num_processors() const {
  return static_cast<std::size_t>(n_);
}

void CountingNetworkCounter::route_token(Context& ctx, ProcessorId via,
                                         ProcessorId origin, int wire,
                                         int pos) {
  const auto& seq = wire_seq_[static_cast<std::size_t>(wire)];
  if (pos < static_cast<int>(seq.size())) {
    const int next = seq[static_cast<std::size_t>(pos)];
    Message m;
    m.src = via;
    m.dst = balancers_[static_cast<std::size_t>(next)].pid;
    m.tag = kTagToken;
    m.args = {next, origin};
    ctx.send(std::move(m));
    return;
  }
  Message m;
  m.src = via;
  m.dst = cells_[static_cast<std::size_t>(wire)].pid;
  m.tag = kTagCell;
  m.args = {wire, origin};
  ctx.send(std::move(m));
}

void CountingNetworkCounter::start_inc(Context& ctx, ProcessorId origin,
                                       OpId /*op*/) {
  const int wire = static_cast<int>(origin % width_);
  route_token(ctx, origin, origin, wire, 0);
}

void CountingNetworkCounter::on_message(Context& ctx, const Message& msg) {
  switch (msg.tag) {
    case kTagToken: {
      Balancer& b = balancers_[static_cast<std::size_t>(msg.args.at(0))];
      const auto origin = static_cast<ProcessorId>(msg.args.at(1));
      const int port = b.toggle ? 1 : 0;
      b.toggle = !b.toggle;
      ++b.visits;
      const int wire = b.wire[port];
      route_token(ctx, b.pid, origin, wire, b.pos_in_wire[port] + 1);
      return;
    }
    case kTagCell: {
      Cell& cell = cells_[static_cast<std::size_t>(msg.args.at(0))];
      const auto origin = static_cast<ProcessorId>(msg.args.at(1));
      const Value value =
          cell.out_index + static_cast<Value>(width_) * cell.count;
      ++cell.count;
      Message m;
      m.src = cell.pid;
      m.dst = origin;
      m.tag = kTagValue;
      m.args = {value};
      ctx.send(std::move(m));
      return;
    }
    case kTagValue:
      ctx.complete(msg.op, msg.args.at(0));
      return;
    default:
      DCNT_CHECK_MSG(false, "unknown message tag");
  }
}

std::unique_ptr<CounterProtocol> CountingNetworkCounter::clone_counter()
    const {
  return std::make_unique<CountingNetworkCounter>(*this);
}

std::string CountingNetworkCounter::name() const {
  std::ostringstream os;
  if (kind_ == NetworkKind::kBitonic) {
    os << "counting-net(w=" << width_ << ")";
  } else {
    os << "periodic-net(w=" << width_ << ")";
  }
  return os.str();
}

void CountingNetworkCounter::check_quiescent(std::size_t ops_completed) const {
  std::int64_t total = 0;
  for (const auto& cell : cells_) total += cell.count;
  DCNT_CHECK(total == static_cast<std::int64_t>(ops_completed));
  // Exact step property on the designated output order: after m tokens,
  // output y must have seen ceil((m - y) / w) of them.
  const auto m = static_cast<std::int64_t>(ops_completed);
  for (int y = 0; y < width_; ++y) {
    const std::int64_t cy =
        cells_[static_cast<std::size_t>(output_order_[static_cast<std::size_t>(y)])]
            .count;
    const std::int64_t expected = m > y ? (m - y - 1) / width_ + 1 : 0;
    DCNT_CHECK_MSG(cy == expected,
                   "bitonic output violates the step property");
  }
}

}  // namespace dcnt
