// The strawman the paper's introduction dismisses: "a data structure
// implementing a distributed counter could be message optimal by just
// storing the counter value with a single processor ... This solution
// does not scale — the single processor handling the counter value will
// be a bottleneck."
//
// Two messages per inc (request/reply) — message-optimal — but the
// holder's load is Theta(n): the worst possible bottleneck, and the
// baseline every experiment contrasts against.
#pragma once

#include <memory>
#include <string>

#include "sim/protocol.hpp"

namespace dcnt {

class CentralCounter final : public CounterProtocol {
 public:
  CentralCounter(std::int64_t n, ProcessorId holder = 0);

  static constexpr std::int32_t kTagReq = 1;    ///< [origin]
  static constexpr std::int32_t kTagValue = 2;  ///< [value]

  std::size_t num_processors() const override;
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override;
  void on_message(Context& ctx, const Message& msg) override;
  std::unique_ptr<CounterProtocol> clone_counter() const override;
  bool try_assign_from(const Protocol& other) override {
    return protocol_assign(*this, other);
  }
  std::string name() const override { return "central"; }
  void check_quiescent(std::size_t ops_completed) const override;
  /// value_ is read and written only by handlers at the holder; origins
  /// touch nothing. The textbook shard-safe protocol.
  bool shard_safe() const override { return true; }

  /// The counter collapses to value_ between ops (origins keep no state
  /// across ops; non-holder processors never touch value_), so the
  /// service fabric may evict an instance at any per-key-quiescent
  /// moment and rebuild it from the durable value.
  bool service_evictable() const override { return true; }
  Value service_value() const override { return value_; }
  void service_rehydrate(Value value) override { value_ = value; }

  Value value() const { return value_; }
  ProcessorId holder() const { return holder_; }

 private:
  std::int64_t n_;
  ProcessorId holder_;
  Value value_{0};
};

}  // namespace dcnt
