#include "baselines/combining_tree.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt {

CombiningTreeCounter::CombiningTreeCounter(CombiningTreeParams params)
    : n_(params.n), fanout_(params.fanout), window_(params.window) {
  DCNT_CHECK(n_ >= 2);
  DCNT_CHECK(fanout_ >= 2);
  DCNT_CHECK(window_ >= 0);
  leaf_parent_.assign(static_cast<std::size_t>(n_), -1);
  leaves_.resize(static_cast<std::size_t>(n_));

  // Build the tree bottom-up: group the previous level into chunks of
  // `fanout`, one new node per chunk, until a single root remains.
  struct Member {
    bool leaf;
    std::int64_t id;
  };
  std::vector<Member> level;
  level.reserve(static_cast<std::size_t>(n_));
  for (std::int64_t p = 0; p < n_; ++p) level.push_back({true, p});
  while (level.size() > 1) {
    std::vector<Member> next;
    for (std::size_t i = 0; i < level.size();
         i += static_cast<std::size_t>(fanout_)) {
      const auto node_idx = static_cast<std::int64_t>(nodes_.size());
      Node node;
      // Spread inner nodes over processors deterministically.
      node.pid = static_cast<ProcessorId>(
          mix64(0xC0FFEEULL ^ static_cast<std::uint64_t>(node_idx)) %
          static_cast<std::uint64_t>(n_));
      nodes_.push_back(node);
      const std::size_t end =
          std::min(i + static_cast<std::size_t>(fanout_), level.size());
      for (std::size_t j = i; j < end; ++j) {
        if (level[j].leaf) {
          leaf_parent_[static_cast<std::size_t>(level[j].id)] = node_idx;
        } else {
          nodes_[static_cast<std::size_t>(level[j].id)].parent = node_idx;
        }
      }
      next.push_back({false, node_idx});
    }
    level = std::move(next);
    ++depth_;
  }
}

std::size_t CombiningTreeCounter::num_processors() const {
  return static_cast<std::size_t>(n_);
}

void CombiningTreeCounter::start_inc(Context& ctx, ProcessorId origin,
                                     OpId op) {
  leaves_[static_cast<std::size_t>(origin)].pending.push_back(op);
  const std::int64_t parent = leaf_parent_[static_cast<std::size_t>(origin)];
  Message m;
  m.src = origin;
  m.dst = nodes_[static_cast<std::size_t>(parent)].pid;
  m.tag = kTagReq;
  m.args = {parent, 1 /*from leaf*/, origin, 1 /*count*/};
  ctx.send(std::move(m));
}

void CombiningTreeCounter::on_message(Context& ctx, const Message& msg) {
  switch (msg.tag) {
    case kTagReq: {
      const auto node_idx = static_cast<std::size_t>(msg.args.at(0));
      Node& node = nodes_[node_idx];
      // A leaf request arrives under its op's attribution (start_inc's
      // send inherits the Start context); remember the op so the grant
      // coming back down can name it. Node requests carry many ops and
      // stay anonymous — an inner node has at most one request in
      // flight, so its grants cannot race each other.
      Share share{msg.args.at(1) != 0, msg.args.at(2), msg.args.at(3),
                  msg.args.at(1) != 0 ? msg.op : kNoOp};
      if (node.parent < 0) {
        // The root serves immediately: no combining needed at the source
        // of values.
        node.current = {share};
        const Value base = value_;
        value_ += share.count;
        distribute(ctx, node_idx, base);
        return;
      }
      if (node.in_flight) {
        // Will be merged into the next flush.
        node.queued.push_back(share);
        ++combined_requests_;
        return;
      }
      if (node.collecting) {
        // Joins the window that is already open.
        node.current.push_back(share);
        ++combined_requests_;
        return;
      }
      node.current = {share};
      if (window_ == 0) {
        forward_or_serve(ctx, node_idx);
        return;
      }
      // Open a combining window; forward when the local timer fires.
      node.collecting = true;
      ctx.send_local(node.pid, kTagWindow,
                     {static_cast<std::int64_t>(node_idx), node.epoch},
                     window_);
      return;
    }
    case kTagWindow: {
      const auto node_idx = static_cast<std::size_t>(msg.args.at(0));
      Node& node = nodes_[node_idx];
      if (!node.collecting || node.epoch != msg.args.at(1)) {
        return;  // stale timer
      }
      node.collecting = false;
      ++node.epoch;
      forward_or_serve(ctx, node_idx);
      return;
    }
    case kTagGrant: {
      const auto node_idx = static_cast<std::size_t>(msg.args.at(0));
      distribute(ctx, node_idx, msg.args.at(1));
      return;
    }
    case kTagLeafGrant: {
      Leaf& leaf = leaves_[static_cast<std::size_t>(msg.dst)];
      const auto it =
          std::find(leaf.pending.begin(), leaf.pending.end(), msg.op);
      DCNT_CHECK_MSG(it != leaf.pending.end(), "grant for an unknown op");
      leaf.pending.erase(it);
      ctx.complete(msg.op, msg.args.at(0));
      return;
    }
    default:
      DCNT_CHECK_MSG(false, "unknown message tag");
  }
}

void CombiningTreeCounter::forward_or_serve(Context& ctx, std::size_t node_idx) {
  Node& node = nodes_[node_idx];
  std::int64_t total = 0;
  for (const auto& s : node.current) total += s.count;
  DCNT_CHECK(node.parent >= 0);
  node.in_flight = true;
  Message m;
  m.src = node.pid;
  m.dst = nodes_[static_cast<std::size_t>(node.parent)].pid;
  m.tag = kTagReq;
  m.args = {node.parent, 0 /*from node*/, static_cast<std::int64_t>(node_idx),
            total};
  ctx.send(std::move(m));
}

void CombiningTreeCounter::distribute(Context& ctx, std::size_t node_idx,
                                      Value base) {
  Node& node = nodes_[node_idx];
  for (const auto& share : node.current) {
    if (share.from_leaf) {
      Message m;
      m.src = node.pid;
      m.dst = static_cast<ProcessorId>(share.from_id);
      m.tag = kTagLeafGrant;
      m.op = share.op;  // name the op — leaf matching must not assume FIFO
      m.args = {base};
      ctx.send(std::move(m));
    } else {
      Message m;
      m.src = node.pid;
      m.dst = nodes_[static_cast<std::size_t>(share.from_id)].pid;
      m.tag = kTagGrant;
      m.args = {share.from_id, base};
      ctx.send(std::move(m));
    }
    base += share.count;
  }
  node.current.clear();
  node.in_flight = false;
  if (!node.queued.empty()) {
    // Everything that piled up while we were waiting goes upstream as
    // one combined request — the mechanism that relieves contention.
    // No new window: these requests have waited long enough.
    node.current = std::move(node.queued);
    node.queued.clear();
    forward_or_serve(ctx, node_idx);
  }
}

std::unique_ptr<CounterProtocol> CombiningTreeCounter::clone_counter() const {
  return std::make_unique<CombiningTreeCounter>(*this);
}

std::string CombiningTreeCounter::name() const {
  std::ostringstream os;
  os << "combining(f=" << fanout_ << ")";
  return os.str();
}

void CombiningTreeCounter::check_quiescent(std::size_t ops_completed) const {
  DCNT_CHECK(value_ == static_cast<Value>(ops_completed));
  for (const auto& node : nodes_) {
    DCNT_CHECK(!node.in_flight);
    DCNT_CHECK(!node.collecting);
    DCNT_CHECK(node.queued.empty());
  }
  for (const auto& leaf : leaves_) DCNT_CHECK(leaf.pending.empty());
}

}  // namespace dcnt
