// Diffracting tree, after Shavit & Zemach [SZ94] (paper, Related Work),
// in the message-passing model.
//
// A binary tree of balancers with w leaves; tokens route through toggle
// bits, leaf c hands out c + w*t. The twist is the *prism* in front of
// each toggle: an arriving token first visits a random prism slot
// (its own processor). If another token is already waiting there, the
// pair "diffracts" — one goes to each child, exactly as if both had
// crossed the toggle — without touching the toggle at all. A lone token
// waits until a timeout fires, then takes the toggle path.
//
// Like combining, diffraction attacks contention under concurrency: in
// the paper's strictly sequential model no two tokens ever coexist, so
// every token times out and the root toggle is a Theta(n) bottleneck.
// Concurrent batches show the intended behaviour (diffraction counts in
// the stats, toggle traffic drops).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.hpp"
#include "support/relaxed.hpp"

namespace dcnt {

struct DiffractingTreeParams {
  std::int64_t n{2};   ///< processors
  int width{2};        ///< leaves; power of two
  int prism_slots{4};  ///< prism slots per tree node
  SimTime patience{8}; ///< ticks a token waits in a prism slot
};

class DiffractingTreeCounter final : public CounterProtocol {
 public:
  explicit DiffractingTreeCounter(DiffractingTreeParams params);

  /// [node, slot, origin] — token arrives at a prism slot
  static constexpr std::int32_t kTagPrism = 1;
  /// local timeout: [node, slot, token_uid]
  static constexpr std::int32_t kTagTimeout = 2;
  /// [node, origin] — token takes the toggle path
  static constexpr std::int32_t kTagToggle = 3;
  /// [leaf_index, origin] — token reached an output counter
  static constexpr std::int32_t kTagCell = 4;
  /// [value]
  static constexpr std::int32_t kTagValue = 5;

  std::size_t num_processors() const override;
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override;
  void on_message(Context& ctx, const Message& msg) override;
  std::unique_ptr<CounterProtocol> clone_counter() const override;
  bool try_assign_from(const Protocol& other) override {
    return protocol_assign(*this, other);
  }
  std::string name() const override;
  void check_quiescent(std::size_t ops_completed) const override;
  /// Each prism slot, toggle and output cell is pinned to one processor
  /// and only mutated by handlers running there; the two global tallies
  /// are RelaxedCounters; randomness goes through ctx.rng().
  bool shard_safe() const override { return true; }

  int width() const { return width_; }
  std::int64_t diffracted_pairs() const { return diffracted_pairs_; }
  std::int64_t toggle_passes() const { return toggle_passes_; }
  ProcessorId toggle_pid(std::size_t node) const {
    return nodes_[node].toggle_pid;
  }

 private:
  struct Slot {
    ProcessorId pid{kNoProcessor};
    bool occupied{false};
    OpId waiting_uid{kNoOp};
    ProcessorId waiting_origin{kNoProcessor};
  };
  struct TreeNode {
    ProcessorId toggle_pid{kNoProcessor};
    bool toggle{false};
    std::vector<Slot> slots;
  };
  struct Cell {
    ProcessorId pid{kNoProcessor};
    int out_index{0};  ///< bit-reversed leaf position (root toggle = LSB)
    std::int64_t count{0};
  };

  /// Tree nodes in heap order: node 0 is the root; children of i are
  /// 2i+1 / 2i+2; nodes with index >= num_nodes are leaves.
  bool is_leaf_edge(std::size_t node, int bit, int* leaf_index) const;
  void dispatch_child(Context& ctx, ProcessorId via, std::size_t node,
                      int bit, ProcessorId origin, OpId uid);

  std::int64_t n_;
  int width_;
  int depth_{0};
  SimTime patience_;
  std::vector<TreeNode> nodes_;
  std::vector<Cell> cells_;
  /// Bumped from handlers at slot/toggle processors; relaxed atomic so
  /// sharded execution stays race-free.
  RelaxedCounter diffracted_pairs_{0};
  RelaxedCounter toggle_passes_{0};
};

}  // namespace dcnt
