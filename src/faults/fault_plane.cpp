#include "faults/fault_plane.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace dcnt {

namespace {
// Domain-separation constant so the fault stream never collides with
// the simulator's delay stream even for equal seeds.
constexpr std::uint64_t kFaultSalt = 0xFA0175EEDULL;
}  // namespace

FaultPlane::FaultPlane(FaultSchedule schedule, std::uint64_t seed)
    : schedule_(std::move(schedule)),
      rng_(mix64(seed ^ kFaultSalt)),
      active_(!schedule_.empty()) {
  DCNT_CHECK_MSG(schedule_.drop_probability >= 0.0 &&
                     schedule_.drop_probability <= 1.0,
                 "drop_probability must be in [0, 1]");
  DCNT_CHECK_MSG(schedule_.duplicate_probability >= 0.0 &&
                     schedule_.duplicate_probability <= 1.0,
                 "duplicate_probability must be in [0, 1]");
  for (const ChannelDropRule& rule : schedule_.channel_drops) {
    DCNT_CHECK_MSG(rule.probability >= 0.0 && rule.probability <= 1.0,
                   "channel drop probability must be in [0, 1]");
  }
  for (const CrashEvent& crash : schedule_.crashes) {
    DCNT_CHECK_MSG(crash.pid != kNoProcessor, "crash needs a processor");
    DCNT_CHECK_MSG(crash.at >= 0, "crash time must be >= 0");
    DCNT_CHECK_MSG(crash.recover_at < 0 || crash.recover_at > crash.at,
                   "recovery must be after the crash");
  }
  // Sort the one-shot indices so membership is a binary search.
  std::sort(schedule_.drop_message_indices.begin(),
            schedule_.drop_message_indices.end());
}

void FaultPlane::reseed(std::uint64_t seed) {
  rng_ = Rng(mix64(seed ^ kFaultSalt));
}

double FaultPlane::drop_probability_for(ProcessorId src,
                                        ProcessorId dst) const {
  for (const ChannelDropRule& rule : schedule_.channel_drops) {
    const bool src_ok = rule.src == kNoProcessor || rule.src == src;
    const bool dst_ok = rule.dst == kNoProcessor || rule.dst == dst;
    if (src_ok && dst_ok) return rule.probability;
  }
  return schedule_.drop_probability;
}

FaultPlane::SendFault FaultPlane::on_send(ProcessorId src, ProcessorId dst) {
  const std::int64_t index = next_index_++;
  if (!schedule_.drop_message_indices.empty() &&
      std::binary_search(schedule_.drop_message_indices.begin(),
                         schedule_.drop_message_indices.end(), index)) {
    ++stats_.scheduled_drops;
    return SendFault::kDrop;
  }
  const double drop_p = drop_probability_for(src, dst);
  if (drop_p > 0.0 && rng_.next_double() < drop_p) {
    ++stats_.random_drops;
    return SendFault::kDrop;
  }
  if (schedule_.duplicate_probability > 0.0 &&
      rng_.next_double() < schedule_.duplicate_probability) {
    ++stats_.duplicates;
    return SendFault::kDuplicate;
  }
  return SendFault::kDeliver;
}

bool FaultPlane::crashed_at(ProcessorId p, SimTime t) const {
  for (const CrashEvent& crash : schedule_.crashes) {
    if (crash.pid == p && t >= crash.at &&
        (crash.recover_at < 0 || t < crash.recover_at)) {
      return true;
    }
  }
  return false;
}

SimTime FaultPlane::recovery_time(ProcessorId p, SimTime t) const {
  for (const CrashEvent& crash : schedule_.crashes) {
    if (crash.pid == p && t >= crash.at && crash.recover_at >= 0 &&
        t < crash.recover_at) {
      return crash.recover_at;
    }
  }
  return -1;
}

}  // namespace dcnt
