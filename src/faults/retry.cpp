#include "faults/retry.hpp"

#include <algorithm>
#include <utility>

#include "core/tree_counter.hpp"
#include "support/check.hpp"

namespace dcnt {

bool ReliableTransport::RxChannel::seen(std::int64_t seq) const {
  if (seq <= contiguous) return true;
  return std::binary_search(sparse.begin(), sparse.end(), seq);
}

void ReliableTransport::RxChannel::mark(std::int64_t seq) {
  if (seq <= contiguous) return;
  if (seq == contiguous + 1) {
    ++contiguous;
    // Absorb any sparse entries that are now contiguous.
    auto it = sparse.begin();
    while (it != sparse.end() && *it == contiguous + 1) {
      ++contiguous;
      ++it;
    }
    sparse.erase(sparse.begin(), it);
    return;
  }
  sparse.insert(std::lower_bound(sparse.begin(), sparse.end(), seq), seq);
}

ReliableTransport::ReliableTransport(std::unique_ptr<CounterProtocol> inner,
                                     RetryParams params)
    : inner_(std::move(inner)), params_(params) {
  DCNT_CHECK(inner_ != nullptr);
  DCNT_CHECK(params_.ack_timeout >= 1);
  DCNT_CHECK(params_.max_timeout >= params_.ack_timeout);
  DCNT_CHECK(params_.max_attempts >= 1);
  procs_.resize(inner_->num_processors());
}

ReliableTransport::ReliableTransport(const ReliableTransport& other)
    : inner_(other.inner_->clone_counter()),
      params_(other.params_),
      procs_(other.procs_),
      stats_(other.stats_),
      unacked_(other.unacked_) {}

ReliableTransport& ReliableTransport::operator=(
    const ReliableTransport& other) {
  if (this == &other) return *this;
  if (!inner_->try_assign_from(*other.inner_)) {
    inner_ = other.inner_->clone_counter();
  }
  params_ = other.params_;
  procs_ = other.procs_;
  stats_ = other.stats_;
  unacked_ = other.unacked_;
  return *this;
}

std::size_t ReliableTransport::num_processors() const {
  return inner_->num_processors();
}

void ReliableTransport::start_inc(Context& ctx, ProcessorId origin, OpId op) {
  EnvelopeCtx wrapped(*this, ctx);
  inner_->start_inc(wrapped, origin, op);
}

void ReliableTransport::start_op(Context& ctx, ProcessorId origin, OpId op,
                                 const std::vector<std::int64_t>& args) {
  EnvelopeCtx wrapped(*this, ctx);
  inner_->start_op(wrapped, origin, op, args);
}

void ReliableTransport::send_enveloped(Context& real, Message msg) {
  if (msg.local || msg.src == msg.dst) {
    // The fault plane never touches local / self-addressed traffic.
    real.send(std::move(msg));
    return;
  }
  DCNT_CHECK_MSG(msg.tag < kTagBase,
                 "inner protocol tag collides with the transport range");
  auto& channel = procs_[static_cast<std::size_t>(msg.src)].tx[msg.dst];
  const std::int64_t seq = channel.next_seq++;

  Message envelope;
  envelope.src = msg.src;
  envelope.dst = msg.dst;
  envelope.tag = kTagData;
  envelope.op = msg.op;
  // The key rides the envelope so the keyed wire path (and per-key load
  // accounting) survives the at-least-once layer; acks stay keyless.
  envelope.key = msg.key;
  envelope.args.reserve(msg.args.size() + 2);
  envelope.args.push_back(seq);
  envelope.args.push_back(msg.tag);
  envelope.args.insert(envelope.args.end(), msg.args.begin(), msg.args.end());

  PendingSend pending;
  pending.seq = seq;
  pending.envelope = envelope;
  pending.attempts = 1;
  pending.next_timeout = params_.ack_timeout;
  channel.unacked.push_back(std::move(pending));
  ++unacked_;
  ++stats_.data_messages;

  real.send_local(msg.src, kTagTimer, {msg.dst, seq}, params_.ack_timeout);
  real.send(std::move(envelope));
}

void ReliableTransport::on_message(Context& ctx, const Message& msg) {
  switch (msg.tag) {
    case kTagTimer:
      handle_timer(ctx, msg);
      return;
    case kTagAck:
      handle_ack(msg);
      return;
    case kTagData:
      handle_data(ctx, msg);
      return;
    default: {
      // Inner traffic that bypassed the envelope: local wake-ups and
      // self-addressed messages.
      DCNT_CHECK(msg.local || msg.src == msg.dst);
      EnvelopeCtx wrapped(*this, ctx);
      inner_->on_message(wrapped, msg);
      return;
    }
  }
}

void ReliableTransport::handle_timer(Context& real, const Message& msg) {
  const ProcessorId self = msg.dst;
  const auto peer = static_cast<ProcessorId>(msg.args.at(0));
  const std::int64_t seq = msg.args.at(1);
  auto& ps = procs_[static_cast<std::size_t>(self)];
  const auto channel_it = ps.tx.find(peer);
  if (channel_it == ps.tx.end()) return;
  auto& unacked = channel_it->second.unacked;
  const auto it =
      std::find_if(unacked.begin(), unacked.end(),
                   [seq](const PendingSend& p) { return p.seq == seq; });
  if (it == unacked.end()) return;  // acked in the meantime
  ++stats_.timeouts_fired;
  if (it->attempts >= params_.max_attempts) {
    ++stats_.messages_abandoned;
    unacked.erase(it);
    --unacked_;
    // The failure-detector edge: tell the inner protocol. It runs in a
    // wrapped context so any reaction (e.g. a crash-handover trigger)
    // is itself sent reliably.
    EnvelopeCtx wrapped(*this, real);
    inner_->on_peer_unreachable(wrapped, self, peer);
    return;
  }
  ++it->attempts;
  ++stats_.retransmissions;
  it->next_timeout = std::min(it->next_timeout * 2, params_.max_timeout);
  real.send_local(self, kTagTimer, {peer, seq}, it->next_timeout);
  real.send(it->envelope);  // same seq: the receiver dedups
}

void ReliableTransport::handle_ack(const Message& msg) {
  const ProcessorId self = msg.dst;
  auto& ps = procs_[static_cast<std::size_t>(self)];
  const auto channel_it = ps.tx.find(msg.src);
  if (channel_it == ps.tx.end()) return;
  auto& unacked = channel_it->second.unacked;
  const std::int64_t seq = msg.args.at(0);
  const auto it =
      std::find_if(unacked.begin(), unacked.end(),
                   [seq](const PendingSend& p) { return p.seq == seq; });
  if (it != unacked.end()) {
    unacked.erase(it);
    --unacked_;
  }
}

void ReliableTransport::handle_data(Context& real, const Message& msg) {
  const ProcessorId self = msg.dst;
  const std::int64_t seq = msg.args.at(0);
  // Always ack, even duplicates: the earlier ack may have been lost.
  Message ack;
  ack.src = self;
  ack.dst = msg.src;
  ack.tag = kTagAck;
  ack.op = msg.op;
  ack.args = {seq};
  ++stats_.acks_sent;
  real.send(std::move(ack));

  auto& rx = procs_[static_cast<std::size_t>(self)].rx[msg.src];
  if (rx.seen(seq)) {
    ++stats_.duplicates_suppressed;
    return;
  }
  rx.mark(seq);

  Message inner;
  inner.src = msg.src;
  inner.dst = self;
  inner.tag = static_cast<std::int32_t>(msg.args.at(1));
  inner.op = msg.op;
  inner.key = msg.key;
  inner.args.assign(msg.args.begin() + 2, msg.args.end());
  EnvelopeCtx wrapped(*this, real);
  inner_->on_message(wrapped, inner);
}

void ReliableTransport::check_quiescent(std::size_t ops_completed) const {
  inner_->check_quiescent(ops_completed);
}

std::unique_ptr<CounterProtocol> ReliableTransport::clone_counter() const {
  return std::make_unique<ReliableTransport>(*this);
}

bool ReliableTransport::try_assign_from(const Protocol& other) {
  // Not protocol_assign: the inner protocol should reuse its own
  // buffers via its own try_assign_from when the inner types match.
  const auto* o = dynamic_cast<const ReliableTransport*>(&other);
  if (o == nullptr) return false;
  *this = *o;
  return true;
}

std::string ReliableTransport::name() const {
  return "reliable(" + inner_->name() + ")";
}

std::unique_ptr<ReliableTransport> make_fault_tolerant_tree_counter(
    const TreeServiceParams& tree_params, RetryParams retry_params) {
  TreeServiceParams params = tree_params;
  params.self_healing = true;
  return std::make_unique<ReliableTransport>(
      std::make_unique<TreeCounter>(params), retry_params);
}

}  // namespace dcnt
