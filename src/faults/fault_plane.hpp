// Deterministic fault injection for the simulator.
//
// The paper's §2 model assumes a reliable network and no failures; the
// fault plane is the controlled way to leave that model. A FaultPlane
// is a pure function of (FaultSchedule, seed): the Simulator consults
// it on every network enqueue (drop / duplicate) and every delivery
// (crash gating), and because the plane owns its own random stream —
// separate from the delay-sampling stream — an empty schedule leaves
// every fault-free run bit-identical to a build without the plane.
//
// Fault semantics:
//   * drop        — the hop is counted at the sender (it really sent)
//                   but never enqueued; the network ate it.
//   * duplicate   — a second, untraced copy of the hop is enqueued with
//                   an independently sampled delay.
//   * crash-stop  — from `at` onward the processor neither executes
//                   handlers nor receives messages; network messages to
//                   it are silently discarded.
//   * crash-recover — as crash-stop during [at, recover_at); local
//                   wake-ups (timers) scheduled into the dark window
//                   are deferred to the recovery instant (the "reboot
//                   restores the timer wheel" convention), while
//                   network messages in the window are lost.
//
// Value semantics are load-bearing: the plane is deep-copied by
// Simulator::snapshot()/restore(), so the adversary's and explorer's
// dry-run machinery keeps working under injected faults.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"
#include "support/rng.hpp"

namespace dcnt {

/// Per-channel drop-probability override. kNoProcessor endpoints are
/// wildcards ("any"); the first matching rule wins.
struct ChannelDropRule {
  ProcessorId src{kNoProcessor};
  ProcessorId dst{kNoProcessor};
  double probability{0.0};
};

/// One crash. recover_at < 0 means crash-stop (never recovers);
/// otherwise the processor is dark during [at, recover_at).
struct CrashEvent {
  ProcessorId pid{kNoProcessor};
  SimTime at{0};
  SimTime recover_at{-1};
};

/// Declarative fault description. Default-constructed = no faults.
struct FaultSchedule {
  /// Bernoulli drop applied to every network hop.
  double drop_probability{0.0};
  /// Bernoulli duplication applied to every surviving network hop.
  double duplicate_probability{0.0};
  /// Per-channel overrides of drop_probability.
  std::vector<ChannelDropRule> channel_drops;
  /// One-shot drops by global send index (0-based, counted over
  /// fault-eligible hops). Deterministic regardless of seed.
  std::vector<std::int64_t> drop_message_indices;
  std::vector<CrashEvent> crashes;

  bool empty() const {
    return drop_probability == 0.0 && duplicate_probability == 0.0 &&
           channel_drops.empty() && drop_message_indices.empty() &&
           crashes.empty();
  }
};

/// Injection counters; deterministic for a fixed (schedule, seed) and
/// protocol, and therefore pinned by tests.
struct FaultStats {
  std::int64_t random_drops{0};
  std::int64_t scheduled_drops{0};
  std::int64_t duplicates{0};
  /// Network deliveries suppressed because the destination was crashed.
  std::int64_t crash_drops{0};
  /// Local wake-ups deferred to a crash-recover instant.
  std::int64_t deferred_timers{0};
};

class FaultPlane {
 public:
  enum class SendFault : std::uint8_t { kDeliver, kDrop, kDuplicate };

  FaultPlane() = default;
  FaultPlane(FaultSchedule schedule, std::uint64_t seed);

  /// False for an empty schedule: the simulator then skips every hook,
  /// so fault-free runs take the exact pre-fault-plane code path.
  bool active() const { return active_; }

  /// Decide the fate of one network hop. Consumes randomness only for
  /// the probabilistic rules that are actually configured, so the
  /// decision stream is a deterministic function of (schedule, seed)
  /// and the hop sequence.
  SendFault on_send(ProcessorId src, ProcessorId dst);

  bool crashed_at(ProcessorId p, SimTime t) const;
  /// Earliest recovery instant covering time t, or -1 if p is not
  /// crashed at t or never recovers.
  SimTime recovery_time(ProcessorId p, SimTime t) const;

  /// True if p is crash-stopped (or inside a crash window) at t —
  /// convenience for harnesses that must not initiate work at a dead
  /// processor.
  bool usable_origin(ProcessorId p, SimTime t) const {
    return !crashed_at(p, t);
  }

  /// Replace the randomness stream (mirrors Simulator::reseed); the
  /// schedule, send index and stats are preserved.
  void reseed(std::uint64_t seed);

  void note_crash_drop() { ++stats_.crash_drops; }
  void note_deferred_timer() { ++stats_.deferred_timers; }

  const FaultSchedule& schedule() const { return schedule_; }
  const FaultStats& stats() const { return stats_; }
  /// Fault-eligible hops seen so far (the index of the next one).
  std::int64_t hops_seen() const { return next_index_; }

 private:
  double drop_probability_for(ProcessorId src, ProcessorId dst) const;

  FaultSchedule schedule_;
  Rng rng_{};
  std::int64_t next_index_{0};
  bool active_{false};
  FaultStats stats_;
};

}  // namespace dcnt
