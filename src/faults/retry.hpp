// Reliable transport: at-least-once delivery over lossy channels.
//
// The paper's model gives every message away for free — reliably
// delivered, never duplicated. The fault plane (fault_plane.hpp)
// breaks that; this decorator buys it back, at a measurable price in
// messages (which is the whole point: the bottleneck bounds are about
// message loads, and reliability is not free).
//
// ReliableTransport wraps any CounterProtocol. Every cross-processor
// message the inner protocol sends is enveloped with a per-channel
// sequence number and retransmitted on a capped exponential backoff
// until the receiver acknowledges it; the receiver suppresses
// duplicates (both fault-plane duplication and retransmit races) by
// sequence number, so the inner protocol observes exactly-once
// delivery per surviving message. After `max_attempts` unacknowledged
// transmissions the sender gives the message up and reports the peer
// via Protocol::on_peer_unreachable — the timeout failure detector the
// self-healing tree service (core/tree_service.hpp) builds crash
// handover on.
//
// Wire framing (PROTOCOL.md, "Reliable transport"): transport tags
// live at >= kTagBase = 1'000'000 so they can never collide with inner
// protocol tags (inner tags must stay below that; checked).
//
//   Data  [seq, inner_tag, inner_args...]   sender -> receiver
//   Ack   [seq]                             receiver -> sender
//   Timer [peer, seq]                       local wake-up at the sender
//
// Self-addressed and local messages bypass the envelope: the fault
// plane never touches them, so reliability machinery would be pure
// overhead.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/protocol.hpp"
#include "sim/types.hpp"
#include "support/relaxed.hpp"

namespace dcnt {

struct RetryParams {
  /// Timeout before the first retransmission.
  SimTime ack_timeout{16};
  /// Backoff cap: timeout doubles per attempt up to this.
  SimTime max_timeout{256};
  /// Transmissions (1 original + retries) before the peer is declared
  /// unreachable and the message abandoned.
  int max_attempts{12};
};

/// RelaxedCounter, not int64: under the sharded runtime these are
/// bumped from handlers at arbitrary processors concurrently; relaxed
/// RMWs keep them race-free while staying copyable with the protocol
/// state. Exact when read at quiescence (the runtime's in-flight
/// acq_rel chain orders every handler's bumps before the reader).
struct RetryStats {
  RelaxedCounter data_messages{0};
  RelaxedCounter acks_sent{0};
  RelaxedCounter retransmissions{0};
  RelaxedCounter timeouts_fired{0};
  RelaxedCounter duplicates_suppressed{0};
  /// Messages abandoned after max_attempts (each triggers one
  /// on_peer_unreachable call at the sender).
  RelaxedCounter messages_abandoned{0};
};

class ReliableTransport final : public CounterProtocol {
 public:
  ReliableTransport(std::unique_ptr<CounterProtocol> inner,
                    RetryParams params);
  ReliableTransport(const ReliableTransport& other);
  ReliableTransport& operator=(const ReliableTransport& other);

  /// Inner protocol tags must stay below this.
  static constexpr std::int32_t kTagBase = 1'000'000;
  static constexpr std::int32_t kTagData = kTagBase + 1;
  static constexpr std::int32_t kTagAck = kTagBase + 2;
  static constexpr std::int32_t kTagTimer = kTagBase + 3;

  // CounterProtocol:
  std::size_t num_processors() const override;
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override;
  void start_op(Context& ctx, ProcessorId origin, OpId op,
                const std::vector<std::int64_t>& args) override;
  void on_message(Context& ctx, const Message& msg) override;
  void check_quiescent(std::size_t ops_completed) const override;
  std::unique_ptr<CounterProtocol> clone_counter() const override;
  bool try_assign_from(const Protocol& other) override;
  std::string name() const override;
  /// The transport's own state is sliced per processor exactly like a
  /// shard-safe protocol's (handlers touch procs_[self] only; stats are
  /// relaxed counters), so sharded execution is sound whenever the
  /// inner protocol's is.
  bool shard_safe() const override { return inner_->shard_safe(); }
  void on_shard_start(std::size_t workers) override {
    inner_->on_shard_start(workers);
  }

  const RetryStats& stats() const { return stats_; }
  const RetryParams& params() const { return params_; }
  /// Envelopes currently awaiting an ack, summed over all channels. The
  /// cluster's distributed-quiescence barrier needs this to reach zero:
  /// a pending envelope means a retransmission timer is still armed and
  /// more wire traffic is coming. Maintained as a counter (++ on
  /// envelope creation, -- on ack/abandon) rather than recomputed by
  /// walking the channel maps: the stats barrier reads it while worker
  /// threads own those maps.
  std::int64_t unacked_total() const { return unacked_.load(); }
  const CounterProtocol& inner() const { return *inner_; }
  CounterProtocol& mutable_inner() { return *inner_; }

 private:
  /// Context wrapper handed to the inner protocol: its sends go through
  /// the envelope; everything else passes straight through.
  class EnvelopeCtx final : public Context {
   public:
    EnvelopeCtx(ReliableTransport& transport, Context& real)
        : transport_(transport), real_(real) {}
    void send(Message msg) override {
      transport_.send_enveloped(real_, std::move(msg));
    }
    void send_local(ProcessorId p, std::int32_t tag,
                    std::vector<std::int64_t> args, SimTime delay) override {
      real_.send_local(p, tag, std::move(args), delay);
    }
    void complete(OpId op, Value value) override { real_.complete(op, value); }
    SimTime now() const override { return real_.now(); }
    Rng& rng() override { return real_.rng(); }

   private:
    ReliableTransport& transport_;
    Context& real_;
  };

  struct PendingSend {
    std::int64_t seq{0};
    Message envelope;  ///< resent verbatim on timeout
    int attempts{1};
    SimTime next_timeout{0};
  };
  /// Sender side of one (self -> peer) channel.
  struct TxChannel {
    std::int64_t next_seq{0};
    std::vector<PendingSend> unacked;
  };
  /// Receiver side of one (peer -> self) channel: delivered-seq set as
  /// a contiguous watermark plus a sparse out-of-order tail.
  struct RxChannel {
    std::int64_t contiguous{-1};  ///< all seqs <= this were delivered
    std::vector<std::int64_t> sparse;
    bool seen(std::int64_t seq) const;
    void mark(std::int64_t seq);
  };
  struct ProcState {
    std::map<ProcessorId, TxChannel> tx;
    std::map<ProcessorId, RxChannel> rx;
  };

  void send_enveloped(Context& real, Message msg);
  void handle_timer(Context& real, const Message& msg);
  void handle_ack(const Message& msg);
  void handle_data(Context& real, const Message& msg);

  std::unique_ptr<CounterProtocol> inner_;
  RetryParams params_;
  std::vector<ProcState> procs_;
  RetryStats stats_;
  RelaxedCounter unacked_{0};
};

/// Convenience: a self-healing §4 tree counter behind the reliable
/// transport — the fault-tolerant counter the recovery tests and
/// bench_faults drive.
struct TreeServiceParams;
std::unique_ptr<ReliableTransport> make_fault_tolerant_tree_counter(
    const TreeServiceParams& tree_params, RetryParams retry_params);

}  // namespace dcnt
