#include "core/tree_counter.hpp"

#include <limits>
#include <sstream>

#include "support/check.hpp"

namespace dcnt {

std::string TreeCounter::name() const {
  std::ostringstream os;
  if (age_threshold() == std::numeric_limits<std::int64_t>::max()) {
    os << "static-tree(k=" << layout().k() << ")";
  } else {
    os << "tree(k=" << layout().k() << ",T=" << age_threshold() << ")";
  }
  return os.str();
}

void TreeCounter::check_root_state(
    std::size_t ops_completed, const std::vector<std::int64_t>& state) const {
  DCNT_CHECK_MSG(state.at(0) == static_cast<Value>(ops_completed),
                 "counter value != completed operations");
}

std::unique_ptr<TreeCounter> make_static_tree_counter(int k) {
  TreeCounterParams params;
  params.k = k;
  params.age_threshold = std::numeric_limits<std::int64_t>::max();
  return std::make_unique<TreeCounter>(params);
}

}  // namespace dcnt
