// A distributed priority queue on the §4 tree — the paper's second §2
// example of a predecessor-dependent data structure. The Ω(k) lower
// bound applies to it unchanged; this implementation inherits the O(k)
// *message-count* bottleneck from TreeService.
//
// One honest caveat, measured rather than hidden: the §4 construction
// keeps messages at O(log n) bits because the root state is one number.
// A priority queue's root state is the whole heap, so a root handover
// ships Θ(queue length) words — stats().max_handover_words exposes
// exactly how much. In the paper's bit-complexity terms the priority
// queue's bottleneck is O(k) messages but not O(k log n) bits; a
// production design would spill the heap to a distributed structure.
//
// Operations (via Simulator::begin_op):
//   {kOpInsert, key} — insert key; returns the key.
//   {kOpExtractMin}  — remove and return the minimum; returns
//                      kEmptyQueue if the queue is empty.
#pragma once

#include <memory>
#include <string>

#include "core/tree_service.hpp"

namespace dcnt {

class TreePriorityQueue final : public TreeService {
 public:
  static constexpr std::int64_t kOpInsert = 0;
  static constexpr std::int64_t kOpExtractMin = 1;
  static constexpr Value kEmptyQueue = -1;

  explicit TreePriorityQueue(TreeServiceParams params) : TreeService(params) {
    finish_init();
  }

  std::unique_ptr<CounterProtocol> clone_counter() const override {
    return std::make_unique<TreePriorityQueue>(*this);
  }
  bool try_assign_from(const Protocol& other) override {
    return protocol_assign(*this, other);
  }
  std::string name() const override;

  /// Current queue size; requires quiescence.
  std::size_t size() const { return root_state().size(); }

 protected:
  /// A plain inc-style operation (no args) behaves as insert(origin)
  /// would be ambiguous — treat it as extract-min so the counter
  /// harness cannot silently mis-drive this service.
  Value root_apply(std::vector<std::int64_t>& state,
                   const std::vector<std::int64_t>& op_args) override;
  std::vector<std::int64_t> initial_root_state() const override { return {}; }
};

}  // namespace dcnt
