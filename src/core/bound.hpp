// The paper's bound arithmetic.
//
// Both theorems are stated in terms of the unique k >= 1 with
// k * k^k = k^(k+1) = n: the Lower Bound Theorem guarantees a processor
// with message load Omega(k), and the communication-tree counter of §4
// achieves O(k). k grows as Theta(log n / log log n).
#pragma once

#include <cstdint>

namespace dcnt {

/// Integer power with overflow checking (aborts on overflow).
std::int64_t ipow(std::int64_t base, int exp);

/// n = k * k^k = k^(k+1): the number of processors served by the
/// communication tree with fan-out k (paper §4).
std::int64_t tree_size_for_k(int k);

/// The real k >= 1 solving k^(k+1) = n (n >= 1). This is the paper's
/// lower-bound parameter for arbitrary n.
double bottleneck_k(double n);

/// Largest integer k with k^(k+1) <= n (0 if n < 1... n>=1 gives >=1).
int floor_k_for(std::int64_t n);

/// Smallest integer k with k^(k+1) >= n — the paper's "simply increase n
/// to the next higher value of the form k*k^k".
int ceil_k_for(std::int64_t n);

}  // namespace dcnt
