// The paper's matching upper bound (§4): a distributed counter on a
// communication tree with *retiring* inner nodes.
//
// Protocol summary
//   * The counter value lives at the root's current incumbent processor.
//   * An inc initiated at leaf p climbs the tree as an "inc from p"
//     message; the root answers p directly with the value and increments.
//   * Every inner node tracks its *age* — messages sent or received
//     since its current incumbent took the job. Crossing the threshold
//     (default 4k; configurable, ablated in bench_ablation) makes it
//     retire: it hands its role to the next processor of its reserved
//     pool via k+1 short messages (role + parent + k children) and tells
//     its parent and its k children the successor's id via k+1 more
//     (the root skips the parent message and ships the counter value
//     with the role). Notifications age the neighbours, which may
//     cascade further retirements — the paper's Retirement Lemma bounds
//     the cascade to one retirement per node per inc.
//   * The paper leaves the concurrency plumbing to "a proper
//     handshaking protocol with a constant number of extra messages";
//     we implement the forwarding variant: a processor remembers the
//     successor of every role it gave up and forwards late messages,
//     and a processor that is told about a role before the handover
//     messages have all arrived stashes those messages until the
//     takeover completes. All such extra messages are counted.
//
// The Bottleneck Theorem says every processor's total load over the
// one-inc-per-processor sequence is O(k) with k^(k+1) = n; the tests and
// bench_upper_bound verify this shape.
//
// The machinery (tree, pools, retirement, handover) lives in
// TreeService; this class instantiates it with root state {value}.
// Siblings: TreeFlipBit (tree_bit.hpp) and TreePriorityQueue
// (tree_pq.hpp), the other §2 examples.
#pragma once

#include <memory>
#include <string>

#include "core/tree_service.hpp"

namespace dcnt {

using TreeCounterParams = TreeServiceParams;
using TreeCounterStats = TreeServiceStats;

class TreeCounter final : public TreeService {
 public:
  explicit TreeCounter(TreeCounterParams params) : TreeService(params) {
    finish_init();
  }

  std::unique_ptr<CounterProtocol> clone_counter() const override {
    return std::make_unique<TreeCounter>(*this);
  }
  bool try_assign_from(const Protocol& other) override {
    return protocol_assign(*this, other);
  }
  std::string name() const override;

  /// Current counter value; requires quiescence (role committed).
  Value value() const { return root_state().at(0); }

 protected:
  Value root_apply(std::vector<std::int64_t>& state,
                   const std::vector<std::int64_t>& op_args) override {
    (void)op_args;
    return state.at(0)++;
  }
  std::vector<std::int64_t> initial_root_state() const override { return {0}; }
  void check_root_state(std::size_t ops_completed,
                        const std::vector<std::int64_t>& state) const override;
};

/// The no-retirement ablation: the same tree with an infinite age
/// threshold. Its root incumbent handles every operation — the
/// "unreasonable" centralized-ish design the introduction warns about.
std::unique_ptr<TreeCounter> make_static_tree_counter(int k);

}  // namespace dcnt
