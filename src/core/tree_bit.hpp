// "A bit that can be accessed and flipped" — the paper's first §2
// example of a data structure whose operations depend on their
// immediate predecessor, so both the Hot Spot Lemma and the Ω(k) lower
// bound apply verbatim. Running it on the §4 tree shows the matching
// O(k) upper bound is not counter-specific either.
//
// Operation semantics: test-and-flip. The i-th operation returns the
// bit before the flip, i.e. i mod 2 under sequential execution.
#pragma once

#include <memory>
#include <string>

#include "core/tree_service.hpp"

namespace dcnt {

class TreeFlipBit final : public TreeService {
 public:
  explicit TreeFlipBit(TreeServiceParams params) : TreeService(params) {
    finish_init();
  }

  std::unique_ptr<CounterProtocol> clone_counter() const override {
    return std::make_unique<TreeFlipBit>(*this);
  }
  bool try_assign_from(const Protocol& other) override {
    return protocol_assign(*this, other);
  }
  std::string name() const override;

  /// Current bit; requires quiescence.
  bool bit() const { return root_state().at(0) != 0; }

 protected:
  Value root_apply(std::vector<std::int64_t>& state,
                   const std::vector<std::int64_t>& op_args) override {
    (void)op_args;
    const Value old = state.at(0);
    state.at(0) ^= 1;
    return old;
  }
  std::vector<std::int64_t> initial_root_state() const override { return {0}; }
  void check_root_state(std::size_t ops_completed,
                        const std::vector<std::int64_t>& state) const override;
};

}  // namespace dcnt
