// Static geometry of the paper's communication tree (§4, Figure 4).
//
// The tree has fan-out k. Inner nodes live on levels 0 (root) through k;
// the leaves — the n = k^(k+1) processors themselves — are on level k+1.
// Inner nodes are numbered level by level: level i holds k^i nodes, so
// node ids are 0 (root), 1..k (level 1), and so on.
//
// Replacement-processor pools (paper, "availability of processors"):
// the j-th node on level i (1 <= i <= k) initially uses processor
//   (i-1) * k^k + j * k^(k-i)                      (0-based)
// and owns the id interval of length k^(k-i) starting there; these
// intervals are pairwise disjoint and exactly cover [0, n). The root
// starts at processor 0 and walks 0, 1, 2, ... on retirement. Hence any
// processor works for at most one non-root inner node and at most once
// for the root — the fact the Bottleneck Theorem's O(k) accounting
// rests on.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace dcnt {

/// Inner-node identifier; 0 is the root. kNoNode (-1) = "none".
using NodeId = std::int64_t;
inline constexpr NodeId kNoNode = -1;

class TreeLayout {
 public:
  explicit TreeLayout(int k);

  int k() const { return k_; }
  /// Number of leaves = processors = k^(k+1).
  std::int64_t n() const { return n_; }
  /// Number of inner nodes = sum_{i=0}^{k} k^i.
  std::int64_t num_inner() const { return num_inner_; }
  /// Deepest inner level (the leaves' parents): level k.
  int leaf_parent_level() const { return k_; }

  int level_of(NodeId node) const;
  std::int64_t index_in_level(NodeId node) const;
  NodeId node_at(int level, std::int64_t j) const;

  /// Parent inner node; kNoNode for the root.
  NodeId parent(NodeId node) const;
  /// c-th inner child (0 <= c < k); node must be on level < k.
  NodeId child(NodeId node, int c) const;
  /// True iff node is on level k, i.e. its children are leaves.
  bool children_are_leaves(NodeId node) const;
  /// c-th leaf child of a level-k node: a processor id.
  ProcessorId leaf_child(NodeId node, int c) const;
  /// The level-k node above leaf processor p.
  NodeId leaf_parent(ProcessorId p) const;

  /// Initial incumbent processor of an inner node (root: processor 0).
  ProcessorId initial_pid(NodeId node) const;
  /// Start of the node's replacement pool (root: 0).
  ProcessorId pool_begin(NodeId node) const;
  /// Pool length: k^(k-i) for level i >= 1; n for the root.
  std::int64_t pool_size(NodeId node) const;
  /// Successor processor after `cur` retires from `node` (wraps within
  /// the pool; wrapping never happens for the paper's workload).
  ProcessorId successor(NodeId node, ProcessorId cur) const;

 private:
  int k_;
  std::int64_t n_;
  std::int64_t num_inner_;
  std::int64_t k_pow_k_;
  // level_offset_[i] = id of first node on level i, for i in [0, k+1]
  // (the last entry equals num_inner_).
  std::vector<std::int64_t> level_offset_;
};

}  // namespace dcnt
