#include "core/tree_bit.hpp"

#include <sstream>

#include "support/check.hpp"

namespace dcnt {

std::string TreeFlipBit::name() const {
  std::ostringstream os;
  os << "tree-bit(k=" << layout().k() << ")";
  return os.str();
}

void TreeFlipBit::check_root_state(
    std::size_t ops_completed, const std::vector<std::int64_t>& state) const {
  DCNT_CHECK_MSG(state.at(0) == static_cast<Value>(ops_completed % 2),
                 "bit != parity of completed flips");
}

}  // namespace dcnt
