#include "core/tree_layout.hpp"

#include "core/bound.hpp"
#include "support/check.hpp"

namespace dcnt {

TreeLayout::TreeLayout(int k) : k_(k) {
  DCNT_CHECK_MSG(k >= 2, "fan-out k must be at least 2");
  DCNT_CHECK_MSG(k <= 8, "k > 8 would need >10^8 processors");
  n_ = tree_size_for_k(k);
  k_pow_k_ = ipow(k, k);
  level_offset_.resize(static_cast<std::size_t>(k) + 2);
  std::int64_t offset = 0;
  for (int i = 0; i <= k; ++i) {
    level_offset_[static_cast<std::size_t>(i)] = offset;
    offset += ipow(k, i);
  }
  level_offset_[static_cast<std::size_t>(k) + 1] = offset;
  num_inner_ = offset;
}

int TreeLayout::level_of(NodeId node) const {
  DCNT_CHECK(node >= 0 && node < num_inner_);
  int level = 0;
  while (level_offset_[static_cast<std::size_t>(level) + 1] <= node) ++level;
  return level;
}

std::int64_t TreeLayout::index_in_level(NodeId node) const {
  return node - level_offset_[static_cast<std::size_t>(level_of(node))];
}

NodeId TreeLayout::node_at(int level, std::int64_t j) const {
  DCNT_CHECK(level >= 0 && level <= k_);
  DCNT_CHECK(j >= 0 && j < ipow(k_, level));
  return level_offset_[static_cast<std::size_t>(level)] + j;
}

NodeId TreeLayout::parent(NodeId node) const {
  const int level = level_of(node);
  if (level == 0) return kNoNode;
  return node_at(level - 1, index_in_level(node) / k_);
}

NodeId TreeLayout::child(NodeId node, int c) const {
  DCNT_CHECK(c >= 0 && c < k_);
  const int level = level_of(node);
  DCNT_CHECK_MSG(level < k_, "children of level-k nodes are leaves");
  return node_at(level + 1, index_in_level(node) * k_ + c);
}

bool TreeLayout::children_are_leaves(NodeId node) const {
  return level_of(node) == k_;
}

ProcessorId TreeLayout::leaf_child(NodeId node, int c) const {
  DCNT_CHECK(c >= 0 && c < k_);
  DCNT_CHECK(children_are_leaves(node));
  return static_cast<ProcessorId>(index_in_level(node) * k_ + c);
}

NodeId TreeLayout::leaf_parent(ProcessorId p) const {
  DCNT_CHECK(p >= 0 && p < n_);
  return node_at(k_, p / k_);
}

ProcessorId TreeLayout::initial_pid(NodeId node) const {
  const int level = level_of(node);
  if (level == 0) return 0;
  const std::int64_t j = index_in_level(node);
  return static_cast<ProcessorId>((level - 1) * k_pow_k_ +
                                  j * ipow(k_, k_ - level));
}

ProcessorId TreeLayout::pool_begin(NodeId node) const {
  return level_of(node) == 0 ? 0 : initial_pid(node);
}

std::int64_t TreeLayout::pool_size(NodeId node) const {
  const int level = level_of(node);
  return level == 0 ? n_ : ipow(k_, k_ - level);
}

ProcessorId TreeLayout::successor(NodeId node, ProcessorId cur) const {
  const ProcessorId begin = pool_begin(node);
  const std::int64_t size = pool_size(node);
  DCNT_CHECK(cur >= begin && cur < begin + size);
  return begin + static_cast<ProcessorId>((cur - begin + 1) % size);
}

}  // namespace dcnt
