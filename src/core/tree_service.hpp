// The paper's §4 machinery, generalized.
//
// §2 notes that the Hot Spot Lemma — and with it the whole lower bound
// — applies to "the family of all distributed data structures in which
// an operation depends on the operation that immediately precedes it.
// Examples for such data structures are a bit that can be accessed and
// flipped, and a priority queue." Dually, the §4 *upper-bound*
// construction only uses the counter in one place: the root applies an
// operation to a small piece of state and replies. TreeService factors
// the construction so that any such sequential object can ride the
// communication tree and inherit the O(k) bottleneck:
//
//   * TreeCounter       — root state {value};           the paper's §4
//   * TreeFlipBit       — root state {bit};             §2's example
//   * TreePriorityQueue — root state = a binary heap;   §2's example,
//     with a caveat the stats expose: handing the root role over ships
//     the whole heap, so the paper's O(log n)-bits-per-message property
//     survives only for constant-size root state
//     (stats().max_handover_words makes the difference measurable).
//
// Protocol recap (see tree_counter.hpp for the counter-specific story):
// leaves forward operations up a fan-out-k tree; the root incumbent
// applies them; inner nodes age by two per forwarded message and one
// per notification, retire at the (configurable, default 4k) threshold,
// handing their role to the next processor of their disjoint id pool
// with k+1 short messages and notifying parent and children with k+1
// more. Misdirected messages are forwarded by ex-incumbents; messages
// that beat their own handover are stashed until it commits. All extra
// messages are counted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tree_layout.hpp"
#include "sim/protocol.hpp"
#include "support/relaxed.hpp"

namespace dcnt {

struct TreeServiceParams {
  int k{2};
  /// Age at which a node retires. 0 selects the default 4k. Use
  /// std::numeric_limits<int64_t>::max() for the no-retirement ablation.
  /// Thresholds <= k+1 are unstable: each retirement ages its k+1
  /// neighbours by one message, so the cascade reproduces itself
  /// (a "retirement storm") and the system never quiesces.
  std::int64_t age_threshold{0};
  /// If true, the k+1 handover messages count toward the new incumbent's
  /// starting age (the paper's accounting excludes them; ablatable).
  bool count_handover_in_age{false};
  /// Self-healing mode (DESIGN.md §8): per-origin operation serials with
  /// an exactly-once journal at the root, primary-backup replication of
  /// the root role to its pool successor (replies are write-ahead gated
  /// on the backup ack), crash handover driven by transport suspicion
  /// (Protocol::on_peer_unreachable), and end-to-end operation retry at
  /// the origin. Changes the wire format of Inc / Value / the root's
  /// TakeOver. Off by default; off means bit-identical behavior to the
  /// paper's fault-free protocol.
  bool self_healing{false};
  /// Origin-side end-to-end retry (self_healing only): delay before the
  /// first re-send of an unanswered operation.
  SimTime inc_retry_timeout{64};
  /// Backoff cap for the origin retry timer (doubles per attempt).
  SimTime inc_retry_max_timeout{1024};
  /// Attempts (1 original + retries) before the origin gives up — which
  /// aborts loudly, since a counter op must not vanish.
  int inc_retry_limit{40};
};

/// Housekeeping counters; exposed for lemma audits and benches.
/// RelaxedCounter because these are bumped from handlers at arbitrary
/// processors — under the threaded runtime those run on different
/// shards, and a plain int64 would be a data race (the counters carry
/// no synchronization, so relaxed ordering is exact; see
/// support/relaxed.hpp).
struct TreeServiceStats {
  RelaxedCounter retirements_total{0};
  std::vector<RelaxedCounter> retirements_by_level;
  /// A pool ran out and wrapped around — never happens for the paper's
  /// workload with the default threshold (asserted in tests).
  RelaxedCounter pool_wraps{0};
  /// Misdirected messages re-sent to a role's successor.
  RelaxedCounter forwarded_messages{0};
  /// Messages that arrived for a role before its handover did.
  RelaxedCounter orphan_stashes{0};
  /// Retirements whose pool has size 1 (successor == retiree).
  RelaxedCounter self_handovers{0};
  /// Largest payload (in words) of any handover message — O(1) for the
  /// counter and the flip bit, Theta(queue size) for the priority queue.
  RelaxedCounter max_handover_words{0};
  // Self-healing counters (faults plane; all zero in the fault-free
  // model and with self_healing off).
  /// Crash-triggered promotions: a suspected incumbent was replaced by a
  /// pool successor without a handover from the incumbent itself.
  RelaxedCounter crash_handovers{0};
  /// End-to-end operation re-sends by origins (distinct from the
  /// transport's per-message retransmissions in RetryStats).
  RelaxedCounter retransmissions{0};
  /// Origin retry timers that fired and found their op still unanswered.
  RelaxedCounter timeouts_fired{0};
  /// Root-state backups shipped to the pool successor.
  RelaxedCounter backups_sent{0};
  /// Retried operations answered from the root's journal instead of
  /// being applied a second time (the exactly-once dedup hits).
  RelaxedCounter replayed_replies{0};
  /// Promote requests ignored because the target already held, was
  /// receiving, or had already passed on the role.
  RelaxedCounter promotes_ignored{0};
};

/// One retirement, for the Retirement / Number-of-Retirements Lemma
/// audits (analysis/audit.hpp).
struct RetirementEvent {
  OpId op{kNoOp};
  NodeId node{kNoNode};
  int level{0};
  ProcessorId old_pid{kNoProcessor};
  ProcessorId new_pid{kNoProcessor};
};

class TreeService : public CounterProtocol {
 public:
  explicit TreeService(TreeServiceParams params);

  // Message tags (public so traces can be decoded by the analysis layer).
  // Self-healing mode inserts a per-origin serial: Inc becomes
  // [origin, target_node, serial, op_args...] and Value [value, serial].
  static constexpr std::int32_t kTagInc = 1;       ///< [origin, target_node, op_args...]
  static constexpr std::int32_t kTagValue = 2;     ///< [value]
  static constexpr std::int32_t kTagTakeOver = 3;  ///< [node, parent_pid, root_state...]; healing root: [0, parent_pid, bseq, J, (origin,serial,value)*J, G, (origin,serial,value,op)*G, root_state...]
  static constexpr std::int32_t kTagChildInfo = 4; ///< [node, child_idx, child_pid]
  static constexpr std::int32_t kTagNewId = 5;     ///< [target_node, retiring_node, new_pid]; target -1 = "you as leaf"
  // Self-healing tags (DESIGN.md §8; never sent with self_healing off).
  static constexpr std::int32_t kTagBackup = 6;    ///< [0, seq, J, (origin,serial,value)*J, child_pids*k, root_state...]
  static constexpr std::int32_t kTagBackupAck = 7; ///< [0, seq]
  static constexpr std::int32_t kTagPromote = 8;   ///< [node, dead_pid]
  static constexpr std::int32_t kTagIncRetry = 9;  ///< local [serial]: origin retry timer

  // CounterProtocol:
  std::size_t num_processors() const override;
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override;
  void start_op(Context& ctx, ProcessorId origin, OpId op,
                const std::vector<std::int64_t>& args) override;
  void on_message(Context& ctx, const Message& msg) override;
  void on_peer_unreachable(Context& ctx, ProcessorId self,
                           ProcessorId peer) override;
  void check_quiescent(std::size_t ops_completed) const override;
  /// The fault-free tree honours the state-slicing invariant at the
  /// memory level (each role/stash/forward lives in its holder's
  /// ProcState; incumbent_[node] writes are ordered by the handover
  /// message chain; stats are RelaxedCounters). Healing mode relies on
  /// transport timeouts and suspicion that the runtime does not model,
  /// so it stays simulator-only.
  bool shard_safe() const override { return !self_healing_; }
  /// Sharded execution disables the retirement log: it is an optional
  /// audit aid (analysis/audit.hpp), and a global append vector cannot
  /// be written from concurrent handlers.
  void on_shard_start(std::size_t workers) override;

  // Introspection.
  const TreeLayout& layout() const { return layout_; }
  std::int64_t age_threshold() const { return threshold_; }
  const TreeServiceStats& stats() const { return stats_; }
  const std::vector<RetirementEvent>& retirement_log() const {
    return retirement_log_;
  }
  /// Current incumbent of an inner node (committed view).
  ProcessorId incumbent(NodeId node) const;
  /// Exhaustive structural invariants; O(n) — for tests, not the hot path.
  void deep_check() const;

 protected:
  /// The sequential object living at the root. Called once per
  /// operation, under the root incumbent; must return the reply value.
  virtual Value root_apply(std::vector<std::int64_t>& state,
                           const std::vector<std::int64_t>& op_args) = 0;
  /// Root state before any operation.
  virtual std::vector<std::int64_t> initial_root_state() const = 0;
  /// Service-specific quiescent invariant on the root state (default:
  /// none).
  virtual void check_root_state(std::size_t ops_completed,
                                const std::vector<std::int64_t>& state) const {
    (void)ops_completed;
    (void)state;
  }

  /// Committed root state; requires quiescence. For subclass accessors.
  const std::vector<std::int64_t>& root_state() const;

  /// Must be called at the end of every concrete subclass constructor:
  /// installs initial_root_state() at the root incumbent (virtual
  /// dispatch is not available in the base constructor).
  void finish_init();

 private:
  /// One applied operation remembered for exactly-once dedup: the last
  /// serial each origin got through the root, with its reply value.
  /// Per-origin serials are sequential (one outstanding op per origin),
  /// so one entry per origin suffices. Kept sorted by origin.
  struct JournalEntry {
    ProcessorId origin{kNoProcessor};
    std::int64_t serial{-1};
    Value value{0};
  };
  /// A reply the root has applied but not yet released: write-ahead
  /// gating — the Value goes out only once backup `backup_seq` is acked,
  /// so a promoted successor can never hand out a second, different
  /// value for the same serial.
  struct GatedReply {
    std::int64_t backup_seq{-1};
    ProcessorId origin{kNoProcessor};
    std::int64_t serial{-1};
    Value value{0};
    OpId op{kNoOp};
  };
  /// State of one inner-node role held by a processor.
  struct Role {
    NodeId node{kNoNode};
    ProcessorId parent_pid{kNoProcessor};  // kNoProcessor for the root
    std::vector<ProcessorId> child_pids;   // inner incumbents or leaf ids
    std::int64_t age{0};
    std::vector<std::int64_t> state;  // root only
    // Self-healing root bookkeeping (empty unless node == 0 and
    // self_healing is on).
    std::vector<JournalEntry> journal;
    std::vector<GatedReply> gated;
    std::int64_t backup_next_seq{0};
    /// Backup receiver; kNoProcessor = the default pool successor.
    /// Re-targeted past a suspect when the successor itself dies.
    ProcessorId backup_target{kNoProcessor};
  };
  /// Handover being assembled at the successor.
  struct PendingTakeover {
    NodeId node{kNoNode};
    bool has_main{false};  // kTagTakeOver arrived
    int children_received{0};
    ProcessorId parent_pid{kNoProcessor};
    std::vector<ProcessorId> child_pids;
    std::vector<std::int64_t> state;
    // Healing root handover blob (node 0 with self_healing on).
    std::vector<JournalEntry> journal;
    std::vector<GatedReply> gated;
    std::int64_t backup_next_seq{0};
  };
  struct ProcState {
    /// Incumbent of this leaf's parent node, as this leaf believes.
    ProcessorId leaf_parent_pid{kNoProcessor};
    std::vector<Role> roles;
    std::vector<PendingTakeover> pending;
    /// node -> successor, for roles this processor gave up.
    std::vector<std::pair<NodeId, ProcessorId>> forwards;
    /// Messages for roles we do not (yet) hold.
    std::vector<Message> stash;
    // --- Self-healing state ---
    /// Next operation serial this origin will issue.
    std::int64_t next_serial{0};
    /// The one outstanding op (healing mode is sequential per origin);
    /// -1 = none.
    std::int64_t out_serial{-1};
    std::vector<std::int64_t> out_args;
    int out_attempts{0};
    SimTime out_timeout{0};
    /// Peers this processor has declared unreachable (f = 1 keeps this
    /// tiny); pool walks skip them.
    std::vector<ProcessorId> suspects;
    /// Shadow of the root role, maintained from kTagBackup messages
    /// while this processor is the root's backup target. seq -1 = none.
    std::int64_t shadow_seq{-1};
    std::vector<std::int64_t> shadow_state;
    std::vector<ProcessorId> shadow_children;
    std::vector<JournalEntry> shadow_journal;
  };

  Role* find_role(ProcState& ps, NodeId node);
  const Role* find_role(const ProcState& ps, NodeId node) const;
  PendingTakeover* find_pending(ProcState& ps, NodeId node);
  ProcessorId* find_forward(ProcState& ps, NodeId node);

  void handle_role_message(Context& ctx, ProcessorId self, Role& role,
                           const Message& msg);
  void route_node_message(Context& ctx, ProcessorId self, NodeId target,
                          const Message& msg);
  void bump_age(Context& ctx, ProcessorId self, Role& role,
                std::int64_t amount, OpId op);
  void retire(Context& ctx, ProcessorId self, const Role& role, OpId op);
  void commit_takeover(Context& ctx, ProcessorId self,
                       const PendingTakeover& pt);
  void drain_stash(Context& ctx, ProcessorId self, NodeId node);

  // Self-healing helpers (all no-ops / unreachable with healing off).
  JournalEntry* find_journal(Role& role, ProcessorId origin);
  void handle_root_op(Context& ctx, ProcessorId self, Role& role,
                      const Message& msg);
  void handle_backup(Context& ctx, ProcessorId self, const Message& msg);
  void handle_backup_ack(Context& ctx, ProcessorId self, Role& role,
                         const Message& msg);
  void handle_promote(Context& ctx, ProcessorId self, const Message& msg);
  void handle_inc_retry(Context& ctx, ProcessorId self, const Message& msg);
  void send_backup(Context& ctx, ProcessorId self, Role& role,
                   std::int64_t seq);
  ProcessorId backup_target_of(const Role& role, ProcessorId self) const;
  /// Best local guess at a node's incumbent: ourselves if we hold the
  /// role, else the first unsuspected pool member from the initial pid.
  ProcessorId believed_incumbent(const ProcState& ps, NodeId node,
                                 ProcessorId self) const;
  /// First pool member after `from` (inclusive) not suspected by `ps`;
  /// gives up (returns `from`) after a full pool lap.
  ProcessorId next_unsuspected(const ProcState& ps, NodeId node,
                               ProcessorId from) const;

  TreeLayout layout_;
  std::int64_t threshold_;
  bool count_handover_in_age_;
  bool self_healing_;
  SimTime inc_retry_timeout_;
  SimTime inc_retry_max_timeout_;
  int inc_retry_limit_;
  std::vector<ProcState> procs_;
  /// Committed incumbent per inner node (kNoProcessor while in handover).
  std::vector<ProcessorId> incumbent_;
  TreeServiceStats stats_;
  std::vector<RetirementEvent> retirement_log_;
  // O(1) quiescence counters (RelaxedCounter: bumped from handlers at
  // arbitrary processors, read only at quiescence).
  RelaxedCounter live_pending_{0};
  RelaxedCounter live_stash_{0};
  /// True once on_shard_start ran: handlers may execute concurrently,
  /// so the (optional) retirement log stops recording.
  bool shard_mode_{false};
  bool initialized_{false};
};

}  // namespace dcnt
