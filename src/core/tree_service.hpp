// The paper's §4 machinery, generalized.
//
// §2 notes that the Hot Spot Lemma — and with it the whole lower bound
// — applies to "the family of all distributed data structures in which
// an operation depends on the operation that immediately precedes it.
// Examples for such data structures are a bit that can be accessed and
// flipped, and a priority queue." Dually, the §4 *upper-bound*
// construction only uses the counter in one place: the root applies an
// operation to a small piece of state and replies. TreeService factors
// the construction so that any such sequential object can ride the
// communication tree and inherit the O(k) bottleneck:
//
//   * TreeCounter       — root state {value};           the paper's §4
//   * TreeFlipBit       — root state {bit};             §2's example
//   * TreePriorityQueue — root state = a binary heap;   §2's example,
//     with a caveat the stats expose: handing the root role over ships
//     the whole heap, so the paper's O(log n)-bits-per-message property
//     survives only for constant-size root state
//     (stats().max_handover_words makes the difference measurable).
//
// Protocol recap (see tree_counter.hpp for the counter-specific story):
// leaves forward operations up a fan-out-k tree; the root incumbent
// applies them; inner nodes age by two per forwarded message and one
// per notification, retire at the (configurable, default 4k) threshold,
// handing their role to the next processor of their disjoint id pool
// with k+1 short messages and notifying parent and children with k+1
// more. Misdirected messages are forwarded by ex-incumbents; messages
// that beat their own handover are stashed until it commits. All extra
// messages are counted.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tree_layout.hpp"
#include "sim/protocol.hpp"

namespace dcnt {

struct TreeServiceParams {
  int k{2};
  /// Age at which a node retires. 0 selects the default 4k. Use
  /// std::numeric_limits<int64_t>::max() for the no-retirement ablation.
  /// Thresholds <= k+1 are unstable: each retirement ages its k+1
  /// neighbours by one message, so the cascade reproduces itself
  /// (a "retirement storm") and the system never quiesces.
  std::int64_t age_threshold{0};
  /// If true, the k+1 handover messages count toward the new incumbent's
  /// starting age (the paper's accounting excludes them; ablatable).
  bool count_handover_in_age{false};
};

/// Housekeeping counters; exposed for lemma audits and benches.
struct TreeServiceStats {
  std::int64_t retirements_total{0};
  std::vector<std::int64_t> retirements_by_level;
  /// A pool ran out and wrapped around — never happens for the paper's
  /// workload with the default threshold (asserted in tests).
  std::int64_t pool_wraps{0};
  /// Misdirected messages re-sent to a role's successor.
  std::int64_t forwarded_messages{0};
  /// Messages that arrived for a role before its handover did.
  std::int64_t orphan_stashes{0};
  /// Retirements whose pool has size 1 (successor == retiree).
  std::int64_t self_handovers{0};
  /// Largest payload (in words) of any handover message — O(1) for the
  /// counter and the flip bit, Theta(queue size) for the priority queue.
  std::int64_t max_handover_words{0};
};

/// One retirement, for the Retirement / Number-of-Retirements Lemma
/// audits (analysis/audit.hpp).
struct RetirementEvent {
  OpId op{kNoOp};
  NodeId node{kNoNode};
  int level{0};
  ProcessorId old_pid{kNoProcessor};
  ProcessorId new_pid{kNoProcessor};
};

class TreeService : public CounterProtocol {
 public:
  explicit TreeService(TreeServiceParams params);

  // Message tags (public so traces can be decoded by the analysis layer).
  static constexpr std::int32_t kTagInc = 1;       ///< [origin, target_node, op_args...]
  static constexpr std::int32_t kTagValue = 2;     ///< [value]
  static constexpr std::int32_t kTagTakeOver = 3;  ///< [node, parent_pid, root_state...]
  static constexpr std::int32_t kTagChildInfo = 4; ///< [node, child_idx, child_pid]
  static constexpr std::int32_t kTagNewId = 5;     ///< [target_node, retiring_node, new_pid]; target -1 = "you as leaf"

  // CounterProtocol:
  std::size_t num_processors() const override;
  void start_inc(Context& ctx, ProcessorId origin, OpId op) override;
  void start_op(Context& ctx, ProcessorId origin, OpId op,
                const std::vector<std::int64_t>& args) override;
  void on_message(Context& ctx, const Message& msg) override;
  void check_quiescent(std::size_t ops_completed) const override;

  // Introspection.
  const TreeLayout& layout() const { return layout_; }
  std::int64_t age_threshold() const { return threshold_; }
  const TreeServiceStats& stats() const { return stats_; }
  const std::vector<RetirementEvent>& retirement_log() const {
    return retirement_log_;
  }
  /// Current incumbent of an inner node (committed view).
  ProcessorId incumbent(NodeId node) const;
  /// Exhaustive structural invariants; O(n) — for tests, not the hot path.
  void deep_check() const;

 protected:
  /// The sequential object living at the root. Called once per
  /// operation, under the root incumbent; must return the reply value.
  virtual Value root_apply(std::vector<std::int64_t>& state,
                           const std::vector<std::int64_t>& op_args) = 0;
  /// Root state before any operation.
  virtual std::vector<std::int64_t> initial_root_state() const = 0;
  /// Service-specific quiescent invariant on the root state (default:
  /// none).
  virtual void check_root_state(std::size_t ops_completed,
                                const std::vector<std::int64_t>& state) const {
    (void)ops_completed;
    (void)state;
  }

  /// Committed root state; requires quiescence. For subclass accessors.
  const std::vector<std::int64_t>& root_state() const;

  /// Must be called at the end of every concrete subclass constructor:
  /// installs initial_root_state() at the root incumbent (virtual
  /// dispatch is not available in the base constructor).
  void finish_init();

 private:
  /// State of one inner-node role held by a processor.
  struct Role {
    NodeId node{kNoNode};
    ProcessorId parent_pid{kNoProcessor};  // kNoProcessor for the root
    std::vector<ProcessorId> child_pids;   // inner incumbents or leaf ids
    std::int64_t age{0};
    std::vector<std::int64_t> state;  // root only
  };
  /// Handover being assembled at the successor.
  struct PendingTakeover {
    NodeId node{kNoNode};
    bool has_main{false};  // kTagTakeOver arrived
    int children_received{0};
    ProcessorId parent_pid{kNoProcessor};
    std::vector<ProcessorId> child_pids;
    std::vector<std::int64_t> state;
  };
  struct ProcState {
    /// Incumbent of this leaf's parent node, as this leaf believes.
    ProcessorId leaf_parent_pid{kNoProcessor};
    std::vector<Role> roles;
    std::vector<PendingTakeover> pending;
    /// node -> successor, for roles this processor gave up.
    std::vector<std::pair<NodeId, ProcessorId>> forwards;
    /// Messages for roles we do not (yet) hold.
    std::vector<Message> stash;
  };

  Role* find_role(ProcState& ps, NodeId node);
  const Role* find_role(const ProcState& ps, NodeId node) const;
  PendingTakeover* find_pending(ProcState& ps, NodeId node);
  ProcessorId* find_forward(ProcState& ps, NodeId node);

  void handle_role_message(Context& ctx, ProcessorId self, Role& role,
                           const Message& msg);
  void route_node_message(Context& ctx, ProcessorId self, NodeId target,
                          const Message& msg);
  void bump_age(Context& ctx, ProcessorId self, Role& role,
                std::int64_t amount, OpId op);
  void retire(Context& ctx, ProcessorId self, const Role& role, OpId op);
  void commit_takeover(Context& ctx, ProcessorId self,
                       const PendingTakeover& pt);

  TreeLayout layout_;
  std::int64_t threshold_;
  bool count_handover_in_age_;
  std::vector<ProcState> procs_;
  /// Committed incumbent per inner node (kNoProcessor while in handover).
  std::vector<ProcessorId> incumbent_;
  TreeServiceStats stats_;
  std::vector<RetirementEvent> retirement_log_;
  // O(1) quiescence counters.
  std::int64_t live_pending_{0};
  std::int64_t live_stash_{0};
  bool initialized_{false};
};

}  // namespace dcnt
