#include "core/bound.hpp"

#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace dcnt {

std::int64_t ipow(std::int64_t base, int exp) {
  DCNT_CHECK(base >= 0 && exp >= 0);
  std::int64_t result = 1;
  for (int i = 0; i < exp; ++i) {
    DCNT_CHECK_MSG(base == 0 ||
                       result <= std::numeric_limits<std::int64_t>::max() / base,
                   "ipow overflow");
    result *= base;
  }
  return result;
}

std::int64_t tree_size_for_k(int k) {
  DCNT_CHECK(k >= 1);
  return ipow(k, k + 1);
}

double bottleneck_k(double n) {
  DCNT_CHECK(n >= 1.0);
  if (n == 1.0) return 1.0;
  // Solve (k+1) * ln k = ln n for k in [1, 64] by bisection; the left
  // side is strictly increasing in k for k >= 1.
  const double target = std::log(n);
  double lo = 1.0;
  double hi = 64.0;
  auto f = [](double k) { return (k + 1.0) * std::log(k); };
  DCNT_CHECK_MSG(f(hi) >= target, "n too large for bottleneck_k");
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (f(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

int floor_k_for(std::int64_t n) {
  DCNT_CHECK(n >= 1);
  int k = 1;
  while (tree_size_for_k(k + 1) <= n) ++k;
  return k;
}

int ceil_k_for(std::int64_t n) {
  DCNT_CHECK(n >= 1);
  int k = 1;
  while (tree_size_for_k(k) < n) ++k;
  return k;
}

}  // namespace dcnt
