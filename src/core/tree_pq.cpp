#include "core/tree_pq.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "support/check.hpp"

namespace dcnt {

std::string TreePriorityQueue::name() const {
  std::ostringstream os;
  os << "tree-pq(k=" << layout().k() << ")";
  return os.str();
}

Value TreePriorityQueue::root_apply(std::vector<std::int64_t>& state,
                                    const std::vector<std::int64_t>& op_args) {
  // state is a binary min-heap (std::*_heap with greater<>).
  if (!op_args.empty() && op_args.at(0) == kOpInsert) {
    DCNT_CHECK_MSG(op_args.size() == 2, "insert takes exactly one key");
    const std::int64_t key = op_args.at(1);
    state.push_back(key);
    std::push_heap(state.begin(), state.end(), std::greater<>());
    return key;
  }
  // Extract-min (explicit or default).
  if (state.empty()) return kEmptyQueue;
  std::pop_heap(state.begin(), state.end(), std::greater<>());
  const std::int64_t min = state.back();
  state.pop_back();
  return min;
}

}  // namespace dcnt
