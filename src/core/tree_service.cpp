#include "core/tree_service.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "support/check.hpp"

namespace dcnt {

namespace {
constexpr NodeId kLeafTarget = -1;  // kTagNewId addressed to a leaf
}

TreeService::TreeService(TreeServiceParams params)
    : layout_(params.k),
      threshold_(params.age_threshold == 0
                     ? 4 * static_cast<std::int64_t>(params.k)
                     : params.age_threshold),
      count_handover_in_age_(params.count_handover_in_age),
      self_healing_(params.self_healing),
      inc_retry_timeout_(params.inc_retry_timeout),
      inc_retry_max_timeout_(params.inc_retry_max_timeout),
      inc_retry_limit_(params.inc_retry_limit) {
  DCNT_CHECK(threshold_ > 0);
  if (self_healing_) {
    DCNT_CHECK(inc_retry_timeout_ >= 1);
    DCNT_CHECK(inc_retry_max_timeout_ >= inc_retry_timeout_);
    DCNT_CHECK(inc_retry_limit_ >= 1);
  }
  const std::int64_t n = layout_.n();
  procs_.resize(static_cast<std::size_t>(n));
  incumbent_.assign(static_cast<std::size_t>(layout_.num_inner()),
                    kNoProcessor);
  stats_.retirements_by_level.assign(static_cast<std::size_t>(layout_.k()) + 1,
                                     0);

  for (ProcessorId p = 0; p < n; ++p) {
    procs_[static_cast<std::size_t>(p)].leaf_parent_pid =
        layout_.initial_pid(layout_.leaf_parent(p));
  }
  for (NodeId node = 0; node < layout_.num_inner(); ++node) {
    const ProcessorId pid = layout_.initial_pid(node);
    Role role;
    role.node = node;
    const NodeId up = layout_.parent(node);
    role.parent_pid = up == kNoNode ? kNoProcessor : layout_.initial_pid(up);
    role.child_pids.resize(static_cast<std::size_t>(layout_.k()));
    for (int c = 0; c < layout_.k(); ++c) {
      role.child_pids[static_cast<std::size_t>(c)] =
          layout_.children_are_leaves(node)
              ? layout_.leaf_child(node, c)
              : layout_.initial_pid(layout_.child(node, c));
    }
    procs_[static_cast<std::size_t>(pid)].roles.push_back(std::move(role));
    incumbent_[static_cast<std::size_t>(node)] = pid;
  }
}

void TreeService::finish_init() {
  DCNT_CHECK(!initialized_);
  ProcState& root_ps = procs_[static_cast<std::size_t>(incumbent_[0])];
  Role* root = find_role(root_ps, 0);
  DCNT_CHECK(root != nullptr);
  root->state = initial_root_state();
  initialized_ = true;
}

std::size_t TreeService::num_processors() const {
  return static_cast<std::size_t>(layout_.n());
}

TreeService::Role* TreeService::find_role(ProcState& ps, NodeId node) {
  for (auto& r : ps.roles) {
    if (r.node == node) return &r;
  }
  return nullptr;
}

const TreeService::Role* TreeService::find_role(const ProcState& ps,
                                                NodeId node) const {
  for (const auto& r : ps.roles) {
    if (r.node == node) return &r;
  }
  return nullptr;
}

TreeService::PendingTakeover* TreeService::find_pending(ProcState& ps,
                                                        NodeId node) {
  for (auto& pt : ps.pending) {
    if (pt.node == node) return &pt;
  }
  return nullptr;
}

ProcessorId* TreeService::find_forward(ProcState& ps, NodeId node) {
  for (auto& f : ps.forwards) {
    if (f.first == node) return &f.second;
  }
  return nullptr;
}

void TreeService::start_inc(Context& ctx, ProcessorId origin, OpId op) {
  start_op(ctx, origin, op, {});
}

void TreeService::start_op(Context& ctx, ProcessorId origin, OpId /*op*/,
                           const std::vector<std::int64_t>& args) {
  DCNT_CHECK_MSG(initialized_,
                 "subclass constructor must call finish_init()");
  auto& ps = procs_[static_cast<std::size_t>(origin)];
  Message m;
  m.src = origin;
  m.dst = ps.leaf_parent_pid;
  m.tag = kTagInc;
  m.args = {origin, layout_.leaf_parent(origin)};
  if (self_healing_) {
    DCNT_CHECK_MSG(ps.out_serial < 0,
                   "self-healing mode allows one outstanding op per origin");
    const std::int64_t serial = ps.next_serial++;
    m.args.push_back(serial);
    ps.out_serial = serial;
    ps.out_args = args;
    ps.out_attempts = 1;
    ps.out_timeout = inc_retry_timeout_;
    ctx.send_local(origin, kTagIncRetry, {serial}, ps.out_timeout);
  }
  m.args.insert(m.args.end(), args.begin(), args.end());
  ctx.send(std::move(m));
}

void TreeService::on_message(Context& ctx, const Message& msg) {
  const ProcessorId self = msg.dst;
  auto& ps = procs_[static_cast<std::size_t>(self)];
  switch (msg.tag) {
    case kTagValue:
      if (self_healing_) {
        // A replayed or late reply for an op we already completed is
        // dropped by serial; only the outstanding op may complete.
        if (ps.out_serial != msg.args.at(1)) return;
        ps.out_serial = -1;
        ps.out_args.clear();
      }
      ctx.complete(msg.op, msg.args.at(0));
      return;

    case kTagInc:
      route_node_message(ctx, self, msg.args.at(1), msg);
      return;

    case kTagNewId: {
      const NodeId target = msg.args.at(0);
      if (target == kLeafTarget) {
        // This processor, in its leaf capacity, learns its parent node's
        // new incumbent.
        DCNT_CHECK(layout_.leaf_parent(self) == msg.args.at(1));
        ps.leaf_parent_pid = static_cast<ProcessorId>(msg.args.at(2));
        return;
      }
      route_node_message(ctx, self, target, msg);
      return;
    }

    case kTagTakeOver:
    case kTagChildInfo: {
      const NodeId node = msg.args.at(0);
      PendingTakeover* pt = find_pending(ps, node);
      if (pt == nullptr) {
        PendingTakeover fresh;
        fresh.node = node;
        fresh.child_pids.assign(static_cast<std::size_t>(layout_.k()),
                                kNoProcessor);
        ps.pending.push_back(std::move(fresh));
        ++live_pending_;
        pt = &ps.pending.back();
      }
      if (msg.tag == kTagTakeOver) {
        DCNT_CHECK(!pt->has_main);
        pt->has_main = true;
        pt->parent_pid = static_cast<ProcessorId>(msg.args.at(1));
        if (self_healing_ && node == 0) {
          // Root handover ships the exactly-once machinery too.
          std::size_t i = 2;
          pt->backup_next_seq = msg.args.at(i++);
          const auto jn = static_cast<std::size_t>(msg.args.at(i++));
          pt->journal.resize(jn);
          for (auto& e : pt->journal) {
            e.origin = static_cast<ProcessorId>(msg.args.at(i++));
            e.serial = msg.args.at(i++);
            e.value = msg.args.at(i++);
          }
          const auto gn = static_cast<std::size_t>(msg.args.at(i++));
          pt->gated.resize(gn);
          for (auto& g : pt->gated) {
            g.origin = static_cast<ProcessorId>(msg.args.at(i++));
            g.serial = msg.args.at(i++);
            g.value = msg.args.at(i++);
            g.op = msg.args.at(i++);
          }
          pt->state.assign(msg.args.begin() + static_cast<std::ptrdiff_t>(i),
                           msg.args.end());
        } else {
          pt->state.assign(msg.args.begin() + 2, msg.args.end());
        }
      } else {
        const auto idx = static_cast<std::size_t>(msg.args.at(1));
        DCNT_CHECK(pt->child_pids.at(idx) == kNoProcessor);
        pt->child_pids[idx] = static_cast<ProcessorId>(msg.args.at(2));
        ++pt->children_received;
      }
      if (pt->has_main && pt->children_received == layout_.k()) {
        const PendingTakeover done = *pt;
        ps.pending.erase(ps.pending.begin() + (pt - ps.pending.data()));
        --live_pending_;
        commit_takeover(ctx, self, done);
      }
      return;
    }

    case kTagBackup:
      handle_backup(ctx, self, msg);
      return;

    case kTagBackupAck:
      // Addressed to the root *role*, wherever it lives now.
      route_node_message(ctx, self, msg.args.at(0), msg);
      return;

    case kTagPromote:
      handle_promote(ctx, self, msg);
      return;

    case kTagIncRetry:
      handle_inc_retry(ctx, self, msg);
      return;

    default:
      DCNT_CHECK_MSG(false, "unknown message tag");
  }
}

void TreeService::route_node_message(Context& ctx, ProcessorId self,
                                     NodeId target, const Message& msg) {
  auto& ps = procs_[static_cast<std::size_t>(self)];
  if (Role* role = find_role(ps, target)) {
    handle_role_message(ctx, self, *role, msg);
    return;
  }
  if (find_pending(ps, target) != nullptr) {
    ps.stash.push_back(msg);
    ++live_stash_;
    return;
  }
  if (ProcessorId* succ = find_forward(ps, target)) {
    // We retired from this role; pass the message along to the successor
    // (the "constant number of extra messages" handshake of the paper).
    Message fwd = msg;
    fwd.src = self;
    fwd.dst = *succ;
    ++stats_.forwarded_messages;
    ctx.send(std::move(fwd));
    return;
  }
  // We are about to become this node's incumbent but the handover has
  // not fully arrived yet; park the message until it does.
  ps.stash.push_back(msg);
  ++live_stash_;
  ++stats_.orphan_stashes;
}

void TreeService::handle_role_message(Context& ctx, ProcessorId self,
                                      Role& role, const Message& msg) {
  if (msg.tag == kTagBackupAck) {
    DCNT_CHECK(self_healing_ && role.node == 0);
    // Replication bookkeeping, not tree traffic: no age bump.
    handle_backup_ack(ctx, self, role, msg);
    return;
  }
  if (msg.tag == kTagInc) {
    const auto origin = static_cast<ProcessorId>(msg.args.at(0));
    if (role.node == 0 && self_healing_) {
      handle_root_op(ctx, self, role, msg);
      return;
    }
    if (role.node == 0) {
      const std::vector<std::int64_t> op_args(msg.args.begin() + 2,
                                              msg.args.end());
      const Value reply_value = root_apply(role.state, op_args);
      Message reply;
      reply.src = self;
      reply.dst = origin;
      reply.tag = kTagValue;
      // Carry the op explicitly: when a stashed inc is drained during a
      // handover commit, the ambient op is the handover's, not the
      // inc's.
      reply.op = msg.op;
      reply.args = {reply_value};
      ctx.send(std::move(reply));
    } else {
      Message up = msg;  // preserves op and op_args
      up.src = self;
      up.dst = role.parent_pid;
      up.args[1] = layout_.parent(role.node);
      ctx.send(std::move(up));
    }
    bump_age(ctx, self, role, 2, msg.op);
    return;
  }
  DCNT_CHECK(msg.tag == kTagNewId);
  const NodeId retiring = msg.args.at(1);
  const auto new_pid = static_cast<ProcessorId>(msg.args.at(2));
  if (layout_.parent(role.node) == retiring) {
    role.parent_pid = new_pid;
  } else {
    DCNT_CHECK_MSG(!layout_.children_are_leaves(role.node),
                   "leaves never retire");
    bool found = false;
    for (int c = 0; c < layout_.k(); ++c) {
      if (layout_.child(role.node, c) == retiring) {
        role.child_pids[static_cast<std::size_t>(c)] = new_pid;
        found = true;
        break;
      }
    }
    DCNT_CHECK_MSG(found, "kTagNewId from a non-neighbour");
  }
  bump_age(ctx, self, role, 1, msg.op);
}

void TreeService::bump_age(Context& ctx, ProcessorId self, Role& role,
                           std::int64_t amount, OpId op) {
  role.age += amount;
  if (role.age >= threshold_) {
    // Copy: retire() erases the role from the vector we point into.
    const Role copy = role;
    retire(ctx, self, copy, op);
  }
}

void TreeService::retire(Context& ctx, ProcessorId self, const Role& role,
                         OpId op) {
  auto& ps = procs_[static_cast<std::size_t>(self)];
  const NodeId node = role.node;
  const int level = layout_.level_of(node);
  const int k = layout_.k();
  // Walk the pool past any processor this one has declared dead
  // (self-healing only; the suspect list is empty otherwise).
  const ProcessorId succ =
      next_unsuspected(ps, node, layout_.successor(node, self));

  RetirementEvent ev;
  ev.op = op;
  ev.node = node;
  ev.level = level;
  ev.old_pid = self;
  ev.new_pid = succ;
  if (!shard_mode_) retirement_log_.push_back(ev);
  ++stats_.retirements_total;
  ++stats_.retirements_by_level[static_cast<std::size_t>(level)];

  if (succ == self) {
    // Degenerate pool of size 1 (level-k nodes under aggressive
    // thresholds): "retire" to ourselves — just reset the age.
    ++stats_.self_handovers;
    Role* live = find_role(ps, node);
    DCNT_CHECK(live != nullptr);
    live->age = count_handover_in_age_ ? k + 1 : 0;
    return;
  }
  if (succ == layout_.pool_begin(node)) ++stats_.pool_wraps;

  // Drop the role, remember where it went. (`role` is the caller's copy,
  // not an element of ps.roles, so it survives the erase.)
  ps.roles.erase(
      std::find_if(ps.roles.begin(), ps.roles.end(),
                   [node](const Role& r) { return r.node == node; }));
  if (ProcessorId* fwd = find_forward(ps, node)) {
    *fwd = succ;
  } else {
    ps.forwards.emplace_back(node, succ);
  }
  incumbent_[static_cast<std::size_t>(node)] = kNoProcessor;

  // k+1 handover messages to the successor. For the paper's counter the
  // root ships one value and every message stays O(log n) bits; richer
  // root state (the priority queue) shows up in max_handover_words.
  {
    Message m;
    m.src = self;
    m.dst = succ;
    m.tag = kTagTakeOver;
    m.args = {node, role.parent_pid};
    if (self_healing_ && node == 0) {
      m.args.push_back(role.backup_next_seq);
      m.args.push_back(static_cast<std::int64_t>(role.journal.size()));
      for (const auto& e : role.journal) {
        m.args.push_back(e.origin);
        m.args.push_back(e.serial);
        m.args.push_back(e.value);
      }
      m.args.push_back(static_cast<std::int64_t>(role.gated.size()));
      for (const auto& g : role.gated) {
        m.args.push_back(g.origin);
        m.args.push_back(g.serial);
        m.args.push_back(g.value);
        m.args.push_back(g.op);
      }
    }
    m.args.insert(m.args.end(), role.state.begin(), role.state.end());
    stats_.max_handover_words.update_max(
        static_cast<std::int64_t>(m.size_words()));
    ctx.send(std::move(m));
  }
  for (int c = 0; c < k; ++c) {
    Message m;
    m.src = self;
    m.dst = succ;
    m.tag = kTagChildInfo;
    m.args = {node, c, role.child_pids[static_cast<std::size_t>(c)]};
    ctx.send(std::move(m));
  }
  // New-id notifications: parent (unless root — the paper's root "saves
  // the message that would inform the parent") and all children.
  if (level > 0) {
    Message m;
    m.src = self;
    m.dst = role.parent_pid;
    m.tag = kTagNewId;
    m.args = {layout_.parent(node), node, succ};
    ctx.send(std::move(m));
  }
  for (int c = 0; c < k; ++c) {
    Message m;
    m.src = self;
    m.dst = role.child_pids[static_cast<std::size_t>(c)];
    m.tag = kTagNewId;
    const NodeId child_target = layout_.children_are_leaves(node)
                                    ? kLeafTarget
                                    : layout_.child(node, c);
    m.args = {child_target, node, succ};
    ctx.send(std::move(m));
  }
}

void TreeService::commit_takeover(Context& ctx, ProcessorId self,
                                  const PendingTakeover& pt) {
  auto& ps = procs_[static_cast<std::size_t>(self)];
  DCNT_CHECK_MSG(find_role(ps, pt.node) == nullptr,
                 "takeover for a role we already hold");
  Role role;
  role.node = pt.node;
  role.parent_pid = pt.parent_pid;
  role.child_pids = pt.child_pids;
  role.state = pt.state;
  role.age = count_handover_in_age_ ? layout_.k() + 1 : 0;
  if (self_healing_ && pt.node == 0) {
    role.journal = pt.journal;
    role.gated = pt.gated;
    role.backup_next_seq = pt.backup_next_seq;
    // We were the previous root's backup target; now we are the primary.
    ps.shadow_seq = -1;
    ps.shadow_state.clear();
    ps.shadow_children.clear();
    ps.shadow_journal.clear();
  }
  // If we once held this role (pool wrap-around), we are no longer a
  // forwarder for it.
  auto fwd = std::find_if(ps.forwards.begin(), ps.forwards.end(),
                          [&](const auto& f) { return f.first == pt.node; });
  if (fwd != ps.forwards.end()) ps.forwards.erase(fwd);
  ps.roles.push_back(std::move(role));
  incumbent_[static_cast<std::size_t>(pt.node)] = self;

  if (self_healing_ && pt.node == 0) {
    // First act as the new primary: a full backup to *our* pool
    // successor. It seeds the next shadow immediately (so a crash right
    // after this handover still finds a replica) and any gated replies
    // inherited from the predecessor are rebound to its ack.
    Role& fresh = ps.roles.back();
    const std::int64_t seq = fresh.backup_next_seq++;
    for (auto& g : fresh.gated) g.backup_seq = seq;
    send_backup(ctx, self, fresh, seq);
  }

  // Drain messages that arrived for this role during the handover.
  drain_stash(ctx, self, pt.node);
}

void TreeService::drain_stash(Context& ctx, ProcessorId self, NodeId node) {
  auto& ps = procs_[static_cast<std::size_t>(self)];
  std::vector<Message> parked;
  for (auto it = ps.stash.begin(); it != ps.stash.end();) {
    const NodeId target = it->tag == kTagInc ? it->args.at(1) : it->args.at(0);
    if (target == node) {
      parked.push_back(std::move(*it));
      it = ps.stash.erase(it);
      --live_stash_;
    } else {
      ++it;
    }
  }
  for (auto& m : parked) {
    // Re-route: if the freshly committed role retires mid-drain, the
    // remaining messages will be forwarded to its successor.
    route_node_message(ctx, self, node, m);
  }
}

TreeService::JournalEntry* TreeService::find_journal(Role& role,
                                                     ProcessorId origin) {
  auto it = std::lower_bound(
      role.journal.begin(), role.journal.end(), origin,
      [](const JournalEntry& e, ProcessorId o) { return e.origin < o; });
  if (it == role.journal.end() || it->origin != origin) return nullptr;
  return &*it;
}

void TreeService::handle_root_op(Context& ctx, ProcessorId self, Role& role,
                                 const Message& msg) {
  const auto origin = static_cast<ProcessorId>(msg.args.at(0));
  const std::int64_t serial = msg.args.at(2);
  JournalEntry* je = find_journal(role, origin);
  if (je != nullptr && serial <= je->serial) {
    if (serial == je->serial) {
      // A retry of an op we already applied: exactly-once means we
      // answer from the journal, never apply again.
      ++stats_.replayed_replies;
      auto g = std::find_if(role.gated.begin(), role.gated.end(),
                            [&](const GatedReply& gr) {
                              return gr.origin == origin && gr.serial == serial;
                            });
      if (g != role.gated.end()) {
        // Still write-ahead gated: the backup or its ack went missing.
        // Re-ship the backup under a fresh seq so the reply can release
        // even when no reliable transport runs underneath.
        const std::int64_t seq = role.backup_next_seq++;
        g->backup_seq = seq;
        send_backup(ctx, self, role, seq);
      } else {
        Message reply;
        reply.src = self;
        reply.dst = origin;
        reply.tag = kTagValue;
        reply.op = msg.op;
        reply.args = {je->value, serial};
        ctx.send(std::move(reply));
      }
    }
    // serial < je->serial: a stale duplicate the origin completed long
    // ago (it moved on to a later serial); nothing to do.
  } else {
    DCNT_CHECK_MSG(serial == (je == nullptr ? 0 : je->serial + 1),
                   "origin serials must be sequential");
    const std::vector<std::int64_t> op_args(msg.args.begin() + 3,
                                            msg.args.end());
    const Value value = root_apply(role.state, op_args);
    if (je != nullptr) {
      je->serial = serial;
      je->value = value;
    } else {
      JournalEntry e;
      e.origin = origin;
      e.serial = serial;
      e.value = value;
      role.journal.insert(
          std::lower_bound(
              role.journal.begin(), role.journal.end(), origin,
              [](const JournalEntry& a, ProcessorId o) { return a.origin < o; }),
          e);
    }
    const std::int64_t seq = role.backup_next_seq++;
    GatedReply g;
    g.backup_seq = seq;
    g.origin = origin;
    g.serial = serial;
    g.value = value;
    g.op = msg.op;
    role.gated.push_back(g);
    send_backup(ctx, self, role, seq);
  }
  bump_age(ctx, self, role, 2, msg.op);
}

void TreeService::send_backup(Context& ctx, ProcessorId self, Role& role,
                              std::int64_t seq) {
  // Every backup is a full snapshot (state + journal + links): backups
  // may be lost or reordered, and a shadow assembled from partial
  // deltas could pair a new state with an old journal — exactly the
  // double-apply hazard the journal exists to prevent.
  Message m;
  m.src = self;
  m.dst = backup_target_of(role, self);
  m.tag = kTagBackup;
  m.args = {0, seq, static_cast<std::int64_t>(role.journal.size())};
  for (const auto& e : role.journal) {
    m.args.push_back(e.origin);
    m.args.push_back(e.serial);
    m.args.push_back(e.value);
  }
  for (const ProcessorId pid : role.child_pids) m.args.push_back(pid);
  m.args.insert(m.args.end(), role.state.begin(), role.state.end());
  ++stats_.backups_sent;
  ctx.send(std::move(m));
}

ProcessorId TreeService::backup_target_of(const Role& role,
                                          ProcessorId self) const {
  if (role.backup_target != kNoProcessor) return role.backup_target;
  const auto& ps = procs_[static_cast<std::size_t>(self)];
  return next_unsuspected(ps, 0, layout_.successor(0, self));
}

ProcessorId TreeService::believed_incumbent(const ProcState& ps, NodeId node,
                                            ProcessorId self) const {
  if (find_role(ps, node) != nullptr) return self;
  return next_unsuspected(ps, node, layout_.initial_pid(node));
}

ProcessorId TreeService::next_unsuspected(const ProcState& ps, NodeId node,
                                          ProcessorId from) const {
  ProcessorId cur = from;
  for (std::int64_t lap = 0; lap < layout_.pool_size(node); ++lap) {
    if (std::find(ps.suspects.begin(), ps.suspects.end(), cur) ==
        ps.suspects.end()) {
      return cur;
    }
    cur = layout_.successor(node, cur);
  }
  return from;  // the whole pool is suspected: no good choice exists
}

void TreeService::handle_backup(Context& ctx, ProcessorId self,
                                const Message& msg) {
  DCNT_CHECK(self_healing_);
  DCNT_CHECK(msg.args.at(0) == 0);
  const std::int64_t seq = msg.args.at(1);
  auto& ps = procs_[static_cast<std::size_t>(self)];
  if (seq > ps.shadow_seq) {
    std::size_t i = 2;
    const auto jn = static_cast<std::size_t>(msg.args.at(i++));
    ps.shadow_journal.resize(jn);
    for (auto& e : ps.shadow_journal) {
      e.origin = static_cast<ProcessorId>(msg.args.at(i++));
      e.serial = msg.args.at(i++);
      e.value = msg.args.at(i++);
    }
    ps.shadow_children.resize(static_cast<std::size_t>(layout_.k()));
    for (auto& pid : ps.shadow_children) {
      pid = static_cast<ProcessorId>(msg.args.at(i++));
    }
    ps.shadow_state.assign(msg.args.begin() + static_cast<std::ptrdiff_t>(i),
                           msg.args.end());
    ps.shadow_seq = seq;
  }
  // Always ack, stale or not: the primary's gated replies wait on it and
  // an earlier ack may have been lost.
  Message ack;
  ack.src = self;
  ack.dst = msg.src;
  ack.tag = kTagBackupAck;
  ack.op = msg.op;
  ack.args = {0, seq};
  ctx.send(std::move(ack));
}

void TreeService::handle_backup_ack(Context& ctx, ProcessorId self, Role& role,
                                    const Message& msg) {
  const std::int64_t seq = msg.args.at(1);
  // Backups are full snapshots, so an ack for seq covers every earlier
  // seq too: release all gated replies at or below it.
  for (auto it = role.gated.begin(); it != role.gated.end();) {
    if (it->backup_seq <= seq) {
      Message reply;
      reply.src = self;
      reply.dst = it->origin;
      reply.tag = kTagValue;
      reply.op = it->op;
      reply.args = {it->value, it->serial};
      ctx.send(std::move(reply));
      it = role.gated.erase(it);
    } else {
      ++it;
    }
  }
}

void TreeService::handle_promote(Context& ctx, ProcessorId self,
                                 const Message& msg) {
  DCNT_CHECK(self_healing_);
  const NodeId node = msg.args.at(0);
  const auto dead = static_cast<ProcessorId>(msg.args.at(1));
  auto& ps = procs_[static_cast<std::size_t>(self)];
  // Anyone who holds the role, is mid-takeover for it, or has already
  // passed it on knows more than the suspicion does.
  if (find_role(ps, node) != nullptr || find_pending(ps, node) != nullptr ||
      find_forward(ps, node) != nullptr) {
    ++stats_.promotes_ignored;
    return;
  }
  if (std::find(ps.suspects.begin(), ps.suspects.end(), dead) ==
      ps.suspects.end()) {
    ps.suspects.push_back(dead);
  }
  ++stats_.crash_handovers;
  const int k = layout_.k();
  const int level = layout_.level_of(node);
  Role role;
  role.node = node;
  role.age = 0;
  role.child_pids.resize(static_cast<std::size_t>(k));
  if (node == 0) {
    role.parent_pid = kNoProcessor;
    if (ps.shadow_seq >= 0) {
      role.state = std::move(ps.shadow_state);
      role.child_pids = std::move(ps.shadow_children);
      role.journal = std::move(ps.shadow_journal);
      role.backup_next_seq = ps.shadow_seq + 1;
      ps.shadow_seq = -1;
      ps.shadow_state.clear();
      ps.shadow_children.clear();
      ps.shadow_journal.clear();
    } else {
      // The incumbent died before any backup reached us. With f = 1 the
      // promote target is the dead root's backup target, so no released
      // value can predate our shadow — restarting from the initial
      // state loses only applied-but-gated work, which the origins will
      // re-submit.
      role.state = initial_root_state();
      for (int c = 0; c < k; ++c) {
        role.child_pids[static_cast<std::size_t>(c)] =
            layout_.children_are_leaves(0)
                ? layout_.leaf_child(0, c)
                : layout_.initial_pid(layout_.child(0, c));
      }
    }
  } else {
    // Rebuild links from local knowledge plus the static layout: a role
    // we hold ourselves resolves to us, anything else to the first
    // unsuspected member of the node's pool starting from its initial
    // incumbent. Stale-but-alive guesses heal via the ex-incumbents'
    // forwarding chains.
    role.parent_pid = believed_incumbent(ps, layout_.parent(node), self);
    for (int c = 0; c < k; ++c) {
      role.child_pids[static_cast<std::size_t>(c)] =
          layout_.children_are_leaves(node)
              ? layout_.leaf_child(node, c)
              : believed_incumbent(ps, layout_.child(node, c), self);
    }
  }
  ps.roles.push_back(std::move(role));
  Role& fresh = ps.roles.back();
  incumbent_[static_cast<std::size_t>(node)] = self;

  // Announce the succession to the believed neighbours, exactly like a
  // voluntary retirement would have (stale beliefs heal via forwards).
  if (level > 0) {
    Message m;
    m.src = self;
    m.dst = fresh.parent_pid;
    m.tag = kTagNewId;
    m.args = {layout_.parent(node), node, self};
    ctx.send(std::move(m));
  }
  for (int c = 0; c < k; ++c) {
    Message m;
    m.src = self;
    m.dst = fresh.child_pids[static_cast<std::size_t>(c)];
    m.tag = kTagNewId;
    const NodeId child_target = layout_.children_are_leaves(node)
                                    ? kLeafTarget
                                    : layout_.child(node, c);
    m.args = {child_target, node, self};
    ctx.send(std::move(m));
  }
  if (node == 0) {
    // Seed the next shadow right away.
    const std::int64_t seq = fresh.backup_next_seq++;
    send_backup(ctx, self, fresh, seq);
  }
  drain_stash(ctx, self, node);

  // One death can sever several incumbencies at once: processors hold
  // many roles (the initial root also holds node 1, say). If the same
  // suspicion makes US the rightful incumbent of a tree-neighbour we do
  // not hold, promote ourselves right away — traffic we aim at that
  // neighbour would go to our own stash without ever crossing the
  // transport, so no abandonment could trigger the promotion later.
  std::vector<NodeId> neighbours;
  if (level > 0) neighbours.push_back(layout_.parent(node));
  if (!layout_.children_are_leaves(node)) {
    for (int c = 0; c < k; ++c) neighbours.push_back(layout_.child(node, c));
  }
  for (const NodeId nb : neighbours) {
    if (find_role(ps, nb) != nullptr || find_pending(ps, nb) != nullptr ||
        find_forward(ps, nb) != nullptr) {
      continue;
    }
    if (believed_incumbent(ps, nb, self) != self) continue;
    Message m;
    m.src = self;
    m.dst = self;
    m.tag = kTagPromote;
    m.args = {nb, dead};
    handle_promote(ctx, self, m);
  }
}

void TreeService::handle_inc_retry(Context& ctx, ProcessorId self,
                                   const Message& msg) {
  DCNT_CHECK(self_healing_);
  auto& ps = procs_[static_cast<std::size_t>(self)];
  const std::int64_t serial = msg.args.at(0);
  if (ps.out_serial != serial) return;  // answered in the meantime
  ++stats_.timeouts_fired;
  DCNT_CHECK_MSG(ps.out_attempts < inc_retry_limit_,
                 "origin retry limit exhausted; operation lost");
  ++ps.out_attempts;
  ++stats_.retransmissions;
  Message m;
  m.src = self;
  m.dst = ps.leaf_parent_pid;
  m.tag = kTagInc;
  m.op = msg.op;
  m.args = {self, layout_.leaf_parent(self), serial};
  m.args.insert(m.args.end(), ps.out_args.begin(), ps.out_args.end());
  ctx.send(std::move(m));
  ps.out_timeout = std::min(ps.out_timeout * 2, inc_retry_max_timeout_);
  ctx.send_local(self, kTagIncRetry, {serial}, ps.out_timeout);
}

void TreeService::on_peer_unreachable(Context& ctx, ProcessorId self,
                                      ProcessorId peer) {
  if (!self_healing_) return;
  auto& ps = procs_[static_cast<std::size_t>(self)];
  if (std::find(ps.suspects.begin(), ps.suspects.end(), peer) ==
      ps.suspects.end()) {
    ps.suspects.push_back(peer);
  }
  auto suspect_node = [&](NodeId node) {
    // Singleton pools (the level-k nodes) have no spare to promote; a
    // crash there is beyond the f = 1 design point.
    const ProcessorId first = layout_.successor(node, peer);
    if (first == peer) return;
    const ProcessorId target = next_unsuspected(ps, node, first);
    if (target == peer) return;
    Message m;
    m.src = self;
    m.dst = target;
    m.tag = kTagPromote;
    m.args = {node, peer};
    ctx.send(std::move(m));
  };
  // Besides promoting a successor, re-aim our own links past the corpse:
  // the promote is IGNORED when its target already took the role over,
  // so waiting for an announcement is not enough — a stale link would
  // keep sending into the void forever.
  const auto realign = [&](NodeId node, ProcessorId current) -> ProcessorId {
    const ProcessorId first = layout_.successor(node, peer);
    if (first == peer) return current;  // singleton pool: unrecoverable
    return next_unsuspected(ps, node, first);
  };
  if (ps.leaf_parent_pid == peer) {
    const NodeId lp = layout_.leaf_parent(self);
    suspect_node(lp);
    ps.leaf_parent_pid = realign(lp, ps.leaf_parent_pid);
  }
  for (auto& role : ps.roles) {
    const NodeId up = layout_.parent(role.node);
    if (up != kNoNode && role.parent_pid == peer) {
      suspect_node(up);
      role.parent_pid = realign(up, role.parent_pid);
    }
    if (!layout_.children_are_leaves(role.node)) {
      for (int c = 0; c < layout_.k(); ++c) {
        ProcessorId& cp = role.child_pids[static_cast<std::size_t>(c)];
        if (cp == peer) {
          suspect_node(layout_.child(role.node, c));
          cp = realign(layout_.child(role.node, c), cp);
        }
      }
    }
    if (role.node == 0) {
      const ProcessorId prev_target = role.backup_target != kNoProcessor
                                          ? role.backup_target
                                          : layout_.successor(0, self);
      if (prev_target == peer) {
        // Our replica died: re-target past it and re-ship everything so
        // the gated replies can release against the new shadow.
        role.backup_target =
            next_unsuspected(ps, 0, layout_.successor(0, peer));
        const std::int64_t seq = role.backup_next_seq++;
        for (auto& g : role.gated) g.backup_seq = seq;
        send_backup(ctx, self, role, seq);
      }
    }
  }
  for (auto& f : ps.forwards) {
    if (f.second == peer) {
      suspect_node(f.first);
      // Keep the forwarding chain alive past the corpse.
      f.second = next_unsuspected(ps, f.first, layout_.successor(f.first, peer));
    }
  }
}

void TreeService::on_shard_start(std::size_t workers) {
  (void)workers;
  DCNT_CHECK_MSG(!self_healing_,
                 "healing tree is simulator-only (see shard_safe)");
  shard_mode_ = true;
  retirement_log_.clear();
}

void TreeService::check_quiescent(std::size_t ops_completed) const {
  // After a crash handover, state stranded inside dead processors
  // (their stashes, half-assembled takeovers) legitimately never
  // drains; the liveness checks only apply to crash-free executions.
  const bool crashed = self_healing_ && stats_.crash_handovers > 0;
  if (!crashed) {
    DCNT_CHECK_MSG(live_pending_ == 0, "handover still pending at quiescence");
    DCNT_CHECK_MSG(live_stash_ == 0, "stashed messages at quiescence");
  }
  DCNT_CHECK_MSG(incumbent_[0] != kNoProcessor, "root in flight");
  check_root_state(ops_completed, root_state());
}

const std::vector<std::int64_t>& TreeService::root_state() const {
  const ProcessorId pid = incumbent_[0];
  DCNT_CHECK_MSG(pid != kNoProcessor, "root handover in flight");
  const Role* role = find_role(procs_[static_cast<std::size_t>(pid)], 0);
  DCNT_CHECK(role != nullptr);
  return role->state;
}

ProcessorId TreeService::incumbent(NodeId node) const {
  DCNT_CHECK(node >= 0 && node < layout_.num_inner());
  return incumbent_[static_cast<std::size_t>(node)];
}

void TreeService::deep_check() const {
  for (const auto& ps : procs_) {
    DCNT_CHECK(ps.pending.empty());
    DCNT_CHECK(ps.stash.empty());
  }
  for (NodeId node = 0; node < layout_.num_inner(); ++node) {
    const ProcessorId pid = incumbent_[static_cast<std::size_t>(node)];
    DCNT_CHECK(pid != kNoProcessor);
    const Role* role = find_role(procs_[static_cast<std::size_t>(pid)], node);
    DCNT_CHECK(role != nullptr);
    const NodeId up = layout_.parent(node);
    if (up == kNoNode) {
      DCNT_CHECK(role->parent_pid == kNoProcessor);
    } else {
      DCNT_CHECK(role->parent_pid == incumbent_[static_cast<std::size_t>(up)]);
    }
    for (int c = 0; c < layout_.k(); ++c) {
      const ProcessorId believed =
          role->child_pids[static_cast<std::size_t>(c)];
      if (layout_.children_are_leaves(node)) {
        DCNT_CHECK(believed == layout_.leaf_child(node, c));
      } else {
        const NodeId child = layout_.child(node, c);
        DCNT_CHECK(believed == incumbent_[static_cast<std::size_t>(child)]);
      }
    }
  }
  for (ProcessorId p = 0; p < layout_.n(); ++p) {
    const NodeId up = layout_.leaf_parent(p);
    DCNT_CHECK(procs_[static_cast<std::size_t>(p)].leaf_parent_pid ==
               incumbent_[static_cast<std::size_t>(up)]);
  }
}

}  // namespace dcnt
