#include "core/tree_service.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "support/check.hpp"

namespace dcnt {

namespace {
constexpr NodeId kLeafTarget = -1;  // kTagNewId addressed to a leaf
}

TreeService::TreeService(TreeServiceParams params)
    : layout_(params.k),
      threshold_(params.age_threshold == 0
                     ? 4 * static_cast<std::int64_t>(params.k)
                     : params.age_threshold),
      count_handover_in_age_(params.count_handover_in_age) {
  DCNT_CHECK(threshold_ > 0);
  const std::int64_t n = layout_.n();
  procs_.resize(static_cast<std::size_t>(n));
  incumbent_.assign(static_cast<std::size_t>(layout_.num_inner()),
                    kNoProcessor);
  stats_.retirements_by_level.assign(static_cast<std::size_t>(layout_.k()) + 1,
                                     0);

  for (ProcessorId p = 0; p < n; ++p) {
    procs_[static_cast<std::size_t>(p)].leaf_parent_pid =
        layout_.initial_pid(layout_.leaf_parent(p));
  }
  for (NodeId node = 0; node < layout_.num_inner(); ++node) {
    const ProcessorId pid = layout_.initial_pid(node);
    Role role;
    role.node = node;
    const NodeId up = layout_.parent(node);
    role.parent_pid = up == kNoNode ? kNoProcessor : layout_.initial_pid(up);
    role.child_pids.resize(static_cast<std::size_t>(layout_.k()));
    for (int c = 0; c < layout_.k(); ++c) {
      role.child_pids[static_cast<std::size_t>(c)] =
          layout_.children_are_leaves(node)
              ? layout_.leaf_child(node, c)
              : layout_.initial_pid(layout_.child(node, c));
    }
    procs_[static_cast<std::size_t>(pid)].roles.push_back(std::move(role));
    incumbent_[static_cast<std::size_t>(node)] = pid;
  }
}

void TreeService::finish_init() {
  DCNT_CHECK(!initialized_);
  ProcState& root_ps = procs_[static_cast<std::size_t>(incumbent_[0])];
  Role* root = find_role(root_ps, 0);
  DCNT_CHECK(root != nullptr);
  root->state = initial_root_state();
  initialized_ = true;
}

std::size_t TreeService::num_processors() const {
  return static_cast<std::size_t>(layout_.n());
}

TreeService::Role* TreeService::find_role(ProcState& ps, NodeId node) {
  for (auto& r : ps.roles) {
    if (r.node == node) return &r;
  }
  return nullptr;
}

const TreeService::Role* TreeService::find_role(const ProcState& ps,
                                                NodeId node) const {
  for (const auto& r : ps.roles) {
    if (r.node == node) return &r;
  }
  return nullptr;
}

TreeService::PendingTakeover* TreeService::find_pending(ProcState& ps,
                                                        NodeId node) {
  for (auto& pt : ps.pending) {
    if (pt.node == node) return &pt;
  }
  return nullptr;
}

ProcessorId* TreeService::find_forward(ProcState& ps, NodeId node) {
  for (auto& f : ps.forwards) {
    if (f.first == node) return &f.second;
  }
  return nullptr;
}

void TreeService::start_inc(Context& ctx, ProcessorId origin, OpId op) {
  start_op(ctx, origin, op, {});
}

void TreeService::start_op(Context& ctx, ProcessorId origin, OpId /*op*/,
                           const std::vector<std::int64_t>& args) {
  DCNT_CHECK_MSG(initialized_,
                 "subclass constructor must call finish_init()");
  auto& ps = procs_[static_cast<std::size_t>(origin)];
  Message m;
  m.src = origin;
  m.dst = ps.leaf_parent_pid;
  m.tag = kTagInc;
  m.args = {origin, layout_.leaf_parent(origin)};
  m.args.insert(m.args.end(), args.begin(), args.end());
  ctx.send(std::move(m));
}

void TreeService::on_message(Context& ctx, const Message& msg) {
  const ProcessorId self = msg.dst;
  auto& ps = procs_[static_cast<std::size_t>(self)];
  switch (msg.tag) {
    case kTagValue:
      ctx.complete(msg.op, msg.args.at(0));
      return;

    case kTagInc:
      route_node_message(ctx, self, msg.args.at(1), msg);
      return;

    case kTagNewId: {
      const NodeId target = msg.args.at(0);
      if (target == kLeafTarget) {
        // This processor, in its leaf capacity, learns its parent node's
        // new incumbent.
        DCNT_CHECK(layout_.leaf_parent(self) == msg.args.at(1));
        ps.leaf_parent_pid = static_cast<ProcessorId>(msg.args.at(2));
        return;
      }
      route_node_message(ctx, self, target, msg);
      return;
    }

    case kTagTakeOver:
    case kTagChildInfo: {
      const NodeId node = msg.args.at(0);
      PendingTakeover* pt = find_pending(ps, node);
      if (pt == nullptr) {
        PendingTakeover fresh;
        fresh.node = node;
        fresh.child_pids.assign(static_cast<std::size_t>(layout_.k()),
                                kNoProcessor);
        ps.pending.push_back(std::move(fresh));
        ++live_pending_;
        pt = &ps.pending.back();
      }
      if (msg.tag == kTagTakeOver) {
        DCNT_CHECK(!pt->has_main);
        pt->has_main = true;
        pt->parent_pid = static_cast<ProcessorId>(msg.args.at(1));
        pt->state.assign(msg.args.begin() + 2, msg.args.end());
      } else {
        const auto idx = static_cast<std::size_t>(msg.args.at(1));
        DCNT_CHECK(pt->child_pids.at(idx) == kNoProcessor);
        pt->child_pids[idx] = static_cast<ProcessorId>(msg.args.at(2));
        ++pt->children_received;
      }
      if (pt->has_main && pt->children_received == layout_.k()) {
        const PendingTakeover done = *pt;
        ps.pending.erase(ps.pending.begin() + (pt - ps.pending.data()));
        --live_pending_;
        commit_takeover(ctx, self, done);
      }
      return;
    }

    default:
      DCNT_CHECK_MSG(false, "unknown message tag");
  }
}

void TreeService::route_node_message(Context& ctx, ProcessorId self,
                                     NodeId target, const Message& msg) {
  auto& ps = procs_[static_cast<std::size_t>(self)];
  if (Role* role = find_role(ps, target)) {
    handle_role_message(ctx, self, *role, msg);
    return;
  }
  if (find_pending(ps, target) != nullptr) {
    ps.stash.push_back(msg);
    ++live_stash_;
    return;
  }
  if (ProcessorId* succ = find_forward(ps, target)) {
    // We retired from this role; pass the message along to the successor
    // (the "constant number of extra messages" handshake of the paper).
    Message fwd = msg;
    fwd.src = self;
    fwd.dst = *succ;
    ++stats_.forwarded_messages;
    ctx.send(std::move(fwd));
    return;
  }
  // We are about to become this node's incumbent but the handover has
  // not fully arrived yet; park the message until it does.
  ps.stash.push_back(msg);
  ++live_stash_;
  ++stats_.orphan_stashes;
}

void TreeService::handle_role_message(Context& ctx, ProcessorId self,
                                      Role& role, const Message& msg) {
  if (msg.tag == kTagInc) {
    const auto origin = static_cast<ProcessorId>(msg.args.at(0));
    if (role.node == 0) {
      const std::vector<std::int64_t> op_args(msg.args.begin() + 2,
                                              msg.args.end());
      const Value reply_value = root_apply(role.state, op_args);
      Message reply;
      reply.src = self;
      reply.dst = origin;
      reply.tag = kTagValue;
      // Carry the op explicitly: when a stashed inc is drained during a
      // handover commit, the ambient op is the handover's, not the
      // inc's.
      reply.op = msg.op;
      reply.args = {reply_value};
      ctx.send(std::move(reply));
    } else {
      Message up = msg;  // preserves op and op_args
      up.src = self;
      up.dst = role.parent_pid;
      up.args[1] = layout_.parent(role.node);
      ctx.send(std::move(up));
    }
    bump_age(ctx, self, role, 2, msg.op);
    return;
  }
  DCNT_CHECK(msg.tag == kTagNewId);
  const NodeId retiring = msg.args.at(1);
  const auto new_pid = static_cast<ProcessorId>(msg.args.at(2));
  if (layout_.parent(role.node) == retiring) {
    role.parent_pid = new_pid;
  } else {
    DCNT_CHECK_MSG(!layout_.children_are_leaves(role.node),
                   "leaves never retire");
    bool found = false;
    for (int c = 0; c < layout_.k(); ++c) {
      if (layout_.child(role.node, c) == retiring) {
        role.child_pids[static_cast<std::size_t>(c)] = new_pid;
        found = true;
        break;
      }
    }
    DCNT_CHECK_MSG(found, "kTagNewId from a non-neighbour");
  }
  bump_age(ctx, self, role, 1, msg.op);
}

void TreeService::bump_age(Context& ctx, ProcessorId self, Role& role,
                           std::int64_t amount, OpId op) {
  role.age += amount;
  if (role.age >= threshold_) {
    // Copy: retire() erases the role from the vector we point into.
    const Role copy = role;
    retire(ctx, self, copy, op);
  }
}

void TreeService::retire(Context& ctx, ProcessorId self, const Role& role,
                         OpId op) {
  auto& ps = procs_[static_cast<std::size_t>(self)];
  const NodeId node = role.node;
  const int level = layout_.level_of(node);
  const int k = layout_.k();
  const ProcessorId succ = layout_.successor(node, self);

  RetirementEvent ev;
  ev.op = op;
  ev.node = node;
  ev.level = level;
  ev.old_pid = self;
  ev.new_pid = succ;
  retirement_log_.push_back(ev);
  ++stats_.retirements_total;
  ++stats_.retirements_by_level[static_cast<std::size_t>(level)];

  if (succ == self) {
    // Degenerate pool of size 1 (level-k nodes under aggressive
    // thresholds): "retire" to ourselves — just reset the age.
    ++stats_.self_handovers;
    Role* live = find_role(ps, node);
    DCNT_CHECK(live != nullptr);
    live->age = count_handover_in_age_ ? k + 1 : 0;
    return;
  }
  if (succ == layout_.pool_begin(node)) ++stats_.pool_wraps;

  // Drop the role, remember where it went. (`role` is the caller's copy,
  // not an element of ps.roles, so it survives the erase.)
  ps.roles.erase(
      std::find_if(ps.roles.begin(), ps.roles.end(),
                   [node](const Role& r) { return r.node == node; }));
  if (ProcessorId* fwd = find_forward(ps, node)) {
    *fwd = succ;
  } else {
    ps.forwards.emplace_back(node, succ);
  }
  incumbent_[static_cast<std::size_t>(node)] = kNoProcessor;

  // k+1 handover messages to the successor. For the paper's counter the
  // root ships one value and every message stays O(log n) bits; richer
  // root state (the priority queue) shows up in max_handover_words.
  {
    Message m;
    m.src = self;
    m.dst = succ;
    m.tag = kTagTakeOver;
    m.args = {node, role.parent_pid};
    m.args.insert(m.args.end(), role.state.begin(), role.state.end());
    stats_.max_handover_words =
        std::max(stats_.max_handover_words,
                 static_cast<std::int64_t>(m.size_words()));
    ctx.send(std::move(m));
  }
  for (int c = 0; c < k; ++c) {
    Message m;
    m.src = self;
    m.dst = succ;
    m.tag = kTagChildInfo;
    m.args = {node, c, role.child_pids[static_cast<std::size_t>(c)]};
    ctx.send(std::move(m));
  }
  // New-id notifications: parent (unless root — the paper's root "saves
  // the message that would inform the parent") and all children.
  if (level > 0) {
    Message m;
    m.src = self;
    m.dst = role.parent_pid;
    m.tag = kTagNewId;
    m.args = {layout_.parent(node), node, succ};
    ctx.send(std::move(m));
  }
  for (int c = 0; c < k; ++c) {
    Message m;
    m.src = self;
    m.dst = role.child_pids[static_cast<std::size_t>(c)];
    m.tag = kTagNewId;
    const NodeId child_target = layout_.children_are_leaves(node)
                                    ? kLeafTarget
                                    : layout_.child(node, c);
    m.args = {child_target, node, succ};
    ctx.send(std::move(m));
  }
}

void TreeService::commit_takeover(Context& ctx, ProcessorId self,
                                  const PendingTakeover& pt) {
  auto& ps = procs_[static_cast<std::size_t>(self)];
  DCNT_CHECK_MSG(find_role(ps, pt.node) == nullptr,
                 "takeover for a role we already hold");
  Role role;
  role.node = pt.node;
  role.parent_pid = pt.parent_pid;
  role.child_pids = pt.child_pids;
  role.state = pt.state;
  role.age = count_handover_in_age_ ? layout_.k() + 1 : 0;
  // If we once held this role (pool wrap-around), we are no longer a
  // forwarder for it.
  auto fwd = std::find_if(ps.forwards.begin(), ps.forwards.end(),
                          [&](const auto& f) { return f.first == pt.node; });
  if (fwd != ps.forwards.end()) ps.forwards.erase(fwd);
  ps.roles.push_back(std::move(role));
  incumbent_[static_cast<std::size_t>(pt.node)] = self;

  // Drain messages that arrived for this role during the handover.
  std::vector<Message> parked;
  for (auto it = ps.stash.begin(); it != ps.stash.end();) {
    const NodeId target = it->tag == kTagInc ? it->args.at(1) : it->args.at(0);
    if (target == pt.node) {
      parked.push_back(std::move(*it));
      it = ps.stash.erase(it);
      --live_stash_;
    } else {
      ++it;
    }
  }
  for (auto& m : parked) {
    // Re-route: if the freshly committed role retires mid-drain, the
    // remaining messages will be forwarded to its successor.
    route_node_message(ctx, self, pt.node, m);
  }
}

void TreeService::check_quiescent(std::size_t ops_completed) const {
  DCNT_CHECK_MSG(live_pending_ == 0, "handover still pending at quiescence");
  DCNT_CHECK_MSG(live_stash_ == 0, "stashed messages at quiescence");
  DCNT_CHECK_MSG(incumbent_[0] != kNoProcessor, "root in flight");
  check_root_state(ops_completed, root_state());
}

const std::vector<std::int64_t>& TreeService::root_state() const {
  const ProcessorId pid = incumbent_[0];
  DCNT_CHECK_MSG(pid != kNoProcessor, "root handover in flight");
  const Role* role = find_role(procs_[static_cast<std::size_t>(pid)], 0);
  DCNT_CHECK(role != nullptr);
  return role->state;
}

ProcessorId TreeService::incumbent(NodeId node) const {
  DCNT_CHECK(node >= 0 && node < layout_.num_inner());
  return incumbent_[static_cast<std::size_t>(node)];
}

void TreeService::deep_check() const {
  for (const auto& ps : procs_) {
    DCNT_CHECK(ps.pending.empty());
    DCNT_CHECK(ps.stash.empty());
  }
  for (NodeId node = 0; node < layout_.num_inner(); ++node) {
    const ProcessorId pid = incumbent_[static_cast<std::size_t>(node)];
    DCNT_CHECK(pid != kNoProcessor);
    const Role* role = find_role(procs_[static_cast<std::size_t>(pid)], node);
    DCNT_CHECK(role != nullptr);
    const NodeId up = layout_.parent(node);
    if (up == kNoNode) {
      DCNT_CHECK(role->parent_pid == kNoProcessor);
    } else {
      DCNT_CHECK(role->parent_pid == incumbent_[static_cast<std::size_t>(up)]);
    }
    for (int c = 0; c < layout_.k(); ++c) {
      const ProcessorId believed =
          role->child_pids[static_cast<std::size_t>(c)];
      if (layout_.children_are_leaves(node)) {
        DCNT_CHECK(believed == layout_.leaf_child(node, c));
      } else {
        const NodeId child = layout_.child(node, c);
        DCNT_CHECK(believed == incumbent_[static_cast<std::size_t>(child)]);
      }
    }
  }
  for (ProcessorId p = 0; p < layout_.n(); ++p) {
    const NodeId up = layout_.leaf_parent(p);
    DCNT_CHECK(procs_[static_cast<std::size_t>(p)].leaf_parent_pid ==
               incumbent_[static_cast<std::size_t>(up)]);
  }
}

}  // namespace dcnt
