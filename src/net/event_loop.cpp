#include "net/event_loop.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "support/check.hpp"

namespace dcnt::net {

namespace {

// Normalized readiness bits, backend-independent.
constexpr std::uint32_t kReadable = 1u;
constexpr std::uint32_t kWritable = 2u;
constexpr std::uint32_t kBroken = 4u;  ///< HUP/ERR — read path surfaces it

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DCNT_CHECK(flags >= 0);
  DCNT_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace

Backend default_backend() {
  if (const char* env = std::getenv("DCNT_NET_BACKEND")) {
    if (env[0] != '\0') return backend_from_string(env);
  }
#ifdef __linux__
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

Backend backend_from_string(const std::string& name) {
  if (name.empty()) return default_backend();
  if (name == "poll") return Backend::kPoll;
  if (name == "epoll") return Backend::kEpoll;
  DCNT_CHECK_MSG(false, "unknown event-loop backend (poll|epoll)");
  return Backend::kPoll;
}

const char* backend_name(Backend backend) {
  return backend == Backend::kEpoll ? "epoll" : "poll";
}

EventLoop::EventLoop(Backend backend) : backend_(backend) {
#ifndef __linux__
  // epoll is Linux-only; degrade silently so a Backend::kEpoll request
  // from shared config still runs (parity tests pin poll explicitly).
  backend_ = Backend::kPoll;
#endif
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    DCNT_CHECK(epoll_fd_ >= 0);
  }
  // eventfd: one fd serves both ends of the wakeup channel.
  wake_read_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  DCNT_CHECK(wake_read_ >= 0);
  wake_write_ = wake_read_;
#else
  int pipe_fds[2];
  DCNT_CHECK(::pipe(pipe_fds) == 0);
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  make_nonblocking(wake_read_);
  make_nonblocking(wake_write_);
#endif
  backend_add(wake_read_, kTagWakeup, false);
}

EventLoop::~EventLoop() {
  if (wake_write_ >= 0 && wake_write_ != wake_read_) ::close(wake_write_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

// --- backend plumbing -------------------------------------------------------

void EventLoop::backend_add(int fd, int tag, bool want_out) {
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
    ev.data.u64 = static_cast<std::uint64_t>(static_cast<std::int64_t>(tag));
    DCNT_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0);
    return;
  }
#endif
  (void)fd;
  (void)tag;
  (void)want_out;  // poll: the interest set is rebuilt per round
}

void EventLoop::backend_mod(int fd, int tag, bool want_out) {
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
    ev.data.u64 = static_cast<std::uint64_t>(static_cast<std::int64_t>(tag));
    DCNT_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0);
    return;
  }
#endif
  (void)fd;
  (void)tag;
  (void)want_out;
}

void EventLoop::backend_del(int fd) {
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    // Ignore failure: the fd may already be gone (closed by the kernel
    // after an error) — deregistration is then implicit.
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  (void)fd;
}

bool EventLoop::backend_wait(int timeout_ms) {
  ready_tags_.clear();
  ready_events_.clear();
#ifdef __linux__
  if (backend_ == Backend::kEpoll) {
    epoll_event events[64];
    int rc;
    do {
      rc = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    DCNT_CHECK(rc >= 0);
    for (int i = 0; i < rc; ++i) {
      std::uint32_t mask = 0;
      if (events[i].events & EPOLLIN) mask |= kReadable;
      if (events[i].events & EPOLLOUT) mask |= kWritable;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) mask |= kBroken;
      ready_tags_.push_back(
          static_cast<int>(static_cast<std::int64_t>(events[i].data.u64)));
      ready_events_.push_back(mask);
    }
    return rc > 0;
  }
#endif
  // poll: rebuild the fd array each round. Scratch vectors keep their
  // capacity, so steady state allocates nothing.
  static thread_local std::vector<pollfd> fds;
  fds.clear();
  poll_tag_of_.clear();
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    Connection& c = *connections_[i];
    if (!c.open) continue;
    pollfd pfd{};
    pfd.fd = c.sock.fd();
    pfd.events = POLLIN;
    if (c.out_head < c.outbound.size()) pfd.events |= POLLOUT;
    fds.push_back(pfd);
    poll_tag_of_.push_back(static_cast<int>(i));
  }
  if (listener_.valid()) {
    fds.push_back({listener_.fd(), POLLIN, 0});
    poll_tag_of_.push_back(kTagListener);
  }
  if (udp_.valid()) {
    fds.push_back({udp_.fd(), POLLIN, 0});
    poll_tag_of_.push_back(kTagUdp);
  }
  fds.push_back({wake_read_, POLLIN, 0});
  poll_tag_of_.push_back(kTagWakeup);

  int rc;
  do {
    rc = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  DCNT_CHECK(rc >= 0);
  if (rc == 0) return false;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    std::uint32_t mask = 0;
    if (fds[i].revents & POLLIN) mask |= kReadable;
    if (fds[i].revents & POLLOUT) mask |= kWritable;
    if (fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) mask |= kBroken;
    ready_tags_.push_back(poll_tag_of_[i]);
    ready_events_.push_back(mask);
  }
  return true;
}

void EventLoop::notify() {
  const std::uint64_t one = 1;
  for (;;) {
    const ssize_t n = ::write(wake_write_, &one, sizeof(one));
    if (n >= 0) return;
    if (errno == EINTR) continue;
    // EAGAIN: the counter/pipe is already saturated with wakes — the
    // loop is guaranteed to wake, which is all a notify promises.
    return;
  }
}

void EventLoop::drain_wakeup() {
  std::uint8_t buf[64];
  for (;;) {
    const ssize_t n = ::read(wake_read_, buf, sizeof(buf));
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    return;  // EAGAIN: drained
  }
}

// --- registration -----------------------------------------------------------

int EventLoop::add_connection(Socket sock, FrameFn on_frame, CloseFn on_close,
                              std::vector<std::uint8_t> residual) {
  DCNT_CHECK(sock.valid());
  auto conn = std::make_unique<Connection>();
  conn->sock = std::move(sock);
  conn->on_frame = std::move(on_frame);
  conn->on_close = std::move(on_close);
  conn->open = true;
  if (!residual.empty()) {
    conn->reader.feed(residual.data(), residual.size());
    bytes_received_ += static_cast<std::int64_t>(residual.size());
  }
  connections_.push_back(std::move(conn));
  const int id = static_cast<int>(connections_.size()) - 1;
  backend_add(connections_.back()->sock.fd(), id, false);
  // Frames completed by the residual were already consumed from the
  // kernel — readiness will never re-announce them, so deliver now.
  deliver_frames(id);
  return id;
}

void EventLoop::add_listener(Socket sock, AcceptFn on_accept) {
  DCNT_CHECK(sock.valid());
  DCNT_CHECK_MSG(!listener_.valid(), "one listener per loop");
  listener_ = std::move(sock);
  on_accept_ = std::move(on_accept);
  backend_add(listener_.fd(), kTagListener, false);
}

void EventLoop::add_udp(Socket sock, DatagramFn on_datagram) {
  DCNT_CHECK(sock.valid());
  DCNT_CHECK_MSG(!udp_.valid(), "one UDP socket per loop");
  udp_ = std::move(sock);
  on_datagram_ = std::move(on_datagram);
  backend_add(udp_.fd(), kTagUdp, false);
}

DetachedConn EventLoop::detach_connection(int conn) {
  DCNT_CHECK_MSG(connected(conn), "detach of a closed connection");
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  DCNT_CHECK_MSG(c.out_head >= c.outbound.size(),
                 "detach with unflushed outbound bytes");
  backend_del(c.sock.fd());
  c.open = false;
  c.outbound.clear();
  c.out_head = 0;
  DetachedConn out;
  out.residual = c.reader.take_buffered();
  // The residual was counted into bytes_received_ when read here; the
  // adopting loop will count it again on feed. Undo so per-loop sums
  // stay exact.
  bytes_received_ -= static_cast<std::int64_t>(out.residual.size());
  out.sock = std::move(c.sock);
  return out;
}

bool EventLoop::connected(int conn) const {
  return conn >= 0 && static_cast<std::size_t>(conn) < connections_.size() &&
         connections_[static_cast<std::size_t>(conn)]->open;
}

bool EventLoop::backlog() const {
  for (const auto& c : connections_) {
    if (c->open && c->out_head < c->outbound.size()) return true;
  }
  return false;
}

std::size_t EventLoop::open_connections() const {
  std::size_t n = 0;
  for (const auto& c : connections_) {
    if (c->open) ++n;
  }
  return n;
}

// --- send path --------------------------------------------------------------

void EventLoop::send(int conn, const std::vector<std::uint8_t>& frame) {
  DCNT_CHECK_MSG(connected(conn), "send on a closed connection");
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  c.outbound.insert(c.outbound.end(), frame.begin(), frame.end());
  ++frames_sent_;
  bytes_sent_ += static_cast<std::int64_t>(frame.size());
}

void EventLoop::send(int conn, std::vector<std::uint8_t>&& frame) {
  DCNT_CHECK_MSG(connected(conn), "send on a closed connection");
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  ++frames_sent_;
  bytes_sent_ += static_cast<std::int64_t>(frame.size());
  if (c.outbound.empty()) {
    // Adopt the buffer; the caller's (now cleared) vector inherits
    // whatever capacity the queue had.
    std::swap(c.outbound, frame);
    frame.clear();
    return;
  }
  c.outbound.insert(c.outbound.end(), frame.begin(), frame.end());
}

std::size_t EventLoop::send_message(int conn, const Message& msg) {
  DCNT_CHECK_MSG(connected(conn), "send on a closed connection");
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  const std::size_t n = append_message(c.outbound, msg);
  ++frames_sent_;
  bytes_sent_ += static_cast<std::int64_t>(n);
  return n;
}

std::size_t EventLoop::send_keyed_message(int conn, const Message& msg) {
  DCNT_CHECK_MSG(connected(conn), "send on a closed connection");
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  const std::size_t n = append_keyed_message(c.outbound, msg);
  ++frames_sent_;
  bytes_sent_ += static_cast<std::int64_t>(n);
  return n;
}

bool EventLoop::send_datagram(std::uint16_t port,
                              const std::vector<std::uint8_t>& frame) {
  DCNT_CHECK_MSG(udp_.valid(), "no UDP socket registered");
  const bool ok = udp_send(udp_, port, frame.data(), frame.size());
  ++write_syscalls_;
  if (ok) ++datagrams_sent_;
  return ok;
}

std::size_t EventLoop::send_datagram_message(std::uint16_t port,
                                             const Message& msg) {
  dgram_scratch_.clear();
  const std::size_t n = append_message(dgram_scratch_, msg);
  return send_datagram(port, dgram_scratch_) ? n : 0;
}

std::size_t EventLoop::send_datagram_keyed_message(std::uint16_t port,
                                                   const Message& msg) {
  dgram_scratch_.clear();
  const std::size_t n = append_keyed_message(dgram_scratch_, msg);
  return send_datagram(port, dgram_scratch_) ? n : 0;
}

void EventLoop::flush(Connection& c, int conn) {
  while (c.out_head < c.outbound.size()) {
    ssize_t n;
    do {
      n = ::send(c.sock.fd(), c.outbound.data() + c.out_head,
                 c.outbound.size() - c.out_head, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n > 0) {
      ++write_syscalls_;
      c.out_head += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel pushback: arm write-readiness for the residue (epoll
      // keeps it armed in the kernel; poll re-arms per round anyway).
      if (!c.want_out) {
        c.want_out = true;
        backend_mod(c.sock.fd(), conn, true);
      }
      return;
    }
    // EPIPE/ECONNRESET: the peer is gone; the next reactor round
    // surfaces it as a close event. Drop the backlog so we stop
    // retrying.
    c.outbound.clear();
    c.out_head = 0;
    break;
  }
  c.outbound.clear();
  c.out_head = 0;
  if (c.want_out) {
    c.want_out = false;
    backend_mod(c.sock.fd(), conn, false);
  }
}

void EventLoop::flush_all() {
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    Connection& c = *connections_[i];
    if (c.open && c.out_head < c.outbound.size()) {
      flush(c, static_cast<int>(i));
    }
  }
}

// --- receive path -----------------------------------------------------------

std::size_t EventLoop::deliver_frames(int conn) {
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  std::size_t delivered = 0;
  std::vector<std::uint8_t> payload;
  // A callback may close or detach the connection mid-batch; re-check.
  while (c.open && c.reader.pop(payload)) {
    ++frames_received_;
    ++delivered;
    c.on_frame(conn, FrameView(payload.data(), payload.size()));
  }
  return delivered;
}

std::size_t EventLoop::read_ready(int conn) {
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  std::uint8_t buf[64 * 1024];
  bool closed = false;
  for (;;) {
    const ssize_t n = ::recv(c.sock.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_received_ += n;
      c.reader.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // n == 0 (orderly EOF) or a hard error. ECONNRESET deserves the
    // same treatment as EOF: on localhost it means the peer exited with
    // bytes still in our send queue — shutdown order, not data loss,
    // because the quiescence barrier certified emptiness first. Either
    // way: deliver what is already buffered, then run the close path.
    closed = true;
    break;
  }
  std::size_t delivered = deliver_frames(conn);
  if (closed) close_connection(conn);
  return delivered;
}

void EventLoop::close_connection(int conn) {
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  if (!c.open) return;
  c.open = false;
  backend_del(c.sock.fd());
  if (c.on_close) c.on_close(conn);
  c.sock.close();
}

void EventLoop::accept_pending() {
  for (;;) {
    Socket accepted = tcp_accept(listener_);
    if (!accepted.valid()) break;
    on_accept_(std::move(accepted));
  }
}

std::size_t EventLoop::drain_udp() {
  std::uint8_t buf[64 * 1024];
  std::size_t delivered = 0;
  int n;
  while ((n = udp_recv(udp_, buf, sizeof(buf))) >= 0) {
    // One frame per datagram: strip the length word, hand over the
    // payload. A datagram truncated by the kernel would fail the
    // FrameView checks; buffers are sized to prevent that.
    if (n < 6) continue;  // runt datagram: treat as line noise
    ++datagrams_received_;
    FrameReader one;
    one.feed(buf, static_cast<std::size_t>(n));
    std::vector<std::uint8_t> payload;
    while (one.pop(payload)) {
      ++delivered;
      on_datagram_(FrameView(payload.data(), payload.size()));
    }
  }
  return delivered;
}

std::size_t EventLoop::run_once(int timeout_ms) {
  // Everything queued since the last round leaves now, coalesced into
  // one write() per peer (modulo kernel pushback, which arms
  // write-readiness for the residue).
  flush_all();
  if (!backend_wait(timeout_ms)) return 0;

  std::size_t delivered = 0;
  for (std::size_t i = 0; i < ready_tags_.size(); ++i) {
    const int tag = ready_tags_[i];
    const std::uint32_t mask = ready_events_[i];
    if (tag == kTagWakeup) {
      drain_wakeup();
      continue;
    }
    if (tag == kTagListener) {
      accept_pending();
      continue;
    }
    if (tag == kTagUdp) {
      delivered += drain_udp();
      continue;
    }
    Connection& c = *connections_[static_cast<std::size_t>(tag)];
    if (!c.open) continue;
    if (mask & kWritable) flush(c, tag);
    if (mask & (kReadable | kBroken)) delivered += read_ready(tag);
  }
  // Frames the callbacks queued this round (acks, forwards, replies)
  // leave before the caller decides whether to sleep.
  flush_all();
  return delivered;
}

}  // namespace dcnt::net
