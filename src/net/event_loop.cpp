#include "net/event_loop.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "support/check.hpp"

namespace dcnt::net {

int EventLoop::add_connection(Socket sock, FrameFn on_frame, CloseFn on_close) {
  DCNT_CHECK(sock.valid());
  auto conn = std::make_unique<Connection>();
  conn->sock = std::move(sock);
  conn->on_frame = std::move(on_frame);
  conn->on_close = std::move(on_close);
  conn->open = true;
  connections_.push_back(std::move(conn));
  return static_cast<int>(connections_.size()) - 1;
}

void EventLoop::add_listener(Socket sock, AcceptFn on_accept) {
  DCNT_CHECK(sock.valid());
  DCNT_CHECK_MSG(!listener_.valid(), "one listener per loop");
  listener_ = std::move(sock);
  on_accept_ = std::move(on_accept);
}

void EventLoop::add_udp(Socket sock, DatagramFn on_datagram) {
  DCNT_CHECK(sock.valid());
  DCNT_CHECK_MSG(!udp_.valid(), "one UDP socket per loop");
  udp_ = std::move(sock);
  on_datagram_ = std::move(on_datagram);
}

bool EventLoop::connected(int conn) const {
  return conn >= 0 && static_cast<std::size_t>(conn) < connections_.size() &&
         connections_[static_cast<std::size_t>(conn)]->open;
}

bool EventLoop::backlog() const {
  for (const auto& c : connections_) {
    if (c->open && c->out_head < c->outbound.size()) return true;
  }
  return false;
}

std::size_t EventLoop::open_connections() const {
  std::size_t n = 0;
  for (const auto& c : connections_) {
    if (c->open) ++n;
  }
  return n;
}

void EventLoop::send(int conn, const std::vector<std::uint8_t>& frame) {
  DCNT_CHECK_MSG(connected(conn), "send on a closed connection");
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  c.outbound.insert(c.outbound.end(), frame.begin(), frame.end());
  ++frames_sent_;
  bytes_sent_ += static_cast<std::int64_t>(frame.size());
}

void EventLoop::send(int conn, std::vector<std::uint8_t>&& frame) {
  DCNT_CHECK_MSG(connected(conn), "send on a closed connection");
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  ++frames_sent_;
  bytes_sent_ += static_cast<std::int64_t>(frame.size());
  if (c.outbound.empty()) {
    // Adopt the buffer; the caller's (now cleared) vector inherits
    // whatever capacity the queue had.
    std::swap(c.outbound, frame);
    frame.clear();
    return;
  }
  c.outbound.insert(c.outbound.end(), frame.begin(), frame.end());
}

std::size_t EventLoop::send_message(int conn, const Message& msg) {
  DCNT_CHECK_MSG(connected(conn), "send on a closed connection");
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  const std::size_t n = append_message(c.outbound, msg);
  ++frames_sent_;
  bytes_sent_ += static_cast<std::int64_t>(n);
  return n;
}

bool EventLoop::send_datagram(std::uint16_t port,
                              const std::vector<std::uint8_t>& frame) {
  DCNT_CHECK_MSG(udp_.valid(), "no UDP socket registered");
  const bool ok = udp_send(udp_, port, frame.data(), frame.size());
  ++write_syscalls_;
  if (ok) ++datagrams_sent_;
  return ok;
}

std::size_t EventLoop::send_datagram_message(std::uint16_t port,
                                             const Message& msg) {
  dgram_scratch_.clear();
  const std::size_t n = append_message(dgram_scratch_, msg);
  return send_datagram(port, dgram_scratch_) ? n : 0;
}

void EventLoop::flush(Connection& c) {
  while (c.out_head < c.outbound.size()) {
    const ssize_t n =
        ::send(c.sock.fd(), c.outbound.data() + c.out_head,
               c.outbound.size() - c.out_head, MSG_NOSIGNAL);
    if (n > 0) {
      ++write_syscalls_;
      c.out_head += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // EPIPE/ECONNRESET: the peer is gone; the next poll round surfaces
    // it as a close event. Drop the backlog so we stop retrying.
    c.outbound.clear();
    c.out_head = 0;
    return;
  }
  c.outbound.clear();
  c.out_head = 0;
}

void EventLoop::flush_all() {
  for (auto& c : connections_) {
    if (c->open && c->out_head < c->outbound.size()) flush(*c);
  }
}

std::size_t EventLoop::read_ready(int conn) {
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  std::uint8_t buf[64 * 1024];
  std::size_t delivered = 0;
  bool closed = false;
  for (;;) {
    const ssize_t n = ::recv(c.sock.fd(), buf, sizeof(buf), 0);
    if (n > 0) {
      bytes_received_ += n;
      c.reader.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    closed = true;  // EOF or hard error
    break;
  }
  std::vector<std::uint8_t> payload;
  while (c.open && c.reader.pop(payload)) {
    ++frames_received_;
    ++delivered;
    c.on_frame(conn, FrameView(payload.data(), payload.size()));
  }
  if (closed) close_connection(conn);
  return delivered;
}

void EventLoop::close_connection(int conn) {
  Connection& c = *connections_[static_cast<std::size_t>(conn)];
  if (!c.open) return;
  c.open = false;
  if (c.on_close) c.on_close(conn);
  c.sock.close();
}

std::size_t EventLoop::run_once(int timeout_ms) {
  // Everything queued since the last round leaves now, coalesced into
  // one write() per peer (modulo kernel pushback, which arms POLLOUT
  // below for the residue).
  flush_all();
  std::vector<pollfd> fds;
  std::vector<int> conn_of;  // parallel to fds; -1 = listener, -2 = udp
  fds.reserve(connections_.size() + 2);
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    Connection& c = *connections_[i];
    if (!c.open) continue;
    pollfd pfd{};
    pfd.fd = c.sock.fd();
    pfd.events = POLLIN;
    if (c.out_head < c.outbound.size()) pfd.events |= POLLOUT;
    fds.push_back(pfd);
    conn_of.push_back(static_cast<int>(i));
  }
  if (listener_.valid()) {
    fds.push_back({listener_.fd(), POLLIN, 0});
    conn_of.push_back(-1);
  }
  if (udp_.valid()) {
    fds.push_back({udp_.fd(), POLLIN, 0});
    conn_of.push_back(-2);
  }
  if (fds.empty()) return 0;

  int rc;
  do {
    rc = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  DCNT_CHECK(rc >= 0);
  if (rc == 0) return 0;

  std::size_t delivered = 0;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    const int tag = conn_of[i];
    if (tag == -1) {
      for (;;) {
        Socket accepted = tcp_accept(listener_);
        if (!accepted.valid()) break;
        on_accept_(std::move(accepted));
      }
      continue;
    }
    if (tag == -2) {
      std::uint8_t buf[64 * 1024];
      int n;
      while ((n = udp_recv(udp_, buf, sizeof(buf))) >= 0) {
        // One frame per datagram: strip the length word, hand over the
        // payload. A datagram truncated by the kernel would fail the
        // FrameView checks; buffers are sized to prevent that.
        if (n < 6) continue;  // runt datagram: treat as line noise
        ++datagrams_received_;
        FrameReader one;
        one.feed(buf, static_cast<std::size_t>(n));
        std::vector<std::uint8_t> payload;
        while (one.pop(payload)) {
          ++delivered;
          on_datagram_(FrameView(payload.data(), payload.size()));
        }
      }
      continue;
    }
    Connection& c = *connections_[static_cast<std::size_t>(tag)];
    if (!c.open) continue;
    if (fds[i].revents & POLLOUT) flush(c);
    if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      delivered += read_ready(tag);
    }
  }
  // Frames the callbacks queued this round (acks, forwards, replies)
  // leave before the caller decides whether to sleep.
  flush_all();
  return delivered;
}

}  // namespace dcnt::net
