// Single-threaded poll() event loop with per-peer outbound queues.
//
// Both sides of the cluster — the dcnt_node processes and the
// controller inside the cluster harness — drive all their sockets
// through one EventLoop: TCP connections deliver complete frames to a
// per-connection callback, listeners deliver accepted sockets, a UDP
// socket delivers datagrams. Writes never block: send()/send_message()
// only append to the connection's outbound byte queue; run_once()
// flushes every backlog at entry (before poll) and again after the
// round's callbacks, so all frames queued in one round leave in one
// write() per peer, and POLLOUT is armed only for residue the kernel
// refused. One slow peer stalls neither the loop nor the other peers.
//
// The hot data-plane path is allocation-free: send_message() encodes
// the frame directly into the connection's outbound queue (no
// per-message temporary), and send_datagram_message() reuses one
// scratch buffer. write_syscalls() counts actual kernel writes, so
// bytes_sent()/write_syscalls() measures the coalescing.
//
// poll(), not epoll: the fd set is tiny (N nodes + controller, N well
// under a hundred) and poll keeps the loop portable; the per-call scan
// is noise next to a localhost round trip.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace dcnt::net {

class EventLoop {
 public:
  /// One complete frame payload (version + type + body) from connection
  /// `conn`.
  using FrameFn = std::function<void(int conn, const FrameView& frame)>;
  /// Peer hung up (EOF or error). The connection is removed after the
  /// callback returns; sending to it afterwards is an error.
  using CloseFn = std::function<void(int conn)>;
  using AcceptFn = std::function<void(Socket accepted)>;
  using DatagramFn = std::function<void(const FrameView& frame)>;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers a connected TCP socket; returns its connection id.
  int add_connection(Socket sock, FrameFn on_frame, CloseFn on_close);
  void add_listener(Socket sock, AcceptFn on_accept);
  /// At most one UDP socket; datagrams must each hold one whole frame.
  void add_udp(Socket sock, DatagramFn on_datagram);

  /// Queues one encoded frame (length prefix included). The bytes leave
  /// at the next run_once() boundary, coalesced with everything else
  /// queued for the peer this round.
  void send(int conn, const std::vector<std::uint8_t>& frame);
  /// Move overload: when the connection's queue is empty the frame's
  /// buffer is adopted wholesale instead of copied.
  void send(int conn, std::vector<std::uint8_t>&& frame);
  /// Encodes one protocol Message straight into the connection's
  /// outbound queue — no intermediate buffer. Returns bytes queued.
  std::size_t send_message(int conn, const Message& msg);
  bool connected(int conn) const;
  std::size_t open_connections() const;
  /// Any open connection still holding unflushed outbound bytes? A node
  /// must drain this to false before exiting, or its last frames die in
  /// the queue.
  bool backlog() const;

  /// One poll round: waits up to `timeout_ms` (0 = just poll, -1 =
  /// indefinitely) for readiness, then performs all pending reads,
  /// accepts, datagram deliveries and queued writes. Returns the number
  /// of frames delivered to callbacks.
  std::size_t run_once(int timeout_ms);

  const Socket& udp_socket() const { return udp_; }

  std::int64_t frames_sent() const { return frames_sent_; }
  std::int64_t frames_received() const { return frames_received_; }
  std::int64_t bytes_sent() const { return bytes_sent_; }
  std::int64_t bytes_received() const { return bytes_received_; }
  /// Datagram counters are split out: the data plane reports them
  /// separately from control traffic.
  std::int64_t datagrams_sent() const { return datagrams_sent_; }
  std::int64_t datagrams_received() const { return datagrams_received_; }

  /// Sends one frame as a datagram to 127.0.0.1:port via the UDP
  /// socket. Returns false when the kernel dropped it (counted by the
  /// caller as loss).
  bool send_datagram(std::uint16_t port, const std::vector<std::uint8_t>& frame);
  /// Datagram flavor of send_message: encodes into a reused scratch
  /// buffer (no allocation after the first call) and sends immediately
  /// (datagrams keep their boundaries; there is nothing to coalesce).
  /// Returns bytes sent, or 0 when the kernel dropped it.
  std::size_t send_datagram_message(std::uint16_t port, const Message& msg);

  /// Kernel write syscalls actually issued (TCP send() calls that moved
  /// bytes + UDP sendto() calls). bytes_sent()/write_syscalls() is the
  /// observable for frame coalescing.
  std::int64_t write_syscalls() const { return write_syscalls_; }

 private:
  struct Connection {
    Socket sock;
    FrameFn on_frame;
    CloseFn on_close;
    FrameReader reader;
    std::vector<std::uint8_t> outbound;
    std::size_t out_head{0};
    bool open{false};
  };

  void flush(Connection& c);
  /// Flushes every open connection holding queued bytes.
  void flush_all();
  /// Reads until EAGAIN; delivers complete frames. Returns frames
  /// delivered; flags close on EOF/error.
  std::size_t read_ready(int conn);
  void close_connection(int conn);

  std::vector<std::unique_ptr<Connection>> connections_;
  Socket listener_;
  AcceptFn on_accept_;
  Socket udp_;
  DatagramFn on_datagram_;

  std::int64_t frames_sent_{0};
  std::int64_t frames_received_{0};
  std::int64_t bytes_sent_{0};
  std::int64_t bytes_received_{0};
  std::int64_t datagrams_sent_{0};
  std::int64_t datagrams_received_{0};
  std::int64_t write_syscalls_{0};
  /// Reused by send_datagram_message.
  std::vector<std::uint8_t> dgram_scratch_;
};

}  // namespace dcnt::net
