// Single-threaded reactor with per-peer outbound queues, selectable
// readiness backend (epoll on Linux, poll anywhere).
//
// Both sides of the cluster — the dcnt_node processes and the
// controller inside the cluster harness — drive all their sockets
// through EventLoop instances: TCP connections deliver complete frames
// to a per-connection callback, listeners deliver accepted sockets, a
// UDP socket delivers datagrams. Writes never block: send() /
// send_message() only append to the connection's outbound byte queue;
// run_once() flushes every backlog at entry (before waiting) and again
// after the round's callbacks, so all frames queued in one round leave
// in one write() per peer, and write-readiness is armed only for
// residue the kernel refused. One slow peer stalls neither the loop nor
// the other peers.
//
// The hot data-plane path is allocation-free: send_message() encodes
// the frame directly into the connection's outbound queue (no
// per-message temporary), and send_datagram_message() reuses one
// scratch buffer. write_syscalls() counts actual kernel writes, so
// bytes_sent()/write_syscalls() measures the coalescing.
//
// Backends. poll(2) rebuilds its fd array and rescans every entry each
// round — O(fds) per wakeup even when one fd is ready. epoll keeps the
// interest set in the kernel and returns only ready fds, so a node
// whose loop hosts a full peer mesh plus control plane pays O(ready)
// per wakeup. The sets here are small, so the win is not the classic
// C10K scan cost but the per-round constant: no array rebuild, no
// EINTR-looped rescan, and edge management folded into the send path
// (EPOLLOUT is toggled only when kernel pushback appears/clears).
// poll stays as the portable fallback and as the parity backend for
// tests; the two are selectable per loop at runtime (Backend) so a
// single test binary can run the same workload under both.
//
// Threading. Each EventLoop is owned by exactly one thread: every
// method except notify() must be called from that thread. notify() may
// be called from anywhere; it wakes a run_once() blocked in the kernel
// (eventfd on Linux, self-pipe otherwise) so producers can hand work to
// the loop thread through an external queue and then kick it. The
// multi-loop node (node.cpp) builds its lock-free handoff on exactly
// this: Mailbox push_all + notify.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace dcnt::net {

enum class Backend : std::uint8_t {
  kPoll = 0,
  kEpoll = 1,  ///< Linux only; falls back to poll elsewhere
};

/// Default readiness backend: epoll on Linux, poll elsewhere. The
/// DCNT_NET_BACKEND environment variable ("poll" | "epoll") overrides —
/// the hook CI uses to run the whole suite on the fallback path.
Backend default_backend();
/// "poll" | "epoll" | "" (empty = default_backend()). Aborts on other
/// strings.
Backend backend_from_string(const std::string& name);
const char* backend_name(Backend backend);

/// A connection detached from one loop for adoption by another: the
/// socket plus any bytes already read from the kernel past the frames
/// the old loop consumed (the adopting loop replays them through its
/// own FrameReader). See EventLoop::detach_connection.
struct DetachedConn {
  Socket sock;
  std::vector<std::uint8_t> residual;
};

class EventLoop {
 public:
  /// One complete frame payload (version + type + body) from connection
  /// `conn`.
  using FrameFn = std::function<void(int conn, const FrameView& frame)>;
  /// Peer hung up (EOF, ECONNRESET or other hard error — all treated as
  /// a clean close; on localhost a vanished peer is shutdown order, not
  /// data corruption). The connection is removed after the callback
  /// returns; sending to it afterwards is an error.
  using CloseFn = std::function<void(int conn)>;
  using AcceptFn = std::function<void(Socket accepted)>;
  using DatagramFn = std::function<void(const FrameView& frame)>;

  explicit EventLoop(Backend backend = default_backend());
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Backend backend() const { return backend_; }

  /// Registers a connected TCP socket; returns its connection id.
  /// `residual` (bytes already read from this socket by a previous
  /// owner) is fed to the connection's FrameReader, and any complete
  /// frames it holds are delivered to `on_frame` before this returns —
  /// they were consumed from the kernel, so readiness will never
  /// re-announce them.
  int add_connection(Socket sock, FrameFn on_frame, CloseFn on_close,
                     std::vector<std::uint8_t> residual = {});
  void add_listener(Socket sock, AcceptFn on_accept);
  /// At most one UDP socket; datagrams must each hold one whole frame.
  void add_udp(Socket sock, DatagramFn on_datagram);

  /// Removes a connection from this loop without closing it, returning
  /// the socket and any buffered unparsed bytes for adoption by another
  /// loop (the multi-loop node accepts every peer on loop 0, reads the
  /// Hello to learn who it is, then hands the socket to the owning
  /// loop). Requires an open connection with an empty outbound queue;
  /// on_close is NOT called.
  DetachedConn detach_connection(int conn);

  /// Queues one encoded frame (length prefix included). The bytes leave
  /// at the next run_once() boundary, coalesced with everything else
  /// queued for the peer this round.
  void send(int conn, const std::vector<std::uint8_t>& frame);
  /// Move overload: when the connection's queue is empty the frame's
  /// buffer is adopted wholesale instead of copied.
  void send(int conn, std::vector<std::uint8_t>&& frame);
  /// Encodes one protocol Message straight into the connection's
  /// outbound queue — no intermediate buffer. Returns bytes queued.
  std::size_t send_message(int conn, const Message& msg);
  /// Same, as a kKeyedMsg frame carrying msg.key (the service fabric's
  /// data plane). Requires msg.key != kNoKey.
  std::size_t send_keyed_message(int conn, const Message& msg);
  bool connected(int conn) const;
  std::size_t open_connections() const;
  /// Any open connection still holding unflushed outbound bytes? A node
  /// must drain this to false before exiting, or its last frames die in
  /// the queue.
  bool backlog() const;
  /// Flushes every open connection holding queued bytes (also done at
  /// both edges of run_once). Exposed so a loop thread can push queued
  /// frames to the kernel before reporting a counter snapshot.
  void flush_all();

  /// One reactor round: waits up to `timeout_ms` (0 = just poll, -1 =
  /// indefinitely) for readiness — or a notify() — then performs all
  /// pending reads, accepts, datagram deliveries and queued writes.
  /// Returns the number of frames delivered to callbacks.
  std::size_t run_once(int timeout_ms);

  /// Wakes a run_once() blocked in the kernel. The ONLY method safe to
  /// call from other threads. Wakes are sticky: a notify() while the
  /// loop is busy makes its next wait return immediately.
  void notify();

  const Socket& udp_socket() const { return udp_; }

  std::int64_t frames_sent() const { return frames_sent_; }
  std::int64_t frames_received() const { return frames_received_; }
  std::int64_t bytes_sent() const { return bytes_sent_; }
  std::int64_t bytes_received() const { return bytes_received_; }
  /// Datagram counters are split out: the data plane reports them
  /// separately from control traffic.
  std::int64_t datagrams_sent() const { return datagrams_sent_; }
  std::int64_t datagrams_received() const { return datagrams_received_; }

  /// Sends one frame as a datagram to 127.0.0.1:port via the UDP
  /// socket. Returns false when the kernel dropped it (counted by the
  /// caller as loss).
  bool send_datagram(std::uint16_t port, const std::vector<std::uint8_t>& frame);
  /// Datagram flavor of send_message: encodes into a reused scratch
  /// buffer (no allocation after the first call) and sends immediately
  /// (datagrams keep their boundaries; there is nothing to coalesce).
  /// Returns bytes sent, or 0 when the kernel dropped it.
  std::size_t send_datagram_message(std::uint16_t port, const Message& msg);
  /// Keyed-frame flavor of send_datagram_message (msg.key != kNoKey).
  std::size_t send_datagram_keyed_message(std::uint16_t port,
                                          const Message& msg);

  /// Kernel write syscalls actually issued (TCP send() calls that moved
  /// bytes + UDP sendto() calls). bytes_sent()/write_syscalls() is the
  /// observable for frame coalescing.
  std::int64_t write_syscalls() const { return write_syscalls_; }

 private:
  struct Connection {
    Socket sock;
    FrameFn on_frame;
    CloseFn on_close;
    FrameReader reader;
    std::vector<std::uint8_t> outbound;
    std::size_t out_head{0};
    bool open{false};
    /// epoll backend: is EPOLLOUT currently armed in the kernel set?
    /// Tracked so flush() issues EPOLL_CTL_MOD only on transitions.
    bool want_out{false};
  };

  void flush(Connection& c, int conn);
  /// Reads until EAGAIN; delivers complete frames. Returns frames
  /// delivered; flags close on EOF / ECONNRESET / hard error.
  std::size_t read_ready(int conn);
  std::size_t deliver_frames(int conn);
  void close_connection(int conn);
  std::size_t drain_udp();
  void accept_pending();
  void drain_wakeup();

  // Backend plumbing. Tags identify what an fd is in readiness results.
  static constexpr int kTagListener = -1;
  static constexpr int kTagUdp = -2;
  static constexpr int kTagWakeup = -3;
  void backend_add(int fd, int tag, bool want_out);
  void backend_mod(int fd, int tag, bool want_out);
  void backend_del(int fd);
  /// Fills ready_tags_/ready_events_ with (tag, poll-style revents)
  /// pairs; handles EINTR. Returns false on timeout with nothing ready.
  bool backend_wait(int timeout_ms);

  Backend backend_;
  int epoll_fd_{-1};
  /// notify() endpoint: eventfd (one fd, wake_read_ == wake_write_) or
  /// self-pipe ends.
  int wake_read_{-1};
  int wake_write_{-1};

  std::vector<std::unique_ptr<Connection>> connections_;
  Socket listener_;
  AcceptFn on_accept_;
  Socket udp_;
  DatagramFn on_datagram_;

  /// Readiness results of the last backend_wait, parallel arrays.
  std::vector<int> ready_tags_;
  std::vector<std::uint32_t> ready_events_;
  /// poll backend scratch (rebuilt per round; reused capacity).
  std::vector<int> poll_tag_of_;

  std::int64_t frames_sent_{0};
  std::int64_t frames_received_{0};
  std::int64_t bytes_sent_{0};
  std::int64_t bytes_received_{0};
  std::int64_t datagrams_sent_{0};
  std::int64_t datagrams_received_{0};
  std::int64_t write_syscalls_{0};
  /// Reused by send_datagram_message.
  std::vector<std::uint8_t> dgram_scratch_;
  /// Reused by deliver_frames.
  std::vector<std::uint8_t> frame_scratch_;
};

}  // namespace dcnt::net
