#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "support/check.hpp"

namespace dcnt::net {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DCNT_CHECK(flags >= 0);
  DCNT_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_nodelay(int fd) {
  const int one = 1;
  // Nagle + delayed acks cost tens of milliseconds per hop on the
  // request-response message pattern; every TCP socket disables it.
  DCNT_CHECK(::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) ==
             0);
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  DCNT_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  return ntohs(addr.sin_port);
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DCNT_CHECK(fd >= 0);
  Socket sock(fd);
  const int one = 1;
  DCNT_CHECK(::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) ==
             0);
  sockaddr_in addr = loopback(0);
  DCNT_CHECK_MSG(
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "cannot bind a loopback TCP socket");
  DCNT_CHECK(::listen(fd, 64) == 0);
  set_nonblocking(fd);
  *port = bound_port(fd);
  return sock;
}

Socket tcp_connect(std::uint16_t port, int deadline_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    DCNT_CHECK(fd >= 0);
    Socket sock(fd);
    sockaddr_in addr = loopback(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      set_nonblocking(fd);
      set_nodelay(fd);
      return sock;
    }
    DCNT_CHECK_MSG(std::chrono::steady_clock::now() < deadline,
                   "tcp_connect: peer never started listening");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

Socket tcp_accept(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      set_nonblocking(fd);
      set_nodelay(fd);
      return Socket(fd);
    }
    // A signal mid-accept is not "nothing pending" — retry, or the
    // readiness edge that announced this connection is lost until the
    // next one arrives.
    if (errno == EINTR) continue;
    DCNT_CHECK_MSG(
        errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED,
        "accept failed");
    return Socket();
  }
}

Socket udp_bind(std::uint16_t* port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  DCNT_CHECK(fd >= 0);
  Socket sock(fd);
  const int bufsize = 4 << 20;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &bufsize, sizeof(bufsize));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bufsize, sizeof(bufsize));
  sockaddr_in addr = loopback(0);
  DCNT_CHECK_MSG(
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "cannot bind a loopback UDP socket");
  set_nonblocking(fd);
  *port = bound_port(fd);
  return sock;
}

bool udp_send(const Socket& sock, std::uint16_t port, const std::uint8_t* data,
              std::size_t size) {
  sockaddr_in addr = loopback(port);
  for (;;) {
    const ssize_t n =
        ::sendto(sock.fd(), data, size, MSG_NOSIGNAL,
                 reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (n == static_cast<ssize_t>(size)) return true;
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN / ENOBUFS / ECONNREFUSED (peer not yet bound, or gone):
    // on the lossy data plane this is indistinguishable from network
    // loss, which the reliable transport is there to absorb.
    DCNT_CHECK_MSG(n < 0, "short datagram write");
    return false;
  }
}

int udp_recv(const Socket& sock, std::uint8_t* buf, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::recvfrom(sock.fd(), buf, cap, 0, nullptr, nullptr);
    if (n >= 0) return static_cast<int>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED) {
      return -1;
    }
    DCNT_CHECK_MSG(false, "recvfrom failed");
  }
}

}  // namespace dcnt::net
