#include "net/wire.hpp"

#include <cstring>

#include "support/check.hpp"

namespace dcnt::net {

namespace {

// Explicit little-endian byte shuffling: the cluster only spans
// localhost today, but the wire format should not silently depend on
// host endianness.

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

/// Bounds-checked sequential reader over a frame body.
class BodyReader {
 public:
  BodyReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return take(1)[0]; }

  std::uint16_t u16() {
    const std::uint8_t* p = take(2);
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }

  std::uint32_t u32() {
    const std::uint8_t* p = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  std::uint64_t u64() {
    const std::uint8_t* p = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  void expect_end() const {
    DCNT_CHECK_MSG(pos_ == size_, "trailing bytes in frame body");
  }

 private:
  const std::uint8_t* take(std::size_t n) {
    DCNT_CHECK_MSG(pos_ + n <= size_, "truncated frame body");
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

/// Non-aborting cousin of BodyReader for the hardened keyed decoders:
/// every take reports truncation instead of DCNT_CHECKing, so a mangled
/// keyed frame is rejected, never fatal.
class SafeReader {
 public:
  SafeReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t* v) {
    const std::uint8_t* p = take(1);
    if (!p) return false;
    *v = p[0];
    return true;
  }

  bool u32(std::uint32_t* v) {
    const std::uint8_t* p = take(4);
    if (!p) return false;
    std::uint32_t x = 0;
    for (int i = 3; i >= 0; --i) x = (x << 8) | p[i];
    *v = x;
    return true;
  }

  bool u64(std::uint64_t* v) {
    const std::uint8_t* p = take(8);
    if (!p) return false;
    std::uint64_t x = 0;
    for (int i = 7; i >= 0; --i) x = (x << 8) | p[i];
    *v = x;
    return true;
  }

  bool i32(std::int32_t* v) {
    std::uint32_t x;
    if (!u32(&x)) return false;
    *v = static_cast<std::int32_t>(x);
    return true;
  }

  bool i64(std::int64_t* v) {
    std::uint64_t x;
    if (!u64(&x)) return false;
    *v = static_cast<std::int64_t>(x);
    return true;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

 private:
  const std::uint8_t* take(std::size_t n) {
    if (pos_ + n > size_) return nullptr;
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

/// Starts a frame: length placeholder + header. finish_frame backfills
/// the length.
std::vector<std::uint8_t> begin_frame(FrameType type) {
  std::vector<std::uint8_t> out;
  put_u32(out, 0);  // payload length, patched by finish_frame
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  return out;
}

std::vector<std::uint8_t> finish_frame(std::vector<std::uint8_t> out) {
  const std::size_t payload = out.size() - 4;
  DCNT_CHECK_MSG(payload <= kMaxFramePayload, "frame payload too large");
  for (int i = 0; i < 4; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const HelloFrame& f) {
  auto out = begin_frame(FrameType::kHello);
  put_u32(out, f.node_id);
  put_u16(out, f.tcp_port);
  put_u16(out, f.udp_port);
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_peers(const PeersFrame& f) {
  auto out = begin_frame(FrameType::kPeers);
  put_u32(out, static_cast<std::uint32_t>(f.peers.size()));
  for (const PeerAddr& p : f.peers) {
    put_u32(out, p.node_id);
    put_u16(out, p.tcp_port);
    put_u16(out, p.udp_port);
  }
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_ready(const ReadyFrame& f) {
  auto out = begin_frame(FrameType::kReady);
  put_u32(out, f.node_id);
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_start(const StartFrame& f) {
  auto out = begin_frame(FrameType::kStart);
  put_i64(out, f.op);
  put_i32(out, f.origin);
  put_u32(out, static_cast<std::uint32_t>(f.args.size()));
  for (const std::int64_t a : f.args) put_i64(out, a);
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_complete(const CompleteFrame& f) {
  auto out = begin_frame(FrameType::kComplete);
  put_i64(out, f.op);
  put_i64(out, f.value);
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_message(const Message& msg) {
  std::vector<std::uint8_t> out;
  append_message(out, msg);
  return out;
}

std::size_t append_message(std::vector<std::uint8_t>& out,
                           const Message& msg) {
  const std::size_t start = out.size();
  put_u32(out, 0);  // payload length, backpatched below
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(FrameType::kMsg));
  put_i32(out, msg.src);
  put_i32(out, msg.dst);
  put_i32(out, msg.tag);
  put_i64(out, msg.op);
  put_u32(out, static_cast<std::uint32_t>(msg.args.size()));
  for (const std::int64_t a : msg.args) put_i64(out, a);
  const std::size_t payload = out.size() - start - 4;
  DCNT_CHECK_MSG(payload <= kMaxFramePayload, "frame payload too large");
  for (int i = 0; i < 4; ++i) {
    out[start + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  }
  return out.size() - start;
}

std::vector<std::uint8_t> encode_stats_request() {
  return finish_frame(begin_frame(FrameType::kStatsRequest));
}

std::vector<std::uint8_t> encode_stats(const StatsFrame& f) {
  auto out = begin_frame(FrameType::kStats);
  put_u32(out, f.node_id);
  put_i64(out, f.events_processed);
  put_i64(out, f.wire_msgs_sent);
  put_i64(out, f.wire_msgs_received);
  put_i64(out, f.wire_bytes_sent);
  put_i64(out, f.wire_bytes_received);
  put_i64(out, f.injected_drops);
  put_i64(out, f.unacked);
  put_i64(out, f.timers_armed);
  put_i64(out, f.retransmissions);
  put_i64(out, f.duplicates_suppressed);
  put_i64(out, f.messages_abandoned);
  put_i64(out, f.wire_write_syscalls);
  put_u32(out, static_cast<std::uint32_t>(f.loads.size()));
  for (const ProcLoad& l : f.loads) {
    put_i32(out, l.pid);
    put_i64(out, l.sent);
    put_i64(out, l.received);
    put_i64(out, l.words);
  }
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_shutdown() {
  return finish_frame(begin_frame(FrameType::kShutdown));
}

std::vector<std::uint8_t> encode_time_jump() {
  return finish_frame(begin_frame(FrameType::kTimeJump));
}

std::vector<std::uint8_t> encode_metrics_reset() {
  return finish_frame(begin_frame(FrameType::kMetricsReset));
}

std::vector<std::uint8_t> encode_keyed_message(const Message& msg) {
  std::vector<std::uint8_t> out;
  append_keyed_message(out, msg);
  return out;
}

std::size_t append_keyed_message(std::vector<std::uint8_t>& out,
                                 const Message& msg) {
  DCNT_CHECK_MSG(msg.key != kNoKey, "keyed frame requires a key");
  const std::size_t start = out.size();
  put_u32(out, 0);  // payload length, backpatched below
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(FrameType::kKeyedMsg));
  put_i64(out, msg.key);
  put_i32(out, msg.src);
  put_i32(out, msg.dst);
  put_i32(out, msg.tag);
  put_i64(out, msg.op);
  put_u32(out, static_cast<std::uint32_t>(msg.args.size()));
  for (const std::int64_t a : msg.args) put_i64(out, a);
  const std::size_t payload = out.size() - start - 4;
  DCNT_CHECK_MSG(payload <= kMaxFramePayload, "frame payload too large");
  for (int i = 0; i < 4; ++i) {
    out[start + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  }
  return out.size() - start;
}

std::vector<std::uint8_t> encode_start_batch(const StartBatchFrame& f) {
  auto out = begin_frame(FrameType::kStartBatch);
  put_u32(out, static_cast<std::uint32_t>(f.ops.size()));
  for (const StartBatchEntry& e : f.ops) {
    put_i64(out, e.op);
    put_i32(out, e.origin);
    put_i64(out, e.key);
  }
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_complete_batch(const CompleteBatchFrame& f) {
  std::vector<std::uint8_t> out;
  append_complete_batch(out, f);
  return out;
}

std::size_t append_complete_batch(std::vector<std::uint8_t>& out,
                                  const CompleteBatchFrame& f) {
  const std::size_t start = out.size();
  put_u32(out, 0);  // payload length, backpatched below
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(FrameType::kCompleteBatch));
  put_u32(out, static_cast<std::uint32_t>(f.completions.size()));
  for (const CompleteBatchEntry& e : f.completions) {
    put_i64(out, e.op);
    put_i64(out, e.value);
  }
  const std::size_t payload = out.size() - start - 4;
  DCNT_CHECK_MSG(payload <= kMaxFramePayload, "frame payload too large");
  for (int i = 0; i < 4; ++i) {
    out[start + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  }
  return out.size() - start;
}

std::vector<std::uint8_t> encode_keyed_stats(const KeyedStatsFrame& f) {
  DCNT_CHECK_MSG(f.loads.size() <= kKeyedStatsChunk,
                 "keyed stats chunk too large");
  auto out = begin_frame(FrameType::kKeyedStats);
  put_u32(out, f.node_id);
  put_u8(out, f.last ? 1 : 0);
  put_i64(out, f.lru_hits);
  put_i64(out, f.lru_misses);
  put_i64(out, f.lru_evicts);
  put_i64(out, f.lru_rehydrates);
  put_u32(out, static_cast<std::uint32_t>(f.loads.size()));
  for (const KeyProcLoad& l : f.loads) {
    put_i64(out, l.key);
    put_i32(out, l.pid);
    put_i64(out, l.sent);
    put_i64(out, l.received);
  }
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_keyed_stats_request() {
  return finish_frame(begin_frame(FrameType::kKeyedStatsRequest));
}

FrameView::FrameView(const std::uint8_t* data, std::size_t size)
    : data_(data), size_(size) {
  DCNT_CHECK_MSG(size_ >= 2, "frame shorter than its header");
  DCNT_CHECK_MSG(data_[0] == kWireVersion || data_[0] == kWireVersionV1,
                 "wire version mismatch");
}

FrameType FrameView::type() const {
  const std::uint8_t t = data_[1];
  // A frame may only use types its own stamped version defines: v1
  // stops at kMetricsReset, v2 adds the keyed envelope.
  const std::uint8_t last = version() == kWireVersionV1
                                ? static_cast<std::uint8_t>(
                                      FrameType::kMetricsReset)
                                : static_cast<std::uint8_t>(
                                      FrameType::kKeyedStatsRequest);
  DCNT_CHECK_MSG(
      t >= static_cast<std::uint8_t>(FrameType::kHello) && t <= last,
      "unknown frame type");
  return static_cast<FrameType>(t);
}

HelloFrame decode_hello(const FrameView& frame) {
  DCNT_CHECK(frame.type() == FrameType::kHello);
  BodyReader r(frame.body(), frame.body_size());
  HelloFrame f;
  f.node_id = r.u32();
  f.tcp_port = r.u16();
  f.udp_port = r.u16();
  r.expect_end();
  return f;
}

PeersFrame decode_peers(const FrameView& frame) {
  DCNT_CHECK(frame.type() == FrameType::kPeers);
  BodyReader r(frame.body(), frame.body_size());
  PeersFrame f;
  const std::uint32_t count = r.u32();
  f.peers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    PeerAddr p;
    p.node_id = r.u32();
    p.tcp_port = r.u16();
    p.udp_port = r.u16();
    f.peers.push_back(p);
  }
  r.expect_end();
  return f;
}

ReadyFrame decode_ready(const FrameView& frame) {
  DCNT_CHECK(frame.type() == FrameType::kReady);
  BodyReader r(frame.body(), frame.body_size());
  ReadyFrame f;
  f.node_id = r.u32();
  r.expect_end();
  return f;
}

StartFrame decode_start(const FrameView& frame) {
  DCNT_CHECK(frame.type() == FrameType::kStart);
  BodyReader r(frame.body(), frame.body_size());
  StartFrame f;
  f.op = r.i64();
  f.origin = r.i32();
  const std::uint32_t argc = r.u32();
  f.args.reserve(argc);
  for (std::uint32_t i = 0; i < argc; ++i) f.args.push_back(r.i64());
  r.expect_end();
  return f;
}

CompleteFrame decode_complete(const FrameView& frame) {
  DCNT_CHECK(frame.type() == FrameType::kComplete);
  BodyReader r(frame.body(), frame.body_size());
  CompleteFrame f;
  f.op = r.i64();
  f.value = r.i64();
  r.expect_end();
  return f;
}

Message decode_message(const FrameView& frame) {
  DCNT_CHECK(frame.type() == FrameType::kMsg);
  BodyReader r(frame.body(), frame.body_size());
  Message msg;
  msg.src = r.i32();
  msg.dst = r.i32();
  msg.tag = r.i32();
  msg.op = r.i64();
  const std::uint32_t argc = r.u32();
  msg.args.reserve(argc);
  for (std::uint32_t i = 0; i < argc; ++i) msg.args.push_back(r.i64());
  r.expect_end();
  return msg;
}

StatsFrame decode_stats(const FrameView& frame) {
  DCNT_CHECK(frame.type() == FrameType::kStats);
  BodyReader r(frame.body(), frame.body_size());
  StatsFrame f;
  f.node_id = r.u32();
  f.events_processed = r.i64();
  f.wire_msgs_sent = r.i64();
  f.wire_msgs_received = r.i64();
  f.wire_bytes_sent = r.i64();
  f.wire_bytes_received = r.i64();
  f.injected_drops = r.i64();
  f.unacked = r.i64();
  f.timers_armed = r.i64();
  f.retransmissions = r.i64();
  f.duplicates_suppressed = r.i64();
  f.messages_abandoned = r.i64();
  f.wire_write_syscalls = r.i64();
  const std::uint32_t count = r.u32();
  f.loads.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ProcLoad l;
    l.pid = r.i32();
    l.sent = r.i64();
    l.received = r.i64();
    l.words = r.i64();
    f.loads.push_back(l);
  }
  r.expect_end();
  return f;
}

bool decode_keyed_message(const FrameView& frame, Message* out) {
  DCNT_CHECK(frame.type() == FrameType::kKeyedMsg);
  SafeReader r(frame.body(), frame.body_size());
  Message msg;
  std::int64_t key;
  std::uint32_t argc;
  if (!r.i64(&key) || key < 0) return false;
  if (!r.i32(&msg.src) || !r.i32(&msg.dst) || !r.i32(&msg.tag) ||
      !r.i64(&msg.op)) {
    return false;
  }
  if (!r.u32(&argc)) return false;
  // Bound argc by the bytes actually present before reserving.
  if (static_cast<std::size_t>(argc) * 8 != r.remaining()) return false;
  msg.key = key;
  msg.args.reserve(argc);
  for (std::uint32_t i = 0; i < argc; ++i) {
    std::int64_t a;
    if (!r.i64(&a)) return false;
    msg.args.push_back(a);
  }
  if (!r.at_end()) return false;
  *out = std::move(msg);
  return true;
}

bool decode_start_batch(const FrameView& frame, StartBatchFrame* out) {
  DCNT_CHECK(frame.type() == FrameType::kStartBatch);
  SafeReader r(frame.body(), frame.body_size());
  std::uint32_t count;
  if (!r.u32(&count)) return false;
  if (static_cast<std::size_t>(count) * 20 != r.remaining()) return false;
  StartBatchFrame f;
  f.ops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    StartBatchEntry e;
    if (!r.i64(&e.op) || !r.i32(&e.origin) || !r.i64(&e.key)) return false;
    if (e.op < 0 || e.origin < 0 || e.key < 0) return false;
    f.ops.push_back(e);
  }
  if (!r.at_end()) return false;
  *out = std::move(f);
  return true;
}

bool decode_complete_batch(const FrameView& frame, CompleteBatchFrame* out) {
  DCNT_CHECK(frame.type() == FrameType::kCompleteBatch);
  SafeReader r(frame.body(), frame.body_size());
  std::uint32_t count;
  if (!r.u32(&count)) return false;
  if (static_cast<std::size_t>(count) * 16 != r.remaining()) return false;
  CompleteBatchFrame f;
  f.completions.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CompleteBatchEntry e;
    if (!r.i64(&e.op) || !r.i64(&e.value)) return false;
    f.completions.push_back(e);
  }
  if (!r.at_end()) return false;
  *out = std::move(f);
  return true;
}

bool decode_keyed_stats(const FrameView& frame, KeyedStatsFrame* out) {
  DCNT_CHECK(frame.type() == FrameType::kKeyedStats);
  SafeReader r(frame.body(), frame.body_size());
  KeyedStatsFrame f;
  std::uint8_t last;
  std::uint32_t count;
  if (!r.u32(&f.node_id) || !r.u8(&last)) return false;
  if (last > 1) return false;
  f.last = last == 1;
  if (!r.i64(&f.lru_hits) || !r.i64(&f.lru_misses) || !r.i64(&f.lru_evicts) ||
      !r.i64(&f.lru_rehydrates)) {
    return false;
  }
  if (!r.u32(&count)) return false;
  if (count > kKeyedStatsChunk) return false;
  if (static_cast<std::size_t>(count) * 28 != r.remaining()) return false;
  f.loads.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    KeyProcLoad l;
    if (!r.i64(&l.key) || !r.i32(&l.pid) || !r.i64(&l.sent) ||
        !r.i64(&l.received)) {
      return false;
    }
    if (l.key < 0 || l.pid < 0) return false;
    f.loads.push_back(l);
  }
  if (!r.at_end()) return false;
  *out = std::move(f);
  return true;
}

void FrameReader::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

bool FrameReader::pop(std::vector<std::uint8_t>& out) {
  const std::size_t avail = buffer_.size() - head_;
  if (avail < 4) return false;
  const std::uint8_t* p = buffer_.data() + head_;
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i) len = (len << 8) | p[i];
  DCNT_CHECK_MSG(len >= 2 && len <= kMaxFramePayload,
                 "corrupt frame length on the wire");
  if (avail < 4 + static_cast<std::size_t>(len)) return false;
  out.assign(p + 4, p + 4 + len);
  head_ += 4 + len;
  // Compact once the consumed prefix dominates, so long-lived
  // connections don't grow the buffer without bound.
  if (head_ > 4096 && head_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return true;
}

}  // namespace dcnt::net
