// One process of the socket cluster: hosts a shard of processors of an
// unmodified CounterProtocol and exchanges Messages with its peers over
// real kernel sockets.
//
// Sharding is the threaded runtime's, across processes instead of
// threads: processor p lives on node p % num_nodes, a node runs
// handlers only for its own processors, and the only channel between
// shards is Context::send — exactly the state-slicing contract
// Protocol::shard_safe() documents. Because shards are separate
// *processes*, the contract is enforced by construction: a handler
// physically cannot read another node's memory, and each node's copy of
// the protocol object only ever mutates its own processors' slices
// (remote slices stay at their initial state and are never consulted).
// Protocol-global conveniences (RelaxedCounter stats, debug logs) are
// per-process and therefore partial; correctness state must live in
// per-processor slices, which is what shard_safe() promises.
// check_quiescent() is NOT run per node — it audits whole-object state
// that no single node holds; the cluster harness verifies the
// observable contract (value permutation) instead.
//
// Two data planes:
//   - tcp (default): a full TCP mesh with TCP_NODELAY; the kernel's
//     byte stream gives reliable FIFO channels, matching the paper's
//     reliable asynchronous model directly.
//   - udp: datagrams plus a seeded Bernoulli loss shim at the sender,
//     with the protocol wrapped in ReliableTransport (faults/retry.hpp)
//     inside each node — the PROTOCOL.md ack/seq/backoff framing doing
//     real work over an actually-lossy medium. Kernel-level losses
//     (ENOBUFS, buffer overflow) are absorbed by the same machinery.
//
// Time: the node keeps the runtime's logical clock (one tick per
// handled event), and maps Context::send_local delays to wall-clock
// timers at `tick_us` microseconds per tick — a distributed node cannot
// detect global idleness to jump its clock, so timeouts are honest
// durations here. When a timer fires, the clock jumps to at least the
// timer's logical due time, preserving the deadline arithmetic
// protocols do against now().
//
// Threading (v2): one node process runs
//   - `loops` event-loop threads (epoll by default, poll selectable),
//     each owning a disjoint set of peer connections (peer connections
//     are sharded by peer_id % loops; the controller connection,
//     listener, and — for UDP — the advertised receive socket live on
//     loop 0);
//   - `shards` protocol worker threads inside a ThreadedRuntime
//     (runtime/threaded_runtime.hpp) hosting this node's processors,
//     with wall-clock timers;
//   - a main thread that coordinates membership, the distributed
//     quiescence/stats barrier, metric baselines, and shutdown.
// Loop threads hand wire-arrived events to the runtime via
// ThreadedRuntime::inject (a lock-free mailbox push); workers hand
// outbound messages back via the runtime's remote sink, which batches
// them into per-loop command mailboxes. With loops=1 and shards=1 the
// topology degenerates to PR-4's single-reactor node, at the cost of
// two mailbox hops on the wire path.
#pragma once

#include <cstdint>
#include <string>

#include "faults/retry.hpp"

namespace dcnt::net {

struct NodeConfig {
  std::uint32_t node_id{0};
  std::uint32_t num_nodes{1};
  /// Counter kind accepted by harness/factory.hpp.
  std::string counter{"tree"};
  std::int64_t min_processors{16};
  std::uint64_t seed{1};
  /// Controller's TCP port on 127.0.0.1 (required).
  std::uint16_t ctrl_port{0};
  /// Data plane: false = TCP mesh, true = lossy UDP + ReliableTransport.
  bool udp{false};
  /// Sender-side Bernoulli datagram loss (UDP mode), seeded.
  double drop_probability{0.0};
  /// Wall-clock microseconds per SimTime tick for send_local delays.
  std::int64_t tick_us{200};
  /// Retransmission knobs (UDP mode).
  RetryParams retry{};
  /// Event-loop threads (connections sharded by peer_id % loops).
  std::uint32_t loops{1};
  /// Protocol worker shards inside this node's ThreadedRuntime.
  /// 0 = inline drive: no worker threads at all — loop 0's thread runs
  /// the single protocol shard itself between reactor passes, so a
  /// message's receive->handle->send round trip never crosses a thread
  /// boundary. Requires loops == 1. The right topology when the host
  /// cannot run loop and worker truly in parallel (one core, or more
  /// nodes than cores).
  std::uint32_t shards{1};
  /// Reactor backend: "" = platform default, "epoll" or "poll".
  std::string backend{};
  /// Upper bound on operation ids the controller will issue (capacity
  /// hint for the runtime's completion tables; 0 = default 1<<16).
  std::int64_t max_ops{0};
  /// > 0: multi-key mode — wrap the counter in a service/MultiCounter
  /// fabric of this many keys. The node then accepts keyed Starts
  /// (StartFrame args = {key}, or batched kStartBatch), speaks the
  /// kKeyedMsg data plane between peers, coalesces completions into
  /// kCompleteBatch frames, and answers kKeyedStatsRequest with per-key
  /// loads. The fabric's routing seed is the shared `seed`, identical on
  /// every node, so key -> rotation agrees cluster-wide.
  std::int64_t keys{0};
  /// LRU capacity for live per-key instances (multi-key mode;
  /// 0 = unbounded). Requires a service-evictable inner counter.
  std::int64_t key_capacity{0};
};

/// Runs the node until the controller sends Shutdown. Returns the
/// process exit code (0 on orderly shutdown).
int run_node(const NodeConfig& config);

}  // namespace dcnt::net
