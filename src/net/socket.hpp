// Thin RAII wrappers over BSD sockets, specialized for the cluster's
// needs: non-blocking localhost TCP (control plane + peer mesh) and UDP
// (lossy data plane). Everything binds 127.0.0.1 with an ephemeral port
// (bind(0)) so parallel test runs never fight over port numbers — the
// kernel-assigned port is read back and exchanged via Hello/Peers
// frames.
#pragma once

#include <cstdint>
#include <utility>

namespace dcnt::net {

/// Move-only owned file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  int release() { return std::exchange(fd_, -1); }
  void close();

 private:
  int fd_{-1};
};

/// Listening TCP socket on 127.0.0.1:<ephemeral>, non-blocking,
/// SO_REUSEADDR. Writes the kernel-chosen port to *port.
Socket tcp_listen(std::uint16_t* port);

/// Blocking connect to 127.0.0.1:port, retried with a short sleep until
/// `deadline_ms` of wall time elapsed (the peer may not have reached
/// listen() yet). The returned socket is non-blocking with TCP_NODELAY.
/// Aborts (DCNT_CHECK) on deadline exhaustion.
Socket tcp_connect(std::uint16_t port, int deadline_ms);

/// Accepts one pending connection (non-blocking listener); returns an
/// invalid Socket if none is pending. The accepted socket is
/// non-blocking with TCP_NODELAY.
Socket tcp_accept(const Socket& listener);

/// Bound UDP socket on 127.0.0.1:<ephemeral>, non-blocking, with send
/// and receive buffers raised (datagram bursts from k retransmitting
/// peers otherwise overflow the default and masquerade as extra loss).
Socket udp_bind(std::uint16_t* port);

/// sendto 127.0.0.1:port. Returns false if the kernel refused
/// (EAGAIN/ENOBUFS) — for the lossy data plane that is just loss, and
/// the reliable transport's retransmission covers it.
bool udp_send(const Socket& sock, std::uint16_t port,
              const std::uint8_t* data, std::size_t size);

/// One datagram into `buf` (size `cap`); returns -1 when none pending.
int udp_recv(const Socket& sock, std::uint8_t* buf, std::size_t cap);

}  // namespace dcnt::net
