// Wire format for the socket runtime: length-prefixed, versioned frames.
//
// Every byte that crosses a socket — TCP stream or UDP datagram — is one
// frame:
//
//   [u32 payload_len][u8 version][u8 type][body...]
//
// all integers little-endian, payload_len counting everything after the
// length word. The kMsg body carries a protocol Message verbatim
// (src, dst, tag, op, args), so the PROTOCOL.md framing fields — the
// reliable transport's [seq, inner_tag, inner_args...] Data envelopes
// and [seq] Acks — ride inside args untouched: the wire layer moves
// envelopes, the ReliableTransport decorator inside each node gives
// them meaning (see PROTOCOL.md, "Reliable transport framing").
//
// Control frames (node <-> cluster controller) share the same framing:
// Hello/Peers/Ready for the mesh handshake, Start/Complete for the
// initiator RPC, StatsRequest/Stats for the distributed-quiescence
// barrier and metrics collection, Shutdown to end a node.
//
// Trust model: frames are parsed with hard bounds checks
// (kMaxFramePayload, per-field underflow checks) and a malformed or
// version-mismatched frame aborts the process (DCNT_CHECK) — peers are
// our own binaries on localhost, so corruption is a bug, not an attack
// to survive.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "sim/types.hpp"

namespace dcnt::net {

inline constexpr std::uint8_t kWireVersion = 1;
/// Upper bound on one frame's payload; protects against a corrupt
/// length word committing us to a gigabyte read.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,     ///< node -> controller: id + data-plane ports
  kPeers = 2,     ///< controller -> node: everyone's ports
  kReady = 3,     ///< node -> controller: peer mesh established
  kStart = 4,     ///< controller -> node: begin op at an owned processor
  kComplete = 5,  ///< node -> controller: op finished with value
  kMsg = 6,       ///< node -> node: one protocol Message
  kStatsRequest = 7,  ///< controller -> node: report counters now
  kStats = 8,         ///< node -> controller: counters + per-proc loads
  kShutdown = 9,      ///< controller -> node: flush stats reply and exit
  /// controller -> node: the cluster is idle except for armed timers;
  /// fire them now instead of waiting out their wall deadlines. The
  /// distributed analogue of the simulator's idle clock-jump — only the
  /// controller can see global idleness, so it pulls the trigger.
  kTimeJump = 10,
  /// controller -> node: zero the message-load metrics and remember the
  /// current transport counters as the new baseline. Broadcast at a
  /// quiescent barrier after the warmup phase, so cold-start traffic
  /// never appears in the measured stats.
  kMetricsReset = 11,
};

struct HelloFrame {
  std::uint32_t node_id{0};
  std::uint16_t tcp_port{0};  ///< peer-mesh listener (0 in UDP mode)
  std::uint16_t udp_port{0};  ///< data-plane datagram socket (0 in TCP mode)
};

struct PeerAddr {
  std::uint32_t node_id{0};
  std::uint16_t tcp_port{0};
  std::uint16_t udp_port{0};
};

struct PeersFrame {
  std::vector<PeerAddr> peers;  ///< one entry per node, id order
};

struct ReadyFrame {
  std::uint32_t node_id{0};
};

struct StartFrame {
  OpId op{kNoOp};
  ProcessorId origin{kNoProcessor};
  std::vector<std::int64_t> args;  ///< empty = plain inc
};

struct CompleteFrame {
  OpId op{kNoOp};
  Value value{0};
};

/// Per-processor load triple; only processors the reporting node owns
/// appear, so the controller's merge is exact (each processor is owned
/// by exactly one node).
struct ProcLoad {
  ProcessorId pid{kNoProcessor};
  std::int64_t sent{0};
  std::int64_t received{0};
  std::int64_t words{0};
};

struct StatsFrame {
  std::uint32_t node_id{0};
  /// Monotone progress counter: every handled event (message delivery,
  /// op start, timer firing) bumps it. Two identical consecutive
  /// snapshots across all nodes = nothing moved between the rounds.
  std::int64_t events_processed{0};
  /// Data-plane frames actually handed to the kernel / received from it
  /// (UDP: after injected drops).
  std::int64_t wire_msgs_sent{0};
  std::int64_t wire_msgs_received{0};
  std::int64_t wire_bytes_sent{0};
  std::int64_t wire_bytes_received{0};
  /// Datagrams suppressed by the seeded loss shim (UDP lossy mode).
  std::int64_t injected_drops{0};
  /// Reliable-transport envelopes still awaiting an ack (0 in TCP
  /// mode). Nonzero means retransmissions are coming: not quiescent.
  std::int64_t unacked{0};
  /// Armed send_local timers. Pending work too, but reported separately
  /// because the controller can fast-forward it (kTimeJump) once
  /// everything else has settled.
  std::int64_t timers_armed{0};
  std::int64_t retransmissions{0};
  std::int64_t duplicates_suppressed{0};
  std::int64_t messages_abandoned{0};
  /// write()/send() syscalls the data plane issued (TCP mode; one
  /// sendto per datagram in UDP mode). wire_bytes_sent divided by this
  /// is bytes-per-syscall — the direct observable for send coalescing.
  std::int64_t wire_write_syscalls{0};
  std::vector<ProcLoad> loads;
};

// --- encoding -------------------------------------------------------------

std::vector<std::uint8_t> encode_hello(const HelloFrame& f);
std::vector<std::uint8_t> encode_peers(const PeersFrame& f);
std::vector<std::uint8_t> encode_ready(const ReadyFrame& f);
std::vector<std::uint8_t> encode_start(const StartFrame& f);
std::vector<std::uint8_t> encode_complete(const CompleteFrame& f);
std::vector<std::uint8_t> encode_message(const Message& msg);
/// Appends one complete kMsg frame (length word included) to `out`
/// without any intermediate buffer — the zero-allocation path for hot
/// data-plane sends: encode straight into a connection's outbound queue
/// or a reused datagram scratch buffer, coalescing many messages into
/// one write(). Returns the number of bytes appended.
std::size_t append_message(std::vector<std::uint8_t>& out, const Message& msg);
std::vector<std::uint8_t> encode_stats_request();
std::vector<std::uint8_t> encode_stats(const StatsFrame& f);
std::vector<std::uint8_t> encode_shutdown();
std::vector<std::uint8_t> encode_time_jump();
std::vector<std::uint8_t> encode_metrics_reset();

// --- decoding -------------------------------------------------------------

/// A complete frame's payload (version + type + body, the length word
/// stripped). `type()` DCNT_CHECKs the version so every decode path
/// rejects foreign frames.
class FrameView {
 public:
  FrameView(const std::uint8_t* data, std::size_t size);

  FrameType type() const;
  /// Body bytes (after version + type).
  const std::uint8_t* body() const { return data_ + 2; }
  std::size_t body_size() const { return size_ - 2; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
};

HelloFrame decode_hello(const FrameView& frame);
PeersFrame decode_peers(const FrameView& frame);
ReadyFrame decode_ready(const FrameView& frame);
StartFrame decode_start(const FrameView& frame);
CompleteFrame decode_complete(const FrameView& frame);
Message decode_message(const FrameView& frame);
StatsFrame decode_stats(const FrameView& frame);

/// Incremental frame extractor for a TCP byte stream (also used one
/// datagram at a time for UDP, where the kernel preserves boundaries).
/// Feed arbitrary chunks; pop complete payloads as they materialize.
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t size);

  /// Moves the next complete payload (version + type + body) into `out`
  /// and returns true, or returns false if none is buffered.
  bool pop(std::vector<std::uint8_t>& out);

  std::size_t buffered_bytes() const { return buffer_.size() - head_; }

  /// Moves out the unconsumed bytes (a partial frame, typically empty),
  /// leaving the reader empty. Used when a connection migrates between
  /// event loops: the old loop surrenders what it read past the last
  /// complete frame so the adopting loop's reader can resume mid-stream.
  std::vector<std::uint8_t> take_buffered() {
    std::vector<std::uint8_t> out(buffer_.begin() + static_cast<long>(head_),
                                  buffer_.end());
    buffer_.clear();
    head_ = 0;
    return out;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t head_{0};  ///< consumed prefix, compacted lazily
};

}  // namespace dcnt::net
