// Wire format for the socket runtime: length-prefixed, versioned frames.
//
// Every byte that crosses a socket — TCP stream or UDP datagram — is one
// frame:
//
//   [u32 payload_len][u8 version][u8 type][body...]
//
// all integers little-endian, payload_len counting everything after the
// length word. The kMsg body carries a protocol Message verbatim
// (src, dst, tag, op, args), so the PROTOCOL.md framing fields — the
// reliable transport's [seq, inner_tag, inner_args...] Data envelopes
// and [seq] Acks — ride inside args untouched: the wire layer moves
// envelopes, the ReliableTransport decorator inside each node gives
// them meaning (see PROTOCOL.md, "Reliable transport framing").
//
// Control frames (node <-> cluster controller) share the same framing:
// Hello/Peers/Ready for the mesh handshake, Start/Complete for the
// initiator RPC, StatsRequest/Stats for the distributed-quiescence
// barrier and metrics collection, Shutdown to end a node.
//
// Trust model: frames are parsed with hard bounds checks
// (kMaxFramePayload, per-field underflow checks) and a malformed or
// version-mismatched frame aborts the process (DCNT_CHECK) — peers are
// our own binaries on localhost, so corruption is a bug, not an attack
// to survive. The v2 *keyed* frames (below) are the exception: they are
// the service fabric's data plane, and their decoders reject (return
// false) instead of aborting, so a node can drop-and-count a mangled
// keyed frame without taking the whole cluster down with it.
//
// Versioning: kWireVersion is 2 since the keyed envelope landed. v1
// frames (types 1..11) still decode byte-identically — FrameView
// accepts both versions and only rejects a type outside the sending
// version's vocabulary, so a v1 peer's traffic stays readable (the
// back-compat test in test_wire pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/message.hpp"
#include "sim/types.hpp"

namespace dcnt::net {

inline constexpr std::uint8_t kWireVersion = 2;
/// The pre-keyed-envelope format; still decoded (types 1..11 only).
inline constexpr std::uint8_t kWireVersionV1 = 1;
/// Upper bound on one frame's payload; protects against a corrupt
/// length word committing us to a gigabyte read.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,     ///< node -> controller: id + data-plane ports
  kPeers = 2,     ///< controller -> node: everyone's ports
  kReady = 3,     ///< node -> controller: peer mesh established
  kStart = 4,     ///< controller -> node: begin op at an owned processor
  kComplete = 5,  ///< node -> controller: op finished with value
  kMsg = 6,       ///< node -> node: one protocol Message
  kStatsRequest = 7,  ///< controller -> node: report counters now
  kStats = 8,         ///< node -> controller: counters + per-proc loads
  kShutdown = 9,      ///< controller -> node: flush stats reply and exit
  /// controller -> node: the cluster is idle except for armed timers;
  /// fire them now instead of waiting out their wall deadlines. The
  /// distributed analogue of the simulator's idle clock-jump — only the
  /// controller can see global idleness, so it pulls the trigger.
  kTimeJump = 10,
  /// controller -> node: zero the message-load metrics and remember the
  /// current transport counters as the new baseline. Broadcast at a
  /// quiescent barrier after the warmup phase, so cold-start traffic
  /// never appears in the measured stats.
  kMetricsReset = 11,

  // --- v2: the service fabric's keyed envelope (wire version 2) ---

  /// node -> node: one protocol Message plus the counter key it belongs
  /// to. kMsg with a key_id prefix; the multi-key fabric's data plane.
  kKeyedMsg = 12,
  /// controller -> node: a batch of keyed op starts for processors this
  /// node owns, split into individual kStart events at the receiver.
  kStartBatch = 13,
  /// node -> controller: completions coalesced per drain round — the
  /// reply half of the batched multi-key RPC.
  kCompleteBatch = 14,
  /// node -> controller: per-key per-processor loads + LRU tier
  /// counters, chunked so 100k-key runs never exceed kMaxFramePayload.
  kKeyedStats = 15,
  /// controller -> node: report keyed stats now (sent once, after the
  /// final quiescence barrier — per-key loads are an end-of-run report,
  /// not part of the barrier).
  kKeyedStatsRequest = 16,
};

struct HelloFrame {
  std::uint32_t node_id{0};
  std::uint16_t tcp_port{0};  ///< peer-mesh listener (0 in UDP mode)
  std::uint16_t udp_port{0};  ///< data-plane datagram socket (0 in TCP mode)
};

struct PeerAddr {
  std::uint32_t node_id{0};
  std::uint16_t tcp_port{0};
  std::uint16_t udp_port{0};
};

struct PeersFrame {
  std::vector<PeerAddr> peers;  ///< one entry per node, id order
};

struct ReadyFrame {
  std::uint32_t node_id{0};
};

struct StartFrame {
  OpId op{kNoOp};
  ProcessorId origin{kNoProcessor};
  std::vector<std::int64_t> args;  ///< empty = plain inc
};

struct CompleteFrame {
  OpId op{kNoOp};
  Value value{0};
};

/// Per-processor load triple; only processors the reporting node owns
/// appear, so the controller's merge is exact (each processor is owned
/// by exactly one node).
struct ProcLoad {
  ProcessorId pid{kNoProcessor};
  std::int64_t sent{0};
  std::int64_t received{0};
  std::int64_t words{0};
};

struct StatsFrame {
  std::uint32_t node_id{0};
  /// Monotone progress counter: every handled event (message delivery,
  /// op start, timer firing) bumps it. Two identical consecutive
  /// snapshots across all nodes = nothing moved between the rounds.
  std::int64_t events_processed{0};
  /// Data-plane frames actually handed to the kernel / received from it
  /// (UDP: after injected drops).
  std::int64_t wire_msgs_sent{0};
  std::int64_t wire_msgs_received{0};
  std::int64_t wire_bytes_sent{0};
  std::int64_t wire_bytes_received{0};
  /// Datagrams suppressed by the seeded loss shim (UDP lossy mode).
  std::int64_t injected_drops{0};
  /// Reliable-transport envelopes still awaiting an ack (0 in TCP
  /// mode). Nonzero means retransmissions are coming: not quiescent.
  std::int64_t unacked{0};
  /// Armed send_local timers. Pending work too, but reported separately
  /// because the controller can fast-forward it (kTimeJump) once
  /// everything else has settled.
  std::int64_t timers_armed{0};
  std::int64_t retransmissions{0};
  std::int64_t duplicates_suppressed{0};
  std::int64_t messages_abandoned{0};
  /// write()/send() syscalls the data plane issued (TCP mode; one
  /// sendto per datagram in UDP mode). wire_bytes_sent divided by this
  /// is bytes-per-syscall — the direct observable for send coalescing.
  std::int64_t wire_write_syscalls{0};
  std::vector<ProcLoad> loads;
};

/// One keyed op start inside a kStartBatch.
struct StartBatchEntry {
  OpId op{kNoOp};
  ProcessorId origin{kNoProcessor};
  KeyId key{0};
};

struct StartBatchFrame {
  std::vector<StartBatchEntry> ops;
};

/// One completion inside a kCompleteBatch.
struct CompleteBatchEntry {
  OpId op{kNoOp};
  Value value{0};
};

struct CompleteBatchFrame {
  std::vector<CompleteBatchEntry> completions;
};

/// One (key, processor) load slice inside a kKeyedStats chunk.
struct KeyProcLoad {
  KeyId key{0};
  ProcessorId pid{kNoProcessor};
  std::int64_t sent{0};
  std::int64_t received{0};
};

/// One chunk of a node's per-key report. Chunked because a 100k-key run
/// has too many (key, processor) slices for a single frame; `last`
/// marks the final chunk. The LRU counters ride in every chunk (the
/// controller reads them from the last one).
struct KeyedStatsFrame {
  std::uint32_t node_id{0};
  bool last{true};
  std::int64_t lru_hits{0};
  std::int64_t lru_misses{0};
  std::int64_t lru_evicts{0};
  std::int64_t lru_rehydrates{0};
  std::vector<KeyProcLoad> loads;
};

/// Max (key, processor) slices per kKeyedStats chunk: 28 bytes each,
/// comfortably under kMaxFramePayload with header room to spare.
inline constexpr std::size_t kKeyedStatsChunk = 16384;

// --- encoding -------------------------------------------------------------

std::vector<std::uint8_t> encode_hello(const HelloFrame& f);
std::vector<std::uint8_t> encode_peers(const PeersFrame& f);
std::vector<std::uint8_t> encode_ready(const ReadyFrame& f);
std::vector<std::uint8_t> encode_start(const StartFrame& f);
std::vector<std::uint8_t> encode_complete(const CompleteFrame& f);
std::vector<std::uint8_t> encode_message(const Message& msg);
/// Appends one complete kMsg frame (length word included) to `out`
/// without any intermediate buffer — the zero-allocation path for hot
/// data-plane sends: encode straight into a connection's outbound queue
/// or a reused datagram scratch buffer, coalescing many messages into
/// one write(). Returns the number of bytes appended.
std::size_t append_message(std::vector<std::uint8_t>& out, const Message& msg);
std::vector<std::uint8_t> encode_stats_request();
std::vector<std::uint8_t> encode_stats(const StatsFrame& f);
std::vector<std::uint8_t> encode_shutdown();
std::vector<std::uint8_t> encode_time_jump();
std::vector<std::uint8_t> encode_metrics_reset();

// v2 keyed envelope. append_* are the zero-allocation hot paths,
// mirroring append_message: encode straight into the connection's
// outbound queue.
std::vector<std::uint8_t> encode_keyed_message(const Message& msg);
/// Appends one complete kKeyedMsg frame carrying msg.key; requires
/// msg.key != kNoKey. Returns bytes appended.
std::size_t append_keyed_message(std::vector<std::uint8_t>& out,
                                 const Message& msg);
std::vector<std::uint8_t> encode_start_batch(const StartBatchFrame& f);
std::vector<std::uint8_t> encode_complete_batch(const CompleteBatchFrame& f);
/// Appends one complete kCompleteBatch frame. Returns bytes appended.
std::size_t append_complete_batch(std::vector<std::uint8_t>& out,
                                  const CompleteBatchFrame& f);
std::vector<std::uint8_t> encode_keyed_stats(const KeyedStatsFrame& f);
std::vector<std::uint8_t> encode_keyed_stats_request();

// --- decoding -------------------------------------------------------------

/// A complete frame's payload (version + type + body, the length word
/// stripped). The constructor DCNT_CHECKs the version (v1 and v2 both
/// accepted); `type()` additionally rejects types outside the frame's
/// own version's vocabulary, so a v1-stamped keyed frame aborts.
class FrameView {
 public:
  FrameView(const std::uint8_t* data, std::size_t size);

  FrameType type() const;
  std::uint8_t version() const { return data_[0]; }
  /// Body bytes (after version + type).
  const std::uint8_t* body() const { return data_ + 2; }
  std::size_t body_size() const { return size_ - 2; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
};

HelloFrame decode_hello(const FrameView& frame);
PeersFrame decode_peers(const FrameView& frame);
ReadyFrame decode_ready(const FrameView& frame);
StartFrame decode_start(const FrameView& frame);
CompleteFrame decode_complete(const FrameView& frame);
Message decode_message(const FrameView& frame);
StatsFrame decode_stats(const FrameView& frame);

// v2 keyed decoders: hardened, non-aborting. Each validates the body
// completely (field bounds, key_id >= 0, exact length) and returns
// false on any malformation — the caller drops and counts the frame.
// They still DCNT_CHECK the frame *type*: dispatching the wrong type
// here is a local bug, not wire corruption.
bool decode_keyed_message(const FrameView& frame, Message* out);
bool decode_start_batch(const FrameView& frame, StartBatchFrame* out);
bool decode_complete_batch(const FrameView& frame, CompleteBatchFrame* out);
bool decode_keyed_stats(const FrameView& frame, KeyedStatsFrame* out);

/// Incremental frame extractor for a TCP byte stream (also used one
/// datagram at a time for UDP, where the kernel preserves boundaries).
/// Feed arbitrary chunks; pop complete payloads as they materialize.
class FrameReader {
 public:
  void feed(const std::uint8_t* data, std::size_t size);

  /// Moves the next complete payload (version + type + body) into `out`
  /// and returns true, or returns false if none is buffered.
  bool pop(std::vector<std::uint8_t>& out);

  std::size_t buffered_bytes() const { return buffer_.size() - head_; }

  /// Moves out the unconsumed bytes (a partial frame, typically empty),
  /// leaving the reader empty. Used when a connection migrates between
  /// event loops: the old loop surrenders what it read past the last
  /// complete frame so the adopting loop's reader can resume mid-stream.
  std::vector<std::uint8_t> take_buffered() {
    std::vector<std::uint8_t> out(buffer_.begin() + static_cast<long>(head_),
                                  buffer_.end());
    buffer_.clear();
    head_ = 0;
    return out;
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t head_{0};  ///< consumed prefix, compacted lazily
};

}  // namespace dcnt::net
