#include "net/node.hpp"

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "harness/factory.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt::net {

namespace {

using WallClock = std::chrono::steady_clock;

/// An armed Context::send_local wake-up. Ordered by wall deadline with a
/// sequence tiebreak so same-deadline timers fire in arming order (the
/// simulator's FIFO-per-timestamp rule).
struct Timer {
  WallClock::time_point wall_due;
  std::uint64_t seq{0};
  SimTime logical_due{0};
  Message msg;
};

struct TimerLater {
  bool operator()(const Timer& a, const Timer& b) const {
    if (a.wall_due != b.wall_due) return a.wall_due > b.wall_due;
    return a.seq > b.seq;
  }
};

/// The node process: protocol shard + sockets + event/timer loop. Also
/// the Context its protocol handlers see — sends are routed by
/// destination ownership (local queue vs wire), send_local becomes a
/// wall-clock timer, complete becomes a frame to the controller.
class NodeRuntime final : public Context {
 public:
  explicit NodeRuntime(const NodeConfig& cfg)
      : cfg_(cfg),
        rng_(Rng(cfg.seed).fork(cfg.node_id + 1)),
        // Distinct stream for the loss shim so dropping datagrams never
        // perturbs the protocol's own randomness.
        drop_rng_(Rng(mix64(cfg.seed ^ 0x10551055ull)).fork(cfg.node_id + 1)) {}

  int run();

  // Context: ---------------------------------------------------------------
  void send(Message msg) override;
  void send_local(ProcessorId p, std::int32_t tag,
                  std::vector<std::int64_t> args, SimTime delay) override;
  void complete(OpId op, Value value) override;
  SimTime now() const override { return clock_; }
  Rng& rng() override { return rng_; }

 private:
  bool owns(ProcessorId p) const {
    return static_cast<std::uint32_t>(p) % cfg_.num_nodes == cfg_.node_id;
  }
  std::uint32_t owner(ProcessorId p) const {
    return static_cast<std::uint32_t>(p) % cfg_.num_nodes;
  }

  void build_protocol();
  void on_ctrl_frame(const FrameView& frame);
  void on_peer_accept(Socket accepted);
  void on_peer_frame(int conn, const FrameView& frame);
  void on_datagram(const FrameView& frame);
  void maybe_ready();
  void deliver(Message msg);
  void deliver_start(const StartFrame& start);
  void drain();
  void time_jump();
  void reset_metrics();
  void send_stats();
  int poll_timeout_ms() const;

  NodeConfig cfg_;
  Rng rng_;
  Rng drop_rng_;

  std::unique_ptr<CounterProtocol> protocol_;
  ReliableTransport* transport_{nullptr};  ///< set in UDP mode
  std::int64_t n_{0};
  Metrics metrics_;

  EventLoop loop_;
  int ctrl_conn_{-1};
  bool ctrl_closed_{false};
  std::vector<PeerAddr> peers_;
  std::vector<int> peer_conn_;  ///< node id -> connection id (TCP mesh)
  std::size_t peer_links_{0};
  bool ready_sent_{false};
  bool stats_requested_{false};
  bool time_jump_requested_{false};
  bool shutdown_{false};

  std::deque<Message> local_queue_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  std::uint64_t timer_seq_{0};

  SimTime clock_{0};
  bool in_handler_{false};
  OpId current_op_{kNoOp};

  std::int64_t events_{0};
  std::int64_t wire_msgs_sent_{0};
  std::int64_t wire_msgs_received_{0};
  std::int64_t wire_bytes_sent_{0};
  std::int64_t wire_bytes_received_{0};
  std::int64_t injected_drops_{0};

  /// Counter values captured at the last kMetricsReset; send_stats
  /// reports deltas against these so warmup traffic never shows up in
  /// the measured stats. events_processed stays monotone (a constant
  /// offset), so the controller's stability barrier is unaffected.
  struct Baseline {
    std::int64_t events{0};
    std::int64_t wire_msgs_sent{0};
    std::int64_t wire_msgs_received{0};
    std::int64_t wire_bytes_sent{0};
    std::int64_t wire_bytes_received{0};
    std::int64_t injected_drops{0};
    std::int64_t write_syscalls{0};
    std::int64_t retransmissions{0};
    std::int64_t duplicates_suppressed{0};
    std::int64_t messages_abandoned{0};
  } base_;
};

void NodeRuntime::build_protocol() {
  auto counter =
      make_counter(counter_kind_from_string(cfg_.counter), cfg_.min_processors);
  n_ = static_cast<std::int64_t>(counter->num_processors());
  if (cfg_.num_nodes > 1) {
    DCNT_CHECK_MSG(counter->shard_safe(),
                   "multi-node cluster requires a shard-safe protocol");
    // Same contract as the threaded runtime: switch off cross-processor
    // debug aids before any handler runs. Must reach the inner protocol,
    // so it happens before the transport wrap.
    counter->on_shard_start(cfg_.num_nodes);
  }
  if (cfg_.udp) {
    auto wrapped =
        std::make_unique<ReliableTransport>(std::move(counter), cfg_.retry);
    transport_ = wrapped.get();
    protocol_ = std::move(wrapped);
  } else {
    protocol_ = std::move(counter);
  }
  metrics_ = Metrics(static_cast<std::size_t>(n_));
}

void NodeRuntime::send(Message msg) {
  DCNT_CHECK_MSG(in_handler_, "Context::send outside a handler");
  DCNT_CHECK(!msg.local);
  DCNT_CHECK(msg.src >= 0 && msg.src < n_);
  DCNT_CHECK(msg.dst >= 0 && msg.dst < n_);
  DCNT_CHECK_MSG(owns(msg.src), "handler sent on behalf of a remote processor");
  if (msg.op == kNoOp) msg.op = current_op_;  // inherit from context
  if (msg.src != msg.dst) {
    metrics_.on_send(msg.src, msg.op, msg.size_words());
  }
  if (owns(msg.dst)) {
    local_queue_.push_back(std::move(msg));
    return;
  }
  const PeerAddr& peer = peers_.at(owner(msg.dst));
  if (cfg_.udp) {
    if (cfg_.drop_probability > 0.0 &&
        drop_rng_.next_double() < cfg_.drop_probability) {
      ++injected_drops_;
      return;
    }
    // A kernel refusal (full buffers) is just loss with extra steps; the
    // reliable transport's retransmission covers both.
    const std::size_t sent = loop_.send_datagram_message(peer.udp_port, msg);
    if (sent != 0) {
      ++wire_msgs_sent_;
      wire_bytes_sent_ += static_cast<std::int64_t>(sent);
    }
    return;
  }
  // Encoded straight into the connection's outbound queue; the bytes
  // leave coalesced with everything else queued this drain round.
  const std::size_t queued =
      loop_.send_message(peer_conn_.at(peer.node_id), msg);
  ++wire_msgs_sent_;
  wire_bytes_sent_ += static_cast<std::int64_t>(queued);
}

void NodeRuntime::send_local(ProcessorId p, std::int32_t tag,
                             std::vector<std::int64_t> args, SimTime delay) {
  DCNT_CHECK(p >= 0 && p < n_);
  DCNT_CHECK_MSG(owns(p), "send_local to a processor on another node");
  DCNT_CHECK(delay >= 0);
  Message msg;
  msg.src = p;
  msg.dst = p;
  msg.tag = tag;
  msg.op = current_op_;
  msg.args = std::move(args);
  msg.local = true;
  Timer t;
  t.wall_due =
      WallClock::now() + std::chrono::microseconds(delay * cfg_.tick_us);
  t.seq = timer_seq_++;
  t.logical_due = clock_ + delay;
  t.msg = std::move(msg);
  timers_.push(std::move(t));
}

void NodeRuntime::complete(OpId op, Value value) {
  loop_.send(ctrl_conn_, encode_complete(CompleteFrame{op, value}));
}

void NodeRuntime::deliver(Message msg) {
  if (!msg.local && msg.src != msg.dst) {
    metrics_.on_receive(msg.dst, msg.size_words());
  }
  DCNT_CHECK(!in_handler_);
  in_handler_ = true;
  current_op_ = msg.op;
  protocol_->on_message(*this, msg);
  in_handler_ = false;
  current_op_ = kNoOp;
  ++events_;
  ++clock_;
}

void NodeRuntime::deliver_start(const StartFrame& start) {
  DCNT_CHECK(start.origin >= 0 && start.origin < n_);
  DCNT_CHECK_MSG(owns(start.origin),
                 "Start frame routed to the wrong node");
  DCNT_CHECK(!in_handler_);
  in_handler_ = true;
  current_op_ = start.op;
  if (start.args.empty()) {
    protocol_->start_inc(*this, start.origin, start.op);
  } else {
    protocol_->start_op(*this, start.origin, start.op, start.args);
  }
  in_handler_ = false;
  current_op_ = kNoOp;
  ++events_;
  ++clock_;
}

void NodeRuntime::drain() {
  for (;;) {
    if (!local_queue_.empty()) {
      Message msg = std::move(local_queue_.front());
      local_queue_.pop_front();
      deliver(std::move(msg));
      continue;
    }
    if (!timers_.empty() && timers_.top().wall_due <= WallClock::now()) {
      Timer t = timers_.top();
      timers_.pop();
      // The logical clock cannot jump at global idleness the way the
      // simulator's does (no node sees the whole system); it jumps when
      // the timer's wall deadline arrives instead, keeping deadline
      // arithmetic against now() monotone.
      if (clock_ < t.logical_due) clock_ = t.logical_due;
      deliver(std::move(t.msg));
      continue;
    }
    return;
  }
}

void NodeRuntime::time_jump() {
  // Fire the timers armed at this instant without waiting out their
  // wall deadlines — the controller has certified the cluster idle
  // (stable events, no unacked envelopes, no wire traffic in flight),
  // which is exactly when the simulator would jump its clock. Timers
  // armed by the cascades this triggers keep their wall deadlines; the
  // controller re-evaluates and jumps again if the cluster settles with
  // timers still pending.
  std::size_t budget = timers_.size();
  while (budget-- > 0 && !timers_.empty()) {
    Timer t = timers_.top();
    timers_.pop();
    if (clock_ < t.logical_due) clock_ = t.logical_due;
    deliver(std::move(t.msg));
    drain();
  }
}

void NodeRuntime::on_ctrl_frame(const FrameView& frame) {
  switch (frame.type()) {
    case FrameType::kPeers: {
      peers_ = decode_peers(frame).peers;
      DCNT_CHECK(peers_.size() == cfg_.num_nodes);
      peer_conn_.assign(cfg_.num_nodes, -1);
      if (!cfg_.udp) {
        // Deterministic mesh construction: node i dials every peer with
        // a smaller id and sends a Hello to identify itself; larger ids
        // dial us and we learn who they are from their Hello.
        for (std::uint32_t id = 0; id < cfg_.node_id; ++id) {
          Socket sock = tcp_connect(peers_[id].tcp_port, 15000);
          const int conn = loop_.add_connection(
              std::move(sock),
              [this](int c, const FrameView& f) { on_peer_frame(c, f); },
              [](int) {});
          peer_conn_[id] = conn;
          ++peer_links_;
          loop_.send(conn, encode_hello(HelloFrame{cfg_.node_id, 0, 0}));
        }
      }
      maybe_ready();
      return;
    }
    case FrameType::kStart:
      deliver_start(decode_start(frame));
      return;
    case FrameType::kStatsRequest:
      stats_requested_ = true;
      return;
    case FrameType::kTimeJump:
      time_jump_requested_ = true;
      return;
    case FrameType::kMetricsReset:
      reset_metrics();
      // Ack with a Ready frame: the controller must not issue measured
      // Starts until every node has re-baselined, or a fast peer's
      // first measured message could reach us ahead of our own reset
      // (TCP orders per connection, not across them) and be absorbed
      // into the baseline — leaving the global sent/received counts
      // permanently skewed and the quiescence barrier unsatisfiable.
      loop_.send(ctrl_conn_, encode_ready(ReadyFrame{cfg_.node_id}));
      return;
    case FrameType::kShutdown:
      shutdown_ = true;
      return;
    default:
      DCNT_CHECK_MSG(false, "unexpected frame type on the control channel");
  }
}

void NodeRuntime::on_peer_accept(Socket accepted) {
  loop_.add_connection(
      std::move(accepted),
      [this](int c, const FrameView& f) { on_peer_frame(c, f); },
      // Peers close their sockets as they shut down, possibly before our
      // own Shutdown frame arrives; by then the quiescence barrier has
      // certified no data is in flight, so a close is never data loss.
      [](int) {});
}

void NodeRuntime::on_peer_frame(int conn, const FrameView& frame) {
  if (frame.type() == FrameType::kHello) {
    const HelloFrame hello = decode_hello(frame);
    DCNT_CHECK(hello.node_id < cfg_.num_nodes);
    DCNT_CHECK(peer_conn_.at(hello.node_id) == -1);
    peer_conn_[hello.node_id] = conn;
    ++peer_links_;
    maybe_ready();
    return;
  }
  DCNT_CHECK(frame.type() == FrameType::kMsg);
  ++wire_msgs_received_;
  wire_bytes_received_ += static_cast<std::int64_t>(frame.body_size()) + 6;
  Message msg = decode_message(frame);
  DCNT_CHECK(owns(msg.dst));
  local_queue_.push_back(std::move(msg));
}

void NodeRuntime::on_datagram(const FrameView& frame) {
  DCNT_CHECK(frame.type() == FrameType::kMsg);
  ++wire_msgs_received_;
  wire_bytes_received_ += static_cast<std::int64_t>(frame.body_size()) + 6;
  Message msg = decode_message(frame);
  DCNT_CHECK(owns(msg.dst));
  local_queue_.push_back(std::move(msg));
}

void NodeRuntime::maybe_ready() {
  if (ready_sent_ || peers_.empty()) return;
  const std::size_t expected =
      cfg_.udp ? 0 : static_cast<std::size_t>(cfg_.num_nodes) - 1;
  if (peer_links_ < expected) return;
  ready_sent_ = true;
  loop_.send(ctrl_conn_, encode_ready(ReadyFrame{cfg_.node_id}));
}

void NodeRuntime::reset_metrics() {
  metrics_ = Metrics(static_cast<std::size_t>(n_));
  base_.events = events_;
  base_.wire_msgs_sent = wire_msgs_sent_;
  base_.wire_msgs_received = wire_msgs_received_;
  base_.wire_bytes_sent = wire_bytes_sent_;
  base_.wire_bytes_received = wire_bytes_received_;
  base_.injected_drops = injected_drops_;
  base_.write_syscalls = loop_.write_syscalls();
  if (transport_ != nullptr) {
    const RetryStats& rs = transport_->stats();
    base_.retransmissions = rs.retransmissions;
    base_.duplicates_suppressed = rs.duplicates_suppressed;
    base_.messages_abandoned = rs.messages_abandoned;
  }
}

void NodeRuntime::send_stats() {
  StatsFrame s;
  s.node_id = cfg_.node_id;
  // events_processed keeps its full monotone value (minus a constant
  // baseline) so the controller's two-stable-rounds comparison works
  // across a reset; the traffic counters are reported as deltas.
  s.events_processed = events_ - base_.events;
  s.wire_msgs_sent = wire_msgs_sent_ - base_.wire_msgs_sent;
  s.wire_msgs_received = wire_msgs_received_ - base_.wire_msgs_received;
  s.wire_bytes_sent = wire_bytes_sent_ - base_.wire_bytes_sent;
  s.wire_bytes_received = wire_bytes_received_ - base_.wire_bytes_received;
  s.injected_drops = injected_drops_ - base_.injected_drops;
  s.wire_write_syscalls = loop_.write_syscalls() - base_.write_syscalls;
  s.timers_armed = static_cast<std::int64_t>(timers_.size());
  if (transport_ != nullptr) {
    s.unacked = transport_->unacked_total();
    const RetryStats& rs = transport_->stats();
    s.retransmissions = rs.retransmissions - base_.retransmissions;
    s.duplicates_suppressed = rs.duplicates_suppressed - base_.duplicates_suppressed;
    s.messages_abandoned = rs.messages_abandoned - base_.messages_abandoned;
  }
  for (ProcessorId p = static_cast<ProcessorId>(cfg_.node_id); p < n_;
       p += static_cast<ProcessorId>(cfg_.num_nodes)) {
    ProcLoad load;
    load.pid = p;
    load.sent = metrics_.sent(p);
    load.received = metrics_.received(p);
    load.words = metrics_.word_load(p);
    s.loads.push_back(load);
  }
  loop_.send(ctrl_conn_, encode_stats(s));
}

int NodeRuntime::poll_timeout_ms() const {
  if (!local_queue_.empty()) return 0;
  if (timers_.empty()) return 100;
  const auto now = WallClock::now();
  const auto due = timers_.top().wall_due;
  if (due <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(due - now).count() +
      1;
  return static_cast<int>(ms < 100 ? ms : 100);
}

int NodeRuntime::run() {
  build_protocol();
  DCNT_CHECK_MSG(cfg_.ctrl_port != 0, "node needs --ctrl_port");
  Socket ctrl = tcp_connect(cfg_.ctrl_port, 15000);
  ctrl_conn_ = loop_.add_connection(
      std::move(ctrl),
      [this](int, const FrameView& f) { on_ctrl_frame(f); },
      [this](int) { ctrl_closed_ = true; });

  std::uint16_t tcp_port = 0;
  std::uint16_t udp_port = 0;
  if (!cfg_.udp && cfg_.num_nodes > 1) {
    Socket listener = tcp_listen(&tcp_port);
    loop_.add_listener(std::move(listener),
                       [this](Socket s) { on_peer_accept(std::move(s)); });
  }
  if (cfg_.udp) {
    Socket udp = udp_bind(&udp_port);
    loop_.add_udp(std::move(udp),
                  [this](const FrameView& f) { on_datagram(f); });
  }
  loop_.send(ctrl_conn_,
             encode_hello(HelloFrame{cfg_.node_id, tcp_port, udp_port}));

  while (!shutdown_) {
    DCNT_CHECK_MSG(!ctrl_closed_, "controller connection lost");
    drain();
    if (time_jump_requested_) {
      time_jump_requested_ = false;
      time_jump();
    }
    if (stats_requested_) {
      // Replying only after the drain means a Stats snapshot never
      // reports a received wire message it has not yet processed — the
      // property the controller's two-stable-rounds barrier leans on.
      stats_requested_ = false;
      send_stats();
    }
    if (shutdown_) break;
    loop_.run_once(poll_timeout_ms());
  }
  // Flush any queued control-plane bytes (the final Stats reply) before
  // the destructors close the sockets.
  while (loop_.backlog()) loop_.run_once(10);
  return 0;
}

}  // namespace

int run_node(const NodeConfig& config) {
  NodeRuntime node(config);
  return node.run();
}

}  // namespace dcnt::net
