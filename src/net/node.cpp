#include "net/node.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "harness/factory.hpp"
#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "runtime/mailbox.hpp"
#include "runtime/threaded_runtime.hpp"
#include "service/multi_counter.hpp"
#include "sim/metrics.hpp"
#include "sim/protocol.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace dcnt::net {

namespace {

/// One unit of work for an event-loop thread. Commands are handed over
/// through a MailboxT<LoopCmd> (batched push_all from the runtime's
/// remote sink, single push elsewhere) and processed strictly in FIFO
/// order — the snapshot protocol below leans on that ordering.
struct LoopCmd {
  enum class Kind : std::uint8_t {
    /// Put one protocol message on the wire (TCP queue or datagram).
    kSendData,
    /// Write a pre-encoded control-plane frame to the controller
    /// connection. Loop 0 only (it owns the control connection).
    kCtrlBytes,
    /// Stage one completed op (multi-key mode). Loop 0 accumulates
    /// these and flushes one kCompleteBatch frame per drain round —
    /// the reply half of the batched multi-key RPC.
    kComplete,
    /// Publish this loop's wire counters at `epoch` (see
    /// NodeV2::stable_quiesce).
    kSnapshot,
    /// Adopt a peer connection accepted (and identified) by loop 0:
    /// `sock` plus `bytes` of residual input read past the Hello.
    kAdopt,
    /// Dial peer `peer` at TCP port `port` and send our Hello.
    kDial,
    /// Install the cluster address table (UDP sends need peer ports).
    kSetPeers,
    /// Drain outbound backlog and exit the loop thread.
    kStop,
  };
  Kind kind{Kind::kSendData};
  Message msg;                      ///< kSendData
  std::vector<std::uint8_t> bytes;  ///< kCtrlBytes frame / kAdopt residual
  OpId op{kNoOp};                   ///< kComplete
  Value value{0};                   ///< kComplete
  std::uint64_t epoch{0};           ///< kSnapshot
  std::uint32_t peer{0};            ///< kAdopt / kDial
  std::uint16_t port{0};            ///< kDial
  Socket sock;                      ///< kAdopt
  std::vector<PeerAddr> peers;      ///< kSetPeers
};

/// A loop's wire counters at one snapshot epoch, composed by the owning
/// loop thread and published release-ordered for the main thread.
struct WireSnap {
  std::int64_t wire_msgs_sent{0};
  std::int64_t wire_msgs_received{0};
  std::int64_t wire_bytes_sent{0};
  std::int64_t wire_bytes_received{0};
  std::int64_t injected_drops{0};
  std::int64_t write_syscalls{0};
  /// Commands still unhandled at snapshot time plus unflushed outbound
  /// backlog: nonzero means this loop had not yet drained everything it
  /// was asked to do, so the snapshot round must be retried.
  std::int64_t pending{0};
};

/// Events the loop threads raise for the coordinating main thread.
struct MainEvent {
  enum class Kind : std::uint8_t {
    kPeersReceived,
    kLinkUp,
    kStatsRequest,
    kKeyedStatsRequest,
    kTimeJump,
    kMetricsReset,
    kShutdown,
    kCtrlClosed,
  };
  Kind kind{Kind::kLinkUp};
};

/// The v2 node process: `loops` reactor threads feeding a ThreadedRuntime
/// of `shards` protocol workers, coordinated by the main thread (see the
/// header comment in node.hpp for the full threading model).
class NodeV2 {
 public:
  explicit NodeV2(const NodeConfig& cfg) : cfg_(cfg) {}
  int run();

 private:
  struct LoopThread {
    LoopThread(std::size_t index_in, Backend backend)
        : index(index_in), loop(backend) {}

    const std::size_t index;
    EventLoop loop;
    MailboxT<LoopCmd> cmds;
    /// True while the loop thread is inside (or committing to enter)
    /// run_once's kernel wait; producers notify() only then. The
    /// seq_cst fences on both sides make the classic sleep/wake race
    /// impossible (see post_cmd / loop_main).
    std::atomic<bool> in_wait{false};

    /// Snapshot slot: written by the loop thread, sequenced by the
    /// epoch store/load pair.
    WireSnap snap;
    std::atomic<std::uint64_t> snap_epoch{0};

    // Everything below is touched only by the owning loop thread (or by
    // the main thread before the thread starts / after it joins).
    std::vector<int> peer_conn;   ///< node id -> connection id (TCP)
    std::vector<PeerAddr> peers;  ///< cluster address table (UDP sends)
    Rng drop_rng{1};
    std::int64_t wire_msgs_sent{0};
    std::int64_t wire_msgs_received{0};
    std::int64_t wire_bytes_sent{0};
    std::int64_t wire_bytes_received{0};
    std::int64_t injected_drops{0};
    /// Malformed kKeyedMsg frames dropped by the hardened decoder (the
    /// fabric data plane rejects instead of aborting).
    std::int64_t keyed_rejects{0};
    /// Completions staged by kComplete commands (loop 0, multi-key
    /// mode), flushed as one kCompleteBatch per drain round.
    CompleteBatchFrame complete_buf;
    std::vector<std::uint8_t> complete_scratch;
    /// Wire-arrived runtime events staged per destination shard, handed
    /// to the runtime with one inject() per dirty shard.
    std::vector<std::vector<RuntimeEvent>> inject_buf;
    std::vector<std::size_t> inject_dirty;

    std::thread thread;
  };

  void build_runtime();
  void setup_loop0(std::uint16_t* tcp_port, std::uint16_t* udp_port);

  // Loop-thread code:
  void loop_main(LoopThread& lt);
  void handle_cmd(LoopThread& lt, LoopCmd& cmd, std::size_t remaining,
                  bool& stop);
  void send_wire(LoopThread& lt, Message& msg);
  void on_ctrl_frame(LoopThread& lt0, const FrameView& frame);
  void on_peer_frame(LoopThread& lt, int conn, const FrameView& frame);
  void on_datagram(LoopThread& lt, const FrameView& frame);
  void stage_wire_message(LoopThread& lt, const FrameView& frame);
  void stage_start(LoopThread& lt, StartFrame start);
  void flush_inject(LoopThread& lt);
  void flush_completes(LoopThread& lt);

  // Cross-thread handoff:
  void post_cmd(LoopThread& lt, LoopCmd cmd);
  void post_cmds(LoopThread& lt, std::vector<LoopCmd>& batch);
  void post_ctrl(std::vector<std::uint8_t> frame);
  void post_main(MainEvent::Kind kind) { main_events_.push(MainEvent{kind}); }

  // Main-thread code:
  void maybe_ready();
  void stable_quiesce();
  void send_stats();
  void send_keyed_stats();
  void time_jump();
  void handle_reset();

  std::uint32_t owner_node(ProcessorId p) const {
    return static_cast<std::uint32_t>(p) % cfg_.num_nodes;
  }
  std::size_t owner_loop(std::uint32_t node) const {
    return node % loops_.size();
  }

  NodeConfig cfg_;
  std::unique_ptr<ThreadedRuntime> runtime_;
  ReliableTransport* transport_{nullptr};  ///< set in UDP mode
  service::MultiCounter* fabric_{nullptr};  ///< set when cfg_.keys > 0
  bool keyed_{false};                       ///< cfg_.keys > 0
  std::int64_t n_{0};
  std::size_t shards_{1};
  /// --shards=0: loop 0 drives the runtime's single shard itself.
  bool inline_{false};

  std::vector<std::unique_ptr<LoopThread>> loops_;
  int ctrl_conn_{-1};

  MailboxT<MainEvent> main_events_;
  std::atomic<bool> never_stop_{false};

  // Main-thread state:
  bool peers_seen_{false};
  std::size_t links_{0};
  std::size_t expected_links_{0};
  bool ready_sent_{false};
  std::uint64_t epoch_{0};
  /// Values captured by the last stable_quiesce(), all from one
  /// validated idle window.
  std::int64_t events_cache_{0};
  std::int64_t timers_cache_{0};
  std::int64_t unacked_cache_{0};
  Metrics metrics_cache_{1};

  /// Counter values captured at the last kMetricsReset; send_stats
  /// reports deltas against these so warmup traffic never shows up in
  /// the measured stats. events_processed stays monotone (a constant
  /// offset), so the controller's stability barrier is unaffected.
  /// Processor loads need no baseline: the runtime's shard metrics are
  /// zeroed in place at reset.
  struct Baseline {
    std::int64_t events{0};
    std::vector<WireSnap> snaps;  ///< one per loop
    std::int64_t retransmissions{0};
    std::int64_t duplicates_suppressed{0};
    std::int64_t messages_abandoned{0};
  } base_;
};

void NodeV2::build_runtime() {
  auto counter =
      make_counter(counter_kind_from_string(cfg_.counter), cfg_.min_processors);
  n_ = static_cast<std::int64_t>(counter->num_processors());
  if (cfg_.num_nodes > 1) {
    DCNT_CHECK_MSG(counter->shard_safe(),
                   "multi-node cluster requires a shard-safe protocol");
  }
  keyed_ = cfg_.keys > 0;
  if (keyed_) {
    // Multi-key mode: the fabric multiplexes cfg_.keys instances of the
    // counter over the same processor set. Its routing seed must be the
    // *shared* base seed — offset(key) has to agree on every node, or
    // the two ends of a keyed message would translate inner argument
    // words with different rotations. (The runtime below still gets the
    // per-node mixed seed for its rng streams.)
    service::MultiCounterOptions mc;
    mc.seed = cfg_.seed;
    mc.capacity = static_cast<std::size_t>(cfg_.key_capacity);
    auto fabric =
        std::make_unique<service::MultiCounter>(std::move(counter), mc);
    fabric_ = fabric.get();
    counter = std::move(fabric);
  }
  std::unique_ptr<CounterProtocol> protocol;
  if (cfg_.udp) {
    // Transport outermost: the fabric's keyed sends get enveloped (the
    // envelope carries msg.key, so retransmissions stay keyed frames).
    auto wrapped =
        std::make_unique<ReliableTransport>(std::move(counter), cfg_.retry);
    transport_ = wrapped.get();
    protocol = std::move(wrapped);
  } else {
    protocol = std::move(counter);
  }

  RuntimeConfig rc;
  // --shards=0: inline drive. Loop 0's thread hosts the single protocol
  // shard itself — no worker threads, so a message's receive->handle->
  // send round trip never crosses a thread boundary. That is the right
  // topology whenever the host cannot run loop and worker truly in
  // parallel (one core, or more nodes than cores): every cross-thread
  // hop there is a scheduler round trip added to per-op latency.
  inline_ = cfg_.shards == 0;
  if (inline_) {
    DCNT_CHECK_MSG(cfg_.loops <= 1,
                   "--shards=0 (inline drive) requires --loops=1");
  }
  rc.workers = inline_ ? 1 : cfg_.shards;
  rc.inline_drive = inline_;
  // Pinned, not adaptive: the cluster harness chose the shard count per
  // node; silently collapsing to the core count would break the
  // multi-shard smoke tests on small hosts.
  rc.active_shards = rc.workers;
  // Distinct per-node base seed so shard rng streams never collide
  // across nodes (each runtime forks per-worker streams from this).
  rc.seed = mix64(cfg_.seed + 0x9e3779b97f4a7c15ull * (cfg_.node_id + 1));
  rc.max_ops = cfg_.max_ops > 0 ? static_cast<std::size_t>(cfg_.max_ops)
                                : (std::size_t{1} << 16);
  rc.cluster_nodes = cfg_.num_nodes;
  rc.cluster_node_id = cfg_.node_id;
  rc.wall_timers = true;
  rc.tick_us = cfg_.tick_us;
  runtime_ = std::make_unique<ThreadedRuntime>(std::move(protocol), rc);
  shards_ = runtime_->active_shards();

  runtime_->set_remote_sink([this](std::size_t, std::vector<Message>& out) {
    // Worker thread: partition the batch by owning event loop, then one
    // push_all (+ at most one wake) per loop touched.
    thread_local std::vector<std::vector<LoopCmd>> stage;
    stage.resize(loops_.size());
    for (Message& msg : out) {
      LoopCmd cmd;
      cmd.kind = LoopCmd::Kind::kSendData;
      cmd.msg = std::move(msg);
      stage[owner_loop(owner_node(cmd.msg.dst))].push_back(std::move(cmd));
    }
    for (std::size_t li = 0; li < loops_.size(); ++li) {
      if (!stage[li].empty()) post_cmds(*loops_[li], stage[li]);
    }
  });
  runtime_->set_completion([this](OpId op, Value value) {
    // Worker thread: completions are control-plane frames, always via
    // loop 0. Multi-key mode stages them instead: loop 0 coalesces all
    // completions of a drain round into one kCompleteBatch frame.
    LoopCmd cmd;
    if (keyed_) {
      cmd.kind = LoopCmd::Kind::kComplete;
      cmd.op = op;
      cmd.value = value;
    } else {
      cmd.kind = LoopCmd::Kind::kCtrlBytes;
      cmd.bytes = encode_complete(CompleteFrame{op, value});
    }
    post_cmd(*loops_[0], std::move(cmd));
  });
}

// --- cross-thread handoff ---------------------------------------------------
//
// Producer side of the lost-wakeup defense: enqueue, seq_cst fence,
// then notify only a loop observed in (or entering) its kernel wait.
// The loop thread stores in_wait=true, fences, and re-checks pending()
// before blocking, so either the producer sees in_wait and kicks the
// eventfd, or the loop sees the new command and polls with timeout 0 —
// the fences forbid the both-miss interleaving.

void NodeV2::post_cmd(LoopThread& lt, LoopCmd cmd) {
  lt.cmds.push(std::move(cmd));
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (lt.in_wait.load(std::memory_order_relaxed)) lt.loop.notify();
}

void NodeV2::post_cmds(LoopThread& lt, std::vector<LoopCmd>& batch) {
  lt.cmds.push_all(batch);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (lt.in_wait.load(std::memory_order_relaxed)) lt.loop.notify();
}

void NodeV2::post_ctrl(std::vector<std::uint8_t> frame) {
  LoopCmd cmd;
  cmd.kind = LoopCmd::Kind::kCtrlBytes;
  cmd.bytes = std::move(frame);
  post_cmd(*loops_[0], std::move(cmd));
}

// --- loop-thread code -------------------------------------------------------

void NodeV2::loop_main(LoopThread& lt) {
  const bool drives = inline_ && lt.index == 0;
  std::vector<LoopCmd> batch;
  bool stop = false;
  auto drain_cmds = [&] {
    if (!lt.cmds.drain(batch)) return;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      handle_cmd(lt, batch[i], batch.size() - i - 1, stop);
    }
    // Events staged by command handlers (adopted-connection residual
    // frames) must reach the runtime before this thread can block.
    flush_inject(lt);
    // Completions staged this round leave as one kCompleteBatch frame.
    flush_completes(lt);
  };
  while (!stop) {
    drain_cmds();
    if (stop) break;
    if (drives) {
      // Inline drive: run the protocol shard on this very thread, then
      // pick up what the handlers produced — their sends come back as
      // kSendData commands on our own mailbox, and handling them now
      // lets the frames join this round's coalesced kernel writes
      // instead of waiting out a wakeup.
      runtime_->drive();
      drain_cmds();
      if (stop) break;
    }
    int timeout_ms = 100;  // bounded: the ultimate lost-wakeup backstop
    if (drives) {
      // Due wall timers fire inside drive(), so clamp the kernel wait
      // to the earliest armed deadline — the inline analogue of the
      // threaded worker's mailbox.wait_until.
      const std::int64_t wait_us = runtime_->inline_timer_wait_us();
      if (wait_us >= 0 && wait_us < 1000 * timeout_ms) {
        timeout_ms = static_cast<int>((wait_us + 999) / 1000);
      }
    }
    lt.in_wait.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // in_flight covers the inline shard's mailbox: the main thread's
    // injections (time-jump markers) bump it before pushing, and its
    // post-fence in_wait check pairs with this pre-block re-check.
    if (lt.cmds.pending() > 0 || (drives && runtime_->in_flight() > 0)) {
      timeout_ms = 0;
    }
    lt.loop.run_once(timeout_ms);
    lt.in_wait.store(false, std::memory_order_relaxed);
    flush_inject(lt);
  }
  // Flush queued control/data bytes (the final Stats reply) before the
  // destructors close the sockets.
  while (lt.loop.backlog()) lt.loop.run_once(10);
}

void NodeV2::handle_cmd(LoopThread& lt, LoopCmd& cmd, std::size_t remaining,
                        bool& stop) {
  switch (cmd.kind) {
    case LoopCmd::Kind::kSendData:
      send_wire(lt, cmd.msg);
      return;
    case LoopCmd::Kind::kCtrlBytes:
      DCNT_CHECK_MSG(lt.index == 0, "control frame routed to a data loop");
      lt.loop.send(ctrl_conn_, std::move(cmd.bytes));
      return;
    case LoopCmd::Kind::kComplete:
      DCNT_CHECK_MSG(lt.index == 0, "completion routed to a data loop");
      lt.complete_buf.completions.push_back(
          CompleteBatchEntry{cmd.op, cmd.value});
      return;
    case LoopCmd::Kind::kSnapshot: {
      // Push everything this loop has been handed so far: staged
      // injections into the runtime, queued outbound bytes into the
      // kernel. Anything that cannot complete (kernel pushback, or the
      // commands behind this one) is declared in `pending` so the main
      // thread retries the round instead of trusting a short snapshot.
      flush_inject(lt);
      flush_completes(lt);
      lt.loop.flush_all();
      lt.snap.wire_msgs_sent = lt.wire_msgs_sent;
      lt.snap.wire_msgs_received = lt.wire_msgs_received;
      lt.snap.wire_bytes_sent = lt.wire_bytes_sent;
      lt.snap.wire_bytes_received = lt.wire_bytes_received;
      lt.snap.injected_drops = lt.injected_drops;
      lt.snap.write_syscalls = lt.loop.write_syscalls();
      lt.snap.pending = static_cast<std::int64_t>(remaining + lt.cmds.pending()) +
                        (lt.loop.backlog() ? 1 : 0);
      lt.snap_epoch.store(cmd.epoch, std::memory_order_release);
      return;
    }
    case LoopCmd::Kind::kAdopt: {
      const int conn = lt.loop.add_connection(
          std::move(cmd.sock),
          [this, &lt](int c, const FrameView& f) { on_peer_frame(lt, c, f); },
          [](int) {}, std::move(cmd.bytes));
      DCNT_CHECK(lt.peer_conn.at(cmd.peer) == -1);
      lt.peer_conn[cmd.peer] = conn;
      return;
    }
    case LoopCmd::Kind::kDial: {
      Socket sock = tcp_connect(cmd.port, 15000);
      const int conn = lt.loop.add_connection(
          std::move(sock),
          [this, &lt](int c, const FrameView& f) { on_peer_frame(lt, c, f); },
          // Peers close their sockets as they shut down, possibly before
          // our own Shutdown frame arrives; by then the quiescence
          // barrier has certified no data in flight, so a close is never
          // data loss.
          [](int) {});
      DCNT_CHECK(lt.peer_conn.at(cmd.peer) == -1);
      lt.peer_conn[cmd.peer] = conn;
      lt.loop.send(conn, encode_hello(HelloFrame{cfg_.node_id, 0, 0}));
      post_main(MainEvent::Kind::kLinkUp);
      return;
    }
    case LoopCmd::Kind::kSetPeers:
      lt.peers = std::move(cmd.peers);
      return;
    case LoopCmd::Kind::kStop:
      stop = true;
      return;
  }
  DCNT_CHECK_MSG(false, "unhandled loop command");
}

void NodeV2::send_wire(LoopThread& lt, Message& msg) {
  const std::uint32_t owner = owner_node(msg.dst);
  if (cfg_.udp) {
    if (cfg_.drop_probability > 0.0 &&
        lt.drop_rng.next_double() < cfg_.drop_probability) {
      ++lt.injected_drops;
      return;
    }
    // A kernel refusal (full buffers) is just loss with extra steps; the
    // reliable transport's retransmission covers both.
    const std::uint16_t port = lt.peers.at(owner).udp_port;
    const std::size_t sent = msg.key != kNoKey
                                 ? lt.loop.send_datagram_keyed_message(port, msg)
                                 : lt.loop.send_datagram_message(port, msg);
    if (sent != 0) {
      ++lt.wire_msgs_sent;
      lt.wire_bytes_sent += static_cast<std::int64_t>(sent);
    }
    return;
  }
  const int conn = lt.peer_conn.at(owner);
  DCNT_CHECK_MSG(conn >= 0, "wire send before the peer link is up");
  // Encoded straight into the connection's outbound queue; the bytes
  // leave coalesced with everything else queued this drain round. A
  // message owned by a key travels as the fabric's kKeyedMsg envelope.
  const std::size_t queued = msg.key != kNoKey
                                 ? lt.loop.send_keyed_message(conn, msg)
                                 : lt.loop.send_message(conn, msg);
  ++lt.wire_msgs_sent;
  lt.wire_bytes_sent += static_cast<std::int64_t>(queued);
}

void NodeV2::on_ctrl_frame(LoopThread& lt0, const FrameView& frame) {
  switch (frame.type()) {
    case FrameType::kPeers: {
      PeersFrame pf = decode_peers(frame);
      DCNT_CHECK(pf.peers.size() == cfg_.num_nodes);
      lt0.peers = pf.peers;
      for (std::size_t li = 1; li < loops_.size(); ++li) {
        LoopCmd cmd;
        cmd.kind = LoopCmd::Kind::kSetPeers;
        cmd.peers = pf.peers;
        post_cmd(*loops_[li], std::move(cmd));
      }
      if (!cfg_.udp) {
        // Deterministic mesh construction: node i dials every peer with
        // a smaller id (each from the loop that will own the link) and
        // sends a Hello to identify itself; larger ids dial us and we
        // learn who they are from their Hello.
        for (std::uint32_t id = 0; id < cfg_.node_id; ++id) {
          const std::size_t owner = owner_loop(id);
          if (owner == 0) {
            Socket sock = tcp_connect(pf.peers[id].tcp_port, 15000);
            const int conn = lt0.loop.add_connection(
                std::move(sock),
                [this, &lt0](int c, const FrameView& f) {
                  on_peer_frame(lt0, c, f);
                },
                [](int) {});
            DCNT_CHECK(lt0.peer_conn.at(id) == -1);
            lt0.peer_conn[id] = conn;
            lt0.loop.send(conn, encode_hello(HelloFrame{cfg_.node_id, 0, 0}));
            post_main(MainEvent::Kind::kLinkUp);
          } else {
            LoopCmd cmd;
            cmd.kind = LoopCmd::Kind::kDial;
            cmd.peer = id;
            cmd.port = pf.peers[id].tcp_port;
            post_cmd(*loops_[owner], std::move(cmd));
          }
        }
      }
      post_main(MainEvent::Kind::kPeersReceived);
      return;
    }
    case FrameType::kStart:
      stage_start(lt0, decode_start(frame));
      return;
    case FrameType::kStartBatch: {
      // One frame, many keyed ops: split into individual Start events
      // here (each entry may target a different owned origin/shard).
      // The control channel is our own controller, so a malformed batch
      // is a bug, not wire corruption to survive.
      StartBatchFrame batch;
      DCNT_CHECK_MSG(decode_start_batch(frame, &batch),
                     "malformed StartBatch on the control channel");
      for (StartBatchEntry& e : batch.ops) {
        stage_start(lt0, StartFrame{e.op, e.origin, {e.key}});
      }
      return;
    }
    case FrameType::kStatsRequest:
      post_main(MainEvent::Kind::kStatsRequest);
      return;
    case FrameType::kKeyedStatsRequest:
      post_main(MainEvent::Kind::kKeyedStatsRequest);
      return;
    case FrameType::kTimeJump:
      post_main(MainEvent::Kind::kTimeJump);
      return;
    case FrameType::kMetricsReset:
      post_main(MainEvent::Kind::kMetricsReset);
      return;
    case FrameType::kShutdown:
      post_main(MainEvent::Kind::kShutdown);
      return;
    default:
      DCNT_CHECK_MSG(false, "unexpected frame type on the control channel");
  }
}

void NodeV2::on_peer_frame(LoopThread& lt, int conn, const FrameView& frame) {
  if (frame.type() == FrameType::kHello) {
    // Accepted connections are identified on loop 0, then handed to the
    // loop that owns the peer. Commands are FIFO per loop, so the
    // adoption is always processed before any kSendData for that peer
    // (sends only start after the controller has collected every Ready).
    DCNT_CHECK_MSG(lt.index == 0, "peer Hello outside the accepting loop");
    const HelloFrame hello = decode_hello(frame);
    DCNT_CHECK(hello.node_id < cfg_.num_nodes);
    const std::size_t owner = owner_loop(hello.node_id);
    if (owner == 0) {
      DCNT_CHECK(lt.peer_conn.at(hello.node_id) == -1);
      lt.peer_conn[hello.node_id] = conn;
    } else {
      DetachedConn d = lt.loop.detach_connection(conn);
      LoopCmd cmd;
      cmd.kind = LoopCmd::Kind::kAdopt;
      cmd.peer = hello.node_id;
      cmd.sock = std::move(d.sock);
      cmd.bytes = std::move(d.residual);
      post_cmd(*loops_[owner], std::move(cmd));
    }
    post_main(MainEvent::Kind::kLinkUp);
    return;
  }
  DCNT_CHECK(frame.type() == FrameType::kMsg ||
             frame.type() == FrameType::kKeyedMsg);
  stage_wire_message(lt, frame);
}

void NodeV2::on_datagram(LoopThread& lt, const FrameView& frame) {
  DCNT_CHECK(frame.type() == FrameType::kMsg ||
             frame.type() == FrameType::kKeyedMsg);
  stage_wire_message(lt, frame);
}

void NodeV2::stage_wire_message(LoopThread& lt, const FrameView& frame) {
  ++lt.wire_msgs_received;
  lt.wire_bytes_received += static_cast<std::int64_t>(frame.body_size()) + 6;
  Message msg;
  if (frame.type() == FrameType::kKeyedMsg) {
    // The fabric data plane is decoded by the hardened non-aborting
    // path: a mangled frame is dropped and counted, never fatal. (Under
    // UDP the reliable transport retransmits it; on TCP it cannot occur
    // short of memory corruption, and the quiescence barrier would
    // expose the loss as a sent/received mismatch rather than a hang
    // going unnoticed.)
    if (!decode_keyed_message(frame, &msg)) {
      ++lt.keyed_rejects;
      return;
    }
  } else {
    msg = decode_message(frame);
  }
  DCNT_CHECK(runtime_->owns(msg.dst));
  RuntimeEvent ev;
  ev.kind = RuntimeEvent::Kind::kMessage;
  const std::size_t shard = runtime_->shard_of(msg.dst);
  ev.msg = std::move(msg);
  if (lt.inject_buf[shard].empty()) lt.inject_dirty.push_back(shard);
  lt.inject_buf[shard].push_back(std::move(ev));
}

void NodeV2::stage_start(LoopThread& lt, StartFrame start) {
  DCNT_CHECK(start.origin >= 0 && start.origin < n_);
  DCNT_CHECK_MSG(runtime_->owns(start.origin),
                 "Start frame routed to the wrong node");
  runtime_->register_external_op(start.op);
  RuntimeEvent ev;
  ev.kind = RuntimeEvent::Kind::kStart;
  ev.msg.src = start.origin;
  ev.msg.dst = start.origin;
  ev.msg.op = start.op;
  ev.msg.args = std::move(start.args);  // empty = plain inc
  const std::size_t shard = runtime_->shard_of(start.origin);
  if (lt.inject_buf[shard].empty()) lt.inject_dirty.push_back(shard);
  lt.inject_buf[shard].push_back(std::move(ev));
}

void NodeV2::flush_inject(LoopThread& lt) {
  for (std::size_t shard : lt.inject_dirty) {
    runtime_->inject(shard, lt.inject_buf[shard]);
  }
  lt.inject_dirty.clear();
}

void NodeV2::flush_completes(LoopThread& lt) {
  if (lt.complete_buf.completions.empty()) return;
  // Every completion a worker posted since the last flush leaves as one
  // kCompleteBatch control frame, encoded into a reused scratch buffer.
  lt.complete_scratch.clear();
  append_complete_batch(lt.complete_scratch, lt.complete_buf);
  lt.loop.send(ctrl_conn_, lt.complete_scratch);
  lt.complete_buf.completions.clear();
}

// --- main-thread code -------------------------------------------------------

void NodeV2::maybe_ready() {
  if (ready_sent_ || !peers_seen_ || links_ < expected_links_) return;
  ready_sent_ = true;
  post_ctrl(encode_ready(ReadyFrame{cfg_.node_id}));
}

/// The node-local half of the distributed quiescence barrier: spin until
/// one validated window in which the runtime was idle AND every loop had
/// drained its commands and outbound queues, capturing all stats-facing
/// counters inside that window.
///
/// Validation order is the load-bearing part. Each round:
///   1. wait for runtime quiescence, read events_processed (A);
///   2. demand every loop's command queue empty (else new work is
///      seconds away — yield and retry);
///   3. post kSnapshot(epoch) to every loop; spin until all publish;
///   4. read the armed-timer gauge, transport unacked, and the merged
///      per-processor loads;
///   5. re-verify: in_flight()==0, events_processed()==A, no loop has
///      pending commands or declared a short snapshot. Any failure
///      discards everything and retries.
/// A window that passes step 5 provably overlapped no handler and no
/// loop-side work: every handler holds in_flight>0 while running, and a
/// timer that fired in between bumps in_flight before dropping the
/// armed gauge, so either check 5 catches it or it never happened.
/// Reported "received" counts therefore always refer to messages the
/// runtime has fully processed — the property the controller's
/// two-stable-rounds barrier leans on. Wire data still in the kernel
/// (or a peer's queue) is caught by the controller's global
/// sent==received check instead, never by a single node.
void NodeV2::stable_quiesce() {
  for (;;) {
    runtime_->wait_quiescent();
    const std::int64_t before = runtime_->events_processed();
    bool busy = false;
    for (auto& lt : loops_) busy = busy || lt->cmds.pending() > 0;
    if (busy) {
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t epoch = ++epoch_;
    for (auto& lt : loops_) {
      LoopCmd cmd;
      cmd.kind = LoopCmd::Kind::kSnapshot;
      cmd.epoch = epoch;
      post_cmd(*lt, std::move(cmd));
    }
    for (auto& lt : loops_) {
      while (lt->snap_epoch.load(std::memory_order_acquire) != epoch) {
        std::this_thread::yield();
      }
    }
    timers_cache_ = runtime_->timers_armed();
    unacked_cache_ = transport_ != nullptr ? transport_->unacked_total() : 0;
    metrics_cache_ = runtime_->merged_metrics_unchecked();
    if (runtime_->in_flight() != 0) continue;
    if (runtime_->events_processed() != before) continue;
    busy = false;
    for (auto& lt : loops_) {
      busy = busy || lt->cmds.pending() > 0 || lt->snap.pending != 0;
    }
    if (busy) {
      std::this_thread::yield();
      continue;
    }
    events_cache_ = before;
    return;
  }
}

void NodeV2::send_stats() {
  stable_quiesce();
  StatsFrame s;
  s.node_id = cfg_.node_id;
  // events_processed keeps its full monotone value (minus a constant
  // baseline) so the controller's two-stable-rounds comparison works
  // across a reset; the traffic counters are reported as deltas.
  s.events_processed = events_cache_ - base_.events;
  for (std::size_t li = 0; li < loops_.size(); ++li) {
    const WireSnap& snap = loops_[li]->snap;
    const WireSnap& base = base_.snaps[li];
    s.wire_msgs_sent += snap.wire_msgs_sent - base.wire_msgs_sent;
    s.wire_msgs_received += snap.wire_msgs_received - base.wire_msgs_received;
    s.wire_bytes_sent += snap.wire_bytes_sent - base.wire_bytes_sent;
    s.wire_bytes_received +=
        snap.wire_bytes_received - base.wire_bytes_received;
    s.injected_drops += snap.injected_drops - base.injected_drops;
    s.wire_write_syscalls += snap.write_syscalls - base.write_syscalls;
  }
  s.timers_armed = timers_cache_;
  if (transport_ != nullptr) {
    s.unacked = unacked_cache_;
    const RetryStats& rs = transport_->stats();
    s.retransmissions = rs.retransmissions - base_.retransmissions;
    s.duplicates_suppressed =
        rs.duplicates_suppressed - base_.duplicates_suppressed;
    s.messages_abandoned = rs.messages_abandoned - base_.messages_abandoned;
  }
  for (ProcessorId p = static_cast<ProcessorId>(cfg_.node_id); p < n_;
       p += static_cast<ProcessorId>(cfg_.num_nodes)) {
    ProcLoad load;
    load.pid = p;
    load.sent = metrics_cache_.sent(p);
    load.received = metrics_cache_.received(p);
    load.words = metrics_cache_.word_load(p);
    s.loads.push_back(load);
  }
  post_ctrl(encode_stats(s));
}

/// End-of-run per-key report (multi-key mode): re-certify a stable idle
/// window, then stream this node's (key, processor) load slices to the
/// controller in kKeyedStats chunks, sorted by (key, pid) and capped at
/// kKeyedStatsChunk entries each so a 100k-key run never exceeds
/// kMaxFramePayload. The LRU tier counters ride in every chunk (the
/// controller reads them from the last). Per-key loads are reported as
/// absolute post-reset values — reset_metrics zeroed the key maps in
/// place, so no baseline subtraction is needed.
void NodeV2::send_keyed_stats() {
  DCNT_CHECK_MSG(fabric_ != nullptr,
                 "keyed stats requested from a node without --keys");
  stable_quiesce();
  std::vector<KeyProcLoad> flat;
  for (const auto& [key, per_proc] : metrics_cache_.key_loads()) {
    for (const auto& [pid, load] : per_proc) {
      flat.push_back(KeyProcLoad{key, pid, load.sent, load.received});
    }
  }
  std::sort(flat.begin(), flat.end(),
            [](const KeyProcLoad& a, const KeyProcLoad& b) {
              return a.key != b.key ? a.key < b.key : a.pid < b.pid;
            });
  const service::KeyDirectoryStats lru = fabric_->lru_stats();
  std::size_t sent = 0;
  do {
    KeyedStatsFrame chunk;
    chunk.node_id = cfg_.node_id;
    chunk.lru_hits = lru.hits;
    chunk.lru_misses = lru.misses;
    chunk.lru_evicts = lru.evicts;
    chunk.lru_rehydrates = lru.rehydrates;
    const std::size_t take = std::min(kKeyedStatsChunk, flat.size() - sent);
    chunk.loads.assign(flat.begin() + static_cast<std::ptrdiff_t>(sent),
                       flat.begin() + static_cast<std::ptrdiff_t>(sent + take));
    sent += take;
    chunk.last = sent == flat.size();
    post_ctrl(encode_keyed_stats(chunk));
  } while (sent < flat.size());  // zero slices still sends one last-chunk
}

void NodeV2::time_jump() {
  // Fire the timers armed at this instant without waiting out their
  // wall deadlines — the controller has certified the cluster idle
  // (stable events, no unacked envelopes, no wire traffic in flight),
  // which is exactly when the simulator would jump its clock. One
  // marker per shard; each shard fires the timers armed when the marker
  // arrives (timers re-armed by the cascades keep their wall deadlines;
  // the controller re-evaluates and jumps again if the cluster settles
  // with timers still pending).
  std::vector<RuntimeEvent> evs;
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    RuntimeEvent ev;
    ev.kind = RuntimeEvent::Kind::kFireTimers;
    evs.clear();
    evs.push_back(std::move(ev));
    runtime_->inject(shard, evs);
  }
  if (inline_) {
    // The markers sit in the shard mailbox, but the only thread that
    // will ever drive them — loop 0 — may be parked in its kernel wait
    // with no socket traffic due. Same Dekker pairing as post_cmd: the
    // inject above bumped in_flight before pushing, so either loop 0's
    // pre-block re-check sees it, or we see in_wait and kick the
    // eventfd.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (loops_[0]->in_wait.load(std::memory_order_relaxed)) {
      loops_[0]->loop.notify();
    }
  }
}

void NodeV2::handle_reset() {
  // The controller broadcasts a reset only when the whole cluster is
  // certified idle, so nothing moves between the stable window captured
  // here and the baseline stores below.
  stable_quiesce();
  runtime_->reset_metrics();
  base_.events = events_cache_;
  base_.snaps.resize(loops_.size());
  for (std::size_t li = 0; li < loops_.size(); ++li) {
    base_.snaps[li] = loops_[li]->snap;
  }
  if (transport_ != nullptr) {
    const RetryStats& rs = transport_->stats();
    base_.retransmissions = rs.retransmissions;
    base_.duplicates_suppressed = rs.duplicates_suppressed;
    base_.messages_abandoned = rs.messages_abandoned;
  }
  // Ack with a Ready frame: the controller must not issue measured
  // Starts until every node has re-baselined, or a fast peer's first
  // measured message could reach us ahead of our own reset (TCP orders
  // per connection, not across them) and be absorbed into the baseline
  // — leaving the global sent/received counts permanently skewed and
  // the quiescence barrier unsatisfiable.
  post_ctrl(encode_ready(ReadyFrame{cfg_.node_id}));
}

void NodeV2::setup_loop0(std::uint16_t* tcp_port, std::uint16_t* udp_port) {
  LoopThread& lt0 = *loops_[0];
  Socket ctrl = tcp_connect(cfg_.ctrl_port, 15000);
  ctrl_conn_ = lt0.loop.add_connection(
      std::move(ctrl),
      [this, &lt0](int, const FrameView& f) { on_ctrl_frame(lt0, f); },
      [this](int) { post_main(MainEvent::Kind::kCtrlClosed); });
  if (!cfg_.udp && cfg_.num_nodes > 1) {
    Socket listener = tcp_listen(tcp_port);
    lt0.loop.add_listener(std::move(listener), [this, &lt0](Socket s) {
      // Identity unknown until the Hello arrives; until then the
      // connection lives on loop 0.
      lt0.loop.add_connection(
          std::move(s),
          [this, &lt0](int c, const FrameView& f) { on_peer_frame(lt0, c, f); },
          [](int) {});
    });
  }
  if (cfg_.udp) {
    // Every loop owns a send socket (datagram sends are loop-local);
    // only loop 0's port is advertised, so all receives land there.
    for (auto& lt : loops_) {
      std::uint16_t port = 0;
      Socket sock = udp_bind(&port);
      LoopThread& ltr = *lt;
      lt->loop.add_udp(std::move(sock), [this, &ltr](const FrameView& f) {
        on_datagram(ltr, f);
      });
      if (lt->index == 0) *udp_port = port;
    }
  }
}

int NodeV2::run() {
  DCNT_CHECK_MSG(cfg_.ctrl_port != 0, "node needs --ctrl_port");
  build_runtime();

  const std::size_t num_loops = cfg_.loops > 0 ? cfg_.loops : 1;
  const Backend backend = backend_from_string(cfg_.backend);
  base_.snaps.resize(num_loops);  // zero baselines until the first reset
  loops_.reserve(num_loops);
  for (std::size_t li = 0; li < num_loops; ++li) {
    loops_.push_back(std::make_unique<LoopThread>(li, backend));
    LoopThread& lt = *loops_.back();
    lt.peer_conn.assign(cfg_.num_nodes, -1);
    lt.inject_buf.resize(shards_);
    // Distinct stream for the loss shim so dropping datagrams never
    // perturbs the protocol's own randomness; forked per loop because
    // each loop thread draws independently.
    lt.drop_rng = Rng(mix64(cfg_.seed ^ 0x10551055ull))
                      .fork(cfg_.node_id + 1)
                      .fork(li + 1);
  }

  // All loop-0 plumbing happens before the threads start, so the
  // single-owner-thread rule of EventLoop is never violated.
  std::uint16_t tcp_port = 0;
  std::uint16_t udp_port = 0;
  setup_loop0(&tcp_port, &udp_port);
  loops_[0]->loop.send(
      ctrl_conn_, encode_hello(HelloFrame{cfg_.node_id, tcp_port, udp_port}));

  for (auto& lt : loops_) {
    LoopThread& ltr = *lt;
    lt->thread = std::thread([this, &ltr] { loop_main(ltr); });
  }

  expected_links_ = (!cfg_.udp && cfg_.num_nodes > 1)
                        ? static_cast<std::size_t>(cfg_.num_nodes) - 1
                        : 0;

  bool shutdown = false;
  std::vector<MainEvent> evs;
  while (!shutdown) {
    main_events_.wait(never_stop_);
    if (!main_events_.drain(evs)) continue;
    for (const MainEvent& ev : evs) {
      switch (ev.kind) {
        case MainEvent::Kind::kPeersReceived:
          peers_seen_ = true;
          maybe_ready();
          break;
        case MainEvent::Kind::kLinkUp:
          ++links_;
          maybe_ready();
          break;
        case MainEvent::Kind::kStatsRequest:
          send_stats();
          break;
        case MainEvent::Kind::kKeyedStatsRequest:
          send_keyed_stats();
          break;
        case MainEvent::Kind::kTimeJump:
          time_jump();
          break;
        case MainEvent::Kind::kMetricsReset:
          handle_reset();
          break;
        case MainEvent::Kind::kShutdown:
          shutdown = true;
          break;
        case MainEvent::Kind::kCtrlClosed:
          DCNT_CHECK_MSG(shutdown, "controller connection lost");
          break;
      }
      if (shutdown) break;
    }
  }
  // kStop rides behind any queued control bytes (the final Stats
  // reply); each loop drains its outbound backlog before exiting.
  for (auto& lt : loops_) {
    LoopCmd cmd;
    cmd.kind = LoopCmd::Kind::kStop;
    post_cmd(*lt, std::move(cmd));
  }
  for (auto& lt : loops_) lt->thread.join();
  runtime_->stop();
  return 0;
}

}  // namespace

int run_node(const NodeConfig& config) {
  NodeV2 node(config);
  return node.run();
}

}  // namespace dcnt::net
