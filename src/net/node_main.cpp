// dcnt_node: one process of the socket cluster.
//
// Normally spawned by the cluster harness (harness/cluster.hpp), which
// passes the controller's port and this node's identity; runnable by
// hand for debugging a single shard. See README.md ("Running the
// counter as a real cluster").
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/node.hpp"
#include "support/flags.hpp"

namespace {

constexpr const char* kUsage = R"(dcnt_node: one shard of the socket-cluster counter runtime.

Usage: dcnt_node --ctrl_port=P --node=I --nodes=N [options]

  --ctrl_port=P     controller's TCP port on 127.0.0.1 (required)
  --node=I          this node's id, 0 <= I < N        (default 0)
  --nodes=N         cluster size                      (default 1)
  --counter=KIND    tree|central|combining|diffracting|... (default tree)
  --n=P             minimum number of processors      (default 16)
  --seed=S          deterministic seed                (default 1)
  --transport=T     tcp | udp                         (default tcp)
  --drop=F          datagram loss probability, udp    (default 0)
  --tick_us=U       wall microseconds per logical tick (default 200)
  --ack_timeout=T   reliable-transport first timeout  (default 16 ticks)
  --max_timeout=T   reliable-transport backoff cap    (default 256 ticks)
  --max_attempts=A  transmissions before giving up    (default 12)
  --loops=L         event-loop threads                (default 1)
  --shards=S        protocol worker shards; 0 = inline:
                    loop 0 drives the shard itself,
                    no worker threads (needs --loops=1) (default 1)
  --backend=B       reactor backend: epoll | poll     (default: platform)
  --max_ops=M       operation-table capacity hint     (default 65536)
  --keys=K          multi-key mode: K-counter service fabric
                    over the shard (0 = single counter) (default 0)
  --key_capacity=C  LRU cap on live per-key instances;
                    0 = unbounded (multi-key mode)     (default 0)
)";

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    }
  }
  dcnt::Flags flags(argc, argv);
  dcnt::net::NodeConfig cfg;
  cfg.node_id = static_cast<std::uint32_t>(flags.get_int("node", 0));
  cfg.num_nodes = static_cast<std::uint32_t>(flags.get_int("nodes", 1));
  cfg.counter = flags.get_string("counter", "tree");
  cfg.min_processors = flags.get_int("n", 16);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.ctrl_port = static_cast<std::uint16_t>(flags.get_int("ctrl_port", 0));
  const std::string transport = flags.get_string("transport", "tcp");
  if (transport == "udp") {
    cfg.udp = true;
  } else if (transport != "tcp") {
    std::fprintf(stderr, "dcnt_node: unknown --transport=%s (tcp|udp)\n",
                 transport.c_str());
    return 2;
  }
  cfg.drop_probability = flags.get_double("drop", 0.0);
  cfg.tick_us = flags.get_int("tick_us", 200);
  cfg.retry.ack_timeout = flags.get_int("ack_timeout", cfg.retry.ack_timeout);
  cfg.retry.max_timeout = flags.get_int("max_timeout", cfg.retry.max_timeout);
  cfg.retry.max_attempts =
      static_cast<int>(flags.get_int("max_attempts", cfg.retry.max_attempts));
  cfg.loops = static_cast<std::uint32_t>(flags.get_int("loops", 1));
  cfg.shards = static_cast<std::uint32_t>(flags.get_int("shards", 1));
  cfg.backend = flags.get_string("backend", "");
  cfg.max_ops = flags.get_int("max_ops", 0);
  cfg.keys = flags.get_int("keys", 0);
  cfg.key_capacity = flags.get_int("key_capacity", 0);
  return dcnt::net::run_node(cfg);
}
