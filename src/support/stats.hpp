// Small statistics toolkit used by load reports and benchmarks:
// running summaries, exact percentiles over collected samples, and a
// fixed-width bucket histogram for message-load distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dcnt {

/// Order statistics and moments over an explicit sample vector.
/// Samples are kept; intended for per-processor load vectors (n is at
/// most a few hundred thousand in our experiments).
class Summary {
 public:
  Summary() = default;
  explicit Summary(std::vector<std::int64_t> samples);

  void add(std::int64_t x);

  std::size_t count() const { return samples_.size(); }
  std::int64_t min() const;
  std::int64_t max() const;
  std::int64_t sum() const;
  double mean() const;
  double stddev() const;

  /// Exact percentile by nearest-rank; q in [0, 100].
  std::int64_t percentile(double q) const;

  const std::vector<std::int64_t>& samples() const { return samples_; }

  /// One-line human-readable rendering.
  std::string to_string() const;

 private:
  void ensure_sorted() const;

  std::vector<std::int64_t> samples_;
  mutable std::vector<std::int64_t> sorted_;
  mutable bool sorted_valid_{false};
};

/// Histogram with fixed-width buckets over [0, bucket_width * bucket_count);
/// overflow values land in the final (unbounded) bucket.
class Histogram {
 public:
  Histogram(std::int64_t bucket_width, std::size_t bucket_count);

  void add(std::int64_t x);

  std::int64_t bucket_width() const { return width_; }
  const std::vector<std::int64_t>& buckets() const { return buckets_; }
  std::int64_t total() const { return total_; }

  /// ASCII bar rendering, one row per non-empty bucket.
  std::string to_string() const;

 private:
  std::int64_t width_;
  std::vector<std::int64_t> buckets_;
  std::int64_t total_{0};
};

/// Least-squares fit y = a + b*x; used to check "load grows linearly in k".
struct LinearFit {
  double intercept{0.0};
  double slope{0.0};
  double r2{0.0};
};

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace dcnt
