// Aligned plain-text table printer for benchmark output, plus CSV
// emission so results can be post-processed. Every bench binary prints
// the same rows the paper's claims predict; see EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dcnt {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& cell);
  Table& add(const char* cell);
  Table& add(std::int64_t v);
  Table& add(std::uint64_t v);
  Table& add(int v);
  /// Doubles are rendered with limited precision (trailing zeros trimmed).
  Table& add(double v, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }

  /// Render as an aligned text table with a header rule.
  std::string to_text() const;
  /// Render as CSV (quotes cells containing commas).
  std::string to_csv() const;

  /// Convenience: write to_text() to the stream with a title line.
  void print(std::ostream& os, const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: "12.3" style fixed formatting with trimming.
std::string format_double(double v, int precision = 3);

}  // namespace dcnt
