// Deterministic, copyable pseudo-random number generation.
//
// Everything in this project that needs randomness takes an explicit Rng
// so that every experiment is reproducible from a single seed, and so
// that cloning a Simulator (needed by the lower-bound adversary) clones
// the random stream with it. The generator is xoshiro256** seeded via
// splitmix64 — fast, high quality, and trivially value-semantic, unlike
// std::mt19937 which is large and slow to copy.
#pragma once

#include <array>
#include <cstdint>

namespace dcnt {

/// splitmix64 step; used for seeding and hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix (one splitmix64 round applied to `x`).
std::uint64_t mix64(std::uint64_t x);

/// xoshiro256** generator. Copyable value type.
class Rng {
 public:
  using result_type = std::uint64_t;

  Rng() : Rng(0xDC0117ULL) {}
  explicit Rng(std::uint64_t seed);

  /// Uniform over the full 64-bit range.
  std::uint64_t next();

  /// Uniform in [0, bound); bound must be > 0. Uses rejection sampling
  /// (Lemire) so the distribution is exact.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double next_double();

  /// Fork an independent stream (e.g. one per processor) deterministically.
  Rng fork(std::uint64_t salt);

  // UniformRandomBitGenerator interface for <algorithm> shuffles.
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }
  std::uint64_t operator()() { return next(); }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace dcnt
