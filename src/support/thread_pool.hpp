// Minimal fixed-size worker pool for embarrassingly parallel fan-out.
//
// The lower-bound adversary and the schedule explorer dry-run many
// independent candidate simulations against one read-only base state —
// the same shape microbenchmark harnesses exploit by pinning trials to
// worker threads. ThreadPool gives that shape a deterministic API: work
// items are identified by index, every result lands in the slot of its
// index, and callers reduce serially in index order, so the outcome is
// bit-for-bit identical whatever the thread count or scheduling.
//
// Deliberately work-stealing-free: one shared atomic cursor hands out
// indices; there are no per-worker deques to steal from, no affinity,
// no priorities. That keeps the pool ~150 lines and the determinism
// argument one sentence long.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcnt {

/// Worker count used when a caller passes `threads == 0` ("auto"): the
/// DCNT_THREADS environment variable if set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (min 1).
std::size_t default_thread_count();

/// Resolves a --threads-style knob: 0 -> default_thread_count(),
/// anything else is used as given (min 1).
std::size_t resolve_thread_count(std::size_t requested);

class ThreadPool {
 public:
  /// A pool of `threads` workers total (min 1). The calling thread
  /// participates in every parallel_for_each as worker 0, so
  /// ThreadPool(1) spawns no threads at all and runs everything inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread.
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs body(worker, index) for every index in [0, n), distributing
  /// indices dynamically over size() workers; blocks until all have
  /// run. Worker ids are stable in [0, size()) — use them to address
  /// per-worker scratch state (e.g. one reusable Simulator each). The
  /// first exception thrown by any invocation is rethrown here after
  /// the remaining indices have been abandoned.
  void parallel_for_each(
      std::size_t n,
      const std::function<void(std::size_t worker, std::size_t index)>& body);

  /// parallel_for_each that collects fn(worker, index) into slot
  /// `index` of the returned vector — the deterministic map: the result
  /// depends only on fn and n, never on scheduling.
  template <class T, class Fn>
  std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    parallel_for_each(n, [&](std::size_t worker, std::size_t index) {
      out[index] = fn(worker, index);
    });
    return out;
  }

 private:
  void worker_main(std::size_t worker);
  void run_indices(std::size_t worker);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_{0};  ///< bumps once per parallel_for_each
  std::size_t active_{0};        ///< spawned workers still in the current job
  bool stop_{false};

  // Current job; written under mu_ before workers are woken.
  const std::function<void(std::size_t, std::size_t)>* body_{nullptr};
  std::size_t n_{0};
  std::atomic<std::size_t> next_{0};
  std::exception_ptr error_;
};

}  // namespace dcnt
