#include "support/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace dcnt {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Flags::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Flags::get_string(const std::string& key,
                              const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key,
                            std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::size_t threads_from_flags(const Flags& flags, const std::string& key) {
  const std::int64_t requested = flags.get_int(key, 0);
  DCNT_CHECK_MSG(requested >= 0, "--threads must be >= 0 (0 = auto)");
  return resolve_thread_count(static_cast<std::size_t>(requested));
}

}  // namespace dcnt
