// A copyable counter with atomic mutation, for protocol bookkeeping
// that crosses processor boundaries.
//
// Protocol objects are values: clone()/try_assign_from copy-assign the
// whole distributed state, so raw std::atomic members are off the table
// (atomics are neither copyable nor assignable). At the same time the
// threaded runtime (src/runtime/) executes handlers for different
// processors concurrently, so any counter bumped from handlers at
// arbitrary processors — stats totals, live-work gauges — is a genuine
// cross-thread data race if it stays a plain int64.
//
// RelaxedCounter resolves both constraints: mutations are relaxed
// atomic RMWs (counters tolerate any interleaving; nobody reads them
// for synchronization), while copy construction/assignment transfer the
// plain value, keeping protocol_assign and vector-of-state copies
// working unchanged. Reads made after the runtime has quiesced (or in
// single-threaded simulator runs) see exact totals: quiescence is
// established through the runtime's acquire/release in-flight counter,
// which orders every handler's relaxed writes before the reader.
#pragma once

#include <atomic>
#include <cstdint>

namespace dcnt {

class RelaxedCounter {
 public:
  RelaxedCounter(std::int64_t v = 0) : v_(v) {}  // NOLINT: implicit on purpose
  RelaxedCounter(const RelaxedCounter& other) : v_(other.load()) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    v_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(std::int64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  std::int64_t load() const { return v_.load(std::memory_order_relaxed); }
  operator std::int64_t() const { return load(); }  // NOLINT: counter reads

  RelaxedCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator--() {
    v_.fetch_sub(1, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator+=(std::int64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }

  /// Monotonic max: lock-free compare-exchange loop, so concurrent
  /// update_max calls never lose the largest candidate.
  void update_max(std::int64_t candidate) {
    std::int64_t cur = load();
    while (candidate > cur &&
           !v_.compare_exchange_weak(cur, candidate,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<std::int64_t> v_;
};

}  // namespace dcnt
