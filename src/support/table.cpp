#include "support/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace dcnt {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DCNT_CHECK(!headers_.empty());
}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::add(const std::string& cell) {
  DCNT_CHECK_MSG(!rows_.empty(), "call row() before add()");
  DCNT_CHECK_MSG(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(cell);
  return *this;
}

Table& Table::add(const char* cell) { return add(std::string(cell)); }
Table& Table::add(std::int64_t v) { return add(std::to_string(v)); }
Table& Table::add(std::uint64_t v) { return add(std::to_string(v)); }
Table& Table::add(int v) { return add(std::to_string(v)); }
Table& Table::add(double v, int precision) {
  return add(format_double(v, precision));
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "  " << cell << std::string(width[c] - cell.size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (auto w : width) rule += w + 2;
  os << std::string(rule, '-') << '\n';
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find(',') == std::string::npos) return s;
    return "\"" + s + "\"";
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << ',';
    os << quote(headers_[c]);
  }
  os << '\n';
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << quote(r[c]);
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  os << "\n== " << title << " ==\n" << to_text();
}

}  // namespace dcnt
