#include "support/rng.hpp"

#include "support/check.hpp"

namespace dcnt {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : s_) w = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DCNT_CHECK(bound > 0);
  // Lemire's nearly-divisionless method with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  DCNT_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::fork(std::uint64_t salt) {
  return Rng(mix64(next() ^ mix64(salt)));
}

}  // namespace dcnt
