#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "support/check.hpp"

namespace dcnt {

Summary::Summary(std::vector<std::int64_t> samples)
    : samples_(std::move(samples)) {}

void Summary::add(std::int64_t x) {
  samples_.push_back(x);
  sorted_valid_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

std::int64_t Summary::min() const {
  DCNT_CHECK(!samples_.empty());
  ensure_sorted();
  return sorted_.front();
}

std::int64_t Summary::max() const {
  DCNT_CHECK(!samples_.empty());
  ensure_sorted();
  return sorted_.back();
}

std::int64_t Summary::sum() const {
  return std::accumulate(samples_.begin(), samples_.end(),
                         static_cast<std::int64_t>(0));
}

double Summary::mean() const {
  DCNT_CHECK(!samples_.empty());
  return static_cast<double>(sum()) / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  DCNT_CHECK(!samples_.empty());
  const double m = mean();
  double acc = 0.0;
  for (auto x : samples_) {
    const double d = static_cast<double>(x) - m;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

std::int64_t Summary::percentile(double q) const {
  DCNT_CHECK(!samples_.empty());
  DCNT_CHECK(q >= 0.0 && q <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = q / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(rank));
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::string Summary::to_string() const {
  std::ostringstream os;
  if (samples_.empty()) {
    os << "n=0";
    return os.str();
  }
  os << "n=" << count() << " min=" << min() << " mean=" << mean()
     << " p50=" << percentile(50) << " p99=" << percentile(99)
     << " max=" << max();
  return os.str();
}

Histogram::Histogram(std::int64_t bucket_width, std::size_t bucket_count)
    : width_(bucket_width), buckets_(bucket_count, 0) {
  DCNT_CHECK(bucket_width > 0);
  DCNT_CHECK(bucket_count > 0);
}

void Histogram::add(std::int64_t x) {
  DCNT_CHECK(x >= 0);
  auto idx = static_cast<std::size_t>(x / width_);
  if (idx >= buckets_.size()) idx = buckets_.size() - 1;
  ++buckets_[idx];
  ++total_;
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  const std::int64_t peak =
      *std::max_element(buckets_.begin(), buckets_.end());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::int64_t lo = static_cast<std::int64_t>(i) * width_;
    os << "[" << lo << ", ";
    if (i + 1 == buckets_.size()) {
      os << "inf";
    } else {
      os << lo + width_;
    }
    os << ") " << buckets_[i] << " ";
    const int bar =
        peak == 0 ? 0
                  : static_cast<int>(50.0 * static_cast<double>(buckets_[i]) /
                                     static_cast<double>(peak));
    for (int b = 0; b < bar; ++b) os << '#';
    os << '\n';
  }
  return os.str();
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  DCNT_CHECK(x.size() == y.size());
  DCNT_CHECK(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (fit.intercept + fit.slope * x[i]);
    ss_res += e * e;
  }
  fit.r2 = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace dcnt
