#include "support/thread_pool.hpp"

#include <cstdlib>

namespace dcnt {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("DCNT_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t resolve_thread_count(std::size_t requested) {
  return requested == 0 ? default_thread_count() : requested;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t spawned = threads <= 1 ? 0 : threads - 1;
  workers_.reserve(spawned);
  for (std::size_t w = 0; w < spawned; ++w) {
    workers_.emplace_back([this, w] { worker_main(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_main(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
    }
    run_indices(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::run_indices(std::size_t worker) {
  for (;;) {
    const std::size_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= n_) return;
    try {
      (*body_)(worker, index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
      next_.store(n_, std::memory_order_relaxed);  // abandon the rest
      return;
    }
  }
}

void ThreadPool::parallel_for_each(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(0, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    active_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  run_indices(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace dcnt
