// Minimal --key=value command-line parsing for examples and benches.
// Not a general-purpose flag library: just enough to parameterize the
// experiment binaries (seed, n, k, counter kind, ...).
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dcnt {

class Flags {
 public:
  /// Parses argv of the form --key=value or --key value or bare --key
  /// (boolean true). Unrecognized positional arguments are an error.
  Flags(int argc, char** argv);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

/// The process-wide thread-count knob, shared by every binary that
/// spins up workers (thread pools, the threaded runtime, benches):
/// `--threads=N` on the command line wins; `--threads=0` or no flag
/// means auto (the DCNT_THREADS environment variable if set, else all
/// hardware threads). Always returns at least 1.
std::size_t threads_from_flags(const Flags& flags,
                               const std::string& key = "threads");

}  // namespace dcnt
