// Lightweight precondition / invariant checking.
//
// DCNT_CHECK is always on (it guards protocol invariants whose violation
// would silently corrupt an experiment); DCNT_DCHECK compiles out in
// release builds and is meant for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dcnt::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "DCNT_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace dcnt::detail

#define DCNT_CHECK(expr)                                               \
  do {                                                                 \
    if (!(expr)) ::dcnt::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define DCNT_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr))                                                       \
      ::dcnt::detail::check_failed(#expr, __FILE__, __LINE__, (msg));  \
  } while (false)

#ifdef NDEBUG
#define DCNT_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define DCNT_DCHECK(expr) DCNT_CHECK(expr)
#endif
