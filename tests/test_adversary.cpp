#include "analysis/adversary.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "baselines/central.hpp"
#include "core/tree_counter.hpp"
#include "harness/factory.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

TEST(Adversary, RunsEveryProcessorExactlyOnce) {
  TreeCounterParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.seed = 1;
  Simulator base(std::make_unique<TreeCounter>(params), cfg);
  const AdversaryResult result = run_adversarial_sequence(base);
  EXPECT_EQ(result.steps.size(), 8u);
  std::set<ProcessorId> chosen;
  for (const auto& step : result.steps) chosen.insert(step.chosen);
  EXPECT_EQ(chosen.size(), 8u);
}

TEST(Adversary, GreedyPicksLongestProcess) {
  // On the central counter the holder's own inc is free (0 messages)
  // and every other inc costs 2 — so the greedy adversary must leave
  // the holder for last.
  Simulator base(std::make_unique<CentralCounter>(6, 2), {});
  const AdversaryResult result = run_adversarial_sequence(base);
  EXPECT_EQ(result.steps.back().chosen, 2);
  EXPECT_EQ(result.last_processor, 2);
  for (std::size_t i = 0; i + 1 < result.steps.size(); ++i) {
    EXPECT_EQ(result.steps[i].messages, 2);
  }
  EXPECT_EQ(result.max_load, 2 * 5);
}

TEST(Adversary, BottleneckMeetsPaperLowerBoundOnAllCounters) {
  // The Lower Bound Theorem: some processor pays Omega(k), whatever the
  // implementation. With the constant from the proof being ~1, require
  // max_load >= k(n) for every counter we have.
  for (const CounterKind kind : all_counter_kinds()) {
    SimConfig cfg;
    cfg.seed = 11;
    Simulator base(make_counter(kind, 16), cfg);
    AdversaryOptions options;
    options.sample_candidates = 8;  // keep runtime modest
    const AdversaryResult result = run_adversarial_sequence(base, options);
    EXPECT_GE(static_cast<double>(result.max_load), result.paper_k)
        << to_string(kind) << " max_load=" << result.max_load
        << " k=" << result.paper_k;
  }
}

TEST(Adversary, SamplingStillCoversEveryone) {
  TreeCounterParams params;
  params.k = 2;
  Simulator base(std::make_unique<TreeCounter>(params), {});
  AdversaryOptions options;
  options.sample_candidates = 2;
  options.seed = 3;
  const AdversaryResult result = run_adversarial_sequence(base, options);
  EXPECT_EQ(result.steps.size(), 8u);
  std::set<ProcessorId> chosen;
  for (const auto& step : result.steps) chosen.insert(step.chosen);
  EXPECT_EQ(chosen.size(), 8u);
}

TEST(Adversary, WeightTraceIsPopulatedAndSane) {
  TreeCounterParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.seed = 2;
  cfg.enable_trace = true;
  Simulator base(std::make_unique<TreeCounter>(params), cfg);
  AdversaryOptions options;
  options.record_weights = true;
  const AdversaryResult result = run_adversarial_sequence(base, options);
  ASSERT_EQ(result.steps.size(), 8u);
  // w_1 <= 2 (fresh loads, geometric series), and weights grow as loads
  // accumulate (the proof's potential climbs to force the bound).
  EXPECT_LE(result.steps.front().last_weight, 2.0);
  EXPECT_GT(result.steps.back().last_weight,
            result.steps.front().last_weight);
  for (const auto& step : result.steps) {
    EXPECT_GE(step.last_list_len, 1);
    EXPECT_GT(step.last_weight, 0.0);
  }
}

TEST(Adversary, LastProcessorLoadIsAccurate) {
  Simulator base(std::make_unique<CentralCounter>(4, 0), {});
  const AdversaryResult result = run_adversarial_sequence(base);
  EXPECT_EQ(result.last_processor, 0);
  EXPECT_EQ(result.last_processor_load, 2 * 3);  // holder serves 3 remotes
  EXPECT_EQ(result.bottleneck, 0);
}

TEST(Adversary, ScheduleSamplingFindsAtLeastAsLongProcesses) {
  // Exploring delivery nondeterminism can only lengthen the chosen
  // communication lists (the proof's adversary picks the longest
  // *process*, not just the best initiator).
  TreeCounterParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.seed = 6;
  cfg.delay = DelayModel::uniform(1, 16);
  Simulator base(std::make_unique<TreeCounter>(params), cfg);

  AdversaryOptions single;
  single.schedule_samples = 1;
  const AdversaryResult one = run_adversarial_sequence(base, single);

  AdversaryOptions multi;
  multi.schedule_samples = 6;
  const AdversaryResult many = run_adversarial_sequence(base, multi);

  // From identical initial state, the multi-schedule probe includes the
  // single-schedule one as its first sample, so step 0 can only improve.
  // (Later steps run from diverged states and are not comparable.)
  ASSERT_FALSE(one.steps.empty());
  ASSERT_EQ(many.steps.size(), one.steps.size());
  EXPECT_GE(many.steps[0].messages, one.steps[0].messages);
}

TEST(Adversary, ReseedReproducesChosenSchedules) {
  TreeCounterParams params;
  params.k = 2;
  SimConfig cfg;
  cfg.seed = 9;
  cfg.delay = DelayModel::uniform(1, 12);
  Simulator base(std::make_unique<TreeCounter>(params), cfg);
  AdversaryOptions options;
  options.schedule_samples = 4;
  options.seed = 1234;
  const AdversaryResult a = run_adversarial_sequence(base, options);
  const AdversaryResult b = run_adversarial_sequence(base, options);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].chosen, b.steps[i].chosen);
    EXPECT_EQ(a.steps[i].messages, b.steps[i].messages);
  }
  EXPECT_EQ(a.max_load, b.max_load);
}

TEST(Adversary, ParallelRunsAreBitIdenticalToSerial) {
  // The tentpole determinism contract: threads only change wall-clock,
  // never the result. Exercise both the candidate sampler and the
  // schedule-sample reseeds across 3 seeds.
  for (const std::uint64_t seed : {7ull, 99ull, 12345ull}) {
    TreeCounterParams params;
    params.k = 2;
    SimConfig cfg;
    cfg.seed = seed;
    cfg.delay = DelayModel::uniform(1, 12);
    Simulator base(std::make_unique<TreeCounter>(params), cfg);
    AdversaryOptions serial;
    serial.threads = 1;
    serial.seed = seed;
    serial.schedule_samples = 3;
    serial.sample_candidates = 5;
    AdversaryOptions parallel = serial;
    parallel.threads = 4;
    const AdversaryResult a = run_adversarial_sequence(base, serial);
    const AdversaryResult b = run_adversarial_sequence(base, parallel);
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (std::size_t i = 0; i < a.steps.size(); ++i) {
      EXPECT_EQ(a.steps[i].chosen, b.steps[i].chosen) << "seed " << seed;
      EXPECT_EQ(a.steps[i].messages, b.steps[i].messages) << "seed " << seed;
    }
    EXPECT_EQ(a.max_load, b.max_load);
    EXPECT_EQ(a.bottleneck, b.bottleneck);
    EXPECT_EQ(a.total_messages, b.total_messages);
    EXPECT_EQ(a.last_processor, b.last_processor);
    EXPECT_EQ(a.last_processor_load, b.last_processor_load);
  }
}

TEST(Adversary, ParallelFullGreedyMatchesSerialOnEveryCounter) {
  // Full candidate enumeration (no sampling) across implementations.
  for (const CounterKind kind : all_counter_kinds()) {
    SimConfig cfg;
    cfg.seed = 21;
    Simulator base(make_counter(kind, 8), cfg);
    AdversaryOptions serial;
    serial.threads = 1;
    AdversaryOptions parallel = serial;
    parallel.threads = 4;
    const AdversaryResult a = run_adversarial_sequence(base, serial);
    const AdversaryResult b = run_adversarial_sequence(base, parallel);
    ASSERT_EQ(a.steps.size(), b.steps.size()) << to_string(kind);
    for (std::size_t i = 0; i < a.steps.size(); ++i) {
      EXPECT_EQ(a.steps[i].chosen, b.steps[i].chosen) << to_string(kind);
      EXPECT_EQ(a.steps[i].messages, b.steps[i].messages) << to_string(kind);
    }
    EXPECT_EQ(a.max_load, b.max_load) << to_string(kind);
    EXPECT_EQ(a.bottleneck, b.bottleneck) << to_string(kind);
  }
}

TEST(Adversary, CandidateSamplingIsWithoutReplacement) {
  // A candidate must never be dry-run twice in one step.
  std::vector<ProcessorId> pool;
  for (ProcessorId p = 0; p < 50; ++p) pool.push_back(p);
  Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    const auto picked = sample_without_replacement(pool, 7, rng);
    ASSERT_EQ(picked.size(), 7u);
    const std::set<ProcessorId> unique(picked.begin(), picked.end());
    EXPECT_EQ(unique.size(), picked.size());
    for (const ProcessorId p : picked) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, 50);
    }
  }
  // Oversized / zero samples mean "everyone, once".
  EXPECT_EQ(sample_without_replacement(pool, 100, rng).size(), pool.size());
  EXPECT_EQ(sample_without_replacement(pool, 0, rng).size(), pool.size());
}

TEST(Adversary, PaperKMatchesBoundMath) {
  TreeCounterParams params;
  params.k = 3;
  Simulator base(std::make_unique<TreeCounter>(params), {});
  AdversaryOptions options;
  options.sample_candidates = 4;
  const AdversaryResult result = run_adversarial_sequence(base, options);
  EXPECT_NEAR(result.paper_k, 3.0, 1e-6);
}

}  // namespace
}  // namespace dcnt
