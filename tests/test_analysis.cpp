#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "analysis/dag.hpp"
#include "analysis/hotspot.hpp"
#include "analysis/report.hpp"
#include "analysis/weights.hpp"
#include "baselines/central.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

Simulator traced_tree_sim(int k, std::uint64_t seed = 1) {
  TreeCounterParams params;
  params.k = k;
  SimConfig cfg;
  cfg.seed = seed;
  cfg.enable_trace = true;
  cfg.delay = DelayModel::uniform(1, 6);
  return Simulator(std::make_unique<TreeCounter>(params), cfg);
}

TEST(IncDag, SingleIncIsAPath) {
  Simulator sim = traced_tree_sim(2);
  const OpId op = sim.begin_inc(5);
  sim.run_until_quiescent();
  const IncDag dag = build_inc_dag(sim.trace(), op, 5);
  // First inc: leaf -> level2 -> level1 -> root -> leaf, no retirement.
  ASSERT_EQ(dag.nodes.size(), 5u);
  ASSERT_EQ(dag.arcs.size(), 4u);
  EXPECT_EQ(dag.nodes[0].processor, 5);   // source = initiator
  EXPECT_EQ(dag.nodes.back().processor, 5);  // value returns to initiator
  for (std::size_t i = 0; i < dag.arcs.size(); ++i) {
    EXPECT_EQ(dag.arcs[i].from, static_cast<int>(i));
    EXPECT_EQ(dag.arcs[i].to, static_cast<int>(i + 1));
  }
}

TEST(IncDag, CommunicationListMatchesPaperLengthConvention) {
  Simulator sim = traced_tree_sim(2);
  const OpId op = sim.begin_inc(3);
  sim.run_until_quiescent();
  const IncDag dag = build_inc_dag(sim.trace(), op, 3);
  const auto list = communication_list(dag);
  // Length in arcs = number of messages of the op.
  EXPECT_EQ(static_cast<std::int64_t>(list.size()) - 1,
            op_message_count(sim.trace(), op));
  EXPECT_EQ(list.front(), 3);
}

TEST(IncDag, BranchingAppearsWhenRetirementsCascade) {
  Simulator sim = traced_tree_sim(2);
  // Drive several incs; some op triggers retirements, whose handover
  // and notification messages branch off the path.
  run_sequential(sim, schedule_sequential(8));
  bool saw_branching = false;
  for (OpId op = 0; op < 8; ++op) {
    const IncDag dag = build_inc_dag(
        sim.trace(), op, static_cast<ProcessorId>(op));
    std::set<int> froms;
    for (const auto& arc : dag.arcs) {
      if (!froms.insert(arc.from).second) saw_branching = true;
    }
  }
  EXPECT_TRUE(saw_branching);
}

TEST(IncDag, ParticipantsIncludeOriginEvenWithoutMessages) {
  SimConfig cfg;
  cfg.enable_trace = true;
  Simulator sim(std::make_unique<CentralCounter>(4, 0), cfg);
  const OpId op = sim.begin_inc(0);  // holder incs locally: zero messages
  sim.run_until_quiescent();
  const auto set = participants(sim.trace(), op, 0);
  EXPECT_EQ(set, (std::vector<ProcessorId>{0}));
}

TEST(IncDag, DotOutputMentionsAllOccurrences) {
  Simulator sim = traced_tree_sim(2);
  const OpId op = sim.begin_inc(7);
  sim.run_until_quiescent();
  const IncDag dag = build_inc_dag(sim.trace(), op, 7);
  const std::string dot = to_dot(dag);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(HotSpot, HoldsForTreeCounter) {
  Simulator sim = traced_tree_sim(3, 5);
  const auto order = schedule_sequential(81);
  run_sequential(sim, order);
  const HotSpotReport report = check_hot_spot(sim.trace(), order);
  EXPECT_TRUE(report.all_intersect);
  EXPECT_EQ(report.pairs_checked, 80);
  EXPECT_GE(report.min_intersection, 1);
}

TEST(HotSpot, HoldsForCentralCounter) {
  SimConfig cfg;
  cfg.enable_trace = true;
  Simulator sim(std::make_unique<CentralCounter>(16), cfg);
  const auto order = schedule_sequential(16);
  run_sequential(sim, order);
  const HotSpotReport report = check_hot_spot(sim.trace(), order);
  EXPECT_TRUE(report.all_intersect);
  // The holder is the (only) common participant of consecutive incs.
  EXPECT_GE(report.min_intersection, 1);
}

TEST(Weights, ListWeightMatchesHandComputation) {
  // w = (m0+1)/1 + (m1+1)/2 + (m2+1)/4.
  const double w = list_weight({0, 1, 2}, std::vector<std::int64_t>{4, 1, 3});
  EXPECT_DOUBLE_EQ(w, 5.0 + 1.0 + 1.0);
  // Fresh system: all loads zero -> weight = sum 2^-j < 2.
  const double fresh = list_weight({0, 1, 2, 3},
                                   std::vector<std::int64_t>{0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(fresh, 1.0 + 0.5 + 0.25 + 0.125);
}

TEST(Weights, RepeatedProcessorCountsPerOccurrence) {
  const double w = list_weight({1, 1}, std::vector<std::int64_t>{0, 7, 0});
  EXPECT_DOUBLE_EQ(w, 8.0 + 4.0);
}

TEST(Report, FieldsAreConsistent) {
  Simulator sim = traced_tree_sim(3, 2);
  run_sequential(sim, schedule_sequential(81));
  const LoadReport report = make_load_report(sim);
  EXPECT_EQ(report.n, 81);
  EXPECT_EQ(report.ops, 81);
  EXPECT_EQ(report.max_load, sim.metrics().max_load());
  EXPECT_NEAR(report.paper_k, 3.0, 1e-9);
  EXPECT_NEAR(report.load_per_k * report.paper_k,
              static_cast<double>(report.max_load), 1e-9);
  EXPECT_GE(report.p99, report.p50);
  EXPECT_GE(report.max_load, report.p99);
  const std::string text = to_string(report);
  EXPECT_NE(text.find("max_load"), std::string::npos);
}

}  // namespace
}  // namespace dcnt
