// Model-checking small instances: every delivery schedule, not just
// sampled ones (the §2 model quantifies over all of them).
#include "analysis/explore.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

#include <memory>

#include "baselines/central.hpp"
#include "baselines/counting_network.hpp"
#include "core/tree_counter.hpp"
#include "core/tree_pq.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

TEST(Explore, CentralCounterTwoConcurrentIncsExhaustive) {
  Simulator base(std::make_unique<CentralCounter>(4), {});
  const ExploreResult result = explore_schedules(base, {1, 2});
  EXPECT_FALSE(result.truncated);
  // Two requests race to the holder: 2 orders at the holder, then the
  // replies interleave; every path must hand out {0, 1}.
  EXPECT_GE(result.paths, 2);
  EXPECT_EQ(result.max_depth, 4);  // 2 requests + 2 replies
  EXPECT_EQ(result.distinct_outcomes, 2);  // (0,1) and (1,0)
}

TEST(Explore, CentralCounterThreeIncs) {
  Simulator base(std::make_unique<CentralCounter>(5), {});
  const ExploreResult result = explore_schedules(base, {1, 2, 3});
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.distinct_outcomes, 6);  // all 3! arrival orders
}

TEST(Explore, TreeCounterSingleIncAllSchedules) {
  TreeCounterParams params;
  params.k = 2;
  Simulator base(std::make_unique<TreeCounter>(params), {});
  const ExploreResult result = explore_schedules(base, {5});
  EXPECT_FALSE(result.truncated);
  // One inc is a chain: exactly one schedule, k+2 messages.
  EXPECT_EQ(result.paths, 1);
  EXPECT_EQ(result.max_depth, 4);
  EXPECT_EQ(result.distinct_outcomes, 1);
}

TEST(Explore, TreeCounterTwoConcurrentIncsExhaustive) {
  TreeCounterParams params;
  params.k = 2;
  Simulator base(std::make_unique<TreeCounter>(params), {});
  const ExploreResult result = explore_schedules(base, {0, 7});
  EXPECT_FALSE(result.truncated);
  EXPECT_GT(result.paths, 1);
  EXPECT_EQ(result.distinct_outcomes, 2);
}

TEST(Explore, TreeCounterRetirementCascadeAllSchedules) {
  // Warm the tree until the next inc is about to trigger retirements,
  // then explore every schedule of that inc — this model-checks the
  // handover / new-id / stash / forward machinery exhaustively.
  TreeCounterParams params;
  params.k = 2;
  params.age_threshold = 6;  // retire a bit sooner; still stable (>= k+2)
  bool found_branching = false;
  std::int64_t paths_checked = 0;
  for (std::int64_t warm = 0; warm < 7 && !found_branching; ++warm) {
    Simulator base(std::make_unique<TreeCounter>(params), {});
    std::vector<ProcessorId> warmup;
    for (ProcessorId p = 0; p < warm; ++p) warmup.push_back(p);
    if (!warmup.empty()) run_sequential(base, warmup);
    // Explore the next op's schedules; when it triggers a retirement,
    // the handover + notification fan-out branches the schedule tree —
    // far past full exhaustiveness (two simultaneous retirements put
    // ~10 messages in flight), so coverage is cap-bounded. Every
    // explored path still checks all invariants.
    ExploreOptions options;
    options.max_paths = 100'000;
    const ExploreResult result = explore_schedules(
        base, {static_cast<ProcessorId>(warm)}, options);
    EXPECT_EQ(result.distinct_outcomes, 1);  // single op: value fixed
    paths_checked += result.paths;
    if (result.paths > 1) found_branching = true;
  }
  // Some warmup length leaves a node one message short of retirement.
  EXPECT_TRUE(found_branching);
  EXPECT_GE(paths_checked, 1000);  // real coverage, not a near-miss
}

TEST(Explore, CountingNetworkTwoTokensExhaustive) {
  CountingNetworkParams params;
  params.n = 4;
  params.width = 2;
  Simulator base(std::make_unique<CountingNetworkCounter>(params), {});
  const ExploreResult result = explore_schedules(base, {0, 1});
  EXPECT_FALSE(result.truncated);
  EXPECT_EQ(result.distinct_outcomes, 2);
}

TEST(Explore, PriorityQueueInsertExtractExhaustive) {
  TreeServiceParams params;
  params.k = 2;
  Simulator base(std::make_unique<TreePriorityQueue>(params), {});
  // Insert then (sequentially) extract: both explored exhaustively.
  ExploreOptions options;
  options.check_counter_semantics = false;
  options.on_path_end = [](const Simulator& sim) {
    DCNT_CHECK(sim.result(0).has_value());
    DCNT_CHECK(*sim.result(0) == 42);
  };
  const ExploreResult insert_result = explore_schedules_args(
      base, {{3, {TreePriorityQueue::kOpInsert, 42}}}, options);
  EXPECT_FALSE(insert_result.truncated);
  EXPECT_GE(insert_result.paths, 1);
}

TEST(Explore, TruncationIsReportedNotSilent) {
  TreeCounterParams params;
  params.k = 2;
  Simulator base(std::make_unique<TreeCounter>(params), {});
  ExploreOptions options;
  options.max_paths = 3;  // deliberately tiny
  const ExploreResult result =
      explore_schedules(base, {0, 2, 4, 6}, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.paths, 3);
}

TEST(Explore, CustomInvariantRuns) {
  Simulator base(std::make_unique<CentralCounter>(3), {});
  int calls = 0;
  ExploreOptions options;
  options.on_path_end = [&calls](const Simulator& sim) {
    ++calls;
    DCNT_CHECK(sim.metrics().total_messages() == 4);
  };
  const ExploreResult result = explore_schedules(base, {1, 2}, options);
  EXPECT_EQ(calls, result.paths);
}

TEST(Explore, ParallelExplorationMatchesSerial) {
  Simulator central(std::make_unique<CentralCounter>(5), {});
  TreeCounterParams params;
  params.k = 2;
  Simulator tree(std::make_unique<TreeCounter>(params), {});
  const auto check = [](const Simulator& base,
                        const std::vector<ProcessorId>& ops) {
    ExploreOptions serial;
    serial.threads = 1;
    ExploreOptions parallel = serial;
    parallel.threads = 4;
    const ExploreResult a = explore_schedules(base, ops, serial);
    const ExploreResult b = explore_schedules(base, ops, parallel);
    EXPECT_EQ(a.paths, b.paths);
    EXPECT_EQ(a.truncated, b.truncated);
    EXPECT_EQ(a.max_depth, b.max_depth);
    EXPECT_EQ(a.distinct_outcomes, b.distinct_outcomes);
  };
  check(central, {1, 2, 3});
  check(tree, {0, 7});
}

TEST(Explore, ParallelTruncationLandsAtTheSamePath) {
  // Truncation is order-sensitive: the parallel merge must stop at the
  // exact path where the serial DFS stops.
  Simulator base(std::make_unique<CentralCounter>(5), {});
  for (const std::int64_t cap : {1, 3, 7}) {
    ExploreOptions serial;
    serial.threads = 1;
    serial.max_paths = cap;
    ExploreOptions parallel = serial;
    parallel.threads = 4;
    const ExploreResult a = explore_schedules(base, {1, 2, 3}, serial);
    const ExploreResult b = explore_schedules(base, {1, 2, 3}, parallel);
    EXPECT_EQ(a.paths, b.paths) << "cap " << cap;
    EXPECT_EQ(a.truncated, b.truncated) << "cap " << cap;
    EXPECT_EQ(a.max_depth, b.max_depth) << "cap " << cap;
    EXPECT_EQ(a.distinct_outcomes, b.distinct_outcomes) << "cap " << cap;
  }
}

}  // namespace
}  // namespace dcnt
