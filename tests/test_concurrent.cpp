// The concurrency plane (src/concurrent/): history capture + the
// linearizability checker's edge cases, the windowed in-flight workload
// on the real threaded runtime, and the elastic tree's online resizes.
//
// The runtime tests here are the live-history half of what
// test_linearizability proves on the simulator: the histories checked
// are real wall-clock (invoke, response, value) triples recorded by
// concurrent::HistoryBuffer while many ops were genuinely outstanding.
#include "concurrent/history.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "concurrent/elastic_tree.hpp"
#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "harness/throughput.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

CounterOpRecord rec(OpId op, SimTime inv, SimTime resp, Value value) {
  return CounterOpRecord{op, inv, resp, value};
}

// --- checker edge cases -------------------------------------------------

TEST(Checker, SingleOpIsLinearizable) {
  const auto report = check_linearizable({rec(0, 3, 9, 0)});
  EXPECT_TRUE(report.linearizable);
  EXPECT_EQ(report.violations, 0);
  EXPECT_EQ(report.duplicate_values, 0);
}

TEST(Checker, DuplicateValuesAreRejected) {
  // A counter must hand out distinct values; two ops returning 1 is a
  // violation even though no real-time pair inverts.
  const auto report = check_linearizable({
      rec(0, 0, 1, 0),
      rec(1, 2, 3, 1),
      rec(2, 4, 5, 1),
  });
  EXPECT_FALSE(report.linearizable);
  EXPECT_EQ(report.duplicate_values, 1);
  EXPECT_GE(report.violations, 1);
}

TEST(Checker, AllConcurrentHistoryAcceptsAnyPermutation) {
  // Every op overlaps every other: no resp(A) < inv(B) constraints
  // exist, so any assignment of distinct values linearizes.
  const auto report = check_linearizable({
      rec(0, 0, 100, 3),
      rec(1, 1, 99, 0),
      rec(2, 2, 98, 2),
      rec(3, 3, 97, 1),
  });
  EXPECT_TRUE(report.linearizable);
  EXPECT_EQ(report.violations, 0);
}

TEST(Checker, QuiescentButNotLinearizableHistoryIsCaught) {
  // The HSW96 separation in one history: the values 0..3 form an exact
  // permutation — a quiescent observer (run_throughput's values_ok)
  // calls this correct — but op 1 responded with value 2 strictly
  // before ops 2 and 3 were invoked and they received 0 and 1. A
  // counting network can produce exactly this; a serializing counter
  // cannot.
  const auto report = check_linearizable({
      rec(0, 0, 1, 3),
      rec(1, 0, 2, 2),
      rec(2, 10, 12, 0),
      rec(3, 11, 13, 1),
  });
  EXPECT_FALSE(report.linearizable);
  // Violations count undercutting ops (the sweep charges each op B
  // once, not once per inverted pair): ops 2 and 3 both undercut.
  EXPECT_EQ(report.violations, 2);
  EXPECT_EQ(report.duplicate_values, 0);
  EXPECT_EQ(report.first_a, 0);
  EXPECT_EQ(report.first_b, 2);
}

TEST(HistoryBuffer, CapturesAndSnapshotsSkippingWarmup) {
  concurrent::HistoryBuffer buf(4);
  for (OpId op = 0; op < 4; ++op) {
    buf.on_invoke(op, 10 + op);
    buf.on_response(op, 20 + op, Value{op});
  }
  const auto all = buf.snapshot();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[2].op, 2);
  EXPECT_EQ(all[2].invoked, 12);
  EXPECT_EQ(all[2].responded, 22);
  EXPECT_EQ(all[2].value, 2);
  // first_op drops the warmup prefix.
  const auto tail = buf.snapshot(3);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].op, 3);
  EXPECT_TRUE(check_linearizable(all).linearizable);
}

// --- windowed in-flight workload on the threaded runtime ----------------

ThroughputResult run_windowed(CounterKind kind, std::size_t inflight,
                              std::size_t workers = 2,
                              std::size_t ops = 2048) {
  ThroughputOptions options;
  options.workers = workers;
  options.ops = ops;
  options.concurrency = 4;
  options.inflight = inflight;
  options.warmup = 64;
  options.seed = 11;
  return run_throughput(make_counter(kind, 8), options);
}

TEST(InflightRuntime, SerializingCountersLinearizeAtDeepWindows) {
  for (const CounterKind kind :
       {CounterKind::kTree, CounterKind::kCentral, CounterKind::kCombining}) {
    const ThroughputResult res = run_windowed(kind, 64);
    EXPECT_TRUE(res.values_ok) << to_string(kind);
    ASSERT_TRUE(res.lin_checked) << to_string(kind);
    EXPECT_TRUE(res.linearizable) << to_string(kind);
    EXPECT_EQ(res.lin_violations, 0) << to_string(kind);
  }
}

TEST(InflightRuntime, DiffractingTreeStaysQuiescentAtDeepWindows) {
  // The quiescent half of the separation on live threads: values must
  // still be an exact permutation (values_ok aborts otherwise) and the
  // checker must have run. Whether an inversion is *caught* depends on
  // scheduling luck, so only the quiescent contract is asserted.
  const ThroughputResult res = run_windowed(CounterKind::kDiffracting, 64);
  EXPECT_TRUE(res.values_ok);
  ASSERT_TRUE(res.lin_checked);
  EXPECT_FALSE(expected_linearizable(CounterKind::kDiffracting));
}

TEST(InflightRuntime, InflightOneMatchesClassicClosedLoop) {
  // inflight=1 is today's driver: each slot holds one op, so the
  // central counter moves exactly one request and one reply per op
  // initiated away from the root (processor-0 ops stay local) — the
  // same message count the classic closed loop produced.
  ThroughputOptions options;
  options.workers = 1;
  options.ops = 512;
  options.concurrency = 4;
  options.inflight = 1;
  options.seed = 3;
  const ThroughputResult res =
      run_throughput(make_counter(CounterKind::kCentral, 8), options);
  EXPECT_TRUE(res.values_ok);
  // Round-robin initiators over n=8: 512/8 ops originate at the root.
  EXPECT_EQ(res.total_messages, 2 * (512 - 512 / 8));
  ASSERT_TRUE(res.lin_checked);
  EXPECT_TRUE(res.linearizable);
}

TEST(InflightRuntime, BurstShapeSplitsSloByPhase) {
  ThroughputOptions options;
  options.workers = 2;
  options.ops = 2000;
  options.open_rate = 50000.0;
  options.shape = "burst";
  options.period_s = 0.02;
  options.duty = 0.5;
  options.slo_us = 500.0;
  options.seed = 5;
  const ThroughputResult res =
      run_throughput(make_counter(CounterKind::kCentral, 8), options);
  EXPECT_TRUE(res.values_ok);
  ASSERT_TRUE(res.slo_phases);
  // Every measured op is charged to exactly one phase of its scheduled
  // arrival, and a 50% duty cycle at this rate exercises both.
  EXPECT_EQ(res.slo_high_den + res.slo_low_den, res.slo_den);
  EXPECT_GT(res.slo_high_den, 0);
  EXPECT_GT(res.slo_low_den, 0);
  EXPECT_EQ(res.slo_high_ok + res.slo_low_ok, res.slo_ok);
}

// --- elastic tree -------------------------------------------------------

TEST(ElasticTree, ScriptedResizeOnRuntimeKeepsExactValues) {
  concurrent::ElasticTreeParams params;
  params.initial_k = 2;
  params.min_k = 2;
  params.max_k = 3;
  params.resize_period = 16;
  params.plan = {concurrent::ElasticStep{3, 0}};
  auto counter = std::make_unique<concurrent::ElasticTreeCounter>(params);
  ThroughputOptions options;
  options.workers = 2;
  options.ops = 4000;
  options.concurrency = 8;
  options.inflight = 8;
  options.seed = 7;
  const ThroughputResult res = run_throughput(std::move(counter), options);
  EXPECT_TRUE(res.values_ok);
  ASSERT_TRUE(res.lin_checked);
  EXPECT_TRUE(res.linearizable);
  EXPECT_GE(res.elastic_resizes, 1u);
  EXPECT_GE(res.elastic_epochs, 2u);
  EXPECT_EQ(res.elastic_final_k, 3);
}

TEST(ElasticTree, GrowThenShrinkOnSimulator) {
  concurrent::ElasticTreeParams params;
  params.initial_k = 2;
  params.min_k = 2;
  params.max_k = 3;
  params.resize_period = 16;
  params.plan = {concurrent::ElasticStep{3, 0}, concurrent::ElasticStep{2, 0}};
  auto counter = std::make_unique<concurrent::ElasticTreeCounter>(params);
  const auto n = static_cast<std::int64_t>(counter->num_processors());
  EXPECT_EQ(n, 81);  // max_k^(max_k+1)
  auto* view = counter.get();
  SimConfig cfg;
  cfg.seed = 7;
  Simulator sim(std::move(counter), cfg);
  const auto order = make_initiators("roundrobin", 0.9, n, 4000, 7);
  const RunResult res = run_concurrent(sim, make_batches(order, 8));
  EXPECT_TRUE(res.values_ok);
  EXPECT_GE(view->resizes(), 2u);
  EXPECT_GE(view->epochs_used(), 3u);
  EXPECT_EQ(view->current_k(), 2);
  EXPECT_EQ(view->current_age_threshold(), 8);  // step default 4k
}

TEST(ElasticTree, PeriodZeroNeverResizes) {
  concurrent::ElasticTreeParams params;
  params.initial_k = 2;
  params.min_k = 2;
  params.max_k = 3;
  params.resize_period = 0;
  params.plan = {concurrent::ElasticStep{3, 0}};
  auto counter = std::make_unique<concurrent::ElasticTreeCounter>(params);
  auto* view = counter.get();
  ThroughputOptions options;
  options.workers = 1;
  options.ops = 1000;
  options.concurrency = 4;
  options.seed = 2;
  const ThroughputResult res = run_throughput(
      std::unique_ptr<CounterProtocol>(counter.release()), options);
  EXPECT_TRUE(res.values_ok);
  EXPECT_EQ(res.elastic_resizes, 0u);
  EXPECT_EQ(res.elastic_epochs, 1u);
  EXPECT_EQ(res.elastic_final_k, 2);
  (void)view;
}

TEST(ElasticTree, FactoryMakesElastic) {
  const CounterKind kind = counter_kind_from_string("elastic");
  EXPECT_EQ(kind, CounterKind::kElastic);
  auto counter = make_counter(kind, 8);
  EXPECT_EQ(counter->num_processors(), 81u);
  EXPECT_TRUE(counter->shard_safe());
  EXPECT_TRUE(expected_linearizable(kind));
}

}  // namespace
}  // namespace dcnt
