// Wire-format tests: every frame type round-trips, the stream reader
// reassembles frames from arbitrary chunking, and malformed input dies
// loudly instead of being misread.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/wire.hpp"
#include "sim/message.hpp"

namespace dcnt::net {
namespace {

FrameView view(const std::vector<std::uint8_t>& encoded) {
  // Strip the 4-byte length word, as the event loop does.
  return FrameView(encoded.data() + 4, encoded.size() - 4);
}

TEST(Wire, HelloRoundTrip) {
  const HelloFrame in{7, 40001, 40002};
  const HelloFrame out = decode_hello(view(encode_hello(in)));
  EXPECT_EQ(out.node_id, 7u);
  EXPECT_EQ(out.tcp_port, 40001);
  EXPECT_EQ(out.udp_port, 40002);
}

TEST(Wire, PeersRoundTrip) {
  PeersFrame in;
  in.peers.push_back(PeerAddr{0, 1111, 0});
  in.peers.push_back(PeerAddr{1, 2222, 3333});
  const PeersFrame out = decode_peers(view(encode_peers(in)));
  ASSERT_EQ(out.peers.size(), 2u);
  EXPECT_EQ(out.peers[0].tcp_port, 1111);
  EXPECT_EQ(out.peers[1].node_id, 1u);
  EXPECT_EQ(out.peers[1].udp_port, 3333);
}

TEST(Wire, ReadyRoundTrip) {
  EXPECT_EQ(decode_ready(view(encode_ready(ReadyFrame{3}))).node_id, 3u);
}

TEST(Wire, StartRoundTripWithAndWithoutArgs) {
  const StartFrame plain{42, 5, {}};
  const StartFrame plain_out = decode_start(view(encode_start(plain)));
  EXPECT_EQ(plain_out.op, 42);
  EXPECT_EQ(plain_out.origin, 5);
  EXPECT_TRUE(plain_out.args.empty());

  const StartFrame rich{7, 2, {1, -9, 1'000'000'000'000}};
  const StartFrame rich_out = decode_start(view(encode_start(rich)));
  EXPECT_EQ(rich_out.args, (std::vector<std::int64_t>{1, -9, 1'000'000'000'000}));
}

TEST(Wire, CompleteRoundTripNegativeValue) {
  const CompleteFrame out =
      decode_complete(view(encode_complete(CompleteFrame{9, -5})));
  EXPECT_EQ(out.op, 9);
  EXPECT_EQ(out.value, -5);
}

TEST(Wire, MessageRoundTripPreservesEnvelopeFields) {
  Message msg;
  msg.src = 3;
  msg.dst = 11;
  msg.tag = 1'000'001;  // a ReliableTransport Data tag rides unchanged
  msg.op = 1234;
  msg.args = {17, 0, -3};
  const Message out = decode_message(view(encode_message(msg)));
  EXPECT_EQ(out.src, 3);
  EXPECT_EQ(out.dst, 11);
  EXPECT_EQ(out.tag, 1'000'001);
  EXPECT_EQ(out.op, 1234);
  EXPECT_EQ(out.args, msg.args);
  EXPECT_FALSE(out.local);
}

TEST(Wire, StatsRoundTrip) {
  StatsFrame in;
  in.node_id = 2;
  in.events_processed = 100;
  in.wire_msgs_sent = 7;
  in.wire_msgs_received = 6;
  in.wire_bytes_sent = 700;
  in.wire_bytes_received = 600;
  in.injected_drops = 3;
  in.unacked = 1;
  in.retransmissions = 4;
  in.duplicates_suppressed = 2;
  in.messages_abandoned = 1;
  in.loads.push_back(ProcLoad{2, 10, 11, 40});
  in.loads.push_back(ProcLoad{6, 0, 1, 2});
  const StatsFrame out = decode_stats(view(encode_stats(in)));
  EXPECT_EQ(out.node_id, 2u);
  EXPECT_EQ(out.events_processed, 100);
  EXPECT_EQ(out.wire_msgs_received, 6);
  EXPECT_EQ(out.injected_drops, 3);
  EXPECT_EQ(out.unacked, 1);
  EXPECT_EQ(out.retransmissions, 4);
  ASSERT_EQ(out.loads.size(), 2u);
  EXPECT_EQ(out.loads[0].pid, 2);
  EXPECT_EQ(out.loads[0].received, 11);
  EXPECT_EQ(out.loads[1].words, 2);
}

TEST(Wire, BodylessFrames) {
  EXPECT_EQ(view(encode_stats_request()).type(), FrameType::kStatsRequest);
  EXPECT_EQ(view(encode_shutdown()).type(), FrameType::kShutdown);
}

TEST(Wire, FrameReaderReassemblesByteAtATime) {
  std::vector<std::uint8_t> stream;
  const auto a = encode_ready(ReadyFrame{1});
  const auto b = encode_complete(CompleteFrame{5, 55});
  const auto c = encode_stats_request();
  stream.insert(stream.end(), a.begin(), a.end());
  stream.insert(stream.end(), b.begin(), b.end());
  stream.insert(stream.end(), c.begin(), c.end());

  FrameReader reader;
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<std::uint8_t> payload;
  for (const std::uint8_t byte : stream) {
    reader.feed(&byte, 1);
    while (reader.pop(payload)) frames.push_back(payload);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(decode_ready(FrameView(frames[0].data(), frames[0].size())).node_id,
            1u);
  EXPECT_EQ(
      decode_complete(FrameView(frames[1].data(), frames[1].size())).value, 55);
  EXPECT_EQ(FrameView(frames[2].data(), frames[2].size()).type(),
            FrameType::kStatsRequest);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(Wire, FrameReaderHandlesSplitAcrossFeeds) {
  const auto frame = encode_complete(CompleteFrame{1, 2});
  FrameReader reader;
  const std::size_t cut = frame.size() / 2;
  reader.feed(frame.data(), cut);
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(reader.pop(payload));
  reader.feed(frame.data() + cut, frame.size() - cut);
  ASSERT_TRUE(reader.pop(payload));
  EXPECT_EQ(decode_complete(FrameView(payload.data(), payload.size())).op, 1);
}

TEST(Wire, RejectsForeignVersion) {
  auto frame = encode_ready(ReadyFrame{0});
  frame[4] = kWireVersion + 1;  // version byte, after the length word
  EXPECT_DEATH(FrameView(frame.data() + 4, frame.size() - 4),
               "wire version mismatch");
}

TEST(Wire, RejectsUnknownType) {
  auto frame = encode_ready(ReadyFrame{0});
  frame[5] = 200;  // type byte
  const FrameView v(frame.data() + 4, frame.size() - 4);
  EXPECT_DEATH(v.type(), "unknown frame type");
}

TEST(Wire, RejectsCorruptLength) {
  std::vector<std::uint8_t> bogus = {0xff, 0xff, 0xff, 0x7f, 1, 3};
  FrameReader reader;
  reader.feed(bogus.data(), bogus.size());
  std::vector<std::uint8_t> payload;
  EXPECT_DEATH(reader.pop(payload), "corrupt frame length");
}

TEST(Wire, RejectsTruncatedBody) {
  auto frame = encode_hello(HelloFrame{1, 2, 3});
  // Chop the last body byte but keep the header consistent.
  std::vector<std::uint8_t> payload(frame.begin() + 4, frame.end() - 1);
  const FrameView v(payload.data(), payload.size());
  EXPECT_DEATH(decode_hello(v), "truncated frame body");
}

TEST(Wire, RejectsTrailingBytes) {
  auto frame = encode_ready(ReadyFrame{1});
  std::vector<std::uint8_t> payload(frame.begin() + 4, frame.end());
  payload.push_back(0);
  const FrameView v(payload.data(), payload.size());
  EXPECT_DEATH(decode_ready(v), "trailing bytes");
}

// --- v2 keyed envelope ----------------------------------------------------

TEST(Wire, KeyedMessageRoundTrip) {
  Message msg;
  msg.src = 3;
  msg.dst = 11;
  msg.tag = 1'000'001;
  msg.op = 1234;
  msg.key = 99'999;
  msg.args = {17, 0, -3};
  const auto encoded = encode_keyed_message(msg);
  Message out;
  ASSERT_TRUE(decode_keyed_message(view(encoded), &out));
  EXPECT_EQ(out.key, 99'999);
  EXPECT_EQ(out.src, 3);
  EXPECT_EQ(out.dst, 11);
  EXPECT_EQ(out.tag, 1'000'001);
  EXPECT_EQ(out.op, 1234);
  EXPECT_EQ(out.args, msg.args);
  EXPECT_FALSE(out.local);

  // The zero-allocation append path emits byte-identical frames.
  std::vector<std::uint8_t> appended;
  EXPECT_EQ(append_keyed_message(appended, msg), encoded.size());
  EXPECT_EQ(appended, encoded);
}

TEST(Wire, StartBatchRoundTrip) {
  StartBatchFrame in;
  in.ops.push_back(StartBatchEntry{7, 2, 0});
  in.ops.push_back(StartBatchEntry{8, 5, 99'999});
  in.ops.push_back(StartBatchEntry{9, 0, 1});
  StartBatchFrame out;
  ASSERT_TRUE(decode_start_batch(view(encode_start_batch(in)), &out));
  ASSERT_EQ(out.ops.size(), 3u);
  EXPECT_EQ(out.ops[0].op, 7);
  EXPECT_EQ(out.ops[1].origin, 5);
  EXPECT_EQ(out.ops[1].key, 99'999);
  EXPECT_EQ(out.ops[2].key, 1);
}

TEST(Wire, CompleteBatchRoundTrip) {
  CompleteBatchFrame in;
  in.completions.push_back(CompleteBatchEntry{7, 0});
  in.completions.push_back(CompleteBatchEntry{8, -5});
  const auto encoded = encode_complete_batch(in);
  CompleteBatchFrame out;
  ASSERT_TRUE(decode_complete_batch(view(encoded), &out));
  ASSERT_EQ(out.completions.size(), 2u);
  EXPECT_EQ(out.completions[0].op, 7);
  EXPECT_EQ(out.completions[1].value, -5);

  std::vector<std::uint8_t> appended;
  EXPECT_EQ(append_complete_batch(appended, in), encoded.size());
  EXPECT_EQ(appended, encoded);
}

TEST(Wire, KeyedStatsRoundTrip) {
  KeyedStatsFrame in;
  in.node_id = 2;
  in.last = false;
  in.lru_hits = 10;
  in.lru_misses = 4;
  in.lru_evicts = 3;
  in.lru_rehydrates = 1;
  in.loads.push_back(KeyProcLoad{0, 1, 5, 6});
  in.loads.push_back(KeyProcLoad{99'999, 14, 1, 0});
  KeyedStatsFrame out;
  ASSERT_TRUE(decode_keyed_stats(view(encode_keyed_stats(in)), &out));
  EXPECT_EQ(out.node_id, 2u);
  EXPECT_FALSE(out.last);
  EXPECT_EQ(out.lru_hits, 10);
  EXPECT_EQ(out.lru_rehydrates, 1);
  ASSERT_EQ(out.loads.size(), 2u);
  EXPECT_EQ(out.loads[1].key, 99'999);
  EXPECT_EQ(out.loads[1].pid, 14);
}

TEST(Wire, KeyedStatsRequestIsBodyless) {
  EXPECT_EQ(view(encode_keyed_stats_request()).type(),
            FrameType::kKeyedStatsRequest);
}

// The hardened decoders: every truncation of a valid keyed frame must
// be *rejected* (return false), never aborted on and never misread —
// a mangled fabric frame is dropped and counted, not fatal.
TEST(Wire, KeyedDecodersRejectEveryTruncation) {
  Message msg;
  msg.src = 1;
  msg.dst = 2;
  msg.tag = 3;
  msg.op = 4;
  msg.key = 5;
  msg.args = {6, 7};
  StartBatchFrame sb;
  sb.ops.push_back(StartBatchEntry{1, 2, 3});
  sb.ops.push_back(StartBatchEntry{4, 5, 6});
  CompleteBatchFrame cb;
  cb.completions.push_back(CompleteBatchEntry{1, 2});
  KeyedStatsFrame ks;
  ks.node_id = 1;
  ks.loads.push_back(KeyProcLoad{1, 2, 3, 4});

  const auto check_truncations = [](const std::vector<std::uint8_t>& encoded,
                                    auto decode) {
    // Skip len word; body starts after version+type (offset 6). Every
    // proper prefix of the body must be rejected.
    for (std::size_t len = 2; len + 4 < encoded.size(); ++len) {
      const FrameView v(encoded.data() + 4, len);
      EXPECT_FALSE(decode(v)) << "accepted truncation at " << len;
    }
    // One trailing byte must be rejected too (exact-length contract).
    std::vector<std::uint8_t> padded(encoded.begin() + 4, encoded.end());
    padded.push_back(0);
    EXPECT_FALSE(decode(FrameView(padded.data(), padded.size())));
  };

  check_truncations(encode_keyed_message(msg), [](const FrameView& v) {
    Message out;
    return decode_keyed_message(v, &out);
  });
  check_truncations(encode_start_batch(sb), [](const FrameView& v) {
    StartBatchFrame out;
    return decode_start_batch(v, &out);
  });
  check_truncations(encode_complete_batch(cb), [](const FrameView& v) {
    CompleteBatchFrame out;
    return decode_complete_batch(v, &out);
  });
  check_truncations(encode_keyed_stats(ks), [](const FrameView& v) {
    KeyedStatsFrame out;
    return decode_keyed_stats(v, &out);
  });
}

TEST(Wire, KeyedMessageRejectsNegativeKey) {
  Message msg;
  msg.key = 5;
  msg.src = 0;
  msg.dst = 1;
  auto encoded = encode_keyed_message(msg);
  // key is the first i64 of the body (offset 6 = 4 len + ver + type);
  // force its sign bit.
  encoded[6 + 7] = 0x80;
  Message out;
  EXPECT_FALSE(decode_keyed_message(view(encoded), &out));
}

TEST(Wire, StartBatchRejectsOversizedCount) {
  StartBatchFrame sb;
  sb.ops.push_back(StartBatchEntry{1, 2, 3});
  auto encoded = encode_start_batch(sb);
  // count is the first u32 of the body; claim more entries than the
  // body carries.
  encoded[6] = 0xff;
  encoded[7] = 0xff;
  StartBatchFrame out;
  EXPECT_FALSE(decode_start_batch(view(encoded), &out));
}

// Seeded mutation fuzz: random byte flips in valid keyed frames must
// either decode (the flip hit a don't-care encoding of a valid value)
// or be rejected — never abort, never read out of bounds (ASan-clean
// in the sanitizer CI job).
TEST(Wire, KeyedDecoderFuzzNeverAborts) {
  Message msg;
  msg.src = 2;
  msg.dst = 9;
  msg.tag = 77;
  msg.op = 123;
  msg.key = 4'000;
  msg.args = {1, 2, 3, 4};
  StartBatchFrame sb;
  for (int i = 0; i < 5; ++i)
    sb.ops.push_back(StartBatchEntry{i, i % 3, i * 100});
  KeyedStatsFrame ks;
  ks.node_id = 3;
  for (int i = 0; i < 4; ++i) ks.loads.push_back(KeyProcLoad{i, i, i, i});

  const std::vector<std::vector<std::uint8_t>> seeds = {
      encode_keyed_message(msg), encode_start_batch(sb),
      encode_keyed_stats(ks)};
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int round = 0; round < 2000; ++round) {
    auto frame = seeds[next() % seeds.size()];
    // Flip 1-4 bytes anywhere past the length word except version/type
    // (those are covered by the FrameView version/type tests).
    const int flips = 1 + static_cast<int>(next() % 4);
    for (int i = 0; i < flips; ++i) {
      const std::size_t pos = 6 + next() % (frame.size() - 6);
      frame[pos] = static_cast<std::uint8_t>(next());
    }
    const FrameView v(frame.data() + 4, frame.size() - 4);
    Message m;
    StartBatchFrame sbo;
    KeyedStatsFrame kso;
    switch (v.type()) {
      case FrameType::kKeyedMsg:
        (void)decode_keyed_message(v, &m);
        break;
      case FrameType::kStartBatch:
        (void)decode_start_batch(v, &sbo);
        break;
      case FrameType::kKeyedStats:
        (void)decode_keyed_stats(v, &kso);
        break;
      default:
        break;
    }
  }
}

// --- wire-version back-compat ---------------------------------------------

// A v1 peer's traffic stays readable: the v1 frame vocabulary (types
// 1..11) is byte-identical under version byte 1, so restamping a
// current frame as v1 must decode to the same values.
TEST(Wire, V1FramesStillDecode) {
  auto ready = encode_ready(ReadyFrame{3});
  ready[4] = kWireVersionV1;
  EXPECT_EQ(decode_ready(view(ready)).node_id, 3u);

  Message msg;
  msg.src = 1;
  msg.dst = 2;
  msg.tag = 42;
  msg.op = 7;
  msg.args = {5, -5};
  auto wire_msg = encode_message(msg);
  wire_msg[4] = kWireVersionV1;
  const Message out = decode_message(view(wire_msg));
  EXPECT_EQ(out.tag, 42);
  EXPECT_EQ(out.args, msg.args);

  StartFrame start{9, 4, {11}};
  auto wire_start = encode_start(start);
  wire_start[4] = kWireVersionV1;
  EXPECT_EQ(decode_start(view(wire_start)).args,
            (std::vector<std::int64_t>{11}));
}

// ...but the keyed vocabulary is v2-only: a keyed frame stamped v1 is
// outside version 1's type range and dies as an unknown type.
TEST(Wire, V1StampedKeyedFrameRejected) {
  Message msg;
  msg.key = 1;
  msg.src = 0;
  msg.dst = 1;
  auto frame = encode_keyed_message(msg);
  frame[4] = kWireVersionV1;
  const FrameView v(frame.data() + 4, frame.size() - 4);
  EXPECT_DEATH(v.type(), "unknown frame type");
}

}  // namespace
}  // namespace dcnt::net
