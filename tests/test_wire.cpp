// Wire-format tests: every frame type round-trips, the stream reader
// reassembles frames from arbitrary chunking, and malformed input dies
// loudly instead of being misread.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/wire.hpp"
#include "sim/message.hpp"

namespace dcnt::net {
namespace {

FrameView view(const std::vector<std::uint8_t>& encoded) {
  // Strip the 4-byte length word, as the event loop does.
  return FrameView(encoded.data() + 4, encoded.size() - 4);
}

TEST(Wire, HelloRoundTrip) {
  const HelloFrame in{7, 40001, 40002};
  const HelloFrame out = decode_hello(view(encode_hello(in)));
  EXPECT_EQ(out.node_id, 7u);
  EXPECT_EQ(out.tcp_port, 40001);
  EXPECT_EQ(out.udp_port, 40002);
}

TEST(Wire, PeersRoundTrip) {
  PeersFrame in;
  in.peers.push_back(PeerAddr{0, 1111, 0});
  in.peers.push_back(PeerAddr{1, 2222, 3333});
  const PeersFrame out = decode_peers(view(encode_peers(in)));
  ASSERT_EQ(out.peers.size(), 2u);
  EXPECT_EQ(out.peers[0].tcp_port, 1111);
  EXPECT_EQ(out.peers[1].node_id, 1u);
  EXPECT_EQ(out.peers[1].udp_port, 3333);
}

TEST(Wire, ReadyRoundTrip) {
  EXPECT_EQ(decode_ready(view(encode_ready(ReadyFrame{3}))).node_id, 3u);
}

TEST(Wire, StartRoundTripWithAndWithoutArgs) {
  const StartFrame plain{42, 5, {}};
  const StartFrame plain_out = decode_start(view(encode_start(plain)));
  EXPECT_EQ(plain_out.op, 42);
  EXPECT_EQ(plain_out.origin, 5);
  EXPECT_TRUE(plain_out.args.empty());

  const StartFrame rich{7, 2, {1, -9, 1'000'000'000'000}};
  const StartFrame rich_out = decode_start(view(encode_start(rich)));
  EXPECT_EQ(rich_out.args, (std::vector<std::int64_t>{1, -9, 1'000'000'000'000}));
}

TEST(Wire, CompleteRoundTripNegativeValue) {
  const CompleteFrame out =
      decode_complete(view(encode_complete(CompleteFrame{9, -5})));
  EXPECT_EQ(out.op, 9);
  EXPECT_EQ(out.value, -5);
}

TEST(Wire, MessageRoundTripPreservesEnvelopeFields) {
  Message msg;
  msg.src = 3;
  msg.dst = 11;
  msg.tag = 1'000'001;  // a ReliableTransport Data tag rides unchanged
  msg.op = 1234;
  msg.args = {17, 0, -3};
  const Message out = decode_message(view(encode_message(msg)));
  EXPECT_EQ(out.src, 3);
  EXPECT_EQ(out.dst, 11);
  EXPECT_EQ(out.tag, 1'000'001);
  EXPECT_EQ(out.op, 1234);
  EXPECT_EQ(out.args, msg.args);
  EXPECT_FALSE(out.local);
}

TEST(Wire, StatsRoundTrip) {
  StatsFrame in;
  in.node_id = 2;
  in.events_processed = 100;
  in.wire_msgs_sent = 7;
  in.wire_msgs_received = 6;
  in.wire_bytes_sent = 700;
  in.wire_bytes_received = 600;
  in.injected_drops = 3;
  in.unacked = 1;
  in.retransmissions = 4;
  in.duplicates_suppressed = 2;
  in.messages_abandoned = 1;
  in.loads.push_back(ProcLoad{2, 10, 11, 40});
  in.loads.push_back(ProcLoad{6, 0, 1, 2});
  const StatsFrame out = decode_stats(view(encode_stats(in)));
  EXPECT_EQ(out.node_id, 2u);
  EXPECT_EQ(out.events_processed, 100);
  EXPECT_EQ(out.wire_msgs_received, 6);
  EXPECT_EQ(out.injected_drops, 3);
  EXPECT_EQ(out.unacked, 1);
  EXPECT_EQ(out.retransmissions, 4);
  ASSERT_EQ(out.loads.size(), 2u);
  EXPECT_EQ(out.loads[0].pid, 2);
  EXPECT_EQ(out.loads[0].received, 11);
  EXPECT_EQ(out.loads[1].words, 2);
}

TEST(Wire, BodylessFrames) {
  EXPECT_EQ(view(encode_stats_request()).type(), FrameType::kStatsRequest);
  EXPECT_EQ(view(encode_shutdown()).type(), FrameType::kShutdown);
}

TEST(Wire, FrameReaderReassemblesByteAtATime) {
  std::vector<std::uint8_t> stream;
  const auto a = encode_ready(ReadyFrame{1});
  const auto b = encode_complete(CompleteFrame{5, 55});
  const auto c = encode_stats_request();
  stream.insert(stream.end(), a.begin(), a.end());
  stream.insert(stream.end(), b.begin(), b.end());
  stream.insert(stream.end(), c.begin(), c.end());

  FrameReader reader;
  std::vector<std::vector<std::uint8_t>> frames;
  std::vector<std::uint8_t> payload;
  for (const std::uint8_t byte : stream) {
    reader.feed(&byte, 1);
    while (reader.pop(payload)) frames.push_back(payload);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(decode_ready(FrameView(frames[0].data(), frames[0].size())).node_id,
            1u);
  EXPECT_EQ(
      decode_complete(FrameView(frames[1].data(), frames[1].size())).value, 55);
  EXPECT_EQ(FrameView(frames[2].data(), frames[2].size()).type(),
            FrameType::kStatsRequest);
  EXPECT_EQ(reader.buffered_bytes(), 0u);
}

TEST(Wire, FrameReaderHandlesSplitAcrossFeeds) {
  const auto frame = encode_complete(CompleteFrame{1, 2});
  FrameReader reader;
  const std::size_t cut = frame.size() / 2;
  reader.feed(frame.data(), cut);
  std::vector<std::uint8_t> payload;
  EXPECT_FALSE(reader.pop(payload));
  reader.feed(frame.data() + cut, frame.size() - cut);
  ASSERT_TRUE(reader.pop(payload));
  EXPECT_EQ(decode_complete(FrameView(payload.data(), payload.size())).op, 1);
}

TEST(Wire, RejectsForeignVersion) {
  auto frame = encode_ready(ReadyFrame{0});
  frame[4] = kWireVersion + 1;  // version byte, after the length word
  EXPECT_DEATH(FrameView(frame.data() + 4, frame.size() - 4),
               "wire version mismatch");
}

TEST(Wire, RejectsUnknownType) {
  auto frame = encode_ready(ReadyFrame{0});
  frame[5] = 200;  // type byte
  const FrameView v(frame.data() + 4, frame.size() - 4);
  EXPECT_DEATH(v.type(), "unknown frame type");
}

TEST(Wire, RejectsCorruptLength) {
  std::vector<std::uint8_t> bogus = {0xff, 0xff, 0xff, 0x7f, 1, 3};
  FrameReader reader;
  reader.feed(bogus.data(), bogus.size());
  std::vector<std::uint8_t> payload;
  EXPECT_DEATH(reader.pop(payload), "corrupt frame length");
}

TEST(Wire, RejectsTruncatedBody) {
  auto frame = encode_hello(HelloFrame{1, 2, 3});
  // Chop the last body byte but keep the header consistent.
  std::vector<std::uint8_t> payload(frame.begin() + 4, frame.end() - 1);
  const FrameView v(payload.data(), payload.size());
  EXPECT_DEATH(decode_hello(v), "truncated frame body");
}

TEST(Wire, RejectsTrailingBytes) {
  auto frame = encode_ready(ReadyFrame{1});
  std::vector<std::uint8_t> payload(frame.begin() + 4, frame.end());
  payload.push_back(0);
  const FrameView v(payload.data(), payload.size());
  EXPECT_DEATH(decode_ready(v), "trailing bytes");
}

}  // namespace
}  // namespace dcnt::net
