// Cross-cutting properties, swept over every counter implementation:
//   * sequential correctness under several delivery regimes and orders,
//   * the Hot Spot Lemma (a *necessary* property of any correct counter),
//   * delivery-seed invariance of returned values (sequential model),
//   * the qualitative separation the paper predicts between the tree
//     counter and the centralized designs.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/hotspot.hpp"
#include "analysis/report.hpp"
#include "core/bound.hpp"
#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"
#include "support/stats.hpp"

namespace dcnt {
namespace {

struct Regime {
  const char* name;
  DelayModel delay;
  bool fifo;
};

std::vector<Regime> regimes() {
  return {
      {"fixed", DelayModel::fixed_delay(1), false},
      {"uniform", DelayModel::uniform(1, 13), false},
      {"uniform-fifo", DelayModel::uniform(1, 13), true},
      {"heavy-tail", DelayModel::heavy_tail(1, 200), false},
  };
}

class AllCountersTest : public ::testing::TestWithParam<CounterKind> {};

TEST_P(AllCountersTest, SequentialCorrectUnderEveryRegime) {
  for (const Regime& regime : regimes()) {
    SimConfig cfg;
    cfg.seed = 31337;
    cfg.delay = regime.delay;
    cfg.fifo_channels = regime.fifo;
    Simulator sim(make_counter(GetParam(), 20), cfg);
    const auto n = static_cast<std::int64_t>(sim.num_processors());
    Rng rng(7);
    const auto order = schedule_permutation(n, rng);
    const RunResult result = run_sequential(sim, order);
    EXPECT_TRUE(result.values_ok)
        << to_string(GetParam()) << " under " << regime.name;
  }
}

TEST_P(AllCountersTest, HotSpotLemmaHolds) {
  SimConfig cfg;
  cfg.seed = 5;
  cfg.delay = DelayModel::uniform(1, 7);
  cfg.enable_trace = true;
  Simulator sim(make_counter(GetParam(), 16), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  Rng rng(3);
  const auto order = schedule_permutation(n, rng);
  run_sequential(sim, order);
  const HotSpotReport report = check_hot_spot(sim.trace(), order);
  EXPECT_TRUE(report.all_intersect) << to_string(GetParam());
}

TEST_P(AllCountersTest, ValuesAreSeedInvariant) {
  // In the sequential model the i-th op returns i-1 regardless of
  // message delays — asynchrony must not leak into results.
  std::vector<Value> reference;
  for (const std::uint64_t seed : {1ULL, 99ULL, 12345ULL}) {
    SimConfig cfg;
    cfg.seed = seed;
    cfg.delay = DelayModel::uniform(1, 29);
    Simulator sim(make_counter(GetParam(), 12), cfg);
    const auto n = static_cast<std::int64_t>(sim.num_processors());
    const RunResult result = run_sequential(sim, schedule_sequential(n));
    if (reference.empty()) {
      reference = result.values;
    } else {
      EXPECT_EQ(result.values, reference) << to_string(GetParam());
    }
  }
}

TEST_P(AllCountersTest, ConcurrentWhenSupported) {
  if (!supports_concurrency(GetParam())) GTEST_SKIP();
  SimConfig cfg;
  cfg.seed = 77;
  cfg.delay = DelayModel::uniform(1, 9);
  Simulator sim(make_counter(GetParam(), 24), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  const auto batches = make_batches(schedule_sequential(n), 8);
  const RunResult result = run_concurrent(sim, batches);
  EXPECT_TRUE(result.values_ok) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllCountersTest,
                         ::testing::ValuesIn(all_counter_kinds()),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST_P(AllCountersTest, CorrectWithAPathologicallySlowProcessor) {
  // The model allows arbitrary finite delays; stretching every channel
  // of processor 0 (often a root/holder) by 50x must change nothing
  // semantically.
  SimConfig cfg;
  cfg.seed = 13;
  cfg.delay = DelayModel::with_slow_processor(DelayModel::uniform(1, 8),
                                              /*slow_pid=*/0, /*factor=*/50);
  Simulator sim(make_counter(GetParam(), 16), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  const RunResult result = run_sequential(sim, schedule_reverse(n));
  EXPECT_TRUE(result.values_ok) << to_string(GetParam());
}

TEST(Separation, TreeBeatsCentralizedDesignsAtScale) {
  // The paper's headline shape: at n = 1024 the tree counter's
  // bottleneck is O(k)=O(4) vs Theta(n) for central / static tree.
  const std::int64_t n = 1024;
  std::map<std::string, std::int64_t> max_load;
  for (const CounterKind kind :
       {CounterKind::kTree, CounterKind::kStaticTree, CounterKind::kCentral}) {
    Simulator sim(make_counter(kind, n), {});
    const auto actual_n = static_cast<std::int64_t>(sim.num_processors());
    run_sequential(sim, schedule_sequential(actual_n));
    max_load[to_string(kind)] = sim.metrics().max_load();
  }
  EXPECT_LT(max_load["tree"] * 10, max_load["central"]);
  EXPECT_LT(max_load["tree"] * 10, max_load["static-tree"]);
}

TEST(Separation, TreeLoadTracksKNotN) {
  // Fit max_load against k for k = 2..5: strongly linear (r^2 high),
  // and the same loads against n are wildly sublinear.
  std::vector<double> ks;
  std::vector<double> loads;
  for (int k = 2; k <= 5; ++k) {
    Simulator sim(make_counter(CounterKind::kTree, tree_size_for_k(k)), {});
    const auto n = static_cast<std::int64_t>(sim.num_processors());
    run_sequential(sim, schedule_sequential(n));
    ks.push_back(static_cast<double>(k));
    loads.push_back(static_cast<double>(sim.metrics().max_load()));
  }
  const LinearFit fit = fit_linear(ks, loads);
  EXPECT_GT(fit.r2, 0.9);
  // n grew 1953x while load grew < 5x.
  EXPECT_LT(loads.back() / loads.front(), 5.0);
}

TEST(Separation, SkewedWorkloadConcentratesLoad) {
  // §3's remark: "the amount of achievable distribution is limited if
  // many operations are initiated by a single processor." All ops from
  // one origin: its load alone is Theta(ops), whatever the counter.
  Simulator sim(make_counter(CounterKind::kTree, 81), {});
  const auto order = schedule_single_origin(17, 100);
  run_sequential(sim, order);
  EXPECT_GE(sim.metrics().load(17), 2 * 100);
}

}  // namespace
}  // namespace dcnt
