#include "support/stats.hpp"

#include <gtest/gtest.h>

namespace dcnt {
namespace {

TEST(Summary, BasicMoments) {
  Summary s({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_EQ(s.min(), 1);
  EXPECT_EQ(s.max(), 5);
  EXPECT_EQ(s.sum(), 15);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.4142, 1e-3);
}

TEST(Summary, AddInvalidatesSortCache) {
  Summary s({5, 1});
  EXPECT_EQ(s.max(), 5);
  s.add(10);
  EXPECT_EQ(s.max(), 10);
  EXPECT_EQ(s.min(), 1);
}

TEST(Summary, Percentiles) {
  std::vector<std::int64_t> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  Summary s(v);
  EXPECT_EQ(s.percentile(0), 1);
  EXPECT_EQ(s.percentile(100), 100);
  EXPECT_NEAR(static_cast<double>(s.percentile(50)), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(s.percentile(99)), 99.0, 1.0);
}

TEST(Summary, SingleSample) {
  Summary s({7});
  EXPECT_EQ(s.percentile(0), 7);
  EXPECT_EQ(s.percentile(50), 7);
  EXPECT_EQ(s.percentile(100), 7);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

// Nearest-rank boundaries: q=0 is the minimum, q=100 the maximum, and
// rank = q/100 * (n-1) rounds half away from zero, so the two-sample
// median lands on the larger sample.
TEST(Summary, PercentileEdgeCasesAreExact) {
  Summary two({20, 10});
  EXPECT_EQ(two.percentile(0), 10);
  EXPECT_EQ(two.percentile(100), 20);
  EXPECT_EQ(two.percentile(49), 10);
  EXPECT_EQ(two.percentile(50), 20);

  Summary four({4, 1, 3, 2});
  EXPECT_EQ(four.percentile(0), 1);
  EXPECT_EQ(four.percentile(33), 2);  // rank 0.99 rounds to index 1
  EXPECT_EQ(four.percentile(100), 4);
}

TEST(SummaryDeathTest, PercentileRejectsEmptyAndOutOfRangeQ) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Summary empty;
  EXPECT_DEATH(empty.percentile(50), "");
  const Summary s({1, 2, 3});
  EXPECT_DEATH(s.percentile(-0.5), "");
  EXPECT_DEATH(s.percentile(100.5), "");
}

TEST(Summary, ToStringNonEmpty) {
  Summary s({1, 2});
  EXPECT_NE(s.to_string().find("n=2"), std::string::npos);
  Summary empty;
  EXPECT_EQ(empty.to_string(), "n=0");
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10, 4);  // [0,10) [10,20) [20,30) [30,inf)
  h.add(0);
  h.add(9);
  h.add(10);
  h.add(35);
  h.add(1000);
  EXPECT_EQ(h.total(), 5);
  EXPECT_EQ(h.buckets()[0], 2);
  EXPECT_EQ(h.buckets()[1], 1);
  EXPECT_EQ(h.buckets()[2], 0);
  EXPECT_EQ(h.buckets()[3], 2);
  EXPECT_NE(h.to_string().find("inf"), std::string::npos);
}

TEST(LinearFit, ExactLine) {
  const LinearFit fit =
      fit_linear({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 1 + 2x
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(LinearFit, NoisyLineStillHighR2) {
  const LinearFit fit =
      fit_linear({1, 2, 3, 4, 5}, {2.1, 3.9, 6.2, 7.8, 10.1});
  EXPECT_NEAR(fit.slope, 2.0, 0.2);
  EXPECT_GT(fit.r2, 0.98);
}

TEST(LinearFit, DegenerateXGivesZero) {
  const LinearFit fit = fit_linear({2, 2, 2}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

}  // namespace
}  // namespace dcnt
