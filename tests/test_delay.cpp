#include "sim/delay.hpp"

#include <gtest/gtest.h>

namespace dcnt {
namespace {

TEST(Delay, FixedIsConstant) {
  Rng rng(1);
  const DelayModel m = DelayModel::fixed_delay(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(m.sample(rng), 3);
  }
}

TEST(Delay, UniformStaysInRange) {
  Rng rng(2);
  const DelayModel m = DelayModel::uniform(2, 9);
  bool saw_low = false;
  bool saw_high = false;
  for (int i = 0; i < 5000; ++i) {
    const SimTime d = m.sample(rng);
    EXPECT_GE(d, 2);
    EXPECT_LE(d, 9);
    saw_low = saw_low || d == 2;
    saw_high = saw_high || d == 9;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(Delay, UniformDegenerateRange) {
  Rng rng(3);
  const DelayModel m = DelayModel::uniform(5, 5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(m.sample(rng), 5);
  }
}

TEST(Delay, SlowProcessorStretchesItsChannelsOnly) {
  Rng rng(9);
  const DelayModel m = DelayModel::with_slow_processor(
      DelayModel::fixed_delay(2), /*slow_pid=*/5, /*factor=*/10);
  EXPECT_EQ(m.sample_for(rng, 0, 1), 2);    // untouched channel
  EXPECT_EQ(m.sample_for(rng, 5, 1), 20);   // from the slow processor
  EXPECT_EQ(m.sample_for(rng, 3, 5), 20);   // to the slow processor
  EXPECT_EQ(m.sample_for(rng, 5, 5), 20);
}

TEST(Delay, SampleForWithoutSkewMatchesSample) {
  Rng a(4);
  Rng b(4);
  const DelayModel m = DelayModel::uniform(1, 50);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(m.sample(a), m.sample_for(b, 0, 1));
  }
}

TEST(Delay, HeavyTailBounded) {
  Rng rng(4);
  const DelayModel m = DelayModel::heavy_tail(1, 100);
  std::int64_t over_10 = 0;
  for (int i = 0; i < 10000; ++i) {
    const SimTime d = m.sample(rng);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, 100);
    if (d > 10) ++over_10;
  }
  // Heavy tail: stragglers exist but are rare.
  EXPECT_GT(over_10, 0);
  EXPECT_LT(over_10, 3000);
}

TEST(DelayDeath, InvalidParametersAbort) {
  // Zero or inverted ranges would make the event queue go backwards in
  // time (or spin on zero-delay self-sends); the factories must refuse.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(DelayModel::fixed_delay(0), "positive tick count");
  EXPECT_DEATH(DelayModel::uniform(0, 4), "lower bound");
  EXPECT_DEATH(DelayModel::uniform(5, 4), "max >= min");
  EXPECT_DEATH(DelayModel::heavy_tail(0, 4), "lower bound");
  EXPECT_DEATH(DelayModel::heavy_tail(9, 4), "cap >= min");
  EXPECT_DEATH(
      DelayModel::with_slow_processor(DelayModel::fixed_delay(1), 0, 0),
      "slow_factor");
}

}  // namespace
}  // namespace dcnt
