// Perf smoke: the benchmark pipelines (bench_throughput's harness and
// bench_net's cluster comparison) at tiny scale, pinning every
// deterministic field to its checked-in baseline value. A refactor of
// the runtime hot paths that silently changed protocol-level message
// counts, broke warmup exclusion, or lost the write-coalescing
// observable fails here in milliseconds instead of in a full benchmark
// re-run. Timing fields are asserted only for sanity (> 0): wall-clock
// numbers are not deterministic and belong in BENCH_*.json, not ctest.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/central.hpp"
#include "harness/cluster.hpp"
#include "harness/factory.hpp"
#include "harness/throughput.hpp"
#include "service/multi_counter.hpp"
#include "shm/shm_harness.hpp"
#include "traffic/shape.hpp"

namespace dcnt {
namespace {

// The central counter's measured traffic is schedule-independent: every
// remote inc is exactly one request + one reply at the holder, so the
// totals below must match BENCH_throughput.json's central rows exactly,
// at every worker count and with or without warmup.
TEST(PerfSmoke, ThroughputCentralMatchesCheckedInBaseline) {
  for (const std::size_t workers : {1u, 8u}) {
    ThroughputOptions options;
    options.workers = workers;
    options.ops = 256;  // the BENCH_throughput.json config: n=16, 16x
    options.warmup = 32;
    options.concurrency = 16;
    options.seed = 7;
    options.initiators = "roundrobin";
    const ThroughputResult res =
        run_throughput(std::make_unique<CentralCounter>(16), options);
    ASSERT_TRUE(res.values_ok) << "W=" << workers;
    EXPECT_EQ(res.ops, 256u);
    // 15 of every 16 round-robin ops are remote, 2 messages each:
    // 256 / 16 * 15 * 2 = 480 — the checked-in baseline value.
    EXPECT_EQ(res.total_messages, 480) << "W=" << workers;
    EXPECT_EQ(res.max_load, 480) << "W=" << workers;
    EXPECT_EQ(res.bottleneck, 0) << "W=" << workers;
    EXPECT_GT(res.ops_per_sec, 0.0);
  }
}

// The tree's totals vary with delivery interleavings, but stay inside a
// band around the k=3, T=12 baseline; the structural fields are exact.
TEST(PerfSmoke, ThroughputTreeStaysInTheBaselineBand) {
  ThroughputOptions options;
  options.workers = 4;
  options.ops = 648;  // n=81 at 8x, half the benchmark's 16x for speed
  options.warmup = 32;
  options.concurrency = 16;
  options.seed = 7;
  options.initiators = "roundrobin";
  const ThroughputResult res =
      run_throughput(make_counter(CounterKind::kTree, 81), options);
  ASSERT_TRUE(res.values_ok);
  EXPECT_EQ(res.n, 81u);
  // Roughly 13 messages per op in the baseline; allow the interleaving
  // band observed across seeds and worker counts (~±10%).
  EXPECT_GT(res.total_messages, 7'000);
  EXPECT_LT(res.total_messages, 10'500);
  EXPECT_GT(res.max_load, 0);
}

// bench_net's shape at minimum scale: in-process vs TCP cluster on the
// central counter, with warmup and the coalescing observable. The
// protocol-level totals must agree between the runtimes and match the
// closed-form count; the wire must show coalescing (never more kernel
// writes than frames).
TEST(PerfSmoke, NetCentralClusterMatchesInProcessTotals) {
  const std::int64_t n = 8;
  const std::size_t ops = 32;
  const std::size_t warmup = 16;
  // 28 of the 32 measured round-robin ops are remote: 56 messages.
  const std::int64_t expected_total = 56;

  ThroughputOptions topt;
  topt.workers = 2;
  topt.ops = ops;
  topt.warmup = warmup;
  topt.concurrency = 8;
  topt.seed = 7;
  const ThroughputResult inproc =
      run_throughput(std::make_unique<CentralCounter>(n), topt);
  ASSERT_TRUE(inproc.values_ok);
  EXPECT_EQ(inproc.total_messages, expected_total);
  EXPECT_EQ(inproc.max_load, expected_total);

  net::ClusterOptions copt;
  copt.counter = "central";
  copt.min_processors = n;
  copt.nodes = 2;
  copt.ops = ops;
  copt.warmup = warmup;
  copt.concurrency = 8;
  copt.seed = 7;
  const net::ClusterResult cluster = net::run_cluster(copt);
  ASSERT_TRUE(cluster.values_ok);
  EXPECT_EQ(cluster.warmup, warmup);
  EXPECT_EQ(cluster.total_messages, expected_total);
  EXPECT_EQ(cluster.max_load, expected_total);
  // Warmup exclusion on the wire: only the measured ops' remote
  // messages cross node boundaries (n=8 over 2 nodes puts the holder's
  // node at half the processors; 32 measured ops round-robin = 16
  // cross-node requests + 16 replies... of which replies to same-node
  // initiators stay local). The exact split is topology arithmetic;
  // what must hold is that the reset left strictly fewer wire messages
  // than a warmup-inclusive run (48 ops) could produce.
  EXPECT_GT(cluster.wire_msgs_sent, 0);
  EXPECT_LT(cluster.wire_msgs_sent, 2 * static_cast<std::int64_t>(ops));
  // The coalescing observable: every kernel write moves at least one
  // whole frame, so writes never exceed data frames plus the node's
  // control-plane traffic (one Complete per measured op, plus a handful
  // of Stats replies and time jumps during the quiescence barrier).
  EXPECT_GT(cluster.wire_write_syscalls, 0);
  EXPECT_LE(cluster.wire_write_syscalls,
            cluster.wire_msgs_sent + static_cast<std::int64_t>(ops) + 64);
  EXPECT_GT(cluster.wire_bytes_sent, 0);
}

// m_p transport- and pipeline-invariance at the BENCH_net.json scale
// (central, n=16, 4 nodes, 256 measured ops): the TCP plane reports the
// protocol's own count (240 remote incs x 2 = 480), the UDP plane
// doubles it (every protocol message rides a Data envelope answered by
// an Ack, both protocol messages in the paper's currency = 960), and
// pipeline depth changes neither — D only reorders when messages fly,
// never how many. These are the numbers EXPERIMENTS.md quotes; a
// runtime change that shifts them must update both deliberately.
TEST(PerfSmoke, NetCentralMpPinnedAcrossTransportAndPipeline) {
  net::ClusterOptions copt;
  copt.counter = "central";
  copt.min_processors = 16;
  copt.nodes = 4;
  copt.ops = 256;
  copt.warmup = 32;
  copt.concurrency = 16;
  copt.seed = 7;

  const net::ClusterResult tcp = net::run_cluster(copt);
  ASSERT_TRUE(tcp.values_ok);
  EXPECT_EQ(tcp.total_messages, 480);
  EXPECT_EQ(tcp.max_load, 480);
  EXPECT_EQ(tcp.bottleneck, 0);

  copt.pipeline = 8;
  const net::ClusterResult tcp_d8 = net::run_cluster(copt);
  ASSERT_TRUE(tcp_d8.values_ok);
  EXPECT_EQ(tcp_d8.total_messages, 480);
  EXPECT_EQ(tcp_d8.max_load, 480);

  copt.pipeline = 1;
  copt.udp = true;
  // A clean loopback channel never needs a retransmission, but a
  // too-tight ack timeout can fire spuriously under queueing delay and
  // inflate m_p with retransmitted Data/duplicate Acks; widen it so the
  // 960 pin measures the transport's steady-state cost, not its timer.
  copt.retry.ack_timeout = 128;
  const net::ClusterResult udp = net::run_cluster(copt);
  ASSERT_TRUE(udp.values_ok);
  EXPECT_EQ(udp.retransmissions, 0);
  EXPECT_EQ(udp.total_messages, 960);
  EXPECT_EQ(udp.max_load, 960);
  EXPECT_EQ(udp.bottleneck, 0);
}

// The fabric's headline pin: a key's bottleneck inside the multi-key
// fabric is EXACTLY the single-counter bottleneck at equal ops. keys=1
// routes every op of the BENCH_throughput.json config through the
// fabric, and the hot key's per-key max_p must reproduce the 480 the
// bare central counter pins above — wrapping, rotation and keyed
// metrics add zero and remove zero messages.
TEST(PerfSmoke, KeyedSingleKeyMatchesSingleCounterBaseline) {
  ThroughputOptions options;
  options.workers = 4;
  options.ops = 256;
  options.warmup = 32;
  options.concurrency = 16;
  options.seed = 7;
  options.initiators = "roundrobin";
  KeyedOptions keyed;
  keyed.keys = 1;
  keyed.key_dist = "roundrobin";
  const KeyedThroughputResult res = run_keyed_throughput(
      std::make_unique<CentralCounter>(16), options, keyed);
  ASSERT_TRUE(res.base.values_ok);
  EXPECT_EQ(res.hot_key, 0);
  // 15 of every 16 round-robin ops are remote, 2 messages each — the
  // identical closed form as the single-counter pin.
  EXPECT_EQ(res.hot_key_max_load, 480);
  EXPECT_EQ(res.hot_key_messages, 480);
  EXPECT_EQ(res.base.total_messages, 480);
  EXPECT_EQ(res.base.max_load, 480);
  EXPECT_EQ(res.keys_touched, 1u);
  EXPECT_EQ(res.live_instances, 1u);
  EXPECT_EQ(res.lru_evicts, 0);
}

// Multi-key pin with closed-form arithmetic: round-robin keys over
// round-robin initiators gives key k origins {k, k+4, k+8, k+12} (64
// measured ops each), and an op is message-free exactly when its fabric
// origin IS the key's rotated holder. offset(key) is a pure function of
// (seed, key) — query it from a fresh fabric — so every key's expected
// load is computable and the measured totals must match it exactly.
TEST(PerfSmoke, KeyedMultiKeyLoadsMatchClosedForm) {
  const std::int64_t n = 16;
  const std::size_t keys = 4;
  const std::size_t ops = 1024;  // 256 measured ops per key
  ThroughputOptions options;
  options.workers = 4;
  options.ops = ops;
  options.warmup = 32;
  options.concurrency = 16;
  options.seed = 7;
  options.initiators = "roundrobin";
  KeyedOptions keyed;
  keyed.keys = keys;
  keyed.key_dist = "roundrobin";
  const KeyedThroughputResult res = run_keyed_throughput(
      std::make_unique<CentralCounter>(n), options, keyed);
  ASSERT_TRUE(res.base.values_ok);
  EXPECT_EQ(res.keys_touched, keys);

  // Reconstruct the routing with the same (seed, key) mix the run used.
  service::MultiCounterOptions mc;
  mc.seed = options.seed;
  const service::MultiCounter probe(std::make_unique<CentralCounter>(n), mc);
  std::int64_t expected_total = 0;
  std::int64_t expected_hot_load = 0;
  for (std::size_t k = 0; k < keys; ++k) {
    const ProcessorId holder = probe.offset_of(static_cast<KeyId>(k));
    // Key k's measured origins are {k, k+4, k+8, k+12}, 64 ops each;
    // the holder origin (if among them) contributes local, message-free
    // ops.
    const std::int64_t local =
        (static_cast<std::size_t>(holder) % keys) == k ? 64 : 0;
    const std::int64_t remote = 256 - local;
    expected_total += 2 * remote;
    // Ties in ops go to the smallest key: key 0 is the reported hot key.
    if (k == 0) expected_hot_load = 2 * remote;
  }
  EXPECT_EQ(res.hot_key, 0);
  EXPECT_EQ(res.hot_key_max_load, expected_hot_load);
  EXPECT_EQ(res.hot_key_messages, expected_hot_load);
  EXPECT_EQ(res.base.total_messages, expected_total);
}

// The arrival timeline is a pure function of the shape: scheduled-op
// counts for the constant and burst shapes are exact integers that any
// IEEE-754 host reproduces (only division and floor are involved —
// diurnal goes through libm's sin and is deliberately NOT pinned).
// These are the op-table sizes a duration-bounded open-loop run
// allocates; a drifting integrator or an off-by-one at the budget edge
// shows up here before it shows up as a mysterious BENCH row change.
TEST(PerfSmoke, TrafficScheduledArrivalCountsPinned) {
  // 20 kops/s for 50 ms: arrivals at i * 50 µs strictly before the
  // budget — exactly 1000, closed form, no drift.
  const traffic::RateShape constant =
      traffic::make_shape("constant", 20'000, 1.0, 0.5, 0.5);
  EXPECT_EQ(traffic::count_arrivals(constant, 0.05, 1 << 20), 1'000u);

  // Full-amplitude burst (duty 0.5): the high phase runs at 2x for the
  // first 5 ms (201 arrivals, endpoints included), then the floored
  // low phase schedules the next arrival 50 ms out — past the budget.
  const traffic::RateShape burst =
      traffic::make_shape("burst", 20'000, 0.01, 1.0, 0.5);
  EXPECT_EQ(traffic::count_arrivals(burst, 0.05, 1 << 20), 201u);

  // A gentler burst over whole periods lands on mean-rate * duration
  // plus the t=0 arrival: 150 kops/s * 0.1 s + 1.
  const traffic::RateShape burst2 =
      traffic::make_shape("burst", 150'000, 0.02, 0.5, 0.25);
  EXPECT_EQ(traffic::count_arrivals(burst2, 0.1, 1 << 20), 15'001u);

  // The cap binds exactly.
  EXPECT_EQ(traffic::count_arrivals(constant, 0.05, 170), 170u);
}

// Open-loop traffic fields at the checked-in baseline scale: the open
// loop reorders WHEN ops are issued, never WHICH ops run, so the
// central counter's schedule-independent message totals match the
// closed-loop 480 pin exactly; and the SLO denominator is every
// completed measured op — identical in exact and HDR recorder modes,
// so switching storage can never shift the attainment fraction's base.
TEST(PerfSmoke, ThroughputOpenLoopTrafficFieldsPinned) {
  ThroughputOptions options;
  options.workers = 2;
  options.ops = 256;
  options.warmup = 32;
  options.concurrency = 16;
  options.seed = 7;
  options.initiators = "roundrobin";
  options.open_rate = 200'000;  // well over capacity is fine: never skips
  options.shape = "constant";
  options.slo_us = 1'000;

  for (const std::size_t exact_cap : {std::size_t{1} << 16, std::size_t{64}}) {
    options.exact_cap = exact_cap;
    const ThroughputResult res =
        run_throughput(std::make_unique<CentralCounter>(16), options);
    ASSERT_TRUE(res.values_ok) << "cap=" << exact_cap;
    // The generator never drops a scheduled arrival: all 256 issue and
    // complete, and every one of them is in the SLO denominator.
    EXPECT_EQ(res.ops, 256u) << "cap=" << exact_cap;
    EXPECT_EQ(res.slo_den, 256) << "cap=" << exact_cap;
    EXPECT_GE(res.slo_ok, 0);
    EXPECT_LE(res.slo_ok, res.slo_den);
    // Storage mode follows the cap: 288 op slots vs 64.
    EXPECT_EQ(res.hdr_recorder, exact_cap < 288) << "cap=" << exact_cap;
    // Same 15-of-16-remote closed form as the closed-loop pin above.
    EXPECT_EQ(res.total_messages, 480) << "cap=" << exact_cap;
    EXPECT_EQ(res.max_load, 480) << "cap=" << exact_cap;
    EXPECT_GT(res.p99_us, 0.0);
    EXPECT_GE(res.max_us, res.p99_us);
  }
}

// The SHM harness' deterministic fields at the BENCH_throughput.json
// shm-row shape. A single driving thread makes every non-timing field
// exact: the run completing at all proves the DCNT_CHECKed final value
// (read() == warmup + ops) and the ticket permutation; the assertions
// below pin what lands in the JSON. Multi-thread runs can't pin
// record_threads (a 1-core host may let one thread drain the whole
// cursor), so T=1 is the deterministic configuration on every box.
TEST(PerfSmoke, ShmHarnessFieldsPinnedAtSingleThread) {
  for (const std::size_t inflight : {std::size_t{1}, std::size_t{64}}) {
    shm::ShmOptions options;
    options.threads = 1;
    options.ops = 2048;
    options.inflight = inflight;
    options.warmup = 64;
    options.seed = 7;
    const ThroughputResult res =
        shm::run_shm_throughput(shm::ShmKind::kAtomic, options);
    ASSERT_TRUE(res.values_ok) << "F=" << inflight;
    EXPECT_EQ(res.counter, "shm-atomic");
    EXPECT_EQ(res.n, 1u);
    EXPECT_EQ(res.workers, 1u);
    EXPECT_EQ(res.ops, 2048u) << "F=" << inflight;
    EXPECT_EQ(res.warmup, 64u);
    EXPECT_EQ(res.record_threads, 1u) << "F=" << inflight;
    ASSERT_TRUE(res.lin_checked);
    EXPECT_TRUE(res.linearizable) << "F=" << inflight;
    EXPECT_EQ(res.lin_violations, 0);
    // Coherence traffic is invisible to Metrics: the message-currency
    // fields are structurally zero for every shm row.
    EXPECT_EQ(res.total_messages, 0);
    EXPECT_EQ(res.max_load, 0);
    EXPECT_EQ(res.placement, "none");
    EXPECT_EQ(res.pinned_workers, 0u);
    EXPECT_TRUE(res.placement_supported);
    EXPECT_GT(res.ops_per_sec, 0.0);
  }
}

// Placement outcome fields are consistent on ANY host: compact either
// pins every worker (supported) or none (clean no-op), never a partial
// count at this scale.
TEST(PerfSmoke, ShmPlacementFieldsConsistent) {
  shm::ShmOptions options;
  options.threads = 2;
  options.ops = 512;
  options.placement = Placement::kCompact;
  const ThroughputResult res =
      shm::run_shm_throughput(shm::ShmKind::kSharded, options);
  ASSERT_TRUE(res.values_ok);
  EXPECT_EQ(res.placement, "compact");
  if (res.placement_supported) {
    EXPECT_EQ(res.pinned_workers, 2u);
  } else {
    EXPECT_EQ(res.pinned_workers, 0u);
  }
}

}  // namespace
}  // namespace dcnt
