#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "baselines/central.hpp"

namespace dcnt {
namespace {

// Minimal counter for exercising the simulator: the value lives at
// processor 0; an inc hops through `hops` intermediaries first.
class HopCounter final : public CounterProtocol {
 public:
  HopCounter(std::int64_t n, int hops) : n_(n), hops_(hops) {}

  static constexpr std::int32_t kTagHop = 1;    // [origin, remaining]
  static constexpr std::int32_t kTagValue = 2;  // [value]
  static constexpr std::int32_t kTagLocal = 3;  // local wake-up

  std::size_t num_processors() const override {
    return static_cast<std::size_t>(n_);
  }

  void start_inc(Context& ctx, ProcessorId origin, OpId op) override {
    if (hops_ == 0 && origin == 0) {
      ctx.complete(op, value_++);
      return;
    }
    Message m;
    m.src = origin;
    m.dst = hops_ > 0 ? next(origin) : 0;
    m.tag = kTagHop;
    m.args = {origin, hops_};
    ctx.send(std::move(m));
  }

  void on_message(Context& ctx, const Message& msg) override {
    if (msg.tag == kTagLocal) {
      ++local_wakeups_;
      return;
    }
    if (msg.tag == kTagValue) {
      ctx.complete(msg.op, msg.args.at(0));
      return;
    }
    const auto origin = static_cast<ProcessorId>(msg.args.at(0));
    const auto remaining = msg.args.at(1);
    if (remaining > 1) {
      Message m;
      m.src = msg.dst;
      m.dst = next(msg.dst);
      m.tag = kTagHop;
      m.args = {origin, remaining - 1};
      ctx.send(std::move(m));
      return;
    }
    // We are the final hop — serve from processor 0's value if we are 0,
    // else forward straight to 0.
    if (msg.dst != 0) {
      Message m;
      m.src = msg.dst;
      m.dst = 0;
      m.tag = kTagHop;
      m.args = {origin, 1};
      ctx.send(std::move(m));
      return;
    }
    Message reply;
    reply.src = 0;
    reply.dst = origin;
    reply.tag = kTagValue;
    reply.args = {value_++};
    ctx.send(std::move(reply));
  }

  std::unique_ptr<CounterProtocol> clone_counter() const override {
    return std::make_unique<HopCounter>(*this);
  }
  std::string name() const override { return "hop"; }

  Value value() const { return value_; }
  int local_wakeups() const { return local_wakeups_; }

 private:
  ProcessorId next(ProcessorId p) const {
    return static_cast<ProcessorId>((p + 1) % n_);
  }

  std::int64_t n_;
  int hops_;
  Value value_{0};
  int local_wakeups_{0};
};

Simulator make_sim(std::int64_t n, int hops, SimConfig cfg) {
  return Simulator(std::make_unique<HopCounter>(n, hops), cfg);
}

TEST(Simulator, CompletesSequentialIncs) {
  Simulator sim = make_sim(4, 2, {});
  for (int i = 0; i < 8; ++i) {
    const OpId op = sim.begin_inc(static_cast<ProcessorId>(i % 4));
    sim.run_until_quiescent();
    ASSERT_TRUE(sim.result(op).has_value());
    EXPECT_EQ(*sim.result(op), i);
  }
  EXPECT_EQ(sim.ops_completed(), 8u);
}

TEST(Simulator, ImmediateLocalCompletion) {
  Simulator sim = make_sim(4, 0, {});
  const OpId op = sim.begin_inc(0);
  EXPECT_TRUE(sim.result(op).has_value());
  EXPECT_EQ(sim.metrics().total_messages(), 0);
}

TEST(Simulator, MetricsCountEachMessageOnce) {
  Simulator sim = make_sim(4, 1, {});
  const OpId op = sim.begin_inc(2);  // 2 -> 3 -> 0 -> 2: three messages
  sim.run_until_quiescent();
  ASSERT_TRUE(sim.result(op).has_value());
  EXPECT_EQ(sim.metrics().total_messages(), 3);
  std::int64_t loads = 0;
  for (ProcessorId p = 0; p < 4; ++p) loads += sim.metrics().load(p);
  EXPECT_EQ(loads, 6);  // each message: one send + one receive
}

TEST(Simulator, DeterministicForSameSeed) {
  SimConfig cfg;
  cfg.seed = 77;
  cfg.delay = DelayModel::uniform(1, 20);
  Simulator a = make_sim(8, 3, cfg);
  Simulator b = make_sim(8, 3, cfg);
  for (int i = 0; i < 8; ++i) {
    a.begin_inc(static_cast<ProcessorId>(i));
    b.begin_inc(static_cast<ProcessorId>(i));
    a.run_until_quiescent();
    b.run_until_quiescent();
  }
  EXPECT_EQ(a.deliveries(), b.deliveries());
  for (ProcessorId p = 0; p < 8; ++p) {
    EXPECT_EQ(a.metrics().load(p), b.metrics().load(p));
  }
}

TEST(Simulator, CloneEvolvesIndependently) {
  SimConfig cfg;
  cfg.delay = DelayModel::uniform(1, 5);
  Simulator sim = make_sim(4, 2, cfg);
  sim.begin_inc(1);
  sim.run_until_quiescent();

  Simulator clone(sim);
  const OpId op_clone = clone.begin_inc(2);
  clone.run_until_quiescent();
  EXPECT_EQ(*clone.result(op_clone), 1);
  // Original is untouched by the clone's operation.
  EXPECT_EQ(sim.ops_started(), 1u);
  EXPECT_EQ(sim.metrics().total_messages(), 4);  // 1->2->3->0->1
  const OpId op_orig = sim.begin_inc(3);
  sim.run_until_quiescent();
  EXPECT_EQ(*sim.result(op_orig), 1);
}

TEST(Simulator, SelfSendsAreDeliveredButNotCounted) {
  // hops such that a message lands on its own sender: n=1 impossible
  // here, so exercise via the local wake-up path instead plus a direct
  // check that src==dst traffic is uncounted.
  class SelfCounter final : public CounterProtocol {
   public:
    std::size_t num_processors() const override { return 2; }
    void start_inc(Context& ctx, ProcessorId origin, OpId op) override {
      op_ = op;
      Message m;
      m.src = origin;
      m.dst = origin;  // self-send
      m.tag = 1;
      ctx.send(std::move(m));
    }
    void on_message(Context& ctx, const Message& msg) override {
      ctx.complete(msg.op, 0);
      (void)msg;
    }
    std::unique_ptr<CounterProtocol> clone_counter() const override {
      return std::make_unique<SelfCounter>(*this);
    }
    std::string name() const override { return "self"; }
    OpId op_{kNoOp};
  };
  Simulator sim(std::make_unique<SelfCounter>(), {});
  const OpId op = sim.begin_inc(1);
  sim.run_until_quiescent();
  EXPECT_TRUE(sim.result(op).has_value());
  EXPECT_EQ(sim.metrics().total_messages(), 0);
  EXPECT_EQ(sim.metrics().load(1), 0);
}

TEST(Simulator, FifoChannelsPreserveOrder) {
  // With wildly random delays and fifo_channels on, two messages on the
  // same channel must arrive in send order. The HopCounter serves values
  // in arrival order at processor 0, so order inversions would surface
  // as wrong values; more direct: send many ops from the same origin.
  SimConfig cfg;
  cfg.seed = 5;
  cfg.delay = DelayModel::uniform(1, 100);
  cfg.fifo_channels = true;
  Simulator sim = make_sim(2, 1, cfg);
  // Issue several incs concurrently from processor 1; with FIFO
  // channels their hop messages stay ordered, so values return in
  // initiation order.
  std::vector<OpId> ops;
  for (int i = 0; i < 6; ++i) ops.push_back(sim.begin_inc(1));
  sim.run_until_quiescent();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ASSERT_TRUE(sim.result(ops[i]).has_value());
    EXPECT_EQ(*sim.result(ops[i]), static_cast<Value>(i));
  }
}

TEST(Simulator, TraceRecordsCausalChain) {
  SimConfig cfg;
  cfg.enable_trace = true;
  Simulator sim = make_sim(4, 2, cfg);
  const OpId op = sim.begin_inc(1);
  sim.run_until_quiescent();
  ASSERT_TRUE(sim.result(op).has_value());
  const auto& records = sim.trace().records();
  ASSERT_EQ(records.size(), 4u);  // 1->2->3->0->1
  EXPECT_EQ(records[0].parent, kNoRecord);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].parent, records[i - 1].id);
    EXPECT_EQ(records[i].op, op);
    EXPECT_GE(records[i].deliver_time, records[i].send_time);
  }
}

TEST(Simulator, TimeAdvancesMonotonically) {
  SimConfig cfg;
  cfg.delay = DelayModel::uniform(1, 9);
  Simulator sim = make_sim(4, 3, cfg);
  sim.begin_inc(0);
  SimTime last = 0;
  while (sim.step()) {
    EXPECT_GE(sim.now(), last);
    last = sim.now();
  }
}

TEST(SimulatorDeath, CompletingTwiceAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  class DoubleComplete final : public CounterProtocol {
   public:
    std::size_t num_processors() const override { return 2; }
    void start_inc(Context& ctx, ProcessorId, OpId op) override {
      ctx.complete(op, 0);
      ctx.complete(op, 1);
    }
    void on_message(Context&, const Message&) override {}
    std::unique_ptr<CounterProtocol> clone_counter() const override {
      return std::make_unique<DoubleComplete>(*this);
    }
    std::string name() const override { return "dc"; }
  };
  EXPECT_DEATH(
      {
        Simulator sim(std::make_unique<DoubleComplete>(), {});
        sim.begin_inc(0);
      },
      "completed twice");
}

TEST(SimulatorDeath, StepSpecificUnderFifoAborts) {
  // FIFO channels constrain realizable delivery orders; delivering by
  // send index ignores those floors, so the combination must abort
  // instead of silently exploring forbidden schedules.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SimConfig cfg;
        cfg.fifo_channels = true;
        Simulator sim(std::make_unique<HopCounter>(4, 2), cfg);
        sim.begin_inc(1);
        sim.step_specific(0);
      },
      "not meaningful with fifo_channels");
}

TEST(Simulator, RestoreReproducesSnapshotExactly) {
  SimConfig cfg;
  cfg.seed = 11;
  cfg.delay = DelayModel::uniform(1, 8);
  cfg.enable_trace = true;
  Simulator sim(std::make_unique<HopCounter>(6, 2), cfg);
  sim.begin_inc(1);
  sim.run_until_quiescent();
  const Simulator snap = sim.snapshot();

  // Diverge a scratch simulator, then restore the snapshot into it:
  // continuing from the scratch must be indistinguishable from
  // continuing from a fresh deep clone.
  Simulator scratch(sim);
  scratch.begin_inc(3);
  scratch.run_until_quiescent();
  scratch.restore(snap);

  Simulator fresh(snap);
  const OpId a = scratch.begin_inc(2);
  scratch.run_until_quiescent();
  const OpId b = fresh.begin_inc(2);
  fresh.run_until_quiescent();
  ASSERT_EQ(a, b);
  EXPECT_EQ(scratch.result(a), fresh.result(b));
  EXPECT_EQ(scratch.op_responded_at(a), fresh.op_responded_at(b));
  EXPECT_EQ(scratch.metrics().total_messages(),
            fresh.metrics().total_messages());
  EXPECT_EQ(scratch.metrics().max_load(), fresh.metrics().max_load());
  EXPECT_EQ(scratch.deliveries(), fresh.deliveries());
  EXPECT_EQ(scratch.trace().records().size(), fresh.trace().records().size());
}

TEST(Simulator, RestoreAcrossProtocolTypesFallsBackToClone) {
  // Scratch simulators are recycled across heterogeneous sweeps; a
  // type mismatch must degrade to a full clone, not corrupt state.
  Simulator hop(std::make_unique<HopCounter>(4, 0), {});
  Simulator central(std::make_unique<CentralCounter>(4, 0), {});
  central.begin_inc(2);
  central.run_until_quiescent();
  hop.restore(central);
  const OpId a = hop.begin_inc(3);
  hop.run_until_quiescent();
  Simulator clone(central);
  const OpId b = clone.begin_inc(3);
  clone.run_until_quiescent();
  EXPECT_EQ(hop.result(a), clone.result(b));
  EXPECT_EQ(hop.metrics().total_messages(), clone.metrics().total_messages());
}

TEST(Simulator, ReseedClearsFifoChannelState) {
  // Regression: reseeding a clone for a fresh schedule sample must also
  // forget per-channel FIFO delivery floors, so each sample is a pure
  // function of (state, seed) rather than coupled to the previous
  // sample's draws through channel_last_.
  SimConfig cfg;
  cfg.seed = 3;
  cfg.fifo_channels = true;
  cfg.delay = DelayModel::uniform(1, 9);
  Simulator sim(std::make_unique<HopCounter>(4, 1), cfg);
  sim.begin_inc(2);
  sim.run_until_quiescent();
  EXPECT_GT(sim.tracked_fifo_channels(), 0u);

  Simulator clone(sim);
  EXPECT_EQ(clone.tracked_fifo_channels(), sim.tracked_fifo_channels());
  clone.reseed(77);
  EXPECT_EQ(clone.tracked_fifo_channels(), 0u);

  // Two same-seed samples from the same state agree exactly.
  Simulator other(sim);
  other.reseed(77);
  const OpId x = clone.begin_inc(1);
  clone.run_until_quiescent();
  const OpId y = other.begin_inc(1);
  other.run_until_quiescent();
  EXPECT_EQ(clone.op_responded_at(x), other.op_responded_at(y));
  EXPECT_EQ(clone.metrics().total_messages(),
            other.metrics().total_messages());
}

}  // namespace
}  // namespace dcnt
