#include "baselines/combining_tree.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

Simulator make_sim(std::int64_t n, int fanout, SimConfig cfg = {}) {
  CombiningTreeParams params;
  params.n = n;
  params.fanout = fanout;
  return Simulator(std::make_unique<CombiningTreeCounter>(params), cfg);
}

const CombiningTreeCounter& combining_of(const Simulator& sim) {
  return dynamic_cast<const CombiningTreeCounter&>(sim.counter());
}

TEST(CombiningTree, SequentialCorrectness) {
  Simulator sim = make_sim(16, 2);
  const RunResult result = run_sequential(sim, schedule_sequential(16));
  EXPECT_TRUE(result.values_ok);
  EXPECT_EQ(combining_of(sim).value(), 16);
}

TEST(CombiningTree, NoCombiningWhenSequential) {
  // The paper's model serializes operations, so combining never fires —
  // which is exactly why combining does not beat the lower bound there.
  Simulator sim = make_sim(32, 2);
  run_sequential(sim, schedule_sequential(32));
  EXPECT_EQ(combining_of(sim).combined_requests(), 0);
}

TEST(CombiningTree, DepthIsLogarithmic) {
  EXPECT_EQ(combining_of(make_sim(16, 2)).depth(), 4);
  EXPECT_EQ(combining_of(make_sim(64, 4)).depth(), 3);
  EXPECT_EQ(combining_of(make_sim(17, 2)).depth(), 5);
}

class CombiningParamTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CombiningParamTest, ConcurrentBatchesGiveDistinctValues) {
  const auto [n, fanout, batch] = GetParam();
  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(n * 31 + fanout);
  cfg.delay = DelayModel::uniform(1, 12);
  Simulator sim = make_sim(n, fanout, cfg);
  const auto batches =
      make_batches(schedule_sequential(n), static_cast<std::size_t>(batch));
  const RunResult result = run_concurrent(sim, batches);
  EXPECT_TRUE(result.values_ok);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CombiningParamTest,
    ::testing::Combine(::testing::Values(8, 32, 64),
                       ::testing::Values(2, 4),
                       ::testing::Values(4, 16)));

TEST(CombiningTree, CombiningFiresUnderConcurrency) {
  SimConfig cfg;
  cfg.seed = 5;
  cfg.delay = DelayModel::uniform(1, 20);
  Simulator sim = make_sim(64, 2, cfg);
  const auto batches = make_batches(schedule_sequential(64), 64);
  run_concurrent(sim, batches);
  EXPECT_GT(combining_of(sim).combined_requests(), 0);
}

TEST(CombiningTree, CombiningReducesRootTraffic) {
  // Sequential: the root handles 2 messages per op. One big concurrent
  // batch: combined requests collapse most of that.
  const std::int64_t n = 64;
  SimConfig cfg;
  cfg.seed = 9;
  cfg.delay = DelayModel::uniform(1, 10);

  Simulator seq = make_sim(n, 2, cfg);
  run_sequential(seq, schedule_sequential(n));
  const auto& tc_seq = combining_of(seq);
  const ProcessorId root_pid = tc_seq.node_pid(tc_seq.root_node());
  const std::int64_t root_load_seq = seq.metrics().load(root_pid);

  Simulator conc = make_sim(n, 2, cfg);
  run_concurrent(conc, make_batches(schedule_sequential(n), n));
  const std::int64_t root_load_conc = conc.metrics().load(root_pid);

  EXPECT_LT(root_load_conc, root_load_seq);
}

TEST(CombiningTree, RepeatOriginsSequential) {
  Simulator sim = make_sim(8, 2);
  Rng rng(3);
  const RunResult result = run_sequential(sim, schedule_uniform(8, 100, rng));
  EXPECT_TRUE(result.values_ok);
  EXPECT_EQ(combining_of(sim).value(), 100);
}

TEST(CombiningTree, RepeatOriginsConcurrent) {
  SimConfig cfg;
  cfg.seed = 21;
  cfg.delay = DelayModel::uniform(1, 6);
  Simulator sim = make_sim(8, 2, cfg);
  Rng rng(4);
  const auto order = schedule_uniform(8, 60, rng);
  const RunResult result = run_concurrent(sim, make_batches(order, 20));
  EXPECT_TRUE(result.values_ok);
}

}  // namespace
}  // namespace dcnt
