#include "quorum/quorum_counter.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "quorum/crumbling_wall.hpp"
#include "quorum/grid.hpp"
#include "quorum/majority.hpp"
#include "quorum/projective_plane.hpp"
#include "quorum/tree_quorum.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

Simulator make_sim(std::shared_ptr<const QuorumSystem> system,
                   SimConfig cfg = {}) {
  return Simulator(std::make_unique<QuorumCounter>(std::move(system)), cfg);
}

TEST(QuorumCounter, MajoritySequentialCorrectness) {
  Simulator sim = make_sim(std::make_shared<MajorityQuorum>(9));
  const RunResult result = run_sequential(sim, schedule_sequential(9));
  EXPECT_TRUE(result.values_ok);
}

TEST(QuorumCounter, GridSequentialCorrectness) {
  Simulator sim = make_sim(std::make_shared<GridQuorum>(25));
  const RunResult result = run_sequential(sim, schedule_sequential(25));
  EXPECT_TRUE(result.values_ok);
}

TEST(QuorumCounter, TreeQuorumSequentialCorrectness) {
  Simulator sim = make_sim(std::make_shared<TreeQuorum>(15));
  const RunResult result = run_sequential(sim, schedule_sequential(15));
  EXPECT_TRUE(result.values_ok);
}

TEST(QuorumCounter, ProjectivePlaneSequentialCorrectness) {
  Simulator sim = make_sim(std::make_shared<ProjectivePlaneQuorum>(3));  // n=13
  const RunResult result = run_sequential(sim, schedule_sequential(13));
  EXPECT_TRUE(result.values_ok);
}

TEST(QuorumCounter, CrumblingWallSequentialCorrectness) {
  Simulator sim = make_sim(
      std::shared_ptr<const QuorumSystem>(CrumblingWall::triangle(21)));
  const RunResult result = run_sequential(sim, schedule_sequential(21));
  EXPECT_TRUE(result.values_ok);
}

TEST(QuorumCounter, SingletonBehavesLikeCentral) {
  Simulator sim = make_sim(std::make_shared<SingletonQuorum>(8, 0));
  run_sequential(sim, schedule_sequential(8));
  // Holder is in every quorum: it carries all remote read+write traffic.
  EXPECT_EQ(sim.metrics().bottleneck(), 0);
  // Each remote op: read + reply + write + ack = 4 messages at holder.
  EXPECT_EQ(sim.metrics().max_load(), 4 * 7);
}

class QuorumCounterSeedTest : public ::testing::TestWithParam<int> {};

TEST_P(QuorumCounterSeedTest, RandomDeliveryAndOrder) {
  SimConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  cfg.delay = DelayModel::uniform(1, 25);
  Simulator sim = make_sim(std::make_shared<GridQuorum>(16), cfg);
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 5);
  const RunResult result =
      run_sequential(sim, schedule_permutation(16, rng));
  EXPECT_TRUE(result.values_ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuorumCounterSeedTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(QuorumCounter, RepeatOriginsWork) {
  Simulator sim = make_sim(std::make_shared<MajorityQuorum>(5));
  Rng rng(9);
  const RunResult result = run_sequential(sim, schedule_uniform(5, 40, rng));
  EXPECT_TRUE(result.values_ok);
}

TEST(QuorumCounter, MessageCountPerOpIsFourPerRemoteMember) {
  Simulator sim = make_sim(std::make_shared<MajorityQuorum>(9));
  const OpId op = sim.begin_inc(0);
  sim.run_until_quiescent();
  ASSERT_TRUE(sim.result(op).has_value());
  // Quorum 0 = {0..4}; origin 0 is a member, so 4 remote members handle
  // read/reply/write/ack.
  EXPECT_EQ(sim.metrics().total_messages(), 4 * 4);
}

TEST(QuorumCounter, RotationSpreadsBottleneck) {
  // Rotating majorities: a processor pays 4(|Q|-1) as an origin once
  // plus 4 per op whose quorum contains it (|Q| of the n rotations) —
  // but never the full 4|Q| * n a fixed hot spot would.
  const std::int64_t n = 16;
  const std::int64_t q = n / 2 + 1;
  Simulator sim = make_sim(std::make_shared<MajorityQuorum>(n));
  run_sequential(sim, schedule_sequential(n));
  EXPECT_LE(sim.metrics().max_load(), 4 * (q - 1) + 4 * q);
  // But still far above the tree counter's O(k): majorities are big.
  EXPECT_GT(sim.metrics().max_load(), 2 * q);
}

TEST(QuorumCounter, GridBottleneckBelowMajority) {
  const std::int64_t n = 64;
  Simulator maj = make_sim(std::make_shared<MajorityQuorum>(n));
  run_sequential(maj, schedule_sequential(n));
  Simulator grid = make_sim(std::make_shared<GridQuorum>(n));
  run_sequential(grid, schedule_sequential(n));
  EXPECT_LT(grid.metrics().max_load(), maj.metrics().max_load());
}

TEST(QuorumCounter, CloneIndependence) {
  Simulator sim = make_sim(std::make_shared<GridQuorum>(16));
  run_sequential(sim, schedule_sequential(8));
  Simulator clone(sim);
  const OpId op = clone.begin_inc(9);
  clone.run_until_quiescent();
  EXPECT_EQ(*clone.result(op), 8);
  EXPECT_EQ(sim.ops_started(), 8u);
}

}  // namespace
}  // namespace dcnt
