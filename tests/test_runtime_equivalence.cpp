// Runtime/simulator equivalence: the same protocol fed the same
// operation multiset must behave identically in both backends wherever
// the model says it must.
//
// Sequential schedules (the paper's model — quiesce between incs) are
// the sharp case: the tree and central counters send a
// schedule-independent message set per operation, so not just the
// values but total_messages and every per-processor load must match the
// simulator exactly, across seeds (which vary the simulator's delivery
// interleavings) and worker counts (which vary the runtime's).
//
// Concurrent schedules only promise a value permutation and
// conservation laws (sum of loads == 2 * total), checked in
// test_runtime.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "harness/factory.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "harness/throughput.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

void expect_backends_agree(CounterKind kind, std::int64_t min_n,
                           std::size_t workers, std::uint64_t seed,
                           std::size_t flush_batch = 64) {
  SCOPED_TRACE(to_string(kind) + " W=" + std::to_string(workers) +
               " seed=" + std::to_string(seed) +
               " flush_batch=" + std::to_string(flush_batch));
  auto for_sim = make_counter(kind, min_n);
  const auto n = static_cast<std::int64_t>(for_sim->num_processors());
  const std::vector<ProcessorId> order = schedule_sequential(n);

  SimConfig config;
  config.seed = seed;
  Simulator sim(std::move(for_sim), config);
  const RunResult sim_result = run_sequential(sim, order);
  ASSERT_TRUE(sim_result.values_ok);

  const RuntimeSequentialResult rt_result = run_runtime_sequential(
      make_counter(kind, min_n), workers, order, seed, flush_batch);

  // Both sequential drivers assert values 0,1,2,... internally; this
  // pins that they returned the same thing to the caller too.
  EXPECT_EQ(rt_result.values, sim_result.values);
  EXPECT_EQ(rt_result.metrics.total_messages(), sim_result.total_messages);
  EXPECT_EQ(rt_result.metrics.max_load(), sim_result.max_load);
  for (ProcessorId p = 0; p < n; ++p) {
    EXPECT_EQ(rt_result.metrics.load(p), sim.metrics().load(p)) << "p=" << p;
    EXPECT_EQ(rt_result.metrics.word_load(p), sim.metrics().word_load(p))
        << "p=" << p;
  }
  // Per-op message attribution must agree operation by operation.
  EXPECT_EQ(rt_result.metrics.per_op_messages(),
            sim.metrics().per_op_messages());
}

TEST(RuntimeEquivalence, CentralMatchesSimulatorExactly) {
  for (const std::uint64_t seed : {1u, 7u, 33u}) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      expect_backends_agree(CounterKind::kCentral, 12, workers, seed);
    }
  }
}

TEST(RuntimeEquivalence, TreeCounterMatchesSimulatorExactly) {
  for (const std::uint64_t seed : {1u, 7u, 33u}) {
    for (const std::size_t workers : {1u, 2u, 4u}) {
      // k=2 tree (n=8): retirements happen within the schedule, so the
      // equality covers handover, NewId and forwarding traffic too.
      expect_backends_agree(CounterKind::kTree, 8, workers, seed);
    }
  }
}

TEST(RuntimeEquivalence, StaticTreeMatchesSimulatorExactly) {
  expect_backends_agree(CounterKind::kStaticTree, 8, 4, 9);
}

// Outbox coalescing is delivery-transparent: whether cross-shard events
// are handed over one at a time (flush_batch=1), in small clumps, or
// only at the dry point (a batch bound far above anything a sequential
// schedule accumulates), the values, every per-processor load, and the
// per-op message attribution must still match the simulator exactly.
TEST(RuntimeEquivalence, OutboxFlushBatchSizeIsObservablyTransparent) {
  for (const std::size_t flush_batch : {1u, 4u, 1024u}) {
    expect_backends_agree(CounterKind::kCentral, 12, 4, 7, flush_batch);
    expect_backends_agree(CounterKind::kTree, 8, 4, 7, flush_batch);
  }
}

// Longer sequential schedule on the tree: several incs per processor,
// so roles retire repeatedly while the counts stay deterministic.
TEST(RuntimeEquivalence, TreeRepeatedRoundsMatchSimulator) {
  const std::int64_t min_n = 8;
  auto for_sim = make_counter(CounterKind::kTree, min_n);
  const auto n = static_cast<std::int64_t>(for_sim->num_processors());
  std::vector<ProcessorId> order;
  for (int round = 0; round < 3; ++round) {
    for (std::int64_t p = 0; p < n; ++p) {
      order.push_back(static_cast<ProcessorId>(p));
    }
  }
  SimConfig config;
  config.seed = 21;
  Simulator sim(std::move(for_sim), config);
  const RunResult sim_result = run_sequential(sim, order);
  const RuntimeSequentialResult rt_result = run_runtime_sequential(
      make_counter(CounterKind::kTree, min_n), 4, order, 21);
  EXPECT_EQ(rt_result.values, sim_result.values);
  EXPECT_EQ(rt_result.metrics.total_messages(), sim_result.total_messages);
  EXPECT_EQ(rt_result.metrics.max_load(), sim_result.max_load);
}

}  // namespace
}  // namespace dcnt
