#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

#include "runtime/mailbox.hpp"

namespace dcnt {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for_each(hits.size(), [&](std::size_t worker,
                                            std::size_t index) {
      EXPECT_LT(worker, pool.size());
      hits[index].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for_each(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for_each(1, [&](std::size_t worker, std::size_t index) {
    EXPECT_EQ(worker, 0u);  // single items run inline on the caller
    EXPECT_EQ(index, 0u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, MapIsDeterministicAcrossThreadCounts) {
  const auto square = [](std::size_t, std::size_t i) {
    return static_cast<std::int64_t>(i) * static_cast<std::int64_t>(i);
  };
  ThreadPool serial(1);
  const auto expected = serial.parallel_map<std::int64_t>(513, square);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.parallel_map<std::int64_t>(513, square), expected);
  }
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::int64_t total = 0;
  for (int round = 0; round < 50; ++round) {
    const auto parts = pool.parallel_map<std::int64_t>(
        17, [&](std::size_t, std::size_t i) {
          return static_cast<std::int64_t>(i + 1);
        });
    total += std::accumulate(parts.begin(), parts.end(), std::int64_t{0});
  }
  EXPECT_EQ(total, 50 * (17 * 18) / 2);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_each(100,
                             [&](std::size_t, std::size_t index) {
                               if (index == 42) {
                                 throw std::runtime_error("boom");
                               }
                             }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> calls{0};
  pool.parallel_for_each(8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

// Pool workers fanning batches out to per-destination mailboxes with
// push_all — the exact shape of the runtime's cross-shard flush, with
// the pool standing in for the worker threads. Every event must land in
// the right mailbox exactly once, whatever the interleaving.
TEST(ThreadPool, PushAllFanOutDeliversEverythingToTheRightMailbox) {
  constexpr std::size_t kDests = 3;
  constexpr std::size_t kSenders = 64;
  constexpr int kPerDest = 40;
  ThreadPool pool(4);
  std::vector<Mailbox> boxes(kDests);
  pool.parallel_for_each(kSenders, [&](std::size_t, std::size_t sender) {
    // One outbox per destination, flushed once — the batched pattern.
    std::vector<std::vector<RuntimeEvent>> outbox(kDests);
    for (std::size_t d = 0; d < kDests; ++d) {
      for (int i = 0; i < kPerDest; ++i) {
        RuntimeEvent ev;
        ev.msg.dst = static_cast<ProcessorId>(d);
        ev.msg.tag = static_cast<std::int32_t>(sender * kPerDest + i);
        outbox[d].push_back(std::move(ev));
      }
      boxes[d].push_all(outbox[d]);
      EXPECT_TRUE(outbox[d].empty());
    }
  });
  for (std::size_t d = 0; d < kDests; ++d) {
    std::multiset<int> seen;
    std::vector<RuntimeEvent> out;
    while (boxes[d].drain(out)) {
      for (const auto& ev : out) {
        EXPECT_EQ(ev.msg.dst, static_cast<ProcessorId>(d));
        seen.insert(ev.msg.tag);
      }
    }
    ASSERT_EQ(seen.size(), kSenders * kPerDest);
    for (int tag = 0; tag < static_cast<int>(kSenders) * kPerDest; ++tag) {
      EXPECT_EQ(seen.count(tag), 1u) << "dest " << d << " tag " << tag;
    }
  }
}

TEST(ThreadPool, ResolveThreadCountHonorsEnvAndExplicit) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  setenv("DCNT_THREADS", "5", 1);
  EXPECT_EQ(resolve_thread_count(0), 5u);
  EXPECT_EQ(default_thread_count(), 5u);
  unsetenv("DCNT_THREADS");
  EXPECT_GE(resolve_thread_count(0), 1u);
}

}  // namespace
}  // namespace dcnt
