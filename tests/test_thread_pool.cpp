#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dcnt {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for_each(hits.size(), [&](std::size_t worker,
                                            std::size_t index) {
      EXPECT_LT(worker, pool.size());
      hits[index].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for_each(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for_each(1, [&](std::size_t worker, std::size_t index) {
    EXPECT_EQ(worker, 0u);  // single items run inline on the caller
    EXPECT_EQ(index, 0u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, MapIsDeterministicAcrossThreadCounts) {
  const auto square = [](std::size_t, std::size_t i) {
    return static_cast<std::int64_t>(i) * static_cast<std::int64_t>(i);
  };
  ThreadPool serial(1);
  const auto expected = serial.parallel_map<std::int64_t>(513, square);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.parallel_map<std::int64_t>(513, square), expected);
  }
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::int64_t total = 0;
  for (int round = 0; round < 50; ++round) {
    const auto parts = pool.parallel_map<std::int64_t>(
        17, [&](std::size_t, std::size_t i) {
          return static_cast<std::int64_t>(i + 1);
        });
    total += std::accumulate(parts.begin(), parts.end(), std::int64_t{0});
  }
  EXPECT_EQ(total, 50 * (17 * 18) / 2);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_each(100,
                             [&](std::size_t, std::size_t index) {
                               if (index == 42) {
                                 throw std::runtime_error("boom");
                               }
                             }),
      std::runtime_error);
  // The pool survives a throwing job.
  std::atomic<int> calls{0};
  pool.parallel_for_each(8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, ResolveThreadCountHonorsEnvAndExplicit) {
  EXPECT_EQ(resolve_thread_count(3), 3u);
  setenv("DCNT_THREADS", "5", 1);
  EXPECT_EQ(resolve_thread_count(0), 5u);
  EXPECT_EQ(default_thread_count(), 5u);
  unsetenv("DCNT_THREADS");
  EXPECT_GE(resolve_thread_count(0), 1u);
}

}  // namespace
}  // namespace dcnt
