// Reactor unit tests, run under BOTH readiness backends (poll and
// epoll) — the backends must be observationally identical, and the
// syscall-edge hardening must hold on each: a peer vanishing mid-frame
// (orderly FIN or abortive RST) is a clean close callback, never a
// crash or a torn frame delivery; notify() wakes a loop blocked in the
// kernel; detach/adopt replays buffered bytes without double counting.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace dcnt::net {
namespace {

constexpr Backend kBackends[] = {Backend::kPoll, Backend::kEpoll};

/// Listener + connected client/server pair on 127.0.0.1:<ephemeral>.
struct Pair {
  Socket listener;
  Socket client;
  Socket server;
};

Pair make_pair_sockets() {
  Pair p;
  std::uint16_t port = 0;
  p.listener = tcp_listen(&port);
  p.client = tcp_connect(port, 2000);
  // tcp_connect returned, so the connection is at least queued; accept
  // may still race the handshake on a loaded machine.
  for (int i = 0; i < 2000 && !p.server.valid(); ++i) {
    p.server = tcp_accept(p.listener);
    if (!p.server.valid()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(p.server.valid());
  return p;
}

void write_raw(const Socket& sock, const std::uint8_t* data,
               std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n =
        ::send(sock.fd(), data + off, size - off, MSG_NOSIGNAL);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      continue;
    }
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

TEST(EventLoop, RoundTripBothBackends) {
  for (const Backend backend : kBackends) {
    SCOPED_TRACE(backend_name(backend));
    Pair p = make_pair_sockets();
    EventLoop a(backend);
    EventLoop b(backend);
    std::vector<Value> seen;
    const int ca = a.add_connection(
        std::move(p.client), [](int, const FrameView&) {}, [](int) {});
    b.add_connection(
        std::move(p.server),
        [&](int, const FrameView& f) {
          seen.push_back(decode_complete(f).value);
        },
        [](int) {});
    a.send(ca, encode_complete(CompleteFrame{0, 41}));
    a.send(ca, encode_complete(CompleteFrame{1, 42}));
    a.run_once(0);  // flush both frames — coalesced into one write
    for (int i = 0; i < 2000 && seen.size() < 2; ++i) b.run_once(5);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], 41);
    EXPECT_EQ(seen[1], 42);
    EXPECT_EQ(a.frames_sent(), 2);
    EXPECT_EQ(b.frames_received(), 2);
  }
}

TEST(EventLoop, PeerFinMidFrameIsCleanClose) {
  // The peer writes half a frame, then closes in an orderly way (FIN).
  // The loop must fire on_close exactly once, deliver no frame, and
  // keep running.
  for (const Backend backend : kBackends) {
    SCOPED_TRACE(backend_name(backend));
    Pair p = make_pair_sockets();
    EventLoop loop(backend);
    int closes = 0;
    int frames = 0;
    const int conn = loop.add_connection(
        std::move(p.server), [&](int, const FrameView&) { ++frames; },
        [&](int) { ++closes; });
    const auto frame = encode_ready(ReadyFrame{7});
    write_raw(p.client, frame.data(), frame.size() / 2);
    p.client.close();
    for (int i = 0; i < 2000 && closes == 0; ++i) loop.run_once(5);
    EXPECT_EQ(closes, 1);
    EXPECT_EQ(frames, 0);
    EXPECT_FALSE(loop.connected(conn));
    EXPECT_EQ(loop.open_connections(), 0u);
    loop.run_once(0);  // the loop stays usable after the close
  }
}

TEST(EventLoop, PeerResetMidFrameIsCleanClose) {
  // Same, but the peer dies abortively: SO_LINGER(0) turns close() into
  // RST, so the loop sees ECONNRESET instead of EOF. On localhost that
  // is shutdown order, not corruption — same clean close path.
  for (const Backend backend : kBackends) {
    SCOPED_TRACE(backend_name(backend));
    Pair p = make_pair_sockets();
    EventLoop loop(backend);
    int closes = 0;
    int frames = 0;
    loop.add_connection(
        std::move(p.server), [&](int, const FrameView&) { ++frames; },
        [&](int) { ++closes; });
    const auto frame = encode_ready(ReadyFrame{7});
    write_raw(p.client, frame.data(), frame.size() / 2);
    const struct linger lg {1, 0};
    ASSERT_EQ(::setsockopt(p.client.fd(), SOL_SOCKET, SO_LINGER, &lg,
                           sizeof(lg)),
              0);
    p.client.close();
    for (int i = 0; i < 2000 && closes == 0; ++i) loop.run_once(5);
    EXPECT_EQ(closes, 1);
    EXPECT_EQ(frames, 0);
    EXPECT_EQ(loop.open_connections(), 0u);
  }
}

TEST(EventLoop, NotifyWakesBlockedRunOnce) {
  for (const Backend backend : kBackends) {
    SCOPED_TRACE(backend_name(backend));
    EventLoop loop(backend);
    const auto t0 = std::chrono::steady_clock::now();
    std::thread kicker([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      loop.notify();
    });
    loop.run_once(10000);  // must NOT sleep the full ten seconds
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t0);
    kicker.join();
    EXPECT_LT(elapsed.count(), 5000);

    // Sticky: a notify() against an idle loop makes the NEXT wait
    // return immediately instead of getting lost.
    loop.notify();
    const auto t1 = std::chrono::steady_clock::now();
    loop.run_once(10000);
    const auto again = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - t1);
    EXPECT_LT(again.count(), 5000);
  }
}

TEST(EventLoop, DetachAdoptReplaysResidualWithoutDoubleCount) {
  // The multi-loop node's adoption path: loop A reads frame 1 (the
  // Hello in real life) and detaches the connection from inside that
  // frame's callback; frames already buffered behind it travel as
  // residual and must be delivered by the adopting loop B during
  // add_connection — they were consumed from the kernel, so readiness
  // will never re-announce them. Bytes handed over as residual must
  // leave A's byte count (no double counting across the loop pair).
  for (const Backend backend : kBackends) {
    SCOPED_TRACE(backend_name(backend));
    Pair p = make_pair_sockets();
    EventLoop a(backend);
    const auto f1 = encode_ready(ReadyFrame{1});
    const auto f2 = encode_complete(CompleteFrame{2, 22});
    const auto f3 = encode_complete(CompleteFrame{3, 33});
    // Frame 1 + frame 2 + the first half of frame 3, all in one burst.
    std::vector<std::uint8_t> burst;
    burst.insert(burst.end(), f1.begin(), f1.end());
    burst.insert(burst.end(), f2.begin(), f2.end());
    burst.insert(burst.end(), f3.begin(), f3.begin() + f3.size() / 2);
    write_raw(p.client, burst.data(), burst.size());

    DetachedConn detached;
    bool got_first = false;
    a.add_connection(
        std::move(p.server),
        [&](int c, const FrameView& f) {
          ASSERT_FALSE(got_first);  // detach stops delivery mid-batch
          EXPECT_EQ(f.type(), FrameType::kReady);
          got_first = true;
          detached = a.detach_connection(c);
        },
        [](int) { FAIL() << "close fired on a detached connection"; });
    for (int i = 0; i < 2000 && !got_first; ++i) a.run_once(5);
    ASSERT_TRUE(got_first);
    ASSERT_TRUE(detached.sock.valid());
    // Residual = frame 2 + half of frame 3; A keeps only frame 1's bytes.
    EXPECT_EQ(detached.residual.size(), f2.size() + f3.size() / 2);
    EXPECT_EQ(static_cast<std::size_t>(a.bytes_received()), f1.size());

    EventLoop b(backend);
    std::vector<Value> seen;
    b.add_connection(
        std::move(detached.sock),
        [&](int, const FrameView& f) {
          seen.push_back(decode_complete(f).value);
        },
        [](int) {}, std::move(detached.residual));
    // Frame 2 was complete inside the residual: delivered already.
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(seen[0], 22);
    // The rest of frame 3 arrives over the socket and completes there.
    write_raw(p.client, f3.data() + f3.size() / 2, f3.size() - f3.size() / 2);
    for (int i = 0; i < 2000 && seen.size() < 2; ++i) b.run_once(5);
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[1], 33);
  }
}

TEST(EventLoop, BackendSelection) {
  EXPECT_EQ(backend_from_string("poll"), Backend::kPoll);
  EXPECT_EQ(backend_from_string("epoll"), Backend::kEpoll);
  EXPECT_EQ(backend_from_string(""), default_backend());
#ifdef __linux__
  // On Linux the platform default is epoll unless the environment
  // overrides it (CI's fallback lane sets DCNT_NET_BACKEND=poll).
  if (::getenv("DCNT_NET_BACKEND") == nullptr) {
    EXPECT_EQ(default_backend(), Backend::kEpoll);
  }
#endif
}

}  // namespace
}  // namespace dcnt::net
