// The shared bench command-line entry: every bench binary routes its
// argv through parse_bench_flags, so --help and unknown-flag behavior
// are uniform across the suite — help exits 0 after printing usage,
// a typo'd flag exits 2 instead of silently running the default
// experiment, and valid flags parse through unchanged.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_util.hpp"

namespace dcnt {
namespace {

/// argv builder: keeps the strings alive and hands out char* the way
/// main() receives them.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (std::string& s : strings_) {
      pointers_.push_back(s.data());
    }
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

const std::vector<std::string> kKnown = {"k", "seed"};

TEST(BenchFlags, ValidFlagsParseThrough) {
  Argv args({"bench_x", "--k=3", "--seed=9"});
  const Flags flags =
      parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown);
  EXPECT_EQ(flags.get_int("k", 0), 3);
  EXPECT_EQ(flags.get_int("seed", 0), 9);
}

TEST(BenchFlags, NoFlagsParseThrough) {
  Argv args({"bench_x"});
  const Flags flags =
      parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown);
  EXPECT_EQ(flags.get_int("k", 42), 42);
}

TEST(BenchFlagsDeath, HelpPrintsUsageAndExitsZero) {
  Argv args({"bench_x", "--help"});
  EXPECT_EXIT(parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown),
              testing::ExitedWithCode(0), "");
}

TEST(BenchFlagsDeath, ShortHelpAlsoExitsZero) {
  Argv args({"bench_x", "-h"});
  EXPECT_EXIT(parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown),
              testing::ExitedWithCode(0), "");
}

TEST(BenchFlagsDeath, HelpWinsEvenNextToOtherFlags) {
  // A user asking for help should get it even with other (possibly
  // broken) flags on the line.
  Argv args({"bench_x", "--k=3", "--help"});
  EXPECT_EXIT(parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown),
              testing::ExitedWithCode(0), "");
}

TEST(BenchFlagsDeath, UnknownFlagExitsTwoAndNamesIt) {
  Argv args({"bench_x", "--sede=9"});
  EXPECT_EXIT(parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown),
              testing::ExitedWithCode(2), "unknown flag --sede");
}

// bench_keys's flag vocabulary: the multi-key sweep flags parse through
// (lists split, bare --quick reads as a boolean)...
TEST(BenchFlags, KeysBenchFlagsParseThrough) {
  const std::vector<std::string> known = {
      "batch", "cluster_keys", "concurrency", "counter", "key_capacity",
      "key_skews", "keys_list", "n", "nodes", "ops", "out", "quick", "seed",
      "warmup", "workers_list"};
  Argv args({"bench_keys", "--keys_list=1,1000,100000", "--key_skews=0,0.99",
             "--batch=16", "--key_capacity=64", "--quick"});
  const Flags flags =
      parse_bench_flags(args.argc(), args.argv(), "keys bench", known);
  EXPECT_EQ(parse_int_list(flags.get_string("keys_list", "")),
            (std::vector<std::int64_t>{1, 1000, 100000}));
  EXPECT_EQ(parse_double_list(flags.get_string("key_skews", "")),
            (std::vector<double>{0.0, 0.99}));
  EXPECT_EQ(flags.get_int("batch", 1), 16);
  EXPECT_EQ(flags.get_int("key_capacity", 0), 64);
  EXPECT_TRUE(flags.get_bool("quick", false));
}

// ...and a typo'd keyed flag fails loudly instead of silently running
// the default sweep.
TEST(BenchFlagsDeath, KeysBenchRejectsTypodKeyFlag) {
  const std::vector<std::string> known = {"batch", "key_skews", "keys_list"};
  Argv args({"bench_keys", "--key_skew=0.99"});
  EXPECT_EXIT(parse_bench_flags(args.argc(), args.argv(), "keys bench", known),
              testing::ExitedWithCode(2), "unknown flag --key_skew");
}

}  // namespace
}  // namespace dcnt
