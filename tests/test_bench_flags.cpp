// The shared bench command-line entry: every bench binary routes its
// argv through parse_bench_flags, so --help and unknown-flag behavior
// are uniform across the suite — help exits 0 after printing usage,
// a typo'd flag exits 2 instead of silently running the default
// experiment, and valid flags parse through unchanged.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_util.hpp"

namespace dcnt {
namespace {

/// argv builder: keeps the strings alive and hands out char* the way
/// main() receives them.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (std::string& s : strings_) {
      pointers_.push_back(s.data());
    }
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

const std::vector<std::string> kKnown = {"k", "seed"};

TEST(BenchFlags, ValidFlagsParseThrough) {
  Argv args({"bench_x", "--k=3", "--seed=9"});
  const Flags flags =
      parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown);
  EXPECT_EQ(flags.get_int("k", 0), 3);
  EXPECT_EQ(flags.get_int("seed", 0), 9);
}

TEST(BenchFlags, NoFlagsParseThrough) {
  Argv args({"bench_x"});
  const Flags flags =
      parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown);
  EXPECT_EQ(flags.get_int("k", 42), 42);
}

TEST(BenchFlagsDeath, HelpPrintsUsageAndExitsZero) {
  Argv args({"bench_x", "--help"});
  EXPECT_EXIT(parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown),
              testing::ExitedWithCode(0), "");
}

TEST(BenchFlagsDeath, ShortHelpAlsoExitsZero) {
  Argv args({"bench_x", "-h"});
  EXPECT_EXIT(parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown),
              testing::ExitedWithCode(0), "");
}

TEST(BenchFlagsDeath, HelpWinsEvenNextToOtherFlags) {
  // A user asking for help should get it even with other (possibly
  // broken) flags on the line.
  Argv args({"bench_x", "--k=3", "--help"});
  EXPECT_EXIT(parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown),
              testing::ExitedWithCode(0), "");
}

TEST(BenchFlagsDeath, UnknownFlagExitsTwoAndNamesIt) {
  Argv args({"bench_x", "--sede=9"});
  EXPECT_EXIT(parse_bench_flags(args.argc(), args.argv(), "a bench", kKnown),
              testing::ExitedWithCode(2), "unknown flag --sede");
}

}  // namespace
}  // namespace dcnt
