// Executable versions of the paper's §4 lemmas, via analysis/audit.hpp.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/audit.hpp"
#include "core/tree_counter.hpp"
#include "harness/runner.hpp"
#include "harness/schedule.hpp"
#include "sim/simulator.hpp"

namespace dcnt {
namespace {

Simulator run_paper_workload(int k, std::uint64_t seed, bool random_order) {
  TreeCounterParams params;
  params.k = k;
  SimConfig cfg;
  cfg.seed = seed;
  cfg.delay = DelayModel::uniform(1, 8);
  Simulator sim(std::make_unique<TreeCounter>(params), cfg);
  const auto n = static_cast<std::int64_t>(sim.num_processors());
  Rng rng(seed + 1);
  const auto order =
      random_order ? schedule_permutation(n, rng) : schedule_sequential(n);
  run_sequential(sim, order);
  return sim;
}

class LemmaTest : public ::testing::TestWithParam<std::tuple<int, int, bool>> {
 protected:
  Simulator sim_ = run_paper_workload(
      std::get<0>(GetParam()),
      static_cast<std::uint64_t>(std::get<1>(GetParam())),
      std::get<2>(GetParam()));
  TreeAuditReport report_ = audit_tree_run(sim_);
};

TEST_P(LemmaTest, RetirementLemma) {
  // "No node retires more than once during any single inc operation."
  EXPECT_TRUE(report_.retirement_lemma_ok)
      << "max retirements per (node, op): "
      << report_.max_retirements_per_node_per_op;
}

TEST_P(LemmaTest, NumberOfRetirementsLemma) {
  // "Each node on level i retires at most k^(k-i) - 1 times" — i.e. the
  // replacement pools never run out.
  EXPECT_TRUE(report_.pools_ok);
  for (std::size_t level = 0; level < report_.max_retirements_by_level.size();
       ++level) {
    EXPECT_LE(report_.max_retirements_by_level[level],
              report_.pool_budget_by_level[level])
        << "level " << level;
  }
}

TEST_P(LemmaTest, PerOperationMessageBudget) {
  // Grow Old Lemma consequence: an inc costs its k+2 path messages plus
  // O(k) per retirement it triggers.
  EXPECT_TRUE(report_.op_messages_ok)
      << "max per-op messages " << report_.max_op_messages << " budget "
      << report_.op_message_budget;
}

TEST_P(LemmaTest, BottleneckTheorem) {
  // "Each processor receives and sends at most O(k) messages."
  const int k = std::get<0>(GetParam());
  EXPECT_LE(report_.max_load, 30 * k)
      << "load/k = " << report_.load_per_k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LemmaTest,
    ::testing::Combine(::testing::Values(2, 3, 4), ::testing::Values(1, 2),
                       ::testing::Bool()));

TEST(LeafWorkLemma, LeavesSeeConstantTraffic) {
  // "During the entire sequence of n inc operations each leaf receives
  // and sends at most [a constant number of] messages." In its *leaf*
  // capacity a processor sends one inc, receives one value, and would
  // receive a new-id notification only if its level-k parent retired —
  // which never happens under the default threshold (level-k pools have
  // size 1). Most processors additionally serve an inner-node stint
  // (the pools cover all n ids), which adds O(k); pure leaves stay at
  // exactly 2.
  Simulator sim = run_paper_workload(4, 7, false);
  const auto* tc = dynamic_cast<const TreeCounter*>(&sim.counter());
  ASSERT_NE(tc, nullptr);
  const int k = tc->layout().k();
  // Level-k nodes never retire => leaves never receive new-id messages.
  EXPECT_EQ(tc->stats().retirements_by_level[static_cast<std::size_t>(k)], 0);
  const Summary loads = sim.metrics().load_summary();
  EXPECT_EQ(loads.min(), 2);  // a pure leaf: one send, one receive
}

TEST(GrowOldLemma, RetirementFreeOpsAreCheap) {
  // Ops that trigger no retirement cost exactly the k+2 path messages.
  Simulator sim = run_paper_workload(3, 5, false);
  const auto* tc = dynamic_cast<const TreeCounter*>(&sim.counter());
  ASSERT_NE(tc, nullptr);
  std::vector<bool> op_retired(sim.ops_completed(), false);
  for (const auto& ev : tc->retirement_log()) {
    if (ev.op >= 0) op_retired[static_cast<std::size_t>(ev.op)] = true;
  }
  const auto& per_op = sim.metrics().per_op_messages();
  std::int64_t checked = 0;
  for (std::size_t op = 0; op < per_op.size(); ++op) {
    if (op_retired[op]) continue;
    // Exactly the k+2 path messages — except that hops between two
    // roles held by the same processor are local and uncounted, so the
    // count can only be smaller.
    EXPECT_LE(per_op[op], 3 + 2) << "op " << op;  // k+2 with k=3
    EXPECT_GE(per_op[op], 2) << "op " << op;
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(RetirementLemma, HoldsEvenWithHandoverAgedVariant) {
  TreeCounterParams params;
  params.k = 4;
  params.count_handover_in_age = true;
  Simulator sim(std::make_unique<TreeCounter>(params), {});
  run_sequential(sim, schedule_sequential(1024));
  const TreeAuditReport report = audit_tree_run(sim);
  EXPECT_TRUE(report.retirement_lemma_ok);
}

}  // namespace
}  // namespace dcnt
